package clusterid_test

import (
	"fmt"

	clusterid "repro"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Example demonstrates the core DDPM operation by hand: marking a
// packet along an adaptive route and recovering the source at the
// victim, exactly as Figure 4 prescribes.
func Example() {
	cl, err := clusterid.New(clusterid.Config{Topo: clusterid.Mesh2D(4), Seed: 1})
	if err != nil {
		panic(err)
	}
	d, _ := clusterid.DDPMOf(cl)

	// The paper's Figure 3(b) route: (1,1) → … → (2,3), with a revisit.
	m := cl.Net
	route := []topology.Coord{
		{1, 1}, {2, 1}, {3, 1}, {3, 0}, {2, 0}, {2, 1}, {2, 2}, {2, 3},
	}
	pk := &packet.Packet{}
	pk.Hdr.ID = 0xBEEF // attacker-preloaded garbage
	d.OnInject(pk)     // the source switch zeroes the MF
	for i := 0; i+1 < len(route); i++ {
		d.OnForward(m.IndexOf(route[i]), m.IndexOf(route[i+1]), pk)
	}
	victim := m.IndexOf(topology.Coord{2, 3})
	src, _ := d.IdentifySource(victim, pk.Hdr.ID)
	fmt.Printf("marking field decodes to vector %v; source = %v\n",
		topology.Vector(d.Codec().Decode(pk.Hdr.ID)), m.CoordOf(src))
	// Output:
	// marking field decodes to vector (1,2); source = (1,1)
}

// ExampleIdentifySource shows the one-packet identification helper.
func ExampleIdentifySource() {
	cl, _ := clusterid.New(clusterid.Config{Topo: clusterid.Cube(3), Seed: 1})
	d, _ := clusterid.DDPMOf(cl)

	// Hypercube route 110 → 000 (Figure 3(c)).
	pk := &packet.Packet{}
	d.OnInject(pk)
	for _, hop := range [][2]int{{0b110, 0b010}, {0b010, 0b011}, {0b011, 0b111},
		{0b111, 0b101}, {0b101, 0b100}, {0b100, 0b000}} {
		d.OnForward(clusterid.NodeID(hop[0]), clusterid.NodeID(hop[1]), pk)
	}
	src, ok := clusterid.IdentifySource(cl, 0b000, pk.Hdr.ID)
	fmt.Printf("source %03b identified: %v\n", src, ok)
	// Output:
	// source 110 identified: true
}
