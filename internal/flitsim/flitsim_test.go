package flitsim

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func newFabric(t *testing.T, net topology.Network, scheme marking.Scheme) (*Fabric, *packet.AddrPlan) {
	t.Helper()
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	f, err := New(Config{Net: net, Scheme: scheme, Plan: plan, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f, plan
}

func TestSinglePacketDelivery(t *testing.T) {
	m := topology.NewMesh2D(4)
	f, plan := newFabric(t, m, nil)
	var delivered *packet.Packet
	f.OnDeliver(func(_ int64, pk *packet.Packet) { delivered = pk })
	pk := packet.NewPacket(plan, m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{3, 3}), packet.ProtoUDP, 64)
	f.Inject(pk)
	if !f.RunUntilDrained(10000) {
		t.Fatal("packet never drained")
	}
	if delivered == nil {
		t.Fatal("no delivery")
	}
	st := f.Stats()
	if st.Injected != 1 || st.Delivered != 1 {
		t.Errorf("stats %+v", st)
	}
	// 6 hops, ~7 flits: serialization + hops must both show up.
	if st.AvgLatency < 6 {
		t.Errorf("latency %v below hop count", st.AvgLatency)
	}
	if st.FlitHops == 0 {
		t.Error("no flit hops recorded")
	}
}

func TestManyPacketsConservationNoDeadlock(t *testing.T) {
	m := topology.NewMesh2D(4)
	f, plan := newFabric(t, m, nil)
	r := rng.NewStream(3)
	const N = 400
	for i := 0; i < N; i++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		dst := topology.NodeID(r.Intn(m.NumNodes()))
		if src == dst {
			dst = (dst + 1) % topology.NodeID(m.NumNodes())
		}
		f.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 48))
	}
	if !f.RunUntilDrained(200000) {
		t.Fatalf("deadlock/livelock: %d packets stuck after 200k cycles", f.InFlight())
	}
	if st := f.Stats(); st.Delivered != N {
		t.Errorf("delivered %d/%d", st.Delivered, N)
	}
}

func TestHotspotStressStillDrains(t *testing.T) {
	// Everyone floods one node: worst-case tree contention exercises
	// the stall-release escape path.
	m := topology.NewMesh2D(4)
	f, plan := newFabric(t, m, nil)
	hot := m.IndexOf(topology.Coord{1, 2})
	for src := 0; src < m.NumNodes(); src++ {
		if topology.NodeID(src) == hot {
			continue
		}
		for k := 0; k < 10; k++ {
			f.Inject(packet.NewPacket(plan, topology.NodeID(src), hot, packet.ProtoTCPSYN, 32))
		}
	}
	if !f.RunUntilDrained(500000) {
		t.Fatalf("hotspot deadlock: %d stuck", f.InFlight())
	}
}

func TestDDPMThroughWormholeFabric(t *testing.T) {
	// The marking discipline must fire exactly once per hop even with
	// stall-induced re-allocation: DDPM identification is the witness.
	m := topology.NewMesh2D(8)
	d, err := marking.NewDDPM(m)
	if err != nil {
		t.Fatal(err)
	}
	f, plan := newFabric(t, m, d)
	type res struct{ claimed, actual topology.NodeID }
	var results []res
	f.OnDeliver(func(_ int64, pk *packet.Packet) {
		got, ok := d.IdentifySource(pk.DstNode, pk.Hdr.ID)
		if !ok {
			t.Errorf("undecodable MF")
			return
		}
		results = append(results, res{claimed: got, actual: pk.SrcNode})
	})
	r := rng.NewStream(4)
	for i := 0; i < 300; i++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		dst := topology.NodeID(r.Intn(m.NumNodes()))
		if src == dst {
			continue
		}
		pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 40)
		pk.Hdr.ID = uint16(r.Intn(1 << 16)) // hostile preload
		pk.Spoof(plan.AddrOf(topology.NodeID(r.Intn(m.NumNodes()))))
		f.Inject(pk)
	}
	if !f.RunUntilDrained(500000) {
		t.Fatalf("%d packets stuck", f.InFlight())
	}
	if len(results) < 250 {
		t.Fatalf("only %d results", len(results))
	}
	for _, rr := range results {
		if rr.claimed != rr.actual {
			t.Fatalf("wormhole DDPM misidentified: claimed %d, actual %d", rr.claimed, rr.actual)
		}
	}
}

func TestHypercubeFabric(t *testing.T) {
	h := topology.NewHypercube(5)
	d, _ := marking.NewDDPM(h)
	f, plan := newFabric(t, h, d)
	correct := 0
	f.OnDeliver(func(_ int64, pk *packet.Packet) {
		if got, ok := d.IdentifySource(pk.DstNode, pk.Hdr.ID); ok && got == pk.SrcNode {
			correct++
		}
	})
	r := rng.NewStream(5)
	const N = 200
	for i := 0; i < N; i++ {
		src := topology.NodeID(r.Intn(h.NumNodes()))
		dst := topology.NodeID(r.Intn(h.NumNodes()))
		if src == dst {
			dst ^= 1
		}
		f.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 24))
	}
	if !f.RunUntilDrained(200000) {
		t.Fatal("hypercube fabric stuck")
	}
	if correct != N {
		t.Errorf("identified %d/%d", correct, N)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	run := func(gap int) float64 {
		m := topology.NewMesh2D(4)
		plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
		f, err := New(Config{Net: m, Plan: plan, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewStream(6)
		// Inject uniform traffic every gap cycles per node for 2000
		// cycles, then drain.
		for cycle := 0; cycle < 2000; cycle += gap {
			for src := 0; src < m.NumNodes(); src++ {
				dst := topology.NodeID(r.Intn(m.NumNodes()))
				if dst == topology.NodeID(src) {
					continue
				}
				f.Inject(packet.NewPacket(plan, topology.NodeID(src), dst, packet.ProtoUDP, 32))
			}
			f.Run(gap)
		}
		if !f.RunUntilDrained(2_000_000) {
			t.Fatal("load test stuck")
		}
		return f.Stats().AvgLatency
	}
	light := run(100)
	heavy := run(8)
	if heavy <= light {
		t.Errorf("latency did not rise with load: light %v, heavy %v", light, heavy)
	}
}

func TestConfigValidation(t *testing.T) {
	m := topology.NewMesh2D(4)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	if _, err := New(Config{Plan: plan}); err == nil {
		t.Error("missing Net accepted")
	}
	if _, err := New(Config{Net: m}); err == nil {
		t.Error("missing Plan accepted")
	}
	if _, err := New(Config{Net: m, Plan: plan, VCs: 1}); err == nil {
		t.Error("single VC accepted")
	}
	if _, err := New(Config{Net: m, Plan: plan, BufDepth: -1}); err == nil {
		t.Error("negative buffer accepted")
	}
	tr := topology.NewTorus2D(4)
	trPlan := packet.NewAddrPlan(packet.DefaultBase, tr.NumNodes())
	if _, err := New(Config{Net: tr, Plan: trPlan, VCs: 2}); err == nil {
		t.Error("torus accepted with only 2 VCs (needs 2 escape + >=1 adaptive)")
	}
	if _, err := New(Config{Net: tr, Plan: trPlan}); err != nil {
		t.Errorf("torus with default VCs rejected: %v", err)
	}
}

func TestMultiFlitPacketsStayContiguous(t *testing.T) {
	// Large packets produce long worms; they still deliver and the tail
	// arrives after the head (latency reflects serialization).
	m := topology.NewMesh2D(4)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	f, err := New(Config{Net: m, Plan: plan, FlitBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	pk := packet.NewPacket(plan, 0, 15, packet.ProtoUDP, 512) // ~68 flits
	f.Inject(pk)
	if !f.RunUntilDrained(100000) {
		t.Fatal("long worm stuck")
	}
	st := f.Stats()
	// 6 hops + ~67 serialization cycles minimum.
	if st.AvgLatency < 60 {
		t.Errorf("latency %v too small for a 68-flit worm", st.AvgLatency)
	}
}

func TestSelfDeliveryAtSourceSwitch(t *testing.T) {
	m := topology.NewMesh2D(4)
	f, plan := newFabric(t, m, nil)
	f.Inject(packet.NewPacket(plan, 5, 5, packet.ProtoUDP, 16))
	if !f.RunUntilDrained(1000) {
		t.Fatal("self packet stuck")
	}
	if f.Stats().Delivered != 1 {
		t.Error("self packet not delivered")
	}
}
