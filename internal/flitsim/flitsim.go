// Package flitsim is a cycle-driven, flit-level wormhole simulator for
// the paper's §6.2 performance-vs-security question. Where netsim
// models packets atomically, flitsim models the switch microarchitecture
// real cluster interconnects use: packets split into flits, per-input
// virtual-channel buffers, credit-based flow control, and wormhole
// switching — so marking cost and congestion behavior can be measured
// at the fidelity where "processing time of switch" (§6.2) actually
// lives.
//
// Deadlock freedom follows Duato's protocol: virtual channel 0 is the
// escape channel routed with deterministic dimension-order routing,
// higher VCs route fully adaptively (minimal); a blocked adaptive
// packet can always fall back to the escape network.
package flitsim

import (
	"fmt"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FlitType distinguishes wormhole flit roles.
type FlitType uint8

const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	// HeadTailFlit is a single-flit packet.
	HeadTailFlit
)

// flit is the unit of flow control.
type flit struct {
	typ FlitType
	pk  *packet.Packet // header state shared by the whole packet
	id  uint64         // packet id
}

// Config parameterizes the fabric.
type Config struct {
	Net    topology.Network
	Scheme marking.Scheme
	Plan   *packet.AddrPlan

	// VCs per physical channel (≥ 2: escape + ≥1 adaptive).
	VCs int
	// BufDepth is the per-VC input buffer depth in flits.
	BufDepth int
	// FlitBytes sets how many payload bytes one flit carries.
	FlitBytes int
	// Seed drives VC allocation and adaptive tie-breaks.
	Seed uint64
}

func (c *Config) defaults() error {
	if c.Net == nil || c.Plan == nil {
		return fmt.Errorf("flitsim: Net and Plan are required")
	}
	if c.Scheme == nil {
		c.Scheme = marking.Nop{}
	}
	// Meshes and hypercubes need one dimension-order escape VC; tori
	// need two (Dally–Seitz dateline: packets that will still cross the
	// wraparound link of the current dimension ride VC1, switching to
	// VC0 after the dateline, which breaks the ring's cyclic channel
	// dependency).
	minVCs := 2
	if c.Net.Wraparound() {
		minVCs = 3
	}
	if c.VCs == 0 {
		c.VCs = minVCs
	}
	if c.VCs < minVCs {
		return fmt.Errorf("flitsim: %s needs >= %d VCs (%d escape + >=1 adaptive), got %d",
			c.Net.Name(), minVCs, minVCs-1, c.VCs)
	}
	if c.BufDepth == 0 {
		c.BufDepth = 4
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("flitsim: BufDepth must be >= 1")
	}
	if c.FlitBytes == 0 {
		c.FlitBytes = 16
	}
	return nil
}

// vcState is one input virtual channel of one router port.
type vcState struct {
	buf []flit
	// routed is true once the head flit at the buffer head has been
	// assigned an output; outPort/outVC hold the allocation until the
	// tail flit passes.
	routed  bool
	outPort int // index into router's neighbor list, or ejectPort
	outVC   int
	// stalled counts consecutive cycles a routed head flit has waited
	// with zero downstream credit; past a grace period the allocation
	// is released toward the escape channel.
	stalled int
}

// router is one switch.
type router struct {
	id        topology.NodeID
	neighbors []topology.NodeID
	// in[port][vc]; port len(neighbors) is the injection port.
	in [][]*vcState
	// credits[port][vc]: free downstream buffer slots for each output.
	credits [][]int
	// outOwner[port][vc]: packet id currently holding the output VC
	// (wormhole channel ownership), 0 when free.
	outOwner [][]uint64
}

const noOwner = 0

// Fabric is the running flit-level simulation.
type Fabric struct {
	cfg     Config
	routers []*router
	esc     *routing.Router // escape: dimension-order
	escVCs  int             // 1 (mesh/hypercube) or 2 (torus dateline)

	cycle    int64
	nextPkt  uint64
	injectQ  [][]flit // per-node pending flits (unbounded source queue)
	inFlight int

	// Stats
	injectedPkts, deliveredPkts uint64
	latencySum                  uint64
	flitHops                    uint64

	onDeliver func(cycle int64, pk *packet.Packet)

	// Per-cycle scratch buffers, reused across Step calls so the steady
	// state allocates nothing: pending flit moves and credit returns,
	// switch-allocation candidate lists, and routing scratch (minimal
	// moves + coordinate buffers).
	moveBuf   []move
	creditBuf []creditReturn
	candBuf   []*vcState
	dimBuf    []topology.DimDir
	cc, dc    topology.Coord
}

// New builds the fabric.
func New(cfg Config) (*Fabric, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	nd := len(cfg.Net.Dims())
	f := &Fabric{
		cfg:     cfg,
		esc:     routing.NewRouter(cfg.Net, routing.NewDimensionOrder(cfg.Net)),
		escVCs:  1,
		injectQ: make([][]flit, cfg.Net.NumNodes()),
		nextPkt: 1,
		cc:      make(topology.Coord, nd),
		dc:      make(topology.Coord, nd),
	}
	if cfg.Net.Wraparound() {
		f.escVCs = 2
	}
	for id := 0; id < cfg.Net.NumNodes(); id++ {
		nbs := cfg.Net.Neighbors(topology.NodeID(id))
		rt := &router{id: topology.NodeID(id), neighbors: nbs}
		ports := len(nbs) + 1 // + injection port
		rt.in = make([][]*vcState, ports)
		for p := range rt.in {
			rt.in[p] = make([]*vcState, cfg.VCs)
			for v := range rt.in[p] {
				rt.in[p][v] = &vcState{}
			}
		}
		rt.credits = make([][]int, len(nbs))
		rt.outOwner = make([][]uint64, len(nbs))
		for p := range rt.credits {
			rt.credits[p] = make([]int, cfg.VCs)
			rt.outOwner[p] = make([]uint64, cfg.VCs)
			for v := range rt.credits[p] {
				rt.credits[p][v] = cfg.BufDepth
			}
		}
		f.routers = append(f.routers, rt)
	}
	return f, nil
}

// OnDeliver registers the delivery sink.
func (f *Fabric) OnDeliver(fn func(cycle int64, pk *packet.Packet)) { f.onDeliver = fn }

// Cycle returns the current cycle count.
func (f *Fabric) Cycle() int64 { return f.cycle }

// Inject enqueues a packet at its source node. The scheme's OnInject
// hook runs immediately (the packet is entering its first switch).
func (f *Fabric) Inject(pk *packet.Packet) {
	n := int(pk.Hdr.Length) - packet.HeaderLen
	flits := 1 + (packet.HeaderLen+n+f.cfg.FlitBytes-1)/f.cfg.FlitBytes
	pk.Seq = f.nextPkt
	f.nextPkt++
	pk.InjectedAt = f.cycle
	f.cfg.Scheme.OnInject(pk)
	f.injectedPkts++
	f.inFlight++
	q := f.injectQ[pk.SrcNode]
	if flits == 1 {
		q = append(q, flit{typ: HeadTailFlit, pk: pk, id: pk.Seq})
	} else {
		q = append(q, flit{typ: HeadFlit, pk: pk, id: pk.Seq})
		for i := 1; i < flits-1; i++ {
			q = append(q, flit{typ: BodyFlit, pk: pk, id: pk.Seq})
		}
		q = append(q, flit{typ: TailFlit, pk: pk, id: pk.Seq})
	}
	f.injectQ[pk.SrcNode] = q
}

// InFlight returns the number of injected-but-undelivered packets.
func (f *Fabric) InFlight() int { return f.inFlight }

// Stats summarizes delivery counters.
type Stats struct {
	Injected, Delivered uint64
	AvgLatency          float64 // cycles, injection to tail delivery
	FlitHops            uint64
}

// Stats returns a snapshot.
func (f *Fabric) Stats() Stats {
	s := Stats{Injected: f.injectedPkts, Delivered: f.deliveredPkts, FlitHops: f.flitHops}
	if f.deliveredPkts > 0 {
		s.AvgLatency = float64(f.latencySum) / float64(f.deliveredPkts)
	}
	return s
}
