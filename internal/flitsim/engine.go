package flitsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
)

// ejectPort is the sentinel output for delivery to the local NIC.
const ejectPort = -1

// Step advances the fabric one cycle through the canonical router
// pipeline: route computation + VC allocation for head flits, switch
// allocation + traversal (one flit per physical output per cycle),
// credit return, then injection.
func (f *Fabric) Step() {
	f.routeAndAllocate()
	moves, creditReturns := f.switchTraversal()
	f.applyMoves(moves)
	f.applyCredits(creditReturns)
	f.injectFromQueues()
	f.cycle++
}

// Run executes n cycles.
func (f *Fabric) Run(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// RunUntilDrained steps until no packets are in flight, up to maxCycles
// (returns false if the bound was hit — a deadlock or a livelock).
func (f *Fabric) RunUntilDrained(maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if f.inFlight == 0 {
			return true
		}
		f.Step()
	}
	return f.inFlight == 0
}

// routeAndAllocate assigns an output port + VC to every input VC whose
// buffer head is an unrouted head flit.
func (f *Fabric) routeAndAllocate() {
	for _, rt := range f.routers {
		for _, vcs := range rt.in {
			for _, vc := range vcs {
				if len(vc.buf) == 0 {
					continue
				}
				head := vc.buf[0]
				if vc.routed {
					// Livelock/deadlock safety valve: a head flit stuck
					// on a credit-starved adaptive allocation releases
					// it after a grace period so the next attempt can
					// take the dimension-order escape channel (the
					// re-allocation step of Duato's protocol).
					if (head.typ == HeadFlit || head.typ == HeadTailFlit) &&
						vc.outPort != ejectPort &&
						rt.credits[vc.outPort][vc.outVC] == 0 {
						vc.stalled++
						if vc.stalled > 8 {
							rt.outOwner[vc.outPort][vc.outVC] = noOwner
							vc.routed = false
							vc.stalled = 0
							f.allocate(rt, vc, head, true)
						}
					}
					continue
				}
				if head.typ != HeadFlit && head.typ != HeadTailFlit {
					// Orphaned body flit at head without allocation is a
					// protocol bug.
					panic(fmt.Sprintf("flitsim: body flit at unrouted buffer head in router %d", rt.id))
				}
				f.allocate(rt, vc, head, false)
			}
		}
	}
}

// allocate implements Duato's protocol: try an adaptive minimal output
// VC first, then the dimension-order escape VC. preferEscape skips the
// adaptive tier (used after a stalled allocation was released).
func (f *Fabric) allocate(rt *router, vc *vcState, head flit, preferEscape bool) {
	pk := head.pk
	if rt.id == pk.DstNode {
		vc.routed = true
		vc.stalled = 0
		vc.outPort = ejectPort
		vc.outVC = 0
		return
	}
	bestPort, bestVC := -1, -1
	bestCredit := 0 // require at least one credit to allocate
	if !preferEscape {
		// Adaptive tier: every minimal productive neighbor, adaptive VCs.
		f.dimBuf = topology.AppendMinimalDims(f.cfg.Net, rt.id, pk.DstNode, f.dimBuf[:0], f.cc, f.dc)
		for _, mv := range f.dimBuf {
			next := f.cfg.Net.Step(rt.id, mv.Dim, mv.Dir)
			if next == topology.None {
				continue
			}
			port := rt.portTo(next)
			for ovc := f.escVCs; ovc < f.cfg.VCs; ovc++ {
				if rt.outOwner[port][ovc] != noOwner {
					continue
				}
				if c := rt.credits[port][ovc]; c > bestCredit {
					bestCredit = c
					bestPort, bestVC = port, ovc
				}
			}
		}
	}
	if bestPort < 0 {
		// Escape tier: dimension-order on the escape VC(s).
		hop, err := f.esc.NextHop(rt.id, pk.DstNode, 0)
		if err != nil {
			return // stranded (only possible with failed links)
		}
		port := rt.portTo(hop.Next)
		evc := f.escapeVC(rt.id, pk.DstNode)
		if rt.outOwner[port][evc] != noOwner || rt.credits[port][evc] == 0 {
			return // blocked this cycle; retry next cycle
		}
		bestPort, bestVC = port, evc
	}
	vc.routed = true
	vc.stalled = 0
	vc.outPort = bestPort
	vc.outVC = bestVC
	rt.outOwner[bestPort][bestVC] = head.id
	// Marking happens when the head flit actually traverses the switch
	// (switchTraversal), not here: a credit-starved allocation may be
	// released and re-routed, and the mark must reflect the hop the
	// packet really takes.
}

// escapeVC picks the escape virtual channel. Mesh/hypercube escape is a
// single VC 0. On a torus the Dally–Seitz dateline rule applies to the
// dimension the DOR hop resolves: a packet that still has the
// wraparound link of that dimension ahead of it rides VC 1 and drops to
// VC 0 once past the dateline, making each ring's channel dependency
// graph acyclic.
func (f *Fabric) escapeVC(cur, dst topology.NodeID) int {
	if f.escVCs == 1 {
		return 0
	}
	cc := topology.FillCoord(f.cfg.Net, cur, f.cc)
	dc := topology.FillCoord(f.cfg.Net, dst, f.dc)
	dims := f.cfg.Net.Dims()
	for i := range cc {
		if cc[i] == dc[i] {
			continue
		}
		// DOR resolves the first differing dimension, taking the
		// shorter way around (ties go +1, matching MinimalDims).
		k := dims[i]
		fwd := ((dc[i]-cc[i])%k + k) % k
		plus := fwd <= k-fwd
		if plus {
			if cc[i] > dc[i] {
				return 1 // the k−1 → 0 wrap is still ahead
			}
			return 0
		}
		if cc[i] < dc[i] {
			return 1 // the 0 → k−1 wrap is still ahead
		}
		return 0
	}
	return 0
}

// portTo returns the output port index for a neighbor.
func (rt *router) portTo(n topology.NodeID) int {
	for i, nb := range rt.neighbors {
		if nb == n {
			return i
		}
	}
	panic(fmt.Sprintf("flitsim: %d is not a neighbor of %d", n, rt.id))
}

// move is a flit in transit to a downstream buffer.
type move struct {
	toRouter topology.NodeID
	toPort   int
	toVC     int
	fl       flit
}

// creditReturn frees one buffer slot at the upstream sender.
type creditReturn struct {
	router topology.NodeID
	port   int
	vc     int
}

// switchTraversal performs switch allocation — at most one flit per
// physical output port (and one ejection) per router per cycle — and
// collects the resulting flit moves and credit returns.
func (f *Fabric) switchTraversal() ([]move, []creditReturn) {
	moves := f.moveBuf[:0]
	credits := f.creditBuf[:0]
	for _, rt := range f.routers {
		// One winner per physical output port.
		for port := range rt.neighbors {
			winner := f.pickWinner(rt, port)
			if winner == nil {
				continue
			}
			fl := winner.buf[0]
			winner.buf = winner.buf[1:]
			rt.credits[port][winner.outVC]--
			f.flitHops++
			if fl.typ == HeadFlit || fl.typ == HeadTailFlit {
				// The hop is now physically committed: Figure 4's
				// marking point. TTL decrements with the hop, as DPM's
				// position index requires.
				f.cfg.Scheme.OnForward(rt.id, rt.neighbors[port], fl.pk)
				if fl.pk.Hdr.TTL > 0 {
					fl.pk.Hdr.TTL--
				}
			}
			moves = append(moves, move{
				toRouter: rt.neighbors[port],
				// The receiving input port is the downstream router's
				// port facing us.
				toPort: f.reversePort(rt.neighbors[port], rt.id),
				toVC:   winner.outVC,
				fl:     fl,
			})
			if cr, ok := f.creditFor(rt, winner); ok {
				credits = append(credits, cr)
			}
			if fl.typ == TailFlit || fl.typ == HeadTailFlit {
				rt.outOwner[port][winner.outVC] = noOwner
				winner.routed = false
			}
		}
		// One ejection per cycle.
		if winner := f.pickEjector(rt); winner != nil {
			fl := winner.buf[0]
			winner.buf = winner.buf[1:]
			if cr, ok := f.creditFor(rt, winner); ok {
				credits = append(credits, cr)
			}
			if fl.typ == TailFlit || fl.typ == HeadTailFlit {
				winner.routed = false
				f.deliver(fl.pk)
			}
		}
	}
	f.moveBuf, f.creditBuf = moves, credits
	return moves, credits
}

// pickWinner selects the input VC to serve an output port this cycle:
// among routed VCs targeting the port with flits and downstream credit,
// rotate by cycle for fairness.
func (f *Fabric) pickWinner(rt *router, port int) *vcState {
	cands := f.candBuf[:0]
	for _, vcs := range rt.in {
		for _, vc := range vcs {
			if vc.routed && vc.outPort == port && len(vc.buf) > 0 && rt.credits[port][vc.outVC] > 0 {
				// A body/tail flit may only move if it is not a head of
				// a *different* packet (contiguity is guaranteed by
				// per-VC FIFO order and ownership).
				cands = append(cands, vc)
			}
		}
	}
	f.candBuf = cands
	if len(cands) == 0 {
		return nil
	}
	return cands[int(f.cycle)%len(cands)]
}

// pickEjector selects one VC delivering to the local NIC.
func (f *Fabric) pickEjector(rt *router) *vcState {
	cands := f.candBuf[:0]
	for _, vcs := range rt.in {
		for _, vc := range vcs {
			if vc.routed && vc.outPort == ejectPort && len(vc.buf) > 0 {
				cands = append(cands, vc)
			}
		}
	}
	f.candBuf = cands
	if len(cands) == 0 {
		return nil
	}
	return cands[int(f.cycle)%len(cands)]
}

// creditFor computes the upstream credit return for a flit departing
// one of rt's input buffers. Flits departing the injection port return
// no credit (the source queue is unbounded).
func (f *Fabric) creditFor(rt *router, vc *vcState) (creditReturn, bool) {
	for p, vcs := range rt.in {
		for v, cand := range vcs {
			if cand == vc {
				if p == len(rt.neighbors) {
					return creditReturn{}, false // injection port
				}
				up := rt.neighbors[p]
				return creditReturn{
					router: up,
					port:   f.reversePort(up, rt.id),
					vc:     v,
				}, true
			}
		}
	}
	panic("flitsim: vc not found in its router")
}

// reversePort returns from's output-port index toward to.
func (f *Fabric) reversePort(from, to topology.NodeID) int {
	return f.routers[from].portTo(to)
}

func (f *Fabric) applyMoves(moves []move) {
	for _, mv := range moves {
		rt := f.routers[mv.toRouter]
		vc := rt.in[mv.toPort][mv.toVC]
		if len(vc.buf) >= f.cfg.BufDepth {
			panic(fmt.Sprintf("flitsim: credit protocol violated at router %d port %d vc %d",
				mv.toRouter, mv.toPort, mv.toVC))
		}
		vc.buf = append(vc.buf, mv.fl)
	}
}

func (f *Fabric) applyCredits(credits []creditReturn) {
	for _, cr := range credits {
		rt := f.routers[cr.router]
		rt.credits[cr.port][cr.vc]++
		if rt.credits[cr.port][cr.vc] > f.cfg.BufDepth {
			panic(fmt.Sprintf("flitsim: credit overflow at router %d port %d vc %d",
				cr.router, cr.port, cr.vc))
		}
	}
}

// injectFromQueues moves flits from per-node source queues into the
// injection port's VC-0 buffer, one flit per node per cycle.
func (f *Fabric) injectFromQueues() {
	for node, q := range f.injectQ {
		if len(q) == 0 {
			continue
		}
		rt := f.routers[node]
		vc := rt.in[len(rt.neighbors)][0]
		if len(vc.buf) >= f.cfg.BufDepth {
			continue
		}
		vc.buf = append(vc.buf, q[0])
		f.injectQ[node] = q[1:]
	}
}

func (f *Fabric) deliver(pk *packet.Packet) {
	pk.DeliveredAt = f.cycle
	f.deliveredPkts++
	f.inFlight--
	f.latencySum += uint64(f.cycle - pk.InjectedAt)
	if f.onDeliver != nil {
		f.onDeliver(f.cycle, pk)
	}
}
