package flitsim

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestTorusFabricDrainsUnderUniformLoad(t *testing.T) {
	tr := topology.NewTorus2D(4)
	plan := packet.NewAddrPlan(packet.DefaultBase, tr.NumNodes())
	f, err := New(Config{Net: tr, Plan: plan, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewStream(2)
	const N = 400
	for i := 0; i < N; i++ {
		src := topology.NodeID(r.Intn(tr.NumNodes()))
		dst := topology.NodeID(r.Intn(tr.NumNodes()))
		if src == dst {
			dst = (dst + 1) % topology.NodeID(tr.NumNodes())
		}
		f.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 32))
	}
	if !f.RunUntilDrained(500000) {
		t.Fatalf("torus deadlock: %d stuck", f.InFlight())
	}
	if f.Stats().Delivered != N {
		t.Errorf("delivered %d/%d", f.Stats().Delivered, N)
	}
}

func TestTorusTornadoStress(t *testing.T) {
	// Tornado traffic (half-ring hops for every node) maximizes
	// wraparound usage — the pattern that deadlocks a datelineless
	// escape network.
	tr := topology.NewTorus2D(6)
	plan := packet.NewAddrPlan(packet.DefaultBase, tr.NumNodes())
	f, err := New(Config{Net: tr, Plan: plan, Seed: 3, VCs: 3, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	dims := tr.Dims()
	for round := 0; round < 8; round++ {
		for src := 0; src < tr.NumNodes(); src++ {
			c := tr.CoordOf(topology.NodeID(src))
			d := topology.Coord{(c[0] + dims[0]/2) % dims[0], (c[1] + dims[1]/2) % dims[1]}
			f.Inject(packet.NewPacket(plan, topology.NodeID(src), tr.IndexOf(d), packet.ProtoUDP, 32))
		}
	}
	if !f.RunUntilDrained(1_000_000) {
		t.Fatalf("tornado deadlock: %d stuck", f.InFlight())
	}
}

func TestTorusDDPMThroughWormhole(t *testing.T) {
	tr := topology.NewTorus2D(8)
	d, err := marking.NewDDPM(tr)
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, tr.NumNodes())
	f, err := New(Config{Net: tr, Plan: plan, Scheme: d, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	f.OnDeliver(func(_ int64, pk *packet.Packet) {
		total++
		if got, ok := d.IdentifySource(pk.DstNode, pk.Hdr.ID); ok && got == pk.SrcNode {
			correct++
		}
	})
	r := rng.NewStream(5)
	const N = 300
	for i := 0; i < N; i++ {
		src := topology.NodeID(r.Intn(tr.NumNodes()))
		dst := topology.NodeID(r.Intn(tr.NumNodes()))
		if src == dst {
			dst = (dst + 13) % topology.NodeID(tr.NumNodes())
		}
		pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 40)
		pk.Hdr.ID = uint16(r.Intn(1 << 16))
		f.Inject(pk)
	}
	if !f.RunUntilDrained(500000) {
		t.Fatal("torus fabric stuck")
	}
	if total != N || correct != N {
		t.Errorf("identified %d/%d (delivered %d)", correct, N, total)
	}
}

func TestEscapeVCDatelineRule(t *testing.T) {
	tr := topology.NewTorus2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, tr.NumNodes())
	f, err := New(Config{Net: tr, Plan: plan, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	at := func(r, c int) topology.NodeID { return tr.IndexOf(topology.Coord{r, c}) }
	// +direction without wrap ahead: (0,1) -> (0,3): VC0.
	if vc := f.escapeVC(at(0, 1), at(0, 3)); vc != 0 {
		t.Errorf("no-wrap + route on VC %d, want 0", vc)
	}
	// +direction with wrap ahead: (0,6) -> (0,1): fwd distance 3 (short
	// way +), cur 6 > dst 1 so the 7→0 wrap is ahead: VC1.
	if vc := f.escapeVC(at(0, 6), at(0, 1)); vc != 1 {
		t.Errorf("pre-dateline + route on VC %d, want 1", vc)
	}
	// Same flow after crossing: (0,0) -> (0,1): VC0.
	if vc := f.escapeVC(at(0, 0), at(0, 1)); vc != 0 {
		t.Errorf("post-dateline route on VC %d, want 0", vc)
	}
	// −direction with wrap ahead: (0,1) -> (0,6): short way is −3,
	// cur 1 < dst 6 so the 0→7 wrap is ahead: VC1.
	if vc := f.escapeVC(at(0, 1), at(0, 6)); vc != 1 {
		t.Errorf("pre-dateline - route on VC %d, want 1", vc)
	}
	// −direction without wrap: (0,6) -> (0,4): VC0.
	if vc := f.escapeVC(at(0, 6), at(0, 4)); vc != 0 {
		t.Errorf("no-wrap - route on VC %d, want 0", vc)
	}
	// Mesh fabric always uses VC0.
	m := topology.NewMesh2D(4)
	mplan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	fm, _ := New(Config{Net: m, Plan: mplan})
	if vc := fm.escapeVC(0, 5); vc != 0 {
		t.Errorf("mesh escape VC = %d", vc)
	}
}
