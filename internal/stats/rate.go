package stats

import (
	"sync"
	"time"
)

// RateWindow derives an events-per-second rate from samples of a
// monotone counter over a sliding time window. A lifetime mean
// (total/uptime) reads misleadingly flat after hours of uptime — a
// flood doubles the instantaneous rate but barely moves the mean — so
// the daemon's ingest-rate gauge samples the accepted counter on every
// scrape and reports the slope across the window instead.
//
// The rate spans the in-window samples; with fewer than two of those
// it falls back to the newest pre-window sample as an anchor, so slow
// scrapers still get a slope rather than nothing.
type RateWindow struct {
	mu      sync.Mutex
	window  int64 // nanoseconds
	samples []rateSample
}

type rateSample struct {
	t     int64 // unix nanoseconds
	total uint64
}

// NewRateWindow builds a tracker over the given span (default 60s for
// window <= 0).
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		window = time.Minute
	}
	return &RateWindow{window: window.Nanoseconds()}
}

// Observe folds in the counter's current total at instant now (unix
// nanoseconds). Samples must be offered with non-decreasing now; a
// duplicate timestamp replaces the previous sample.
func (w *RateWindow) Observe(now int64, total uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.samples); n > 0 && w.samples[n-1].t >= now {
		w.samples[n-1] = rateSample{t: now, total: total}
	} else {
		w.samples = append(w.samples, rateSample{t: now, total: total})
	}
	// Prune strictly to the window so an idle gap cannot stretch the
	// span (the flat-lifetime-mean failure mode in miniature); fall
	// back to one pre-window anchor only when fewer than two in-window
	// samples remain, e.g. scrapes arriving slower than the window.
	cut := now - w.window
	first := 0
	for first < len(w.samples)-1 && w.samples[first].t < cut {
		first++
	}
	if first == len(w.samples)-1 && first > 0 {
		first--
	}
	if first > 0 {
		w.samples = append(w.samples[:0], w.samples[first:]...)
	}
}

// Rate returns the windowed rate in events/sec. ok is false — and rate
// a clean 0, never a spike or NaN — until two distinct-instant samples
// exist, so a cold gauge's first scrapes read as "no rate yet" rather
// than inventing one.
func (w *RateWindow) Rate() (rate float64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.samples)
	if n < 2 {
		return 0, false
	}
	first, last := w.samples[0], w.samples[n-1]
	if last.t <= first.t || last.total < first.total {
		return 0, false
	}
	return float64(last.total-first.total) / (float64(last.t-first.t) / 1e9), true
}
