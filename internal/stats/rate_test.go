package stats

import (
	"math"
	"testing"
	"time"
)

// TestRateWindowColdStart pins the cold-start contract: before the
// window holds two distinct-instant samples, Rate reports exactly
// (0, false) — never a spike, never NaN — and recovers a sane slope
// once real samples arrive, including across idle gaps longer than the
// window.
func TestRateWindowColdStart(t *testing.T) {
	sec := int64(time.Second)
	type sample struct {
		t     int64
		total uint64
	}
	cases := []struct {
		name     string
		window   time.Duration
		samples  []sample
		wantRate float64
		wantOK   bool
	}{
		{
			name:   "empty",
			window: time.Minute,
		},
		{
			name:    "single sample",
			window:  time.Minute,
			samples: []sample{{10 * sec, 1000}},
		},
		{
			name:    "two samples same instant",
			window:  time.Minute,
			samples: []sample{{10 * sec, 1000}, {10 * sec, 2000}},
			// The duplicate replaces, leaving one sample: still cold.
		},
		{
			name:     "two distinct samples",
			window:   time.Minute,
			samples:  []sample{{10 * sec, 1000}, {20 * sec, 2000}},
			wantRate: 100,
			wantOK:   true,
		},
		{
			name:   "idle gap longer than the window",
			window: time.Minute,
			// Two old samples, silence for 10 windows, then one new
			// sample: the pruner keeps the newest pre-window sample as
			// anchor, so the slope spans the gap instead of vanishing.
			samples:  []sample{{0, 0}, {10 * sec, 1000}, {610 * sec, 1600}},
			wantRate: 1, // (1600-1000)/(610-10)
			wantOK:   true,
		},
		{
			name:   "counter reset reads cold",
			window: time.Minute,
			// A restarted counter (total going backwards) must not
			// produce a negative or huge unsigned-wrap rate.
			samples: []sample{{10 * sec, 5000}, {20 * sec, 40}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewRateWindow(tc.window)
			for _, s := range tc.samples {
				w.Observe(s.t, s.total)
			}
			rate, ok := w.Rate()
			if ok != tc.wantOK {
				t.Fatalf("Rate() ok = %v, want %v", ok, tc.wantOK)
			}
			if math.IsNaN(rate) || math.IsInf(rate, 0) {
				t.Fatalf("Rate() = %v, want a finite value", rate)
			}
			if math.Abs(rate-tc.wantRate) > 1e-9 {
				t.Fatalf("Rate() = %v, want %v", rate, tc.wantRate)
			}
		})
	}
}
