package stats

import (
	"strings"
	"testing"
)

func TestRunningMergeEdgeCases(t *testing.T) {
	var empty, filled Running
	filled.Add(1)
	filled.Add(3)

	// Merging an empty accumulator is a no-op.
	snapshot := filled
	filled.Merge(&empty)
	if filled != snapshot {
		t.Error("merge of empty changed the accumulator")
	}

	// Merging into an empty accumulator copies.
	var target Running
	target.Merge(&filled)
	if target.N() != 2 || target.Mean() != 2 {
		t.Errorf("merge into empty: %v", target.String())
	}

	// Min/max propagate across the merge.
	var lo, hi Running
	lo.Add(-5)
	hi.Add(50)
	lo.Merge(&hi)
	if lo.Min() != -5 || lo.Max() != 50 {
		t.Errorf("merged min/max = %v/%v", lo.Min(), lo.Max())
	}
}

func TestRunningString(t *testing.T) {
	var r Running
	r.Add(2)
	r.Add(4)
	s := r.String()
	for _, want := range []string{"n=2", "mean=3", "min=2", "max=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestRunningExtremesTracking(t *testing.T) {
	var r Running
	for _, x := range []float64{3, -1, 7, 7, -1} {
		r.Add(x)
	}
	if r.Min() != -1 || r.Max() != 7 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestHistogramBins(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 3.9} {
		h.Add(x)
	}
	bins := h.Bins()
	want := []int64{1, 2, 0, 1}
	for i, w := range want {
		if bins[i] != w {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	// The copy does not alias internal state.
	bins[0] = 99
	if h.Bins()[0] == 99 {
		t.Error("Bins aliases internal storage")
	}
}

func TestHistogramEdgeAtUpperBound(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(0.999999999999) // lands in the last bin, not overflow
	if _, over := h.OutOfRange(); over != 0 {
		t.Error("near-hi value counted as overflow")
	}
	if h.Bins()[2] != 1 {
		t.Errorf("bins = %v", h.Bins())
	}
}

func TestHistogramPercentileClamps(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if p := h.Percentile(-5); p < 0 {
		t.Errorf("P(-5) = %v", p)
	}
	if p := h.Percentile(150); p != h.Percentile(100) {
		t.Errorf("P(150) = %v != P(100) = %v", p, h.Percentile(100))
	}
}

func TestCounterTopNilLess(t *testing.T) {
	c := NewCounter[string]()
	c.Add("a")
	c.Add("a")
	c.Add("b")
	top := c.Top(2, nil)
	if len(top) != 2 || top[0] != "a" {
		t.Errorf("Top with nil less = %v", top)
	}
	// Tie with nil less: both orders are acceptable, but the call must
	// not panic and must return both keys.
	c.Add("b")
	top = c.Top(2, nil)
	if len(top) != 2 {
		t.Errorf("tied Top = %v", top)
	}
}

func TestBinomialCI95Bounds(t *testing.T) {
	// Tiny n: the interval clamps to [0,1].
	lo, hi := BinomialCI95(1, 1)
	if lo < 0 || hi > 1 {
		t.Errorf("CI = [%v,%v]", lo, hi)
	}
	lo, hi = BinomialCI95(0, 1)
	if lo > 1e-12 || hi > 1 { // lo is 0 up to floating-point noise
		t.Errorf("CI = [%v,%v]", lo, hi)
	}
}
