package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if !almost(r.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 || r.Min() != 0 || r.Max() != 0 || r.CI95() != 0 {
		t.Error("empty accumulator must report zeros")
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological quick inputs
			}
		}
		var whole Running
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var a, b Running
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return almost(a.Mean(), whole.Mean(), 1e-9*scale) &&
			almost(a.Var(), whole.Var(), 1e-6*math.Max(1, whole.Var())) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if p := h.Percentile(50); !almost(p, 50, 1.5) {
		t.Errorf("P50 = %v", p)
	}
	if p := h.Percentile(90); !almost(p, 90, 1.5) {
		t.Errorf("P90 = %v", p)
	}
	if !almost(h.Mean(), 50, 1e-9) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(15)
	h.Add(5)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	if h.N() != 3 {
		t.Errorf("N = %d", h.N())
	}
	if h.Percentile(1) != 0 {
		t.Errorf("P1 with underflow = %v, want lo", h.Percentile(1))
	}
	if h.Percentile(100) != 10 {
		t.Errorf("P100 with overflow = %v, want hi", h.Percentile(100))
	}
}

func TestHistogramEmptyAndBadSpec(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report 0")
	}
	for _, spec := range []struct {
		lo, hi float64
		n      int
	}{{1, 1, 4}, {2, 1, 4}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", spec.lo, spec.hi, spec.n)
				}
			}()
			NewHistogram(spec.lo, spec.hi, spec.n)
		}()
	}
}

func TestCounterEntropy(t *testing.T) {
	c := NewCounter[string]()
	// Uniform over 4 keys → 2 bits.
	for _, k := range []string{"a", "b", "c", "d"} {
		for i := 0; i < 10; i++ {
			c.Add(k)
		}
	}
	if !almost(c.Entropy(), 2, 1e-12) {
		t.Errorf("Entropy = %v, want 2", c.Entropy())
	}
	c.Reset()
	if c.Total() != 0 || c.Distinct() != 0 || c.Entropy() != 0 {
		t.Error("Reset did not clear")
	}
	// Single key → 0 bits.
	c.Add("x")
	c.Add("x")
	if c.Entropy() != 0 {
		t.Errorf("single-key entropy = %v", c.Entropy())
	}
}

func TestCounterTop(t *testing.T) {
	c := NewCounter[int]()
	for i := 0; i < 5; i++ {
		c.Add(1)
	}
	for i := 0; i < 3; i++ {
		c.Add(2)
	}
	c.Add(3)
	top := c.Top(2, func(a, b int) bool { return a < b })
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("Top = %v", top)
	}
	if all := c.Top(99, func(a, b int) bool { return a < b }); len(all) != 3 {
		t.Errorf("Top(99) = %v", all)
	}
	if c.Count(1) != 5 || c.Count(404) != 0 {
		t.Error("Count wrong")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if v := e.Update(10); v != 10 {
		t.Errorf("first update = %v, want exact init", v)
	}
	if v := e.Update(20); !almost(v, 15, 1e-12) {
		t.Errorf("second update = %v, want 15", v)
	}
	if e.Value() != 15 {
		t.Errorf("Value = %v", e.Value())
	}
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Update(7)
	}
	if !almost(e.Value(), 7, 1e-9) {
		t.Errorf("EWMA did not converge: %v", e.Value())
	}
}

func TestBinomialCI95(t *testing.T) {
	lo, hi := BinomialCI95(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("CI [%v,%v] does not contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v,%v] too wide for n=100", lo, hi)
	}
	lo, hi = BinomialCI95(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("empty-trial CI = [%v,%v], want [0,1]", lo, hi)
	}
	lo, hi = BinomialCI95(0, 20)
	if lo != 0 || hi < 0.05 || hi > 0.4 {
		t.Errorf("zero-success CI = [%v,%v]", lo, hi)
	}
	lo, hi = BinomialCI95(20, 20)
	if hi != 1 || lo > 0.95 || lo < 0.6 {
		t.Errorf("all-success CI = [%v,%v]", lo, hi)
	}
}

func TestRunningCI95Shrinks(t *testing.T) {
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: n=10 %v vs n=1000 %v", small.CI95(), large.CI95())
	}
}
