package stats

import (
	"math"
	"sync"
	"testing"
	"time"
)

// The atomic histogram must agree exactly with the plain Histogram fed
// the same observations — it reuses the bin/percentile math, so any
// divergence is a sharding bug.
func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	ah := NewAtomicHistogram(0, 100, 50, 4)
	h := NewHistogram(0, 100, 50)
	xs := []float64{-3, 0, 0.5, 12, 49.999, 50, 99.9, 100, 250}
	for i, x := range xs {
		ah.Observe(uint64(i), x)
		h.Add(x)
	}
	snap := ah.Snapshot()
	if snap.N() != h.N() {
		t.Fatalf("N = %d, want %d", snap.N(), h.N())
	}
	au, ao := snap.OutOfRange()
	hu, ho := h.OutOfRange()
	if au != hu || ao != ho {
		t.Fatalf("out of range = (%d,%d), want (%d,%d)", au, ao, hu, ho)
	}
	ab, hb := snap.Bins(), h.Bins()
	for i := range ab {
		if ab[i] != hb[i] {
			t.Fatalf("bin %d = %d, want %d", i, ab[i], hb[i])
		}
	}
	for _, p := range []float64{1, 25, 50, 95, 99} {
		if got, want := snap.Percentile(p), h.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if ah.N() != h.N() {
		t.Errorf("AtomicHistogram.N = %d, want %d", ah.N(), h.N())
	}
}

func TestAtomicHistogramShardRounding(t *testing.T) {
	for _, shards := range []int{0, 1, 3, 4, 7} {
		ah := NewAtomicHistogram(0, 10, 5, shards)
		for hint := uint64(0); hint < 32; hint++ {
			ah.Observe(hint, 5)
		}
		if got := ah.Snapshot().N(); got != 32 {
			t.Errorf("shards=%d: N = %d, want 32", shards, got)
		}
	}
}

func TestLog2NS(t *testing.T) {
	if got := Log2NS(0); got != 0 {
		t.Errorf("Log2NS(0) = %v", got)
	}
	if got := Log2NS(-5); got != 0 {
		t.Errorf("Log2NS(-5) = %v", got)
	}
	if got := Log2NS(1 << 20); got != 20 {
		t.Errorf("Log2NS(2^20) = %v, want 20", got)
	}
	if math.Abs(Log2NS(1000)-9.9657) > 1e-3 {
		t.Errorf("Log2NS(1000) = %v", Log2NS(1000))
	}
}

// The -race stress test: hammer Observe from many goroutines while a
// reader snapshots concurrently, then verify no observation was lost
// once the writers are done.
func TestAtomicHistogramConcurrentSnapshot(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	ah := NewAtomicHistogram(0, 30, 60, writers)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := ah.Snapshot()
			// Mid-flight snapshots must be internally consistent: N is
			// derived from the merged buckets, never negative or ahead
			// of the final total.
			if n := snap.N(); n < 0 || n > writers*perG {
				t.Errorf("snapshot N = %d out of [0,%d]", n, writers*perG)
				return
			}
			snap.Percentile(95)
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				ah.Observe(uint64(g), float64((g*perG+i)%35)-2)
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := ah.Snapshot().N(); got != writers*perG {
		t.Fatalf("lost observations: N = %d, want %d", got, writers*perG)
	}
}

func TestRateWindowSlope(t *testing.T) {
	w := NewRateWindow(10 * time.Second)
	sec := int64(time.Second)
	if _, ok := w.Rate(); ok {
		t.Fatal("rate available before any sample")
	}
	w.Observe(0, 0)
	if _, ok := w.Rate(); ok {
		t.Fatal("rate available from a single sample")
	}
	w.Observe(2*sec, 200) // 100/sec over 2s
	if r, ok := w.Rate(); !ok || r != 100 {
		t.Fatalf("rate = %v,%v, want 100,true", r, ok)
	}
	// Slide past the window: only the recent slope counts.
	w.Observe(20*sec, 200)  // idle gap
	w.Observe(25*sec, 1200) // 200/sec over the last 5s
	r, ok := w.Rate()
	if !ok {
		t.Fatal("rate unavailable after four samples")
	}
	// Pre-gap samples are pruned: the slope is (1200-200)/5s, not a
	// gap-flattened mean over 25s.
	if r != 200 {
		t.Fatalf("windowed rate = %v, want 200", r)
	}
}

func TestRateWindowDuplicateTimestamp(t *testing.T) {
	w := NewRateWindow(time.Minute)
	w.Observe(5, 10)
	w.Observe(5, 30) // same instant: replace, not divide-by-zero
	if _, ok := w.Rate(); ok {
		t.Fatal("rate from zero-width span")
	}
	w.Observe(int64(time.Second)+5, 40)
	if r, ok := w.Rate(); !ok || r != 10 {
		t.Fatalf("rate = %v,%v, want 10,true", r, ok)
	}
}

func TestCounterTopClampsNonPositiveK(t *testing.T) {
	c := NewCounter[int]()
	c.Add(1)
	c.Add(1)
	c.Add(2)
	for _, k := range []int{0, -1, -1 << 30} {
		if got := c.Top(k, nil); len(got) != 0 {
			t.Errorf("Top(%d) = %v, want empty", k, got)
		}
	}
	if got := c.Top(1, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("Top(1) = %v, want [1]", got)
	}
}
