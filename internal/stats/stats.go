// Package stats provides the streaming statistics the experiments and
// detectors use: Welford mean/variance accumulators, fixed-bin
// histograms with percentile queries, Shannon entropy over categorical
// counters, EWMA trackers, and normal-approximation confidence
// intervals. Everything is allocation-light and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance in one pass using
// Welford's algorithm, which is numerically stable for long runs.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min and Max return the observed extremes (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval of the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Std() / math.Sqrt(float64(r.n))
}

// Merge folds another accumulator into r (parallel reduction).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Std(), r.Min(), r.Max())
}

// Histogram is a fixed-width-bin histogram over [lo, hi) with overflow
// and underflow bins, supporting approximate percentile queries.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []int64
	under  int64
	over   int64
	n      int64
	sum    float64
}

// NewHistogram builds a histogram with nbins equal bins spanning
// [lo, hi). It panics on a degenerate range or nbins < 1.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if !(hi > lo) || nbins < 1 {
		panic(fmt.Sprintf("stats: bad histogram spec [%v,%v) x%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nbins), bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // float edge case at exactly hi-ε
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the observation count; Mean the exact running mean.
func (h *Histogram) N() int64 { return h.n }

func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns an approximation of the p-th percentile
// (0 < p < 100) using linear interpolation within the containing bin.
// Underflow mass maps to lo, overflow mass to hi.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p >= 100 {
		p = 100
	}
	target := p / 100 * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// Bins exposes a copy of the bin counts (for CSV dumps).
func (h *Histogram) Bins() []int64 {
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Counter tallies categorical observations (e.g. source addresses seen
// at a victim NIC) and reports their Shannon entropy, which collapses
// during a fixed-spoof flood and explodes under random spoofing —
// both useful DDoS signals.
type Counter[K comparable] struct {
	counts map[K]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter[K comparable]() *Counter[K] {
	return &Counter[K]{counts: make(map[K]int64)}
}

// Add increments key's count.
func (c *Counter[K]) Add(key K) {
	c.counts[key]++
	c.total++
}

// Total returns the number of observations; Distinct the number of
// distinct keys.
func (c *Counter[K]) Total() int64  { return c.total }
func (c *Counter[K]) Distinct() int { return len(c.counts) }

// Count returns the tally for key.
func (c *Counter[K]) Count(key K) int64 { return c.counts[key] }

// Entropy returns the Shannon entropy in bits of the empirical
// distribution.
func (c *Counter[K]) Entropy() float64 {
	if c.total == 0 {
		return 0
	}
	hBits := 0.0
	for _, n := range c.counts {
		p := float64(n) / float64(c.total)
		hBits -= p * math.Log2(p)
	}
	return hBits
}

// Top returns the k most frequent keys, most frequent first; ties
// break on insertion-independent key comparison via the provided less
// function over keys when frequencies are equal (callers that don't
// care can pass nil for arbitrary-but-deterministic fallback ordering
// on count only — with nil, equal-count ordering is unspecified).
// k <= 0 yields an empty result rather than a slice-bounds panic.
func (c *Counter[K]) Top(k int, less func(a, b K) bool) []K {
	if k <= 0 {
		return nil
	}
	keys := make([]K, 0, len(c.counts))
	for key := range c.counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := c.counts[keys[i]], c.counts[keys[j]]
		if ci != cj {
			return ci > cj
		}
		if less != nil {
			return less(keys[i], keys[j])
		}
		return false
	})
	if k > len(keys) {
		k = len(keys)
	}
	return keys[:k]
}

// Reset clears all tallies. The map's capacity is retained so that
// windowed users (the entropy detector closes and reopens a window per
// interval) stop allocating once they have seen a full key population.
func (c *Counter[K]) Reset() {
	clear(c.counts)
	c.total = 0
}

// EWMA is an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]; higher alpha follows the signal faster.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA creates a tracker. It panics for alpha outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds x in and returns the new average. The first observation
// initializes the average exactly.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
	} else {
		e.value += e.alpha * (x - e.value)
	}
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// BinomialCI95 returns the Wilson 95% confidence interval for a
// proportion with successes out of trials.
func BinomialCI95(successes, trials int64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
