package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// AtomicHistogram is the concurrency-safe sibling of Histogram for hot
// paths: fixed-width bins over [lo, hi) exactly like Histogram, but
// every bucket is an atomic counter sharded S ways so concurrent
// writers on different shards never contend on a cache line. Observe
// is lock-free; Snapshot merges the shards into a plain Histogram for
// the existing percentile/mean math.
//
// Consistency model: each bucket is individually exact, but a Snapshot
// taken during concurrent Observes may see some observations' buckets
// and not others'. For telemetry (latency percentiles on /metrics)
// that skew is harmless; it is never used for invariant checks.
type AtomicHistogram struct {
	lo, hi float64
	width  float64
	nbins  int
	mask   uint64 // shard index mask (len(shards)-1, power of two)
	shards []atomicBins

	// Exemplars: each bin remembers the id and value of the last tagged
	// observation recorded into it (flight-recorder trace ids in ddpmd),
	// so a histogram percentile links to one concrete retrievable
	// record. Last-write-wins across shards — exemplars are pointers,
	// not counters, so the race is benign; id and value are stored as
	// two independent atomics and may transiently mismatch under
	// concurrent stamps, which exemplar consumers tolerate.
	exID  []atomic.Uint64
	exVal []atomic.Uint64 // math.Float64bits of the tagged observation
}

// atomicBins is one shard's counters. The trailing pad keeps adjacent
// shards' hot fields out of one cache line; the bins slices are
// separate allocations and pad themselves naturally.
type atomicBins struct {
	bins  []atomic.Int64
	under atomic.Int64
	over  atomic.Int64
	_     [40]byte
}

// NewAtomicHistogram builds a sharded histogram with nbins equal bins
// spanning [lo, hi) across shards write shards (rounded up to a power
// of two, minimum 1). It panics on a degenerate range or nbins < 1,
// like NewHistogram.
func NewAtomicHistogram(lo, hi float64, nbins, shards int) *AtomicHistogram {
	if !(hi > lo) || nbins < 1 {
		panic(fmt.Sprintf("stats: bad histogram spec [%v,%v) x%d", lo, hi, nbins))
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	h := &AtomicHistogram{
		lo: lo, hi: hi, width: (hi - lo) / float64(nbins),
		nbins:  nbins,
		mask:   uint64(n - 1),
		shards: make([]atomicBins, n),
	}
	for i := range h.shards {
		h.shards[i].bins = make([]atomic.Int64, nbins)
	}
	h.exID = make([]atomic.Uint64, nbins)
	h.exVal = make([]atomic.Uint64, nbins)
	return h
}

// binOf maps an observation to its bin index, clamping out-of-range
// values to the nearest bin (exemplars want a home even for outliers).
func (h *AtomicHistogram) binOf(x float64) int {
	switch {
	case x < h.lo:
		return 0
	case x >= h.hi:
		return h.nbins - 1
	default:
		i := int((x - h.lo) / h.width)
		if i >= h.nbins {
			i = h.nbins - 1
		}
		return i
	}
}

// SetExemplar stamps id as the exemplar of the bin x falls in. It does
// not count an observation — callers pair it with Observe when the
// tagged observation should also be tallied. id 0 is ignored (the
// "untraced" sentinel).
func (h *AtomicHistogram) SetExemplar(x float64, id uint64) {
	if id == 0 {
		return
	}
	i := h.binOf(x)
	h.exID[i].Store(id)
	h.exVal[i].Store(math.Float64bits(x))
}

// Exemplar returns bin i's exemplar id and observation value; id 0
// means the bin has none.
func (h *AtomicHistogram) Exemplar(i int) (id uint64, x float64) {
	if i < 0 || i >= h.nbins {
		return 0, 0
	}
	return h.exID[i].Load(), math.Float64frombits(h.exVal[i].Load())
}

// ExemplarIDs returns the nonzero exemplar ids across every bin.
func (h *AtomicHistogram) ExemplarIDs() []uint64 {
	var out []uint64
	for i := range h.exID {
		if id := h.exID[i].Load(); id != 0 {
			out = append(out, id)
		}
	}
	return out
}

// NumBins returns the bin count; Bounds the [lo, hi) range.
func (h *AtomicHistogram) NumBins() int                { return h.nbins }
func (h *AtomicHistogram) Bounds() (lo, hi float64)    { return h.lo, h.hi }
func (h *AtomicHistogram) BinUpperBound(i int) float64 { return h.lo + float64(i+1)*h.width }

// Observe records one observation. hint selects the write shard —
// callers that already have a worker/shard index pass it so each
// worker stays on its own cache lines; any value is correct.
func (h *AtomicHistogram) Observe(hint uint64, x float64) {
	s := &h.shards[hint&h.mask]
	switch {
	case x < h.lo:
		s.under.Add(1)
	case x >= h.hi:
		s.over.Add(1)
	default:
		i := int((x - h.lo) / h.width)
		if i >= h.nbins { // float edge case at exactly hi-ε
			i = h.nbins - 1
		}
		s.bins[i].Add(1)
	}
}

// Snapshot merges every shard into a plain Histogram, on which the
// usual Percentile/N/Bins queries run. The snapshot's mean is the bin
// midpoint approximation (the atomic path does not track an exact
// running sum; callers that need one keep it beside the histogram).
func (h *AtomicHistogram) Snapshot() *Histogram {
	out := &Histogram{lo: h.lo, hi: h.hi, width: h.width, bins: make([]int64, h.nbins)}
	for si := range h.shards {
		s := &h.shards[si]
		out.under += s.under.Load()
		out.over += s.over.Load()
		for i := range s.bins {
			out.bins[i] += s.bins[i].Load()
		}
	}
	out.n = out.under + out.over
	mid := h.lo + h.width/2
	for i, c := range out.bins {
		out.n += c
		out.sum += float64(c) * (mid + float64(i)*h.width)
	}
	out.sum += float64(out.under)*h.lo + float64(out.over)*h.hi
	return out
}

// N returns the total observation count without materializing a full
// snapshot (cheap enough for hot-path guards).
func (h *AtomicHistogram) N() int64 {
	var n int64
	for si := range h.shards {
		s := &h.shards[si]
		n += s.under.Load() + s.over.Load()
		for i := range s.bins {
			n += s.bins[i].Load()
		}
	}
	return n
}

// Log2NS converts a duration in nanoseconds to the log2 domain used by
// the latency histograms (exponential buckets out of fixed-width bins:
// record log2(ns) into linear bins and exponentiate the edges back on
// read). Sub-nanosecond readings clamp to 0.
func Log2NS(ns int64) float64 {
	if ns < 1 {
		return 0
	}
	return math.Log2(float64(ns))
}
