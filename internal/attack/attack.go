// Package attack generates the DDoS workloads of the paper's threat
// model (§1): compromised cluster nodes ("zombies", in the TFN/trinoo
// style) flooding a victim with spoofed-source packets, plus the
// legitimate background traffic patterns the HPC literature uses
// (uniform random, transpose, bit-complement, hotspot, tornado), so
// experiments can measure detection and identification with attack
// traffic camouflaged inside normal load.
package attack

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Arrival models a packet-injection process; Next returns the gap to
// the next injection in ticks (> 0).
type Arrival interface {
	Name() string
	Next() eventq.Time
}

// CBR injects at a constant interval — the first-generation flooder's
// "dump packets as fast as possible" behavior when the interval is 1.
type CBR struct {
	Interval eventq.Time
}

func (c CBR) Name() string { return "cbr" }

func (c CBR) Next() eventq.Time {
	if c.Interval < 1 {
		return 1
	}
	return c.Interval
}

// Poisson injects with exponential gaps at the given mean rate
// (packets per tick) — background traffic's usual model.
type Poisson struct {
	Rate float64
	R    *rng.Stream
}

func (p Poisson) Name() string { return "poisson" }

func (p Poisson) Next() eventq.Time {
	g := eventq.Time(p.R.Exp(p.Rate) + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// OnOff alternates busy bursts (gap 1) with idle periods — the pulsing
// shape many DDoS tools use to dodge rate detectors.
type OnOff struct {
	BurstLen int         // packets per burst
	IdleGap  eventq.Time // gap between bursts
	sent     int
}

func (o *OnOff) Name() string { return "onoff" }

func (o *OnOff) Next() eventq.Time {
	o.sent++
	if o.BurstLen > 0 && o.sent%o.BurstLen == 0 {
		if o.IdleGap < 1 {
			return 1
		}
		return o.IdleGap
	}
	return 1
}

// Spoofer rewrites a packet's source address before injection.
type Spoofer interface {
	Name() string
	Apply(pk *packet.Packet)
}

// NoSpoof leaves the true address — the naive attacker DDPM is not even
// needed for.
type NoSpoof struct{}

func (NoSpoof) Name() string            { return "none" }
func (NoSpoof) Apply(pk *packet.Packet) {}

// RandomSpoof draws a uniformly random in-cluster address per packet —
// the classic "spoofed IP packets" pattern the paper targets, which
// maximizes source entropy at the victim.
type RandomSpoof struct {
	Plan *packet.AddrPlan
	R    *rng.Stream
}

func (RandomSpoof) Name() string { return "random" }

func (s RandomSpoof) Apply(pk *packet.Packet) {
	pk.Spoof(s.Plan.AddrOf(topology.NodeID(s.R.Intn(s.Plan.NumNodes()))))
}

// FixedSpoof frames one specific node on every packet.
type FixedSpoof struct {
	Addr packet.Addr
}

func (FixedSpoof) Name() string { return "fixed" }

func (s FixedSpoof) Apply(pk *packet.Packet) { pk.Spoof(s.Addr) }

// ExternalSpoof uses addresses outside the cluster plan entirely
// (bogons), defeating plain address-table lookups.
type ExternalSpoof struct {
	R *rng.Stream
}

func (ExternalSpoof) Name() string { return "external" }

func (s ExternalSpoof) Apply(pk *packet.Packet) {
	pk.Spoof(packet.AddrFrom4(192, 0, 2, byte(s.R.Intn(256)))) // TEST-NET-1
}

// Zombie is one compromised node flooding a victim.
type Zombie struct {
	Node    topology.NodeID
	Victim  topology.NodeID
	Proto   packet.Proto
	Payload int
	Arrival Arrival
	Spoof   Spoofer

	// PreloadMF, when set, seeds the Identification field of every
	// attack packet (marking-pollution attacks); nil leaves the OS-like
	// random default.
	PreloadMF func() uint16
}

// Flood drives a set of zombies against a network for a time window.
type Flood struct {
	Zombies []Zombie
	Start   eventq.Time
	Stop    eventq.Time // exclusive

	// RandomID seeds realistic varied Identification fields on packets
	// without an explicit PreloadMF.
	RandomID *rng.Stream

	launched uint64
}

// Launch schedules the whole flood into the simulator. It must be
// called before running the horizon past Start.
func (f *Flood) Launch(n *netsim.Network, plan *packet.AddrPlan) error {
	if f.Stop <= f.Start {
		return fmt.Errorf("attack: empty flood window [%d,%d)", f.Start, f.Stop)
	}
	for i := range f.Zombies {
		z := &f.Zombies[i]
		if z.Arrival == nil {
			return fmt.Errorf("attack: zombie %d has no arrival process", i)
		}
		if z.Spoof == nil {
			z.Spoof = NoSpoof{}
		}
		if z.Proto == 0 {
			z.Proto = packet.ProtoTCPSYN
		}
		at := f.Start + z.Arrival.Next() - 1
		for at < f.Stop {
			pk := packet.NewPacket(plan, z.Node, z.Victim, z.Proto, z.Payload)
			if z.PreloadMF != nil {
				pk.Hdr.ID = z.PreloadMF()
			} else if f.RandomID != nil {
				pk.Hdr.ID = uint16(f.RandomID.Intn(1 << 16))
			}
			z.Spoof.Apply(pk)
			n.InjectAt(at, pk)
			f.launched++
			at += z.Arrival.Next()
		}
	}
	return nil
}

// Launched returns the number of attack packets scheduled.
func (f *Flood) Launched() uint64 { return f.launched }
