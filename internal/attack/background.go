package attack

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Pattern names a synthetic background-traffic destination map.
type Pattern int

const (
	// Uniform sends each packet to an independently random node.
	Uniform Pattern = iota
	// Transpose sends (x, y) → (y, x); 2-D networks only.
	Transpose
	// BitComplement sends node i → ^i (one-to-one, long paths).
	BitComplement
	// Hotspot concentrates a fraction of traffic on one node and
	// spreads the rest uniformly.
	Hotspot
	// Tornado sends halfway around each dimension (torus stress).
	Tornado
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bit-complement"
	case Hotspot:
		return "hotspot"
	case Tornado:
		return "tornado"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Background generates legitimate traffic over a window: every node
// injects with Poisson gaps at InjectionRate (packets/tick/node) toward
// the destination its pattern chooses.
type Background struct {
	Pattern       Pattern
	InjectionRate float64
	Start, Stop   eventq.Time
	Proto         packet.Proto
	Payload       int

	// HotspotNode and HotspotFrac configure the Hotspot pattern.
	HotspotNode topology.NodeID
	HotspotFrac float64

	R *rng.Stream

	launched uint64
}

// destination resolves the pattern for a source node.
func (b *Background) destination(net topology.Network, src topology.NodeID) topology.NodeID {
	switch b.Pattern {
	case Uniform:
		return topology.NodeID(b.R.Intn(net.NumNodes()))
	case Transpose:
		c := net.CoordOf(src)
		if len(c) != 2 {
			panic("attack: transpose requires a 2-D network")
		}
		dims := net.Dims()
		if dims[0] != dims[1] {
			panic("attack: transpose requires a square network")
		}
		return net.IndexOf(topology.Coord{c[1], c[0]})
	case BitComplement:
		return topology.NodeID(net.NumNodes() - 1 - int(src))
	case Hotspot:
		if b.R.Float64() < b.HotspotFrac {
			return b.HotspotNode
		}
		return topology.NodeID(b.R.Intn(net.NumNodes()))
	case Tornado:
		c := net.CoordOf(src)
		dims := net.Dims()
		d := make(topology.Coord, len(c))
		for i := range c {
			d[i] = (c[i] + dims[i]/2) % dims[i]
		}
		return net.IndexOf(d)
	default:
		panic(fmt.Sprintf("attack: unknown pattern %d", int(b.Pattern)))
	}
}

// Launch schedules the background load into the simulator.
func (b *Background) Launch(n *netsim.Network, net topology.Network, plan *packet.AddrPlan) error {
	if b.Stop <= b.Start {
		return fmt.Errorf("attack: empty background window [%d,%d)", b.Start, b.Stop)
	}
	if b.InjectionRate <= 0 {
		return fmt.Errorf("attack: non-positive injection rate %v", b.InjectionRate)
	}
	if b.R == nil {
		return fmt.Errorf("attack: background needs an RNG stream")
	}
	if b.Proto == 0 {
		b.Proto = packet.ProtoRaw
	}
	for src := 0; src < net.NumNodes(); src++ {
		at := b.Start + eventq.Time(b.R.Exp(b.InjectionRate))
		for at < b.Stop {
			dst := b.destination(net, topology.NodeID(src))
			if dst != topology.NodeID(src) {
				pk := packet.NewPacket(plan, topology.NodeID(src), dst, b.Proto, b.Payload)
				pk.Hdr.ID = uint16(b.R.Intn(1 << 16)) // realistic varied IDs
				n.InjectAt(at, pk)
				b.launched++
			}
			gap := eventq.Time(b.R.Exp(b.InjectionRate) + 0.5)
			if gap < 1 {
				gap = 1
			}
			at += gap
		}
	}
	return nil
}

// Launched returns the number of background packets scheduled.
func (b *Background) Launched() uint64 { return b.launched }
