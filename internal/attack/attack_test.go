package attack

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func sim(t *testing.T, net topology.Network) (*netsim.Network, *packet.AddrPlan) {
	t.Helper()
	r := routing.NewRouter(net, routing.NewMinimalAdaptive(net))
	r.Sel = routing.RandomSelector{R: rng.NewStream(1)}
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	n, err := netsim.New(netsim.Config{Net: net, Router: r, Plan: plan, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	return n, plan
}

func TestCBRArrival(t *testing.T) {
	c := CBR{Interval: 5}
	if c.Next() != 5 {
		t.Errorf("Next = %d", c.Next())
	}
	zero := CBR{}
	if zero.Next() != 1 {
		t.Errorf("zero-interval CBR must clamp to 1")
	}
}

func TestPoissonArrivalMeanGap(t *testing.T) {
	p := Poisson{Rate: 0.1, R: rng.NewStream(2)}
	var sum eventq.Time
	const n = 20000
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 1 {
			t.Fatal("gap < 1")
		}
		sum += g
	}
	mean := float64(sum) / n
	if mean < 9 || mean < 1 || mean > 11.5 {
		t.Errorf("mean gap = %v, want ≈10", mean)
	}
}

func TestOnOffArrival(t *testing.T) {
	o := &OnOff{BurstLen: 3, IdleGap: 10}
	gaps := make([]eventq.Time, 7)
	for i := range gaps {
		gaps[i] = o.Next()
	}
	want := []eventq.Time{1, 1, 10, 1, 1, 10, 1}
	for i, w := range want {
		if gaps[i] != w {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
}

func TestSpooferBehaviors(t *testing.T) {
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	pk := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)

	NoSpoof{}.Apply(pk)
	if pk.Spoofed {
		t.Error("NoSpoof spoofed")
	}

	FixedSpoof{Addr: plan.AddrOf(9)}.Apply(pk)
	if !pk.Spoofed || pk.Hdr.Src != plan.AddrOf(9) {
		t.Error("FixedSpoof failed")
	}

	rs := RandomSpoof{Plan: plan, R: rng.NewStream(3)}
	seen := map[packet.Addr]bool{}
	for i := 0; i < 200; i++ {
		p2 := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
		rs.Apply(p2)
		seen[p2.Hdr.Src] = true
		if !plan.Contains(p2.Hdr.Src) {
			t.Fatal("RandomSpoof left the plan")
		}
	}
	if len(seen) < 10 {
		t.Errorf("RandomSpoof drew only %d distinct addresses", len(seen))
	}

	es := ExternalSpoof{R: rng.NewStream(4)}
	p3 := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	es.Apply(p3)
	if plan.Contains(p3.Hdr.Src) {
		t.Error("ExternalSpoof stayed inside the plan")
	}
}

func TestFloodLaunchesAndDelivers(t *testing.T) {
	m := topology.NewMesh2D(4)
	n, plan := sim(t, m)
	victim := m.IndexOf(topology.Coord{3, 3})
	received := 0
	spoofed := 0
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) {
		if pk.DstNode == victim {
			received++
			if pk.Spoofed {
				spoofed++
			}
		}
	})
	f := &Flood{
		Zombies: []Zombie{
			{Node: 0, Victim: victim, Arrival: CBR{Interval: 10},
				Spoof: RandomSpoof{Plan: plan, R: rng.NewStream(5)}},
			{Node: 5, Victim: victim, Arrival: CBR{Interval: 10},
				Spoof: RandomSpoof{Plan: plan, R: rng.NewStream(6)}},
		},
		Start:    0,
		Stop:     1000,
		RandomID: rng.NewStream(7),
	}
	if err := f.Launch(n, plan); err != nil {
		t.Fatal(err)
	}
	if f.Launched() != 200 {
		t.Errorf("Launched = %d, want 200", f.Launched())
	}
	n.RunAll(1e6)
	if received != 200 {
		t.Errorf("victim received %d/200", received)
	}
	if spoofed < 150 {
		t.Errorf("only %d/200 spoofed under RandomSpoof", spoofed)
	}
}

func TestFloodValidation(t *testing.T) {
	m := topology.NewMesh2D(4)
	n, plan := sim(t, m)
	f := &Flood{Zombies: []Zombie{{Node: 0, Victim: 5, Arrival: CBR{Interval: 1}}}, Start: 10, Stop: 10}
	if err := f.Launch(n, plan); err == nil {
		t.Error("empty window accepted")
	}
	f2 := &Flood{Zombies: []Zombie{{Node: 0, Victim: 5}}, Start: 0, Stop: 10}
	if err := f2.Launch(n, plan); err == nil {
		t.Error("missing arrival accepted")
	}
}

func TestFloodDefaultsToSYN(t *testing.T) {
	m := topology.NewMesh2D(4)
	n, plan := sim(t, m)
	var proto packet.Proto
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) { proto = pk.Hdr.Proto })
	f := &Flood{Zombies: []Zombie{{Node: 0, Victim: 5, Arrival: CBR{Interval: 100}}}, Start: 0, Stop: 100}
	if err := f.Launch(n, plan); err != nil {
		t.Fatal(err)
	}
	n.RunAll(1e5)
	if proto != packet.ProtoTCPSYN {
		t.Errorf("proto = %v, want tcp-syn", proto)
	}
}

func TestBackgroundPatterns(t *testing.T) {
	m := topology.NewMesh2D(4)
	for _, p := range []Pattern{Uniform, Transpose, BitComplement, Hotspot, Tornado} {
		n, plan := sim(t, m)
		delivered := 0
		n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) {
			delivered++
			if pk.Spoofed {
				t.Errorf("%v: background traffic spoofed", p)
			}
		})
		b := &Background{
			Pattern:       p,
			InjectionRate: 0.01,
			Start:         0,
			Stop:          2000,
			HotspotNode:   5,
			HotspotFrac:   0.5,
			R:             rng.NewStream(uint64(p) + 10),
		}
		if err := b.Launch(n, m, plan); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if b.Launched() == 0 {
			t.Fatalf("%v: nothing launched", p)
		}
		n.RunAll(1e7)
		if uint64(delivered) != b.Launched() {
			t.Errorf("%v: delivered %d of %d", p, delivered, b.Launched())
		}
	}
}

func TestBackgroundDestinationMaps(t *testing.T) {
	m := topology.NewMesh2D(4)
	b := &Background{Pattern: Transpose, R: rng.NewStream(1)}
	src := m.IndexOf(topology.Coord{1, 3})
	if dst := b.destination(m, src); dst != m.IndexOf(topology.Coord{3, 1}) {
		t.Errorf("transpose dst = %v", m.CoordOf(dst))
	}
	b.Pattern = BitComplement
	if dst := b.destination(m, 0); dst != 15 {
		t.Errorf("bit-complement dst = %d", dst)
	}
	b.Pattern = Tornado
	if dst := b.destination(m, m.IndexOf(topology.Coord{0, 0})); dst != m.IndexOf(topology.Coord{2, 2}) {
		t.Errorf("tornado dst = %v", m.CoordOf(dst))
	}
	b.Pattern = Hotspot
	b.HotspotFrac = 1.0
	b.HotspotNode = 7
	if dst := b.destination(m, 0); dst != 7 {
		t.Errorf("hotspot dst = %d", dst)
	}
}

func TestBackgroundValidation(t *testing.T) {
	m := topology.NewMesh2D(4)
	n, plan := sim(t, m)
	if err := (&Background{Pattern: Uniform, InjectionRate: 0.1, Start: 5, Stop: 5, R: rng.NewStream(1)}).Launch(n, m, plan); err == nil {
		t.Error("empty window accepted")
	}
	if err := (&Background{Pattern: Uniform, InjectionRate: 0, Start: 0, Stop: 10, R: rng.NewStream(1)}).Launch(n, m, plan); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (&Background{Pattern: Uniform, InjectionRate: 0.1, Start: 0, Stop: 10}).Launch(n, m, plan); err == nil {
		t.Error("missing RNG accepted")
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{Uniform, Transpose, BitComplement, Hotspot, Tornado, Pattern(99)} {
		if p.String() == "" {
			t.Error("empty pattern string")
		}
	}
	for _, a := range []Arrival{CBR{}, Poisson{Rate: 1, R: rng.NewStream(1)}, &OnOff{}} {
		if a.Name() == "" {
			t.Error("empty arrival name")
		}
	}
	for _, s := range []Spoofer{NoSpoof{}, RandomSpoof{}, FixedSpoof{}, ExternalSpoof{}} {
		if s.Name() == "" {
			t.Error("empty spoofer name")
		}
	}
}
