package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks the parser never panics and that every accepted
// header re-marshals to identical bytes (parse/print round trip).
func FuzzUnmarshal(f *testing.F) {
	h := Header{TTL: 64, Proto: ProtoTCPSYN, ID: 0x1234, Src: 0x0A000001, Dst: 0x0A000002, Length: 60}
	f.Add(h.Marshal())
	f.Add(make([]byte, HeaderLen))
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := got.Marshal()
		if !bytes.Equal(re, data[:HeaderLen]) {
			t.Fatalf("accepted header does not round trip:\n in  %x\n out %x", data[:HeaderLen], re)
		}
	})
}

// FuzzChecksum checks the verification identity: any marshaled header
// verifies to zero, and flipping any bit breaks it.
func FuzzChecksum(f *testing.F) {
	f.Add(uint8(64), uint8(6), uint16(1), uint32(2), uint32(3), uint16(20), uint8(0))
	f.Fuzz(func(t *testing.T, ttl, proto uint8, id uint16, src, dst uint32, length uint16, flip uint8) {
		h := Header{TTL: ttl, Proto: Proto(proto), ID: id, Src: Addr(src), Dst: Addr(dst), Length: length}
		b := h.Marshal()
		if Verify(b) != 0 {
			t.Fatal("fresh header does not verify")
		}
		pos := int(flip) % (HeaderLen * 8)
		if pos/8 == 0 {
			return // flipping version byte is rejected before checksum
		}
		b[pos/8] ^= 1 << (pos % 8)
		if _, err := Unmarshal(b); err == nil {
			// A flipped bit may cancel only if it hits the checksum
			// field itself in a way that keeps the fold consistent —
			// impossible for a single bit flip in one's complement.
			t.Fatalf("single-bit corruption at %d accepted", pos)
		}
	})
}
