package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom4(10, 0, 1, 255)
	if got := a.String(); got != "10.0.1.255" {
		t.Errorf("String = %q", got)
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("192.168.3.4")
	if err != nil {
		t.Fatal(err)
	}
	if a != AddrFrom4(192, 168, 3, 4) {
		t.Errorf("ParseAddr = %v", a)
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Error("bad addr parsed")
	}
	if _, err := ParseAddr("::1"); err == nil {
		t.Error("IPv6 accepted")
	}
}

func TestHeaderMarshalRoundTrip(t *testing.T) {
	h := Header{
		TTL:    37,
		Proto:  ProtoTCPSYN,
		ID:     0xBEEF,
		Src:    AddrFrom4(10, 0, 0, 5),
		Dst:    AddrFrom4(10, 0, 0, 9),
		Length: 60,
	}
	b := h.Marshal()
	if len(b) != HeaderLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v != %+v", got, h)
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(ttl uint8, proto uint8, id uint16, src, dst uint32, length uint16) bool {
		h := Header{TTL: ttl, Proto: Proto(proto), ID: id, Src: Addr(src), Dst: Addr(dst), Length: length}
		got, err := Unmarshal(h.Marshal())
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	h := Header{TTL: 10, Proto: ProtoUDP, ID: 1, Src: 2, Dst: 3, Length: 20}
	b := h.Marshal()
	// Flip one bit anywhere except where it cancels in checksum.
	b[4] ^= 0x01
	if _, err := Unmarshal(b); err == nil {
		t.Error("corrupted header accepted")
	}
	if _, err := Unmarshal(b[:10]); err == nil {
		t.Error("short header accepted")
	}
	b2 := h.Marshal()
	b2[0] = 0x46
	if _, err := Unmarshal(b2); err == nil {
		t.Error("bad version accepted")
	}
}

func TestChecksumValidHeaderVerifiesToZero(t *testing.T) {
	h := Header{TTL: 1, Proto: ProtoICMP, ID: 0xFFFF, Src: 0xFFFFFFFF, Dst: 0, Length: 20}
	if Verify(h.Marshal()) != 0 {
		t.Error("valid header does not verify to 0")
	}
}

func TestAddrPlanMapping(t *testing.T) {
	p := NewAddrPlan(DefaultBase, 16)
	if p.NumNodes() != 16 {
		t.Errorf("NumNodes = %d", p.NumNodes())
	}
	for i := 0; i < 16; i++ {
		a := p.AddrOf(topology.NodeID(i))
		id, ok := p.NodeOf(a)
		if !ok || id != topology.NodeID(i) {
			t.Fatalf("plan round trip failed for node %d", i)
		}
		if !p.Contains(a) {
			t.Fatalf("Contains(%v) = false", a)
		}
	}
	if _, ok := p.NodeOf(DefaultBase + 16); ok {
		t.Error("out-of-plan address resolved")
	}
	if p.Contains(AddrFrom4(8, 8, 8, 8)) {
		t.Error("Contains accepted external address")
	}
}

func TestAddrPlanValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-node plan did not panic")
			}
		}()
		NewAddrPlan(DefaultBase, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflowing plan did not panic")
			}
		}()
		NewAddrPlan(AddrFrom4(255, 255, 255, 250), 10)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddrOf out of range did not panic")
			}
		}()
		NewAddrPlan(DefaultBase, 4).AddrOf(4)
	}()
}

func TestNewPacketDefaults(t *testing.T) {
	p := NewAddrPlan(DefaultBase, 16)
	pk := NewPacket(p, 3, 7, ProtoTCPSYN, 40)
	if pk.Hdr.TTL != DefaultTTL {
		t.Errorf("TTL = %d", pk.Hdr.TTL)
	}
	if pk.Hdr.Src != p.AddrOf(3) || pk.Hdr.Dst != p.AddrOf(7) {
		t.Error("addresses wrong")
	}
	if pk.Spoofed {
		t.Error("fresh packet marked spoofed")
	}
	if pk.Hdr.Length != HeaderLen+40 {
		t.Errorf("Length = %d", pk.Hdr.Length)
	}
	if pk.TrueSrc != p.AddrOf(3) {
		t.Error("TrueSrc wrong")
	}
}

func TestSpoof(t *testing.T) {
	p := NewAddrPlan(DefaultBase, 16)
	pk := NewPacket(p, 3, 7, ProtoTCPSYN, 0)
	fake := p.AddrOf(12)
	pk.Spoof(fake)
	if pk.Hdr.Src != fake {
		t.Error("Spoof did not rewrite header")
	}
	if !pk.Spoofed {
		t.Error("Spoofed flag not set")
	}
	if pk.TrueSrc != p.AddrOf(3) {
		t.Error("ground truth lost")
	}
	// Spoofing back to the true address clears the flag.
	pk.Spoof(p.AddrOf(3))
	if pk.Spoofed {
		t.Error("self-spoof should not be flagged")
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{
		ProtoRaw:    "raw",
		ProtoICMP:   "icmp",
		ProtoTCPSYN: "tcp-syn",
		ProtoTCPACK: "tcp-ack",
		ProtoUDP:    "udp",
		Proto(99):   "proto(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Proto(%d).String = %q, want %q", uint8(p), got, want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := NewAddrPlan(DefaultBase, 4)
	pk := NewPacket(p, 0, 3, ProtoUDP, 0)
	if s := pk.String(); s == "" {
		t.Error("empty String")
	}
	pk.Spoof(p.AddrOf(2))
	if s := pk.String(); s == "" {
		t.Error("empty String for spoofed packet")
	}
}
