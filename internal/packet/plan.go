package packet

import (
	"fmt"

	"repro/internal/topology"
)

// AddrPlan is the bidirectional mapping between cluster-private IP
// addresses and topology indexes (paper §4.1: "After establishing a
// mapping table between IP addresses and indexes, switches look for
// this index alone"). The plan assigns node i the address base+i inside
// a 10.0.0.0/8-style private block.
type AddrPlan struct {
	base Addr
	n    int
	byIP map[Addr]topology.NodeID
}

// DefaultBase is the first host address of the default private block.
var DefaultBase = AddrFrom4(10, 0, 0, 1)

// NewAddrPlan allocates addresses base, base+1, … base+n−1 for nodes
// 0…n−1. It panics if the block would wrap the IPv4 space.
func NewAddrPlan(base Addr, n int) *AddrPlan {
	if n <= 0 {
		panic("packet: AddrPlan needs at least one node")
	}
	if uint64(base)+uint64(n) > 1<<32 {
		panic(fmt.Sprintf("packet: address block %v + %d nodes overflows IPv4", base, n))
	}
	p := &AddrPlan{base: base, n: n, byIP: make(map[Addr]topology.NodeID, n)}
	for i := 0; i < n; i++ {
		p.byIP[base+Addr(i)] = topology.NodeID(i)
	}
	return p
}

// NumNodes returns the number of mapped nodes.
func (p *AddrPlan) NumNodes() int { return p.n }

// AddrOf returns the IP address of node id; it panics on out-of-range
// ids (a simulator bug, not an input error).
func (p *AddrPlan) AddrOf(id topology.NodeID) Addr {
	if id < 0 || int(id) >= p.n {
		panic(fmt.Sprintf("packet: node %d outside plan of %d nodes", id, p.n))
	}
	return p.base + Addr(id)
}

// NodeOf resolves an IP address to its node, reporting ok=false for
// addresses outside the plan — exactly the condition a victim hits when
// an attacker spoofs a source address that is not even a cluster node.
func (p *AddrPlan) NodeOf(a Addr) (topology.NodeID, bool) {
	id, ok := p.byIP[a]
	return id, ok
}

// Contains reports whether a belongs to the plan.
func (p *AddrPlan) Contains(a Addr) bool {
	_, ok := p.byIP[a]
	return ok
}

// Packet is the in-flight representation the simulator moves between
// switches. Header fields are mutated in place by marking schemes; the
// struct additionally carries simulator-only ground truth (TrueSrc) so
// experiments can score identification accuracy. Ground truth is never
// consulted by any scheme or victim logic.
type Packet struct {
	Hdr Header

	// SrcNode/DstNode are the topology endpoints. SrcNode is where the
	// packet physically entered the fabric — the value every traceback
	// scheme is trying to recover. DstNode is the routing destination
	// (derived from Hdr.Dst via the plan; kept denormalized for speed).
	SrcNode, DstNode topology.NodeID

	// TrueSrc records the real origin address even when Hdr.Src is
	// spoofed. Experiment scoring only.
	TrueSrc Addr

	// Spoofed marks packets whose Hdr.Src ≠ TrueSrc. Scoring only.
	Spoofed bool

	// Seq is a unique per-simulation sequence number for tracing.
	Seq uint64

	// Hops counts switch-to-switch traversals so far.
	Hops int

	// InjectedAt / DeliveredAt are simulation timestamps (ticks).
	InjectedAt, DeliveredAt int64

	// PayloadLen is the modeled payload size in bytes.
	PayloadLen int

	// MisroutesUsed counts the non-productive hops this packet has
	// taken, charged against the router's misroute budget. Fabric
	// state, maintained by the simulator.
	MisroutesUsed int

	// Recycle marks packets owned by a simulator packet pool: after the
	// delivery/drop callbacks return, the fabric reclaims the packet
	// for reuse, so sinks must not retain the pointer past the
	// callback. Packets built with NewPacket never set it.
	Recycle bool

	// Wide is an optional out-of-band marking record used only by the
	// "idealized" marking variants that do not fit the 16-bit MF — the
	// paper's IP-option alternative ("It would be possible to store the
	// edge information in the IP additional option"), which it rejects
	// for real deployments but which we model to measure convergence
	// behavior independent of encoding limits. Schemes that fit in the
	// MF never touch it.
	Wide any
}

// NewPacket assembles a packet from src to dst with the given protocol
// and payload size, using genuine (non-spoofed) addressing.
func NewPacket(plan *AddrPlan, src, dst topology.NodeID, proto Proto, payload int) *Packet {
	return new(Packet).Init(plan, src, dst, proto, payload)
}

// Init resets pk to a freshly built packet from src to dst — the
// recycling entry point for packet pools. Every field is overwritten,
// so a pooled packet carries no state from its previous life.
func (pk *Packet) Init(plan *AddrPlan, src, dst topology.NodeID, proto Proto, payload int) *Packet {
	srcAddr := plan.AddrOf(src)
	*pk = Packet{
		Hdr: Header{
			TTL:    DefaultTTL,
			Proto:  proto,
			Src:    srcAddr,
			Dst:    plan.AddrOf(dst),
			Length: uint16(HeaderLen + payload),
		},
		SrcNode:    src,
		DstNode:    dst,
		TrueSrc:    srcAddr,
		PayloadLen: payload,
	}
	return pk
}

// Spoof overwrites the header source address, recording ground truth.
// This is the attacker's move: the marking field is untouched because
// the paper's threat model lets attackers forge any header field at
// injection time — which is precisely why schemes must write the MF in
// switches, after the packet leaves the attacker's control.
func (pk *Packet) Spoof(fake Addr) {
	pk.Hdr.Src = fake
	pk.Spoofed = fake != pk.TrueSrc
}

func (pk *Packet) String() string {
	spoof := ""
	if pk.Spoofed {
		spoof = " (spoofed)"
	}
	return fmt.Sprintf("pkt#%d %s %v->%v%s node %d->%d mf=%#04x ttl=%d",
		pk.Seq, pk.Hdr.Proto, pk.Hdr.Src, pk.Hdr.Dst, spoof, pk.SrcNode, pk.DstNode, pk.Hdr.ID, pk.Hdr.TTL)
}
