// Package packet implements the IP-flavored packet model the paper
// assumes (§4.1): cluster nodes speak IP even when switches route by
// topology index, so every packet carries a real IPv4-style header
// whose 16-bit Identification field doubles as the Marking Field (MF)
// for all traceback schemes. The package also provides the node⇄IP
// mapping table the paper describes ("After establishing a mapping
// table between IP addresses and indexes, switches look for this index
// alone") and source-address spoofing.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto identifies the transport payload carried by a packet; the
// simulator models just enough of TCP to express SYN-flood attacks.
type Proto uint8

// Protocol numbers follow IANA where a real equivalent exists.
const (
	ProtoRaw    Proto = 0xFF // opaque payload, background traffic
	ProtoICMP   Proto = 1
	ProtoTCPSYN Proto = 6  // a TCP segment with SYN set (half-open opener)
	ProtoTCPACK Proto = 60 // non-SYN TCP segment (established traffic)
	ProtoUDP    Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoRaw:
		return "raw"
	case ProtoICMP:
		return "icmp"
	case ProtoTCPSYN:
		return "tcp-syn"
	case ProtoTCPACK:
		return "tcp-ack"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Addr is an IPv4 address in host byte order. The cluster's private
// addressing plan lives in AddrPlan.
type Addr uint32

// AddrFrom4 builds an Addr from dotted-quad components.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("packet: parse addr %q: %w", s, err)
	}
	if !ip.Is4() {
		return 0, fmt.Errorf("packet: addr %q is not IPv4", s)
	}
	b := ip.As4()
	return AddrFrom4(b[0], b[1], b[2], b[3]), nil
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// HeaderLen is the fixed IPv4 header size we model (no options; the
// paper explicitly rejects IP-option marking as too expensive for
// high-performance clusters, §4.2).
const HeaderLen = 20

// DefaultTTL matches the common IP initial TTL; DPM marking positions
// are derived from TTL mod 16, so the model must decrement it per hop.
const DefaultTTL = 64

// Header is the IPv4-like header. ID is the 16-bit Identification
// field — the Marking Field every traceback scheme writes into.
type Header struct {
	TTL      uint8
	Proto    Proto
	ID       uint16 // Marking Field (MF)
	Src, Dst Addr
	Length   uint16 // total datagram length incl. header, bytes
}

// Marshal serializes the header into a fresh 20-byte slice laid out
// like IPv4 (version/IHL, TOS, length, ID, flags/frag, TTL, proto,
// checksum, src, dst) with a valid Internet checksum.
func (h *Header) Marshal() []byte {
	b := make([]byte, HeaderLen)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], h.Length)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], 0) // flags/fragment unused
	b[8] = h.TTL
	b[9] = uint8(h.Proto)
	// checksum at [10:12] computed over the header with the field zero
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:12], Checksum(b))
	return b
}

// Unmarshal parses a header serialized by Marshal, verifying version,
// length and checksum.
func Unmarshal(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, fmt.Errorf("packet: short header: %d bytes", len(b))
	}
	if b[0] != 0x45 {
		return h, fmt.Errorf("packet: bad version/IHL byte %#x", b[0])
	}
	if Verify(b[:HeaderLen]) != 0 {
		return h, fmt.Errorf("packet: header checksum mismatch")
	}
	h.Length = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = Proto(b[9])
	h.Src = Addr(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = Addr(binary.BigEndian.Uint32(b[16:20]))
	return h, nil
}

// Checksum computes the Internet checksum (RFC 1071) of b with the
// checksum field (bytes 10–11) treated as zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		if i == 10 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Verify folds the full header including its stored checksum; a valid
// header folds to 0.
func Verify(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
