// Package rng provides deterministic, splittable random number streams
// for the simulator. Every stochastic component (traffic generators,
// adaptive route selection, PPM sampling, spoofing) draws from its own
// named substream so that adding one component never perturbs the draws
// of another — a prerequisite for reproducible experiments and
// regression-stable golden outputs.
//
// The generator is xoshiro256**, seeded through splitmix64, both
// implemented here because the experiments must not depend on the exact
// sequence of math/rand across Go releases.
package rng

import "math"

// splitmix64 advances the seed and returns the next 64-bit output.
// It is used only to expand seeds into xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a xoshiro256** generator. It is NOT safe for concurrent
// use; give each goroutine (or each simulated component) its own Stream
// via Source.Stream.
type Stream struct {
	s [4]uint64
}

// NewStream seeds a stream directly from a 64-bit seed.
func NewStream(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit output.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method for unbiased bounded
// generation without division in the common case.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aL, aH := a&mask, a>>32
	bL, bH := b&mask, b>>32
	t := aL * bL
	lo = t & mask
	c := t >> 32
	t = aH*bL + c
	mid := t & mask
	hiPart := t >> 32
	t = aL*bH + mid
	lo |= (t & mask) << 32
	hi = aH*bH + hiPart + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). Used for Poisson arrival processes.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly random element of xs. It panics on an empty
// slice.
func Pick[T any](r *Stream, xs []T) T {
	if len(xs) == 0 {
		panic("rng: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// Source derives independent named streams from a root seed. Stream
// derivation hashes the name with FNV-1a, so the same (seed, name) pair
// always yields the same stream regardless of derivation order.
type Source struct {
	seed uint64
}

// NewSource creates a stream factory rooted at seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Stream derives the substream for name.
func (s *Source) Stream(name string) *Stream {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return NewStream(s.seed ^ h)
}
