package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(12345)
	b := NewStream(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewStream(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square check over 8 buckets; loose bound, deterministic seed.
	r := NewStream(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; 99.9th percentile ≈ 24.3.
	if chi2 > 24.3 {
		t.Errorf("chi-square = %.2f, counts %v", chi2, counts)
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	r := NewStream(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewStream(11)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewStream(5)
	for _, n := range []int{0, 1, 2, 17} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPick(t *testing.T) {
	r := NewStream(8)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick never returned some element: %v", seen)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pick on empty slice did not panic")
			}
		}()
		Pick(r, []int{})
	}()
}

func TestSourceNamedStreamsIndependentOfOrder(t *testing.T) {
	s1 := NewSource(42)
	a1 := s1.Stream("traffic").Uint64()
	b1 := s1.Stream("routing").Uint64()

	s2 := NewSource(42)
	b2 := s2.Stream("routing").Uint64()
	a2 := s2.Stream("traffic").Uint64()

	if a1 != a2 || b1 != b2 {
		t.Error("stream derivation depends on order")
	}
	if a1 == b1 {
		t.Error("distinct names produced identical streams")
	}
}

func TestMul64AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit schoolbook recomputation.
		aL, aH := a&0xffffffff, a>>32
		bL, bH := b&0xffffffff, b>>32
		ll := aL * bL
		lh := aL * bH
		hl := aH * bL
		hh := aH * bH
		wantLo := ll + (lh << 32)
		carry := uint64(0)
		if wantLo < ll {
			carry++
		}
		tmp := wantLo
		wantLo += hl << 32
		if wantLo < tmp {
			carry++
		}
		wantHi := hh + (lh >> 32) + (hl >> 32) + carry
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := NewStream(123)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Errorf("Bool true count = %d/%d", trues, n)
	}
}
