package eventq

import (
	"testing"
)

func TestOrderingByTime(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func(Time) { got = append(got, 3) })
	q.At(10, func(Time) { got = append(got, 1) })
	q.At(20, func(Time) { got = append(got, 2) })
	q.Drain(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v, want [1 2 3]", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %d, want 30", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(Time) { got = append(got, i) })
	}
	q.Drain(100)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	q := New()
	var at Time
	q.At(42, func(now Time) { at = now })
	q.Step()
	if at != 42 || q.Now() != 42 {
		t.Errorf("event saw time %d, queue at %d; want 42", at, q.Now())
	}
}

func TestAfterIsRelative(t *testing.T) {
	q := New()
	var second Time
	q.At(10, func(now Time) {
		q.After(5, func(n2 Time) { second = n2 })
	})
	q.Drain(100)
	if second != 15 {
		t.Errorf("After(5) from t=10 fired at %d, want 15", second)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	q := New()
	q.At(10, func(Time) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("At(5) at now=10 did not panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	q := New()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	q.After(-1, func(Time) {})
}

func TestNilEventPanics(t *testing.T) {
	q := New()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	q.At(1, nil)
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	h := q.At(10, func(Time) { fired = true })
	h.Cancel()
	q.Drain(100)
	if fired {
		t.Error("cancelled event fired")
	}
	if q.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", q.Fired())
	}
	// Double cancel is a no-op.
	h.Cancel()
}

func TestRunHorizonExclusive(t *testing.T) {
	q := New()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		q.At(at, func(now Time) { got = append(got, now) })
	}
	n := q.Run(15)
	if n != 2 {
		t.Errorf("Run(15) executed %d events, want 2 (horizon exclusive)", n)
	}
	if q.Now() != 15 {
		t.Errorf("Now = %d, want 15 after Run(15)", q.Now())
	}
	n = q.Run(100)
	if n != 2 {
		t.Errorf("second Run executed %d, want 2", n)
	}
	if len(got) != 4 {
		t.Errorf("events fired: %v", got)
	}
}

func TestRunAdvancesClockOnEmptyQueue(t *testing.T) {
	q := New()
	q.Run(50)
	if q.Now() != 50 {
		t.Errorf("Now = %d, want 50", q.Now())
	}
}

func TestSelfRescheduling(t *testing.T) {
	q := New()
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 10 {
			q.After(3, tick)
		}
	}
	q.After(3, tick)
	q.Drain(1000)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %d, want 30", q.Now())
	}
}

func TestDrainRunawayGuard(t *testing.T) {
	q := New()
	var loop func(Time)
	loop = func(Time) { q.After(1, loop) }
	q.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway Drain did not panic")
		}
	}()
	q.Drain(100)
}

func TestCancelledBuriedEventsSkippedByRun(t *testing.T) {
	q := New()
	var hs []Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, q.At(Time(i+1), func(Time) {}))
	}
	for _, h := range hs {
		h.Cancel()
	}
	q.At(10, func(Time) {})
	if n := q.Run(20); n != 1 {
		t.Errorf("Run executed %d events, want 1", n)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Error("Step on empty queue returned true")
	}
	h := q.At(1, func(Time) {})
	h.Cancel()
	if q.Step() {
		t.Error("Step with only cancelled events returned true")
	}
}
