// Package eventq implements the discrete-event simulation kernel: a
// monotone virtual clock and a priority queue of timestamped events
// with deterministic FIFO tie-breaking. All network, attack and
// detection activity in the simulator is driven by this queue.
package eventq

import (
	"container/heap"
	"fmt"
)

// Time is simulation time in abstract ticks. The network simulator
// interprets one tick as one link-traversal cycle.
type Time int64

// Event is a callback scheduled at a point in simulated time.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	fn   Event
	idx  int
	dead bool
}

// Handle refers to a scheduled event and allows cancellation.
type Handle struct{ it *item }

// Cancel marks the event so it will not fire. Cancelling an already
// fired or cancelled event is a no-op. Cancel is O(1); the item is
// dropped lazily when it reaches the top of the heap.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

type pq []*item

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].at != p[j].at {
		return p[i].at < p[j].at
	}
	return p[i].seq < p[j].seq
}
func (p pq) Swap(i, j int) {
	p[i], p[j] = p[j], p[i]
	p[i].idx = i
	p[j].idx = j
}
func (p *pq) Push(x any) {
	it := x.(*item)
	it.idx = len(*p)
	*p = append(*p, it)
}
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

// Queue is a discrete-event scheduler. It is not safe for concurrent
// use; the simulation is single-threaded by design (parallel runs are
// achieved by running independent Queue instances per goroutine).
type Queue struct {
	now   Time
	seq   uint64
	items pq
	fired uint64
}

// New returns an empty queue at time 0.
func New() *Queue { return &Queue{} }

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Fired returns the number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events still buried in the heap are counted until popped, so Len is
// an upper bound; Empty is exact for scheduling purposes.
func (q *Queue) Len() int { return len(q.items) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it indicates a simulator bug, and silently
// clamping would mask causality violations.
func (q *Queue) At(at Time, fn Event) Handle {
	if at < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %d before now %d", at, q.now))
	}
	if fn == nil {
		panic("eventq: nil event")
	}
	it := &item{at: at, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.items, it)
	return Handle{it: it}
}

// After schedules fn to run delay ticks from now.
func (q *Queue) After(delay Time, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventq: negative delay %d", delay))
	}
	return q.At(q.now+delay, fn)
}

// Step pops and runs the earliest event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (q *Queue) Step() bool {
	for len(q.items) > 0 {
		it := heap.Pop(&q.items).(*item)
		if it.dead {
			continue
		}
		q.now = it.at
		q.fired++
		it.fn(q.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock passes
// horizon (exclusive). Events at exactly horizon do not run, so
// successive Run(h1), Run(h2) windows partition time cleanly. It
// returns the number of events executed.
func (q *Queue) Run(horizon Time) uint64 {
	start := q.fired
	for len(q.items) > 0 {
		// Peek: find the earliest live event.
		top := q.items[0]
		if top.dead {
			heap.Pop(&q.items)
			continue
		}
		if top.at >= horizon {
			break
		}
		q.Step()
	}
	if q.now < horizon {
		q.now = horizon
	}
	return q.fired - start
}

// Drain runs every remaining event. maxEvents guards against runaway
// self-rescheduling loops; Drain panics if the bound is hit.
func (q *Queue) Drain(maxEvents uint64) uint64 {
	start := q.fired
	for q.Step() {
		if q.fired-start > maxEvents {
			panic(fmt.Sprintf("eventq: Drain exceeded %d events — runaway schedule?", maxEvents))
		}
	}
	return q.fired - start
}
