// Package eventq implements the discrete-event simulation kernel: a
// monotone virtual clock and a priority queue of timestamped events
// with deterministic FIFO tie-breaking. All network, attack and
// detection activity in the simulator is driven by this queue.
//
// The queue offers two scheduling surfaces. The typed-event surface
// (SetHandler + PostAt/PostAfter) is the hot path: events are small
// payload records (a kind tag, one integer word, one pointer word)
// dispatched through a single Handler, so steady-state scheduling does
// not allocate — items live in a freelist-backed slab ordered by an
// index-based 4-ary heap. The closure surface (At/After) is a thin
// compatibility layer over the same heap for cold-path callers
// (injection schedules, tests) that prefer the ergonomic form; each
// closure costs one allocation, which is fine off the hot path.
package eventq

import (
	"fmt"
)

// Time is simulation time in abstract ticks. The network simulator
// interprets one tick as one link-traversal cycle.
type Time int64

// Event is a callback scheduled at a point in simulated time.
type Event func(now Time)

// Handler consumes typed events. kind is the caller-defined event tag
// passed to PostAt (always ≥ 0); a and p are the payload words given at
// post time. A single handler serves the whole queue: the simulator
// owning the queue dispatches on kind.
type Handler interface {
	HandleEvent(now Time, kind int32, a int64, p any)
}

// kindClosure marks compatibility-layer events carrying an Event
// closure; user kinds must be non-negative.
const kindClosure int32 = -1

const noIndex int32 = -1

// item is one scheduled event, stored in the queue's slab and reused
// through the freelist after it fires or is released.
type item struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	a    int64
	p    any
	fn   Event
	kind int32
	gen  uint32 // bumped on release so stale Handles cannot cancel a reused slot
	dead bool
}

// Handle refers to a scheduled event and allows cancellation. The zero
// Handle is valid and refers to nothing.
type Handle struct {
	q   *Queue
	idx int32
	gen uint32
}

// Cancel marks the event so it will not fire. Cancelling an already
// fired or cancelled event is a no-op — the handle's generation tag
// guards against the slot having been reused by a later event. Cancel
// is O(1); the item is dropped lazily when it reaches the top of the
// heap, without counting toward Fired.
func (h Handle) Cancel() {
	if h.q == nil || h.idx == noIndex {
		return
	}
	if it := &h.q.slab[h.idx]; it.gen == h.gen {
		it.dead = true
	}
}

// heapEntry is one node of the 4-ary min-heap. The (at, seq) ordering
// key is embedded so comparisons never chase into the slab — sift-down
// on a hot queue is comparison-bound, and the indirection would cost a
// dependent cache miss per compare.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

// Queue is a discrete-event scheduler. It is not safe for concurrent
// use; the simulation is single-threaded by design (parallel runs are
// achieved by running independent Queue instances per goroutine).
type Queue struct {
	now     Time
	seq     uint64
	fired   uint64
	handler Handler

	slab []item      // all items, live and free
	heap []heapEntry // 4-ary min-heap on (at, seq)
	free []int32     // released slab indices, reused LIFO
}

// New returns an empty queue at time 0.
func New() *Queue { return &Queue{} }

// SetHandler installs the typed-event consumer. It must be set before
// the first PostAt/PostAfter event fires.
func (q *Queue) SetHandler(h Handler) { q.handler = h }

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Fired returns the number of events executed so far. Cancelled events
// never count.
func (q *Queue) Fired() uint64 { return q.fired }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events still buried in the heap are counted until popped, so Len is
// an upper bound; Empty is exact for scheduling purposes.
func (q *Queue) Len() int { return len(q.heap) }

// alloc takes an item from the freelist (or grows the slab), assigns
// its (at, seq) key and pushes it onto the heap.
func (q *Queue) alloc(at Time) int32 {
	if at < q.now {
		panic(fmt.Sprintf("eventq: scheduling at %d before now %d", at, q.now))
	}
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slab = append(q.slab, item{})
		idx = int32(len(q.slab) - 1)
	}
	it := &q.slab[idx]
	it.at = at
	it.seq = q.seq
	it.dead = false
	q.seq++
	q.push(heapEntry{at: at, seq: it.seq, idx: idx})
	return idx
}

// release returns a popped item to the freelist, clearing references so
// the slab does not pin packets or closures, and bumping the generation
// so outstanding Handles to the old event become inert.
func (q *Queue) release(idx int32) {
	it := &q.slab[idx]
	it.fn = nil
	it.p = nil
	it.gen++
	q.free = append(q.free, idx)
}

// PostAt schedules a typed event at absolute time at. kind must be
// non-negative; a and p travel to the Handler verbatim. Steady-state
// posting is allocation-free (p holds pointer-shaped payloads without
// boxing). Scheduling in the past panics: it indicates a simulator bug,
// and silently clamping would mask causality violations.
func (q *Queue) PostAt(at Time, kind int32, a int64, p any) Handle {
	if kind < 0 {
		panic(fmt.Sprintf("eventq: negative event kind %d is reserved", kind))
	}
	idx := q.alloc(at)
	it := &q.slab[idx]
	it.kind = kind
	it.a = a
	it.p = p
	it.fn = nil
	return Handle{q: q, idx: idx, gen: it.gen}
}

// PostAfter schedules a typed event delay ticks from now.
func (q *Queue) PostAfter(delay Time, kind int32, a int64, p any) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventq: negative delay %d", delay))
	}
	return q.PostAt(q.now+delay, kind, a, p)
}

// At schedules fn to run at absolute time at — the closure
// compatibility layer over the typed queue. Scheduling in the past
// (before Now) panics.
func (q *Queue) At(at Time, fn Event) Handle {
	if fn == nil {
		panic("eventq: nil event")
	}
	idx := q.alloc(at)
	it := &q.slab[idx]
	it.kind = kindClosure
	it.a = 0
	it.p = nil
	it.fn = fn
	return Handle{q: q, idx: idx, gen: it.gen}
}

// After schedules fn to run delay ticks from now.
func (q *Queue) After(delay Time, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("eventq: negative delay %d", delay))
	}
	return q.At(q.now+delay, fn)
}

// Step pops and runs the earliest event, advancing the clock to its
// timestamp. It returns false when no events remain. Cancelled items
// are discarded without firing.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		idx := q.pop()
		it := &q.slab[idx]
		if it.dead {
			q.release(idx)
			continue
		}
		q.now = it.at
		q.fired++
		// Copy the payload and recycle the slot before dispatch, so the
		// handler can schedule new events that reuse it immediately.
		kind, a, p, fn := it.kind, it.a, it.p, it.fn
		q.release(idx)
		if kind == kindClosure {
			fn(q.now)
		} else {
			q.handler.HandleEvent(q.now, kind, a, p)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock passes
// horizon (exclusive). Events at exactly horizon do not run, so
// successive Run(h1), Run(h2) windows partition time cleanly. Dead
// (cancelled) top items are dropped without counting toward Fired. It
// returns the number of events executed.
func (q *Queue) Run(horizon Time) uint64 {
	start := q.fired
	for len(q.heap) > 0 {
		top := q.heap[0]
		if q.slab[top.idx].dead {
			q.release(q.pop())
			continue
		}
		if top.at >= horizon {
			break
		}
		q.Step()
	}
	if q.now < horizon {
		q.now = horizon
	}
	return q.fired - start
}

// Drain runs every remaining event. maxEvents guards against runaway
// self-rescheduling loops; Drain panics if the bound is hit.
func (q *Queue) Drain(maxEvents uint64) uint64 {
	start := q.fired
	for q.Step() {
		if q.fired-start > maxEvents {
			panic(fmt.Sprintf("eventq: Drain exceeded %d events — runaway schedule?", maxEvents))
		}
	}
	return q.fired - start
}

// --- 4-ary index heap over (at, seq) ---------------------------------
//
// A 4-ary layout halves the tree depth of the binary heap and keeps
// children in one cache line of the index slice; benchmarks on the
// netsim workloads show it clearly ahead of both container/heap (which
// also pays interface-method dispatch) and a binary index heap.

func less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and sifts it up.
func (q *Queue) push(e heapEntry) {
	q.heap = append(q.heap, e)
	pos := len(q.heap) - 1
	for pos > 0 {
		parent := (pos - 1) >> 2
		if !less(e, q.heap[parent]) {
			break
		}
		q.heap[pos] = q.heap[parent]
		pos = parent
	}
	q.heap[pos] = e
}

// pop removes and returns the root's slab index.
func (q *Queue) pop() int32 {
	root := q.heap[0].idx
	n := len(q.heap) - 1
	e := q.heap[n]
	q.heap = q.heap[:n]
	if n == 0 {
		return root
	}
	h := q.heap // one bounds-checked view for the whole sift-down
	// Sift the former last element down from the root.
	pos := 0
	for {
		first := pos<<2 + 1
		if first >= n {
			break
		}
		best := first
		bestE := h[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h[c], bestE) {
				best, bestE = c, h[c]
			}
		}
		if !less(bestE, e) {
			break
		}
		h[pos] = bestE
		pos = best
	}
	h[pos] = e
	return root
}
