package eventq

import "testing"

// recorder collects typed-event dispatches for assertions.
type recorder struct {
	events []recorded
}

type recorded struct {
	now  Time
	kind int32
	a    int64
	p    any
}

func (r *recorder) HandleEvent(now Time, kind int32, a int64, p any) {
	r.events = append(r.events, recorded{now, kind, a, p})
}

func TestTypedEventsDispatchInOrder(t *testing.T) {
	q := New()
	r := &recorder{}
	q.SetHandler(r)
	payload := &recorded{}
	q.PostAt(30, 2, 300, nil)
	q.PostAt(10, 0, 100, payload)
	q.PostAt(20, 1, 200, nil)
	q.Drain(10)
	want := []recorded{{10, 0, 100, payload}, {20, 1, 200, nil}, {30, 2, 300, nil}}
	if len(r.events) != len(want) {
		t.Fatalf("got %d events, want %d", len(r.events), len(want))
	}
	for i, ev := range r.events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestTypedAndClosureEventsInterleaveFIFO(t *testing.T) {
	q := New()
	r := &recorder{}
	q.SetHandler(r)
	var order []string
	q.PostAt(5, 7, 1, nil) // seq 0
	q.At(5, func(now Time) { order = append(order, "closure") })
	q.PostAt(5, 7, 2, nil) // seq 2
	// Wrap handler dispatches into the same order log.
	probe := &recorder{}
	q.SetHandler(handlerFunc(func(now Time, kind int32, a int64, p any) {
		order = append(order, "typed")
		probe.HandleEvent(now, kind, a, p)
	}))
	q.Drain(10)
	want := []string{"typed", "closure", "typed"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("interleave order = %v, want %v", order, want)
	}
	if probe.events[0].a != 1 || probe.events[1].a != 2 {
		t.Errorf("typed payloads out of order: %+v", probe.events)
	}
}

type handlerFunc func(now Time, kind int32, a int64, p any)

func (f handlerFunc) HandleEvent(now Time, kind int32, a int64, p any) { f(now, kind, a, p) }

func TestNegativeKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PostAt with negative kind did not panic")
		}
	}()
	New().PostAt(1, -1, 0, nil)
}

func TestStaleHandleCannotCancelReusedSlot(t *testing.T) {
	q := New()
	r := &recorder{}
	q.SetHandler(r)
	h := q.PostAt(1, 0, 11, nil)
	if !q.Step() {
		t.Fatal("Step found no event")
	}
	// The slot is back on the freelist; the next post reuses it.
	q.PostAt(2, 0, 22, nil)
	h.Cancel() // stale: must not kill the new occupant
	q.Drain(10)
	if len(r.events) != 2 || r.events[1].a != 22 {
		t.Fatalf("reused-slot event lost to a stale cancel: %+v", r.events)
	}
}

func TestCancelledEventsDoNotCountTowardFired(t *testing.T) {
	q := New()
	fired := 0
	var handles []Handle
	for i := 0; i < 10; i++ {
		handles = append(handles, q.After(Time(i+1), func(Time) { fired++ }))
	}
	for i, h := range handles {
		if i%2 == 0 {
			h.Cancel()
		}
	}
	q.Run(100)
	if fired != 5 {
		t.Fatalf("fired %d closures, want 5", fired)
	}
	if q.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (cancelled events must not count)", q.Fired())
	}
}

func TestSlotReuseKeepsOrderingDeterministic(t *testing.T) {
	// Heavy schedule/fire/reschedule churn through the freelist must
	// preserve (time, seq) FIFO order — the invariant the simulator's
	// determinism rests on.
	q := New()
	var got []int
	var post func(label int, at Time)
	post = func(label int, at Time) {
		q.At(at, func(now Time) {
			got = append(got, label)
			if label < 100 {
				post(label+10, now+1)
			}
		})
	}
	for i := 0; i < 10; i++ {
		post(i, 1)
	}
	q.Drain(1000)
	for i := 1; i < len(got); i++ {
		// Same-time events must preserve posting order: labels at each
		// time step ascend.
		if got[i-1]/10 == got[i]/10 && got[i-1] >= got[i] {
			t.Fatalf("order violated at %d: %v", i, got)
		}
	}
}

// BenchmarkTypedPostStep measures the allocation-free hot path: post +
// dispatch of typed events through the freelist-backed heap.
func BenchmarkTypedPostStep(b *testing.B) {
	q := New()
	n := 0
	q.SetHandler(handlerFunc(func(Time, int32, int64, any) { n++ }))
	// Warm the slab so steady state is measured.
	for i := 0; i < 64; i++ {
		q.PostAfter(1, 0, 0, nil)
	}
	q.Drain(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PostAfter(1, 0, int64(i), nil)
		q.Step()
	}
}

// BenchmarkCancelHeavySchedule models a retransmission-timer workload:
// most scheduled events are cancelled before firing, so Run spends its
// time discarding dead items. This guards the lazy-deletion path.
func BenchmarkCancelHeavySchedule(b *testing.B) {
	q := New()
	q.SetHandler(handlerFunc(func(Time, int32, int64, any) {}))
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 64
	var handles [batch]Handle
	for i := 0; i < b.N; i++ {
		for j := range handles {
			handles[j] = q.PostAfter(Time(j%8+1), 0, int64(j), nil)
		}
		for j := range handles {
			if j%8 != 0 { // cancel 7 of every 8
				handles[j].Cancel()
			}
		}
		q.Run(q.Now() + 16)
	}
}
