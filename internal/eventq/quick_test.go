package eventq

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestExecutionOrderMatchesStableSortQuick(t *testing.T) {
	// Property: for any schedule of timestamps, execution order equals
	// a stable sort by time (FIFO among equal times), and the clock is
	// monotone.
	f := func(stamps []uint16) bool {
		q := New()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, s := range stamps {
			at := Time(s % 512)
			i := i
			q.At(at, func(now Time) { got = append(got, rec{at: now, idx: i}) })
		}
		q.Drain(uint64(len(stamps)) + 1)
		if len(got) != len(stamps) {
			return false
		}
		want := make([]rec, len(stamps))
		for i, s := range stamps {
			want[i] = rec{at: Time(s % 512), idx: i}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		last := Time(-1)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			if got[i].at < last {
				return false
			}
			last = got[i].at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCancelSubsetQuick(t *testing.T) {
	// Property: cancelling any subset removes exactly those events.
	f := func(stamps []uint8, cancelMask []bool) bool {
		q := New()
		fired := map[int]bool{}
		var hs []Handle
		for i, s := range stamps {
			i := i
			hs = append(hs, q.At(Time(s), func(Time) { fired[i] = true }))
		}
		cancelled := map[int]bool{}
		for i, h := range hs {
			if i < len(cancelMask) && cancelMask[i] {
				h.Cancel()
				cancelled[i] = true
			}
		}
		q.Drain(uint64(len(stamps)) + 1)
		for i := range stamps {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
