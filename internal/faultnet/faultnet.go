// Package faultnet wraps net.Conn, net.Listener and dial functions
// with deterministic, seeded fault injection: write truncation, bit
// flips, tiny write splits, stalls, mid-stream connection resets and
// dial failures. It exists to prove the ingest path's recovery story —
// the chaos tests stream a known flood through every fault at once and
// assert nothing is lost or double-counted beyond what the exporter
// itself reports.
//
// Faults are scheduled per connection from Config.Seed plus the
// connection's ordinal, so a failing schedule replays exactly under
// the same seed regardless of wall-clock timing.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected tags every fault this package injects, so tests (and
// retry loops) can tell deliberate damage from real infrastructure
// failure with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Config selects which faults to inject and how often. The zero value
// injects nothing — each fault arms only when its field is set.
type Config struct {
	// Seed drives every random decision. Connection i draws from an
	// independent stream derived from Seed and i.
	Seed uint64

	// FlipPerByte is the probability that any single transferred byte
	// gets one random bit flipped (applied to writes, and to reads
	// when ReadFaults is set).
	FlipPerByte float64

	// CutAfter injects a mid-stream reset: each connection is closed
	// after roughly this many written bytes (uniform in [CutAfter/2,
	// 3·CutAfter/2)). The write that crosses the cut returns
	// ErrInjected.
	CutAfter int

	// Truncate drops a random tail of the final write before a cut —
	// the peer sees a frame sliced mid-record.
	Truncate bool

	// MaxWriteChunk splits writes into chunks of at most this many
	// bytes, exercising partial-read paths on the peer.
	MaxWriteChunk int

	// StallEvery sleeps Stall after roughly every StallEvery written
	// bytes — a slow, lossless peer.
	StallEvery int
	Stall      time.Duration

	// FailDial is the probability that a dial attempt fails outright
	// before any connection exists.
	FailDial float64

	// ReadFaults extends FlipPerByte and StallEvery to the read path
	// (for a wrapped client conn: the server→client ack direction).
	ReadFaults bool
}

// WrapDial returns a dial function that injects dial failures and
// wraps every established connection with this Config's faults.
// Connections are numbered in dial order.
func (cfg Config) WrapDial(dial func() (net.Conn, error)) func() (net.Conn, error) {
	var mu sync.Mutex
	dialRng := rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x5EED))
	n := uint64(0)
	return func() (net.Conn, error) {
		mu.Lock()
		fail := cfg.FailDial > 0 && dialRng.Float64() < cfg.FailDial
		seq := n
		n++
		mu.Unlock()
		if fail {
			return nil, fmt.Errorf("%w: dial refused (conn %d)", ErrInjected, seq)
		}
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return cfg.Wrap(conn, seq), nil
	}
}

// Listener wraps ln so every accepted connection carries this Config's
// faults — the server-side mirror of WrapDial.
func (cfg Config) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, cfg: cfg}
}

type listener struct {
	net.Listener
	cfg Config
	mu  sync.Mutex
	n   uint64
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	seq := l.n
	l.n++
	l.mu.Unlock()
	return l.cfg.Wrap(conn, seq), nil
}

// Wrap returns conn with faults injected, drawing from the stream for
// connection ordinal seq.
func (cfg Config) Wrap(conn net.Conn, seq uint64) net.Conn {
	c := &Conn{
		Conn: conn,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(int64(cfg.Seed*0x9E3779B97F4A7C15 + seq + 1))),
	}
	c.cutAt = -1
	if cfg.CutAfter > 0 {
		c.cutAt = cfg.CutAfter/2 + c.rng.Intn(cfg.CutAfter)
	}
	return c
}

// Conn is a fault-injecting net.Conn. Safe for one reader plus one
// writer goroutine, like net.TCPConn.
type Conn struct {
	net.Conn
	cfg Config

	mu      sync.Mutex // guards rng and byte counters
	rng     *rand.Rand
	written int
	read    int
	cutAt   int  // written-bytes threshold for the injected reset; -1 = never
	cut     bool // the reset has fired; all further writes fail
}

// corrupt flips bits in buf in place per FlipPerByte.
func (c *Conn) corrupt(buf []byte) {
	if c.cfg.FlipPerByte <= 0 {
		return
	}
	for i := range buf {
		if c.rng.Float64() < c.cfg.FlipPerByte {
			buf[i] ^= 1 << c.rng.Intn(8)
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		c.mu.Lock()
		if c.cut {
			c.mu.Unlock()
			return total, fmt.Errorf("%w: write on cut connection", ErrInjected)
		}
		chunk := len(p)
		if c.cfg.MaxWriteChunk > 0 && chunk > c.cfg.MaxWriteChunk {
			chunk = 1 + c.rng.Intn(c.cfg.MaxWriteChunk)
		}
		cut := c.cutAt >= 0 && c.written+chunk >= c.cutAt
		if cut {
			c.cut = true
			chunk = c.cutAt - c.written
			if c.cfg.Truncate && chunk > 0 {
				chunk = c.rng.Intn(chunk + 1)
			}
		}
		buf := append([]byte(nil), p[:chunk]...) // never corrupt the caller's bytes
		c.corrupt(buf)
		stall := c.cfg.StallEvery > 0 && (c.written+chunk)/c.cfg.StallEvery > c.written/c.cfg.StallEvery
		c.written += chunk
		c.mu.Unlock()

		if stall && c.cfg.Stall > 0 {
			time.Sleep(c.cfg.Stall)
		}
		if len(buf) > 0 {
			n, err := c.Conn.Write(buf)
			total += n
			if err != nil {
				return total, err
			}
		}
		if cut {
			c.Conn.Close() // mid-stream reset: the peer sees a dead conn
			return total, fmt.Errorf("%w: connection cut after %d bytes", ErrInjected, c.written)
		}
		p = p[chunk:]
	}
	return total, nil
}

func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.cfg.ReadFaults {
		c.mu.Lock()
		c.corrupt(p[:n])
		stall := c.cfg.StallEvery > 0 && (c.read+n)/c.cfg.StallEvery > c.read/c.cfg.StallEvery
		c.read += n
		c.mu.Unlock()
		if stall && c.cfg.Stall > 0 {
			time.Sleep(c.cfg.Stall)
		}
	}
	return n, err
}
