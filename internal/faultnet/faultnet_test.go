package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-process TCP connection (net.Pipe has no Close-unblocks-Read
// semantics mismatch issues, but real TCP matches production).
func pipePair(t *testing.T, cfg Config) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return cfg.Wrap(client, 0), r.c
}

func TestCleanConfigIsTransparent(t *testing.T) {
	c, server := pipePair(t, Config{Seed: 1})
	msg := []byte("hello, unfaulted world")
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(server, buf)
		done <- buf
	}()
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if got := <-done; !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestCutClosesConnAndReturnsErrInjected(t *testing.T) {
	cfg := Config{Seed: 42, CutAfter: 64}
	c, server := pipePair(t, cfg)
	var wrote int
	var err error
	buf := make([]byte, 16)
	for i := 0; i < 100; i++ {
		var n int
		n, err = c.Write(buf)
		wrote += n
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v (wrote %d)", err, wrote)
	}
	// CutAfter=64 cuts in [32, 96); nothing past the cut leaves.
	if wrote >= 96 {
		t.Errorf("wrote %d bytes, cut should land before 96", wrote)
	}
	// The peer sees EOF: the underlying conn really closed.
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	drained, rerr := io.ReadAll(server)
	if rerr != nil {
		t.Fatalf("peer read: %v", rerr)
	}
	if len(drained) != wrote {
		t.Errorf("peer received %d bytes, wrapper reported %d", len(drained), wrote)
	}
	// Writes after the cut fail immediately instead of panicking.
	if _, err := c.Write(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write: %v, want ErrInjected", err)
	}
}

func TestTruncateMayShortenFinalWrite(t *testing.T) {
	cfg := Config{Seed: 9, CutAfter: 64, Truncate: true}
	c, server := pipePair(t, cfg)
	var reported int
	buf := make([]byte, 300)
	n, err := c.Write(buf)
	reported += n
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	drained, rerr := io.ReadAll(server)
	if rerr != nil {
		t.Fatalf("peer read: %v", rerr)
	}
	if len(drained) != reported {
		t.Errorf("peer received %d, wrapper reported %d", len(drained), reported)
	}
	if reported >= 96 {
		t.Errorf("truncated cut delivered %d bytes, want < 96", reported)
	}
}

func TestBitFlipsCorruptCopyNotCaller(t *testing.T) {
	cfg := Config{Seed: 5, FlipPerByte: 0.5}
	c, server := pipePair(t, cfg)
	orig := bytes.Repeat([]byte{0xAA}, 1024)
	mine := append([]byte(nil), orig...)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(orig))
		io.ReadFull(server, buf)
		done <- buf
	}()
	if _, err := c.Write(mine); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mine, orig) {
		t.Fatal("Write corrupted the caller's buffer")
	}
	got := <-done
	if bytes.Equal(got, orig) {
		t.Fatal("0.5 flip probability over 1 KiB left every byte intact")
	}
}

func TestWriteChunkSplitting(t *testing.T) {
	// countingConn records the size of every underlying write.
	cfg := Config{Seed: 3, MaxWriteChunk: 7}
	var sizes []int
	cc := &countingConn{sizes: &sizes}
	c := cfg.Wrap(cc, 0)
	if _, err := c.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		if s < 1 || s > 7 {
			t.Fatalf("chunk size %d outside [1,7]", s)
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("chunks total %d, want 100", total)
	}
	if len(sizes) < 100/7 {
		t.Fatalf("only %d chunks for a 100-byte write", len(sizes))
	}
}

type countingConn struct {
	net.Conn // nil: only Write is used
	sizes    *[]int
}

func (c *countingConn) Write(p []byte) (int, error) {
	*c.sizes = append(*c.sizes, len(p))
	return len(p), nil
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed and ordinal produce the identical fault schedule:
	// same corrupted bytes, same cut offset.
	run := func() ([]byte, int, error) {
		cfg := Config{Seed: 77, FlipPerByte: 0.05, CutAfter: 200, MaxWriteChunk: 13}
		var sink bytes.Buffer
		c := cfg.Wrap(&sinkConn{w: &sink}, 4)
		n, err := c.Write(make([]byte, 500))
		return sink.Bytes(), n, err
	}
	b1, n1, e1 := run()
	b2, n2, e2 := run()
	if n1 != n2 || !bytes.Equal(b1, b2) || (e1 == nil) != (e2 == nil) {
		t.Fatalf("schedule not deterministic: n=%d/%d bytes-equal=%v", n1, n2, bytes.Equal(b1, b2))
	}
	if !errors.Is(e1, ErrInjected) {
		t.Fatalf("500-byte write past CutAfter=200 survived: %v", e1)
	}
}

type sinkConn struct {
	net.Conn
	w *bytes.Buffer
}

func (c *sinkConn) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *sinkConn) Close() error                { return nil }

func TestFailDial(t *testing.T) {
	cfg := Config{Seed: 1, FailDial: 1.0}
	dial := cfg.WrapDial(func() (net.Conn, error) {
		t.Fatal("underlying dial reached despite FailDial=1")
		return nil, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := dial(); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: %v, want ErrInjected", i, err)
		}
	}
}

func TestReadFaultsFlipInbound(t *testing.T) {
	cfg := Config{Seed: 8, FlipPerByte: 0.5, ReadFaults: true}
	c, server := pipePair(t, cfg)
	orig := bytes.Repeat([]byte{0x55}, 1024)
	go func() {
		server.Write(orig)
	}()
	buf := make([]byte, len(orig))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("ReadFaults left the inbound stream intact")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 2, CutAfter: 32}
	ln := cfg.Listener(raw)
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, werr := conn.Write(make([]byte, 256))
		done <- werr
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	io.Copy(io.Discard, client)
	if werr := <-done; !errors.Is(werr, ErrInjected) {
		t.Fatalf("accepted conn write: %v, want ErrInjected cut", werr)
	}
}
