package cluster

// Victim-state handback: the inverse of takeover. When a membership
// change (a rejoin, a runtime join) moves a victim's ownership away
// from this instance, its exact state — tallies, alarm latch — must
// follow, or the invariant that the owner's identifier equals the
// offline identifier over delivered records breaks at the handover.
//
// The sequence: recomputeMembership detaches each outgoing victim
// through its shard queue (pipeline.DetachVictim — so every record
// submitted before the detach is tallied into the snapshot), the
// detach callback queues the snapshot here, and the handback loop
// ships each one to its new owner over a dedicated acked TypeHandback
// exchange. Only after the owner acks is the state released; a failed
// shipment falls back to the stored-replica path, where normal gossip
// replication and the takeover machinery deliver it eventually —
// state is delayed by a failure, never lost by one.
//
// On the receiving side HandleHandback reuses storeReplicaLocked, so
// the snapshot seeds the pipeline under the same once-per-ownership-
// epoch latch that guards gossip replicas: if the receiver's ring
// already assigns it the victim it seeds immediately, otherwise the
// snapshot waits as a stored replica for the ring to catch up.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/pipeline"
	"repro/internal/wire"
)

const (
	// handbackVersion 2 inserts an operation id and the shipper's ring
	// version between the sequence number and the snapshot. The op id is
	// the flight-recorder event id minted by the shipper: both sides
	// commit their half of the handback under it, so the fleet trace
	// fan-out stitches ship and seed into one timeline. v1 bodies (no
	// op section) still parse, for rolling upgrades.
	handbackVersion   = 2
	handbackVersionV1 = 1
	// handbackFixedV1 is the fixed prefix of a v1 handback body:
	// version(1) + sender(8) + seq(8). v2 adds opID(8) + ringVer(8).
	handbackFixedV1 = 1 + 8 + 8
	handbackFixed   = handbackFixedV1 + 8 + 8

	handbackAttempts = 3
	handbackBackoff  = 25 * time.Millisecond
)

// handbackMsg is the body of one TypeHandback frame: who is shipping,
// a per-shipper sequence number (acked back as seq+1), the shared
// flight-recorder op id and shipper's ring version (zero on v1), and
// the victim's cumulative snapshot.
type handbackMsg struct {
	Sender  uint64
	Seq     uint64
	OpID    uint64
	RingVer uint64
	Snap    pipeline.VictimSnapshot
}

func appendHandbackMsg(b []byte, m *handbackMsg) []byte {
	b = append(b, handbackVersion)
	b = binary.BigEndian.AppendUint64(b, m.Sender)
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint64(b, m.OpID)
	b = binary.BigEndian.AppendUint64(b, m.RingVer)
	return appendSnapshot(b, &m.Snap)
}

func parseHandbackMsg(b []byte) (*handbackMsg, error) {
	if len(b) < handbackFixedV1 {
		return nil, errGossipTrunc
	}
	ver := b[0]
	if ver != handbackVersion && ver != handbackVersionV1 {
		return nil, fmt.Errorf("cluster: handback version %d, want %d or %d", ver, handbackVersionV1, handbackVersion)
	}
	m := &handbackMsg{
		Sender: binary.BigEndian.Uint64(b[1:9]),
		Seq:    binary.BigEndian.Uint64(b[9:17]),
	}
	body := b[handbackFixedV1:]
	if ver >= handbackVersion {
		if len(b) < handbackFixed {
			return nil, errGossipTrunc
		}
		m.OpID = binary.BigEndian.Uint64(b[17:25])
		m.RingVer = binary.BigEndian.Uint64(b[25:33])
		body = b[handbackFixed:]
	}
	snap, rest, err := parseSnapshot(body)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cluster: handback has %d trailing bytes", len(rest))
	}
	m.Snap = snap
	return m, nil
}

// queueHandback is the DetachVictim callback: it runs on a pipeline
// shard worker, so it must not block — a full handback queue falls
// back to the stored-replica path immediately.
func (n *Node) queueHandback(snap pipeline.VictimSnapshot, ok bool) {
	if !ok {
		return // no state existed; nothing to hand over
	}
	now := n.cfg.Now()
	if fr := n.p.Recorder(); fr != nil {
		fr.CommitEventWithID(fr.MintEventID(uint64(snap.Victim)), pipeline.OutcomeHandback, now, int64(snap.Victim))
	}
	if j := n.p.Journal(); j != nil {
		j.Emit(pipeline.Event{
			T: now, Type: pipeline.EventVictimDetached,
			Victim: int64(snap.Victim), Source: -1, Count: snap.Identified(),
			Detail: fmt.Sprintf("ring=v%d", n.ring.Load().Version()),
		})
	}
	select {
	case n.handbackQ <- snap:
	default:
		n.handbackFailures.Add(1)
		n.handbackFallbacks.Add(1)
		n.storeFallback(snap)
	}
}

// handbackLoop drains queued snapshots, shipping each to its current
// owner. On close the queue is drained into stored replicas so a
// concurrent detach cannot strand state in the channel.
func (n *Node) handbackLoop() {
	defer n.wg.Done()
	for {
		select {
		case snap := <-n.handbackQ:
			n.ship(snap)
		case <-n.stop:
			for {
				select {
				case snap := <-n.handbackQ:
					n.storeFallback(snap)
					continue
				default:
				}
				return
			}
		}
	}
}

// ship delivers one detached snapshot to the victim's current owner.
// Ownership is re-read here: if the ring moved again and the victim is
// ours after all, re-seed it locally; if the owner is unknown or
// unreachable after a few tries, fall back to the replica store.
func (n *Node) ship(snap pipeline.VictimSnapshot) {
	ring := n.ring.Load()
	owner := ring.Owner(snap.Victim)
	if owner == n.self {
		// The ring flapped back before we shipped: the state is still
		// ours. storeFallback re-seeds it through the epoch latch.
		n.storeFallback(snap)
		return
	}
	pr := n.members.Load().byID[owner]
	if pr == nil {
		n.handbackFailures.Add(1)
		n.handbackFallbacks.Add(1)
		n.storeFallback(snap)
		return
	}
	n.handbackSeq++
	msg := handbackMsg{Sender: n.self, Seq: n.handbackSeq, RingVer: ring.Version(), Snap: snap}
	fr := n.p.Recorder()
	if fr != nil {
		// Mint the op id before shipping: the receiver commits its seed
		// under the same id, so the fleet fan-out stitches both halves.
		msg.OpID = fr.MintEventID(uint64(snap.Victim))
	}
	frame := wire.AppendHandback(nil, appendHandbackMsg(nil, &msg))
	for attempt := 0; attempt < handbackAttempts; attempt++ {
		if attempt > 0 {
			n.handbackRetries.Add(1)
			select {
			case <-time.After(handbackBackoff << (attempt - 1)):
			case <-n.stop:
				n.handbackFailures.Add(1)
				n.handbackFallbacks.Add(1)
				n.storeFallback(snap)
				return
			}
		}
		if err := n.shipOnce(pr, frame, msg.Seq); err == nil {
			n.handbacksOut.Add(1)
			now := n.cfg.Now()
			pr.lastHeard.Store(now)
			if fr != nil {
				fr.CommitEventWithID(msg.OpID, pipeline.OutcomeHandback, now, int64(snap.Victim))
			}
			if j := n.p.Journal(); j != nil {
				j.Emit(pipeline.Event{
					T: now, Type: pipeline.EventHandbackShip,
					Victim: int64(snap.Victim), Source: -1, Count: snap.Identified(),
					Detail: fmt.Sprintf("to=%x ring=v%d op=%x", owner, msg.RingVer, msg.OpID),
				})
			}
			return
		}
	}
	n.handbackFailures.Add(1)
	n.handbackFallbacks.Add(1)
	n.storeFallback(snap)
}

// shipOnce performs one acked handback exchange on a fresh connection
// (handbacks are rare — membership-change events — so no connection is
// kept warm for them).
func (n *Node) shipOnce(pr *peer, frame []byte, seq uint64) error {
	conn, err := n.cfg.Dial(pr.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Unix(0, n.cfg.Now()).Add(n.cfg.FailAfter))
	if _, err := conn.Write(frame); err != nil {
		return err
	}
	ftype, payload, err := wire.NewReader(conn).ReadFrame()
	if err != nil {
		return err
	}
	if ftype != wire.TypeAck {
		return fmt.Errorf("cluster: handback got frame type %d", ftype)
	}
	ack, err := wire.ParseAck(payload)
	if err != nil {
		return err
	}
	if ack != seq+1 {
		return fmt.Errorf("cluster: handback ack %d, want %d", ack, seq+1)
	}
	return nil
}

// storeFallback files a snapshot we could not (or need not) ship
// through the replica path: seeded immediately if the ring says the
// victim is ours, stored otherwise until gossip or a takeover moves
// it. Never drops state.
func (n *Node) storeFallback(snap pipeline.VictimSnapshot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// A victim that was just detached must be seedable again if it comes
	// back: detaching ended its local ownership epoch.
	delete(n.seeded, snap.Victim)
	n.storeReplicaLocked(n.ring.Load(), snap)
}

// HandleHandback implements pipeline.ClusterNode: absorb one inbound
// handback body (the server side, called from a daemon connection
// goroutine) and return the ack value. The snapshot lands through
// storeReplicaLocked — seeded under the once-per-epoch latch when the
// local ring agrees we own the victim, stored as a replica until it
// does otherwise.
func (n *Node) HandleHandback(body []byte) (uint64, error) {
	m, err := parseHandbackMsg(body)
	if err != nil {
		return 0, err
	}
	now := n.cfg.Now()
	if pr := n.members.Load().byID[m.Sender]; pr != nil {
		pr.lastHeard.Store(now)
	}
	n.mu.Lock()
	n.storeReplicaLocked(n.ring.Load(), m.Snap)
	n.mu.Unlock()
	n.handbacksIn.Add(1)
	// Commit the receive under the shipper's op id (v2 bodies carry
	// one), stitching ship and seed into a single fleet-wide timeline.
	if fr := n.p.Recorder(); fr != nil && m.OpID != 0 {
		fr.CommitEventWithID(m.OpID, pipeline.OutcomeHandback, now, int64(m.Snap.Victim))
	}
	if j := n.p.Journal(); j != nil {
		j.Emit(pipeline.Event{
			T: now, Type: pipeline.EventHandbackRecv,
			Victim: int64(m.Snap.Victim), Source: -1, Count: m.Snap.Identified(),
			Detail: fmt.Sprintf("from=%x ring=v%d op=%x", m.Sender, m.RingVer, m.OpID),
		})
	}
	n.cfg.Logf("cluster: handback received victim=%d from=%x", m.Snap.Victim, m.Sender)
	return m.Seq + 1, nil
}
