package cluster

import (
	"testing"

	"repro/internal/topology"
)

func members(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = splitmix64(uint64(i + 1))
	}
	return out
}

// TestRingDeterministicAcrossOrderings: ownership is a pure function
// of the member *set* — every permutation of the membership list must
// produce identical routing, or instances would disagree about owners
// and forward records in circles.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	ms := members(5)
	a := NewRing(1, ms, 64)
	perm := []uint64{ms[3], ms[0], ms[4], ms[2], ms[1]}
	b := NewRing(9, perm, 64)
	for v := topology.NodeID(0); v < 4096; v++ {
		if a.Owner(v) != b.Owner(v) {
			t.Fatalf("victim %d: owner %x vs %x across member orderings", v, a.Owner(v), b.Owner(v))
		}
		if a.Successor(v) != b.Successor(v) {
			t.Fatalf("victim %d: successor differs across member orderings", v)
		}
	}
	if a.Size() != 5 {
		t.Fatalf("Size = %d, want 5", a.Size())
	}
}

// TestRingRebalanceMovesAboutKOverN: removing one of N members must
// move only the victims that member owned (~1/N of them) and not a
// single victim owned by anyone else — the whole point of consistent
// hashing over modulo assignment.
func TestRingRebalanceMovesAboutKOverN(t *testing.T) {
	const n, victims = 5, 10000
	ms := members(n)
	before := NewRing(1, ms, 64)
	after := NewRing(2, ms[:n-1], 64)
	moved := 0
	for v := topology.NodeID(0); v < victims; v++ {
		was, is := before.Owner(v), after.Owner(v)
		if was == ms[n-1] {
			moved++
			continue
		}
		if was != is {
			t.Fatalf("victim %d moved %x -> %x though its owner stayed alive", v, was, is)
		}
	}
	frac := float64(moved) / victims
	if frac < 0.10 || frac > 0.32 {
		t.Fatalf("removing 1 of %d members moved %.1f%% of victims, want ~%.0f%%",
			n, frac*100, 100.0/n)
	}
}

// TestRingSuccessorTakeover is the handoff contract: for every victim,
// the owner after a member's death is exactly the Successor the old
// ring reported — so the instance that received the victim's replicas
// is the instance that takes over.
func TestRingSuccessorTakeover(t *testing.T) {
	ms := members(4)
	full := NewRing(1, ms, 64)
	for _, dead := range ms {
		var rest []uint64
		for _, m := range ms {
			if m != dead {
				rest = append(rest, m)
			}
		}
		shrunk := NewRing(2, rest, 64)
		for v := topology.NodeID(0); v < 2048; v++ {
			if full.Owner(v) != dead {
				continue
			}
			if want, got := full.Successor(v), shrunk.Owner(v); got != want {
				t.Fatalf("victim %d: old-ring successor %x but post-death owner %x", v, want, got)
			}
		}
	}
}

// TestRingSpread: with virtual nodes, no member owns a wildly
// disproportionate share.
func TestRingSpread(t *testing.T) {
	ms := members(3)
	r := NewRing(1, ms, 64)
	counts := map[uint64]int{}
	const victims = 6000
	for v := topology.NodeID(0); v < victims; v++ {
		counts[r.Owner(v)]++
	}
	for m, c := range counts {
		frac := float64(c) / victims
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %x owns %.1f%% of victims (want roughly a third)", m, frac*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own victims", len(counts))
	}
}

func TestMemberID(t *testing.T) {
	a, b := MemberID("127.0.0.1:7420"), MemberID("127.0.0.1:7430")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("member ids degenerate: %x %x", a, b)
	}
	if a != MemberID("127.0.0.1:7420") {
		t.Fatal("MemberID not stable")
	}
}

// TestRingSingleMember: a lone instance owns everything and is its own
// successor — cluster mode with no peers degenerates to single-instance.
func TestRingSingleMember(t *testing.T) {
	r := NewRing(1, []uint64{42}, 8)
	for v := topology.NodeID(0); v < 64; v++ {
		if r.Owner(v) != 42 || r.Successor(v) != 42 {
			t.Fatal("single-member ring must own everything")
		}
	}
}
