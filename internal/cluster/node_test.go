package cluster

import (
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

// newTestNode builds a node over a fresh pipeline with networking
// stubbed out: gossip never fires on its own (1h interval) and every
// dial fails, so tests drive the anti-entropy path by hand through
// buildMsg/HandleGossip/absorb.
func newTestNode(t *testing.T, self string, peers []string, incarnation uint64, now *atomic.Int64) (*Node, *pipeline.Pipeline) {
	t.Helper()
	p, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(p, Config{
		Self: self, Peers: peers,
		GossipInterval: time.Hour, FailAfter: time.Second,
		Incarnation:       incarnation,
		MaxReplicasPerMsg: 64,
		Dial:              func(string) (net.Conn, error) { return nil, errors.New("test: no network") },
		Now:               now.Load,
	})
	if err != nil {
		p.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Close()
		p.Close()
	})
	return n, p
}

// exchange performs one full anti-entropy round-trip: client sends its
// request to server (which absorbs it) and absorbs the response — the
// exact dance gossipWith/HandleGossip do over TCP.
func exchange(t *testing.T, server, client *Node) {
	t.Helper()
	pr := client.members.Load().byID[server.self]
	if pr == nil {
		t.Fatalf("client %s does not know server %s", client.cfg.Self, server.cfg.Self)
	}
	req := client.buildMsg(pr, nil)
	respBody, err := server.HandleGossip(appendGossipMsg(nil, req))
	if err != nil {
		t.Fatalf("HandleGossip: %v", err)
	}
	resp, err := parseGossipMsg(respBody)
	if err != nil {
		t.Fatalf("parse response: %v", err)
	}
	client.absorb(resp)
}

func TestGossipCodecRoundTrip(t *testing.T) {
	m := &gossipMsg{
		Sender:     0xABCD,
		RingVer:    7,
		SenderAddr: "10.9.0.1:7420",
		Roster:     []string{"10.9.0.2:7420", "10.9.0.3:7420"},
		Digest:     []digestEntry{{Origin: 1, MaxSeq: 9}, {Origin: 2, MaxSeq: 3}},
		Ops: []originOp{
			{Origin: 1, Op: filter.Mutation{Seq: 8, Stamp: 11, Node: 3, Until: filter.Permanent, Victim: 63}},
			{Origin: 2, Op: filter.Mutation{Seq: 3, Stamp: 12, Node: 4, Until: 99, Victim: topology.None, Unblock: true}},
		},
		Replicas: []pipeline.VictimSnapshot{{
			Victim: 63, Alarmed: true, Undecodable: 5,
			Sources: []pipeline.SourceCount{{Node: 1, Count: 100}, {Node: 9, Count: 7}},
		}, {
			Victim: 17, Expired: true, Undecodable: 1,
		}},
	}
	got, err := parseGossipMsg(appendGossipMsg(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mangled:\n got %+v\nwant %+v", got, m)
	}
	for cut := 1; cut < 20; cut++ {
		b := appendGossipMsg(nil, m)
		if _, err := parseGossipMsg(b[:len(b)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes parsed", cut)
		}
	}
	if _, err := parseGossipMsg(append(appendGossipMsg(nil, m), 0)); err == nil {
		t.Fatal("trailing byte parsed")
	}
}

// TestGossipBlocklistConvergence: mutations minted anywhere — including
// on an instance that owns none of the affected traffic, the admin
// /blocklist POST case — reach every instance, relayed through
// intermediate peers.
func TestGossipBlocklistConvergence(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"}
	a, pa := newTestNode(t, addrs[0], []string{addrs[1], addrs[2]}, 101, &now)
	b, pb := newTestNode(t, addrs[1], []string{addrs[0], addrs[2]}, 102, &now)
	c, pc := newTestNode(t, addrs[2], []string{addrs[0], addrs[1]}, 103, &now)

	pa.Blocklist().Block(3)
	pa.Blocklist().BlockUntil(5, 1000)
	pb.Blocklist().Block(7) // minted on a different instance

	// A↔B exchange: B pushes its op, A's response carries A's ops.
	exchange(t, a, b)
	// B↔C: C learns both A's and B's mutations purely by relay — it
	// never talks to A.
	exchange(t, b, c)

	sa, sb, sc := pa.Blocklist().Snapshot(), pb.Blocklist().Snapshot(), pc.Blocklist().Snapshot()
	if !reflect.DeepEqual(sa, sb) || !reflect.DeepEqual(sb, sc) {
		t.Fatalf("blocklists diverge:\nA %+v\nB %+v\nC %+v", sa, sb, sc)
	}
	if !pc.Blocklist().BlockedAt(3, 0) || !pc.Blocklist().BlockedAt(7, 0) || !pc.Blocklist().BlockedAt(5, 500) {
		t.Fatalf("relayed mutations missing on C: %+v", sc)
	}

	// A second exchange is a no-op: digests are equal, nothing re-sent.
	pr := b.members.Load().byID[a.self]
	req := b.buildMsg(pr, nil)
	if len(req.Ops) != 0 {
		t.Fatalf("converged peer still pushes %d ops", len(req.Ops))
	}

	// An unblock minted later on C (the POST-to-any-instance fix) wins
	// fleet-wide over the original block.
	pc.Blocklist().Unblock(3)
	exchange(t, c, b)
	exchange(t, b, a)
	if pa.Blocklist().BlockedAt(3, 0) {
		t.Fatal("unblock minted on C did not reach A")
	}
	if !reflect.DeepEqual(pa.Blocklist().Snapshot(), pc.Blocklist().Snapshot()) {
		t.Fatal("post-unblock divergence")
	}
}

// TestRouteSplitsByOwnership: Route keeps owned records (processing
// them locally) and queues the rest for their owners, consuming the
// slab either way.
func TestRouteSplitsByOwnership(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.1.0.1:1", "10.1.0.2:1", "10.1.0.3:1"}
	n, p := newTestNode(t, addrs[0], []string{addrs[1], addrs[2]}, 201, &now)

	ring := n.Ring()
	if ring.Size() != 3 {
		t.Fatalf("ring size %d", ring.Size())
	}
	s := p.GetSlab()
	wantLocal := 0
	const total = 256
	for i := 0; i < total; i++ {
		v := topology.NodeID(i % 64)
		s.Append(wire.Record{Victim: v, MF: uint16(i), Topo: p.TopoID()})
		if ring.Owner(v) == n.self {
			wantLocal++
		}
	}
	if wantLocal == 0 || wantLocal == total {
		t.Fatalf("degenerate split: %d/%d local", wantLocal, total)
	}
	accepted := n.Route(s)
	if accepted != total {
		t.Fatalf("Route accepted %d of %d (dropped %d)", accepted, total, n.forwardDropped.Load())
	}
	if got := n.forwardedOut.Load(); got != uint64(total-wantLocal) {
		t.Fatalf("forwarded %d records, want %d", got, total-wantLocal)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.C.Processed.Load() < uint64(wantLocal) {
		if time.Now().After(deadline) {
			t.Fatalf("processed %d locally, want %d", p.C.Processed.Load(), wantLocal)
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.C.Processed.Load(); got != uint64(wantLocal) {
		t.Fatalf("processed %d locally, want exactly %d", got, wantLocal)
	}
}

// TestReplicaSeedOnTakeover: a stored replica for a victim owned by a
// peer is seeded into the local pipeline the moment the peer's death
// rebuilds the ring with this instance as the owner.
func TestReplicaSeedOnTakeover(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.2.0.1:1", "10.2.0.2:1"}
	n, p := newTestNode(t, addrs[0], []string{addrs[1]}, 301, &now)

	peerID := MemberID(addrs[1])
	ring := n.Ring()
	victim := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == peerID {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("peer owns nothing")
	}
	snap := pipeline.VictimSnapshot{
		Victim: victim, Alarmed: true, Undecodable: 2,
		Sources: []pipeline.SourceCount{{Node: 4, Count: 50}, {Node: 11, Count: 9}},
	}
	n.mu.Lock()
	n.storeReplicaLocked(ring, snap)
	stored := len(n.replicas)
	n.mu.Unlock()
	if stored != 1 {
		t.Fatalf("replica not stored (stored=%d)", stored)
	}
	if _, ok := p.ExportVictim(victim); ok {
		t.Fatal("replica seeded while the peer still owns the victim")
	}

	// Silence past FailAfter: the peer dies, the ring rebuilds, and the
	// stored replica seeds.
	now.Store(int64(2 * time.Second))
	n.recomputeMembership()
	if got := n.Ring().Size(); got != 1 {
		t.Fatalf("ring still has %d members after death", got)
	}
	if got := n.Ring().Version(); got != 2 {
		t.Fatalf("ring version %d, want 2", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := p.ExportVictim(victim)
		if ok && got.Identified() == 59 {
			if got.Undecodable != 2 || !got.Alarmed {
				t.Fatalf("seeded state mangled: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed never applied: %+v ok=%v", got, ok)
		}
		time.Sleep(time.Millisecond)
	}
	n.mu.Lock()
	left := len(n.replicas)
	n.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d replicas still stored after takeover", left)
	}
	if n.seedsApplied.Load() != 1 || n.takeovers.Load() != 1 {
		t.Fatalf("seed counters: seeds=%d takeovers=%d", n.seedsApplied.Load(), n.takeovers.Load())
	}
}

// TestTombstoneStopsResurrection: a victim retired by the owner's TTL
// sweep must not come back to life on its backup. The owner's expiry
// hook files a tombstone, client-side gossip ships it to the victim's
// ring successor, the tombstone replaces the stored replica there, and
// a takeover after the owner dies drops it instead of seeding. A later
// fresh replica replaces a tombstone and seeds normally.
func TestTombstoneStopsResurrection(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.5.0.1:1", "10.5.0.2:1"}
	a, _ := newTestNode(t, addrs[0], []string{addrs[1]}, 501, &now)
	b, pb := newTestNode(t, addrs[1], []string{addrs[0]}, 502, &now)

	// Pick a victim a owns; on a two-node ring b is its successor.
	ring := a.Ring()
	victim := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == a.self {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("a owns nothing")
	}

	// b holds a backup replica, as if gossiped while the victim lived.
	snap := pipeline.VictimSnapshot{
		Victim: victim, Alarmed: true,
		Sources: []pipeline.SourceCount{{Node: 4, Count: 500}},
	}
	b.mu.Lock()
	b.storeReplicaLocked(b.Ring(), snap)
	b.mu.Unlock()

	// a's TTL sweep retires the victim (the pipeline hook is wired to
	// noteRetired; call it directly to keep the test synchronous), then
	// one client-side gossip round ships the tombstone to b.
	tomb := snap
	tomb.Expired = true
	a.noteRetired(tomb)
	a.mu.Lock()
	_, filed := a.retired[victim]
	a.mu.Unlock()
	if !filed {
		t.Fatal("expiry hook did not file a tombstone")
	}
	exchange(t, b, a) // a is the client: tombstones ship client-side only

	b.mu.Lock()
	got, ok := b.replicas[victim]
	b.mu.Unlock()
	if !ok || !got.Expired {
		t.Fatalf("stored replica not replaced by tombstone: %+v ok=%v", got, ok)
	}

	// a dies; b's takeover must drop the tombstone, not seed it.
	now.Store(int64(2 * time.Second))
	b.recomputeMembership()
	if got := b.Ring().Size(); got != 1 {
		t.Fatalf("ring still has %d members after death", got)
	}
	time.Sleep(10 * time.Millisecond) // let any (wrong) async seed surface
	if _, ok := pb.ExportVictim(victim); ok {
		t.Fatal("tombstoned victim resurrected on takeover")
	}
	if got := b.seedsApplied.Load(); got != 0 {
		t.Fatalf("seedsApplied = %d, want 0", got)
	}
	b.mu.Lock()
	left := len(b.replicas)
	b.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d replicas still stored after takeover", left)
	}

	// Retirement is not a curse: a fresh replica for the same victim —
	// b now owns it — seeds immediately.
	b.mu.Lock()
	b.storeReplicaLocked(b.Ring(), snap)
	b.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := pb.ExportVictim(victim)
		if ok && got.Identified() == 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fresh replica never seeded after retirement: %+v ok=%v", got, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaShippedToSuccessor: buildMsg includes replicas only for
// victims this instance owns whose ring successor is the receiving
// peer — after feeding the pipeline some records for an owned victim.
func TestReplicaShippedToSuccessor(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.3.0.1:1", "10.3.0.2:1", "10.3.0.3:1"}
	n, p := newTestNode(t, addrs[0], []string{addrs[1], addrs[2]}, 401, &now)

	ring := n.Ring()
	victim := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == n.self {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("self owns nothing")
	}
	s := p.GetSlab()
	for i := 0; i < 10; i++ {
		s.Append(wire.Record{Victim: victim, MF: uint16(i), Topo: p.TopoID()})
	}
	p.SubmitSlab(s)
	deadline := time.Now().Add(5 * time.Second)
	for p.C.Processed.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("records never processed")
		}
		time.Sleep(time.Millisecond)
	}

	succ := ring.Successor(victim)
	for _, pr := range n.members.Load().list {
		m := n.buildMsg(pr, nil)
		var found bool
		for _, rep := range m.Replicas {
			if rep.Victim == victim {
				found = true
			}
		}
		if pr.id == succ && !found {
			t.Fatalf("successor %x got no replica of victim %d", pr.id, victim)
		}
		if pr.id != succ && found {
			t.Fatalf("non-successor %x got a replica of victim %d", pr.id, victim)
		}
	}
}
