package cluster

// The forwarding-amplification acceptance test: a two-instance fleet
// with the forwarding gate armed takes a 2^20-id destination scan on
// one instance, and the gate must keep the forwarding tier silent —
// without it every unowned scan id turns 1:1 into a forwarded record,
// which is precisely the volumetric pattern the daemon exists to
// suppress. A genuinely hot destination then earns admission and its
// owner tallies every one of its records exactly (buffered-prefix
// replay), proving suppression costs no identification evidence.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/marking"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

// scrapeMetric fetches one un-labeled series value from /metrics.
func scrapeMetric(t *testing.T, httpAddr, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return v, true
	}
	return 0, false
}

func TestClusterScanSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet test")
	}
	const admit = 64
	const scanIDs = 1 << 20

	net8 := topology.NewTorus2D(8)
	addrs := grabAddrs(t, 2)
	nodes := make([]*Node, 2)
	daemons := make([]*pipeline.Daemon, 2)
	for i := 0; i < 2; i++ {
		i := i
		d, err := pipeline.Start(pipeline.ServerConfig{
			Pipeline: pipeline.Config{
				Net: topology.NewTorus2D(8), Shards: 4, QueueLen: 1 << 15,
				SketchAdmit:    admit,
				BlockThreshold: 1 << 30, BlockTTL: time.Hour,
			},
			TCPAddr:  addrs[i],
			HTTPAddr: "127.0.0.1:0",
			NewCluster: func(p *pipeline.Pipeline) (pipeline.ClusterNode, error) {
				n, err := New(p, Config{
					Self: addrs[i], Peers: []string{addrs[1-i]},
					SketchAdmit:    admit,
					GossipInterval: 25 * time.Millisecond,
					// Generous: a mid-scan ring flap would re-partition
					// ownership and wreck the deterministic counts below.
					FailAfter:   5 * time.Second,
					Incarnation: uint64(0x3000 + i),
					Logf:        t.Logf,
				})
				if err == nil {
					nodes[i] = n
				}
				return n, err
			},
		})
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		daemons[i] = d
		defer d.Shutdown(context.Background())
	}

	ring := nodes[0].Ring()
	// The hot destination: an in-fabric victim daemon 0 does NOT own,
	// kept out of the scan so its admission accounting stays exact.
	hot := topology.NodeID(-1)
	for v := topology.NodeID(0); v < topology.NodeID(net8.NumNodes()); v++ {
		if ring.Owner(v) == nodes[1].self {
			hot = v
			break
		}
	}
	if hot < 0 {
		t.Fatal("daemon 1 owns nothing in-fabric")
	}

	topoID := daemons[0].Pipeline().TopoID()
	newClient := func(seed uint64) *wire.Client {
		c, err := wire.NewClient(wire.ClientConfig{
			Dial:        func() (net.Conn, error) { return net.Dial("tcp", addrs[0]) },
			Seed:        seed,
			MaxBatch:    512,
			MaxAttempts: 8,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			AckTimeout:  10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Phase 1: the scan. 2^20 distinct destination ids — virtually all
	// outside the 64-node fabric, exactly like an id-space sweep — land
	// on daemon 0. Owner-side routing still hashes every id, so without
	// the gate the unowned half would be forwarded verbatim.
	unowned := 0
	scan := make([]wire.Record, 0, scanIDs)
	for id := 0; id < scanIDs; id++ {
		v := topology.NodeID(id)
		if v == hot {
			continue
		}
		scan = append(scan, wire.Record{Victim: v, Topo: topoID})
		if ring.Owner(v) != nodes[0].self {
			unowned++
		}
	}
	c := newClient(71)
	for i := 0; i < len(scan); i += 512 {
		end := i + 512
		if end > len(scan) {
			end = len(scan)
		}
		if err := c.Send(scan[i:end]); err != nil {
			t.Fatalf("scan send: %v", err)
		}
	}
	c.Close()
	if c.Delivered() != c.Sent() || c.Lost() != 0 {
		t.Fatalf("scan delivery: sent=%d delivered=%d lost=%d", c.Sent(), c.Delivered(), c.Lost())
	}

	// Routing is inline with the session, so after the final ack the
	// verdict is in: the scan must not have earned a single forward.
	if got := nodes[0].Ring().Version(); got != 1 {
		t.Fatalf("ring flapped to v%d mid-scan", got)
	}
	admitted := uint64(nodes[0].gate.admittedCount())
	if out := nodes[0].forwardedOut.Load(); out > admitted*admit {
		t.Fatalf("scan forwarded %d records, want <= admitted(%d) x admit(%d)", out, admitted, admit)
	}
	if out := nodes[0].forwardedOut.Load(); out != 0 {
		t.Fatalf("one-shot scan ids forwarded %d records, want 0", out)
	}
	if sup := nodes[0].forwardSuppress.Load(); sup != uint64(unowned) {
		t.Fatalf("suppressed %d records, want %d (every unowned scan id)", sup, unowned)
	}
	if v, ok := scrapeMetric(t, daemons[0].HTTPAddr().String(), "ddpmd_forwarded_total"); !ok || v != 0 {
		t.Fatalf("ddpmd_forwarded_total = %v (found=%v), want 0", v, ok)
	}
	if v, ok := scrapeMetric(t, daemons[0].HTTPAddr().String(), "ddpmd_forward_suppressed_total"); !ok || v != float64(unowned) {
		t.Fatalf("ddpmd_forward_suppressed_total = %v (found=%v), want %d", v, ok, unowned)
	}

	// Phase 2: a genuinely hot destination. 500 records for one unowned
	// in-fabric victim must admit at the threshold and replay the
	// buffered prefix. With the table still warm from the scan the
	// victim's first few records may land before it wins a slot — those
	// are absorbed sketch-only, the same below-threshold tradeoff the
	// pipeline gate makes — but from the slot onward nothing is lost:
	// the shortfall is bounded by the earn window, and the owner's
	// exact tallies equal the forwarded count bit-for-bit.
	scheme, err := marking.NewDDPM(net8)
	if err != nil {
		t.Fatal(err)
	}
	src := topology.NodeID(9)
	if src == hot {
		src = 10
	}
	sc, dc := net8.CoordOf(src), net8.CoordOf(hot)
	vec := make(topology.Vector, len(sc))
	for i := range vec {
		vec[i] = dc[i] - sc[i]
	}
	mf, err := scheme.Codec().Encode(vec)
	if err != nil {
		t.Fatal(err)
	}
	const hotCount = 500
	flood := make([]wire.Record, hotCount)
	for i := range flood {
		flood[i] = wire.Record{Victim: hot, MF: mf, Topo: topoID}
	}
	c = newClient(72)
	if err := c.Send(flood); err != nil {
		t.Fatalf("flood send: %v", err)
	}
	c.Close()
	if c.Delivered() != c.Sent() || c.Lost() != 0 {
		t.Fatalf("flood delivery: sent=%d delivered=%d lost=%d", c.Sent(), c.Delivered(), c.Lost())
	}

	out := nodes[0].forwardedOut.Load()
	if out > hotCount || out < hotCount-admit {
		t.Fatalf("hot victim forwarded %d records, want within the earn window of %d (>= %d)",
			out, hotCount, hotCount-admit)
	}
	if got := nodes[0].gate.admittedCount(); got != 1 {
		t.Fatalf("gate admitted %d victims, want 1", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, ok := daemons[1].Pipeline().ExportVictim(hot)
		if ok && snap.Identified()+snap.Undecodable == int64(out) {
			if snap.Identified() != int64(out) || len(snap.Sources) != 1 || snap.Sources[0].Node != int64(src) {
				t.Fatalf("owner tallies mangled: %+v", snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never saw all %d forwarded records (state %+v ok=%v, forward_lost=%d)",
				out, snap, ok, nodes[0].forwardLost.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, ok := scrapeMetric(t, daemons[0].HTTPAddr().String(), "ddpmd_forwarded_total"); !ok || v != float64(out) {
		t.Fatalf("ddpmd_forwarded_total = %v (found=%v), want %d", v, ok, out)
	}
	if v, ok := scrapeMetric(t, daemons[1].HTTPAddr().String(), "ddpmd_forwarded_in_total"); !ok || v != float64(out) {
		t.Fatalf("owner ddpmd_forwarded_in_total = %v (found=%v), want %d", v, ok, out)
	}
}
