package cluster

// The clustered chaos acceptance test: a three-instance fleet ingests
// a seeded flood sprayed round-robin across all instances, the
// instance that owns the attack victim is killed mid-campaign, and the
// survivors must take over without losing a single identification —
// the new owner's per-source tallies equal the offline identifier run
// over every delivered record, and the blocklists of both survivors
// converge to the same fleet-wide set.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/marking"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/wire"
)

const chaosBlockThreshold = 100

// grabAddrs reserves n distinct loopback TCP addresses by binding and
// immediately releasing them, so the fleet's members can be told each
// other's addresses before any daemon starts.
func grabAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestClusterChaosKillOwnerMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet test")
	}

	// Ground truth: the same seeded flood the single-instance chaos
	// test uses.
	res, err := loadgen.Generate(loadgen.Scenario{
		Topo: core.Torus2D(8), Zombies: 3, Seed: 42,
		AttackGap: 2, Background: 0.002, Warmup: 3000, Attack: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three daemons, each a cluster member knowing the other two.
	const fleet = 3
	addrs := grabAddrs(t, fleet)
	nodes := make([]*Node, fleet)
	daemons := make([]*pipeline.Daemon, fleet)
	for i := 0; i < fleet; i++ {
		i := i
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		d, err := pipeline.Start(pipeline.ServerConfig{
			Pipeline: pipeline.Config{
				Net: topology.NewTorus2D(8), Shards: 4, QueueLen: 1 << 15,
				BlockThreshold: chaosBlockThreshold, BlockTTL: time.Hour,
				TraceBuffer: 4096, TraceSampleN: 1,
			},
			TCPAddr:  addrs[i],
			HTTPAddr: "127.0.0.1:0",
			NewCluster: func(p *pipeline.Pipeline) (pipeline.ClusterNode, error) {
				n, err := New(p, Config{
					Self: addrs[i], Peers: peers,
					GossipInterval:    25 * time.Millisecond,
					FailAfter:         1500 * time.Millisecond,
					MaxReplicasPerMsg: 64,
					Incarnation:       uint64(0x1000 + i),
					Logf:              t.Logf,
				})
				if err == nil {
					nodes[i] = n
				}
				return n, err
			},
		})
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		daemons[i] = d
		defer d.Shutdown(context.Background())
	}
	pipes := make([]*pipeline.Pipeline, fleet)
	for i, d := range daemons {
		pipes[i] = d.Pipeline()
	}

	newClient := func(i int, seed uint64) *wire.Client {
		c, err := wire.NewClient(wire.ClientConfig{
			Dial:        func() (net.Conn, error) { return net.Dial("tcp", addrs[i]) },
			Seed:        seed,
			MaxBatch:    200,
			MaxAttempts: 8,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			AckTimeout:  5 * time.Second,
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		return c
	}
	send := func(clients []*wire.Client, recs []wire.Record) (delivered uint64) {
		t.Helper()
		for i := 0; i < len(recs); i += 200 {
			end := i + 200
			if end > len(recs) {
				end = len(recs)
			}
			if err := clients[(i/200)%len(clients)].Send(recs[i:end]); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		for _, c := range clients {
			c.Close()
			if c.Lost() != 0 {
				t.Fatalf("client lost %d records on a healthy network", c.Lost())
			}
			if c.Delivered() != c.Sent() {
				t.Fatalf("client delivered %d of %d sent", c.Delivered(), c.Sent())
			}
			delivered += c.Delivered()
		}
		return delivered
	}
	sumProcessed := func(idx ...int) uint64 {
		var s uint64
		for _, i := range idx {
			s += pipes[i].C.Processed.Load()
		}
		return s
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: ~60% of the campaign, sprayed round-robin across all
	// three instances. Records land anywhere; each is processed exactly
	// once, at its ring owner.
	cut := len(res.Records) * 6 / 10
	phase1 := send([]*wire.Client{newClient(0, 13), newClient(1, 14), newClient(2, 15)}, res.Records[:cut])
	waitFor("phase-1 records to reach their owners", func() bool {
		return sumProcessed(0, 1, 2) == phase1
	})
	for i, n := range nodes {
		if n.forwardDropped.Load() != 0 || n.forwardLost.Load() != 0 {
			t.Fatalf("node %d shed forwards (dropped=%d lost=%d)", i, n.forwardDropped.Load(), n.forwardLost.Load())
		}
		if pipes[i].C.Dropped.Load() != 0 {
			t.Fatalf("pipeline %d dropped records", i)
		}
	}

	// The kill target is the instance that owns the attack victim —
	// the hardest member to lose.
	ring := nodes[0].Ring()
	owner := ring.Owner(res.Victim)
	kill, succIdx := -1, -1
	succ := ring.Successor(res.Victim)
	for i, n := range nodes {
		if n.self == owner {
			kill = i
		}
		if n.self == succ {
			succIdx = i
		}
	}
	if kill < 0 || succIdx < 0 || kill == succIdx {
		t.Fatalf("degenerate ring: owner %x successor %x", owner, succ)
	}
	ownerSnap, ok := pipes[kill].ExportVictim(res.Victim)
	if !ok {
		t.Fatal("owner has no state for the attack victim")
	}
	ownerTotal := ownerSnap.Identified() + ownerSnap.Undecodable

	// Before the kill: anti-entropy must have shipped the owner's
	// victim state to the ring successor, and every instance's
	// blocklist must agree (phase 1 crosses the block threshold).
	waitFor("successor to hold the owner's replica of the attack victim", func() bool {
		nodes[succIdx].mu.Lock()
		rep, ok := nodes[succIdx].replicas[res.Victim]
		nodes[succIdx].mu.Unlock()
		return ok && rep.Identified()+rep.Undecodable == ownerTotal
	})
	waitFor("fleet-wide blocklist convergence after phase 1", func() bool {
		a := pipes[0].Blocklist().Snapshot()
		return len(a) > 0 &&
			reflect.DeepEqual(a, pipes[1].Blocklist().Snapshot()) &&
			reflect.DeepEqual(a, pipes[2].Blocklist().Snapshot())
	})

	// Kill the owner mid-campaign.
	procAtKill := sumProcessed(0, 1, 2)
	if err := daemons[kill].Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown daemon %d: %v", kill, err)
	}
	var survivors []int
	for i := range daemons {
		if i != kill {
			survivors = append(survivors, i)
		}
	}

	// Survivors must notice the death and rebuild the ring before more
	// traffic flows, so nothing is routed at a corpse.
	waitFor("survivors to rebuild the ring without the dead member", func() bool {
		for _, i := range survivors {
			if nodes[i].Ring().Size() != 2 {
				return false
			}
		}
		return true
	})
	newOwner := nodes[survivors[0]].Ring().Owner(res.Victim)
	if newOwner != succ {
		t.Fatalf("post-death owner %x is not the old successor %x", newOwner, succ)
	}

	// Phase 2: the campaign continues on the survivors only. The final
	// tenth is held back for phase 3, after the dead owner rejoins.
	cut2 := len(res.Records) * 9 / 10
	phase2 := send([]*wire.Client{newClient(survivors[0], 23), newClient(survivors[1], 24)}, res.Records[cut:cut2])
	waitFor("phase-2 records to reach their owners", func() bool {
		return sumProcessed(survivors...) == procAtKill-pipes[kill].C.Processed.Load()+phase2
	})
	for _, i := range survivors {
		if nodes[i].forwardDropped.Load() != 0 || nodes[i].forwardLost.Load() != 0 {
			t.Fatalf("survivor %d shed forwards after the kill (dropped=%d lost=%d)",
				i, nodes[i].forwardDropped.Load(), nodes[i].forwardLost.Load())
		}
	}

	// The takeover invariant: the new owner's tallies — seeded replica
	// plus phase-2 traffic — equal the offline identifier over every
	// record the fleet accepted so far, and identification is unchanged.
	scheme, err := marking.NewDDPM(topology.NewTorus2D(8))
	if err != nil {
		t.Fatal(err)
	}
	offline := traceback.NewDDPMIdentifier(scheme, res.Victim)
	for _, rec := range res.Records[:cut2] {
		offline.ObserveMF(rec.MF)
	}
	want := offline.SourcesAbove(chaosBlockThreshold)
	got := pipes[succIdx].SourcesAbove(res.Victim, chaosBlockThreshold)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-takeover identification %v != offline-over-delivered %v", got, want)
	}
	if !reflect.DeepEqual(got, res.Zombies) {
		t.Fatalf("identified %v, ground truth %v", got, res.Zombies)
	}
	if nodes[succIdx].takeovers.Load() == 0 || nodes[succIdx].seedsApplied.Load() == 0 {
		t.Fatalf("takeover happened without seeding (takeovers=%d seeds=%d)",
			nodes[succIdx].takeovers.Load(), nodes[succIdx].seedsApplied.Load())
	}

	// Both survivors serve the same fleet-wide blocklist, containing
	// every zombie, even though the blocks were minted on the dead
	// instance.
	getBlocklist := func(i int) []struct {
		Node int64 `json:"node"`
	} {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/blocklist", daemons[i].HTTPAddr()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []struct {
			Node int64 `json:"node"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	waitFor("survivor blocklists to converge", func() bool {
		return reflect.DeepEqual(getBlocklist(survivors[0]), getBlocklist(survivors[1]))
	})
	blocked := map[int64]bool{}
	for _, e := range getBlocklist(survivors[0]) {
		blocked[e.Node] = true
	}
	for _, z := range res.Zombies {
		if !blocked[int64(z)] {
			t.Fatalf("zombie %d missing from survivor blocklist %v", z, blocked)
		}
	}

	// Admin satellite: a block POSTed to one survivor — for a node the
	// attack never touched — propagates to the other via gossip.
	manual := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if v != res.Victim && !blocked[int64(v)] {
			manual = v
			break
		}
	}
	body, _ := json.Marshal(map[string]any{"node": int64(manual)})
	resp, err := http.Post(fmt.Sprintf("http://%s/blocklist", daemons[survivors[0]].HTTPAddr()),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /blocklist: %d", resp.StatusCode)
	}
	waitFor("manual block to gossip to the other survivor", func() bool {
		return pipes[survivors[1]].Blocklist().BlockedAt(manual, time.Now().UnixNano())
	})

	// Phase 3: the killed owner returns at its old address via -join —
	// it knows nothing but one survivor and learns the roster over
	// gossip. Rejoining re-routes the attack victim back to it (same
	// member id, same pure function of the alive set), so the interim
	// owner must hand back its cumulative state before releasing it.
	interim, ok := pipes[succIdx].ExportVictim(res.Victim)
	if !ok {
		t.Fatal("interim owner has no state for the attack victim before the rejoin")
	}
	interimTotal := interim.Identified() + interim.Undecodable
	var rnode *Node
	rd, err := pipeline.Start(pipeline.ServerConfig{
		Pipeline: pipeline.Config{
			Net: topology.NewTorus2D(8), Shards: 4, QueueLen: 1 << 15,
			BlockThreshold: chaosBlockThreshold, BlockTTL: time.Hour,
			TraceBuffer: 4096, TraceSampleN: 1,
		},
		TCPAddr:  addrs[kill],
		HTTPAddr: "127.0.0.1:0",
		NewCluster: func(p *pipeline.Pipeline) (pipeline.ClusterNode, error) {
			n, err := New(p, Config{
				Self: addrs[kill], Join: addrs[survivors[0]],
				GossipInterval:    25 * time.Millisecond,
				FailAfter:         1500 * time.Millisecond,
				MaxReplicasPerMsg: 64,
				Incarnation:       uint64(0x2000 + kill),
				Logf:              t.Logf,
			})
			if err == nil {
				rnode = n
			}
			return n, err
		},
	})
	if err != nil {
		t.Fatalf("rejoin daemon: %v", err)
	}
	defer rd.Shutdown(context.Background())
	rp := rd.Pipeline()

	// Everyone converges on the three-member ring again, with the
	// rejoined instance owning the attack victim as before the kill.
	waitFor("fleet to converge on the rejoined three-member ring", func() bool {
		if rnode.Ring().Size() != 3 {
			return false
		}
		for _, i := range survivors {
			if nodes[i].Ring().Size() != 3 {
				return false
			}
		}
		return true
	})
	if got := rnode.Ring().Owner(res.Victim); got != owner {
		t.Fatalf("rejoined ring owner %x, want the original owner %x", got, owner)
	}

	// Handback: the interim owner detaches and ships its cumulative
	// state; the rejoined owner seeds it, tallies intact to the record.
	waitFor("handback of the attack victim to the rejoined owner", func() bool {
		snap, ok := rp.ExportVictim(res.Victim)
		return ok && snap.Identified()+snap.Undecodable == interimTotal
	})
	if _, ok := pipes[succIdx].ExportVictim(res.Victim); ok {
		t.Fatal("interim owner kept exact state after the handback")
	}
	if nodes[succIdx].handbacksOut.Load() == 0 {
		t.Fatal("interim owner recorded no handback shipments")
	}
	if rnode.handbacksIn.Load() == 0 {
		t.Fatal("rejoined owner recorded no inbound handbacks")
	}

	// The rest of the campaign, sprayed across all three instances.
	prev3 := sumProcessed(survivors...) + rp.C.Processed.Load()
	phase3 := send([]*wire.Client{
		newClient(kill, 33), newClient(survivors[0], 34), newClient(survivors[1], 35),
	}, res.Records[cut2:])
	waitFor("phase-3 records to reach their owners", func() bool {
		return sumProcessed(survivors...)+rp.C.Processed.Load() == prev3+phase3
	})
	if rnode.forwardDropped.Load() != 0 || rnode.forwardLost.Load() != 0 {
		t.Fatalf("rejoined node shed forwards (dropped=%d lost=%d)",
			rnode.forwardDropped.Load(), rnode.forwardLost.Load())
	}

	// The rejoin invariant, the point of the whole exercise: after a
	// kill AND a rejoin, the owner's tallies equal the offline
	// identifier over every record the fleet accepted across all three
	// phases — no identification was lost at either ownership handover.
	for _, rec := range res.Records[cut2:] {
		offline.ObserveMF(rec.MF)
	}
	wantAll := offline.SourcesAbove(chaosBlockThreshold)
	gotAll := rp.SourcesAbove(res.Victim, chaosBlockThreshold)
	if !reflect.DeepEqual(gotAll, wantAll) {
		t.Fatalf("post-rejoin identification %v != offline-over-delivered %v", gotAll, wantAll)
	}
	if !reflect.DeepEqual(gotAll, res.Zombies) {
		t.Fatalf("post-rejoin identified %v, ground truth %v", gotAll, res.Zombies)
	}

	// And the rejoined instance serves the fleet's blocklist — blocks
	// minted before and during its absence included.
	waitFor("blocklist convergence at the rejoined instance", func() bool {
		return reflect.DeepEqual(rp.Blocklist().Snapshot(), pipes[survivors[0]].Blocklist().Snapshot())
	})

	// Fleet observability: one traced record's cross-node story. A fresh
	// victim owned by the rejoined instance is flooded with traced
	// records through a survivor — every record crosses a forward hop —
	// and once the flood crosses the block threshold, ANY member's
	// /cluster/traces must return one stitched timeline for the blocking
	// record: the survivor's forwarded span and the owner's block span
	// under the same id, wire → forward → ingest → identify → detect →
	// block.
	// Victim 0 is skipped: loadgen treats a zero Victim as unset and
	// substitutes the default, which would silently flood the wrong node.
	ring3 := rnode.Ring()
	v2 := topology.NodeID(-1)
	for v := topology.NodeID(1); v < 64; v++ {
		if v != res.Victim && ring3.Owner(v) == owner {
			v2 = v
			break
		}
	}
	if v2 < 0 {
		t.Fatal("rejoined owner owns no second victim")
	}
	var mini *loadgen.Result
	for seed := uint64(100); seed < 200; seed++ {
		m, err := loadgen.Generate(loadgen.Scenario{
			Topo: core.Torus2D(8), Victim: v2, Zombies: 1, Seed: seed,
			AttackGap: 2, Warmup: 0, Attack: 600,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The zombie must not already be blocked fleet-wide, or the flood
		// dies as blocked_hit before it can cross the threshold again.
		if !rp.Blocklist().BlockedAt(m.Zombies[0], time.Now().UnixNano()) {
			mini = m
			break
		}
	}
	if mini == nil {
		t.Fatal("no unblocked zombie found for the traced flood")
	}
	tcl, err := wire.NewClient(wire.ClientConfig{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addrs[survivors[0]]) },
		Seed:        55,
		MaxBatch:    200,
		MaxAttempts: 8,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		AckTimeout:  5 * time.Second,
		Trace:       true,
	})
	if err != nil {
		t.Fatalf("traced client: %v", err)
	}
	send([]*wire.Client{tcl}, mini.Records)
	waitFor("the traced flood to block its zombie at the rejoined owner", func() bool {
		return rp.Blocklist().BlockedAt(mini.Zombies[0], time.Now().UnixNano())
	})

	// The owner retained the blocking record's trace — with the exporter
	// send stamp intact across the forward hop — and observed the true
	// send-to-block detection latency.
	var blockTrace pipeline.Trace
	waitFor("the blocking record's trace at the owner", func() bool {
		ts := rp.Recorder().Snapshot(pipeline.TraceFilter{
			Victim: int64(v2), Source: pipeline.MatchAny,
			Outcome: pipeline.OutcomeBlock, HasOut: true, Limit: 1,
		})
		if len(ts) == 0 || ts[0].ID == 0 || ts[0].Sent == 0 {
			return false
		}
		blockTrace = ts[0]
		return true
	})
	if hist, sum := rp.DetectionLatency(); hist == nil || hist.N() == 0 || sum <= 0 {
		t.Fatal("owner did not observe a send-to-block detection latency")
	}

	// The fleet endpoint — queried on a member that is neither the
	// ingress nor the owner — merges both halves of the timeline.
	idHex := fmt.Sprintf("%016x", blockTrace.ID)
	var doc pipeline.FleetTrace
	waitFor("a stitched cross-node timeline from /cluster/traces", func() bool {
		resp, err := http.Get(fmt.Sprintf("http://%s/cluster/traces?id=%s",
			daemons[survivors[1]].HTTPAddr(), idHex))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		doc = pipeline.FleetTrace{}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return false
		}
		// Admin addresses propagate via gossip; retry until every member
		// answered and both halves of the timeline are present.
		return len(doc.Errors) == 0 && len(doc.Spans) >= 2
	})
	var fwdSpan, blockSpan *pipeline.FleetSpan
	for i := range doc.Spans {
		s := &doc.Spans[i]
		switch s.Outcome {
		case pipeline.OutcomeForwarded.String():
			fwdSpan = s
		case pipeline.OutcomeBlock.String():
			blockSpan = s
		}
	}
	if fwdSpan == nil || blockSpan == nil {
		t.Fatalf("timeline missing a half: %+v", doc.Spans)
	}
	if fwdSpan.Node != addrs[survivors[0]] {
		t.Fatalf("forwarded span on %s, want the ingress survivor %s", fwdSpan.Node, addrs[survivors[0]])
	}
	if blockSpan.Node != addrs[kill] {
		t.Fatalf("block span on %s, want the rejoined owner %s", blockSpan.Node, addrs[kill])
	}
	if fwdSpan.StartNS > blockSpan.StartNS {
		t.Fatalf("route (%d) after ingest (%d): spans out of order", fwdSpan.StartNS, blockSpan.StartNS)
	}
	if fwdSpan.WireNS < 0 {
		t.Fatalf("forwarded span lost the wire span: %+v", fwdSpan)
	}
	for what, ns := range map[string]int64{
		"wire": blockSpan.WireNS, "forward": blockSpan.ForwardNS,
		"ingest": blockSpan.IngestNS, "identify": blockSpan.IdentifyNS,
		"detect": blockSpan.DetectNS, "block": blockSpan.BlockNS,
	} {
		if ns < 0 {
			t.Fatalf("block span missing its %s stage: %+v", what, blockSpan)
		}
	}
	if doc.DetectionLatencyNS <= 0 {
		t.Fatalf("merged timeline has no detection latency: %+v", doc)
	}
}
