package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/filter"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Gossip message: the body carried inside a wire TypeGossip frame.
// Requests and responses share the layout — anti-entropy is symmetric,
// each side tells the other what it has (digest), pushes the mutations
// it believes the other lacks (ops), and ships victim-state replicas
// for victims the receiver backs up.
//
// Layout (big-endian):
//
//	[0]    version  uint8   = gossipVersion
//	[1:9)  sender   uint64  member id of the sending instance
//	[9:17) ringVer  uint64  sender's local ring version (observability)
//	nDigest uint16, then per entry: origin(8) maxSeq(8)
//	nOps    uint16, then per op:    origin(8) seq(8) stamp(8) node(8) until(8) victim(8) flags(1)
//	nReps   uint16, then per replica:
//	        victim(8) flags(1: bit0 alarmed, bit1 expired) undecodable(8) nSources(4),
//	        then per source: node(8) count(8)
//	senderAddr: len uint16 + bytes (the sender's advertised ingest address)
//	nRoster uint16, then per entry: len uint16 + bytes
//	senderAdmin: len uint16 + bytes (v3+ only: the sender's admin-plane
//	            HTTP address, empty until its listener is bound)
//
// Replicas with the expired flag are tombstones: the final snapshot of
// a victim whose owner's TTL sweep retired it, shipped so the backup
// drops its stored replica instead of re-seeding a detector the owner
// deliberately let go.
//
// SenderAddr and Roster are what make runtime join work: a joiner that
// knows one live member learns every other alive member's address from
// the roster, and the member learns the joiner from SenderAddr. Member
// ids are the FNV hash of the address, so a receiver authenticates a
// previously unknown sender by checking MemberID(SenderAddr) == Sender
// before admitting it to the roster.
type gossipMsg struct {
	Sender      uint64
	RingVer     uint64
	SenderAddr  string
	SenderAdmin string // admin-plane HTTP address; "" on v2 messages
	Digest      []digestEntry
	Ops         []originOp
	Replicas    []pipeline.VictimSnapshot
	Roster      []string
}

// digestEntry advertises the highest contiguous mutation sequence the
// sender holds for one origin instance.
type digestEntry struct {
	Origin uint64
	MaxSeq uint64
}

// originOp is one blocklist mutation tagged with the instance that
// minted it.
type originOp struct {
	Origin uint64
	Op     filter.Mutation
}

const (
	// gossipVersion 3 appends the sender's admin-plane address after the
	// roster; a v2 message (no admin section) still parses, so a mixed
	// fleet keeps gossiping through a rolling upgrade.
	gossipVersion   = 3
	gossipVersionV2 = 2
	gossipFixedSize = 1 + 8 + 8
	digestEntrySize = 16
	opSize          = 49
	replicaFixed    = 8 + 1 + 8 + 4
	sourceSize      = 16
)

var errGossipTrunc = errors.New("cluster: truncated gossip message")

// appendGossipMsg encodes m. The caller budgets ops and replicas so
// the body fits one wire frame (see gossipBudget).
func appendGossipMsg(b []byte, m *gossipMsg) []byte {
	b = append(b, gossipVersion)
	b = binary.BigEndian.AppendUint64(b, m.Sender)
	b = binary.BigEndian.AppendUint64(b, m.RingVer)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Digest)))
	for _, d := range m.Digest {
		b = binary.BigEndian.AppendUint64(b, d.Origin)
		b = binary.BigEndian.AppendUint64(b, d.MaxSeq)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Ops)))
	for _, o := range m.Ops {
		b = binary.BigEndian.AppendUint64(b, o.Origin)
		b = binary.BigEndian.AppendUint64(b, o.Op.Seq)
		b = binary.BigEndian.AppendUint64(b, o.Op.Stamp)
		b = binary.BigEndian.AppendUint64(b, uint64(int64(o.Op.Node)))
		b = binary.BigEndian.AppendUint64(b, uint64(o.Op.Until))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(o.Op.Victim)))
		var flags byte
		if o.Op.Unblock {
			flags = 1
		}
		b = append(b, flags)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Replicas)))
	for i := range m.Replicas {
		b = appendSnapshot(b, &m.Replicas[i])
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.SenderAddr)))
	b = append(b, m.SenderAddr...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Roster)))
	for _, addr := range m.Roster {
		b = binary.BigEndian.AppendUint16(b, uint16(len(addr)))
		b = append(b, addr...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.SenderAdmin)))
	b = append(b, m.SenderAdmin...)
	return b
}

// appendSnapshot encodes one victim snapshot (the replica layout shared
// by gossip messages and handback frames).
func appendSnapshot(b []byte, r *pipeline.VictimSnapshot) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(int64(r.Victim)))
	var fl byte
	if r.Alarmed {
		fl = 1
	}
	if r.Expired {
		fl |= 2
	}
	b = append(b, fl)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Undecodable))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Sources)))
	for _, sc := range r.Sources {
		b = binary.BigEndian.AppendUint64(b, uint64(sc.Node))
		b = binary.BigEndian.AppendUint64(b, uint64(sc.Count))
	}
	return b
}

// parseSnapshot decodes one victim snapshot off the front of p and
// returns the remainder. Nothing aliases p.
func parseSnapshot(p []byte) (pipeline.VictimSnapshot, []byte, error) {
	if len(p) < replicaFixed {
		return pipeline.VictimSnapshot{}, nil, errGossipTrunc
	}
	snap := pipeline.VictimSnapshot{
		Victim:      topology.NodeID(int64(binary.BigEndian.Uint64(p[0:8]))),
		Alarmed:     p[8]&1 != 0,
		Expired:     p[8]&2 != 0,
		Undecodable: int64(binary.BigEndian.Uint64(p[9:17])),
	}
	ns := int(binary.BigEndian.Uint32(p[17:21]))
	p = p[replicaFixed:]
	for j := 0; j < ns; j++ {
		if len(p) < sourceSize {
			return pipeline.VictimSnapshot{}, nil, errGossipTrunc
		}
		snap.Sources = append(snap.Sources, pipeline.SourceCount{
			Node:  int64(binary.BigEndian.Uint64(p[0:8])),
			Count: int64(binary.BigEndian.Uint64(p[8:16])),
		})
		p = p[sourceSize:]
	}
	return snap, p, nil
}

// parseGossipMsg decodes a message body. Nothing aliases b.
func parseGossipMsg(b []byte) (*gossipMsg, error) {
	if len(b) < gossipFixedSize+6 {
		return nil, errGossipTrunc
	}
	ver := b[0]
	if ver != gossipVersion && ver != gossipVersionV2 {
		return nil, fmt.Errorf("cluster: gossip version %d (want %d or %d)", ver, gossipVersionV2, gossipVersion)
	}
	m := &gossipMsg{
		Sender:  binary.BigEndian.Uint64(b[1:9]),
		RingVer: binary.BigEndian.Uint64(b[9:17]),
	}
	p := b[17:]
	take := func(n int) ([]byte, error) {
		if len(p) < n {
			return nil, errGossipTrunc
		}
		out := p[:n]
		p = p[n:]
		return out, nil
	}
	hdr, err := take(2)
	if err != nil {
		return nil, err
	}
	nd := int(binary.BigEndian.Uint16(hdr))
	for i := 0; i < nd; i++ {
		e, err := take(digestEntrySize)
		if err != nil {
			return nil, err
		}
		m.Digest = append(m.Digest, digestEntry{
			Origin: binary.BigEndian.Uint64(e[0:8]),
			MaxSeq: binary.BigEndian.Uint64(e[8:16]),
		})
	}
	if hdr, err = take(2); err != nil {
		return nil, err
	}
	no := int(binary.BigEndian.Uint16(hdr))
	for i := 0; i < no; i++ {
		e, err := take(opSize)
		if err != nil {
			return nil, err
		}
		m.Ops = append(m.Ops, originOp{
			Origin: binary.BigEndian.Uint64(e[0:8]),
			Op: filter.Mutation{
				Seq:     binary.BigEndian.Uint64(e[8:16]),
				Stamp:   binary.BigEndian.Uint64(e[16:24]),
				Node:    topology.NodeID(int64(binary.BigEndian.Uint64(e[24:32]))),
				Until:   int64(binary.BigEndian.Uint64(e[32:40])),
				Victim:  topology.NodeID(int64(binary.BigEndian.Uint64(e[40:48]))),
				Unblock: e[48]&1 != 0,
			},
		})
	}
	if hdr, err = take(2); err != nil {
		return nil, err
	}
	nr := int(binary.BigEndian.Uint16(hdr))
	for i := 0; i < nr; i++ {
		snap, rest, err := parseSnapshot(p)
		if err != nil {
			return nil, err
		}
		p = rest
		m.Replicas = append(m.Replicas, snap)
	}
	takeStr := func() (string, error) {
		h, err := take(2)
		if err != nil {
			return "", err
		}
		s, err := take(int(binary.BigEndian.Uint16(h)))
		if err != nil {
			return "", err
		}
		return string(s), nil
	}
	if m.SenderAddr, err = takeStr(); err != nil {
		return nil, err
	}
	if hdr, err = take(2); err != nil {
		return nil, err
	}
	nm := int(binary.BigEndian.Uint16(hdr))
	for i := 0; i < nm; i++ {
		addr, err := takeStr()
		if err != nil {
			return nil, err
		}
		m.Roster = append(m.Roster, addr)
	}
	if ver >= gossipVersion {
		if m.SenderAdmin, err = takeStr(); err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing gossip bytes", len(p))
	}
	return m, nil
}

// gossipBudget tracks how many encoded bytes a message may still grow
// by before it would no longer fit a wire frame. addrBytes is the
// pre-computed size of the sender-addr and roster sections, which are
// mandatory and therefore reserved up front.
type gossipBudget struct{ left int }

func newGossipBudget(digestEntries, addrBytes int) gossipBudget {
	return gossipBudget{left: wire.MaxGossipBody - gossipFixedSize - 6 - digestEntries*digestEntrySize - addrBytes}
}

// rosterBytes is the encoded size of the sender-addr, roster and
// sender-admin sections of a message.
func rosterBytes(senderAddr, senderAdmin string, roster []string) int {
	n := 2 + len(senderAddr) + 2 + 2 + len(senderAdmin)
	for _, a := range roster {
		n += 2 + len(a)
	}
	return n
}

func (g *gossipBudget) fitsOp() bool {
	if g.left < opSize {
		return false
	}
	g.left -= opSize
	return true
}

func (g *gossipBudget) fitsReplica(snap *pipeline.VictimSnapshot) bool {
	n := replicaFixed + len(snap.Sources)*sourceSize
	if g.left < n {
		return false
	}
	g.left -= n
	return true
}
