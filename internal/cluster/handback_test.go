package cluster

import (
	"errors"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

func TestHandbackMsgCodecRoundTrip(t *testing.T) {
	m := &handbackMsg{
		Sender: 0xFEED,
		Seq:    42,
		Snap: pipeline.VictimSnapshot{
			Victim: 17, Alarmed: true, Undecodable: 3,
			Sources: []pipeline.SourceCount{{Node: 2, Count: 900}, {Node: 5, Count: 1}},
		},
	}
	got, err := parseHandbackMsg(appendHandbackMsg(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mangled:\n got %+v\nwant %+v", got, m)
	}
	b := appendHandbackMsg(nil, m)
	for cut := 1; cut < len(b); cut++ {
		if _, err := parseHandbackMsg(b[:len(b)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes parsed", cut)
		}
	}
	if _, err := parseHandbackMsg(append(appendHandbackMsg(nil, m), 0)); err == nil {
		t.Fatal("trailing byte parsed")
	}
	bad := appendHandbackMsg(nil, m)
	bad[0] = handbackVersion + 1
	if _, err := parseHandbackMsg(bad); err == nil {
		t.Fatal("future version parsed")
	}
}

// TestRecomputeMembershipEqualSizeSwap is the regression test for the
// sweep comparing alive sets only by example when sizes matched: one
// member dying in the same window another joins keeps the count
// constant while changing the membership, and the ring must rebuild.
func TestRecomputeMembershipEqualSizeSwap(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.6.0.1:1", "10.6.0.2:1", "10.6.0.3:1"}
	n, _ := newTestNode(t, addrs[0], []string{addrs[1]}, 601, &now)

	if got := n.Ring().Size(); got != 2 {
		t.Fatalf("initial ring size %d, want 2", got)
	}
	// A third member joins at t=0.9s (lastHeard stamped then), while the
	// configured peer stays silent past FailAfter (1s): at the next
	// sweep the alive count is still 2 but the set has swapped.
	now.Store(int64(900 * time.Millisecond))
	if pr := n.addPeer(addrs[2]); pr == nil {
		t.Fatal("addPeer rejected the joiner")
	}
	now.Store(int64(1500 * time.Millisecond))
	n.recomputeMembership()

	ring := n.Ring()
	if ring.Version() != 2 {
		t.Fatalf("ring version %d, want 2 (equal-size membership swap must rebuild)", ring.Version())
	}
	want := []uint64{n.self, MemberID(addrs[2])}
	if want[0] > want[1] {
		want[0], want[1] = want[1], want[0]
	}
	if got := ring.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring members %v, want %v", got, want)
	}
	if got := n.joins.Load(); got != 1 {
		t.Fatalf("joins counter %d, want 1", got)
	}
}

// TestRuntimeJoinLearnsRoster: a joiner configured with nothing but a
// -join address learns the rest of the fleet from its first gossip
// exchange, and the fleet learns the joiner from its authenticated
// sender address — every node converges on the same three-member ring.
func TestRuntimeJoinLearnsRoster(t *testing.T) {
	var now atomic.Int64
	now.Store(1) // nonzero so lastHeard stamps are meaningful
	addrs := []string{"10.7.0.1:1", "10.7.0.2:1", "10.7.0.3:1"}
	a, _ := newTestNode(t, addrs[0], []string{addrs[1]}, 701, &now)

	pj, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := New(pj, Config{
		Self: addrs[2], Join: addrs[0],
		GossipInterval: time.Hour, FailAfter: time.Second,
		Incarnation: 703,
		Dial:        func(string) (net.Conn, error) { return nil, errors.New("test: no network") },
		Now:         now.Load,
	})
	if err != nil {
		pj.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		j.Close()
		pj.Close()
	})
	if got := len(j.members.Load().list); got != 1 {
		t.Fatalf("joiner starts knowing %d members, want 1 (the join target)", got)
	}

	// One exchange with the join target: the response roster names the
	// rest of the fleet, and the request's sender address registers the
	// joiner at the target.
	exchange(t, a, j)

	if pr := j.members.Load().byID[MemberID(addrs[1])]; pr == nil {
		t.Fatal("joiner did not learn the third member from the roster")
	}
	if pr := a.members.Load().byID[j.self]; pr == nil {
		t.Fatal("join target did not learn the joiner from its sender address")
	}
	if got := j.joins.Load(); got == 0 {
		t.Fatal("joiner's members_learned counter still zero")
	}

	// Both converge on the same three-member ring at their next sweep.
	a.recomputeMembership()
	j.recomputeMembership()
	if got, want := a.Ring().Members(), j.Ring().Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rings diverge after join: a=%v j=%v", got, want)
	}
	if got := j.Ring().Size(); got != 3 {
		t.Fatalf("joined ring size %d, want 3", got)
	}

	// Determinism: the joined ring partitions victims identically on
	// both instances (same pure function of the alive set).
	for v := topology.NodeID(0); v < 64; v++ {
		if a.Ring().Owner(v) != j.Ring().Owner(v) {
			t.Fatalf("victim %d owner differs: a=%x j=%x", v, a.Ring().Owner(v), j.Ring().Owner(v))
		}
	}
}

// TestGossipRejectsForgedSender: a gossip message claiming a member id
// its advertised address does not hash to must not register the
// address — the id check is the membership authentication.
func TestGossipRejectsForgedSender(t *testing.T) {
	var now atomic.Int64
	addrs := []string{"10.8.0.1:1", "10.8.0.2:1"}
	n, _ := newTestNode(t, addrs[0], []string{addrs[1]}, 801, &now)

	forged := &gossipMsg{
		Sender:     MemberID(addrs[1]), // a legitimate member's id...
		SenderAddr: "10.66.6.6:1",      // ...claimed from the wrong address
		RingVer:    1,
	}
	if _, err := n.HandleGossip(appendGossipMsg(nil, forged)); err != nil {
		t.Fatalf("HandleGossip: %v", err)
	}
	if pr := n.members.Load().byID[MemberID("10.66.6.6:1")]; pr != nil {
		t.Fatal("forged sender address registered as a member")
	}
	if got := len(n.members.Load().list); got != 1 {
		t.Fatalf("known fleet grew to %d on a forged sender", got)
	}
}

// TestHandbackOnOwnershipLoss: when a ring change moves a victim away,
// its exact state is detached through the shard queue; with the new
// owner unreachable the shipment falls back to the replica store —
// delayed, never lost.
func TestHandbackOnOwnershipLoss(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	addrs := []string{"10.9.1.1:1", "10.9.1.2:1", "10.9.1.3:1"}
	n, p := newTestNode(t, addrs[0], []string{addrs[1]}, 901, &now)

	// Find a victim owned here on the two-member ring that the
	// three-member ring assigns to the joiner.
	ring := n.Ring()
	joined := NewRing(2, sortedIDs(n.self, MemberID(addrs[1]), MemberID(addrs[2])), n.cfg.VNodes)
	victim := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == n.self && joined.Owner(v) == MemberID(addrs[2]) {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no victim moves from self to the joiner under these ids")
	}

	s := p.GetSlab()
	for i := 0; i < 10; i++ {
		s.Append(wire.Record{Victim: victim, MF: uint16(i), Topo: p.TopoID()})
	}
	p.SubmitSlab(s)
	deadline := time.Now().Add(5 * time.Second)
	for p.C.Processed.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("records never processed")
		}
		time.Sleep(time.Millisecond)
	}
	want, ok := p.ExportVictim(victim)
	if !ok {
		t.Fatal("no exact state before the ring change")
	}

	// The joiner appears; the sweep rebuilds the ring and must detach
	// the departing victim. Every dial fails in this harness, so the
	// handback loop exhausts its attempts and files the fallback.
	if n.addPeer(addrs[2]) == nil {
		t.Fatal("addPeer rejected the joiner")
	}
	n.recomputeMembership()
	if got := n.Ring().Version(); got != 2 {
		t.Fatalf("ring version %d, want 2", got)
	}

	deadline = time.Now().Add(5 * time.Second)
	for n.handbackFailures.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handback never failed over to the replica store")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := p.ExportVictim(victim); ok {
		t.Fatal("detached victim still has exact state")
	}
	if got := p.C.VictimsDetached.Load(); got != 1 {
		t.Fatalf("VictimsDetached = %d, want 1", got)
	}
	n.mu.Lock()
	stored, ok := n.replicas[victim]
	seeded := n.seeded[victim]
	n.mu.Unlock()
	if !ok {
		t.Fatal("failed handback did not store a replica")
	}
	if seeded {
		t.Fatal("detached victim still latched as seeded")
	}
	if !reflect.DeepEqual(stored.Sources, want.Sources) || stored.Undecodable != want.Undecodable {
		t.Fatalf("fallback replica mangled:\n got %+v\nwant %+v", stored, want)
	}
	if got := n.handbacksOut.Load(); got != 0 {
		t.Fatalf("handbacksOut = %d, want 0 (owner unreachable)", got)
	}
}

// TestHandbackDelivery: the full wire exchange — the interim owner
// ships a detached snapshot over a TypeHandback frame, the rejoined
// owner absorbs it through HandleHandback and, owning the victim,
// seeds it under the epoch latch.
func TestHandbackDelivery(t *testing.T) {
	var now atomic.Int64
	// The injected clock must sit at wall time here: shipOnce derives
	// its real-socket I/O deadline from it, and a clock near zero puts
	// the deadline decades in the past.
	now.Store(time.Now().UnixNano())
	addrs := []string{"10.9.2.1:1", "10.9.2.2:1"}

	// The receiver: a node that owns `victim` on the shared two-member
	// ring. Its HandleHandback is driven directly through an in-memory
	// pipe server below.
	recv, precv := newTestNode(t, addrs[1], []string{addrs[0]}, 952, &now)

	ring := recv.Ring()
	victim := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == recv.self {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("receiver owns nothing")
	}

	// A minimal TypeHandback server over a real socket, answering like
	// the daemon's serveHandback: parse, absorb, ack.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := wire.NewReader(conn)
		for {
			ftype, payload, err := rd.ReadFrame()
			if err != nil || ftype != wire.TypeHandback {
				return
			}
			body, err := wire.ParseHandback(payload)
			if err != nil {
				return
			}
			ack, err := recv.HandleHandback(body)
			if err != nil {
				return
			}
			conn.Write(wire.AppendAck(nil, ack))
		}
	}()

	pship, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	shipper, err := New(pship, Config{
		Self: addrs[0], Peers: []string{addrs[1]},
		GossipInterval: time.Hour, FailAfter: time.Second,
		Incarnation: 951,
		Dial:        func(string) (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Now:         now.Load,
	})
	if err != nil {
		pship.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		shipper.Close()
		pship.Close()
	})

	snap := pipeline.VictimSnapshot{
		Victim: victim, Alarmed: true, Undecodable: 4,
		Sources: []pipeline.SourceCount{{Node: 3, Count: 120}},
	}
	shipper.queueHandback(snap, true)

	deadline := time.Now().Add(5 * time.Second)
	for shipper.handbacksOut.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("handback never acked (failures=%d)", shipper.handbackFailures.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := recv.handbacksIn.Load(); got != 1 {
		t.Fatalf("receiver handbacksIn = %d, want 1", got)
	}
	for {
		got, ok := precv.ExportVictim(victim)
		if ok && got.Identified() == 120 && got.Undecodable == 4 && got.Alarmed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handback never seeded at the owner: %+v ok=%v", got, ok)
		}
		time.Sleep(time.Millisecond)
	}
	if got := recv.seedsApplied.Load(); got != 1 {
		t.Fatalf("receiver seedsApplied = %d, want 1", got)
	}
}

// sortedIDs is a tiny helper for building expectation rings.
func sortedIDs(ids ...uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestRouteSketchGate: with the forwarding gate armed, unowned
// destinations are suppressed until they reach the guaranteed count,
// the buffered prefix replays on admission (the owner loses nothing),
// and a wide one-record-per-destination scan forwards nothing at all.
func TestRouteSketchGate(t *testing.T) {
	const admit = 8
	var now atomic.Int64
	now.Store(1)
	addrs := []string{"10.9.3.1:1", "10.9.3.2:1"}
	p, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(p, Config{
		Self: addrs[0], Peers: []string{addrs[1]},
		SketchAdmit:    admit,
		GossipInterval: time.Hour, FailAfter: time.Second,
		Incarnation: 961,
		Dial:        func(string) (net.Conn, error) { return nil, errors.New("test: no network") },
		Now:         now.Load,
	})
	if err != nil {
		p.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Close()
		p.Close()
	})

	ring := n.Ring()
	peerID := MemberID(addrs[1])
	hot := topology.NodeID(-1)
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) == peerID {
			hot = v
			break
		}
	}
	if hot < 0 {
		t.Fatal("peer owns nothing")
	}

	send := func(v topology.NodeID, mf uint16) {
		s := p.GetSlab()
		s.Append(wire.Record{Victim: v, MF: mf, Topo: p.TopoID()})
		n.Route(s)
	}

	// Below threshold: every record absorbed, nothing forwarded.
	for i := 0; i < admit-1; i++ {
		send(hot, uint16(i))
	}
	if out, sup := n.forwardedOut.Load(), n.forwardSuppress.Load(); out != 0 || sup != admit-1 {
		t.Fatalf("below threshold: forwarded=%d suppressed=%d, want 0/%d", out, sup, admit-1)
	}

	// The crossing record admits the victim and replays the buffered
	// prefix: the owner-bound queue sees all admit records, exactly.
	send(hot, admit-1)
	if out := n.forwardedOut.Load(); out != admit {
		t.Fatalf("admission forwarded %d records, want %d (buffered prefix must replay)", out, admit)
	}
	if got := n.gate.admittedCount(); got != 1 {
		t.Fatalf("admitted count %d, want 1", got)
	}

	// Post-admission records forward 1:1 on the fast path.
	send(hot, admit)
	if out := n.forwardedOut.Load(); out != admit+1 {
		t.Fatalf("post-admission forwarded %d, want %d", out, admit+1)
	}

	// A scan — one record per unowned destination — forwards nothing.
	base := n.forwardedOut.Load()
	scanned := 0
	for v := topology.NodeID(0); v < 64; v++ {
		if v == hot || ring.Owner(v) != peerID {
			continue
		}
		send(v, 0)
		scanned++
	}
	if scanned == 0 {
		t.Fatal("degenerate ring: peer owns only one victim")
	}
	if out := n.forwardedOut.Load(); out != base {
		t.Fatalf("scan leaked %d forwards", out-base)
	}

	// A ring change resets the gate: earned admissions do not survive a
	// re-partition they were earned under.
	now.Store(int64(2 * time.Second))
	n.recomputeMembership() // peer silent past FailAfter: ring shrinks to self
	if got := n.Ring().Size(); got != 1 {
		t.Fatalf("ring size %d, want 1", got)
	}
	// Single-member rings bypass the gate entirely (everything local);
	// verify directly that a fresh ring version clears admissions.
	if pass, _, _ := n.gate.filter(n.Ring().Version(), wire.Record{Victim: hot}); pass {
		t.Fatal("admission survived a ring-version change")
	}
	if got := n.gate.admittedCount(); got != 0 {
		t.Fatalf("admitted count %d after reset, want 0", got)
	}
}
