package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Config parameterizes a cluster Node.
type Config struct {
	// Self is this instance's advertised TCP ingest address; Peers are
	// the other instances'. Address strings must be byte-identical
	// fleet-wide (they derive the member ids).
	Self  string
	Peers []string

	// Join, when set, is the address of any live fleet member: the node
	// starts with it as its only hint, learns the rest of the roster
	// from gossip responses, and enters the ring by the same pure
	// function of the alive set every member computes. Composes with
	// Peers (the join target is simply one more initial peer).
	Join string

	// SketchAdmit, when greater than one, arms the sketch admission
	// gate on the forwarding tier: an unowned destination must reach
	// this guaranteed count in a count-min + space-saving sketch before
	// its records earn forwards, and the buffered prefix is replayed
	// into the forward queue on admission so the owner's tallies stay
	// exact for every admitted victim. At most one means forward every
	// unowned record (the legacy behavior).
	SketchAdmit int

	// VNodes is the virtual nodes per member on the ring (default 64).
	VNodes int

	// GossipInterval paces anti-entropy rounds (default 500ms).
	// FailAfter is how long a peer may stay silent — no gossip
	// exchange, no forwarded frames — before it is declared dead and
	// the ring rebuilt without it (default 4×GossipInterval).
	GossipInterval time.Duration
	FailAfter      time.Duration

	// ForwardQueue bounds each peer's outbound batch queue (default
	// 256 batches); a full queue sheds, counted, never blocks ingest.
	// ForwardBatch caps records per forwarded frame (default 512).
	ForwardQueue int
	ForwardBatch int

	// MaxReplicasPerMsg caps victim-state replicas per gossip message
	// (default 8); a round-robin cursor covers the rest over rounds.
	MaxReplicasPerMsg int

	// Incarnation overrides the derived per-process blocklist origin id
	// (tests). 0 derives one from the member id and the start time so a
	// restarted instance never collides with its previous life's
	// mutation sequences.
	Incarnation uint64

	// Dial overrides net.Dial for forwarding and gossip connections
	// (tests, fault injection). Now supplies unix nanos (defaults to
	// time.Now; tests inject). Logf, when set, receives membership and
	// rebalance events.
	Dial func(addr string) (net.Conn, error)
	Now  func() int64
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() error {
	if c.Self == "" {
		return errors.New("cluster: Self address required")
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 4 * c.GossipInterval
	}
	if c.ForwardQueue <= 0 {
		c.ForwardQueue = 256
	}
	if c.ForwardBatch <= 0 {
		c.ForwardBatch = 512
	}
	if c.ForwardBatch > wire.MaxRecordsPerForwarded {
		return fmt.Errorf("cluster: ForwardBatch %d exceeds the %d records one forwarded frame can carry",
			c.ForwardBatch, wire.MaxRecordsPerForwarded)
	}
	if c.ForwardBatch > wire.MaxTracedPerForwarded {
		return fmt.Errorf("cluster: ForwardBatch %d exceeds the %d records one traced forwarded frame can carry",
			c.ForwardBatch, wire.MaxTracedPerForwarded)
	}
	if c.MaxReplicasPerMsg <= 0 {
		c.MaxReplicasPerMsg = 8
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// fwBatch is one unit of the forwarding queue: the records bound for a
// peer plus, when the slab carried a trace lane, their contexts (ctxs
// is nil on the untraced path — the forwarder then ships plain
// forwarded frames with zero per-record trace overhead).
type fwBatch struct {
	recs []wire.Record
	ctxs []wire.TraceContext
}

// peer is one remote instance: forwarding queue, gossip connection and
// liveness state. The peer set grows at runtime (gossip rosters and
// runtime joins) behind an atomically swapped peerSet snapshot; a peer,
// once added, is never removed — a silent one just stops being alive.
// Everything mutable on a peer is either atomic or guarded by Node.mu
// (digest, cursor) or owned by a single goroutine (conn/rd: the gossip
// loop; client: the forwarder).
type peer struct {
	addr string
	id   uint64

	queue      chan fwBatch
	lastHeard  atomic.Int64  // unix nanos of last proof of life
	lastGossip atomic.Int64  // unix nanos of the last completed gossip exchange (0 = never)
	ringVer    atomic.Uint64 // peer's last self-reported ring version
	queued     atomic.Uint64 // records accepted into this peer's forward queue
	delivered  atomic.Uint64 // records the peer acked on the forward session
	lost       atomic.Uint64 // records shed at this peer's queue or abandoned on its session

	// adminAddr is the peer's admin-plane HTTP address, learned from its
	// gossip messages — what the fleet trace fan-out queries. Empty until
	// the first exchange that carries one.
	adminAddr atomic.Pointer[string]

	digest        map[uint64]uint64 // mutations the peer is known to hold
	replicaCursor int               // round-robin start into owned victims
	pendingTombs  []topology.NodeID // tombstones attached to the in-flight client request

	conn net.Conn // gossip conn, gossip-loop goroutine only
	rd   *wire.Reader
}

// peerSet is an immutable snapshot of the known fleet, read lock-free
// by the ingest hot path (Route, NoteForwardedIn) and swapped
// copy-on-write under Node.mu when a member is learned at runtime.
type peerSet struct {
	byID map[uint64]*peer
	list []*peer // sorted by id
}

// Node implements pipeline.ClusterNode: the cluster tier of one ddpmd
// instance.
type Node struct {
	cfg         Config
	p           *pipeline.Pipeline
	bl          *filter.Blocklist
	self        uint64
	incarnation uint64
	start       int64

	ring    atomic.Pointer[Ring]
	members atomic.Pointer[peerSet]
	gate    *fwGate // sketch admission gate on forwards; nil = legacy

	mu          sync.Mutex
	ringVersion uint64
	remoteLogs  map[uint64][]filter.Mutation
	replicas    map[topology.NodeID]pipeline.VictimSnapshot
	seeded      map[topology.NodeID]bool                    // seeded this ownership epoch
	retired     map[topology.NodeID]pipeline.VictimSnapshot // TTL-swept victims' tombstones awaiting gossip

	handbackQ   chan pipeline.VictimSnapshot
	handbackSeq uint64 // handback-loop goroutine only

	// adminAddr is this node's own admin-plane HTTP address, set by the
	// daemon once its listener is bound and gossiped to peers so the
	// fleet trace fan-out can reach every member.
	adminAddr atomic.Pointer[string]

	forwardedOut      atomic.Uint64
	forwardedIn       atomic.Uint64
	forwardDropped    atomic.Uint64
	forwardLost       atomic.Uint64
	forwardSuppress   atomic.Uint64
	gossipRounds      atomic.Uint64
	gossipFails       atomic.Uint64
	seedsApplied      atomic.Uint64
	takeovers         atomic.Uint64
	joins             atomic.Uint64
	handbacksOut      atomic.Uint64
	handbacksIn       atomic.Uint64
	handbackFailures  atomic.Uint64
	handbackRetries   atomic.Uint64
	handbackFallbacks atomic.Uint64
	traceDowngrades   atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds and starts the cluster tier: one forwarder goroutine per
// peer plus the gossip and handback loops. All configured peers start
// presumed alive (the ring covers the whole fleet immediately); a peer
// that never answers is declared dead FailAfter from now. A Join
// address seeds the roster with one live member; the rest is learned
// from its gossip responses.
func New(p *pipeline.Pipeline, cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		p:          p,
		bl:         p.Blocklist(),
		self:       MemberID(cfg.Self),
		start:      cfg.Now(),
		remoteLogs: make(map[uint64][]filter.Mutation),
		replicas:   make(map[topology.NodeID]pipeline.VictimSnapshot),
		seeded:     make(map[topology.NodeID]bool),
		retired:    make(map[topology.NodeID]pipeline.VictimSnapshot),
		handbackQ:  make(chan pipeline.VictimSnapshot, 1024),
		stop:       make(chan struct{}),
	}
	n.incarnation = cfg.Incarnation
	if n.incarnation == 0 {
		n.incarnation = splitmix64(n.self ^ uint64(n.start))
	}
	if n.incarnation == 0 {
		n.incarnation = 1
	}
	if cfg.SketchAdmit > 1 {
		n.gate = newFwGate(cfg.SketchAdmit)
	}
	initial := cfg.Peers
	if cfg.Join != "" {
		initial = append(append([]string(nil), cfg.Peers...), cfg.Join)
	}
	ps := &peerSet{byID: make(map[uint64]*peer, len(initial))}
	members := []uint64{n.self}
	now := cfg.Now()
	for _, addr := range initial {
		id := MemberID(addr)
		if id == n.self {
			return nil, fmt.Errorf("cluster: peer %q collides with self %q", addr, cfg.Self)
		}
		if _, dup := ps.byID[id]; dup {
			if addr == cfg.Join {
				continue // join target already a configured peer
			}
			return nil, fmt.Errorf("cluster: duplicate peer %q", addr)
		}
		pr := &peer{
			addr:   addr,
			id:     id,
			queue:  make(chan fwBatch, cfg.ForwardQueue),
			digest: make(map[uint64]uint64),
		}
		pr.lastHeard.Store(now)
		ps.byID[id] = pr
		members = append(members, id)
		ps.list = append(ps.list, pr)
	}
	sort.Slice(ps.list, func(i, j int) bool { return ps.list[i].id < ps.list[j].id })
	n.members.Store(ps)
	n.ringVersion = 1
	n.ring.Store(NewRing(1, members, cfg.VNodes))
	n.bl.SetOrigin(n.incarnation)
	p.SetVictimExpiredHook(n.noteRetired)
	for _, pr := range ps.list {
		n.wg.Add(1)
		go n.forward(pr)
	}
	n.wg.Add(1)
	go n.gossipLoop()
	n.wg.Add(1)
	go n.handbackLoop()
	cfg.Logf("cluster: up self=%s id=%x incarnation=%x members=%d", cfg.Self, n.self, n.incarnation, len(members))
	return n, nil
}

// Close stops gossip, drains and flushes the forwarding queues, and
// closes the peer connections. Safe to call once ingest has stopped.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	// Barrier: an addPeer that passed the closed check has finished its
	// wg.Add and goroutine spawn before we wait; one that hasn't will
	// observe closed and no-op.
	n.mu.Lock()
	n.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	close(n.stop)
	n.wg.Wait()
}

// addPeer registers a member learned at runtime (a gossip roster entry
// or a previously unknown authenticated sender) and starts its
// forwarder. Returns the existing peer when the address is already
// known, nil for self or when the node is closing. The new member
// starts presumed alive and enters the ring at the next membership
// sweep.
func (n *Node) addPeer(addr string) *peer {
	id := MemberID(addr)
	if id == n.self || addr == n.cfg.Self {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		return nil
	}
	ps := n.members.Load()
	if pr := ps.byID[id]; pr != nil {
		return pr
	}
	pr := &peer{
		addr:   addr,
		id:     id,
		queue:  make(chan fwBatch, n.cfg.ForwardQueue),
		digest: make(map[uint64]uint64),
	}
	pr.lastHeard.Store(n.cfg.Now())
	next := &peerSet{
		byID: make(map[uint64]*peer, len(ps.list)+1),
		list: make([]*peer, 0, len(ps.list)+1),
	}
	for _, old := range ps.list {
		next.byID[old.id] = old
		next.list = append(next.list, old)
	}
	next.byID[id] = pr
	next.list = append(next.list, pr)
	sort.Slice(next.list, func(i, j int) bool { return next.list[i].id < next.list[j].id })
	n.members.Store(next)
	n.joins.Add(1)
	n.wg.Add(1)
	go n.forward(pr)
	n.cfg.Logf("cluster: learned member %s id=%x (known fleet=%d)", addr, id, len(next.list)+1)
	return pr
}

// Route partitions one ingest slab by victim ownership: records this
// instance owns stay in the slab (compacted in place) and go to the
// pipeline; foreign records are copied into per-owner batches and
// queued for forwarding. When the forwarding gate is armed, unowned
// destinations must first earn admission in the sketch — records below
// the threshold are absorbed (counted in forward_suppressed), and the
// slot's buffered prefix is replayed into the forward queue the moment
// a destination crosses it, so an admitted victim's owner still sees
// every record. Consumes the slab reference. Returns records accepted
// locally plus records queued for peers (suppressed records are
// neither).
func (n *Node) Route(s *wire.Slab) int {
	ring := n.ring.Load()
	if ring.Size() <= 1 {
		return n.p.SubmitSlab(s)
	}
	ps := n.members.Load()
	ringVer := ring.Version()
	var batches map[uint64][]wire.Record
	var ctxBatches map[uint64][]wire.TraceContext
	traced := s.Ctxs != nil
	var now int64
	var fr *pipeline.FlightRecorder
	if traced {
		// One clock read per slab: the route decision's timestamp, which
		// becomes every forwarded context's Routed stamp and the start of
		// its forward span.
		now = n.cfg.Now()
		fr = n.p.Recorder()
	}
	recs := s.Recs
	k := 0
	for i := range recs {
		owner := ring.Owner(recs[i].Victim)
		if owner == n.self {
			if k != i {
				recs[k] = recs[i]
				if traced {
					s.Ctxs[k] = s.Ctxs[i]
				}
			}
			k++
			continue
		}
		var replay []wire.Record
		if n.gate != nil {
			pass, buf, admitted := n.gate.filter(ringVer, recs[i])
			if !pass {
				n.forwardSuppress.Add(1)
				continue
			}
			if admitted {
				n.noteGateAdmit(recs[i].Victim, owner, ringVer)
			}
			replay = buf
		}
		if batches == nil {
			batches = make(map[uint64][]wire.Record, 2)
			if traced {
				ctxBatches = make(map[uint64][]wire.TraceContext, 2)
			}
		}
		if len(replay) > 0 {
			batches[owner] = append(batches[owner], replay...)
			if traced {
				// Replayed prefix records predate the trace lane being
				// consulted for them; they ride the hop untraced.
				ctxBatches[owner] = append(ctxBatches[owner], make([]wire.TraceContext, len(replay))...)
			}
		}
		batches[owner] = append(batches[owner], recs[i])
		if traced {
			ctx := s.Ctxs[i]
			if ctx.ID != 0 {
				ctx.Routed = now
				n.traceForwarded(fr, &recs[i], &ctx, owner)
			}
			ctxBatches[owner] = append(ctxBatches[owner], ctx)
		}
	}
	s.Recs = recs[:k]
	if traced {
		s.Ctxs = s.Ctxs[:k]
	}
	accepted := 0
	if k > 0 {
		accepted = n.p.SubmitSlab(s)
	} else {
		s.Release()
	}
	for owner, fw := range batches {
		var ctxs []wire.TraceContext
		if traced {
			ctxs = ctxBatches[owner]
		}
		accepted += n.enqueue(ps.byID[owner], fw, ctxs)
	}
	return accepted
}

// traceForwarded commits the origin-side half of a forwarded record's
// timeline: the span from exporter send to the route decision, with the
// owner's member id attached. The owner's ingest then commits the
// other half under the same trace id; the fleet fan-out stitches both.
func (n *Node) traceForwarded(fr *pipeline.FlightRecorder, rec *wire.Record, ctx *wire.TraceContext, owner uint64) {
	if fr == nil {
		return
	}
	t := pipeline.Trace{
		ID: ctx.ID, Sent: ctx.Sent, Start: ctx.Routed,
		Victim: int64(rec.Victim), Source: -1, Shard: -1,
		Outcome: pipeline.OutcomeForwarded, Origin: owner,
		Wire: pipeline.SpanMissing, Forward: pipeline.SpanMissing,
		Ingest: pipeline.SpanMissing, Identify: pipeline.SpanMissing,
		Detect: pipeline.SpanMissing, Block: pipeline.SpanMissing,
	}
	if ctx.Sent > 0 {
		t.Wire = ctx.Routed - ctx.Sent
	}
	fr.Commit(&t)
}

// noteGateAdmit records a fwGate admission as an always-retained
// cluster event: a journal line plus a synthetic flight-recorder trace,
// both carrying the owner and ring version the admission happened
// under.
func (n *Node) noteGateAdmit(victim topology.NodeID, owner, ringVer uint64) {
	now := n.cfg.Now()
	if fr := n.p.Recorder(); fr != nil {
		fr.CommitEventWithID(fr.MintEventID(uint64(victim)), pipeline.OutcomeGateAdmit, now, int64(victim))
	}
	if j := n.p.Journal(); j != nil {
		j.Emit(pipeline.Event{
			T: now, Type: pipeline.EventGateAdmit,
			Victim: int64(victim), Source: -1,
			Detail: fmt.Sprintf("owner=%x ring=v%d", owner, ringVer),
		})
	}
}

// enqueue offers one batch to a peer's forwarding queue, shedding
// (counted) when the queue is full — ingest never blocks on a slow or
// dead peer.
func (n *Node) enqueue(pr *peer, fw []wire.Record, ctxs []wire.TraceContext) int {
	if pr == nil {
		n.forwardDropped.Add(uint64(len(fw)))
		return 0
	}
	select {
	case pr.queue <- fwBatch{recs: fw, ctxs: ctxs}:
		n.forwardedOut.Add(uint64(len(fw)))
		pr.queued.Add(uint64(len(fw)))
		return len(fw)
	default:
		n.forwardDropped.Add(uint64(len(fw)))
		pr.lost.Add(uint64(len(fw)))
		return 0
	}
}

// NoteForwardedIn accounts records accepted off a forwarding session;
// a forwarded frame is also proof its origin is alive.
func (n *Node) NoteForwardedIn(origin uint64, accepted int) {
	n.forwardedIn.Add(uint64(accepted))
	if pr := n.members.Load().byID[origin]; pr != nil {
		pr.lastHeard.Store(n.cfg.Now())
	}
}

// forward is the per-peer forwarder goroutine: drains the batch queue
// into an acked wire client shipping TypeForwarded frames. Records the
// client sheds (peer unreachable, buffer overflow, close) are rerouted
// through the current ring — after a death that is exactly what moves
// in-flight records to the new owner.
func (n *Node) forward(pr *peer) {
	defer n.wg.Done()
	client, err := wire.NewClient(wire.ClientConfig{
		Dial:          func() (net.Conn, error) { return n.cfg.Dial(pr.addr) },
		StreamID:      n.incarnation ^ pr.id,
		Seed:          splitmix64(n.incarnation ^ pr.id),
		MaxBatch:      n.cfg.ForwardBatch,
		MaxAttempts:   3,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    250 * time.Millisecond,
		ForwardOrigin: n.self,
		// Negotiate the trace lane on every forward session; batches
		// without contexts still ship as plain forwarded frames, so the
		// untraced hot path pays nothing for the offer.
		Trace:            true,
		OnTraceDowngrade: func() { n.noteTraceDowngrade(pr) },
		OnLost:           func(rec wire.Record) { n.reroute(pr, rec) },
	})
	if err != nil {
		n.cfg.Logf("cluster: forwarder %s: %v", pr.addr, err)
		return
	}
	var tbuf []wire.TracedRecord
	send := func(fw fwBatch) {
		if fw.ctxs == nil {
			client.Send(fw.recs)
			return
		}
		tbuf = tbuf[:0]
		for i := range fw.recs {
			tbuf = append(tbuf, wire.TracedRecord{Record: fw.recs[i], Ctx: fw.ctxs[i]})
		}
		client.SendTraced(tbuf)
	}
	flushDelivered := func() {
		client.Flush()
		pr.delivered.Store(client.Delivered())
	}
	for {
		select {
		case fw := <-pr.queue:
			send(fw)
			// Opportunistically drain whatever queued while sending,
			// then flush so forwarding latency stays one queue-pass.
		drain:
			for {
				select {
				case fw := <-pr.queue:
					send(fw)
				default:
					break drain
				}
			}
			flushDelivered()
		case <-n.stop:
			for {
				select {
				case fw := <-pr.queue:
					send(fw)
					continue
				default:
				}
				break
			}
			flushDelivered()
			client.Close()
			pr.delivered.Store(client.Delivered())
			return
		}
	}
}

// noteTraceDowngrade records that a forward peer's hello did not echo
// the trace flag: contexts for records forwarded there are shed at the
// wire client (delivery is unaffected). Fires once per established
// connection; an always-retained journal line marks the interop
// downgrade so a mixed-version fleet is diagnosable from one node.
func (n *Node) noteTraceDowngrade(pr *peer) {
	n.traceDowngrades.Add(1)
	n.cfg.Logf("cluster: peer %s did not negotiate the trace lane; forwarding untraced", pr.addr)
	if j := n.p.Journal(); j != nil {
		j.Emit(pipeline.Event{
			T: n.cfg.Now(), Type: pipeline.EventTraceDowngrade,
			Victim: -1, Source: -1, Stream: pr.id, Detail: pr.addr,
		})
	}
}

// reroute re-dispatches one record the forwarder for `from` abandoned.
// If the ring has moved the victim here, process it locally; if it
// names a different peer, requeue there; if it still names the dead
// peer (ring not yet rebuilt) or the node is closing, the record is
// lost — counted, like any unreachable-exporter loss.
func (n *Node) reroute(from *peer, rec wire.Record) {
	if n.closed.Load() {
		n.forwardLost.Add(1)
		return
	}
	owner := n.ring.Load().Owner(rec.Victim)
	switch {
	case owner == n.self:
		if !n.p.Submit(rec) {
			n.forwardLost.Add(1)
		}
	case owner == from.id:
		n.forwardLost.Add(1)
		from.lost.Add(1)
	default:
		if n.enqueue(n.members.Load().byID[owner], []wire.Record{rec}, nil) == 0 {
			n.forwardLost.Add(1)
		}
	}
}

// gossipLoop drives anti-entropy: every interval, exchange one
// request/response with each peer over a persistent connection, then
// re-derive the alive set from lastHeard and rebuild the ring if it
// changed.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			for _, pr := range n.members.Load().list {
				if pr.conn != nil {
					pr.conn.Close()
					pr.conn = nil
				}
			}
			return
		case <-ticker.C:
			for _, pr := range n.members.Load().list {
				if err := n.gossipWith(pr); err != nil {
					n.gossipFails.Add(1)
				}
			}
			round := n.gossipRounds.Add(1)
			n.noteGossipRound(round)
			n.recomputeMembership()
		}
	}
}

// gossipJournalEvery samples the per-round gossip event 1-in-N: a
// 500ms cadence would write 172k journal lines a day per node if every
// round landed, so the audit trail carries a periodic summary instead
// (round counter, alive set, cumulative failures) — enough to bound
// when anti-entropy last ran without drowning the attack events.
const gossipJournalEvery = 16

// noteGossipRound emits the sampled anti-entropy summary: a journal
// line plus a synthetic flight-recorder event, both carrying the round
// number and the alive/known member counts.
func (n *Node) noteGossipRound(round uint64) {
	if round%gossipJournalEvery != 0 {
		return
	}
	now := n.cfg.Now()
	ring := n.ring.Load()
	known := len(n.members.Load().list) + 1
	if fr := n.p.Recorder(); fr != nil {
		fr.CommitEventWithID(fr.MintEventID(round), pipeline.OutcomeGossip, now, -1)
	}
	if j := n.p.Journal(); j != nil {
		j.Emit(pipeline.Event{
			T: now, Type: pipeline.EventGossipRound,
			Victim: -1, Source: -1, Count: int64(round),
			Detail: fmt.Sprintf("round=%d alive=%d/%d fails=%d ring=v%d",
				round, ring.Size(), known, n.gossipFails.Load(), ring.Version()),
		})
	}
}

// gossipWith performs one exchange with a peer: send our digest plus
// the ops and replicas we believe it lacks, read back its. Any error
// tears the connection down; liveness is only credited on a complete
// exchange.
func (n *Node) gossipWith(pr *peer) error {
	if pr.conn == nil {
		conn, err := n.cfg.Dial(pr.addr)
		if err != nil {
			return err
		}
		pr.conn = conn
		pr.rd = wire.NewReader(conn)
	}
	fail := func(err error) error {
		pr.conn.Close()
		pr.conn, pr.rd = nil, nil
		return err
	}
	req := n.buildMsg(pr, nil)
	frame := wire.AppendGossip(nil, appendGossipMsg(nil, req))
	// The deadline rides the injected clock like every other timebase
	// here, so synthetic-time tests can never leave a gossip exchange
	// hanging on a wall-clock deadline that will not come.
	pr.conn.SetDeadline(time.Unix(0, n.cfg.Now()).Add(n.cfg.FailAfter))
	if _, err := pr.conn.Write(frame); err != nil {
		return fail(err)
	}
	ftype, payload, err := pr.rd.ReadFrame()
	if err != nil {
		return fail(err)
	}
	if ftype != wire.TypeGossip {
		return fail(fmt.Errorf("cluster: gossip got frame type %d", ftype))
	}
	body, err := wire.ParseGossip(payload)
	if err != nil {
		return fail(err)
	}
	resp, err := parseGossipMsg(body)
	if err != nil {
		return fail(err)
	}
	n.absorb(resp)
	pr.lastGossip.Store(n.cfg.Now())
	// A complete exchange confirms the peer absorbed our request,
	// including any tombstones it carried; stop re-shipping those.
	n.mu.Lock()
	for _, v := range pr.pendingTombs {
		delete(n.retired, v)
	}
	pr.pendingTombs = pr.pendingTombs[:0]
	n.mu.Unlock()
	return nil
}

// noteRetired files a TTL-swept victim's final snapshot as a tombstone
// to gossip to its ring successor, so the backup drops its stored
// replica instead of resurrecting the retired detector on a later
// takeover. Runs on a pipeline shard worker with no pipeline locks
// held (the pipeline's victim-expired hook).
func (n *Node) noteRetired(snap pipeline.VictimSnapshot) {
	if !snap.Expired || len(n.members.Load().list) == 0 {
		return
	}
	n.mu.Lock()
	n.retired[snap.Victim] = snap
	// Expiry ends this victim's ownership epoch: a future takeover (or
	// a fresh replica while we still own it) may seed it again.
	delete(n.seeded, snap.Victim)
	n.mu.Unlock()
}

// HandleGossip answers one inbound anti-entropy request (the server
// side, called from the daemon's connection goroutines): absorb what
// the sender pushed — which registers a previously unknown sender whose
// advertised address authenticates its member id (runtime join) — then
// respond with our digest plus the ops and replicas the sender's digest
// shows it lacks.
func (n *Node) HandleGossip(reqBody []byte) ([]byte, error) {
	req, err := parseGossipMsg(reqBody)
	if err != nil {
		return nil, err
	}
	n.absorb(req)
	var resp *gossipMsg
	if pr := n.members.Load().byID[req.Sender]; pr != nil {
		resp = n.buildMsg(pr, req.Digest)
	} else {
		// Sender still unknown (no advertised address, or the address
		// does not hash to its claimed id): answer with ops off its
		// digest so blocklists converge, but nothing liveness- or
		// replica-related attaches to it.
		resp = n.buildMsg(nil, req.Digest)
	}
	return appendGossipMsg(nil, resp), nil
}

// buildMsg assembles one outbound gossip message for a peer. The
// receiver's digest comes either from reqDigest (server side: the
// request just told us) or from the digest stored on the peer (client
// side: learned from its last response). A nil peer builds a
// digest+ops-only message.
func (n *Node) buildMsg(pr *peer, reqDigest []digestEntry) *gossipMsg {
	now := n.cfg.Now()
	ps := n.members.Load()
	n.mu.Lock()
	defer n.mu.Unlock()
	m := &gossipMsg{Sender: n.self, RingVer: n.ring.Load().Version(), SenderAddr: n.cfg.Self}
	if admin := n.adminAddr.Load(); admin != nil {
		m.SenderAdmin = *admin
	}
	// The roster carries every peer we currently believe alive, so a
	// joiner that knows one member learns the rest in one exchange.
	for _, other := range ps.list {
		if now-other.lastHeard.Load() <= int64(n.cfg.FailAfter) {
			m.Roster = append(m.Roster, other.addr)
		}
	}
	// Our digest: own mutations plus every relayed origin.
	m.Digest = append(m.Digest, digestEntry{Origin: n.incarnation, MaxSeq: n.bl.Seq()})
	for origin, log := range n.remoteLogs {
		m.Digest = append(m.Digest, digestEntry{Origin: origin, MaxSeq: uint64(len(log))})
	}
	sort.Slice(m.Digest, func(i, j int) bool { return m.Digest[i].Origin < m.Digest[j].Origin })

	theirs := make(map[uint64]uint64, 8)
	if reqDigest != nil {
		for _, d := range reqDigest {
			theirs[d.Origin] = d.MaxSeq
		}
	} else if pr != nil {
		for o, s := range pr.digest {
			theirs[o] = s
		}
	}
	budget := newGossipBudget(len(m.Digest), rosterBytes(m.SenderAddr, m.SenderAdmin, m.Roster))
	appendOps := func(origin uint64, log []filter.Mutation) {
		from := theirs[origin]
		for i := int(from); i < len(log) && budget.fitsOp(); i++ {
			m.Ops = append(m.Ops, originOp{Origin: origin, Op: log[i]})
		}
	}
	if have := n.bl.Seq(); have > theirs[n.incarnation] {
		appendOps(n.incarnation, n.bl.MutationsAfter(0, nil))
	}
	for origin, log := range n.remoteLogs {
		if uint64(len(log)) > theirs[origin] {
			appendOps(origin, log)
		}
	}
	if pr != nil {
		n.appendReplicasLocked(pr, m, &budget)
		if reqDigest == nil {
			// Client side only: the response read-back confirms delivery,
			// which is what lets a shipped tombstone be forgotten.
			n.appendTombstonesLocked(pr, m, &budget)
		}
	}
	return m
}

// appendTombstonesLocked attaches retired-victim tombstones bound for
// pr — the victims' ring successor, the instance holding their backup
// replicas — and records which shipped so the completed exchange can
// clear them (see gossipWith). Caller holds n.mu.
func (n *Node) appendTombstonesLocked(pr *peer, m *gossipMsg, budget *gossipBudget) {
	pr.pendingTombs = pr.pendingTombs[:0]
	if len(n.retired) == 0 {
		return
	}
	ring := n.ring.Load()
	if ring.Size() <= 1 {
		return
	}
	for v, snap := range n.retired {
		if ring.Successor(v) != pr.id {
			continue
		}
		if !budget.fitsReplica(&snap) {
			break
		}
		m.Replicas = append(m.Replicas, snap)
		pr.pendingTombs = append(pr.pendingTombs, v)
	}
}

// appendReplicasLocked ships victim-state replicas to pr: snapshots of
// victims this instance owns whose ring successor is pr — the instance
// that will take them over if we die. A round-robin cursor walks the
// owned set so every victim is re-replicated within a few rounds.
// Caller holds n.mu.
func (n *Node) appendReplicasLocked(pr *peer, m *gossipMsg, budget *gossipBudget) {
	ring := n.ring.Load()
	if ring.Size() <= 1 {
		return
	}
	victims := n.p.Victims()
	if len(victims) == 0 {
		return
	}
	start := pr.replicaCursor % len(victims)
	shipped := 0
	for i := 0; i < len(victims) && shipped < n.cfg.MaxReplicasPerMsg; i++ {
		v := victims[(start+i)%len(victims)]
		pr.replicaCursor = (start + i + 1) % len(victims)
		if ring.Owner(v) != n.self || ring.Successor(v) != pr.id {
			continue
		}
		snap, ok := n.p.ExportVictim(v)
		if !ok {
			continue
		}
		if !budget.fitsReplica(&snap) {
			break
		}
		m.Replicas = append(m.Replicas, snap)
		shipped++
	}
}

// absorb merges one inbound gossip message: membership (an unknown
// sender whose advertised address hashes to its claimed id, and any
// roster entries we have never heard of, join the known fleet),
// liveness, the sender's digest, its pushed mutations (per-origin
// contiguous logs feeding the blocklist's LWW register) and any victim
// replicas addressed to us.
func (n *Node) absorb(m *gossipMsg) {
	// Membership first, before the lock: addPeer takes n.mu itself. The
	// id check is the authentication — member ids are the hash of the
	// advertised address, so a sender cannot impersonate another member
	// without also owning its address string.
	if m.SenderAddr != "" && MemberID(m.SenderAddr) == m.Sender {
		n.addPeer(m.SenderAddr)
	}
	for _, addr := range m.Roster {
		n.addPeer(addr)
	}
	ps := n.members.Load()
	n.mu.Lock()
	defer n.mu.Unlock()
	if pr := ps.byID[m.Sender]; pr != nil {
		pr.lastHeard.Store(n.cfg.Now())
		pr.lastGossip.Store(n.cfg.Now())
		pr.ringVer.Store(m.RingVer)
		if m.SenderAdmin != "" {
			admin := m.SenderAdmin
			pr.adminAddr.Store(&admin)
		}
		for k := range pr.digest {
			delete(pr.digest, k)
		}
		for _, d := range m.Digest {
			pr.digest[d.Origin] = d.MaxSeq
		}
	}
	for _, op := range m.Ops {
		n.applyOpLocked(op)
	}
	ring := n.ring.Load()
	for i := range m.Replicas {
		n.storeReplicaLocked(ring, m.Replicas[i])
	}
}

// applyOpLocked accepts one relayed mutation if it extends that
// origin's contiguous log; gaps wait for a later round (the digest
// still advertises the old max, so the sender re-pushes). Caller holds
// n.mu; the blocklist's own lock nests inside (never the reverse).
func (n *Node) applyOpLocked(op originOp) {
	if op.Origin == n.incarnation {
		return // our own mutation echoed back
	}
	log := n.remoteLogs[op.Origin]
	switch {
	case op.Op.Seq <= uint64(len(log)):
		// Duplicate relay: already held.
	case op.Op.Seq == uint64(len(log))+1:
		n.remoteLogs[op.Origin] = append(log, op.Op)
		n.bl.ApplyRemote(op.Op, op.Origin)
	default:
		// Gap: drop; the digest makes the sender retry from our max.
	}
}

// storeReplicaLocked files one inbound victim replica. If the ring
// already says we own the victim (the shipper had a stale ring, or the
// owner died between shipping and arrival) the replica is seeded into
// the pipeline immediately — at most once per ownership epoch, since a
// replica is a cumulative snapshot and seeding is additive. Otherwise
// it is stored, newest-by-volume wins, until a membership change makes
// us the owner.
//
// An Expired replica is a tombstone: the owner's TTL sweep retired the
// victim. It replaces whatever replica is stored (so a takeover never
// resurrects the retired detector), and is never seeded; a later fresh
// replica replaces the tombstone, since only a live owner ships those.
// Caller holds n.mu.
func (n *Node) storeReplicaLocked(ring *Ring, snap pipeline.VictimSnapshot) {
	v := snap.Victim
	if ring.Owner(v) == n.self {
		if snap.Expired {
			// The previous owner retired this victim before handing it
			// over; drop the stored replica rather than seeding it.
			delete(n.replicas, v)
			return
		}
		if !n.seeded[v] && n.p.SeedVictim(snap) {
			n.seeded[v] = true
			n.seedsApplied.Add(1)
		}
		delete(n.replicas, v)
		return
	}
	if snap.Expired {
		n.replicas[v] = snap
		return
	}
	total := snap.Identified() + snap.Undecodable
	if old, ok := n.replicas[v]; ok && !old.Expired && old.Identified()+old.Undecodable > total {
		return // keep the fuller snapshot
	}
	n.replicas[v] = snap
}

// recomputeMembership re-derives the alive set from lastHeard and, on
// any change, installs a new ring and runs the ownership transitions:
// stored replicas for victims now owned here are seeded (takeover),
// the seeded-set entries for victims no longer owned are cleared so a
// future re-takeover can seed again, and exact state held here for
// victims the new ring assigns elsewhere is detached and handed back
// to its owner (rejoin, join rebalance).
func (n *Node) recomputeMembership() {
	now := n.cfg.Now()
	ps := n.members.Load()
	alive := make([]uint64, 1, len(ps.list)+1)
	alive[0] = n.self
	for _, pr := range ps.list {
		if now-pr.lastHeard.Load() <= int64(n.cfg.FailAfter) {
			alive = append(alive, pr.id)
		}
	}
	// Compare as sorted sets unconditionally: equal sizes never imply
	// equal membership — between two sweeps one member can vanish while
	// another (a runtime join, say) appears, keeping the count constant
	// but demanding a rebuild all the same.
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	cur := n.ring.Load().Members()
	if len(alive) == len(cur) {
		same := true
		for i := range alive {
			if alive[i] != cur[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	n.mu.Lock()
	n.ringVersion++
	ring := NewRing(n.ringVersion, alive, n.cfg.VNodes)
	n.ring.Store(ring)
	n.cfg.Logf("cluster: ring v%d alive=%d/%d", ring.Version(), ring.Size(), len(ps.list)+1)
	seeds := 0
	for v, snap := range n.replicas {
		if ring.Owner(v) != n.self {
			continue
		}
		// Tombstones are dropped, never seeded: the dead owner had
		// already retired this victim's detectors.
		if !snap.Expired && !n.seeded[v] && n.p.SeedVictim(snap) {
			n.seeded[v] = true
			n.seedsApplied.Add(1)
			seeds++
		}
		delete(n.replicas, v)
	}
	if seeds > 0 {
		n.takeovers.Add(1)
		n.cfg.Logf("cluster: took over %d victims from stored replicas", seeds)
	}
	for v := range n.seeded {
		if ring.Owner(v) != n.self {
			delete(n.seeded, v)
		}
	}
	n.mu.Unlock()
	n.noteRingChange(ring, alive, seeds)
	// Handback: every victim whose exact state lives here but whose new
	// owner is another alive member is detached through its shard queue
	// (so records already submitted are tallied into the snapshot) and
	// shipped from the handback loop. Runs outside n.mu — the detach
	// callback and the shard workers must never need this lock to make
	// progress.
	if ring.Size() > 1 {
		moved := 0
		for _, v := range n.p.Victims() {
			if ring.Owner(v) == n.self {
				continue
			}
			if n.p.DetachVictim(v, n.queueHandback) {
				moved++
			}
		}
		if moved > 0 {
			n.cfg.Logf("cluster: ring v%d handing back %d victims", ring.Version(), moved)
		}
	}
}

// noteRingChange emits the always-retained record of an ownership-ring
// rebuild — journal line plus synthetic flight-recorder event, with the
// new ring version and member set in Detail — and, when the rebuild
// seeded stored replicas, a companion takeover event carrying the seed
// count. Runs outside n.mu.
func (n *Node) noteRingChange(ring *Ring, alive []uint64, seeds int) {
	now := n.cfg.Now()
	fr := n.p.Recorder()
	j := n.p.Journal()
	if fr != nil {
		fr.CommitEventWithID(fr.MintEventID(ring.Version()), pipeline.OutcomeRingChange, now, -1)
	}
	if j != nil {
		members := make([]byte, 0, len(alive)*17)
		for i, m := range alive {
			if i > 0 {
				members = append(members, ' ')
			}
			members = fmt.Appendf(members, "%x", m)
		}
		j.Emit(pipeline.Event{
			T: now, Type: pipeline.EventRingChange,
			Victim: -1, Source: -1, Count: int64(len(alive)),
			Detail: fmt.Sprintf("ring=v%d members=%s", ring.Version(), members),
		})
	}
	if seeds > 0 {
		if fr != nil {
			fr.CommitEventWithID(fr.MintEventID(ring.Version()^uint64(seeds)), pipeline.OutcomeTakeover, now, -1)
		}
		if j != nil {
			j.Emit(pipeline.Event{
				T: now, Type: pipeline.EventTakeover,
				Victim: -1, Source: -1, Count: int64(seeds),
				Detail: fmt.Sprintf("ring=v%d seeded=%d", ring.Version(), seeds),
			})
		}
	}
}

// Status is the /cluster admin document.
type Status struct {
	Self              string         `json:"self"`
	MemberID          uint64         `json:"member_id"`
	Incarnation       uint64         `json:"incarnation"`
	RingVersion       uint64         `json:"ring_version"`
	Alive             int            `json:"alive"`
	Members           []MemberStatus `json:"members"`
	ForwardedOut      uint64         `json:"forwarded_out"`
	ForwardedIn       uint64         `json:"forwarded_in"`
	ForwardDropped    uint64         `json:"forward_dropped"`
	ForwardLost       uint64         `json:"forward_lost"`
	ForwardSuppress   uint64         `json:"forward_suppressed"`
	GateAdmitted      int            `json:"gate_admitted_victims"`
	ForwardQueue      int            `json:"forward_queue_len"`
	GossipRounds      uint64         `json:"gossip_rounds"`
	GossipFails       uint64         `json:"gossip_fails"`
	BlocklistSeq      uint64         `json:"blocklist_seq"`
	SeedsApplied      uint64         `json:"seeds_applied"`
	Takeovers         uint64         `json:"takeovers"`
	Joins             uint64         `json:"members_learned"`
	HandbacksOut      uint64         `json:"handbacks_sent"`
	HandbacksIn       uint64         `json:"handbacks_received"`
	HandbackFailures  uint64         `json:"handback_failures"`
	HandbackRetries   uint64         `json:"handback_retries"`
	HandbackFallbacks uint64         `json:"handback_fallback_replicas"`
	TraceDowngrades   uint64         `json:"trace_downgrades"`
	StoredReplicas    int            `json:"stored_replicas"`
	RetiredTombs      int            `json:"retired_tombstones"`
	OwnedVictims      int            `json:"owned_victims"`
}

// MemberStatus is one fleet member's liveness as this instance sees it,
// plus the local forward-session lag toward it: Queued is what Route
// accepted into its queue, Delivered what the peer acked, Lost what was
// shed at the queue or abandoned on the session — queued − delivered −
// lost is in flight.
type MemberStatus struct {
	Addr         string `json:"addr"`
	ID           uint64 `json:"id"`
	Self         bool   `json:"self,omitempty"`
	Alive        bool   `json:"alive"`
	LastHeardMs  int64  `json:"last_heard_ms,omitempty"`
	LastGossipMs int64  `json:"last_gossip_ms,omitempty"` // -1 = never exchanged
	RingVersion  uint64 `json:"ring_version,omitempty"`
	Queued       uint64 `json:"forward_queued,omitempty"`
	Delivered    uint64 `json:"forward_delivered,omitempty"`
	Lost         uint64 `json:"forward_lost,omitempty"`
	AdminAddr    string `json:"admin_addr,omitempty"`
}

// StatusJSON implements pipeline.ClusterNode.
func (n *Node) StatusJSON() any {
	now := n.cfg.Now()
	ring := n.ring.Load()
	aliveSet := make(map[uint64]bool, ring.Size())
	for _, m := range ring.Members() {
		aliveSet[m] = true
	}
	st := Status{
		Self:        n.cfg.Self,
		MemberID:    n.self,
		Incarnation: n.incarnation,
		RingVersion: ring.Version(),
		Alive:       ring.Size(),
		Members: []MemberStatus{{
			Addr: n.cfg.Self, ID: n.self, Self: true, Alive: true, RingVersion: ring.Version(),
		}},
		ForwardedOut:      n.forwardedOut.Load(),
		ForwardedIn:       n.forwardedIn.Load(),
		ForwardDropped:    n.forwardDropped.Load(),
		ForwardLost:       n.forwardLost.Load(),
		ForwardSuppress:   n.forwardSuppress.Load(),
		GossipRounds:      n.gossipRounds.Load(),
		GossipFails:       n.gossipFails.Load(),
		BlocklistSeq:      n.bl.Seq(),
		SeedsApplied:      n.seedsApplied.Load(),
		Takeovers:         n.takeovers.Load(),
		Joins:             n.joins.Load(),
		HandbacksOut:      n.handbacksOut.Load(),
		HandbacksIn:       n.handbacksIn.Load(),
		HandbackFailures:  n.handbackFailures.Load(),
		HandbackRetries:   n.handbackRetries.Load(),
		HandbackFallbacks: n.handbackFallbacks.Load(),
		TraceDowngrades:   n.traceDowngrades.Load(),
	}
	if n.gate != nil {
		st.GateAdmitted = n.gate.admittedCount()
	}
	if admin := n.adminAddr.Load(); admin != nil {
		st.Members[0].AdminAddr = *admin
	}
	for _, pr := range n.members.Load().list {
		st.ForwardQueue += len(pr.queue)
		ms := MemberStatus{
			Addr:         pr.addr,
			ID:           pr.id,
			Alive:        aliveSet[pr.id],
			LastHeardMs:  (now - pr.lastHeard.Load()) / int64(time.Millisecond),
			LastGossipMs: -1,
			RingVersion:  pr.ringVer.Load(),
			Queued:       pr.queued.Load(),
			Delivered:    pr.delivered.Load(),
			Lost:         pr.lost.Load(),
		}
		if lg := pr.lastGossip.Load(); lg != 0 {
			ms.LastGossipMs = (now - lg) / int64(time.Millisecond)
		}
		if admin := pr.adminAddr.Load(); admin != nil {
			ms.AdminAddr = *admin
		}
		st.Members = append(st.Members, ms)
	}
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].ID < st.Members[j].ID })
	n.mu.Lock()
	st.StoredReplicas = len(n.replicas)
	st.RetiredTombs = len(n.retired)
	n.mu.Unlock()
	for _, v := range n.p.Victims() {
		if ring.Owner(v) == n.self {
			st.OwnedVictims++
		}
	}
	return st
}

// WriteMetrics implements pipeline.ClusterNode: the cluster tier's
// Prometheus series, appended to the daemon's /metrics.
func (n *Node) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("ddpmd_forwarded_total", "records queued for forwarding to owning peers", n.forwardedOut.Load())
	counter("ddpmd_forwarded_in_total", "records accepted off inbound forwarding sessions", n.forwardedIn.Load())
	counter("ddpmd_forward_dropped_total", "records shed at full forwarding queues", n.forwardDropped.Load())
	counter("ddpmd_forward_lost_total", "forwarded records abandoned after reroute failed", n.forwardLost.Load())
	counter("ddpmd_forward_suppressed_total", "unowned records suppressed below the forwarding sketch gate", n.forwardSuppress.Load())
	counter("ddpmd_gossip_rounds_total", "anti-entropy rounds completed", n.gossipRounds.Load())
	counter("ddpmd_gossip_fails_total", "per-peer gossip exchanges that errored", n.gossipFails.Load())
	counter("ddpmd_cluster_seeds_applied_total", "victim replicas seeded into the local pipeline", n.seedsApplied.Load())
	counter("ddpmd_cluster_joins_total", "members learned at runtime (roster or authenticated hello)", n.joins.Load())
	counter("ddpmd_handback_sent_total", "victim states shipped back to a rejoined owner", n.handbacksOut.Load())
	counter("ddpmd_handback_received_total", "victim-state handbacks absorbed from interim owners", n.handbacksIn.Load())
	counter("ddpmd_handback_failed_total", "handback shipments that fell back to a stored replica", n.handbackFailures.Load())
	counter("ddpmd_handback_shipped_total", "handback snapshots delivered to their new owner", n.handbacksOut.Load())
	counter("ddpmd_handback_retries_total", "handback shipment attempts beyond the first", n.handbackRetries.Load())
	counter("ddpmd_handback_fallback_replicas_total", "handbacks that degraded to a locally stored replica", n.handbackFallbacks.Load())
	counter("ddpmd_trace_downgrades_total", "forward sessions established without the trace lane", n.traceDowngrades.Load())
	ps := n.members.Load()
	qlen := 0
	for _, pr := range ps.list {
		qlen += len(pr.queue)
	}
	gauge("ddpmd_forward_queue_len", "records batches queued for forwarding across peers", int64(qlen))
	if n.gate != nil {
		gauge("ddpmd_forward_gate_admitted", "unowned victims currently admitted through the forwarding gate", int64(n.gate.admittedCount()))
	}
	ring := n.ring.Load()
	gauge("ddpmd_ring_version", "local consistent-hash ring generation", int64(ring.Version()))
	gauge("ddpmd_cluster_members", "known fleet size (static peers plus runtime joins)", int64(len(ps.list)+1))
	gauge("ddpmd_cluster_alive", "members currently on the ring", int64(ring.Size()))
	// Gossip lag: seconds since the least recently heard alive peer —
	// how stale fleet-wide state (blocklist, replicas) can be here.
	now := n.cfg.Now()
	var lagNS int64
	aliveSet := make(map[uint64]bool, ring.Size())
	for _, m := range ring.Members() {
		aliveSet[m] = true
	}
	for _, pr := range ps.list {
		if !aliveSet[pr.id] {
			continue
		}
		if lag := now - pr.lastHeard.Load(); lag > lagNS {
			lagNS = lag
		}
	}
	fmt.Fprintf(w, "# HELP ddpmd_gossip_lag_seconds seconds since the least recently heard alive peer\n"+
		"# TYPE ddpmd_gossip_lag_seconds gauge\nddpmd_gossip_lag_seconds %.3f\n",
		float64(lagNS)/float64(time.Second))
}

// SetAdminAddr records this node's admin-plane HTTP address once the
// daemon's listener is bound; it rides every subsequent gossip message
// so peers can answer fleet-wide trace queries.
func (n *Node) SetAdminAddr(addr string) {
	n.adminAddr.Store(&addr)
}

// FleetMembers implements the pipeline's fleet-lister hook: the known
// fleet (self first, then peers sorted by id) with each member's
// admin-plane address as far as gossip has revealed it.
func (n *Node) FleetMembers() []pipeline.FleetMember {
	ring := n.ring.Load()
	aliveSet := make(map[uint64]bool, ring.Size())
	for _, m := range ring.Members() {
		aliveSet[m] = true
	}
	self := pipeline.FleetMember{Addr: n.cfg.Self, ID: n.self, Self: true, Alive: true}
	if admin := n.adminAddr.Load(); admin != nil {
		self.AdminAddr = *admin
	}
	out := []pipeline.FleetMember{self}
	for _, pr := range n.members.Load().list {
		fm := pipeline.FleetMember{Addr: pr.addr, ID: pr.id, Alive: aliveSet[pr.id]}
		if admin := pr.adminAddr.Load(); admin != nil {
			fm.AdminAddr = *admin
		}
		out = append(out, fm)
	}
	return out
}

// Ring exposes the current ring (tests, status rendering).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Incarnation exposes the per-process blocklist origin id.
func (n *Node) Incarnation() uint64 { return n.incarnation }
