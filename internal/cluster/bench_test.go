package cluster

// Route forward-path benchmarks and the zero-extra-alloc guard for the
// untraced lane. The harness parks every forwarder on a dial that only
// completes at cleanup and pre-fills the forward queues, so Route runs
// against the deterministic shed path with no background goroutine
// allocating during measurement.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

func newBenchNode(tb testing.TB, traceBuffer int) (*Node, *pipeline.Pipeline) {
	tb.Helper()
	p, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
		TraceBuffer: traceBuffer, TraceSampleN: 1 << 20,
	})
	if err != nil {
		tb.Fatal(err)
	}
	block := make(chan struct{})
	var now atomic.Int64
	now.Store(1)
	n, err := New(p, Config{
		Self:           "10.9.0.1:1",
		Peers:          []string{"10.9.0.2:1", "10.9.0.3:1"},
		GossipInterval: time.Hour, FailAfter: time.Hour,
		Incarnation: 901,
		Dial: func(string) (net.Conn, error) {
			<-block
			return nil, errors.New("bench: no network")
		},
		Now:  now.Load,
		Logf: tb.Logf,
	})
	if err != nil {
		p.Close()
		tb.Fatal(err)
	}
	// Saturate every forward queue: each forwarder consumes one batch and
	// parks in the blocked dial; every enqueue after this sheds without
	// touching a goroutine.
	for _, pr := range n.members.Load().list {
	fill:
		for {
			select {
			case pr.queue <- fwBatch{}:
			default:
				break fill
			}
		}
	}
	tb.Cleanup(func() {
		// Drain the saturated queues so shutdown doesn't grind each stale
		// batch through the failing client's retry backoff.
		for _, pr := range n.members.Load().list {
		drain:
			for {
				select {
				case <-pr.queue:
				default:
					break drain
				}
			}
		}
		close(block)
		n.Close()
		p.Close()
	})
	return n, p
}

// peerVictims lists victims this node does not own — records for them
// take Route's forward partition, never the local submit.
func peerVictims(n *Node) []topology.NodeID {
	ring := n.Ring()
	var vs []topology.NodeID
	for v := topology.NodeID(0); v < 64; v++ {
		if ring.Owner(v) != n.self {
			vs = append(vs, v)
		}
	}
	return vs
}

func benchRouteForward(b *testing.B, traced bool) {
	n, p := newBenchNode(b, 4096)
	vs := peerVictims(n)
	topo := p.TopoID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.GetSlab()
		for j := 0; j < 256; j++ {
			rec := wire.Record{Victim: vs[j%len(vs)], MF: uint16(j), Topo: topo}
			if traced {
				s.AppendTraced(wire.TracedRecord{
					Record: rec,
					Ctx:    wire.TraceContext{ID: uint64(i)<<16 | uint64(j+1), Sent: 1},
				})
			} else {
				s.Append(rec)
			}
		}
		n.Route(s)
	}
}

func BenchmarkClusterRouteForwardUntraced(b *testing.B) { benchRouteForward(b, false) }
func BenchmarkClusterRouteForwardTraced(b *testing.B)   { benchRouteForward(b, true) }

// TestRouteUntracedZeroExtraAlloc: routing an untraced slab through the
// forward partition must allocate exactly the same with the flight
// recorder armed as with tracing disabled outright — the trace lane's
// cost (clock read, context batches, origin-span commits) is paid only
// by slabs that actually carry contexts.
func TestRouteUntracedZeroExtraAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector shadow allocations")
	}
	measure := func(traceBuffer int) float64 {
		n, p := newBenchNode(t, traceBuffer)
		vs := peerVictims(n)
		topo := p.TopoID()
		return testing.AllocsPerRun(50, func() {
			s := p.GetSlab()
			for j := 0; j < 256; j++ {
				s.Append(wire.Record{Victim: vs[j%len(vs)], MF: uint16(j), Topo: topo})
			}
			n.Route(s)
		})
	}
	armed, disabled := measure(4096), measure(-1)
	if armed != disabled {
		t.Fatalf("untraced Route allocates %.1f/op with the recorder armed, %.1f/op with tracing disabled — the trace lane leaked onto the untraced path", armed, disabled)
	}
}
