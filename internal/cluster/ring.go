// Package cluster scales ddpmd past one instance: a consistent-hash
// ring assigns every victim node an owning instance, a forwarding tier
// re-exports records that arrive at the wrong instance to their owner
// over the acked wire protocol, and anti-entropy gossip replicates the
// blocklist so any instance serves fleet-wide admin queries.
//
// The design keeps the paper's single-writer identification invariant:
// exactly one instance processes a victim's records at a time, so the
// per-victim DDPM tallies, detectors and auto-block thresholds behave
// exactly as they do single-instance — the cluster tier only decides
// *which* instance that is, and hands the accumulated state to the
// ring successor when the owner dies.
package cluster

import (
	"hash/fnv"
	"sort"

	"repro/internal/topology"
)

// MemberID names an instance by its advertised ingest address. All
// instances must use byte-identical address strings for each other —
// the id doubles as the ring hash seed and the forwarding origin, so
// "127.0.0.1:9000" and "localhost:9000" would be two different members.
func MemberID(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is the nil member sentinel
	}
	return id
}

// splitmix64 is the ring's point hash: cheap, stateless, and with full
// avalanche so dense victim NodeIDs spread uniformly around the ring.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member uint64
}

// Ring is an immutable consistent-hash ring over the alive members.
// Lookups walk clockwise from the victim's hash to the first point;
// that point's member owns the victim. Immutability is what lets the
// ingest hot path read the ring through an atomic pointer with no lock.
type Ring struct {
	version uint64
	points  []ringPoint // sorted by hash
	members []uint64    // sorted, distinct
}

// NewRing builds a ring over the given member ids with vnodes virtual
// nodes each. Duplicate ids collapse; the member list is sorted so the
// ring is a pure function of the member *set* — every instance that
// agrees on who is alive agrees on every ownership decision, which is
// the property the whole forwarding tier rests on.
func NewRing(version uint64, members []uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	set := make(map[uint64]struct{}, len(members))
	for _, m := range members {
		if m != 0 {
			set[m] = struct{}{}
		}
	}
	r := &Ring{version: version, members: make([]uint64, 0, len(set))}
	for m := range set {
		r.members = append(r.members, m)
	}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i] < r.members[j] })
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for _, m := range r.members {
		h := m
		for i := 0; i < vnodes; i++ {
			// Chain splitmix64 so each vnode point is an independent
			// draw seeded by the member id.
			h = splitmix64(h)
			r.points = append(r.points, ringPoint{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Version is the local monotonic ring generation (bumped per
// membership change on this instance; not globally agreed).
func (r *Ring) Version() uint64 { return r.version }

// Members returns the alive member set, sorted ascending.
func (r *Ring) Members() []uint64 { return r.members }

// Size reports the alive member count.
func (r *Ring) Size() int { return len(r.members) }

// find returns the index of the first point at or clockwise of h.
func (r *Ring) find(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}

// Owner returns the member owning a victim (0 on an empty ring).
func (r *Ring) Owner(victim topology.NodeID) uint64 {
	if len(r.points) == 0 {
		return 0
	}
	return r.points[r.find(splitmix64(uint64(victim)))].member
}

// Successor returns the first distinct member clockwise after the
// victim's owner — the replica target. The consistent-hashing property
// that makes handoff exact: when the owner leaves the ring, lookups
// that landed on its points continue clockwise to exactly this member,
// so the instance holding the replica is the instance that takes over.
// On a single-member ring the successor is the owner itself.
func (r *Ring) Successor(victim topology.NodeID) uint64 {
	if len(r.points) == 0 {
		return 0
	}
	if len(r.members) == 1 {
		return r.members[0]
	}
	i := r.find(splitmix64(uint64(victim)))
	owner := r.points[i].member
	for k := 1; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if p.member != owner {
			return p.member
		}
	}
	return owner
}
