//go:build race

package cluster

// raceEnabled reports whether this build runs under the race detector,
// whose instrumentation perturbs allocation counts.
const raceEnabled = true
