package cluster

// Fleet-observability unit tests: the per-peer forward-session lag
// surfaced through StatusJSON, and the trace-lane downgrade against a
// forward-only (pre-trace) peer — records must still arrive exactly,
// with the downgrade recorded in the audit journal.

import (
	"bytes"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestStatusForwardSessionLag: /cluster's member entries carry the
// local forward-session lag toward each peer (queued/delivered/lost),
// the age of the last completed gossip exchange (-1 = never), the
// gossiped admin address, and are sorted by member id.
func TestStatusForwardSessionLag(t *testing.T) {
	var now atomic.Int64
	now.Store(int64(time.Second))
	addrs := []string{"10.7.0.1:1", "10.7.0.2:1", "10.7.0.3:1"}
	a, pa := newTestNode(t, addrs[0], []string{addrs[1], addrs[2]}, 701, &now)
	b, _ := newTestNode(t, addrs[1], []string{addrs[0], addrs[2]}, 702, &now)

	// Route a slab: records for peer-owned victims land in the peers'
	// forward queues, counted per peer as queued.
	ring := a.Ring()
	s := pa.GetSlab()
	wantQueued := map[uint64]uint64{}
	for i := 0; i < 256; i++ {
		v := topology.NodeID(i % 64)
		s.Append(wire.Record{Victim: v, MF: uint16(i), Topo: pa.TopoID()})
		if owner := ring.Owner(v); owner != a.self {
			wantQueued[owner]++
		}
	}
	a.Route(s)

	// One completed gossip exchange with b (which has advertised an
	// admin address), none with c; then let 250ms pass.
	b.SetAdminAddr("10.7.0.2:7421")
	exchange(t, a, b)
	now.Add(int64(250 * time.Millisecond))

	body, err := json.Marshal(a.StatusJSON())
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("StatusJSON does not round-trip: %v", err)
	}
	if len(st.Members) != 3 {
		t.Fatalf("%d members, want 3", len(st.Members))
	}
	for i := 1; i < len(st.Members); i++ {
		if st.Members[i-1].ID > st.Members[i].ID {
			t.Fatalf("members not sorted by id: %x before %x", st.Members[i-1].ID, st.Members[i].ID)
		}
	}
	byID := map[uint64]MemberStatus{}
	for _, m := range st.Members {
		byID[m.ID] = m
	}
	mb, mc := byID[MemberID(addrs[1])], byID[MemberID(addrs[2])]
	if mb.LastGossipMs != 250 {
		t.Fatalf("b last_gossip_ms = %d, want 250", mb.LastGossipMs)
	}
	if mb.AdminAddr != "10.7.0.2:7421" {
		t.Fatalf("b admin_addr = %q, want the gossiped one", mb.AdminAddr)
	}
	if mc.LastGossipMs != -1 {
		t.Fatalf("c last_gossip_ms = %d, want -1 (never exchanged)", mc.LastGossipMs)
	}
	if mc.AdminAddr != "" {
		t.Fatalf("c admin_addr = %q, want empty", mc.AdminAddr)
	}
	for _, addr := range addrs[1:] {
		id := MemberID(addr)
		m := byID[id]
		if m.Queued != wantQueued[id] {
			t.Fatalf("peer %s forward_queued = %d, want %d", addr, m.Queued, wantQueued[id])
		}
		// The harness has no network: nothing can have been acked, and
		// nothing was shed at the (empty) queues.
		if m.Delivered != 0 {
			t.Fatalf("peer %s forward_delivered = %d with no network", addr, m.Delivered)
		}
	}

	// FleetMembers mirrors the same roster for the aggregation plane:
	// self first, then peers, with b's gossiped admin address attached.
	fm := a.FleetMembers()
	if len(fm) != 3 || !fm[0].Self || fm[0].ID != a.self {
		t.Fatalf("FleetMembers = %+v, want self first of 3", fm)
	}
	var gotAdmin string
	for _, m := range fm[1:] {
		if m.ID == MemberID(addrs[1]) {
			gotAdmin = m.AdminAddr
		}
	}
	if gotAdmin != "10.7.0.2:7421" {
		t.Fatalf("fleet member admin addr = %q, want the gossiped one", gotAdmin)
	}
}

// TestForwardTraceDowngradeInterop: forwarding traced records to a peer
// that negotiates HelloFlagForward but not HelloFlagTrace (a pre-trace
// build) must deliver every record exactly — as plain forwarded frames,
// contexts shed — and mark the downgrade on the counter and in the
// audit journal.
func TestForwardTraceDowngradeInterop(t *testing.T) {
	// A forward-only peer: echoes the forward flag, never the trace
	// flag, acks whatever plain forwarded frames arrive.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var received, tracedFrames atomic.Uint64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rd := wire.NewReader(conn)
				var accepted uint64
				for {
					ftype, payload, err := rd.ReadFrame()
					if err != nil {
						return
					}
					switch ftype {
					case wire.TypeHello:
						_, _, flags, err := wire.ParseHelloFlags(payload)
						if err != nil {
							return
						}
						conn.Write(wire.AppendAckFlags(nil, accepted, flags&wire.HelloFlagForward))
					case wire.TypeForwarded:
						_, _, recs, err := wire.ParseForwarded(payload, nil)
						if err != nil {
							return
						}
						accepted += uint64(len(recs))
						received.Add(uint64(len(recs)))
						conn.Write(wire.AppendAck(nil, accepted))
					case wire.TypeTracedForwarded:
						tracedFrames.Add(1)
						return
					}
				}
			}(conn)
		}
	}()

	var jbuf bytes.Buffer
	j := pipeline.NewJournal(&jbuf, 64)
	p, err := pipeline.New(pipeline.Config{
		Net: topology.NewTorus2D(8), Shards: 2, QueueLen: 1 << 12,
		BlockThreshold: 1 << 30, BlockTTL: time.Hour,
		Journal: j, TraceBuffer: 256, TraceSampleN: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := ln.Addr().String()
	n, err := New(p, Config{
		Self: "10.8.0.1:1", Peers: []string{peerAddr},
		GossipInterval: time.Hour, FailAfter: time.Hour,
		Logf: t.Logf,
	})
	if err != nil {
		p.Close()
		t.Fatal(err)
	}
	defer func() {
		n.Close()
		p.Close()
	}()

	// Traced records for peer-owned victims only, so everything in the
	// slab crosses the downgraded forward session.
	ring := n.Ring()
	peerID := MemberID(peerAddr)
	s := p.GetSlab()
	sent := 0
	for i := 0; sent < 40 && i < 256; i++ {
		v := topology.NodeID(i % 64)
		if ring.Owner(v) != peerID {
			continue
		}
		s.AppendTraced(wire.TracedRecord{
			Record: wire.Record{Victim: v, MF: uint16(i), Topo: p.TopoID()},
			Ctx:    wire.TraceContext{ID: uint64(i + 1), Sent: int64(1000 + i)},
		})
		sent++
	}
	if sent == 0 {
		t.Fatal("peer owns nothing")
	}
	if got := n.Route(s); got != sent {
		t.Fatalf("Route accepted %d of %d", got, sent)
	}

	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < uint64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("peer received %d of %d records", received.Load(), sent)
		}
		time.Sleep(time.Millisecond)
	}
	if got := tracedFrames.Load(); got != 0 {
		t.Fatalf("%d traced frames reached a peer that refused the trace lane", got)
	}
	if got := n.traceDowngrades.Load(); got != 1 {
		t.Fatalf("traceDowngrades = %d, want 1 (once per established connection)", got)
	}

	// The journal carries the downgrade, attributed to the peer.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, line := range bytes.Split(jbuf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev pipeline.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		if ev.Type == pipeline.EventTraceDowngrade {
			found = true
			if ev.Detail != peerAddr || ev.Stream != peerID {
				t.Fatalf("downgrade event misattributed: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no trace_downgraded event in the journal")
	}
}
