package cluster

// Forwarding sketch gate: the cluster-tier reuse of the pipeline's
// admission machinery (internal/sketch) for records this instance does
// NOT own. Without it, a scan sweeping millions of destination ids
// against a non-owner turns 1:1 into forwarded frames — the forwarding
// tier amplifies exactly the traffic pattern the daemon exists to
// suppress. With the gate armed, an unowned destination must earn its
// forward the same way an owned one earns exact state: a count-min
// estimate feeds a space-saving table, and only a guaranteed count at
// the admission threshold opens the path to the owner.
//
// Exactness: while a destination is below threshold its records are
// buffered in the space-saving slot (bufCap == the admission
// threshold), and on admission the buffered prefix is replayed into
// the forward queue ahead of the crossing record. The owner therefore
// tallies every record of an admitted victim bit-for-bit — suppression
// only ever drops records of destinations that never got hot, which is
// the same contract the pipeline's own gate provides locally.
//
// Unlike the pipeline's per-shard single-writer instances, Route is
// called from many daemon connection goroutines, so the gate is one
// mutex-guarded instance. That is acceptable because the gate only
// sees unowned records (a 1/N slice of traffic) and the critical
// section is a handful of hash probes.

import (
	"sync"

	"repro/internal/sketch"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Gate sizing mirrors the pipeline's admission defaults.
const (
	fwSketchWidth = 1 << 15
	fwSketchDepth = 4
	fwHeavySlots  = 512
	fwDecayEvery  = 1 << 20
)

// fwGate decides, per unowned record, whether it is forwarded to its
// owner or suppressed (tallied sketch-only). All state is guarded by
// mu; see the package comment for why this is not per-shard.
type fwGate struct {
	mu    sync.Mutex
	admit int

	ringVer uint64 // ring generation the sketches were built under
	cm      *sketch.CountMin
	hh      *sketch.SpaceSaving[wire.Record]

	// admitted maps victims that earned a forward to the decay
	// generation of their most recent record, so entries idle for two
	// full decay windows age out instead of pinning the map forever.
	admitted map[topology.NodeID]uint64
	gen      uint64 // decay generation, bumped at each Halve
	since    int    // records since the last decay
}

func newFwGate(admit int) *fwGate {
	g := &fwGate{admit: admit}
	g.resetLocked(0)
	return g
}

// resetLocked rebuilds the sketches for a new ring generation. A ring
// change re-partitions ownership, so counts earned against the old
// partition say nothing about the new one; restarting clean costs at
// most one re-earn per hot victim.
func (g *fwGate) resetLocked(ringVer uint64) {
	g.ringVer = ringVer
	g.cm = sketch.NewCountMin(fwSketchWidth, fwSketchDepth)
	g.hh = sketch.NewSpaceSaving[wire.Record](fwHeavySlots, g.admit)
	g.admitted = make(map[topology.NodeID]uint64)
	g.gen = 0
	g.since = 0
}

// filter runs one unowned record through the gate. pass reports
// whether the record should be forwarded; replay holds the earlier
// buffered records of a victim admitted by this very record (forward
// them to the owner ahead of rec — rec itself is never in replay);
// admitted reports that this very record crossed the threshold, so the
// caller can emit the admission event exactly once per earn.
func (g *fwGate) filter(ringVer uint64, rec wire.Record) (pass bool, replay []wire.Record, admitted bool) {
	v := rec.Victim
	g.mu.Lock()
	defer g.mu.Unlock()
	if ringVer != g.ringVer {
		g.resetLocked(ringVer)
	}
	if _, ok := g.admitted[v]; ok {
		g.admitted[v] = g.gen
		return true, nil, false
	}
	key := uint64(rec.Victim)
	est := g.cm.Add(key)
	if g.since++; g.since >= fwDecayEvery {
		g.since = 0
		g.cm.Halve()
		g.hh.Halve()
		g.gen++
		for av, agen := range g.admitted {
			if g.gen-agen >= 2 {
				delete(g.admitted, av)
			}
		}
	}
	slot := g.hh.Touch(key, est, rec)
	if slot == nil || int(slot.Guaranteed()) < g.admit {
		return false, nil, false
	}
	// Admission: replay the buffered prefix (everything before the
	// crossing record — the buffer's last element is rec unless the
	// buffer filled first). Copy it out: Remove recycles the slot's
	// backing array for future slots.
	buf := slot.Buf
	if n := len(buf); n > 0 && buf[n-1] == rec {
		buf = buf[:n-1]
	}
	if len(buf) > 0 {
		replay = append(make([]wire.Record, 0, len(buf)), buf...)
	}
	g.hh.Remove(key)
	g.admitted[v] = g.gen
	return true, replay, true
}

// admittedCount reports how many victims currently hold a forwarding
// pass (status/metrics).
func (g *fwGate) admittedCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.admitted)
}
