package traceback

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestFragmentReconstructorSinglePath(t *testing.T) {
	m := topology.NewMesh2D(4)
	scheme, err := marking.NewFragmentPPM(0.25, rng.NewStream(51))
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{2, 3})
	rec := NewFragmentReconstructor(scheme, m.NumNodes())
	for i := 0; i < 20000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
		srcs := rec.Sources()
		if len(srcs) == 1 && srcs[0] == attacker {
			// Verify the full chain matches the XY path.
			path, _ := r.Walk(attacker, victim, 0)
			levels := rec.Levels()
			if len(levels) != len(path)-1 {
				t.Fatalf("levels = %d, path switches = %d", len(levels), len(path)-1)
			}
			for d, lvl := range levels {
				wantNode := path[len(path)-2-d]
				if len(lvl) != 1 || lvl[0] != wantNode {
					t.Fatalf("level %d = %v, want [%d]", d, lvl, wantNode)
				}
			}
			return
		}
	}
	t.Fatalf("fragment reconstruction never converged: levels %v", rec.Levels())
}

func TestFragmentReconstructorNeedsAllOffsets(t *testing.T) {
	scheme, _ := marking.NewFragmentPPM(1.0, rng.NewStream(52))
	rec := NewFragmentReconstructor(scheme, 64)
	// A single sample covers one offset out of 8: no assembly possible.
	pk := &packet.Packet{}
	scheme.OnForward(5, 6, pk)
	rec.Observe(pk)
	if srcs := rec.Sources(); len(srcs) != 0 {
		t.Errorf("assembled from one fragment: %v", srcs)
	}
	if rec.Observed() != 1 {
		t.Errorf("Observed = %d", rec.Observed())
	}
}

func TestFragmentReconstructorCandidateCap(t *testing.T) {
	scheme, _ := marking.NewFragmentPPM(1.0, rng.NewStream(53))
	rec := NewFragmentReconstructor(scheme, 1<<20)
	rec.MaxCandidatesPerLevel = 8
	// Seed 3 values at every offset of distance 0: 3^8 combinations
	// exceed the cap.
	for o := 0; o < marking.FragmentCount; o++ {
		for v := uint8(0); v < 3; v++ {
			pk := &packet.Packet{}
			pk.Hdr.ID = uint16(o)<<13 | 0<<8 | uint16(v)
			rec.Observe(pk)
		}
	}
	rec.Levels()
	if !rec.Truncated() {
		t.Error("candidate explosion not reported")
	}
}

func TestSignatureTableLearnMatch(t *testing.T) {
	tbl := NewSignatureTable()
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	atk := packet.NewPacket(plan, 0, 5, packet.ProtoTCPSYN, 0)
	atk.Hdr.ID = 0b0011
	tbl.Learn(atk)
	probe := packet.NewPacket(plan, 3, 5, packet.ProtoTCPSYN, 0)
	probe.Hdr.ID = 0b0011
	if !tbl.Match(probe) {
		t.Error("matching signature not blocked")
	}
	probe.Hdr.ID = 0b0111
	if tbl.Match(probe) {
		t.Error("non-matching signature blocked")
	}
	if tbl.NumSignatures() != 1 {
		t.Errorf("NumSignatures = %d", tbl.NumSignatures())
	}
	if got := tbl.Signatures(); len(got) != 1 || got[0] != 0b0011 {
		t.Errorf("Signatures = %v", got)
	}
}

func TestSignatureStabilityDeterministicVsAdaptive(t *testing.T) {
	// The E2 effect: one flow yields one signature under XY but many
	// under adaptive routing.
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	dpm := marking.NewDPM()
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{7, 7})

	countSigs := func(r *routing.Router) int {
		tbl := NewSignatureTable()
		for i := 0; i < 200; i++ {
			tbl.Learn(send(t, r, dpm, plan, attacker, victim, 0))
		}
		return tbl.SignaturesForFlow(plan.AddrOf(attacker))
	}

	det := routing.NewRouter(m, routing.NewXY(m))
	if got := countSigs(det); got != 1 {
		t.Errorf("deterministic flow has %d signatures, want 1", got)
	}

	ad := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	ad.Sel = routing.RandomSelector{R: rng.NewStream(54)}
	if got := countSigs(ad); got < 5 {
		t.Errorf("adaptive flow has only %d signatures; expected shattering", got)
	}
}

func TestSignatureAmbiguityAcrossSources(t *testing.T) {
	// Multiple distinct sources can share a signature (the paper's
	// false-positive ambiguity): find at least one collision among all
	// sources sending to one victim on an 8×8 mesh under XY.
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	dpm := marking.NewDPM()
	victim := m.IndexOf(topology.Coord{7, 7})
	r := routing.NewRouter(m, routing.NewXY(m))
	bySig := map[uint16][]topology.NodeID{}
	for src := 0; src < m.NumNodes(); src++ {
		if topology.NodeID(src) == victim {
			continue
		}
		pk := send(t, r, dpm, plan, topology.NodeID(src), victim, 0)
		sig := dpm.Signature(pk.Hdr.ID)
		bySig[sig] = append(bySig[sig], topology.NodeID(src))
	}
	collision := false
	for _, srcs := range bySig {
		if len(srcs) > 1 {
			collision = true
			break
		}
	}
	if !collision {
		t.Error("no signature collisions among 63 sources — DPM ambiguity should appear")
	}
}
