package traceback

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// send routes one packet from src to dst applying the scheme per hop,
// returning it as the victim receives it.
func send(t *testing.T, r *routing.Router, scheme marking.Scheme, plan *packet.AddrPlan,
	src, dst topology.NodeID, preload uint16) *packet.Packet {
	t.Helper()
	path, err := r.Walk(src, dst, 0)
	if err != nil {
		t.Fatalf("walk %d->%d: %v", src, dst, err)
	}
	pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 40)
	pk.Hdr.ID = preload
	scheme.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		scheme.OnForward(path[i], path[i+1], pk)
		pk.Hdr.TTL--
	}
	return pk
}

func TestDDPMIdentifierEndToEnd(t *testing.T) {
	m := topology.NewMesh2D(8)
	d, err := marking.NewDDPM(m)
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	r.Sel = routing.RandomSelector{R: rng.NewStream(21)}
	victim := m.IndexOf(topology.Coord{7, 7})
	ident := NewDDPMIdentifier(d, victim)

	attacker := m.IndexOf(topology.Coord{0, 3})
	normal := m.IndexOf(topology.Coord{4, 4})
	for i := 0; i < 50; i++ {
		pk := send(t, r, d, plan, attacker, victim, 0xFFFF)
		pk.Spoof(plan.AddrOf(normal)) // frame an innocent node
		if got, ok := ident.Observe(pk); !ok || got != attacker {
			t.Fatalf("identified %d, want %d", got, attacker)
		}
	}
	for i := 0; i < 5; i++ {
		pk := send(t, r, d, plan, normal, victim, 0)
		if got, ok := ident.Observe(pk); !ok || got != normal {
			t.Fatalf("identified %d, want %d", got, normal)
		}
	}
	if ident.Observed() != 55 || ident.Undecodable() != 0 {
		t.Errorf("observed %d / undecodable %d", ident.Observed(), ident.Undecodable())
	}
	if ident.Count(attacker) != 50 {
		t.Errorf("attacker count = %d", ident.Count(attacker))
	}
	top := ident.TopSources(1)
	if len(top) != 1 || top[0] != attacker {
		t.Errorf("TopSources = %v", top)
	}
	above := ident.SourcesAbove(10)
	if len(above) != 1 || above[0] != attacker {
		t.Errorf("SourcesAbove(10) = %v, want just the attacker", above)
	}
}

func TestDDPMIdentifierUndecodable(t *testing.T) {
	m := topology.NewMesh2D(4)
	d, _ := marking.NewDDPM(m)
	ident := NewDDPMIdentifier(d, m.IndexOf(topology.Coord{0, 0}))
	pk := &packet.Packet{}
	codec := d.Codec().(*marking.SignedFieldCodec)
	pk.Hdr.ID, _ = codec.Encode(topology.Vector{100, 100})
	if _, ok := ident.Observe(pk); ok {
		t.Error("garbage MF identified")
	}
	if ident.Undecodable() != 1 {
		t.Errorf("Undecodable = %d", ident.Undecodable())
	}
}

func TestPPMReconstructorConvergesOnDeterministicPath(t *testing.T) {
	// E1 setup in miniature: a single attacker on XY routing; the victim
	// needs many packets (p=0.2, d=6) but eventually reconstructs the
	// exact source.
	m := topology.NewMesh2D(4)
	scheme, err := marking.NewSimplePPM(m, 0.2, rng.NewStream(31))
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{3, 3})
	rec := ForSimplePPM(scheme)
	converged := -1
	for i := 0; i < 5000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
		srcs := rec.Sources()
		if len(srcs) == 1 && srcs[0] == attacker {
			converged = i + 1
			break
		}
	}
	if converged < 0 {
		t.Fatalf("never converged; sources = %v, counts %v", rec.Sources(), rec.SampleCounts())
	}
	if converged < 6 {
		t.Errorf("converged after %d packets: cannot beat one sample per edge", converged)
	}
}

func TestPPMReconstructorTwoAttackers(t *testing.T) {
	// Figure 3(a): victim (2,3) attacked from (0,1) and (1,1) under
	// deterministic routing; both paths reconstruct. The marking rate
	// is high and the victim uses its topology map plus a count
	// threshold, so leftover-Identification garbage is filtered — the
	// Savage robustness playbook.
	m := topology.NewMesh2D(4)
	scheme, _ := marking.NewSimplePPM(m, 0.5, rng.NewStream(33))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	victim := m.IndexOf(topology.Coord{2, 3})
	a1 := m.IndexOf(topology.Coord{0, 1})
	a2 := m.IndexOf(topology.Coord{1, 1})
	rec := ForSimplePPM(scheme)
	rec.MinCount = 8
	rec.Adjacency = m.IsNeighbor
	preload := rng.NewStream(34)
	for i := 0; i < 4000; i++ {
		rec.Observe(send(t, r, scheme, plan, a1, victim, uint16(preload.Intn(1<<16))))
		rec.Observe(send(t, r, scheme, plan, a2, victim, uint16(preload.Intn(1<<16))))
	}
	srcs := rec.Sources()
	found := map[topology.NodeID]bool{}
	for _, s := range srcs {
		found[s] = true
	}
	if !found[a1] || !found[a2] {
		t.Fatalf("sources = %v, want both %d and %d", srcs, a1, a2)
	}
	if len(srcs) > 3 {
		t.Errorf("excessive candidate sources under deterministic routing: %v", srcs)
	}
}

func TestPPMReconstructorMinCountFiltersSeededMarks(t *testing.T) {
	// An attacker preloads a fake edge sample claiming a distant
	// innocent source; with MinCount > 1 the one-off forgery is ignored.
	m := topology.NewMesh2D(4)
	scheme, _ := marking.NewSimplePPM(m, 0.3, rng.NewStream(35))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	victim := m.IndexOf(topology.Coord{3, 3})
	attacker := m.IndexOf(topology.Coord{3, 0}) // 3 hops: decent mark coverage

	// Forge: distance-0 sample naming an innocent neighbor of victim.
	l, _ := marking.NewLabeler(m)
	innocent := m.IndexOf(topology.Coord{2, 3})
	forged := l.Label(innocent)<<(4+3) | 0<<3 | 0

	rec := ForSimplePPM(scheme)
	rec.MinCount = 3
	// One forged packet that happens to cross unmarked.
	passer, _ := marking.NewSimplePPM(m, 1e-12, rng.NewStream(36))
	rec.Observe(send(t, r, passer, plan, attacker, victim, forged))
	for i := 0; i < 3000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
	}
	for _, s := range rec.Sources() {
		if s == innocent {
			t.Fatal("forged sample survived MinCount filtering")
		}
	}
}

func TestPPMReconstructorAdaptiveRoutingBloatsGraph(t *testing.T) {
	// The paper's §4.2 point: adaptive routing spreads one flow across
	// many paths. The reconstructed "attack path" degenerates from a
	// single chain into a blob covering a large chunk of the minimal
	// quadrant, destroying path identification.
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	victim := m.IndexOf(topology.Coord{7, 7})
	attacker := m.IndexOf(topology.Coord{0, 0})

	reconstruct := func(r *routing.Router, seed uint64) int {
		scheme, _ := marking.NewSimplePPM(m, 0.2, rng.NewStream(seed))
		rec := ForSimplePPM(scheme)
		rec.MinCount = 4
		rec.Adjacency = m.IsNeighbor
		preload := rng.NewStream(seed + 1)
		for i := 0; i < 6000; i++ {
			rec.Observe(send(t, r, scheme, plan, attacker, victim, uint16(preload.Intn(1<<16))))
		}
		return len(rec.OnPathNodes())
	}

	det := routing.NewRouter(m, routing.NewXY(m))
	detNodes := reconstruct(det, 37)

	ad := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	ad.Sel = routing.RandomSelector{R: rng.NewStream(38)}
	adNodes := reconstruct(ad, 39)

	// XY gives exactly the 14 on-path switches; adaptive routing should
	// sprawl over far more of the 8×8 quadrant.
	if detNodes > 16 {
		t.Errorf("deterministic reconstruction has %d nodes, want ≈14", detNodes)
	}
	if adNodes < 2*detNodes {
		t.Errorf("adaptive reconstruction %d nodes vs deterministic %d: expected ≥2× sprawl",
			adNodes, detNodes)
	}
}

func TestPPMReconstructorWideVariant(t *testing.T) {
	m := topology.NewMesh2D(8)
	w, _ := marking.NewWidePPM(0.2, rng.NewStream(39))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	victim := m.IndexOf(topology.Coord{7, 7})
	attacker := m.IndexOf(topology.Coord{0, 0})
	rec := ForWidePPM(w)
	for i := 0; i < 4000; i++ {
		rec.Observe(send(t, r, w, plan, attacker, victim, 0))
		if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == attacker {
			return
		}
	}
	t.Fatalf("wide PPM never converged: %v", rec.Sources())
}

func TestPPMReconstructorBitDiffVariant(t *testing.T) {
	m := topology.NewMesh2D(8)
	b, err := marking.NewBitDiffPPM(m, 0.2, rng.NewStream(40))
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	victim := m.IndexOf(topology.Coord{6, 6})
	attacker := m.IndexOf(topology.Coord{1, 0})
	rec := ForBitDiffPPM(b)
	rec.MinCount = 4
	preload := rng.NewStream(42)
	for i := 0; i < 6000; i++ {
		rec.Observe(send(t, r, b, plan, attacker, victim, uint16(preload.Intn(1<<16))))
		if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == attacker {
			return
		}
	}
	t.Fatalf("bitdiff PPM never converged: %v", rec.Sources())
}

func TestPPMOnPathNodesCoverPath(t *testing.T) {
	m := topology.NewMesh2D(4)
	scheme, _ := marking.NewSimplePPM(m, 0.3, rng.NewStream(41))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	victim := m.IndexOf(topology.Coord{3, 3})
	attacker := m.IndexOf(topology.Coord{0, 0})
	rec := ForSimplePPM(scheme)
	for i := 0; i < 4000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
	}
	path, _ := r.Walk(attacker, victim, 0)
	on := map[topology.NodeID]bool{}
	for _, n := range rec.OnPathNodes() {
		on[n] = true
	}
	// Every switch on the path except the victim itself must appear.
	for _, n := range path[:len(path)-1] {
		if !on[n] {
			t.Errorf("path node %d missing from reconstruction", n)
		}
	}
}
