package traceback

import (
	"sort"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
)

// AMSReconstructor is the victim side of the Song–Perrig advanced
// marking scheme: it holds the complete network map (trivially
// available inside a cluster) and rebuilds the attack path level by
// level — level-d candidates are the map-neighbors of level-(d−1)
// candidates whose identity hash matches a distance-d sample. Hash
// collisions surface as extra candidates per level, not as wrong
// chains, and adjacency pruning keeps them rare.
type AMSReconstructor struct {
	scheme *marking.AMS
	net    topology.Network
	victim topology.NodeID

	// MinCount suppresses attacker-seeded fragments.
	MinCount int

	observed int64
	frags    map[int]map[uint16]int // dist -> fragment -> count
}

// NewAMSReconstructor builds the victim-side decoder.
func NewAMSReconstructor(scheme *marking.AMS, net topology.Network, victim topology.NodeID) *AMSReconstructor {
	return &AMSReconstructor{
		scheme:   scheme,
		net:      net,
		victim:   victim,
		MinCount: 1,
		frags:    make(map[int]map[uint16]int),
	}
}

// Observe folds one received packet in.
func (a *AMSReconstructor) Observe(pk *packet.Packet) {
	a.observed++
	s := a.scheme.DecodeMF(pk.Hdr.ID)
	m := a.frags[s.Dist]
	if m == nil {
		m = make(map[uint16]int)
		a.frags[s.Dist] = m
	}
	m[s.Frag]++
}

// Observed returns the number of packets seen.
func (a *AMSReconstructor) Observed() int64 { return a.observed }

// Levels reconstructs candidate switches per distance from the victim;
// reconstruction stops at the first level with no match.
func (a *AMSReconstructor) Levels() [][]topology.NodeID {
	var levels [][]topology.NodeID
	prev := []topology.NodeID{a.victim}
	maxDist := -1
	for d := range a.frags {
		if d > maxDist {
			maxDist = d
		}
	}
	for d := 0; d <= maxDist; d++ {
		vals := a.frags[d]
		if vals == nil {
			break
		}
		trusted := map[uint16]bool{}
		for f, c := range vals {
			if c >= a.MinCount {
				trusted[f] = true
			}
		}
		seen := map[topology.NodeID]bool{}
		var found []topology.NodeID
		for _, b := range prev {
			for _, nb := range a.net.Neighbors(b) {
				if seen[nb] {
					continue
				}
				if trusted[a.scheme.Hash(nb)] {
					seen[nb] = true
					found = append(found, nb)
				}
			}
		}
		if len(found) == 0 {
			break
		}
		sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
		levels = append(levels, found)
		prev = found
	}
	return levels
}

// Sources returns the deepest reconstructed level.
func (a *AMSReconstructor) Sources() []topology.NodeID {
	levels := a.Levels()
	if len(levels) == 0 {
		return nil
	}
	return levels[len(levels)-1]
}
