package traceback

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/stats"
)

// SignatureTable is the DPM victim logic (§4.3): once traffic is
// flagged as an attack, its MF values become blocking signatures
// ("we can block all traffic having 0011 or 1100 in the MF"). The table
// also tracks how many distinct signatures each flow generates — under
// deterministic routing a flow has one signature; under adaptive
// routing it shatters, which is experiment E2's headline measurement.
type SignatureTable struct {
	sigs map[uint16]int64

	// perFlow counts distinct signatures keyed by the (spoofable)
	// header source — diagnostic only.
	perFlow map[packet.Addr]*stats.Counter[uint16]
}

// NewSignatureTable returns an empty table.
func NewSignatureTable() *SignatureTable {
	return &SignatureTable{
		sigs:    make(map[uint16]int64),
		perFlow: make(map[packet.Addr]*stats.Counter[uint16]),
	}
}

// Learn records a packet known (by external detection) to be attack
// traffic; its MF becomes a blocking signature.
func (t *SignatureTable) Learn(pk *packet.Packet) {
	t.sigs[pk.Hdr.ID]++
	c := t.perFlow[pk.Hdr.Src]
	if c == nil {
		c = stats.NewCounter[uint16]()
		t.perFlow[pk.Hdr.Src] = c
	}
	c.Add(pk.Hdr.ID)
}

// Match reports whether the packet's MF equals a learned signature —
// the filtering predicate.
func (t *SignatureTable) Match(pk *packet.Packet) bool {
	_, ok := t.sigs[pk.Hdr.ID]
	return ok
}

// NumSignatures returns the number of distinct signatures learned.
func (t *SignatureTable) NumSignatures() int { return len(t.sigs) }

// SignaturesForFlow returns the number of distinct signatures a header
// source has generated (1 under stable routing; many under adaptive).
func (t *SignatureTable) SignaturesForFlow(src packet.Addr) int {
	c := t.perFlow[src]
	if c == nil {
		return 0
	}
	return c.Distinct()
}

// Signatures returns the learned signatures in ascending order.
func (t *SignatureTable) Signatures() []uint16 {
	out := make([]uint16, 0, len(t.sigs))
	for s := range t.sigs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
