package traceback

import (
	"sort"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
)

// edge is an upstream link in the reconstructed attack graph: traffic
// flowed Start → End.
type edge struct {
	Start, End topology.NodeID
}

// PPMReconstructor accumulates probabilistic edge samples and rebuilds
// the attack graph the Savage way: distance-0 samples anchor the chain
// at the victim's upstream switches, and each distance-d edge extends a
// chain whose distance-(d−1) suffix is already present. Convergence
// requires every edge of every attack path to be sampled at least once
// — the ln(d)/p(1−p)^{d−1} expected-packet cost the paper holds against
// PPM in clusters (§4.2). Under adaptive routing the sample set mixes
// edges from many interleaved paths and the "sources" set degrades into
// a large candidate cloud, which experiment E2/E1 quantifies.
type PPMReconstructor struct {
	// Decode extracts the edge sample from a received packet; wire it
	// to SimplePPM.DecodeMF, BitDiffPPM.DecodeMF or WidePPM.Sample.
	decode func(pk *packet.Packet) (marking.EdgeSample, bool)

	// MinCount is the number of times a sample must be seen before it
	// is trusted; values > 1 suppress attacker-seeded fake marks.
	MinCount int

	// Adjacency, when set, rejects samples whose claimed edge does not
	// exist in the fabric. Cluster victims know the topology (the
	// Song–Perrig "complete router map" assumption is trivially true
	// inside a cluster), so this filter removes most garbage marks.
	Adjacency func(a, b topology.NodeID) bool

	observed int64
	dist0    map[topology.NodeID]int // starts of distance-0 samples
	edges    map[int]map[edge]int    // dist → edge → count
	maxDist  int
}

// NewPPMReconstructor builds a reconstructor over any edge-sampling
// decode function.
func NewPPMReconstructor(decode func(pk *packet.Packet) (marking.EdgeSample, bool)) *PPMReconstructor {
	return &PPMReconstructor{
		decode:   decode,
		MinCount: 1,
		dist0:    make(map[topology.NodeID]int),
		edges:    make(map[int]map[edge]int),
	}
}

// ForSimplePPM adapts a SimplePPM scheme.
func ForSimplePPM(s *marking.SimplePPM) *PPMReconstructor {
	return NewPPMReconstructor(func(pk *packet.Packet) (marking.EdgeSample, bool) {
		return s.DecodeMF(pk.Hdr.ID)
	})
}

// ForBitDiffPPM adapts a BitDiffPPM scheme.
func ForBitDiffPPM(b *marking.BitDiffPPM) *PPMReconstructor {
	return NewPPMReconstructor(func(pk *packet.Packet) (marking.EdgeSample, bool) {
		return b.DecodeMF(pk.Hdr.ID)
	})
}

// ForWidePPM adapts the idealized side-band sampler; unmarked packets
// yield no sample.
func ForWidePPM(w *marking.WidePPM) *PPMReconstructor {
	return NewPPMReconstructor(func(pk *packet.Packet) (marking.EdgeSample, bool) {
		es := w.Sample(pk)
		if es == nil {
			return marking.EdgeSample{}, false
		}
		return *es, true
	})
}

// Observe folds one received packet into the sample set.
func (p *PPMReconstructor) Observe(pk *packet.Packet) {
	p.observed++
	es, ok := p.decode(pk)
	if !ok {
		return
	}
	if es.Dist == 0 {
		p.dist0[es.Start]++
		return
	}
	if !es.EndValid || es.Start == es.End {
		// Self-edges can only come from unmarked packets whose MF is
		// leftover garbage (the initial Identification field) — a real
		// switch never records itself as its own downstream. Reject.
		return
	}
	if p.Adjacency != nil && !p.Adjacency(es.Start, es.End) {
		return
	}
	m := p.edges[es.Dist]
	if m == nil {
		m = make(map[edge]int)
		p.edges[es.Dist] = m
	}
	m[edge{Start: es.Start, End: es.End}]++
	if es.Dist > p.maxDist {
		p.maxDist = es.Dist
	}
}

// Observed returns the number of packets seen (marked or not).
func (p *PPMReconstructor) Observed() int64 { return p.observed }

// Graph reconstructs the verified attack graph: the set of nodes
// reachable from the victim by chaining trusted samples backwards, as
// parent links child → upstream set.
func (p *PPMReconstructor) graph() (levels []map[topology.NodeID]bool, ends map[topology.NodeID]bool) {
	level := make(map[topology.NodeID]bool)
	for n, c := range p.dist0 {
		if c >= p.MinCount {
			level[n] = true
		}
	}
	// ends marks nodes with upstream evidence: they appear as the End
	// of a trusted on-chain edge, i.e. some switch farther away
	// forwarded through them. A source candidate is a chain node that
	// never appears as an End.
	ends = make(map[topology.NodeID]bool)
	levels = append(levels, level)
	for d := 1; d <= p.maxDist; d++ {
		next := make(map[topology.NodeID]bool)
		prev := levels[d-1]
		for e, c := range p.edges[d] {
			if c < p.MinCount {
				continue
			}
			if prev[e.End] {
				next[e.Start] = true
				ends[e.End] = true
			}
		}
		levels = append(levels, next)
	}
	return levels, ends
}

// Sources returns the reconstructed attack sources: nodes that appear
// on a verified chain as a Start at some level but never as a
// downstream End. On a fully sampled deterministic path this is exactly
// the origin; with incomplete sampling it over-approximates (the chain
// is cut where samples are missing), and under adaptive routing it
// inflates — both measured effects.
func (p *PPMReconstructor) Sources() []topology.NodeID {
	levels, ends := p.graph()
	set := make(map[topology.NodeID]bool)
	for _, level := range levels {
		for n := range level {
			if !ends[n] {
				set[n] = true
			}
		}
	}
	out := make([]topology.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnPathNodes returns every node on a verified chain, for path-length
// and coverage reporting.
func (p *PPMReconstructor) OnPathNodes() []topology.NodeID {
	levels, _ := p.graph()
	set := make(map[topology.NodeID]bool)
	for _, level := range levels {
		for n := range level {
			set[n] = true
		}
	}
	out := make([]topology.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleCounts reports how many distinct trusted samples exist at each
// distance (diagnostic for convergence studies).
func (p *PPMReconstructor) SampleCounts() map[int]int {
	out := map[int]int{}
	n0 := 0
	for _, c := range p.dist0 {
		if c >= p.MinCount {
			n0++
		}
	}
	if n0 > 0 {
		out[0] = n0
	}
	for d, m := range p.edges {
		n := 0
		for _, c := range m {
			if c >= p.MinCount {
				n++
			}
		}
		if n > 0 {
			out[d] = n
		}
	}
	return out
}
