package traceback

import (
	"sync"
	"testing"

	"repro/internal/marking"
	"repro/internal/topology"
)

func TestSyncDDPMIdentifierMatchesSerialAnswer(t *testing.T) {
	m := topology.NewTorus2D(8)
	victim := m.IndexOf(topology.Coord{0, 0})

	// Build the MFs of packets from three sources by encoding the true
	// displacement vector D − S (what an intact DDPM walk accumulates).
	mkMF := func(scheme *marking.DDPM, src topology.NodeID) uint16 {
		sc, dc := m.CoordOf(src), m.CoordOf(victim)
		v := make(topology.Vector, len(sc))
		for i := range v {
			v[i] = dc[i] - sc[i]
		}
		mf, err := scheme.Codec().Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		return mf
	}

	build := func() *marking.DDPM {
		d, err := marking.NewDDPM(m)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	sources := []topology.NodeID{5, 17, 42}
	ref := NewDDPMIdentifier(build(), victim)
	mfs := make([]uint16, 0, 300)
	for i := 0; i < 300; i++ {
		mf := mkMF(ref.scheme, sources[i%len(sources)])
		mfs = append(mfs, mf)
		ref.ObserveMF(mf)
	}

	// Feed the same MFs from 4 goroutines while another hammers reads.
	s := NewSyncDDPMIdentifier(build(), victim)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(mfs); i += 4 {
				if _, ok := s.ObserveMF(mfs[i]); !ok {
					t.Errorf("mf %04x undecodable", mfs[i])
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.TopSources(3)
				s.Observed()
				s.SourcesAbove(10)
			}
		}
	}()
	wg.Wait()
	close(stop)

	if s.Observed() != ref.Observed() || s.Undecodable() != ref.Undecodable() {
		t.Fatalf("concurrent tally %d/%d differs from serial %d/%d",
			s.Observed(), s.Undecodable(), ref.Observed(), ref.Undecodable())
	}
	for _, src := range sources {
		if s.Count(src) != ref.Count(src) {
			t.Errorf("source %d: concurrent count %d, serial %d", src, s.Count(src), ref.Count(src))
		}
	}
}
