package traceback

import (
	"sort"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
)

// FragmentReconstructor rebuilds attack paths from Savage-style hashed
// fragments (marking.FragmentPPM). Identity blocks are recovered level
// by level: distance-0 samples carry raw fragments of the victim's
// upstream switch; at distance d the fragments are XORs frag(A)⊕frag(B)
// with B already known from level d−1, so the victim XORs B's fragment
// back out, assembles candidate 64-bit blocks from one fragment per
// offset, and keeps those whose embedded hash verifies — the
// combinatorial step whose expected packet cost is k·ln(kd)/p(1−p)^{d−1}
// (§2).
type FragmentReconstructor struct {
	scheme   *marking.FragmentPPM
	numNodes int

	observed int64
	// frags[d][offset] = set of fragment values seen.
	frags map[int]map[int]map[uint8]int

	// MinCount suppresses attacker-seeded fragments.
	MinCount int

	// MaxCandidatesPerLevel caps the combinatorial assembly; beyond it
	// the level is abandoned (reported via Truncated).
	MaxCandidatesPerLevel int
	truncated             bool
}

// NewFragmentReconstructor builds the victim-side decoder. numNodes
// bounds valid node indexes for hash verification.
func NewFragmentReconstructor(scheme *marking.FragmentPPM, numNodes int) *FragmentReconstructor {
	return &FragmentReconstructor{
		scheme:                scheme,
		numNodes:              numNodes,
		frags:                 make(map[int]map[int]map[uint8]int),
		MinCount:              1,
		MaxCandidatesPerLevel: 4096,
	}
}

// Observe folds one received packet's fragment sample in.
func (f *FragmentReconstructor) Observe(pk *packet.Packet) {
	f.observed++
	s := f.scheme.DecodeMF(pk.Hdr.ID)
	byOff := f.frags[s.Dist]
	if byOff == nil {
		byOff = make(map[int]map[uint8]int)
		f.frags[s.Dist] = byOff
	}
	vals := byOff[s.Offset]
	if vals == nil {
		vals = make(map[uint8]int)
		byOff[s.Offset] = vals
	}
	vals[s.Frag]++
}

// Observed returns the number of packets seen.
func (f *FragmentReconstructor) Observed() int64 { return f.observed }

// Truncated reports whether any level hit the candidate cap.
func (f *FragmentReconstructor) Truncated() bool { return f.truncated }

// assemble enumerates verified blocks from per-offset candidate
// fragment sets.
func (f *FragmentReconstructor) assemble(perOffset [marking.FragmentCount][]uint8) []topology.NodeID {
	for _, vals := range perOffset {
		if len(vals) == 0 {
			return nil // an offset was never sampled: cannot assemble
		}
	}
	blocks := []uint64{0}
	for o := 0; o < marking.FragmentCount; o++ {
		var next []uint64
		for _, b := range blocks {
			for _, v := range perOffset[o] {
				next = append(next, b|uint64(v)<<(8*o))
				if len(next) > f.MaxCandidatesPerLevel {
					f.truncated = true
					return nil
				}
			}
		}
		blocks = next
	}
	var out []topology.NodeID
	for _, b := range blocks {
		if id, ok := marking.VerifyBlock(b, f.numNodes); ok {
			out = append(out, id)
		}
	}
	return out
}

// Levels reconstructs the verified nodes at each distance from the
// victim: Levels()[0] are the upstream switches adjacent to the victim,
// Levels()[d] the switches d+1 hops out. Reconstruction stops at the
// first level with no verified node (the chain is broken there).
func (f *FragmentReconstructor) Levels() [][]topology.NodeID {
	var levels [][]topology.NodeID
	maxDist := 0
	for d := range f.frags {
		if d > maxDist {
			maxDist = d
		}
	}
	prev := []topology.NodeID(nil)
	for d := 0; d <= maxDist; d++ {
		byOff := f.frags[d]
		if byOff == nil {
			break
		}
		var found []topology.NodeID
		if d == 0 {
			var perOffset [marking.FragmentCount][]uint8
			for o := 0; o < marking.FragmentCount; o++ {
				for v, c := range byOff[o] {
					if c >= f.MinCount {
						perOffset[o] = append(perOffset[o], v)
					}
				}
				sort.Slice(perOffset[o], func(i, j int) bool { return perOffset[o][i] < perOffset[o][j] })
			}
			found = f.assemble(perOffset)
		} else {
			// XOR out each known downstream node B from level d−1.
			seen := map[topology.NodeID]bool{}
			for _, b := range prev {
				block := marking.IdentityBlock(b)
				var perOffset [marking.FragmentCount][]uint8
				for o := 0; o < marking.FragmentCount; o++ {
					bf := marking.Fragment(block, o)
					for v, c := range byOff[o] {
						if c >= f.MinCount {
							perOffset[o] = append(perOffset[o], v^bf)
						}
					}
					sort.Slice(perOffset[o], func(i, j int) bool { return perOffset[o][i] < perOffset[o][j] })
				}
				for _, id := range f.assemble(perOffset) {
					if !seen[id] {
						seen[id] = true
						found = append(found, id)
					}
				}
			}
		}
		if len(found) == 0 {
			break
		}
		sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
		levels = append(levels, found)
		prev = found
	}
	return levels
}

// Sources returns the deepest verified level — the farthest switches
// the chain reaches, which on a converged single-path reconstruction is
// the attacker's switch.
func (f *FragmentReconstructor) Sources() []topology.NodeID {
	levels := f.Levels()
	if len(levels) == 0 {
		return nil
	}
	return levels[len(levels)-1]
}
