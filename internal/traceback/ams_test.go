package traceback

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAMSReconstructsPath(t *testing.T) {
	m := topology.NewMesh2D(8)
	scheme, err := marking.NewAMS(0.1, 11, rng.NewStream(61))
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{7, 7})
	rec := NewAMSReconstructor(scheme, m, victim)
	rec.MinCount = 2
	preload := rng.NewStream(62)
	for i := 0; i < 8000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, uint16(preload.Intn(1<<16))))
		if i%100 == 0 {
			if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == attacker {
				// Verify the full chain matches the XY path.
				path, _ := r.Walk(attacker, victim, 0)
				levels := rec.Levels()
				if len(levels) != len(path)-1 {
					t.Fatalf("levels %d, path switches %d", len(levels), len(path)-1)
				}
				for d, lvl := range levels {
					want := path[len(path)-2-d]
					found := false
					for _, n := range lvl {
						if n == want {
							found = true
						}
					}
					if !found {
						t.Fatalf("level %d = %v missing path node %d", d, lvl, want)
					}
				}
				return
			}
		}
	}
	t.Fatalf("AMS never converged: %v", rec.Levels())
}

func TestAMSConvergesFasterThanFragmentPPM(t *testing.T) {
	// The paper's §2 claim: with a complete map, AMS needs roughly an
	// eighth of Savage's packets (one sample per switch vs 8 fragments
	// per edge). Assert a clear gap rather than the exact constant.
	m := topology.NewMesh2D(8)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{7, 7})
	const p = 0.1

	amsPkts := func(seed uint64) int {
		scheme, _ := marking.NewAMS(p, 11, rng.NewStream(seed))
		r := routing.NewRouter(m, routing.NewXY(m))
		rec := NewAMSReconstructor(scheme, m, victim)
		for i := 1; i <= 200000; i++ {
			rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
			if i%25 == 0 {
				if srcs := rec.Sources(); len(srcs) >= 1 && srcs[0] == attacker && len(rec.Levels()) == 14 {
					return i
				}
			}
		}
		return -1
	}
	fragPkts := func(seed uint64) int {
		scheme, _ := marking.NewFragmentPPM(p, rng.NewStream(seed))
		r := routing.NewRouter(m, routing.NewXY(m))
		rec := NewFragmentReconstructor(scheme, m.NumNodes())
		for i := 1; i <= 200000; i++ {
			rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
			if i%25 == 0 {
				if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == attacker && len(rec.Levels()) == 14 {
					return i
				}
			}
		}
		return -1
	}

	var amsTotal, fragTotal int
	for s := uint64(0); s < 3; s++ {
		a := amsPkts(100 + s)
		f := fragPkts(200 + s)
		if a < 0 || f < 0 {
			t.Fatalf("no convergence: ams=%d frag=%d", a, f)
		}
		amsTotal += a
		fragTotal += f
	}
	if fragTotal < 3*amsTotal {
		t.Errorf("fragment PPM (%d pkts) should need several times AMS (%d pkts)", fragTotal, amsTotal)
	}
}

func TestAMSCollisionsSurfaceAsExtraCandidates(t *testing.T) {
	// With a 1-bit hash, half of all neighbors match every fragment:
	// levels balloon but still contain the true path.
	m := topology.NewMesh2D(6)
	scheme, _ := marking.NewAMS(0.3, 1, rng.NewStream(63))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := routing.NewRouter(m, routing.NewXY(m))
	attacker := m.IndexOf(topology.Coord{0, 0})
	victim := m.IndexOf(topology.Coord{5, 5})
	rec := NewAMSReconstructor(scheme, m, victim)
	for i := 0; i < 3000; i++ {
		rec.Observe(send(t, r, scheme, plan, attacker, victim, 0))
	}
	levels := rec.Levels()
	if len(levels) == 0 {
		t.Fatal("nothing reconstructed")
	}
	total := 0
	for _, lvl := range levels {
		total += len(lvl)
	}
	if total <= len(levels) {
		t.Errorf("1-bit hash produced no ambiguity (%d candidates over %d levels)", total, len(levels))
	}
	path, _ := r.Walk(attacker, victim, 0)
	for d, lvl := range levels {
		if d >= len(path)-1 {
			break
		}
		want := path[len(path)-2-d]
		found := false
		for _, n := range lvl {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("true path node %d missing from level %d", want, d)
		}
	}
}

func TestAMSValidation(t *testing.T) {
	if _, err := marking.NewAMS(0, 11, nil); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := marking.NewAMS(0.1, 12, nil); err == nil {
		t.Error("12-bit hash accepted (5-bit distance would not fit)")
	}
	s, err := marking.NewAMS(0.1, 0, rng.NewStream(1))
	if err != nil || s.HashBits != 11 {
		t.Errorf("default hash bits = %d, %v", s.HashBits, err)
	}
}
