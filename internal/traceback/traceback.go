// Package traceback implements the victim side of every marking scheme:
// turning the marking fields of received packets back into attack
// sources. It contains the single-packet DDPM identifier (the paper's
// contribution), the multi-packet PPM path reconstructor (whose packet
// appetite is experiment E1), the Savage fragment reconstructor, and
// the DPM signature table (whose ambiguity is experiment E2).
//
// Nothing in this package reads simulator ground truth; identifiers see
// only what a real victim NIC would: the IP header and, for the
// idealized wide variants, the side-band mark.
package traceback

import (
	"sort"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
)

// memo encoding for one MF value: 0 = not yet computed, memoUndec =
// the MF does not decode to a node, else src+memoBias. IdentifySource
// is a pure function of (victim, mf), so each of the 65536 possible MF
// values is decoded at most once per identifier; after that ObserveMF
// is a table load plus a dense-tally increment, which is what lets the
// daemon's batch hot path stay allocation-free.
const (
	memoUndec = 1
	memoBias  = 2
)

// DDPMIdentifier recovers the source of every observed packet directly
// from its marking field (Figure 4's destination-side branch:
// V := Extract_MF(); S := X − V). It also tallies identified sources so
// a victim under attack can rank offenders.
type DDPMIdentifier struct {
	scheme   *marking.DDPM
	victim   topology.NodeID
	memo     []int32 // lazy per-MF decode cache, 1<<16 entries
	tally    []int64 // identifications per source node, dense by NodeID
	observed int64
	undec    int64
}

// NewDDPMIdentifier builds the identifier for a victim node.
func NewDDPMIdentifier(scheme *marking.DDPM, victim topology.NodeID) *DDPMIdentifier {
	return &DDPMIdentifier{
		scheme: scheme,
		victim: victim,
		tally:  make([]int64, scheme.Net().NumNodes()),
	}
}

// Observe identifies the packet's source. ok is false when the MF does
// not decode to a node of the topology (corruption or marking bypass).
func (d *DDPMIdentifier) Observe(pk *packet.Packet) (topology.NodeID, bool) {
	return d.ObserveMF(pk.Hdr.ID)
}

// ObserveMF identifies and tallies from a bare marking field — the
// entry point for wire-format records, which carry the MF without a
// full packet.
func (d *DDPMIdentifier) ObserveMF(mf uint16) (topology.NodeID, bool) {
	if d.memo == nil {
		d.memo = make([]int32, 1<<16)
	}
	m := d.memo[mf]
	if m == 0 {
		if src, ok := d.scheme.IdentifySource(d.victim, mf); ok {
			m = int32(src) + memoBias
		} else {
			m = memoUndec
		}
		d.memo[mf] = m
	}
	if m == memoUndec {
		d.undec++
		return topology.None, false
	}
	src := topology.NodeID(m - memoBias)
	d.tally[src]++
	d.observed++
	return src, true
}

// Observed returns the number of successfully identified packets;
// Undecodable the number of rejects.
func (d *DDPMIdentifier) Observed() int64    { return d.observed }
func (d *DDPMIdentifier) Undecodable() int64 { return d.undec }

// AddTally merges n prior identifications of src into the tally — the
// victim-state handoff path when a clustered daemon inherits a victim
// from a dead peer: the replica's counts seed the successor's
// identifier so blocking thresholds pick up where the owner left off.
// Out-of-range sources and non-positive counts are ignored.
func (d *DDPMIdentifier) AddTally(src topology.NodeID, n int64) {
	if n <= 0 || src < 0 || int(src) >= len(d.tally) {
		return
	}
	d.tally[src] += n
	d.observed += n
}

// AddUndecodable merges n prior decode rejects (handoff sibling of
// AddTally).
func (d *DDPMIdentifier) AddUndecodable(n int64) {
	if n > 0 {
		d.undec += n
	}
}

// EachSource calls fn for every source with a nonzero tally, ascending
// by node id — the export side of victim-state replication.
func (d *DDPMIdentifier) EachSource(fn func(src topology.NodeID, count int64)) {
	for n, c := range d.tally {
		if c != 0 {
			fn(topology.NodeID(n), c)
		}
	}
}

// Count returns the tally for one source node.
func (d *DDPMIdentifier) Count(src topology.NodeID) int64 {
	if src < 0 || int(src) >= len(d.tally) {
		return 0
	}
	return d.tally[src]
}

// TopSources returns the k most frequent identified sources, most
// frequent first, ties broken by ascending node id.
func (d *DDPMIdentifier) TopSources(k int) []topology.NodeID {
	if k <= 0 {
		return nil
	}
	var seen []topology.NodeID
	for n, c := range d.tally {
		if c > 0 {
			seen = append(seen, topology.NodeID(n))
		}
	}
	sort.Slice(seen, func(i, j int) bool {
		ci, cj := d.tally[seen[i]], d.tally[seen[j]]
		if ci != cj {
			return ci > cj
		}
		return seen[i] < seen[j]
	})
	if k > len(seen) {
		k = len(seen)
	}
	return seen[:k]
}

// SourcesAbove returns every source identified strictly more than
// threshold times, sorted by node id — the blocklist a victim feeds to
// the filter layer.
func (d *DDPMIdentifier) SourcesAbove(threshold int64) []topology.NodeID {
	var out []topology.NodeID
	for n, c := range d.tally {
		if c > threshold {
			out = append(out, topology.NodeID(n))
		}
	}
	return out
}
