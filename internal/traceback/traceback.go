// Package traceback implements the victim side of every marking scheme:
// turning the marking fields of received packets back into attack
// sources. It contains the single-packet DDPM identifier (the paper's
// contribution), the multi-packet PPM path reconstructor (whose packet
// appetite is experiment E1), the Savage fragment reconstructor, and
// the DPM signature table (whose ambiguity is experiment E2).
//
// Nothing in this package reads simulator ground truth; identifiers see
// only what a real victim NIC would: the IP header and, for the
// idealized wide variants, the side-band mark.
package traceback

import (
	"sort"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DDPMIdentifier recovers the source of every observed packet directly
// from its marking field (Figure 4's destination-side branch:
// V := Extract_MF(); S := X − V). It also tallies identified sources so
// a victim under attack can rank offenders.
type DDPMIdentifier struct {
	scheme *marking.DDPM
	victim topology.NodeID
	tally  *stats.Counter[topology.NodeID]
	undec  int64
}

// NewDDPMIdentifier builds the identifier for a victim node.
func NewDDPMIdentifier(scheme *marking.DDPM, victim topology.NodeID) *DDPMIdentifier {
	return &DDPMIdentifier{scheme: scheme, victim: victim, tally: stats.NewCounter[topology.NodeID]()}
}

// Observe identifies the packet's source. ok is false when the MF does
// not decode to a node of the topology (corruption or marking bypass).
func (d *DDPMIdentifier) Observe(pk *packet.Packet) (topology.NodeID, bool) {
	return d.ObserveMF(pk.Hdr.ID)
}

// ObserveMF identifies and tallies from a bare marking field — the
// entry point for wire-format records, which carry the MF without a
// full packet.
func (d *DDPMIdentifier) ObserveMF(mf uint16) (topology.NodeID, bool) {
	src, ok := d.scheme.IdentifySource(d.victim, mf)
	if !ok {
		d.undec++
		return topology.None, false
	}
	d.tally.Add(src)
	return src, true
}

// Observed returns the number of successfully identified packets;
// Undecodable the number of rejects.
func (d *DDPMIdentifier) Observed() int64    { return d.tally.Total() }
func (d *DDPMIdentifier) Undecodable() int64 { return d.undec }

// Count returns the tally for one source node.
func (d *DDPMIdentifier) Count(src topology.NodeID) int64 { return d.tally.Count(src) }

// TopSources returns the k most frequent identified sources.
func (d *DDPMIdentifier) TopSources(k int) []topology.NodeID {
	return d.tally.Top(k, func(a, b topology.NodeID) bool { return a < b })
}

// SourcesAbove returns every source identified strictly more than
// threshold times, sorted by node id — the blocklist a victim feeds to
// the filter layer.
func (d *DDPMIdentifier) SourcesAbove(threshold int64) []topology.NodeID {
	var out []topology.NodeID
	for _, s := range d.tally.Top(1<<30, func(a, b topology.NodeID) bool { return a < b }) {
		if d.tally.Count(s) > threshold {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
