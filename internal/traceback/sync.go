package traceback

import (
	"sync"

	"repro/internal/marking"
	"repro/internal/topology"
)

// SyncDDPMIdentifier is the concurrent-use-safe variant of
// DDPMIdentifier for long-running services: shard workers feed it
// while admin/metrics goroutines read the tally. It owns its DDPM
// instance outright (the scheme's scratch buffers make IdentifySource
// non-reentrant), so every entry point is serialized by one mutex.
type SyncDDPMIdentifier struct {
	mu    sync.Mutex
	inner *DDPMIdentifier
}

// NewSyncDDPMIdentifier builds the identifier for a victim node.
// scheme must not be used outside this identifier afterwards.
func NewSyncDDPMIdentifier(scheme *marking.DDPM, victim topology.NodeID) *SyncDDPMIdentifier {
	return &SyncDDPMIdentifier{inner: NewDDPMIdentifier(scheme, victim)}
}

// ObserveMF identifies and tallies the source encoded in one marking
// field.
func (s *SyncDDPMIdentifier) ObserveMF(mf uint16) (topology.NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.ObserveMF(mf)
}

// Lock acquires the identifier's mutex and returns the inner unlocked
// identifier, so a batch consumer pays one lock acquisition per group
// of records instead of one per record. The caller must call Unlock
// when done and must not retain the inner pointer past it.
func (s *SyncDDPMIdentifier) Lock() *DDPMIdentifier {
	s.mu.Lock()
	return s.inner
}

// Unlock releases the mutex taken by Lock.
func (s *SyncDDPMIdentifier) Unlock() { s.mu.Unlock() }

// Observed, Undecodable, Count, TopSources and SourcesAbove mirror
// DDPMIdentifier under the lock.
func (s *SyncDDPMIdentifier) Observed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Observed()
}

func (s *SyncDDPMIdentifier) Undecodable() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Undecodable()
}

func (s *SyncDDPMIdentifier) Count(src topology.NodeID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Count(src)
}

func (s *SyncDDPMIdentifier) TopSources(k int) []topology.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.TopSources(k)
}

func (s *SyncDDPMIdentifier) SourcesAbove(threshold int64) []topology.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.SourcesAbove(threshold)
}
