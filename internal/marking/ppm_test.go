package marking

import (
	"math/bits"
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// forceMark drives a scheme along a path, forcing exactly one mark at
// markHop (0-based switch index) by manipulating a stub stream — we
// instead run the real scheme with P=1 on the marking switch and P→0
// elsewhere via direct field manipulation. Simpler: run OnForward
// manually with a deterministic stream crafted per hop.
func simplePPMAlong(t *testing.T, net topology.Network, path []topology.NodeID, markHop int) uint16 {
	t.Helper()
	// A stream with P=1 marks always; we emulate "mark only at hop k"
	// by building two schemes sharing the layout: marker (P=1) and
	// passer (P≈0 that never fires with our stream draws).
	marker, err := NewSimplePPM(net, 1.0, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	passer, err := NewSimplePPM(net, 1e-12, rng.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	pk := &packet.Packet{}
	for i := 0; i+1 < len(path); i++ {
		if i == markHop {
			marker.OnForward(path[i], path[i+1], pk)
		} else {
			passer.OnForward(path[i], path[i+1], pk)
		}
	}
	return pk.Hdr.ID
}

func TestFigure3aEdgeSamples(t *testing.T) {
	// Paper §4.2 / Figure 3(a): on the deterministic path
	// 0001→0011→0010→0110→1110, the victim 1110 receives the four
	// samples (0001,0011,3), (0011,0010,2), (0010,0110,1), (0110,_,0).
	m := topology.NewMesh2D(4)
	l, _ := NewLabeler(m)
	path := []topology.NodeID{
		m.IndexOf(topology.Coord{0, 1}), // 0001
		m.IndexOf(topology.Coord{0, 2}), // 0011
		m.IndexOf(topology.Coord{0, 3}), // 0010
		m.IndexOf(topology.Coord{1, 3}), // 0110
		m.IndexOf(topology.Coord{2, 3}), // 1110 (victim)
	}
	scheme, _ := NewSimplePPM(m, 0.5, rng.NewStream(1))
	wantStart := []uint16{0b0001, 0b0011, 0b0010, 0b0110}
	wantEnd := []uint16{0b0011, 0b0010, 0b0110, 0}
	wantDist := []int{3, 2, 1, 0}
	for hop := 0; hop < 4; hop++ {
		mf := simplePPMAlong(t, m, path, hop)
		es, ok := scheme.DecodeMF(mf)
		if !ok {
			t.Fatalf("hop %d: MF %#04x undecodable", hop, mf)
		}
		if l.Label(es.Start) != wantStart[hop] {
			t.Errorf("hop %d: start %04b, want %04b", hop, l.Label(es.Start), wantStart[hop])
		}
		if es.Dist != wantDist[hop] {
			t.Errorf("hop %d: dist %d, want %d", hop, es.Dist, wantDist[hop])
		}
		if wantDist[hop] > 0 {
			if !es.EndValid {
				t.Errorf("hop %d: end not filled", hop)
			} else if l.Label(es.End) != wantEnd[hop] {
				t.Errorf("hop %d: end %04b, want %04b", hop, l.Label(es.End), wantEnd[hop])
			}
		} else if es.EndValid {
			t.Errorf("hop %d: distance-0 sample must not have a valid end", hop)
		}
	}
}

func TestFigure3aSecondPath(t *testing.T) {
	// Second flow: 0101→0111→0110→1110 gives (0101,0111,2), (0111,0110,1),
	// (0110,_,0).
	m := topology.NewMesh2D(4)
	l, _ := NewLabeler(m)
	path := []topology.NodeID{
		m.IndexOf(topology.Coord{1, 1}), // 0101
		m.IndexOf(topology.Coord{1, 2}), // 0111
		m.IndexOf(topology.Coord{1, 3}), // 0110
		m.IndexOf(topology.Coord{2, 3}), // 1110
	}
	scheme, _ := NewSimplePPM(m, 0.5, rng.NewStream(1))
	wantStart := []uint16{0b0101, 0b0111, 0b0110}
	wantDist := []int{2, 1, 0}
	for hop := 0; hop < 3; hop++ {
		es, ok := scheme.DecodeMF(simplePPMAlong(t, m, path, hop))
		if !ok {
			t.Fatalf("hop %d undecodable", hop)
		}
		if l.Label(es.Start) != wantStart[hop] || es.Dist != wantDist[hop] {
			t.Errorf("hop %d: (%04b,%d), want (%04b,%d)",
				hop, l.Label(es.Start), es.Dist, wantStart[hop], wantDist[hop])
		}
	}
}

func TestSimplePPMRequiredBits(t *testing.T) {
	// 4×4 mesh: 2·4 + 3 = 11 bits, the paper's "total number of bits is
	// 11, which is smaller than 16-bit MF".
	m := topology.NewMesh2D(4)
	s, err := NewSimplePPM(m, 0.1, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.RequiredBits() != 11 {
		t.Errorf("4x4 bits = %d, want 11", s.RequiredBits())
	}
	// 8×8 fits exactly (Table 1 max); 16×16 does not.
	if _, err := NewSimplePPM(topology.NewMesh2D(8), 0.1, rng.NewStream(1)); err != nil {
		t.Errorf("8x8 simple PPM: %v", err)
	}
	if _, err := NewSimplePPM(topology.NewMesh2D(16), 0.1, rng.NewStream(1)); err == nil {
		t.Error("16x16 simple PPM built; Table 1 says it must not fit")
	}
}

func TestSimplePPMDistanceSaturates(t *testing.T) {
	m := topology.NewMesh2D(4)
	passer, _ := NewSimplePPM(m, 1e-12, rng.NewStream(3))
	pk := &packet.Packet{}
	// Never marked: distance field keeps incrementing to saturation and
	// stays there.
	a, b := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 1})
	for i := 0; i < 100; i++ {
		passer.OnForward(a, b, pk)
	}
	dist := int(pk.Hdr.ID & 0b111)
	if dist != 7 {
		t.Errorf("saturated distance = %d, want 7", dist)
	}
}

func TestSimplePPMBadProbability(t *testing.T) {
	m := topology.NewMesh2D(4)
	for _, p := range []float64{0, -0.1, 1.1} {
		if _, err := NewSimplePPM(m, p, rng.NewStream(1)); err == nil {
			t.Errorf("probability %v accepted", p)
		}
	}
}

func TestWidePPMSampling(t *testing.T) {
	w, err := NewWidePPM(1.0, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	pk := &packet.Packet{}
	w.OnInject(pk)
	w.OnForward(5, 6, pk) // always marks with P=1
	es := w.Sample(pk)
	if es == nil || es.Start != 5 || es.Dist != 0 {
		t.Fatalf("sample = %+v", es)
	}
	// Downstream pass-through fills End and counts distance.
	passer, _ := NewWidePPM(1e-12, rng.NewStream(9))
	passer.OnForward(6, 7, pk)
	passer.OnForward(7, 8, pk)
	es = w.Sample(pk)
	if !es.EndValid || es.End != 6 || es.Dist != 2 {
		t.Errorf("sample after passes = %+v", es)
	}
	if _, err := NewWidePPM(0, nil); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestWidePPMInjectClearsStaleSample(t *testing.T) {
	w, _ := NewWidePPM(1e-12, rng.NewStream(1))
	pk := &packet.Packet{Wide: &EdgeSample{Start: 3}}
	w.OnInject(pk)
	if w.Sample(pk) != nil {
		t.Error("stale wide sample survived injection")
	}
}

func TestXORPPMValueIsOneHot(t *testing.T) {
	// The paper's §4.2 claim: with single-bit-difference labels, "the
	// XOR value always has only one bit set to one".
	m := topology.NewMesh2D(8)
	x, err := NewXORPPM(m, 1.0, rng.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	passer, _ := NewXORPPM(m, 1e-12, rng.NewStream(3))
	r := rng.NewStream(4)
	for trial := 0; trial < 200; trial++ {
		a := topology.NodeID(r.Intn(m.NumNodes()))
		nbs := m.Neighbors(a)
		b := nbs[r.Intn(len(nbs))]
		cs := m.Neighbors(b)
		c := cs[r.Intn(len(cs))]
		pk := &packet.Packet{}
		x.OnForward(a, b, pk)      // mark at a
		passer.OnForward(b, c, pk) // b XORs its label in
		val, dist := x.DecodeMF(pk.Hdr.ID)
		if bits.OnesCount16(val) != 1 {
			t.Fatalf("edge value %016b has %d bits set", val, bits.OnesCount16(val))
		}
		if dist != 1 {
			t.Fatalf("dist = %d, want 1", dist)
		}
	}
}

func TestXORPPMAmbiguityCount(t *testing.T) {
	// Count how many edges share each one-hot XOR value in an 8×8 mesh:
	// the paper says ~n(n−1)/log n edges per value; with 4+ bits of
	// label the ambiguity must be large.
	m := topology.NewMesh2D(8)
	l, _ := NewLabeler(m)
	perValue := map[uint16]int{}
	for _, link := range topology.Links(m) {
		if link.From < link.To {
			perValue[l.Label(link.From)^l.Label(link.To)]++
		}
	}
	totalEdges := 0
	for _, c := range perValue {
		totalEdges += c
	}
	if totalEdges != 2*8*7 { // undirected edges of an 8×8 mesh
		t.Fatalf("edge count = %d", totalEdges)
	}
	avg := float64(totalEdges) / float64(len(perValue))
	if avg < 10 {
		t.Errorf("average edges per XOR value = %.1f; expected heavy ambiguity", avg)
	}
}

func TestBitDiffPPMDecodesEdge(t *testing.T) {
	m := topology.NewMesh2D(4)
	b, err := NewBitDiffPPM(m, 1.0, rng.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	if b.RequiredBits() > 16 {
		t.Fatalf("bits = %d", b.RequiredBits())
	}
	passer, _ := NewBitDiffPPM(m, 1e-12, rng.NewStream(6))
	// Mark at (0,1)=0001, fill at (0,2)=0011: paper sample (0001, 1, …)
	// — bit position 1 differs.
	a := m.IndexOf(topology.Coord{0, 1})
	bb := m.IndexOf(topology.Coord{0, 2})
	cc := m.IndexOf(topology.Coord{0, 3})
	pk := &packet.Packet{}
	b.OnForward(a, bb, pk)
	passer.OnForward(bb, cc, pk)
	es, ok := b.DecodeMF(pk.Hdr.ID)
	if !ok {
		t.Fatalf("undecodable MF %#04x", pk.Hdr.ID)
	}
	if es.Start != a || !es.EndValid || es.End != bb || es.Dist != 1 {
		t.Errorf("sample = %+v, want start (0,1) end (0,2) dist 1", es)
	}
}

func TestBitDiffPPMScalability(t *testing.T) {
	// Our exact layout: 16×16 fits (8+3+5=16), 32×32 does not.
	if _, err := NewBitDiffPPM(topology.NewMesh2D(16), 0.1, rng.NewStream(1)); err != nil {
		t.Errorf("16x16 bitdiff: %v", err)
	}
	if _, err := NewBitDiffPPM(topology.NewMesh2D(32), 0.1, rng.NewStream(1)); err == nil {
		t.Error("32x32 bitdiff built; exceeds 16 bits")
	}
	// Requires power-of-two radixes.
	if _, err := NewBitDiffPPM(topology.NewMesh2D(5), 0.1, rng.NewStream(1)); err == nil {
		t.Error("radix-5 bitdiff built without the 1-bit label property")
	}
}

func TestPPMInjectLeavesMFAlone(t *testing.T) {
	// Classic PPM trusts the inherited Identification field.
	m := topology.NewMesh2D(4)
	s, _ := NewSimplePPM(m, 0.5, rng.NewStream(1))
	x, _ := NewXORPPM(m, 0.5, rng.NewStream(1))
	b, _ := NewBitDiffPPM(m, 0.5, rng.NewStream(1))
	for _, sch := range []Scheme{s, x, b, NewDPM()} {
		pk := &packet.Packet{}
		pk.Hdr.ID = 0x1234
		sch.OnInject(pk)
		if pk.Hdr.ID != 0x1234 {
			t.Errorf("%s rewrote the MF at injection", sch.Name())
		}
	}
}

func TestSchemeNames(t *testing.T) {
	m := topology.NewMesh2D(4)
	s, _ := NewSimplePPM(m, 0.5, rng.NewStream(1))
	x, _ := NewXORPPM(m, 0.5, rng.NewStream(1))
	b, _ := NewBitDiffPPM(m, 0.5, rng.NewStream(1))
	w, _ := NewWidePPM(0.5, rng.NewStream(1))
	f, _ := NewFragmentPPM(0.5, rng.NewStream(1))
	names := map[string]bool{}
	for _, sch := range []Scheme{s, x, b, w, f, NewDPM(), Nop{}} {
		if sch.Name() == "" {
			t.Error("empty scheme name")
		}
		if names[sch.Name()] {
			t.Errorf("duplicate scheme name %q", sch.Name())
		}
		names[sch.Name()] = true
	}
}
