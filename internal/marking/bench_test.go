package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func BenchmarkCodecAdd2D(b *testing.B) {
	c, _ := NewSignedFieldCodec(8, 8)
	delta := topology.Vector{1, 0}
	mf := uint16(0)
	for i := 0; i < b.N; i++ {
		mf = c.Add(mf, delta)
	}
	_ = mf
}

func BenchmarkCodecAdd3D(b *testing.B) {
	c, _ := NewSignedFieldCodec(5, 5, 6)
	delta := topology.Vector{0, 0, 1}
	mf := uint16(0)
	for i := 0; i < b.N; i++ {
		mf = c.Add(mf, delta)
	}
	_ = mf
}

func BenchmarkCubeCodecAdd(b *testing.B) {
	c, _ := NewCubeCodec(16)
	delta := make(topology.Vector, 16)
	delta[3] = 1
	mf := uint16(0)
	for i := 0; i < b.N; i++ {
		mf = c.Add(mf, delta)
	}
	_ = mf
}

func BenchmarkCodecDecode(b *testing.B) {
	c, _ := NewSignedFieldCodec(8, 8)
	for i := 0; i < b.N; i++ {
		_ = c.Decode(uint16(i))
	}
}

func BenchmarkDDPMOnForward(b *testing.B) {
	m := topology.NewMesh2D(128)
	d, err := NewDDPM(m)
	if err != nil {
		b.Fatal(err)
	}
	cur := m.IndexOf(topology.Coord{5, 5})
	next := m.IndexOf(topology.Coord{5, 6})
	pk := &packet.Packet{}
	for i := 0; i < b.N; i++ {
		d.OnForward(cur, next, pk)
	}
}

func BenchmarkDDPMIdentifySource(b *testing.B) {
	m := topology.NewMesh2D(128)
	d, _ := NewDDPM(m)
	victim := m.IndexOf(topology.Coord{100, 100})
	codec := d.Codec().(*SignedFieldCodec)
	mf, _ := codec.Encode(topology.Vector{37, -20})
	for i := 0; i < b.N; i++ {
		if _, ok := d.IdentifySource(victim, mf); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkGrayLabel(b *testing.B) {
	m := topology.NewMesh2D(128)
	l, _ := NewLabeler(m)
	n := m.NumNodes()
	for i := 0; i < b.N; i++ {
		_ = l.Label(topology.NodeID(i % n))
	}
}

func BenchmarkDPMOnForward(b *testing.B) {
	d := NewDPM()
	pk := &packet.Packet{}
	pk.Hdr.TTL = 64
	for i := 0; i < b.N; i++ {
		d.OnForward(topology.NodeID(i&1023), 0, pk)
	}
}

func BenchmarkSimplePPMOnForward(b *testing.B) {
	m := topology.NewMesh2D(8)
	s, err := NewSimplePPM(m, 0.04, rng.NewStream(1))
	if err != nil {
		b.Fatal(err)
	}
	pk := &packet.Packet{}
	cur := m.IndexOf(topology.Coord{3, 3})
	for i := 0; i < b.N; i++ {
		s.OnForward(cur, 0, pk)
	}
}

func BenchmarkFragmentPPMOnForward(b *testing.B) {
	f, _ := NewFragmentPPM(0.04, rng.NewStream(2))
	pk := &packet.Packet{}
	for i := 0; i < b.N; i++ {
		f.OnForward(topology.NodeID(i&1023), 0, pk)
	}
}

func BenchmarkScalabilitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, k := range []SchemeKind{KindSimplePPM, KindBitDiffPPM, KindDDPM} {
			MaxMesh(k)
			MaxCube(k)
		}
	}
}
