package marking

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// Compromised wraps a scheme with one lying switch — the threat the
// paper assumes away ("switches cannot be compromised", §4.1) and then
// reopens in §6.2 ("we should add an authentication function working on
// the switching layer"). Experiment X4 uses it to measure each scheme's
// blast radius: how many flows a single bad switch can misattribute.
//
// The lying switch applies Corrupt to the MF after the inner scheme's
// honest work, on every packet it forwards and at injection when it is
// the source switch. Every other switch behaves honestly.
type Compromised struct {
	Inner Scheme

	// BadSwitch is the lying switch.
	BadSwitch topology.NodeID

	// Corrupt transforms the MF the bad switch emits; nil XORs 0xA5A5,
	// a fixed memoryless lie.
	Corrupt func(mf uint16) uint16
}

// NewCompromised wraps inner.
func NewCompromised(inner Scheme, bad topology.NodeID, corrupt func(uint16) uint16) *Compromised {
	if corrupt == nil {
		corrupt = func(mf uint16) uint16 { return mf ^ 0xA5A5 }
	}
	return &Compromised{Inner: inner, BadSwitch: bad, Corrupt: corrupt}
}

func (c *Compromised) Name() string { return c.Inner.Name() + "+compromised" }

// Unwrap exposes the honest scheme for victim-side accessors.
func (c *Compromised) Unwrap() Scheme { return c.Inner }

func (c *Compromised) OnInject(pk *packet.Packet) {
	c.Inner.OnInject(pk)
	if pk.SrcNode == c.BadSwitch {
		pk.Hdr.ID = c.Corrupt(pk.Hdr.ID)
	}
}

func (c *Compromised) OnForward(cur, next topology.NodeID, pk *packet.Packet) {
	c.Inner.OnForward(cur, next, pk)
	if cur == c.BadSwitch {
		pk.Hdr.ID = c.Corrupt(pk.Hdr.ID)
	}
}
