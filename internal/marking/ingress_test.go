package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestIngressStampIdentifies(t *testing.T) {
	m := topology.NewMesh2D(8)
	s, err := NewIngressStamp(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bits() != 6 {
		t.Errorf("Bits = %d, want 6", s.Bits())
	}
	r := rng.NewStream(1)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		pk := &packet.Packet{SrcNode: src}
		pk.Hdr.ID = uint16(r.Intn(1 << 16)) // hostile preload erased
		s.OnInject(pk)
		// Any number of forwards leaves the stamp intact.
		for h := 0; h < 5; h++ {
			s.OnForward(0, 1, pk)
		}
		got, ok := s.IdentifySource(pk.Hdr.ID)
		if !ok || got != src {
			t.Fatalf("identified %d, want %d", got, src)
		}
	}
}

func TestIngressStampRejectsOutOfRange(t *testing.T) {
	m := topology.NewMesh2D(4) // 16 nodes
	s, _ := NewIngressStamp(m)
	if _, ok := s.IdentifySource(16); ok {
		t.Error("out-of-range index accepted")
	}
}

func TestIngressStampSizeLimit(t *testing.T) {
	// 65536 nodes fits exactly; beyond it must error.
	if _, err := NewIngressStamp(topology.NewHypercube(16)); err != nil {
		t.Errorf("2^16 nodes rejected: %v", err)
	}
	if _, err := NewIngressStamp(topology.NewHypercube(17)); err == nil {
		t.Error("2^17 nodes accepted")
	}
}

func TestIngressStampZeroPerHopCost(t *testing.T) {
	m := topology.NewMesh2D(4)
	s, _ := NewIngressStamp(m)
	pk := &packet.Packet{SrcNode: 7}
	s.OnInject(pk)
	before := pk.Hdr.ID
	s.OnForward(3, 4, pk)
	if pk.Hdr.ID != before {
		t.Error("OnForward modified the MF")
	}
}
