package marking

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// DPM is the deterministic path-signature scheme of §4.3 (after Yaar's
// Pi): every switch writes one bit — the last bit of the hash of its
// index — into the MF at position TTL mod 16, then the fabric
// decrements TTL at each hop, so consecutive switches fill consecutive
// (descending, wrapping) positions and the MF accumulates a path
// signature. The victim blocks traffic whose MF matches a known
// attacking signature.
//
// The paper's two criticisms, both reproduced by experiment E2:
//
//  1. Ambiguity — one bit per hop means ~half the neighbors at each
//     step share a bit, so many distinct paths (and sources) collide on
//     one signature; and past 16 hops earlier bits are overwritten.
//  2. Adaptive routing — one flow takes many paths, shattering into
//     many signatures, so signature filtering stops matching.
type DPM struct {
	// UseIndexHash selects the hash input: true hashes the switch index
	// (the robust choice); false uses the raw index's last bit, the
	// paper's illustrative simplification ("If we use the node index
	// for the hash value").
	UseIndexHash bool
}

// NewDPM builds the scheme with hashing enabled.
func NewDPM() *DPM { return &DPM{UseIndexHash: true} }

func (d *DPM) Name() string { return "dpm" }

// OnInject leaves the MF as-is; like PPM, DPM overwrites bits hop by
// hop and relies on path length ≥ 16 to cover attacker seeding.
func (d *DPM) OnInject(*packet.Packet) {}

// Bit returns the marking bit for a switch.
func (d *DPM) Bit(cur topology.NodeID) uint16 {
	if d.UseIndexHash {
		return uint16(hashIndex(uint32(cur)) & 1)
	}
	return uint16(cur) & 1
}

func (d *DPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	pos := uint(pk.Hdr.TTL % 16)
	bit := d.Bit(cur)
	pk.Hdr.ID = pk.Hdr.ID&^(1<<pos) | bit<<pos
}

// Signature is the victim-side filtering key: the full MF. Two packets
// from the same source along the same path with the same initial TTL
// carry equal signatures; adaptive routing breaks that equality, which
// is experiment E2's measurement.
func (d *DPM) Signature(mf uint16) uint16 { return mf }
