package marking

// This file regenerates the paper's scalability analysis (Tables 1–3):
// for each scheme and topology family, the MF bits required as a
// function of size, and the largest cluster that fits the 16-bit MF.
// Two computations are reported side by side:
//
//   - PaperBits: the closed-form expressions printed in the paper
//     (log n² + log n² + log 2n, etc.), evaluated with exact ceilings;
//   - ExactBits: the bit count of this package's concrete layouts.
//
// They agree everywhere except the paper's Table 2 mesh row, whose
// printed maximum (64×64) is inconsistent with its own formula; see
// EXPERIMENTS.md.

// MFBits is the marking-field width every scheme must fit (the IPv4
// Identification field).
const MFBits = 16

// SchemeKind enumerates the analyzed schemes.
type SchemeKind int

const (
	KindSimplePPM SchemeKind = iota
	KindBitDiffPPM
	KindDDPM
)

func (k SchemeKind) String() string {
	switch k {
	case KindSimplePPM:
		return "simple-ppm"
	case KindBitDiffPPM:
		return "bitdiff-ppm"
	case KindDDPM:
		return "ddpm"
	default:
		return "unknown"
	}
}

// MeshBits returns the required MF bits for an n×n mesh or torus under
// the given scheme, using this package's exact layouts:
//
//	simple PPM:  2·⌈log₂ n²⌉ + ⌈log₂ 2n⌉   (two labels + distance)
//	bitdiff PPM: ⌈log₂ n²⌉ + ⌈log₂⌈log₂ n²⌉⌉ + ⌈log₂ 2n⌉
//	DDPM:        2·(⌈log₂ n⌉ + 1)          (two signed fields)
func MeshBits(kind SchemeKind, n int) int {
	label := 2 * ceilLog2(n) // label bits for n×n nodes
	dist := ceilLog2(2 * n)  // distance field covering the diameter 2n−2
	switch kind {
	case KindSimplePPM:
		return 2*label + dist
	case KindBitDiffPPM:
		pos := ceilLog2(label)
		if pos == 0 {
			pos = 1
		}
		return label + pos + dist
	case KindDDPM:
		return 2 * (ceilLog2(n) + 1)
	}
	return -1
}

// CubeBits returns the required MF bits for an n-cube hypercube:
//
//	simple PPM:  2n + ⌈log₂(n+1)⌉
//	bitdiff PPM: n + ⌈log₂ n⌉ + ⌈log₂(n+1)⌉
//	DDPM:        n
func CubeBits(kind SchemeKind, n int) int {
	dist := ceilLog2(n + 1)
	switch kind {
	case KindSimplePPM:
		return 2*n + dist
	case KindBitDiffPPM:
		pos := ceilLog2(n)
		if pos == 0 {
			pos = 1
		}
		return n + pos + dist
	case KindDDPM:
		return n
	}
	return -1
}

// MaxMesh returns the largest n (power of two, matching the paper's
// table entries) such that an n×n mesh/torus fits the MF under kind,
// and the corresponding node count.
func MaxMesh(kind SchemeKind) (n, nodes int) {
	best := 0
	for k := 2; k <= 1<<12; k <<= 1 {
		if MeshBits(kind, k) <= MFBits {
			best = k
		}
	}
	return best, best * best
}

// MaxCube returns the largest hypercube dimension fitting the MF under
// kind, and the node count.
func MaxCube(kind SchemeKind) (n, nodes int) {
	best := 0
	for k := 1; k <= 24; k++ {
		if CubeBits(kind, k) <= MFBits {
			best = k
		}
	}
	return best, 1 << best
}

// PaperMaxMesh and PaperMaxCube are the maxima the paper's tables
// claim, for side-by-side reporting.
func PaperMaxMesh(kind SchemeKind) (n, nodes int) {
	switch kind {
	case KindSimplePPM:
		return 8, 64 // Table 1: "8 × 8 nodes"
	case KindBitDiffPPM:
		return 64, 4096 // Table 2: "64 × 64 nodes" (inconsistent with its formula)
	case KindDDPM:
		return 128, 16384 // Table 3: "128 × 128 nodes"
	}
	return 0, 0
}

func PaperMaxCube(kind SchemeKind) (n, nodes int) {
	switch kind {
	case KindSimplePPM:
		return 6, 64 // Table 1: "2^6 nodes"
	case KindBitDiffPPM:
		return 8, 256 // Table 2: "2^8 nodes"
	case KindDDPM:
		return 16, 65536 // Table 3: "2^16 nodes"
	}
	return 0, 0
}

// Mesh3DDDPMSplit returns the paper's explicit 3-D DDPM split — two
// 5-bit fields and one 6-bit field — and the node count it supports
// (16 × 16 × 32 = 8192, "8192 nodes cluster").
func Mesh3DDDPMSplit() (widths []int, nodes int) {
	return []int{5, 5, 6}, 16 * 16 * 32
}
