package marking

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
)

// IngressStamp is the obvious-in-hindsight alternative the reproduction
// adds as an ablation (X3): under the paper's own trust model (switches
// are separate from compute nodes and cannot be compromised, §4.1), the
// SOURCE switch alone can just write its global index into the MF at
// injection. That identifies the source on any topology — direct,
// indirect, irregular — in ⌈log₂N⌉ bits, with a single write.
//
// What DDPM buys over this baseline, and why the paper's design is
// still interesting:
//
//   - DDPM switches need no global identity or configuration: each hop
//     adds a locally known displacement. Ingress stamping requires every
//     switch to know (and keep consistent) its own cluster-wide index —
//     real configuration state that can rot or be mis-set.
//   - Ingress stamping concentrates all trust in one device; a single
//     misbehaving source switch forges arbitrary origins undetectably.
//     Under DDPM a lying switch can only shift the vector by its own
//     local displacements, and any inconsistent sum decodes off-mesh.
//   - DDPM keeps working when the injection point is ambiguous (e.g.
//     multi-homed NICs) because it measures the path actually taken.
//
// The experiments use IngressStamp as the accuracy/overhead yardstick.
type IngressStamp struct {
	bits int
	n    int
}

// Sized is the only thing the stamp needs from a fabric — its node
// count — so the scheme applies to any substrate (direct, fat-tree,
// irregular), not just topology.Topology implementations.
type Sized interface {
	NumNodes() int
}

// NewIngressStamp errors when the node index does not fit the MF
// (beyond 65536 nodes — comfortably past every Table 3 bound).
func NewIngressStamp(net Sized) (*IngressStamp, error) {
	n := net.NumNodes()
	bits := ceilLog2(n)
	if bits > 16 {
		return nil, fmt.Errorf("marking: ingress stamp needs %d bits for %d nodes, MF has 16", bits, n)
	}
	return &IngressStamp{bits: bits, n: n}, nil
}

func (s *IngressStamp) Name() string { return "ingress-stamp" }

// Bits returns the MF bits used.
func (s *IngressStamp) Bits() int { return s.bits }

// OnInject writes the source switch's index, erasing any preload. The
// source node is exactly where OnInject runs (the packet's entry
// switch), so using pk.SrcNode here models the switch writing its own
// identity — not trusting any header field.
func (s *IngressStamp) OnInject(pk *packet.Packet) {
	pk.Hdr.ID = uint16(pk.SrcNode)
}

// OnForward leaves the MF alone: zero per-hop cost.
func (s *IngressStamp) OnForward(topology.NodeID, topology.NodeID, *packet.Packet) {}

// IdentifySource reads the stamp; ok is false for out-of-range indexes
// (corruption, or a packet that bypassed the source switch).
func (s *IngressStamp) IdentifySource(mf uint16) (topology.NodeID, bool) {
	if int(mf) >= s.n {
		return topology.None, false
	}
	return topology.NodeID(mf), true
}
