package marking

import (
	"fmt"

	"repro/internal/topology"
)

// Labeler produces the compact binary node labels the paper's marking
// examples use (Figure 3(a): the 4×4 mesh nodes are labeled 0001, 0011,
// 0110, 1110 …). Each dimension's coordinate is encoded with a
// reflected Gray code and the per-dimension codes are concatenated,
// dimension 0 most significant. Gray coding gives the property the
// paper's XOR and bit-difference schemes rely on: the labels of
// neighboring nodes differ in exactly one bit (including torus
// wraparound neighbors when every radix is a power of two).
type Labeler struct {
	net    topology.Network
	widths []int
	bits   int
	exact  bool // every radix is a power of two → 1-bit-neighbor property holds
}

// NewLabeler builds the labeler for a topology. Total label width must
// fit in 16 bits.
func NewLabeler(net topology.Network) (*Labeler, error) {
	dims := net.Dims()
	l := &Labeler{net: net, widths: make([]int, len(dims)), exact: true}
	for i, k := range dims {
		w := ceilLog2(k)
		if w == 0 {
			w = 1
		}
		l.widths[i] = w
		l.bits += w
		if k&(k-1) != 0 {
			l.exact = false
		}
	}
	if l.bits > 16 {
		return nil, fmt.Errorf("marking: %s needs %d label bits, have 16", net.Name(), l.bits)
	}
	return l, nil
}

// Bits returns the label width in bits.
func (l *Labeler) Bits() int { return l.bits }

// Exact reports whether the single-bit-difference neighbor property is
// guaranteed (all radixes are powers of two).
func (l *Labeler) Exact() bool { return l.exact }

// gray returns the reflected Gray code of v.
func gray(v int) int { return v ^ (v >> 1) }

// ungray inverts gray.
func ungray(g int) int {
	v := 0
	for ; g > 0; g >>= 1 {
		v ^= g
	}
	return v
}

// Label returns the node's Gray-coded label.
func (l *Labeler) Label(id topology.NodeID) uint16 {
	c := l.net.CoordOf(id)
	var out uint16
	for i, v := range c {
		out = out<<l.widths[i] | uint16(gray(v)&(1<<l.widths[i]-1))
	}
	return out
}

// Unlabel inverts Label; ok is false for bit patterns that do not
// correspond to a node (possible when a radix is not a power of two).
func (l *Labeler) Unlabel(label uint16) (topology.NodeID, bool) {
	c := make(topology.Coord, len(l.widths))
	shift := 0
	for i := len(l.widths) - 1; i >= 0; i-- {
		g := int(label>>shift) & (1<<l.widths[i] - 1)
		v := ungray(g)
		if v >= l.net.Dims()[i] {
			return topology.None, false
		}
		c[i] = v
		shift += l.widths[i]
	}
	return l.net.IndexOf(c), true
}
