package marking

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
)

// Ejector is the optional last hook of a marking scheme: the simulator
// invokes OnEject at the destination switch just before handing the
// packet to the victim's NIC. It exists for §6.2's "authentication
// function working on the switching layer".
type Ejector interface {
	OnEject(pk *packet.Packet)
}

// SealTag is the authenticated ejection record a sealing switch
// attaches: a truncated HMAC over the marking field and the header
// addresses.
type SealTag [8]byte

// Seal wraps a scheme with destination-switch sealing: at ejection the
// (trusted) destination switch MACs the marking field plus the header
// endpoints with a key it shares with the victim host. The victim can
// then hand the packet to any host-level audit pipeline knowing a
// compromised process on the host cannot fabricate marking-field
// "evidence" framing an innocent source — the forged tag will not
// verify. This is the cheapest §6.2 authentication point: one HMAC per
// *delivered* packet, nothing per hop, so the fabric's critical path is
// untouched (BenchmarkSealCost quantifies the ejection cost).
//
// Seal must not wrap schemes that use the packet's Wide side band
// (WidePPM); NewSeal rejects them.
type Seal struct {
	Inner Scheme
	key   []byte

	sealed uint64
}

// NewSeal wraps inner with the given key (≥ 16 bytes).
func NewSeal(inner Scheme, key []byte) (*Seal, error) {
	if inner == nil {
		inner = Nop{}
	}
	if _, usesWide := inner.(*WidePPM); usesWide {
		return nil, fmt.Errorf("marking: Seal cannot wrap %s (both use the wide side band)", inner.Name())
	}
	if len(key) < 16 {
		return nil, fmt.Errorf("marking: seal key must be >= 16 bytes, got %d", len(key))
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Seal{Inner: inner, key: k}, nil
}

func (s *Seal) Name() string { return s.Inner.Name() + "+seal" }

// Unwrap exposes the inner scheme.
func (s *Seal) Unwrap() Scheme { return s.Inner }

// Sealed returns the number of ejections sealed.
func (s *Seal) Sealed() uint64 { return s.sealed }

func (s *Seal) OnInject(pk *packet.Packet) { s.Inner.OnInject(pk) }

func (s *Seal) OnForward(cur, next topology.NodeID, pk *packet.Packet) {
	s.Inner.OnForward(cur, next, pk)
}

// OnEject computes and attaches the tag.
func (s *Seal) OnEject(pk *packet.Packet) {
	tag := s.mac(pk)
	pk.Wide = &tag
	s.sealed++
}

// Verify checks a delivered packet's tag; false means the tag is
// missing or the MF/header was modified after ejection.
func (s *Seal) Verify(pk *packet.Packet) bool {
	tag, ok := pk.Wide.(*SealTag)
	if !ok || tag == nil {
		return false
	}
	want := s.mac(pk)
	return hmac.Equal(tag[:], want[:])
}

func (s *Seal) mac(pk *packet.Packet) SealTag {
	h := hmac.New(sha256.New, s.key)
	var buf [14]byte
	binary.BigEndian.PutUint16(buf[0:2], pk.Hdr.ID)
	binary.BigEndian.PutUint32(buf[2:6], uint32(pk.Hdr.Src))
	binary.BigEndian.PutUint32(buf[6:10], uint32(pk.Hdr.Dst))
	binary.BigEndian.PutUint32(buf[10:14], uint32(pk.DstNode))
	h.Write(buf[:])
	var tag SealTag
	copy(tag[:], h.Sum(nil))
	return tag
}
