package marking

import "testing"

func TestTable1SimplePPMScalability(t *testing.T) {
	// Paper Table 1: simple PPM maxes out at an 8×8 mesh/torus and a
	// 2^6-node hypercube.
	if n, nodes := MaxMesh(KindSimplePPM); n != 8 || nodes != 64 {
		t.Errorf("simple PPM max mesh = %dx%d (%d nodes), want 8x8", n, n, nodes)
	}
	if n, nodes := MaxCube(KindSimplePPM); n != 6 || nodes != 64 {
		t.Errorf("simple PPM max cube = 2^%d (%d nodes), want 2^6", n, nodes)
	}
	// Exact agreement with the paper's claims.
	pn, _ := PaperMaxMesh(KindSimplePPM)
	if n, _ := MaxMesh(KindSimplePPM); n != pn {
		t.Errorf("exact %d disagrees with paper %d", n, pn)
	}
	pc, _ := PaperMaxCube(KindSimplePPM)
	if n, _ := MaxCube(KindSimplePPM); n != pc {
		t.Errorf("exact cube %d disagrees with paper %d", n, pc)
	}
	// Field arithmetic: the paper's worked example for 4×4 needs 11 bits.
	if got := MeshBits(KindSimplePPM, 4); got != 11 {
		t.Errorf("MeshBits(simple,4) = %d, want 11", got)
	}
	if got := MeshBits(KindSimplePPM, 8); got != 16 {
		t.Errorf("MeshBits(simple,8) = %d, want 16", got)
	}
	if got := MeshBits(KindSimplePPM, 16); got <= 16 {
		t.Errorf("MeshBits(simple,16) = %d, want > 16", got)
	}
}

func TestTable2BitDiffScalability(t *testing.T) {
	// Hypercube row agrees with the paper: 2^8 nodes.
	if n, nodes := MaxCube(KindBitDiffPPM); n != 8 || nodes != 256 {
		t.Errorf("bitdiff max cube = 2^%d (%d nodes), want 2^8", n, nodes)
	}
	// Mesh row: the paper prints 64×64, but its own formula
	// (log n² + loglog n² + log 2n ≤ 16) caps at 16×16 — our exact
	// layout confirms 16×16. The discrepancy is documented in
	// EXPERIMENTS.md; both figures are reported by cmd/tables.
	if n, _ := MaxMesh(KindBitDiffPPM); n != 16 {
		t.Errorf("bitdiff max mesh (exact) = %dx%d, want 16x16", n, n)
	}
	if got := MeshBits(KindBitDiffPPM, 16); got != 16 {
		t.Errorf("MeshBits(bitdiff,16) = %d, want 16", got)
	}
	if got := MeshBits(KindBitDiffPPM, 64); got <= 16 {
		t.Errorf("MeshBits(bitdiff,64) = %d: the paper's 64×64 claim would need ≤ 16", got)
	}
	if pn, pnodes := PaperMaxMesh(KindBitDiffPPM); pn != 64 || pnodes != 4096 {
		t.Errorf("paper claim encoding wrong: %d, %d", pn, pnodes)
	}
}

func TestTable3DDPMScalability(t *testing.T) {
	// Paper Table 3: 2·log n field, 128×128 mesh/torus (16384 nodes),
	// 16-cube hypercube (65536 nodes).
	if n, nodes := MaxMesh(KindDDPM); n != 128 || nodes != 16384 {
		t.Errorf("DDPM max mesh = %dx%d (%d nodes), want 128x128 (16384)", n, n, nodes)
	}
	if n, nodes := MaxCube(KindDDPM); n != 16 || nodes != 65536 {
		t.Errorf("DDPM max cube = 2^%d (%d nodes), want 2^16 (65536)", n, nodes)
	}
	if got := MeshBits(KindDDPM, 128); got != 16 {
		t.Errorf("MeshBits(ddpm,128) = %d, want 16", got)
	}
	if got := CubeBits(KindDDPM, 16); got != 16 {
		t.Errorf("CubeBits(ddpm,16) = %d, want 16", got)
	}
	widths, nodes := Mesh3DDDPMSplit()
	if widths[0]+widths[1]+widths[2] != 16 {
		t.Errorf("3-D split widths %v do not fill the MF", widths)
	}
	if nodes != 8192 {
		t.Errorf("3-D split supports %d nodes, want 8192 (paper)", nodes)
	}
}

func TestDDPMDominatesBaselines(t *testing.T) {
	// The whole point of Table 3: at every size the DDPM field is
	// narrower than both PPM layouts.
	for n := 2; n <= 128; n <<= 1 {
		d := MeshBits(KindDDPM, n)
		if s := MeshBits(KindSimplePPM, n); s < d {
			t.Errorf("n=%d: simple PPM %d < DDPM %d", n, s, d)
		}
		if b := MeshBits(KindBitDiffPPM, n); b < d {
			t.Errorf("n=%d: bitdiff %d < DDPM %d", n, b, d)
		}
	}
	for n := 2; n <= 16; n++ {
		d := CubeBits(KindDDPM, n)
		if s := CubeBits(KindSimplePPM, n); s < d {
			t.Errorf("cube n=%d: simple PPM %d < DDPM %d", n, s, d)
		}
		if b := CubeBits(KindBitDiffPPM, n); b < d {
			t.Errorf("cube n=%d: bitdiff %d < DDPM %d", n, b, d)
		}
	}
}

func TestSchemeKindStrings(t *testing.T) {
	for _, k := range []SchemeKind{KindSimplePPM, KindBitDiffPPM, KindDDPM} {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has bad string %q", int(k), k.String())
		}
	}
	if SchemeKind(99).String() != "unknown" {
		t.Error("unknown kind not labeled")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
	if ceilLog2(0) != 0 || ceilLog2(-5) != 0 {
		t.Error("ceilLog2 of non-positive must be 0")
	}
}
