package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

var sealKey = []byte("0123456789abcdef0123456789abcdef")

func TestSealRoundTrip(t *testing.T) {
	m := topology.NewMesh2D(4)
	inner, _ := NewDDPM(m)
	s, err := NewSeal(inner, sealKey)
	if err != nil {
		t.Fatal(err)
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	pk := packet.NewPacket(plan, 0, 5, packet.ProtoTCPSYN, 0)
	s.OnInject(pk)
	s.OnForward(0, 1, pk)
	s.OnForward(1, 5, pk)
	s.OnEject(pk)
	if !s.Verify(pk) {
		t.Fatal("fresh seal does not verify")
	}
	if s.Sealed() != 1 {
		t.Errorf("Sealed = %d", s.Sealed())
	}
	// Inner scheme behavior unchanged: DDPM still identifies.
	if got, ok := inner.IdentifySource(5, pk.Hdr.ID); !ok || got != 0 {
		t.Errorf("DDPM through seal identified %d", got)
	}
	if s.Name() != "ddpm+seal" || s.Unwrap() != Scheme(inner) {
		t.Error("wrapper surface wrong")
	}
}

func TestSealDetectsHostTampering(t *testing.T) {
	s, _ := NewSeal(Nop{}, sealKey)
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	pk := packet.NewPacket(plan, 2, 7, packet.ProtoTCPSYN, 0)
	pk.Hdr.ID = 0x1234
	s.OnEject(pk)
	if !s.Verify(pk) {
		t.Fatal("seal does not verify")
	}
	// A compromised host rewrites the MF to frame someone else.
	pk.Hdr.ID = 0x4321
	if s.Verify(pk) {
		t.Error("tampered MF verified")
	}
	pk.Hdr.ID = 0x1234
	pk.Hdr.Src = plan.AddrOf(9)
	if s.Verify(pk) {
		t.Error("tampered source address verified")
	}
}

func TestSealRejectsMissingOrForeignTag(t *testing.T) {
	s, _ := NewSeal(Nop{}, sealKey)
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	pk := packet.NewPacket(plan, 2, 7, packet.ProtoTCPSYN, 0)
	if s.Verify(pk) {
		t.Error("unsealed packet verified")
	}
	// A tag minted under a different key fails.
	other, _ := NewSeal(Nop{}, []byte("ffffffffffffffffffffffffffffffff"))
	other.OnEject(pk)
	if s.Verify(pk) {
		t.Error("foreign-key tag verified")
	}
}

func TestSealValidation(t *testing.T) {
	if _, err := NewSeal(Nop{}, []byte("short")); err == nil {
		t.Error("short key accepted")
	}
	w, _ := NewWidePPM(0.1, rng.NewStream(1))
	if _, err := NewSeal(w, sealKey); err == nil {
		t.Error("wide-band scheme accepted (side-band collision)")
	}
}

func BenchmarkSealCost(b *testing.B) {
	// The §6.2 number: cost of one ejection-time HMAC.
	s, _ := NewSeal(Nop{}, sealKey)
	plan := packet.NewAddrPlan(packet.DefaultBase, 64)
	pk := packet.NewPacket(plan, 2, 7, packet.ProtoTCPSYN, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnEject(pk)
	}
}
