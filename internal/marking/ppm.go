package marking

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// EdgeSample is the decoded content of one probabilistic edge-sampling
// mark: the edge (Start → End) at Dist hops upstream of the victim.
// For Dist == 0 the mark was written by the victim's upstream switch
// and End never got filled in (the destination switch ejects instead of
// forwarding), so End is meaningless and reconstruction uses Start
// alone — exactly Savage's "last edge" convention.
type EdgeSample struct {
	Start, End topology.NodeID
	Dist       int
	// EndValid reports whether a downstream switch filled the End slot.
	EndValid bool
}

// SimplePPM is the paper's §4.2 straightforward probabilistic edge
// sampling with the full node labels in the MF:
//
//	[ start label | end label | distance ]
//
// Each switch marks a forwarded packet with probability P (writing its
// own label into start and zeroing distance); otherwise, if distance is
// zero it writes its label into end, and it always increments distance
// (saturating). The layout fits 16 bits only for tiny networks —
// Table 1's point.
type SimplePPM struct {
	lab      *Labeler
	distBits int
	P        float64
	r        *rng.Stream
}

// NewSimplePPM errors when the layout exceeds the 16-bit MF (the
// Table 1 scalability boundary). p is the per-switch marking
// probability.
func NewSimplePPM(net topology.Network, p float64, r *rng.Stream) (*SimplePPM, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: PPM probability %v outside (0,1]", p)
	}
	lab, err := NewLabeler(net)
	if err != nil {
		return nil, err
	}
	s := &SimplePPM{lab: lab, distBits: ceilLog2(net.Diameter() + 1), P: p, r: r}
	if s.RequiredBits() > 16 {
		return nil, fmt.Errorf("marking: simple PPM on %s needs %d bits, MF has 16 (Table 1 limit)",
			net.Name(), s.RequiredBits())
	}
	return s, nil
}

// RequiredBits returns the exact MF bits of the layout:
// 2·(label bits) + distance bits.
func (s *SimplePPM) RequiredBits() int { return 2*s.lab.Bits() + s.distBits }

func (s *SimplePPM) Name() string { return "simple-ppm" }

// OnInject leaves the MF alone: classic PPM trusts whatever is in the
// Identification field, one of its documented weaknesses (an attacker
// can seed fake marks; the victim compensates with sample counts).
func (s *SimplePPM) OnInject(*packet.Packet) {}

func (s *SimplePPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	b := s.lab.Bits()
	distMask := uint16(1<<s.distBits - 1)
	if s.r.Float64() < s.P {
		// Mark: start := label(cur), distance := 0. The stale end field
		// is deliberately left as-is (Savage's algorithm): the next
		// switch overwrites it because distance is zero.
		start := s.lab.Label(cur)
		end := (pk.Hdr.ID >> s.distBits) & (1<<b - 1)
		pk.Hdr.ID = start<<(b+s.distBits) | end<<s.distBits | 0
		return
	}
	dist := pk.Hdr.ID & distMask
	if dist == 0 {
		// Fill the end slot with our label.
		start := pk.Hdr.ID >> (b + s.distBits)
		pk.Hdr.ID = start<<(b+s.distBits) | s.lab.Label(cur)<<s.distBits | 0
	}
	if dist < distMask { // saturate
		dist++
	}
	pk.Hdr.ID = pk.Hdr.ID&^distMask | dist
}

// DecodeMF splits a received MF into an EdgeSample. Unlabelable bit
// patterns (only possible with non-power-of-two radixes or unmarked
// attacker garbage) yield ok = false.
func (s *SimplePPM) DecodeMF(mf uint16) (EdgeSample, bool) {
	b := s.lab.Bits()
	start, okS := s.lab.Unlabel(mf >> (b + s.distBits) & (1<<b - 1))
	end, okE := s.lab.Unlabel(mf >> s.distBits & (1<<b - 1))
	dist := int(mf & (1<<s.distBits - 1))
	if !okS {
		return EdgeSample{}, false
	}
	es := EdgeSample{Start: start, Dist: dist}
	if dist > 0 && okE {
		es.End = end
		es.EndValid = true
	}
	return es, okE || dist == 0
}

// WidePPM performs the same edge sampling but records the sample
// losslessly in the packet's side band — the paper's IP-option
// alternative. It exists to measure PPM's convergence overhead
// (expected packets ≈ ln(d)/p(1−p)^{d−1}) at cluster-scale path lengths
// where no 16-bit layout fits.
type WidePPM struct {
	P float64
	r *rng.Stream
}

// NewWidePPM builds the idealized sampler.
func NewWidePPM(p float64, r *rng.Stream) (*WidePPM, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: PPM probability %v outside (0,1]", p)
	}
	return &WidePPM{P: p, r: r}, nil
}

func (w *WidePPM) Name() string { return "wide-ppm" }

func (w *WidePPM) OnInject(pk *packet.Packet) { pk.Wide = nil }

func (w *WidePPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	if w.r.Float64() < w.P {
		pk.Wide = &EdgeSample{Start: cur, Dist: 0}
		return
	}
	if es, ok := pk.Wide.(*EdgeSample); ok && es != nil {
		if es.Dist == 0 && !es.EndValid {
			es.End = cur
			es.EndValid = true
		}
		es.Dist++
	}
}

// Sample extracts the wide-band sample from a delivered packet, nil if
// no switch marked it.
func (w *WidePPM) Sample(pk *packet.Packet) *EdgeSample {
	es, _ := pk.Wide.(*EdgeSample)
	return es
}

// XORPPM is the §4.2 XOR variant: marks carry label(a) ⊕ label(b) for
// the sampled edge instead of both labels:
//
//	[ xor value | distance ]
//
// With Gray-coded labels neighboring nodes differ in one bit, so the
// XOR value is one-hot and, as the paper argues, reconstruction is
// hopelessly ambiguous: in an n×n mesh one value maps to ~n(n−1)/log n
// edges.
type XORPPM struct {
	lab      *Labeler
	distBits int
	P        float64
	r        *rng.Stream
}

// NewXORPPM builds the XOR sampler; the layout always fits (label bits
// + distance), the scheme's problem is ambiguity, not width.
func NewXORPPM(net topology.Network, p float64, r *rng.Stream) (*XORPPM, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: PPM probability %v outside (0,1]", p)
	}
	lab, err := NewLabeler(net)
	if err != nil {
		return nil, err
	}
	x := &XORPPM{lab: lab, distBits: ceilLog2(net.Diameter() + 1), P: p, r: r}
	if lab.Bits()+x.distBits > 16 {
		return nil, fmt.Errorf("marking: XOR PPM on %s needs %d bits", net.Name(), lab.Bits()+x.distBits)
	}
	return x, nil
}

func (x *XORPPM) Name() string { return "xor-ppm" }

func (x *XORPPM) OnInject(*packet.Packet) {}

func (x *XORPPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	distMask := uint16(1<<x.distBits - 1)
	if x.r.Float64() < x.P {
		pk.Hdr.ID = x.lab.Label(cur) << x.distBits
		return
	}
	dist := pk.Hdr.ID & distMask
	if dist == 0 {
		// XOR our label into the value field: value becomes a ⊕ b.
		val := pk.Hdr.ID >> x.distBits
		pk.Hdr.ID = (val ^ x.lab.Label(cur)) << x.distBits
	}
	if dist < distMask {
		dist++
	}
	pk.Hdr.ID = pk.Hdr.ID&^distMask | dist
}

// DecodeMF returns the XOR value and distance.
func (x *XORPPM) DecodeMF(mf uint16) (val uint16, dist int) {
	return mf >> x.distBits, int(mf & (1<<x.distBits - 1))
}

// Labeler exposes the label space for ambiguity analysis.
func (x *XORPPM) Labeler() *Labeler { return x.lab }

// BitDiffPPM is the §4.2 "bit difference position" variant (Table 2):
//
//	[ start label | diff position | distance ]
//
// The mark stores one full label plus the position of the single bit in
// which the downstream neighbor's label differs, removing the XOR
// scheme's ambiguity at the cost of a position field.
type BitDiffPPM struct {
	lab      *Labeler
	posBits  int
	distBits int
	P        float64
	r        *rng.Stream
}

// NewBitDiffPPM errors when the layout exceeds 16 bits (the Table 2
// boundary) or when the topology lacks the single-bit-difference label
// property (non-power-of-two radixes).
func NewBitDiffPPM(net topology.Network, p float64, r *rng.Stream) (*BitDiffPPM, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: PPM probability %v outside (0,1]", p)
	}
	lab, err := NewLabeler(net)
	if err != nil {
		return nil, err
	}
	if !lab.Exact() {
		return nil, fmt.Errorf("marking: bit-difference PPM requires power-of-two radixes on %s", net.Name())
	}
	b := &BitDiffPPM{
		lab:      lab,
		posBits:  ceilLog2(lab.Bits()),
		distBits: ceilLog2(net.Diameter() + 1),
		P:        p,
		r:        r,
	}
	if b.posBits == 0 {
		b.posBits = 1
	}
	if b.RequiredBits() > 16 {
		return nil, fmt.Errorf("marking: bit-difference PPM on %s needs %d bits, MF has 16 (Table 2 limit)",
			net.Name(), b.RequiredBits())
	}
	return b, nil
}

// RequiredBits returns label bits + position bits + distance bits.
func (b *BitDiffPPM) RequiredBits() int { return b.lab.Bits() + b.posBits + b.distBits }

func (b *BitDiffPPM) Name() string { return "bitdiff-ppm" }

func (b *BitDiffPPM) OnInject(*packet.Packet) {}

func (b *BitDiffPPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	distMask := uint16(1<<b.distBits - 1)
	if b.r.Float64() < b.P {
		pk.Hdr.ID = b.lab.Label(cur) << (b.posBits + b.distBits)
		return
	}
	dist := pk.Hdr.ID & distMask
	if dist == 0 {
		start := pk.Hdr.ID >> (b.posBits + b.distBits)
		diff := start ^ b.lab.Label(cur)
		pos := uint16(0)
		for d := diff; d > 1; d >>= 1 {
			pos++
		}
		pk.Hdr.ID = start<<(b.posBits+b.distBits) | pos<<b.distBits
	}
	if dist < distMask {
		dist++
	}
	pk.Hdr.ID = pk.Hdr.ID&^distMask | dist
}

// DecodeMF returns the sampled edge: Start from the stored label, End
// by flipping the stored bit position. The paper's example for
// Figure 3(a): 1110 receives (0001, 1, 3) meaning label 0001 with bit 1
// flipped → 0011, at distance 3.
func (b *BitDiffPPM) DecodeMF(mf uint16) (EdgeSample, bool) {
	startLbl := mf >> (b.posBits + b.distBits)
	pos := mf >> b.distBits & (1<<b.posBits - 1)
	dist := int(mf & (1<<b.distBits - 1))
	start, ok := b.lab.Unlabel(startLbl)
	if !ok {
		return EdgeSample{}, false
	}
	es := EdgeSample{Start: start, Dist: dist}
	if dist > 0 {
		end, okE := b.lab.Unlabel(startLbl ^ 1<<pos)
		if !okE {
			return es, false
		}
		es.End = end
		es.EndValid = true
	}
	return es, true
}
