package marking

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// AMS is the Song–Perrig Advanced Marking Scheme (AMS-I) the paper
// summarizes in §2: probabilistic single-node marking under the
// assumption that "a victim has a complete router map". A marking
// switch writes an h-bit hash of its own identity (no edge XOR, no end
// filling) with distance zero; every later switch only increments the
// distance. Because one sample per switch suffices — versus the 8
// hash fragments per edge that Savage's encoding needs — the victim
// converges with roughly an eighth of the packets, which is exactly the
// factor the paper quotes. The map is consulted at reconstruction time
// to resolve hash collisions by adjacency.
//
// MF layout: [ distance : 5 | hash fragment : HashBits ≤ 11 ].
type AMS struct {
	P        float64
	HashBits int
	r        *rng.Stream
}

// amsDistMax saturates the 5-bit distance field.
const amsDistMax = 31

// NewAMS builds the scheme; hashBits defaults to Song–Perrig's 11 when
// zero.
func NewAMS(p float64, hashBits int, r *rng.Stream) (*AMS, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: AMS probability %v outside (0,1]", p)
	}
	if hashBits == 0 {
		hashBits = 11
	}
	if hashBits < 1 || hashBits > 11 {
		return nil, fmt.Errorf("marking: AMS hash width %d outside [1,11]", hashBits)
	}
	return &AMS{P: p, HashBits: hashBits, r: r}, nil
}

func (a *AMS) Name() string { return "ams" }

// Hash returns the switch's h-bit identity hash.
func (a *AMS) Hash(id topology.NodeID) uint16 {
	return uint16(hashIndex(uint32(id))) & (1<<a.HashBits - 1)
}

func (a *AMS) OnInject(*packet.Packet) {}

func (a *AMS) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	if a.r.Float64() < a.P {
		pk.Hdr.ID = 0<<a.HashBits | a.Hash(cur)
		return
	}
	dist := int(pk.Hdr.ID >> a.HashBits)
	if dist < amsDistMax {
		dist++
	}
	pk.Hdr.ID = uint16(dist)<<a.HashBits | pk.Hdr.ID&(1<<a.HashBits-1)
}

// AMSSample is one decoded mark.
type AMSSample struct {
	Dist int
	Frag uint16
}

// DecodeMF splits a received MF.
func (a *AMS) DecodeMF(mf uint16) AMSSample {
	return AMSSample{Dist: int(mf >> a.HashBits), Frag: mf & (1<<a.HashBits - 1)}
}
