package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Non-power-of-two radixes are the delicate case for the wraparound
// codec: field arithmetic wraps mod 2^w while the victim reduces mod k,
// and the two only commute when the accumulated component never leaves
// the field range. CodecForDims gives each dimension ⌈log₂k⌉+1 bits
// plus spare headroom, so minimal routes (|v| ≤ ⌊k/2⌋) and boundedly
// misrouted routes stay exact. These tests pin that boundary.

func TestDDPMOddRadixTorusMinimalRouting(t *testing.T) {
	tr := topology.NewTorus2D(5)
	d, err := NewDDPM(tr)
	if err != nil {
		t.Fatal(err)
	}
	r := routing.NewRouter(tr, routing.NewMinimalAdaptive(tr))
	r.Sel = routing.RandomSelector{R: rng.NewStream(91)}
	stream := rng.NewStream(92)
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(stream.Intn(tr.NumNodes()))
		dst := topology.NodeID(stream.Intn(tr.NumNodes()))
		if src == dst {
			continue
		}
		path, err := r.Walk(src, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		pk := &packet.Packet{}
		pk.Hdr.ID = uint16(stream.Intn(1 << 16))
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		if got, ok := d.IdentifySource(dst, pk.Hdr.ID); !ok || got != src {
			t.Fatalf("odd-radix torus misidentified: got %d want %d", got, src)
		}
	}
}

func TestDDPMOddRadixTorusWithBoundedMisrouting(t *testing.T) {
	tr := topology.NewTorus(7, 9)
	d, err := NewDDPM(tr)
	if err != nil {
		t.Fatal(err)
	}
	r := routing.NewRouter(tr, routing.NewFullyAdaptiveMisroute(tr))
	r.Sel = routing.RandomSelector{R: rng.NewStream(93)}
	r.MisrouteBudget = 2
	stream := rng.NewStream(94)
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(stream.Intn(tr.NumNodes()))
		dst := topology.NodeID(stream.Intn(tr.NumNodes()))
		if src == dst {
			continue
		}
		path, err := r.Walk(src, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		pk := &packet.Packet{}
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		if got, ok := d.IdentifySource(dst, pk.Hdr.ID); !ok || got != src {
			t.Fatalf("misrouted odd-radix torus misidentified: got %d want %d (path %v)",
				got, src, path)
		}
	}
}

func TestDDPMOddRadixBreaksBeyondFieldRange(t *testing.T) {
	// Document the boundary: a pathological walk that accumulates a
	// component past the field range on a non-power-of-two radix
	// decodes incorrectly, because 2^w ≢ 0 (mod k). The simulator's
	// misroute budgets keep real routes inside the range; this test
	// certifies the failure mode exists exactly where theory says.
	tr := topology.NewTorus2D(5)
	d, _ := NewDDPM(tr)
	codec := d.Codec().(*SignedFieldCodec)
	lo, hi := codec.Range(0)
	span := hi - lo + 1 // field modulus 2^w
	if span%5 == 0 {
		t.Skip("field modulus divisible by radix; wraparound stays exact")
	}
	// March +1 around the ring until the raw sum exceeds the range.
	src := tr.IndexOf(topology.Coord{0, 0})
	cur := src
	pk := &packet.Packet{}
	d.OnInject(pk)
	steps := span + 3 // strictly past one field wrap
	for s := 0; s < steps; s++ {
		next := tr.Step(cur, 0, 1)
		d.OnForward(cur, next, pk)
		cur = next
	}
	got, ok := d.IdentifySource(cur, pk.Hdr.ID)
	if ok && got == src {
		t.Error("expected wraparound/mod-k mismatch past the field range, but identification succeeded")
	}
}
