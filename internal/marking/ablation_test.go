package marking

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestAddSatClampsAtExtremes(t *testing.T) {
	c, _ := NewSignedFieldCodec(4, 4) // fields hold [−8, 7]
	mf, _ := c.Encode(topology.Vector{7, -8})
	mf = c.AddSat(mf, topology.Vector{1, -1}) // both clamp
	got := c.Decode(mf)
	if !got.Equal(topology.Vector{7, -8}) {
		t.Errorf("clamped decode = %v", got)
	}
	// And it does not disturb in-range fields.
	mf = c.AddSat(mf, topology.Vector{-3, 2})
	if got := c.Decode(mf); !got.Equal(topology.Vector{4, -6}) {
		t.Errorf("decode = %v", got)
	}
}

func TestWrapBeatsSaturationOnLongTorusWalks(t *testing.T) {
	// The §6.2 ablation result: on a power-of-two torus, wraparound
	// accumulation keeps the DDPM invariant exact over arbitrarily long
	// walks, while saturating accumulation corrupts it as soon as any
	// field pins.
	tr := topology.NewTorus2D(16)
	c, err := CodecForDims(tr.Dims())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewStream(77)
	src := topology.NodeID(0)
	cur := src
	wrapMF, satMF := uint16(0), uint16(0)
	// March +1 in dimension 0 for 500 steps: 31+ wraps of the ring.
	for s := 0; s < 500; s++ {
		next := tr.Step(cur, 0, 1)
		d := topology.Displacement(tr, cur, next)
		wrapMF = c.Add(wrapMF, d)
		satMF = c.AddSat(satMF, d)
		cur = next
	}
	_ = r
	want := tr.CoordOf(cur).Sub(tr.CoordOf(src)).Mod(tr.Dims())
	if got := topology.Vector(c.Decode(wrapMF)).Mod(tr.Dims()); !got.Equal(want) {
		t.Errorf("wraparound decode %v, want %v", got, want)
	}
	if got := topology.Vector(c.Decode(satMF)).Mod(tr.Dims()); got.Equal(want) {
		t.Error("saturating accumulation unexpectedly survived 500 wrapping steps")
	}
}

func TestAddSatFineForMinimalMeshRoutes(t *testing.T) {
	// Within field range the two accumulators agree, so minimal mesh
	// routing could use either — the ablation's "when does it matter"
	// boundary.
	m := topology.NewMesh2D(8)
	c, _ := CodecForDims(m.Dims())
	r := rng.NewStream(78)
	for trial := 0; trial < 100; trial++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		dst := topology.NodeID(r.Intn(m.NumNodes()))
		cur := src
		wrapMF, satMF := uint16(0), uint16(0)
		for cur != dst {
			mins := topology.MinimalDims(m, cur, dst)
			mv := mins[r.Intn(len(mins))]
			next := m.Step(cur, mv.Dim, mv.Dir)
			d := topology.Displacement(m, cur, next)
			wrapMF = c.Add(wrapMF, d)
			satMF = c.AddSat(satMF, d)
			cur = next
		}
		if wrapMF != satMF {
			t.Fatalf("accumulators diverged on a minimal route: %04x vs %04x", wrapMF, satMF)
		}
	}
}

func TestAMSSchemeBasics(t *testing.T) {
	a, err := NewAMS(0.5, 8, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "ams" {
		t.Errorf("name = %q", a.Name())
	}
	if h := a.Hash(42); h >= 1<<8 {
		t.Errorf("hash %d exceeds 8 bits", h)
	}
	s := a.DecodeMF(uint16(3)<<8 | 0x5A)
	if s.Dist != 3 || s.Frag != 0x5A {
		t.Errorf("decode = %+v", s)
	}
}
