package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

func TestDPMWritesBitAtTTLPosition(t *testing.T) {
	d := NewDPM()
	pk := &packet.Packet{}
	pk.Hdr.TTL = 37 // position 37 mod 16 = 5
	sw := topology.NodeID(3)
	d.OnForward(sw, 0, pk)
	want := d.Bit(sw) << 5
	if pk.Hdr.ID != want {
		t.Errorf("MF = %016b, want %016b", pk.Hdr.ID, want)
	}
}

func TestDPMSequentialPositions(t *testing.T) {
	// The fabric decrements TTL per hop, so consecutive switches write
	// consecutive descending positions; we emulate the decrement here.
	d := NewDPM()
	d.UseIndexHash = false // paper's "use the node index for the hash value"
	pk := &packet.Packet{}
	pk.Hdr.TTL = 3
	switches := []topology.NodeID{1, 3, 2, 6} // last bits 1,1,0,0
	for _, sw := range switches {
		d.OnForward(sw, 0, pk)
		pk.Hdr.TTL--
	}
	// Positions 3,2,1,0 carry bits 1,1,0,0 → MF = 0b1100.
	if pk.Hdr.ID != 0b1100 {
		t.Errorf("MF = %04b, want 1100", pk.Hdr.ID)
	}
}

func TestDPMFigure3aSignatures(t *testing.T) {
	// Paper §4.3: with node-index hashing, victim 1110 receives the
	// bit sequence 0011 from 0001's path and 110 from 0101's path
	// (written most-recent-first in our descending layout).
	m := topology.NewMesh2D(4)
	l, _ := NewLabeler(m)
	d := NewDPM()
	d.UseIndexHash = false

	run := func(coords []topology.Coord, ttl0 uint8) uint16 {
		pk := &packet.Packet{}
		pk.Hdr.TTL = ttl0
		for i := 0; i+1 < len(coords); i++ {
			// The paper marks with the label's last bit.
			sw := m.IndexOf(coords[i])
			bit := l.Label(sw) & 1
			pos := uint(pk.Hdr.TTL % 16)
			pk.Hdr.ID = pk.Hdr.ID&^(1<<pos) | bit<<pos
			pk.Hdr.TTL--
		}
		return pk.Hdr.ID
	}

	// Path 1: labels 0001,0011,0010,0110 → last bits 1,1,0,0.
	sig1 := run([]topology.Coord{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}, 3)
	if sig1 != 0b1100 {
		t.Errorf("path-1 signature = %04b, want 1100", sig1)
	}
	// Path 2: labels 0101,0111,0110 → last bits 1,1,0.
	sig2 := run([]topology.Coord{{1, 1}, {1, 2}, {1, 3}, {2, 3}}, 2)
	if sig2 != 0b110 {
		t.Errorf("path-2 signature = %03b, want 110", sig2)
	}
}

func TestDPMOverwriteBeyond16Hops(t *testing.T) {
	// Past 16 hops the positions wrap and earlier bits are overwritten:
	// the paper's "after the 16th hop, the MF starts to lose information".
	d := NewDPM()
	pk := &packet.Packet{}
	pk.Hdr.TTL = 64

	// First 16 switches write a known pattern.
	var first16 uint16
	for i := 0; i < 16; i++ {
		sw := topology.NodeID(i)
		d.OnForward(sw, 0, pk)
		pk.Hdr.TTL--
	}
	first16 = pk.Hdr.ID

	// A 17th switch with the opposite bit of the first position
	// overwrites it.
	pos0 := uint(64 % 16)
	var flip topology.NodeID
	for cand := topology.NodeID(100); ; cand++ {
		if d.Bit(cand) != first16>>pos0&1 {
			flip = cand
			break
		}
	}
	d.OnForward(flip, 0, pk)
	if pk.Hdr.ID == first16 {
		t.Error("17th hop did not overwrite the first mark")
	}
	if (pk.Hdr.ID^first16)&^(1<<pos0) != 0 {
		t.Error("17th hop disturbed bits other than the wrapped position")
	}
}

func TestDPMSamePathSameSignature(t *testing.T) {
	d := NewDPM()
	run := func() uint16 {
		pk := &packet.Packet{}
		pk.Hdr.TTL = packet.DefaultTTL
		for _, sw := range []topology.NodeID{9, 4, 11, 6, 2} {
			d.OnForward(sw, 0, pk)
			pk.Hdr.TTL--
		}
		return d.Signature(pk.Hdr.ID)
	}
	if run() != run() {
		t.Error("same path produced different signatures")
	}
}

func TestDPMNeighborBitCollisionRate(t *testing.T) {
	// The paper: "On an average, two out of four neighbors in the 2-D
	// mesh have the same last bit" — the root of DPM's ambiguity. Check
	// the hash-bit collision rate over all mesh links is near 1/2.
	m := topology.NewMesh2D(16)
	d := NewDPM()
	same, total := 0, 0
	for _, link := range topology.Links(m) {
		if link.From < link.To {
			total++
			if d.Bit(link.From) == d.Bit(link.To) {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("neighbor bit collision rate = %.3f, want ≈ 0.5", frac)
	}
}
