package marking

import (
	"testing"

	"repro/internal/topology"
)

// FuzzSignedFieldCodec checks decode/encode stability for every 16-bit
// pattern and width split: Decode never panics, and Encode(Decode(mf))
// reproduces mf exactly (every pattern is a valid packed vector).
func FuzzSignedFieldCodec(f *testing.F) {
	f.Add(uint16(0), uint8(8))
	f.Add(uint16(0xFFFF), uint8(5))
	f.Add(uint16(0xA5A5), uint8(3))
	f.Fuzz(func(t *testing.T, mf uint16, w uint8) {
		w0 := 2 + int(w)%13 // first field width in [2,14]
		w1 := 16 - w0
		if w1 < 2 {
			w1 = 2
			w0 = 14
		}
		c, err := NewSignedFieldCodec(w0, w1)
		if err != nil {
			t.Fatal(err)
		}
		v := c.Decode(mf)
		back, err := c.Encode(v)
		if err != nil {
			t.Fatalf("decode produced unencodable vector %v: %v", v, err)
		}
		if back != mf {
			t.Fatalf("round trip %04x -> %v -> %04x", mf, v, back)
		}
	})
}

// FuzzDDPMIdentify checks the victim decode never panics and never
// returns an out-of-range node for arbitrary marking fields.
func FuzzDDPMIdentify(f *testing.F) {
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(0xFFFF), uint8(63))
	f.Fuzz(func(t *testing.T, mf uint16, dstRaw uint8) {
		m := topology.NewMesh2D(8)
		d, err := NewDDPM(m)
		if err != nil {
			t.Fatal(err)
		}
		dst := topology.NodeID(int(dstRaw) % m.NumNodes())
		src, ok := d.IdentifySource(dst, mf)
		if ok && (src < 0 || int(src) >= m.NumNodes()) {
			t.Fatalf("identified out-of-range node %d", src)
		}
		// On a torus every field decodes to some node.
		tr := topology.NewTorus2D(8)
		dt, _ := NewDDPM(tr)
		if src, ok := dt.IdentifySource(dst, mf); !ok || int(src) >= tr.NumNodes() {
			t.Fatalf("torus decode failed: %d %v", src, ok)
		}
	})
}
