package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

// FuzzSignedFieldCodec checks decode/encode stability for every 16-bit
// pattern and width split: Decode never panics, and Encode(Decode(mf))
// reproduces mf exactly (every pattern is a valid packed vector).
func FuzzSignedFieldCodec(f *testing.F) {
	f.Add(uint16(0), uint8(8))
	f.Add(uint16(0xFFFF), uint8(5))
	f.Add(uint16(0xA5A5), uint8(3))
	f.Fuzz(func(t *testing.T, mf uint16, w uint8) {
		w0 := 2 + int(w)%13 // first field width in [2,14]
		w1 := 16 - w0
		if w1 < 2 {
			w1 = 2
			w0 = 14
		}
		c, err := NewSignedFieldCodec(w0, w1)
		if err != nil {
			t.Fatal(err)
		}
		v := c.Decode(mf)
		back, err := c.Encode(v)
		if err != nil {
			t.Fatalf("decode produced unencodable vector %v: %v", v, err)
		}
		if back != mf {
			t.Fatalf("round trip %04x -> %v -> %04x", mf, v, back)
		}
	})
}

// FuzzDDPMMarkIdentify is the full Figure 4 round trip: walk a packet
// hop by hop from src to dst through OnInject/OnForward on a mesh, a
// torus and a hypercube, then check the victim recovers exactly src
// from the accumulated MF — for every (src, dst) pair and an arbitrary
// attacker-preloaded Identification field (which OnInject must erase).
func FuzzDDPMMarkIdentify(f *testing.F) {
	f.Add(uint8(0), uint8(63), uint16(0))
	f.Add(uint8(63), uint8(0), uint16(0xFFFF))
	f.Add(uint8(9), uint8(9), uint16(0xA5A5)) // src == dst: zero-hop walk
	f.Add(uint8(5), uint8(60), uint16(0x8001))
	nets := []topology.Network{
		topology.NewMesh2D(8),
		topology.NewTorus2D(8),
		topology.NewHypercube(6),
	}
	f.Fuzz(func(t *testing.T, srcRaw, dstRaw uint8, preload uint16) {
		for _, net := range nets {
			d, err := NewDDPM(net)
			if err != nil {
				t.Fatal(err)
			}
			src := topology.NodeID(int(srcRaw) % net.NumNodes())
			dst := topology.NodeID(int(dstRaw) % net.NumNodes())
			var pk packet.Packet
			pk.Hdr.ID = preload // attacker-chosen MF, zeroed on inject
			d.OnInject(&pk)
			for cur := src; cur != dst; {
				next := stepToward(net, cur, dst)
				d.OnForward(cur, next, &pk)
				cur = next
			}
			got, ok := d.IdentifySource(dst, pk.Hdr.ID)
			if !ok || got != src {
				t.Fatalf("%s: src %d -> dst %d: identified %d (ok=%v) from MF %04x",
					net.Name(), src, dst, got, ok, pk.Hdr.ID)
			}
		}
	})
}

// stepToward returns a neighbor of cur one minimal hop closer to dst:
// fix coordinates dimension by dimension, taking the shorter wrap
// direction on a torus (hypercube dims have k=2, where ±1 coincide).
func stepToward(net topology.Network, cur, dst topology.NodeID) topology.NodeID {
	cc, dc := net.CoordOf(cur), net.CoordOf(dst)
	dims := net.Dims()
	next := make(topology.Coord, len(cc))
	copy(next, cc)
	for i := range cc {
		if cc[i] == dc[i] {
			continue
		}
		step := 1
		if net.Wraparound() {
			k := dims[i]
			if ((dc[i]-cc[i])%k+k)%k > k/2 {
				step = -1
			}
		} else if dc[i] < cc[i] {
			step = -1
		}
		next[i] = ((cc[i]+step)%dims[i] + dims[i]) % dims[i]
		return net.IndexOf(next)
	}
	return dst
}

// FuzzDDPMIdentify checks the victim decode never panics and never
// returns an out-of-range node for arbitrary marking fields.
func FuzzDDPMIdentify(f *testing.F) {
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(0xFFFF), uint8(63))
	f.Fuzz(func(t *testing.T, mf uint16, dstRaw uint8) {
		m := topology.NewMesh2D(8)
		d, err := NewDDPM(m)
		if err != nil {
			t.Fatal(err)
		}
		dst := topology.NodeID(int(dstRaw) % m.NumNodes())
		src, ok := d.IdentifySource(dst, mf)
		if ok && (src < 0 || int(src) >= m.NumNodes()) {
			t.Fatalf("identified out-of-range node %d", src)
		}
		// On a torus every field decodes to some node.
		tr := topology.NewTorus2D(8)
		dt, _ := NewDDPM(tr)
		if src, ok := dt.IdentifySource(dst, mf); !ok || int(src) >= tr.NumNodes() {
			t.Fatalf("torus decode failed: %d %v", src, ok)
		}
	})
}
