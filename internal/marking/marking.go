// Package marking implements every packet-marking traceback scheme the
// paper analyzes for direct networks, plus the paper's contribution:
//
//   - SimplePPM — probabilistic edge sampling with two full node
//     indexes and a distance field in the MF (§4.2, Table 1)
//   - XORPPM — edge sampling that XORs the neighbor indexes (§4.2)
//   - BitDiffPPM — one index + bit-difference position + distance
//     (§4.2, Table 2)
//   - WidePPM — edge sampling in an unbounded side-band (the IP-option
//     variant the paper sketches and rejects; used to study PPM
//     convergence independent of encoding limits)
//   - FragmentPPM — Savage-style hashed edge fragments (§2)
//   - DPM — deterministic one-bit-per-hop path signatures written at
//     position TTL mod 16 (§4.3)
//   - DDPM — Deterministic Distance Packet Marking (§5, Figure 4),
//     the paper's scheme: each switch adds the per-hop coordinate
//     displacement into the MF; the victim recovers the source from a
//     single packet regardless of the route taken.
//
// All schemes write only the 16-bit IP Identification field (the
// Marking Field, MF) unless explicitly documented as "wide".
package marking

import (
	"repro/internal/packet"
	"repro/internal/topology"
)

// Scheme is the switch-side marking contract. The network simulator
// invokes OnInject exactly once, at the source switch, when the packet
// enters from its compute node; and OnForward at every switch
// (including the source switch) immediately after the routing function
// commits the next hop — the Figure 4 ordering (Routing() first, then
// Δ := Y − X, V' := V + Δ, Store_MF). The final ejection hop from the
// destination switch to its compute node is not a switch-to-switch
// forward and is not marked.
//
// Schemes must not inspect simulator-only ground truth (TrueSrc,
// SrcNode, Spoofed); they may read and write only the header.
type Scheme interface {
	Name() string
	OnInject(pk *packet.Packet)
	OnForward(cur, next topology.NodeID, pk *packet.Packet)
}

// Nop is the no-marking baseline: the fabric forwards packets
// untouched, leaving the victim only the (spoofable) source address.
type Nop struct{}

func (Nop) Name() string                                               { return "none" }
func (Nop) OnInject(*packet.Packet)                                    {}
func (Nop) OnForward(topology.NodeID, topology.NodeID, *packet.Packet) {}

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1: the number of bits needed to
// index n distinct values.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// hashIndex is the switch-index hash used by DPM and FragmentPPM:
// a 32-bit integer mix (Murmur3 finalizer) — cheap enough for a switch
// data path, well distributed.
func hashIndex(v uint32) uint32 {
	v ^= v >> 16
	v *= 0x85ebca6b
	v ^= v >> 13
	v *= 0xc2b2ae35
	v ^= v >> 16
	return v
}

// hashEdge hashes a directed edge (a, b) into 32 bits.
func hashEdge(a, b topology.NodeID) uint32 {
	return hashIndex(uint32(a)*0x9e3779b9 + hashIndex(uint32(b)))
}
