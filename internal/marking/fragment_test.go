package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestIdentityBlockFragments(t *testing.T) {
	b := IdentityBlock(42)
	if uint32(b) != 42 {
		t.Errorf("low half = %d, want 42", uint32(b))
	}
	// Reassemble from fragments.
	var re uint64
	for o := 0; o < FragmentCount; o++ {
		re |= uint64(Fragment(b, o)) << (8 * o)
	}
	if re != b {
		t.Error("fragments do not reassemble the block")
	}
}

func TestVerifyBlock(t *testing.T) {
	b := IdentityBlock(7)
	id, ok := VerifyBlock(b, 100)
	if !ok || id != 7 {
		t.Errorf("VerifyBlock = %d, %v", id, ok)
	}
	if _, ok := VerifyBlock(b^1<<40, 100); ok {
		t.Error("corrupted block verified")
	}
	if _, ok := VerifyBlock(IdentityBlock(200), 100); ok {
		t.Error("out-of-range node verified")
	}
}

func TestFragmentPPMMarkAndXor(t *testing.T) {
	f, err := NewFragmentPPM(1.0, rng.NewStream(8))
	if err != nil {
		t.Fatal(err)
	}
	passer, _ := NewFragmentPPM(1e-12, rng.NewStream(9))
	a, b := topology.NodeID(10), topology.NodeID(20)
	pk := &packet.Packet{}
	f.OnForward(a, b, pk) // mark at a, random offset
	s0 := f.DecodeMF(pk.Hdr.ID)
	if s0.Dist != 0 {
		t.Fatalf("fresh mark dist = %d", s0.Dist)
	}
	if s0.Frag != Fragment(IdentityBlock(a), s0.Offset) {
		t.Error("mark fragment wrong")
	}
	passer.OnForward(b, 30, pk) // b XORs its fragment, dist -> 1
	s1 := f.DecodeMF(pk.Hdr.ID)
	if s1.Dist != 1 || s1.Offset != s0.Offset {
		t.Fatalf("after pass: %+v", s1)
	}
	want := Fragment(IdentityBlock(a), s0.Offset) ^ Fragment(IdentityBlock(b), s0.Offset)
	if s1.Frag != want {
		t.Errorf("edge fragment = %#02x, want %#02x", s1.Frag, want)
	}
	// Further switches only bump distance.
	passer.OnForward(30, 40, pk)
	s2 := f.DecodeMF(pk.Hdr.ID)
	if s2.Dist != 2 || s2.Frag != s1.Frag {
		t.Errorf("after second pass: %+v", s2)
	}
}

func TestFragmentPPMDistanceSaturates(t *testing.T) {
	passer, _ := NewFragmentPPM(1e-12, rng.NewStream(10))
	pk := &packet.Packet{}
	pk.Hdr.ID = 1<<8 | 5 // offset 0, dist 1, frag 5: past the XOR stage
	for i := 0; i < 100; i++ {
		passer.OnForward(topology.NodeID(i), 0, pk)
	}
	if s := passer.DecodeMF(pk.Hdr.ID); s.Dist != fragDistMax {
		t.Errorf("dist = %d, want %d", s.Dist, fragDistMax)
	}
}

func TestFragmentPPMOffsetsCoverAll(t *testing.T) {
	f, _ := NewFragmentPPM(1.0, rng.NewStream(11))
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		pk := &packet.Packet{}
		f.OnForward(1, 2, pk)
		seen[f.DecodeMF(pk.Hdr.ID).Offset] = true
	}
	if len(seen) != FragmentCount {
		t.Errorf("offsets seen = %d, want %d", len(seen), FragmentCount)
	}
}

func TestFragmentPPMBadProbability(t *testing.T) {
	if _, err := NewFragmentPPM(0, nil); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := NewFragmentPPM(1.5, nil); err == nil {
		t.Error("P=1.5 accepted")
	}
}
