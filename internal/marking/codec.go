package marking

import (
	"fmt"

	"repro/internal/topology"
)

// VectorCodec packs a per-dimension signed distance vector into the
// 16-bit Marking Field and supports the in-place per-hop accumulation a
// switch performs (V' := V + Δ without ever unpacking the whole
// vector — each dimension's field is updated independently, which is
// what makes the hardware cost "only simple addition", §6.2).
type VectorCodec interface {
	// Bits returns the total MF bits the codec uses (≤ 16).
	Bits() int

	// Dims returns the number of vector dimensions.
	Dims() int

	// Encode packs v. It returns an error if any component is outside
	// the representable range of its field.
	Encode(v topology.Vector) (uint16, error)

	// Decode unpacks an MF into a vector. Every 16-bit value decodes
	// (fields wrap in two's complement), so Decode cannot fail.
	Decode(mf uint16) topology.Vector

	// Add returns the MF after accumulating delta into each field with
	// wraparound two's-complement arithmetic — the switch's per-hop op.
	Add(mf uint16, delta topology.Vector) uint16
}

// SignedFieldCodec lays out one two's-complement field per dimension,
// least-significant field = last dimension. The paper's layouts:
//
//	2-D mesh/torus:  widths {8, 8}   → up to 128 nodes per dimension
//	3-D mesh/torus:  widths {5, 5, 6} → the paper's 8192-node split
//
// A field of width w represents [−2^{w−1}, 2^{w−1}−1]. Arithmetic wraps
// mod 2^w, so the DDPM invariant decode(Σ Δ) ≡ D − S (mod k) holds
// exactly when either (a) the accumulated component never leaves the
// field range (true for minimal and boundedly-misrouted routing when
// k ≤ 2^{w−1}), or (b) the radix divides 2^w (power-of-two radixes),
// where wraparound commutes with the victim's mod-k reduction.
type SignedFieldCodec struct {
	widths []int
	shifts []int
	bits   int
}

// NewSignedFieldCodec builds a codec from per-dimension field widths.
// Total width must not exceed 16 and every field needs ≥ 2 bits (sign
// plus at least one magnitude bit).
func NewSignedFieldCodec(widths ...int) (*SignedFieldCodec, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("marking: codec needs at least one field")
	}
	total := 0
	for i, w := range widths {
		if w < 2 {
			return nil, fmt.Errorf("marking: field %d width %d < 2", i, w)
		}
		total += w
	}
	if total > 16 {
		return nil, fmt.Errorf("marking: fields need %d bits, MF has 16", total)
	}
	c := &SignedFieldCodec{widths: append([]int(nil), widths...), bits: total}
	c.shifts = make([]int, len(widths))
	shift := 0
	for i := len(widths) - 1; i >= 0; i-- {
		c.shifts[i] = shift
		shift += widths[i]
	}
	return c, nil
}

// CodecForDims chooses field widths for the given topology radixes:
// each dimension gets ⌈log₂ k⌉+1 bits (sign bit plus enough magnitude
// for distances in (−k, k)), then spare MF bits are distributed to the
// widest dimensions for extra misroute headroom. Errors if 16 bits
// cannot cover the topology — the Table 3 scalability boundary.
func CodecForDims(dims []int) (*SignedFieldCodec, error) {
	widths := make([]int, len(dims))
	total := 0
	for i, k := range dims {
		widths[i] = ceilLog2(k) + 1
		if widths[i] < 2 {
			widths[i] = 2
		}
		total += widths[i]
	}
	if total > 16 {
		return nil, fmt.Errorf("marking: dims %v need %d MF bits, have 16 (beyond DDPM scalability)", dims, total)
	}
	// Hand out spare bits round-robin to the largest radixes.
	for spare := 16 - total; spare > 0; spare-- {
		best := 0
		for i := 1; i < len(dims); i++ {
			if dims[i] > dims[best] || (dims[i] == dims[best] && widths[i] < widths[best]) {
				best = i
			}
		}
		// Prefer the widest radix with the narrowest current field.
		for i := range dims {
			if dims[i] == dims[best] && widths[i] < widths[best] {
				best = i
			}
		}
		widths[best]++
	}
	return NewSignedFieldCodec(widths...)
}

func (c *SignedFieldCodec) Bits() int { return c.bits }
func (c *SignedFieldCodec) Dims() int { return len(c.widths) }

// Widths returns a copy of the per-dimension field widths.
func (c *SignedFieldCodec) Widths() []int { return append([]int(nil), c.widths...) }

// Range returns the representable interval [min, max] of dimension i.
func (c *SignedFieldCodec) Range(i int) (min, max int) {
	w := c.widths[i]
	return -(1 << (w - 1)), 1<<(w-1) - 1
}

func (c *SignedFieldCodec) Encode(v topology.Vector) (uint16, error) {
	if len(v) != len(c.widths) {
		return 0, fmt.Errorf("marking: vector %v has %d dims, codec has %d", v, len(v), len(c.widths))
	}
	var mf uint16
	for i, x := range v {
		lo, hi := c.Range(i)
		if x < lo || x > hi {
			return 0, fmt.Errorf("marking: component %d = %d outside field range [%d,%d]", i, x, lo, hi)
		}
		mask := uint16(1<<c.widths[i] - 1)
		mf |= (uint16(x) & mask) << c.shifts[i]
	}
	return mf, nil
}

func (c *SignedFieldCodec) Decode(mf uint16) topology.Vector {
	v := make(topology.Vector, len(c.widths))
	for i, w := range c.widths {
		raw := int(mf>>c.shifts[i]) & (1<<w - 1)
		if raw >= 1<<(w-1) { // sign extend
			raw -= 1 << w
		}
		v[i] = raw
	}
	return v
}

func (c *SignedFieldCodec) Add(mf uint16, delta topology.Vector) uint16 {
	if len(delta) != len(c.widths) {
		panic(fmt.Sprintf("marking: delta %v has %d dims, codec has %d", delta, len(delta), len(c.widths)))
	}
	for i, d := range delta {
		if d == 0 {
			continue
		}
		w := c.widths[i]
		mask := uint16(1<<w-1) << c.shifts[i]
		field := mf & mask
		sum := (field + (uint16(d) << c.shifts[i] & mask)) & mask
		mf = mf&^mask | sum
	}
	return mf
}

// AddSat is the DESIGN.md §6.2 ablation alternative: per-field
// accumulation that CLAMPS at the representable extremes instead of
// wrapping. Saturation looks safer but silently corrupts long
// accumulations — once a field pins at ±max, the telescoping invariant
// is gone even after the walk returns toward the origin, whereas
// two's-complement wraparound stays exact whenever the radix divides
// the field modulus. The benchmark suite compares both; DDPM uses Add.
func (c *SignedFieldCodec) AddSat(mf uint16, delta topology.Vector) uint16 {
	if len(delta) != len(c.widths) {
		panic(fmt.Sprintf("marking: delta %v has %d dims, codec has %d", delta, len(delta), len(c.widths)))
	}
	v := c.Decode(mf)
	for i, d := range delta {
		lo, hi := c.Range(i)
		nv := v[i] + d
		if nv < lo {
			nv = lo
		}
		if nv > hi {
			nv = hi
		}
		v[i] = nv
	}
	out, err := c.Encode(v)
	if err != nil {
		panic("marking: AddSat produced out-of-range value") // unreachable: clamped
	}
	return out
}

// CubeCodec is the hypercube layout: the whole MF is a bit vector, one
// bit per dimension; the per-hop op is an XOR of the flipped
// dimension's bit (Figure 4's hypercube variant). Dimension 0 occupies
// the most significant used bit, mirroring topology.Hypercube addresses.
type CubeCodec struct {
	n int
}

// NewCubeCodec builds a codec for an n-cube, n ≤ 16 (Table 3: a 16-cube
// — 65536 nodes — saturates the MF).
func NewCubeCodec(n int) (*CubeCodec, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("marking: hypercube dimension %d outside [1,16]", n)
	}
	return &CubeCodec{n: n}, nil
}

func (c *CubeCodec) Bits() int { return c.n }
func (c *CubeCodec) Dims() int { return c.n }

func (c *CubeCodec) Encode(v topology.Vector) (uint16, error) {
	if len(v) != c.n {
		return 0, fmt.Errorf("marking: vector %v has %d dims, codec has %d", v, len(v), c.n)
	}
	var mf uint16
	for i, x := range v {
		switch x {
		case 0:
		case 1:
			mf |= 1 << (c.n - 1 - i)
		default:
			return 0, fmt.Errorf("marking: hypercube component %d = %d not in {0,1}", i, x)
		}
	}
	return mf, nil
}

func (c *CubeCodec) Decode(mf uint16) topology.Vector {
	v := make(topology.Vector, c.n)
	for i := 0; i < c.n; i++ {
		v[i] = int(mf>>(c.n-1-i)) & 1
	}
	return v
}

// Add XORs each nonzero delta component's bit; in the hypercube every
// per-hop displacement is ±1 in exactly one dimension and XOR is its
// own inverse, so addition and subtraction coincide (paper: "The only
// difference is that it uses XOR rather than addition and subtraction").
func (c *CubeCodec) Add(mf uint16, delta topology.Vector) uint16 {
	if len(delta) != c.n {
		panic(fmt.Sprintf("marking: delta %v has %d dims, codec has %d", delta, len(delta), c.n))
	}
	for i, d := range delta {
		if d != 0 {
			mf ^= 1 << (c.n - 1 - i)
		}
	}
	return mf
}
