package marking

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// FragmentPPM is the Savage-style compressed edge-fragment encoding the
// paper summarizes in §2 ("an encoding scheme which hashes IP addresses
// and writes a fraction of it"): each switch's identity is expanded
// into a 64-bit block — the 32-bit index concatenated with a 32-bit
// verification hash — split into 8 byte-wide fragments. The MF layout
// is Savage's exact proposal:
//
//	[ offset : 3 | distance : 5 | fragment : 8 ]
//
// On a mark the switch picks a random offset and writes its own
// fragment with distance zero; the next switch XORs its fragment at the
// same offset (distance still zero), producing an edge fragment
// frag(a) ⊕ frag(b); every switch increments distance (saturating at
// 31). The victim reconstructs upstream node blocks level by level,
// XORing out the known downstream fragment and checking the hash half —
// which costs k·ln(kd)/p(1−p)^{d−1} expected packets (§2) because all 8
// offsets of every edge must be collected.
type FragmentPPM struct {
	P float64
	r *rng.Stream
}

// FragmentCount is the number of fragments per identity block (k in
// Savage's analysis).
const FragmentCount = 8

// fragDistMax is the saturation value of the 5-bit distance field.
const fragDistMax = 31

// NewFragmentPPM builds the sampler.
func NewFragmentPPM(p float64, r *rng.Stream) (*FragmentPPM, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("marking: PPM probability %v outside (0,1]", p)
	}
	return &FragmentPPM{P: p, r: r}, nil
}

func (f *FragmentPPM) Name() string { return "fragment-ppm" }

func (f *FragmentPPM) OnInject(*packet.Packet) {}

// IdentityBlock expands a switch index into its 64-bit block:
// high 32 bits verification hash, low 32 bits the index itself.
func IdentityBlock(id topology.NodeID) uint64 {
	return uint64(hashIndex(uint32(id)))<<32 | uint64(uint32(id))
}

// Fragment extracts byte o (0 = least significant) of the block.
func Fragment(block uint64, o int) uint8 {
	return uint8(block >> (8 * o))
}

func (f *FragmentPPM) OnForward(cur, _ topology.NodeID, pk *packet.Packet) {
	if f.r.Float64() < f.P {
		o := f.r.Intn(FragmentCount)
		frag := Fragment(IdentityBlock(cur), o)
		pk.Hdr.ID = uint16(o)<<13 | 0<<8 | uint16(frag)
		return
	}
	o := int(pk.Hdr.ID >> 13)
	dist := int(pk.Hdr.ID >> 8 & 0x1F)
	frag := uint8(pk.Hdr.ID)
	if dist == 0 {
		frag ^= Fragment(IdentityBlock(cur), o)
	}
	if dist < fragDistMax {
		dist++
	}
	pk.Hdr.ID = uint16(o)<<13 | uint16(dist)<<8 | uint16(frag)
}

// FragmentSample is a decoded fragment mark.
type FragmentSample struct {
	Offset int
	Dist   int
	Frag   uint8
}

// DecodeMF splits a received MF.
func (f *FragmentPPM) DecodeMF(mf uint16) FragmentSample {
	return FragmentSample{
		Offset: int(mf >> 13),
		Dist:   int(mf >> 8 & 0x1F),
		Frag:   uint8(mf),
	}
}

// VerifyBlock checks a candidate reconstructed block's hash half
// against its index half and that the index names a real node.
func VerifyBlock(block uint64, numNodes int) (topology.NodeID, bool) {
	idx := uint32(block)
	if uint64(hashIndex(idx))<<32|uint64(idx) != block {
		return topology.None, false
	}
	if int(idx) >= numNodes {
		return topology.None, false
	}
	return topology.NodeID(idx), true
}
