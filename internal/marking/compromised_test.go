package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

func TestCompromisedCorruptsOnlyAtBadSwitch(t *testing.T) {
	m := topology.NewMesh2D(4)
	inner, _ := NewDDPM(m)
	c := NewCompromised(inner, 5, nil)
	if c.Name() != "ddpm+compromised" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Unwrap() != Scheme(inner) {
		t.Error("Unwrap broken")
	}

	// Honest route avoiding node 5: marking is untouched.
	pk := &packet.Packet{SrcNode: 0}
	c.OnInject(pk)
	c.OnForward(0, 1, pk) // (0,0) -> (0,1)
	c.OnForward(1, 2, pk)
	if got, ok := inner.IdentifySource(2, pk.Hdr.ID); !ok || got != 0 {
		t.Errorf("honest route misidentified: %d", got)
	}

	// Route through node 5: the MF no longer telescopes.
	pk2 := &packet.Packet{SrcNode: 4} // (1,0)
	c.OnInject(pk2)
	c.OnForward(4, 5, pk2) // into the liar
	c.OnForward(5, 6, pk2) // the liar forwards and corrupts
	if got, ok := inner.IdentifySource(6, pk2.Hdr.ID); ok && got == 4 {
		t.Error("corrupted route identified correctly — the lie did nothing")
	}
}

func TestCompromisedBadSourceSwitch(t *testing.T) {
	m := topology.NewMesh2D(4)
	inner, _ := NewDDPM(m)
	flips := 0
	c := NewCompromised(inner, 0, func(mf uint16) uint16 { flips++; return mf ^ 0x0101 })
	pk := &packet.Packet{SrcNode: 0}
	c.OnInject(pk) // source switch lies at injection
	if flips != 1 {
		t.Errorf("inject corruption count = %d", flips)
	}
	c.OnForward(0, 1, pk) // and again when forwarding
	if flips != 2 {
		t.Errorf("forward corruption count = %d", flips)
	}
}

func TestNopAndCubeDims(t *testing.T) {
	var n Nop
	pk := &packet.Packet{}
	pk.Hdr.ID = 0x1111
	n.OnInject(pk)
	n.OnForward(0, 1, pk)
	if pk.Hdr.ID != 0x1111 {
		t.Error("Nop touched the MF")
	}
	cc, _ := NewCubeCodec(7)
	if cc.Dims() != 7 {
		t.Errorf("CubeCodec.Dims = %d", cc.Dims())
	}
}

func TestAMSOnInjectLeavesMF(t *testing.T) {
	a, _ := NewAMS(0.5, 8, nil)
	pk := &packet.Packet{}
	pk.Hdr.ID = 0xABCD
	a.OnInject(pk)
	if pk.Hdr.ID != 0xABCD {
		t.Error("AMS rewrote the MF at injection")
	}
}
