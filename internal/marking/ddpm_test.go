package marking

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// scriptRoute pushes a packet through DDPM along an explicit node path,
// returning the decoded vector after every hop.
func scriptRoute(t *testing.T, d *DDPM, path []topology.NodeID) []topology.Vector {
	t.Helper()
	pk := &packet.Packet{}
	d.OnInject(pk)
	var out []topology.Vector
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
		out = append(out, d.Codec().Decode(pk.Hdr.ID))
	}
	return out
}

func TestFigure3bVectorEvolution(t *testing.T) {
	// Paper §5: a packet traverses the 2-D mesh adaptively from (1,1)
	// to (2,3); "The distance vector changes as following: (1,0), (2,0),
	// (2,-1), (1,-1), (1,0), (1,1), and (1,2)."
	m := topology.NewMesh2D(4)
	d, err := NewDDPM(m)
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.NodeID{
		m.IndexOf(topology.Coord{1, 1}),
		m.IndexOf(topology.Coord{2, 1}),
		m.IndexOf(topology.Coord{3, 1}),
		m.IndexOf(topology.Coord{3, 0}),
		m.IndexOf(topology.Coord{2, 0}),
		m.IndexOf(topology.Coord{2, 1}),
		m.IndexOf(topology.Coord{2, 2}),
		m.IndexOf(topology.Coord{2, 3}),
	}
	want := []topology.Vector{
		{1, 0}, {2, 0}, {2, -1}, {1, -1}, {1, 0}, {1, 1}, {1, 2},
	}
	got := scriptRoute(t, d, path)
	if len(got) != len(want) {
		t.Fatalf("hops = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("hop %d: vector %v, want %v", i+1, got[i], want[i])
		}
	}
	// "When (2,3) node receives the distance vector (1,2), it can
	// subtract (1,2) from (2,3) and quickly identify the source (1,1)."
	pk := &packet.Packet{}
	d.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
	}
	src, ok := d.IdentifySource(path[len(path)-1], pk.Hdr.ID)
	if !ok || src != path[0] {
		t.Errorf("identified %v, want (1,1)", m.CoordOf(src))
	}
}

func TestFigure3cHypercubeEvolution(t *testing.T) {
	// Paper §5: in the 3-cube "the distance vector changes as following:
	// (1,0,0), (1,0,1), (0,0,1), (0,1,1), (0,1,0), and (1,1,0). (0,0,0)
	// can identify the source (1,1,0) by XORing its coordinate."
	h := topology.NewHypercube(3)
	d, err := NewDDPM(h)
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.NodeID{
		h.IndexOf(topology.Coord{1, 1, 0}),
		h.IndexOf(topology.Coord{0, 1, 0}),
		h.IndexOf(topology.Coord{0, 1, 1}),
		h.IndexOf(topology.Coord{1, 1, 1}),
		h.IndexOf(topology.Coord{1, 0, 1}),
		h.IndexOf(topology.Coord{1, 0, 0}),
		h.IndexOf(topology.Coord{0, 0, 0}),
	}
	want := []topology.Vector{
		{1, 0, 0}, {1, 0, 1}, {0, 0, 1}, {0, 1, 1}, {0, 1, 0}, {1, 1, 0},
	}
	got := scriptRoute(t, d, path)
	if len(got) != len(want) {
		t.Fatalf("hops = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("hop %d: vector %v, want %v", i+1, got[i], want[i])
		}
	}
	pk := &packet.Packet{}
	d.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
	}
	src, ok := d.IdentifySource(path[len(path)-1], pk.Hdr.ID)
	if !ok || src != path[0] {
		t.Errorf("identified node %d, want (1,1,0)", src)
	}
}

func TestDDPMIdentifiesUnderEveryRoutingAlgorithm(t *testing.T) {
	// E3 core claim: one packet suffices to identify the true source on
	// every topology under every routing algorithm, including
	// non-minimal fully adaptive with misroutes.
	type scenario struct {
		net  topology.Network
		algs []routing.Algorithm
	}
	m := topology.NewMesh2D(8)
	tr := topology.NewTorus2D(8)
	h := topology.NewHypercube(6)
	m3 := topology.NewMesh(8, 8, 4)
	scenarios := []scenario{
		{m, []routing.Algorithm{
			routing.NewXY(m), routing.NewWestFirst(m), routing.NewNorthLast(m),
			routing.NewNegativeFirst(m), routing.NewMinimalAdaptive(m),
			routing.NewFullyAdaptiveMisroute(m),
		}},
		{tr, []routing.Algorithm{
			routing.NewDimensionOrder(tr), routing.NewMinimalAdaptive(tr),
			routing.NewFullyAdaptiveMisroute(tr),
		}},
		{h, []routing.Algorithm{
			routing.NewDimensionOrder(h), routing.NewMinimalAdaptive(h),
			routing.NewFullyAdaptiveMisroute(h),
		}},
		{m3, []routing.Algorithm{
			routing.NewDimensionOrder(m3), routing.NewNegativeFirst(m3),
			routing.NewMinimalAdaptive(m3),
		}},
	}
	for _, sc := range scenarios {
		d, err := NewDDPM(sc.net)
		if err != nil {
			t.Fatalf("%s: %v", sc.net.Name(), err)
		}
		for _, alg := range sc.algs {
			r := routing.NewRouter(sc.net, alg)
			r.Sel = routing.RandomSelector{R: rng.NewStream(77)}
			r.MisrouteBudget = 3
			stream := rng.NewStream(11)
			for trial := 0; trial < 200; trial++ {
				src := topology.NodeID(stream.Intn(sc.net.NumNodes()))
				dst := topology.NodeID(stream.Intn(sc.net.NumNodes()))
				if src == dst {
					continue
				}
				path, err := r.Walk(src, dst, 0)
				if err != nil {
					t.Fatalf("%s/%s: %v", sc.net.Name(), alg.Name(), err)
				}
				pk := &packet.Packet{}
				pk.Hdr.ID = 0xABCD // attacker-preloaded garbage
				d.OnInject(pk)
				for i := 0; i+1 < len(path); i++ {
					d.OnForward(path[i], path[i+1], pk)
				}
				got, ok := d.IdentifySource(dst, pk.Hdr.ID)
				if !ok || got != src {
					t.Fatalf("%s/%s: identified %d, want %d (path %v)",
						sc.net.Name(), alg.Name(), got, src, path)
				}
			}
		}
	}
}

func TestDDPMTorusWraparoundIdentification(t *testing.T) {
	// Wraparound hops contribute ±1, and the victim's mod-k reduction
	// recovers the source across the seam.
	tr := topology.NewTorus2D(8)
	d, err := NewDDPM(tr)
	if err != nil {
		t.Fatal(err)
	}
	src := tr.IndexOf(topology.Coord{7, 7})
	dst := tr.IndexOf(topology.Coord{0, 0})
	// Route across the seam: (7,7) -> (0,7) -> (0,0).
	path := []topology.NodeID{src, tr.IndexOf(topology.Coord{0, 7}), dst}
	pk := &packet.Packet{}
	d.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
	}
	got, ok := d.IdentifySource(dst, pk.Hdr.ID)
	if !ok || got != src {
		t.Errorf("identified %v, want (7,7)", tr.CoordOf(got))
	}
}

func TestDDPMZeroOnInjectDefeatsPreloadedMF(t *testing.T) {
	// Security ablation: with the Figure 4 injection rule the attacker's
	// preloaded MF is erased; without it the victim misidentifies.
	m := topology.NewMesh2D(8)
	src := m.IndexOf(topology.Coord{1, 1})
	dst := m.IndexOf(topology.Coord{1, 3})
	path := []topology.NodeID{src, m.IndexOf(topology.Coord{1, 2}), dst}

	run := func(zero bool) (topology.NodeID, bool) {
		d, _ := NewDDPM(m)
		d.ZeroOnInject = zero
		pk := &packet.Packet{}
		pk.Hdr.ID, _ = d.Codec().(*SignedFieldCodec).Encode(topology.Vector{3, 0})
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		return d.IdentifySource(dst, pk.Hdr.ID)
	}

	if got, ok := run(true); !ok || got != src {
		t.Errorf("with inject-zeroing: identified %d, want %d", got, src)
	}
	if got, ok := run(false); ok && got == src {
		t.Error("without inject-zeroing the preloaded MF should have corrupted identification")
	}
}

func TestDDPMIdentifySourceRejectsOffMesh(t *testing.T) {
	// A corrupted MF can decode to a coordinate outside the mesh.
	m := topology.NewMesh2D(4)
	d, _ := NewDDPM(m)
	codec := d.Codec().(*SignedFieldCodec)
	mf, _ := codec.Encode(topology.Vector{100, 0})
	if _, ok := d.IdentifySource(m.IndexOf(topology.Coord{0, 0}), mf); ok {
		t.Error("off-mesh decode accepted")
	}
}

func TestDDPMScalabilityErrors(t *testing.T) {
	// Table 3 boundaries: 128×128 builds, 256×256 does not; 16-cube
	// builds, 17-cube cannot even be expressed in the codec.
	if _, err := NewDDPM(topology.NewMesh2D(128)); err != nil {
		t.Errorf("128x128 DDPM: %v", err)
	}
	if _, err := NewDDPM(topology.NewMesh2D(256)); err == nil {
		t.Error("256x256 DDPM built; Table 3 says it must not fit")
	}
	if _, err := NewDDPM(topology.NewHypercube(16)); err != nil {
		t.Errorf("16-cube DDPM: %v", err)
	}
	if _, err := NewDDPM(topology.NewHypercube(17)); err == nil {
		t.Error("17-cube DDPM built")
	}
}

func TestNewDDPMWithCodecValidation(t *testing.T) {
	m := topology.NewMesh(16, 16, 32)
	c, _ := NewSignedFieldCodec(5, 5, 6)
	d, err := NewDDPMWithCodec(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec().Bits() != 16 {
		t.Errorf("bits = %d", d.Codec().Bits())
	}
	wrong, _ := NewSignedFieldCodec(8, 8)
	if _, err := NewDDPMWithCodec(m, wrong); err == nil {
		t.Error("dim-mismatched codec accepted")
	}
}

func TestDDPM3DPaperSplitIdentifies(t *testing.T) {
	// The paper's 16×16×32 cluster with the 5/5/6 split: single-packet
	// identification still works end to end.
	m := topology.NewMesh(16, 16, 32)
	c, _ := NewSignedFieldCodec(5, 5, 6)
	d, _ := NewDDPMWithCodec(m, c)
	r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	r.Sel = routing.RandomSelector{R: rng.NewStream(3)}
	stream := rng.NewStream(4)
	for trial := 0; trial < 100; trial++ {
		src := topology.NodeID(stream.Intn(m.NumNodes()))
		dst := topology.NodeID(stream.Intn(m.NumNodes()))
		if src == dst {
			continue
		}
		path, err := r.Walk(src, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		pk := &packet.Packet{}
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		if got, ok := d.IdentifySource(dst, pk.Hdr.ID); !ok || got != src {
			t.Fatalf("trial %d: identified %d, want %d", trial, got, src)
		}
	}
}

func TestDDPMName(t *testing.T) {
	d, _ := NewDDPM(topology.NewMesh2D(4))
	if d.Name() != "ddpm" {
		t.Errorf("Name = %q", d.Name())
	}
}
