package marking

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestSignedFieldCodecRoundTrip(t *testing.T) {
	c, err := NewSignedFieldCodec(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bits() != 16 || c.Dims() != 2 {
		t.Fatalf("Bits=%d Dims=%d", c.Bits(), c.Dims())
	}
	for _, v := range []topology.Vector{
		{0, 0}, {1, 2}, {-1, -2}, {127, -128}, {-128, 127}, {5, -5},
	} {
		mf, err := c.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%v): %v", v, err)
		}
		if got := c.Decode(mf); !got.Equal(v) {
			t.Errorf("round trip %v -> %#04x -> %v", v, mf, got)
		}
	}
}

func TestSignedFieldCodecRange(t *testing.T) {
	c, _ := NewSignedFieldCodec(5, 5, 6)
	lo, hi := c.Range(0)
	if lo != -16 || hi != 15 {
		t.Errorf("5-bit range [%d,%d]", lo, hi)
	}
	lo, hi = c.Range(2)
	if lo != -32 || hi != 31 {
		t.Errorf("6-bit range [%d,%d]", lo, hi)
	}
	if _, err := c.Encode(topology.Vector{16, 0, 0}); err == nil {
		t.Error("out-of-range component encoded")
	}
	if _, err := c.Encode(topology.Vector{0, 0}); err == nil {
		t.Error("wrong-dims vector encoded")
	}
}

func TestSignedFieldCodecAddMatchesVectorAdd(t *testing.T) {
	c, _ := NewSignedFieldCodec(8, 8)
	f := func(a0, a1 int8, steps []int8) bool {
		v := topology.Vector{int(a0) / 2, int(a1) / 2}
		mf, err := c.Encode(v)
		if err != nil {
			return true
		}
		for _, s := range steps {
			d := topology.Vector{0, 0}
			switch s % 4 {
			case 0:
				d[0] = 1
			case 1, -1:
				d[0] = -1
			case 2, -2:
				d[1] = 1
			default:
				d[1] = -1
			}
			mf = c.Add(mf, d)
			v.AddInPlace(d)
			if v[0] < -128 || v[0] > 127 || v[1] < -128 || v[1] > 127 {
				return true // left the representable range; wrap semantics differ by design
			}
		}
		return c.Decode(mf).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSignedFieldCodecAddWrapsModuloField(t *testing.T) {
	// ±1 hops on a ring of radix 2^w stay correct through field
	// wraparound: decode ≡ true displacement (mod 2^w).
	c, _ := NewSignedFieldCodec(4, 4) // fields hold [-8,7]
	mf := uint16(0)
	for i := 0; i < 20; i++ { // 20 > 7: wraps
		mf = c.Add(mf, topology.Vector{1, 0})
	}
	got := c.Decode(mf)
	if ((got[0]-20)%16+16)%16 != 0 {
		t.Errorf("wrapped decode %v, want ≡20 (mod 16)", got)
	}
	if got[1] != 0 {
		t.Errorf("neighbor field disturbed: %v", got)
	}
}

func TestSignedFieldCodecAddNoCrossFieldCarry(t *testing.T) {
	c, _ := NewSignedFieldCodec(8, 8)
	// Saturate the low field's positive range and overflow it; the high
	// field must be untouched.
	mf, _ := c.Encode(topology.Vector{3, 127})
	mf = c.Add(mf, topology.Vector{0, 1})
	got := c.Decode(mf)
	if got[0] != 3 {
		t.Errorf("carry leaked across fields: %v", got)
	}
	if got[1] != -128 { // two's complement wrap
		t.Errorf("low field = %d, want -128", got[1])
	}
}

func TestSignedFieldCodecValidation(t *testing.T) {
	cases := [][]int{{}, {1}, {8, 8, 8}, {17}, {2, 15}}
	for _, widths := range cases {
		if _, err := NewSignedFieldCodec(widths...); err == nil {
			t.Errorf("NewSignedFieldCodec(%v) accepted", widths)
		}
	}
	if _, err := NewSignedFieldCodec(2, 14); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCodecForDimsPaperLayouts(t *testing.T) {
	// 2-D 128×128 (Table 3 maximum): 8/8.
	c, err := CodecForDims([]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	w := c.Widths()
	if w[0] != 8 || w[1] != 8 {
		t.Errorf("128x128 widths = %v, want [8 8]", w)
	}
	// Beyond Table 3: 256×256 must not fit.
	if _, err := CodecForDims([]int{256, 256}); err == nil {
		t.Error("256x256 codec built; Table 3 says it must not fit")
	}
	// The paper's 3-D split 16×16×32 fits (5/5/6).
	c, err = CodecForDims([]int{16, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bits() != 16 {
		t.Errorf("3-D bits = %d", c.Bits())
	}
	w = c.Widths()
	if w[2] < 6 {
		t.Errorf("widest dimension got %d bits, want >= 6 (radix 32)", w[2])
	}
}

func TestCodecForDimsSpareBitsGoToWidestRadix(t *testing.T) {
	c, err := CodecForDims([]int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	w := c.Widths()
	if w[1] <= w[0] {
		t.Errorf("widths = %v: radix-64 dimension should receive the spare bits", w)
	}
	if w[0]+w[1] != 16 {
		t.Errorf("spare bits unallocated: %v", w)
	}
}

func TestCubeCodecRoundTrip(t *testing.T) {
	c, err := NewCubeCodec(3)
	if err != nil {
		t.Fatal(err)
	}
	for mf := uint16(0); mf < 8; mf++ {
		v := c.Decode(mf)
		back, err := c.Encode(v)
		if err != nil || back != mf {
			t.Errorf("cube round trip %#x -> %v -> %#x (%v)", mf, v, back, err)
		}
	}
	if _, err := c.Encode(topology.Vector{2, 0, 0}); err == nil {
		t.Error("non-binary component encoded")
	}
	if _, err := c.Encode(topology.Vector{0, 0}); err == nil {
		t.Error("wrong dims encoded")
	}
}

func TestCubeCodecAddIsXor(t *testing.T) {
	c, _ := NewCubeCodec(4)
	mf := uint16(0)
	mf = c.Add(mf, topology.Vector{1, 0, 0, 0})
	mf = c.Add(mf, topology.Vector{0, 0, 1, 0})
	if !c.Decode(mf).Equal(topology.Vector{1, 0, 1, 0}) {
		t.Errorf("decode = %v", c.Decode(mf))
	}
	// XOR is self-inverse: re-flipping dimension 0 clears it.
	mf = c.Add(mf, topology.Vector{1, 0, 0, 0})
	if !c.Decode(mf).Equal(topology.Vector{0, 0, 1, 0}) {
		t.Errorf("decode after re-flip = %v", c.Decode(mf))
	}
}

func TestCubeCodecBounds(t *testing.T) {
	for _, n := range []int{0, 17} {
		if _, err := NewCubeCodec(n); err == nil {
			t.Errorf("NewCubeCodec(%d) accepted", n)
		}
	}
	c, _ := NewCubeCodec(16)
	if c.Bits() != 16 {
		t.Errorf("16-cube bits = %d", c.Bits())
	}
}

func TestAddPanicsOnDimMismatch(t *testing.T) {
	c, _ := NewSignedFieldCodec(8, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SignedFieldCodec.Add dim mismatch did not panic")
			}
		}()
		c.Add(0, topology.Vector{1})
	}()
	cc, _ := NewCubeCodec(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CubeCodec.Add dim mismatch did not panic")
			}
		}()
		cc.Add(0, topology.Vector{1})
	}()
}

func TestCodecRandomWalkProperty(t *testing.T) {
	// Full-stack property: pack a random walk's displacements through
	// the codec and compare with exact vector arithmetic, on a torus
	// whose radix divides the field modulus (wrap-commutes case).
	tr := topology.NewTorus2D(16) // radix 16 divides 2^8
	c, err := CodecForDims(tr.Dims())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewStream(1234)
	for trial := 0; trial < 50; trial++ {
		src := topology.NodeID(r.Intn(tr.NumNodes()))
		cur := src
		mf := uint16(0)
		for s := 0; s < 300; s++ {
			nbs := tr.Neighbors(cur)
			next := nbs[r.Intn(len(nbs))]
			mf = c.Add(mf, topology.Displacement(tr, cur, next))
			cur = next
		}
		got := topology.Vector(c.Decode(mf)).Mod(tr.Dims())
		want := tr.CoordOf(cur).Sub(tr.CoordOf(src)).Mod(tr.Dims())
		if !got.Equal(want) {
			t.Fatalf("trial %d: decode %v, want %v", trial, got, want)
		}
	}
}
