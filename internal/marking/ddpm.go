package marking

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/topology"
)

// DDPM is the paper's Deterministic Distance Packet Marking (§5,
// Figure 4). Every switch, after routing decides the next node Y,
// computes the displacement Δ = Y − X and accumulates it into the MF:
// V' := V + Δ. Because the displacements of any walk telescope to the
// coordinate difference between its endpoints, the destination recovers
// the source as S = D − V (mesh/torus, reduced mod k on a torus) or
// S = D ⊕ V (hypercube) — from a single packet, independent of the
// route, which is what makes the scheme robust to adaptive routing.
//
// The MF is zeroed when the packet first enters the fabric ("V is set
// to a zero vector when the packet first enters a switch from a
// computing node"), which also erases any attacker-preloaded value —
// a load-bearing security property that the ZeroOnInject ablation knob
// lets experiments disable.
type DDPM struct {
	net   topology.Network
	codec VectorCodec

	// ZeroOnInject controls the Figure 4 injection rule. It defaults to
	// true; disabling it models a broken deployment where the source
	// switch trusts the attacker-supplied Identification field.
	ZeroOnInject bool

	// cc/nc/delta are per-hop scratch buffers keeping OnForward
	// allocation-free. They make a DDPM instance single-goroutine —
	// consistent with the one-simulation-per-goroutine design (parallel
	// sweeps build one scheme per cell).
	cc, nc topology.Coord
	delta  topology.Vector
}

// NewDDPM builds DDPM for any of the paper's topologies, choosing the
// codec automatically: CubeCodec for hypercubes, CodecForDims widths
// for meshes and tori. It errors where Table 3 says the topology
// exceeds the 16-bit MF.
func NewDDPM(net topology.Network) (*DDPM, error) {
	var codec VectorCodec
	var err error
	if h, ok := net.(*topology.Hypercube); ok {
		codec, err = NewCubeCodec(h.DimBits())
	} else {
		codec, err = CodecForDims(net.Dims())
	}
	if err != nil {
		return nil, fmt.Errorf("marking: DDPM on %s: %w", net.Name(), err)
	}
	return newDDPM(net, codec), nil
}

func newDDPM(net topology.Network, codec VectorCodec) *DDPM {
	n := len(net.Dims())
	return &DDPM{
		net: net, codec: codec, ZeroOnInject: true,
		cc: make(topology.Coord, n), nc: make(topology.Coord, n),
		delta: make(topology.Vector, n),
	}
}

// NewDDPMWithCodec builds DDPM with an explicit codec (e.g. the paper's
// 5/5/6 three-dimensional split).
func NewDDPMWithCodec(net topology.Network, codec VectorCodec) (*DDPM, error) {
	if codec.Dims() != len(net.Dims()) {
		return nil, fmt.Errorf("marking: codec has %d dims, %s has %d",
			codec.Dims(), net.Name(), len(net.Dims()))
	}
	return newDDPM(net, codec), nil
}

func (d *DDPM) Name() string { return "ddpm" }

// Net exposes the fabric this scheme marks for — victim-side consumers
// (identifier tallies, validation) size their tables from it.
func (d *DDPM) Net() topology.Network { return d.net }

// Codec exposes the MF layout for victim-side decoding.
func (d *DDPM) Codec() VectorCodec { return d.codec }

// OnInject zeroes the MF (unless the ablation knob disabled it).
func (d *DDPM) OnInject(pk *packet.Packet) {
	if d.ZeroOnInject {
		pk.Hdr.ID = 0
	}
}

// OnForward performs the Figure 4 switch procedure: Δ := Y − X;
// V' := V + Δ; Store_MF(V'). The displacement of a torus wraparound hop
// is the physical ±1 direction of travel (see topology.Displacement).
func (d *DDPM) OnForward(cur, next topology.NodeID, pk *packet.Packet) {
	topology.DisplacementInto(d.net, cur, next, d.delta, d.cc, d.nc)
	pk.Hdr.ID = d.codec.Add(pk.Hdr.ID, d.delta)
}

// IdentifySource performs the victim-side computation of Figure 4:
// V := Extract_MF(); S := X − V (mesh/torus, component-wise mod k) or
// S := X ⊕ V (hypercube). dst is the victim's own node. The returned
// node is the claimed origin of the packet; with intact marking it is
// the packet's true injection point regardless of header spoofing.
// ok is false when the decoded source coordinate falls outside the
// topology (possible on a mesh when marking was corrupted or bypassed).
func (d *DDPM) IdentifySource(dst topology.NodeID, mf uint16) (topology.NodeID, bool) {
	v := d.codec.Decode(mf)
	dc := d.net.CoordOf(dst)
	if _, isCube := d.net.(*topology.Hypercube); isCube {
		src := dc.Xor(topology.Coord(v))
		return d.net.IndexOf(src), true
	}
	src := make(topology.Coord, len(v)) // S = D − V, component-wise
	dims := d.net.Dims()
	for i := range v {
		x := dc[i] - v[i]
		if d.net.Wraparound() {
			k := dims[i]
			x = ((x % k) + k) % k
		}
		if x < 0 || x >= dims[i] {
			return topology.None, false
		}
		src[i] = x
	}
	return d.net.IndexOf(src), true
}
