package marking

import (
	"math/bits"
	"testing"

	"repro/internal/topology"
)

func TestGrayCodeBasics(t *testing.T) {
	want := []int{0, 1, 3, 2, 6, 7, 5, 4}
	for v, g := range want {
		if gray(v) != g {
			t.Errorf("gray(%d) = %d, want %d", v, gray(v), g)
		}
		if ungray(g) != v {
			t.Errorf("ungray(%d) = %d, want %d", g, ungray(g), v)
		}
	}
}

func TestLabelerFigure3aLabels(t *testing.T) {
	// The paper's Figure 3(a) labels on the 4×4 mesh: the two attack
	// paths run through nodes labeled 0001, 0011, 0010, 0110, 1110 and
	// 0101, 0111, 0110, 1110.
	m := topology.NewMesh2D(4)
	l, err := NewLabeler(m)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bits() != 4 {
		t.Fatalf("label bits = %d, want 4", l.Bits())
	}
	wantLabels := map[string]uint16{
		"(0,1)": 0b0001,
		"(0,2)": 0b0011,
		"(0,3)": 0b0010,
		"(1,3)": 0b0110,
		"(2,3)": 0b1110,
		"(1,1)": 0b0101,
		"(1,2)": 0b0111,
	}
	coords := map[string]topology.Coord{
		"(0,1)": {0, 1}, "(0,2)": {0, 2}, "(0,3)": {0, 3},
		"(1,3)": {1, 3}, "(2,3)": {2, 3}, "(1,1)": {1, 1}, "(1,2)": {1, 2},
	}
	for name, want := range wantLabels {
		got := l.Label(m.IndexOf(coords[name]))
		if got != want {
			t.Errorf("label%s = %04b, want %04b", name, got, want)
		}
	}
}

func TestLabelerNeighborsDifferInOneBit(t *testing.T) {
	nets := []topology.Network{
		topology.NewMesh2D(4),
		topology.NewMesh2D(8),
		topology.NewMesh(4, 8, 2),
		topology.NewTorus2D(8), // power-of-two radix: wraparound is cyclic Gray
		topology.NewHypercube(5),
	}
	for _, net := range nets {
		l, err := NewLabeler(net)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if !l.Exact() {
			t.Fatalf("%s: Exact() = false for power-of-two radixes", net.Name())
		}
		for id := 0; id < net.NumNodes(); id++ {
			la := l.Label(topology.NodeID(id))
			for _, nb := range net.Neighbors(topology.NodeID(id)) {
				lb := l.Label(nb)
				if bits.OnesCount16(la^lb) != 1 {
					t.Fatalf("%s: labels of neighbors %d(%04b) and %d(%04b) differ in %d bits",
						net.Name(), id, la, nb, lb, bits.OnesCount16(la^lb))
				}
			}
		}
	}
}

func TestLabelerRoundTrip(t *testing.T) {
	for _, net := range []topology.Network{
		topology.NewMesh2D(8), topology.NewMesh(3, 5), topology.NewTorus2D(6),
	} {
		l, err := NewLabeler(net)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < net.NumNodes(); id++ {
			back, ok := l.Unlabel(l.Label(topology.NodeID(id)))
			if !ok || back != topology.NodeID(id) {
				t.Fatalf("%s: label round trip failed for %d", net.Name(), id)
			}
		}
	}
}

func TestLabelerNonPowerOfTwoNotExact(t *testing.T) {
	l, err := NewLabeler(topology.NewMesh2D(5))
	if err != nil {
		t.Fatal(err)
	}
	if l.Exact() {
		t.Error("radix-5 mesh reported exact single-bit labels")
	}
	// Some 3-bit patterns are not valid radix-5 Gray codes.
	found := false
	for lbl := uint16(0); lbl < 1<<l.Bits(); lbl++ {
		if _, ok := l.Unlabel(lbl); !ok {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected some unlabelable patterns for radix 5")
	}
}

func TestLabelerTooBig(t *testing.T) {
	if _, err := NewLabeler(topology.NewMesh2D(512)); err == nil {
		t.Error("512x512 labeler built; needs 18 bits")
	}
}

func TestHypercubeLabelsAreAddresses(t *testing.T) {
	h := topology.NewHypercube(4)
	l, _ := NewLabeler(h)
	for id := 0; id < h.NumNodes(); id++ {
		// Per-dimension Gray of a single bit is the identity, so the
		// concatenated label is exactly the node address.
		if l.Label(topology.NodeID(id)) != uint16(id) {
			t.Fatalf("unexpected hypercube label for %d", id)
		}
	}
}
