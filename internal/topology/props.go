package topology

// Stepper is implemented by every concrete topology in this package:
// it moves one hop along a single dimension. Routing algorithms are
// written against Stepper + Topology so they stay agnostic of the
// concrete network.
type Stepper interface {
	// Step returns the neighbor reached by moving dir ∈ {−1,+1} along
	// dim, or None when the move would leave the network (mesh edges).
	Step(id NodeID, dim, dir int) NodeID
}

// Network bundles the two views every router needs.
type Network interface {
	Topology
	Stepper
}

// Displacement returns the per-hop displacement vector Δ = next − cur
// that a DDPM switch adds into the marking field when forwarding from
// cur to next. On a torus a wraparound hop contributes ±1 (not ±(k−1)):
// the switch knows which physical channel it used, so it records the
// direction of travel, and the victim reduces the sum mod k.
func Displacement(t Topology, cur, next NodeID) Vector {
	cc, nc := t.CoordOf(cur), t.CoordOf(next)
	v := nc.Sub(cc)
	if !t.Wraparound() {
		return v
	}
	dims := t.Dims()
	for i := range v {
		k := dims[i]
		switch v[i] {
		case k - 1: // wrapped downward: physically a −1 hop
			v[i] = -1
		case -(k - 1): // wrapped upward: physically a +1 hop
			v[i] = 1
		}
	}
	return v
}

// BFSDistances returns the hop distance from src to every node,
// ignoring the links in failed (treated as bidirectional failures when
// both directions are present; only the given directed links are
// skipped). Unreachable nodes get −1. Used to validate MinDistance and
// fault-tolerant routing.
func BFSDistances(t Topology, src NodeID, failed map[Link]bool) []int {
	n := t.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if failed != nil && failed[Link{From: cur, To: nb}] {
				continue
			}
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// MinimalDims returns the dimensions in which cur still differs from
// dst, together with the productive direction (+1/−1) in each. For a
// torus the shorter way around is chosen; exact ties prefer +1.
func MinimalDims(t Topology, cur, dst NodeID) []DimDir {
	cc, dc := t.CoordOf(cur), t.CoordOf(dst)
	dims := t.Dims()
	var out []DimDir
	for i := range cc {
		if cc[i] == dc[i] {
			continue
		}
		dir := 1
		if t.Wraparound() {
			k := dims[i]
			fwd := ((dc[i]-cc[i])%k + k) % k
			if fwd > k-fwd {
				dir = -1
			} else if fwd == k-fwd {
				dir = 1 // tie: either way is minimal; canonicalize to +1
			}
		} else if dc[i] < cc[i] {
			dir = -1
		}
		out = append(out, DimDir{Dim: i, Dir: dir})
	}
	return out
}

// DimDir is a (dimension, direction) pair describing one productive
// move of a minimal route.
type DimDir struct {
	Dim int
	Dir int // +1 or −1
}
