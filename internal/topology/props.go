package topology

import "sort"

// Stepper is implemented by every concrete topology in this package:
// it moves one hop along a single dimension. Routing algorithms are
// written against Stepper + Topology so they stay agnostic of the
// concrete network.
type Stepper interface {
	// Step returns the neighbor reached by moving dir ∈ {−1,+1} along
	// dim, or None when the move would leave the network (mesh edges).
	Step(id NodeID, dim, dir int) NodeID
}

// Network bundles the two views every router needs.
type Network interface {
	Topology
	Stepper
}

// Displacement returns the per-hop displacement vector Δ = next − cur
// that a DDPM switch adds into the marking field when forwarding from
// cur to next. On a torus a wraparound hop contributes ±1 (not ±(k−1)):
// the switch knows which physical channel it used, so it records the
// direction of travel, and the victim reduces the sum mod k.
func Displacement(t Topology, cur, next NodeID) Vector {
	return DisplacementInto(t, cur, next, make(Vector, len(t.Dims())), nil, nil)
}

// DisplacementInto is the allocation-free form of Displacement: Δ is
// written into v (length = dimension count), with cc and nc as scratch
// coordinate buffers (nil, or the same length). Marking schemes call it
// once per forwarded hop, so it must not allocate.
func DisplacementInto(t Topology, cur, next NodeID, v Vector, cc, nc Coord) Vector {
	cc = FillCoord(t, cur, cc)
	nc = FillCoord(t, next, nc)
	for i := range v {
		v[i] = nc[i] - cc[i]
	}
	if !t.Wraparound() {
		return v
	}
	dims := t.Dims()
	for i := range v {
		k := dims[i]
		switch v[i] {
		case k - 1: // wrapped downward: physically a −1 hop
			v[i] = -1
		case -(k - 1): // wrapped upward: physically a +1 hop
			v[i] = 1
		}
	}
	return v
}

// BFSDistances returns the hop distance from src to every node,
// ignoring the links in failed (treated as bidirectional failures when
// both directions are present; only the given directed links are
// skipped). Unreachable nodes get −1. Used to validate MinDistance and
// fault-tolerant routing.
func BFSDistances(t Topology, src NodeID, failed map[Link]bool) []int {
	n := t.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if failed != nil && failed[Link{From: cur, To: nb}] {
				continue
			}
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// CoordWriter is implemented by topologies that can write a node's
// coordinate into a caller-provided buffer without allocating. All
// regular topologies in this package implement it; FillCoord falls back
// to CoordOf for those that do not.
type CoordWriter interface {
	CoordInto(id NodeID, dst Coord)
}

// FillCoord writes id's coordinate into dst and returns it. dst must
// either be nil (a fresh Coord is allocated) or have length equal to the
// topology's dimension count. When t implements CoordWriter the fill is
// allocation-free — the building block of the simulator's per-hop paths.
func FillCoord(t Topology, id NodeID, dst Coord) Coord {
	if dst == nil {
		dst = make(Coord, len(t.Dims()))
	}
	if w, ok := t.(CoordWriter); ok {
		w.CoordInto(id, dst)
		return dst
	}
	copy(dst, t.CoordOf(id))
	return dst
}

// MinimalDims returns the dimensions in which cur still differs from
// dst, together with the productive direction (+1/−1) in each. For a
// torus the shorter way around is chosen; exact ties prefer +1.
func MinimalDims(t Topology, cur, dst NodeID) []DimDir {
	return AppendMinimalDims(t, cur, dst, nil, nil, nil)
}

// AppendMinimalDims is the allocation-free form of MinimalDims: it
// appends the productive (dimension, direction) moves to out and returns
// the extended slice. cc and dc are scratch coordinate buffers (nil, or
// length = dimension count); when non-nil they are left holding cur's
// and dst's coordinates, so callers that need the coordinates afterwards
// (e.g. torus tie handling) can reuse them without refetching.
func AppendMinimalDims(t Topology, cur, dst NodeID, out []DimDir, cc, dc Coord) []DimDir {
	cc = FillCoord(t, cur, cc)
	dc = FillCoord(t, dst, dc)
	dims := t.Dims()
	for i := range cc {
		if cc[i] == dc[i] {
			continue
		}
		dir := 1
		if t.Wraparound() {
			k := dims[i]
			fwd := dc[i] - cc[i] // coords are in [0,k), so one add normalizes
			if fwd < 0 {
				fwd += k
			}
			if fwd > k-fwd {
				dir = -1
			} else if fwd == k-fwd {
				dir = 1 // tie: either way is minimal; canonicalize to +1
			}
		} else if dc[i] < cc[i] {
			dir = -1
		}
		out = append(out, DimDir{Dim: i, Dir: dir})
	}
	return out
}

// PortTable is a dense, immutable flattening of a topology's adjacency:
// every node's neighbor list (in Neighbors order) laid out in one slice,
// with a dense index per directed link. Building it costs one Neighbors
// sweep; afterwards every adjacency query is slice arithmetic — no maps
// and no allocation — which is what keeps the simulators' per-hop paths
// allocation-free.
type PortTable struct {
	first []int32  // node i's links occupy indices [first[i], first[i+1])
	to    []NodeID // flattened neighbor lists; index = dense link index
}

// NewPortTable builds the table for t.
func NewPortTable(t Topology) *PortTable {
	n := t.NumNodes()
	pt := &PortTable{
		first: make([]int32, n+1),
		to:    make([]NodeID, 0, n*t.Degree()),
	}
	for id := 0; id < n; id++ {
		pt.first[id] = int32(len(pt.to))
		pt.to = append(pt.to, t.Neighbors(NodeID(id))...)
	}
	pt.first[n] = int32(len(pt.to))
	return pt
}

// NumLinks returns the number of directed links.
func (pt *PortTable) NumLinks() int { return len(pt.to) }

// Ports returns node id's neighbors as a shared subslice of the table;
// callers must not modify it.
func (pt *PortTable) Ports(id NodeID) []NodeID {
	return pt.to[pt.first[id]:pt.first[id+1]]
}

// To returns the destination node of the directed link at dense index
// li — the hot-path counterpart of LinkAt when the source is not needed.
func (pt *PortTable) To(li int32) NodeID { return pt.to[li] }

// LinkIndex returns the dense index of the directed link from→to, or −1
// when the nodes are not adjacent. The scan is bounded by the node
// degree, so it is O(1) for any fixed topology family.
func (pt *PortTable) LinkIndex(from, to NodeID) int32 {
	for i := pt.first[from]; i < pt.first[from+1]; i++ {
		if pt.to[i] == to {
			return i
		}
	}
	return -1
}

// LinkAt reconstructs the directed link for a dense index. It binary
// searches the offset table, so it is for cold paths (reports, sorting).
func (pt *PortTable) LinkAt(li int32) Link {
	from := sort.Search(len(pt.first)-1, func(i int) bool { return pt.first[i+1] > li })
	return Link{From: NodeID(from), To: pt.to[li]}
}

// DimDir is a (dimension, direction) pair describing one productive
// move of a minimal route.
type DimDir struct {
	Dim int
	Dir int // +1 or −1
}
