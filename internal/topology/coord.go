package topology

import (
	"fmt"
	"strings"
)

// Coord is an n-dimensional node coordinate (x_0, x_1, ..., x_{n-1}),
// matching the paper's indexing scheme in §3. Dimension 0 is the most
// significant for NodeID assignment.
type Coord []int

// Clone returns a copy of c.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and o are the same coordinate.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Sub returns the per-dimension difference c − o: exactly the paper's
// distance vector V with v_i = y_i − x_i when c is the destination and o
// the source (§5).
func (c Coord) Sub(o Coord) Vector {
	if len(c) != len(o) {
		panic(fmt.Sprintf("topology: Sub of mismatched dims %v, %v", c, o))
	}
	v := make(Vector, len(c))
	for i := range c {
		v[i] = c[i] - o[i]
	}
	return v
}

// Add returns the coordinate c + v without bounds or wraparound
// handling; callers on a torus must reduce with Wrap.
func (c Coord) Add(v Vector) Coord {
	if len(c) != len(v) {
		panic(fmt.Sprintf("topology: Add of mismatched dims %v, %v", c, v))
	}
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] + v[i]
	}
	return out
}

// Xor returns the bitwise per-dimension XOR of two hypercube
// coordinates (every entry must be 0 or 1). It is the hypercube variant
// of the distance vector in the paper's Figure 4.
func (c Coord) Xor(o Coord) Coord {
	if len(c) != len(o) {
		panic(fmt.Sprintf("topology: Xor of mismatched dims %v, %v", c, o))
	}
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] ^ o[i]
	}
	return out
}

// Manhattan returns the L1 distance between c and o, the minimal hop
// count in a mesh.
func (c Coord) Manhattan(o Coord) int {
	if len(c) != len(o) {
		panic(fmt.Sprintf("topology: Manhattan of mismatched dims %v, %v", c, o))
	}
	d := 0
	for i := range c {
		d += abs(c[i] - o[i])
	}
	return d
}

func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Vector is a per-dimension signed displacement — the paper's distance
// vector V. Unlike Coord, entries may be negative or exceed the radix
// (transiently, on non-minimal adaptive routes).
type Vector []int

// Zero returns a zero vector of n dimensions, the initial MF state when
// a packet first enters a switch from its compute node (§5).
func Zero(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and o are identical.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// AddInPlace accumulates d into v: V' := V + Δ from Figure 4.
func (v Vector) AddInPlace(d Vector) {
	if len(v) != len(d) {
		panic(fmt.Sprintf("topology: AddInPlace of mismatched dims %v, %v", v, d))
	}
	for i := range v {
		v[i] += d[i]
	}
}

// Neg returns −v.
func (v Vector) Neg() Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = -v[i]
	}
	return out
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// L1 returns the sum of absolute components.
func (v Vector) L1() int {
	d := 0
	for _, x := range v {
		d += abs(x)
	}
	return d
}

// Wrap reduces each component of v into the canonical residue range for
// the given dims: the unique value in (−k/2, k/2] for radix k (ties at
// exactly k/2 resolve to +k/2). On a torus every displacement class has
// one such shortest representative, which is what the victim uses to
// invert the marking.
func (v Vector) Wrap(dims []int) Vector {
	if len(v) != len(dims) {
		panic(fmt.Sprintf("topology: Wrap of mismatched dims %v, %v", v, dims))
	}
	out := make(Vector, len(v))
	for i := range v {
		k := dims[i]
		m := ((v[i] % k) + k) % k // canonical residue in [0,k)
		if m > k/2 {
			m -= k
		}
		out[i] = m
	}
	return out
}

// Mod reduces each component into [0, k_i), the representation used to
// recover S = D − V on a torus.
func (v Vector) Mod(dims []int) Vector {
	if len(v) != len(dims) {
		panic(fmt.Sprintf("topology: Mod of mismatched dims %v, %v", v, dims))
	}
	out := make(Vector, len(v))
	for i := range v {
		k := dims[i]
		out[i] = ((v[i] % k) + k) % k
	}
	return out
}

func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
