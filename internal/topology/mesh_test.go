package topology

import (
	"testing"
)

func TestMeshBasicProperties(t *testing.T) {
	m := NewMesh2D(4)
	if got := m.NumNodes(); got != 16 {
		t.Errorf("NumNodes = %d, want 16", got)
	}
	// Paper §3: "In Figure 1 (a), the network's degree is four and its
	// diameter six."
	if got := m.Degree(); got != 4 {
		t.Errorf("Degree = %d, want 4", got)
	}
	if got := m.Diameter(); got != 6 {
		t.Errorf("Diameter = %d, want 6", got)
	}
	if got := m.Name(); got != "mesh-4x4" {
		t.Errorf("Name = %q, want mesh-4x4", got)
	}
	if m.Wraparound() {
		t.Error("mesh must not report wraparound")
	}
}

func TestMesh3DProperties(t *testing.T) {
	m := NewMesh(4, 3, 2)
	if got := m.NumNodes(); got != 24 {
		t.Errorf("NumNodes = %d, want 24", got)
	}
	if got := m.Degree(); got != 6 {
		t.Errorf("Degree = %d, want 6", got)
	}
	if got := m.Diameter(); got != 3+2+1 {
		t.Errorf("Diameter = %d, want 6", got)
	}
}

func TestMeshIndexCoordRoundTrip(t *testing.T) {
	m := NewMesh(3, 4, 5)
	for id := 0; id < m.NumNodes(); id++ {
		c := m.CoordOf(NodeID(id))
		if back := m.IndexOf(c); back != NodeID(id) {
			t.Fatalf("round trip failed: id %d -> %v -> %d", id, c, back)
		}
	}
}

func TestMeshRowMajorOrder(t *testing.T) {
	m := NewMesh(2, 3)
	want := []Coord{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for id, w := range want {
		if c := m.CoordOf(NodeID(id)); !c.Equal(w) {
			t.Errorf("CoordOf(%d) = %v, want %v", id, c, w)
		}
	}
}

func TestMeshNeighborsInterior(t *testing.T) {
	m := NewMesh2D(4)
	id := m.IndexOf(Coord{1, 1})
	nbs := m.Neighbors(id)
	if len(nbs) != 4 {
		t.Fatalf("interior node has %d neighbors, want 4", len(nbs))
	}
	want := map[NodeID]bool{
		m.IndexOf(Coord{0, 1}): true,
		m.IndexOf(Coord{2, 1}): true,
		m.IndexOf(Coord{1, 0}): true,
		m.IndexOf(Coord{1, 2}): true,
	}
	for _, nb := range nbs {
		if !want[nb] {
			t.Errorf("unexpected neighbor %v", m.CoordOf(nb))
		}
	}
}

func TestMeshNeighborsCorner(t *testing.T) {
	m := NewMesh2D(4)
	nbs := m.Neighbors(m.IndexOf(Coord{0, 0}))
	if len(nbs) != 2 {
		t.Fatalf("corner node has %d neighbors, want 2", len(nbs))
	}
	nbs = m.Neighbors(m.IndexOf(Coord{0, 2}))
	if len(nbs) != 3 {
		t.Fatalf("edge node has %d neighbors, want 3", len(nbs))
	}
}

func TestMeshNeighborSymmetry(t *testing.T) {
	m := NewMesh(3, 5)
	for id := 0; id < m.NumNodes(); id++ {
		for _, nb := range m.Neighbors(NodeID(id)) {
			if !m.IsNeighbor(NodeID(id), nb) {
				t.Fatalf("IsNeighbor(%d,%d) = false for listed neighbor", id, nb)
			}
			found := false
			for _, back := range m.Neighbors(nb) {
				if back == NodeID(id) {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d in Neighbors(%d) but not vice versa", nb, id)
			}
		}
	}
}

func TestMeshStep(t *testing.T) {
	m := NewMesh2D(4)
	id := m.IndexOf(Coord{1, 2})
	if got := m.Step(id, 0, 1); got != m.IndexOf(Coord{2, 2}) {
		t.Errorf("Step dim0 +1 = %v", m.CoordOf(got))
	}
	if got := m.Step(id, 1, -1); got != m.IndexOf(Coord{1, 1}) {
		t.Errorf("Step dim1 -1 = %v", m.CoordOf(got))
	}
	if got := m.Step(m.IndexOf(Coord{0, 0}), 0, -1); got != None {
		t.Errorf("Step off the edge = %d, want None", got)
	}
	if got := m.Step(m.IndexOf(Coord{3, 3}), 1, 1); got != None {
		t.Errorf("Step off the edge = %d, want None", got)
	}
}

func TestMeshMinDistanceMatchesBFS(t *testing.T) {
	m := NewMesh(3, 4)
	for src := 0; src < m.NumNodes(); src++ {
		dist := BFSDistances(m, NodeID(src), nil)
		for dst := 0; dst < m.NumNodes(); dst++ {
			if got := m.MinDistance(NodeID(src), NodeID(dst)); got != dist[dst] {
				t.Fatalf("MinDistance(%d,%d) = %d, BFS says %d", src, dst, got, dist[dst])
			}
		}
	}
}

func TestMeshLinksCount(t *testing.T) {
	// k×k mesh has 2·2·k·(k−1) directed links.
	m := NewMesh2D(4)
	if got := NumLinks(m); got != 2*2*4*3 {
		t.Errorf("NumLinks = %d, want 48", got)
	}
	links := Links(m)
	if len(links) != 48 {
		t.Errorf("len(Links) = %d, want 48", len(links))
	}
	for _, l := range links {
		if !m.IsNeighbor(l.From, l.To) {
			t.Errorf("link %v connects non-neighbors", l)
		}
	}
}

func TestMeshBisectionWidth(t *testing.T) {
	// 4×4 mesh: 4 cables cross the bisection, 8 directed links.
	m := NewMesh2D(4)
	if got := BisectionWidth(m); got != 8 {
		t.Errorf("BisectionWidth = %d, want 8", got)
	}
}

func TestMeshInvalidConstruction(t *testing.T) {
	for _, dims := range [][]int{{}, {1}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMesh(%v) did not panic", dims)
				}
			}()
			NewMesh(dims...)
		}()
	}
}

func TestContains(t *testing.T) {
	m := NewMesh(3, 4)
	cases := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{2, 3}, true},
		{Coord{3, 0}, false},
		{Coord{0, 4}, false},
		{Coord{-1, 0}, false},
		{Coord{0}, false},
		{Coord{0, 0, 0}, false},
	}
	for _, tc := range cases {
		if got := Contains(m, tc.c); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}
