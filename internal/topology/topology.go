// Package topology models the direct interconnection networks the paper
// targets: n-dimensional meshes, k-ary n-cube tori, and hypercubes
// (paper §3). Every node is a (switch, compute node) pair addressed both
// by a dense integer NodeID and by an n-dimensional coordinate; the
// regular structure is what makes Deterministic Distance Packet Marking
// possible, because the displacement between two nodes is a well-defined
// per-dimension vector.
package topology

import (
	"fmt"
	"sort"
)

// NodeID is a dense index in [0, NumNodes). IDs are assigned in
// row-major (last dimension fastest) order of the coordinates.
type NodeID int

// None is the sentinel for "no node" (e.g. a routing function that has
// no permissible next hop).
const None NodeID = -1

// Link is a directed channel between two neighboring switches.
// Direct networks are built from point-to-point links, so every physical
// cable appears as two Links, one per direction.
type Link struct {
	From, To NodeID
}

// Reverse returns the link in the opposite direction.
func (l Link) Reverse() Link { return Link{From: l.To, To: l.From} }

func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Topology is the common contract for all direct networks. All
// implementations are immutable after construction and safe for
// concurrent use.
type Topology interface {
	// Name returns a short human-readable description, e.g. "mesh-4x4".
	Name() string

	// Dims returns the per-dimension radix k_i. For a hypercube every
	// entry is 2. The returned slice must not be modified.
	Dims() []int

	// NumNodes returns the total node count, the product of Dims.
	NumNodes() int

	// Degree returns the maximum number of links incident on any node
	// (paper §3: 2n for mesh and torus, n for the hypercube).
	Degree() int

	// Diameter returns the largest minimal hop distance between any
	// node pair.
	Diameter() int

	// IndexOf maps a coordinate to its NodeID. It panics if the
	// coordinate is out of range; use Contains to validate first.
	IndexOf(c Coord) NodeID

	// CoordOf maps a NodeID back to its coordinate. The returned slice
	// is freshly allocated and owned by the caller.
	CoordOf(id NodeID) Coord

	// Neighbors returns the IDs adjacent to id, in a deterministic
	// order (dimension-major, negative direction first). The returned
	// slice is freshly allocated.
	Neighbors(id NodeID) []NodeID

	// IsNeighbor reports whether a and b share a link.
	IsNeighbor(a, b NodeID) bool

	// MinDistance returns the minimal hop count between a and b.
	MinDistance(a, b NodeID) int

	// Wraparound reports whether the network has wraparound channels
	// (true for torus, false for mesh; the hypercube's k=2 links are
	// conventionally not considered wraparound).
	Wraparound() bool
}

// Contains reports whether c is a valid coordinate of t.
func Contains(t Topology, c Coord) bool {
	dims := t.Dims()
	if len(c) != len(dims) {
		return false
	}
	for i, v := range c {
		if v < 0 || v >= dims[i] {
			return false
		}
	}
	return true
}

// Links enumerates every directed link in t, sorted by (From, To).
// The cost is O(N * degree); callers that need the link set repeatedly
// should cache it.
func Links(t Topology) []Link {
	var out []Link
	n := t.NumNodes()
	for id := 0; id < n; id++ {
		for _, nb := range t.Neighbors(NodeID(id)) {
			out = append(out, Link{From: NodeID(id), To: nb})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumLinks returns the number of directed links in t.
func NumLinks(t Topology) int {
	total := 0
	for id := 0; id < t.NumNodes(); id++ {
		total += len(t.Neighbors(NodeID(id)))
	}
	return total
}

// BisectionWidth returns the number of directed links crossing the
// canonical bisection (splitting the highest-radix dimension in half).
// It is reported for documentation and capacity planning in examples.
func BisectionWidth(t Topology) int {
	dims := t.Dims()
	// Pick the dimension with the largest radix; ties go to the lowest
	// dimension index, matching the usual convention.
	maxDim, maxK := 0, 0
	for i, k := range dims {
		if k > maxK {
			maxDim, maxK = i, k
		}
	}
	half := maxK / 2
	count := 0
	for id := 0; id < t.NumNodes(); id++ {
		c := t.CoordOf(NodeID(id))
		for _, nb := range t.Neighbors(NodeID(id)) {
			nc := t.CoordOf(nb)
			if (c[maxDim] < half) != (nc[maxDim] < half) {
				count++
			}
		}
	}
	return count
}

// indexOf computes the row-major rank of c for the given dims.
// Shared by all concrete topologies.
func indexOf(dims []int, c Coord) NodeID {
	if len(c) != len(dims) {
		panic(fmt.Sprintf("topology: coordinate %v has %d dims, want %d", c, len(c), len(dims)))
	}
	idx := 0
	for i := 0; i < len(dims); i++ {
		v := c[i]
		if v < 0 || v >= dims[i] {
			panic(fmt.Sprintf("topology: coordinate %v out of range for dims %v", c, dims))
		}
		idx = idx*dims[i] + v
	}
	return NodeID(idx)
}

// coordOf inverts indexOf.
func coordOf(dims []int, id NodeID) Coord {
	c := make(Coord, len(dims))
	coordInto(dims, id, c)
	return c
}

// coordInto writes id's coordinate into dst without allocating.
func coordInto(dims []int, id NodeID, dst Coord) {
	n := 1
	for _, k := range dims {
		n *= k
	}
	if id < 0 || int(id) >= n {
		panic(fmt.Sprintf("topology: node id %d out of range [0,%d)", id, n))
	}
	if len(dst) != len(dims) {
		panic(fmt.Sprintf("topology: coordinate buffer has %d dims, want %d", len(dst), len(dims)))
	}
	rem := int(id)
	for i := len(dims) - 1; i >= 0; i-- {
		dst[i] = rem % dims[i]
		rem /= dims[i]
	}
}

// coordTable precomputes every node's coordinate, flattened row-major
// (node id's coordinate occupies entries [id*n, id*n+n)). Mesh and
// torus keep one so the per-hop CoordInto/Step paths are table lookups
// instead of div/mod chains.
func coordTable(dims []int) []int32 {
	n := prod(dims)
	nd := len(dims)
	tbl := make([]int32, n*nd)
	c := make(Coord, nd)
	for id := 0; id < n; id++ {
		coordInto(dims, NodeID(id), c)
		for i, v := range c {
			tbl[id*nd+i] = int32(v)
		}
	}
	return tbl
}

// tableCoordInto reads id's coordinate out of a coordTable.
func tableCoordInto(tbl []int32, nd int, id NodeID, dst Coord) {
	if len(dst) != nd {
		panic(fmt.Sprintf("topology: coordinate buffer has %d dims, want %d", len(dst), nd))
	}
	row := tbl[int(id)*nd : int(id)*nd+nd]
	for i, v := range row {
		dst[i] = int(v)
	}
}

// strides returns the row-major stride of each dimension: moving ±1
// along dimension i changes the NodeID by ±strides[i].
func strides(dims []int) []int {
	s := make([]int, len(dims))
	st := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = st
		st *= dims[i]
	}
	return s
}

func prod(dims []int) int {
	p := 1
	for _, k := range dims {
		p *= k
	}
	return p
}

func validateDims(kind string, dims []int) {
	if len(dims) == 0 {
		panic(fmt.Sprintf("topology: %s needs at least one dimension", kind))
	}
	for i, k := range dims {
		if k < 2 {
			panic(fmt.Sprintf("topology: %s dimension %d has radix %d, need >= 2", kind, i, k))
		}
	}
	if prod(dims) > 1<<22 {
		panic(fmt.Sprintf("topology: %s with dims %v exceeds the 4M-node simulator limit", kind, dims))
	}
}
