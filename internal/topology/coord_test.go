package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordSubAddRoundTrip(t *testing.T) {
	c := Coord{2, 3}
	o := Coord{1, 1}
	v := c.Sub(o) // paper example §5: (2,3) − (1,1) = (1,2)
	if !v.Equal(Vector{1, 2}) {
		t.Errorf("Sub = %v, want (1,2)", v)
	}
	if !o.Add(v).Equal(c) {
		t.Errorf("Add did not invert Sub")
	}
}

func TestVectorWrap(t *testing.T) {
	dims := []int{4, 4}
	cases := []struct {
		in, want Vector
	}{
		{Vector{0, 0}, Vector{0, 0}},
		{Vector{3, 0}, Vector{-1, 0}}, // 3 ≡ −1 (mod 4), and |−1| < |3|
		{Vector{-3, 0}, Vector{1, 0}}, // −3 ≡ 1
		{Vector{2, -2}, Vector{2, 2}}, // tie at k/2 canonicalizes to +2
		{Vector{5, 7}, Vector{1, -1}}, // general reduction
		{Vector{-5, -7}, Vector{-1, 1}},
	}
	for _, tc := range cases {
		if got := tc.in.Wrap(dims); !got.Equal(tc.want) {
			t.Errorf("Wrap(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVectorMod(t *testing.T) {
	dims := []int{4, 5}
	if got := (Vector{-1, 7}).Mod(dims); !got.Equal(Vector{3, 2}) {
		t.Errorf("Mod = %v, want (3,2)", got)
	}
}

func TestVectorWrapIsCanonicalResidue(t *testing.T) {
	// Property: Wrap(v) ≡ v (mod k) per dimension and lies in (−k/2, k/2].
	f := func(a, b int8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{2 + r.Intn(15), 2 + r.Intn(15)}
		v := Vector{int(a), int(b)}
		w := v.Wrap(dims)
		for i := range w {
			k := dims[i]
			if ((w[i]-v[i])%k+k)%k != 0 {
				return false
			}
			if w[i] <= -(k+1)/2 || w[i] > k/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVectorAddInPlaceAccumulates(t *testing.T) {
	v := Zero(2)
	for _, d := range []Vector{{1, 0}, {1, 0}, {0, -1}, {-1, 0}, {0, 1}, {0, 1}, {0, 1}} {
		v.AddInPlace(d)
	}
	// This is the adaptive route of Figure 3(b): final vector (1,2).
	if !v.Equal(Vector{1, 2}) {
		t.Errorf("accumulated vector = %v, want (1,2)", v)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{3, -4}
	if v.L1() != 7 {
		t.Errorf("L1 = %d, want 7", v.L1())
	}
	if !v.Neg().Equal(Vector{-3, 4}) {
		t.Errorf("Neg = %v", v.Neg())
	}
	if v.IsZero() {
		t.Error("IsZero on nonzero vector")
	}
	if !Zero(3).IsZero() {
		t.Error("Zero(3) not IsZero")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Error("Clone aliases the original")
	}
}

func TestCoordString(t *testing.T) {
	if got := (Coord{1, 2, 3}).String(); got != "(1,2,3)" {
		t.Errorf("String = %q", got)
	}
	if got := (Vector{-1, 0}).String(); got != "(-1,0)" {
		t.Errorf("String = %q", got)
	}
}

func TestMismatchedDimsPanic(t *testing.T) {
	funcs := map[string]func(){
		"Sub":        func() { _ = Coord{1}.Sub(Coord{1, 2}) },
		"Add":        func() { _ = Coord{1}.Add(Vector{1, 2}) },
		"Xor":        func() { _ = Coord{1}.Xor(Coord{1, 2}) },
		"Manhattan":  func() { _ = Coord{1}.Manhattan(Coord{1, 2}) },
		"AddInPlace": func() { Vector{1}.AddInPlace(Vector{1, 2}) },
		"Wrap":       func() { Vector{1}.Wrap([]int{2, 2}) },
		"Mod":        func() { Vector{1}.Mod([]int{2, 2}) },
	}
	for name, fn := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched dims did not panic", name)
				}
			}()
			fn()
		}()
	}
}
