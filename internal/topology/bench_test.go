package topology

import "testing"

func BenchmarkMeshNeighbors(b *testing.B) {
	m := NewMesh2D(32)
	for i := 0; i < b.N; i++ {
		_ = m.Neighbors(NodeID(i % m.NumNodes()))
	}
}

func BenchmarkTorusMinDistance(b *testing.B) {
	tr := NewTorus2D(32)
	n := tr.NumNodes()
	for i := 0; i < b.N; i++ {
		_ = tr.MinDistance(NodeID(i%n), NodeID((i*7)%n))
	}
}

func BenchmarkHypercubeNeighbors(b *testing.B) {
	h := NewHypercube(16)
	for i := 0; i < b.N; i++ {
		_ = h.Neighbors(NodeID(i % h.NumNodes()))
	}
}

func BenchmarkCoordIndexRoundTrip(b *testing.B) {
	m := NewMesh(16, 16, 32)
	n := m.NumNodes()
	for i := 0; i < b.N; i++ {
		id := NodeID(i % n)
		c := m.CoordOf(id)
		if m.IndexOf(c) != id {
			b.Fatal("round trip failed")
		}
	}
}

func BenchmarkDisplacement(b *testing.B) {
	tr := NewTorus2D(128)
	cur := tr.IndexOf(Coord{0, 0})
	next := tr.IndexOf(Coord{127, 0}) // wraparound hop
	for i := 0; i < b.N; i++ {
		_ = Displacement(tr, cur, next)
	}
}

func BenchmarkMinimalDims(b *testing.B) {
	tr := NewTorus2D(64)
	n := tr.NumNodes()
	for i := 0; i < b.N; i++ {
		_ = MinimalDims(tr, NodeID(i%n), NodeID((i*13+5)%n))
	}
}

func BenchmarkBFSDistances(b *testing.B) {
	m := NewMesh2D(16)
	for i := 0; i < b.N; i++ {
		_ = BFSDistances(m, NodeID(i%m.NumNodes()), nil)
	}
}
