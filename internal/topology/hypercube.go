package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is an n-cube: an n-dimensional mesh with k_i = 2 for every
// dimension (paper §3, Figure 1(c)). Both its degree and diameter are n.
// Coordinates are bit vectors; two nodes are neighbors iff their
// addresses differ in exactly one bit.
type Hypercube struct {
	n    int // dimensions
	dims []int
	name string
}

// NewHypercube constructs an n-cube with 2^n nodes. n must be in [1, 22]
// (the simulator's 4M-node limit).
func NewHypercube(n int) *Hypercube {
	if n < 1 || n > 22 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range [1,22]", n))
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = 2
	}
	return &Hypercube{n: n, dims: dims, name: fmt.Sprintf("hypercube-%d", n)}
}

func (h *Hypercube) Name() string  { return h.name }
func (h *Hypercube) Dims() []int   { return h.dims }
func (h *Hypercube) NumNodes() int { return 1 << h.n }
func (h *Hypercube) Degree() int   { return h.n }
func (h *Hypercube) Diameter() int { return h.n }

// DimBits returns n, the address width in bits.
func (h *Hypercube) DimBits() int { return h.n }

func (h *Hypercube) IndexOf(c Coord) NodeID {
	if len(c) != h.n {
		panic(fmt.Sprintf("topology: hypercube coordinate %v has %d dims, want %d", c, len(c), h.n))
	}
	id := 0
	for i, v := range c {
		if v != 0 && v != 1 {
			panic(fmt.Sprintf("topology: hypercube coordinate %v has non-binary entry", c))
		}
		id = id<<1 | v
		_ = i
	}
	return NodeID(id)
}

func (h *Hypercube) CoordOf(id NodeID) Coord {
	c := make(Coord, h.n)
	h.CoordInto(id, c)
	return c
}

// CoordInto writes id's bit-vector coordinate into dst without
// allocating.
func (h *Hypercube) CoordInto(id NodeID, dst Coord) {
	if id < 0 || int(id) >= h.NumNodes() {
		panic(fmt.Sprintf("topology: hypercube node id %d out of range", id))
	}
	if len(dst) != h.n {
		panic(fmt.Sprintf("topology: coordinate buffer has %d dims, want %d", len(dst), h.n))
	}
	for i := 0; i < h.n; i++ {
		dst[h.n-1-i] = int(id) >> i & 1
	}
}

// Neighbors flips each address bit in turn, dimension 0 (most
// significant bit) first to match Coord ordering.
func (h *Hypercube) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, h.n)
	for dim := 0; dim < h.n; dim++ {
		out[dim] = id ^ NodeID(1<<(h.n-1-dim))
	}
	return out
}

func (h *Hypercube) IsNeighbor(a, b NodeID) bool {
	return bits.OnesCount(uint(a^b)) == 1
}

// MinDistance is the Hamming distance between the two addresses.
func (h *Hypercube) MinDistance(a, b NodeID) int {
	return bits.OnesCount(uint(a ^ b))
}

func (h *Hypercube) Wraparound() bool { return false }

// Step flips the bit for dim; dir is accepted for interface symmetry
// but both directions reach the same neighbor in an n-cube.
func (h *Hypercube) Step(id NodeID, dim, dir int) NodeID {
	if dim < 0 || dim >= h.n {
		panic(fmt.Sprintf("topology: hypercube Step dimension %d out of range", dim))
	}
	return id ^ NodeID(1<<(h.n-1-dim))
}
