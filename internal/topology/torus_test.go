package topology

import "testing"

func TestTorusBasicProperties(t *testing.T) {
	// Paper Figure 1(b): 4-ary 2-cube.
	tr := NewTorus2D(4)
	if got := tr.NumNodes(); got != 16 {
		t.Errorf("NumNodes = %d, want 16", got)
	}
	if got := tr.Degree(); got != 4 {
		t.Errorf("Degree = %d, want 4", got)
	}
	// Diameter is k/2 per dimension for even k (paper §3): 2 + 2.
	if got := tr.Diameter(); got != 4 {
		t.Errorf("Diameter = %d, want 4", got)
	}
	if !tr.Wraparound() {
		t.Error("torus must report wraparound")
	}
}

func TestTorusNeighborsAllDegree(t *testing.T) {
	tr := NewTorus2D(4)
	for id := 0; id < tr.NumNodes(); id++ {
		if nbs := tr.Neighbors(NodeID(id)); len(nbs) != 4 {
			t.Fatalf("node %d has %d neighbors, want 4 (torus has no boundary)", id, len(nbs))
		}
	}
}

func TestTorusWraparoundNeighbors(t *testing.T) {
	tr := NewTorus2D(4)
	a := tr.IndexOf(Coord{0, 0})
	b := tr.IndexOf(Coord{3, 0})
	c := tr.IndexOf(Coord{0, 3})
	if !tr.IsNeighbor(a, b) {
		t.Error("(0,0) and (3,0) must be wraparound neighbors")
	}
	if !tr.IsNeighbor(a, c) {
		t.Error("(0,0) and (0,3) must be wraparound neighbors")
	}
	if tr.IsNeighbor(a, tr.IndexOf(Coord{2, 0})) {
		t.Error("(0,0) and (2,0) must not be neighbors")
	}
	if tr.IsNeighbor(a, a) {
		t.Error("a node must not be its own neighbor")
	}
}

func TestTorusRadixTwoCollapsesLinks(t *testing.T) {
	// In a 2-ary dimension the +1 and −1 neighbors coincide; the
	// duplicate must be collapsed.
	tr := NewTorus(2, 4)
	nbs := tr.Neighbors(tr.IndexOf(Coord{0, 0}))
	seen := map[NodeID]int{}
	for _, nb := range nbs {
		seen[nb]++
	}
	for nb, n := range seen {
		if n > 1 {
			t.Errorf("neighbor %v listed %d times", tr.CoordOf(nb), n)
		}
	}
	if len(nbs) != 3 {
		t.Errorf("node in 2x4 torus has %d neighbors, want 3", len(nbs))
	}
}

func TestTorusMinDistanceMatchesBFS(t *testing.T) {
	for _, tr := range []*Torus{NewTorus2D(4), NewTorus2D(5), NewTorus(3, 4, 2)} {
		for src := 0; src < tr.NumNodes(); src++ {
			dist := BFSDistances(tr, NodeID(src), nil)
			for dst := 0; dst < tr.NumNodes(); dst++ {
				if got := tr.MinDistance(NodeID(src), NodeID(dst)); got != dist[dst] {
					t.Fatalf("%s: MinDistance(%d,%d) = %d, BFS says %d",
						tr.Name(), src, dst, got, dist[dst])
				}
			}
		}
	}
}

func TestTorusStepWraps(t *testing.T) {
	tr := NewTorus2D(4)
	if got := tr.Step(tr.IndexOf(Coord{0, 0}), 0, -1); got != tr.IndexOf(Coord{3, 0}) {
		t.Errorf("Step wrap down = %v, want (3,0)", tr.CoordOf(got))
	}
	if got := tr.Step(tr.IndexOf(Coord{3, 3}), 1, 1); got != tr.IndexOf(Coord{3, 0}) {
		t.Errorf("Step wrap up = %v, want (3,0)", tr.CoordOf(got))
	}
}

func TestTorusIndexRoundTrip(t *testing.T) {
	tr := NewTorus(3, 5, 2)
	for id := 0; id < tr.NumNodes(); id++ {
		if back := tr.IndexOf(tr.CoordOf(NodeID(id))); back != NodeID(id) {
			t.Fatalf("round trip failed for %d", id)
		}
	}
}

func TestTorusDiameterOddRadix(t *testing.T) {
	tr := NewTorus2D(5)
	// ⌊5/2⌋ per dimension.
	if got := tr.Diameter(); got != 4 {
		t.Errorf("Diameter = %d, want 4", got)
	}
	// Verify empirically via BFS eccentricity from node 0 (the torus is
	// vertex-transitive, so one source suffices).
	dist := BFSDistances(tr, 0, nil)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	if max != tr.Diameter() {
		t.Errorf("BFS eccentricity %d != Diameter %d", max, tr.Diameter())
	}
}

func TestDisplacementTorusWraparound(t *testing.T) {
	tr := NewTorus2D(4)
	// A hop from (0,0) to (3,0) is physically a −1 move in dim 0.
	d := Displacement(tr, tr.IndexOf(Coord{0, 0}), tr.IndexOf(Coord{3, 0}))
	if !d.Equal(Vector{-1, 0}) {
		t.Errorf("Displacement = %v, want (-1,0)", d)
	}
	// And the reverse hop is +1.
	d = Displacement(tr, tr.IndexOf(Coord{3, 0}), tr.IndexOf(Coord{0, 0}))
	if !d.Equal(Vector{1, 0}) {
		t.Errorf("Displacement = %v, want (1,0)", d)
	}
	// Interior hop is unchanged.
	d = Displacement(tr, tr.IndexOf(Coord{1, 1}), tr.IndexOf(Coord{1, 2}))
	if !d.Equal(Vector{0, 1}) {
		t.Errorf("Displacement = %v, want (0,1)", d)
	}
}
