package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allNetworks() []Network {
	return []Network{
		NewMesh2D(4),
		NewMesh(3, 5),
		NewMesh(4, 4, 4),
		NewTorus2D(4),
		NewTorus2D(5),
		NewTorus(4, 6),
		NewHypercube(4),
		NewHypercube(6),
	}
}

func TestBFSDistancesWithFailures(t *testing.T) {
	m := NewMesh2D(3)
	// Fail both directions of the link between (0,0) and (0,1): the
	// distance from (0,0) to (0,1) becomes 3 (around through row 1).
	a, b := m.IndexOf(Coord{0, 0}), m.IndexOf(Coord{0, 1})
	failed := map[Link]bool{{From: a, To: b}: true, {From: b, To: a}: true}
	dist := BFSDistances(m, a, failed)
	if dist[b] != 3 {
		t.Errorf("distance with failed link = %d, want 3", dist[b])
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	m := NewMesh2D(2)
	// Isolate node (0,0) by failing both of its incident cables.
	a := m.IndexOf(Coord{0, 0})
	failed := map[Link]bool{}
	for _, nb := range m.Neighbors(a) {
		failed[Link{From: a, To: nb}] = true
		failed[Link{From: nb, To: a}] = true
	}
	dist := BFSDistances(m, a, failed)
	for id, d := range dist {
		if NodeID(id) == a {
			if d != 0 {
				t.Errorf("dist to self = %d", d)
			}
		} else if d != -1 {
			t.Errorf("node %d reachable (d=%d) despite isolation", id, d)
		}
	}
}

func TestMinimalDimsLeadsToDestination(t *testing.T) {
	// Property: repeatedly following any minimal (dim,dir) reaches dst
	// in exactly MinDistance hops, on every topology.
	for _, net := range allNetworks() {
		r := rand.New(rand.NewSource(42))
		for trial := 0; trial < 200; trial++ {
			src := NodeID(r.Intn(net.NumNodes()))
			dst := NodeID(r.Intn(net.NumNodes()))
			cur := src
			hops := 0
			for cur != dst {
				mins := MinimalDims(net, cur, dst)
				if len(mins) == 0 {
					t.Fatalf("%s: no minimal move from %d to %d", net.Name(), cur, dst)
				}
				mv := mins[r.Intn(len(mins))]
				next := net.Step(cur, mv.Dim, mv.Dir)
				if next == None {
					t.Fatalf("%s: minimal move %v off the network from %d", net.Name(), mv, cur)
				}
				cur = next
				hops++
				if hops > net.Diameter()+1 {
					t.Fatalf("%s: minimal walk from %d to %d exceeded diameter", net.Name(), src, dst)
				}
			}
			if want := net.MinDistance(src, dst); hops != want {
				t.Fatalf("%s: minimal walk took %d hops, want %d", net.Name(), hops, want)
			}
		}
	}
}

func TestDisplacementSumsToCoordinateDifference(t *testing.T) {
	// The core DDPM invariant (paper §5): for ANY walk from S to D —
	// minimal or not — the sum of per-hop displacements, reduced mod k
	// on a torus, equals D − S.
	for _, net := range allNetworks() {
		r := rand.New(rand.NewSource(7))
		dims := net.Dims()
		for trial := 0; trial < 100; trial++ {
			src := NodeID(r.Intn(net.NumNodes()))
			cur := src
			v := Zero(len(dims))
			steps := r.Intn(3 * net.Diameter())
			for s := 0; s < steps; s++ {
				nbs := net.Neighbors(cur)
				next := nbs[r.Intn(len(nbs))] // arbitrary random walk
				v.AddInPlace(Displacement(net, cur, next))
				cur = next
			}
			want := net.CoordOf(cur).Sub(net.CoordOf(src))
			got := v
			if net.Wraparound() {
				got = v.Mod(dims)
				want = want.Mod(dims)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: walk displacement %v != D−S %v (src=%d cur=%d)",
					net.Name(), got, want, src, cur)
			}
		}
	}
}

func TestDisplacementQuick(t *testing.T) {
	// testing/quick variant on a single torus: random walks always
	// satisfy the invariant.
	tr := NewTorus2D(8)
	f := func(seed int64, nsteps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		src := NodeID(r.Intn(tr.NumNodes()))
		cur := src
		v := Zero(2)
		for s := 0; s < int(nsteps); s++ {
			nbs := tr.Neighbors(cur)
			next := nbs[r.Intn(len(nbs))]
			v.AddInPlace(Displacement(tr, cur, next))
			cur = next
		}
		return v.Mod(tr.Dims()).Equal(tr.CoordOf(cur).Sub(tr.CoordOf(src)).Mod(tr.Dims()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLinksSortedAndComplete(t *testing.T) {
	for _, net := range allNetworks() {
		links := Links(net)
		if len(links) != NumLinks(net) {
			t.Errorf("%s: Links/NumLinks mismatch", net.Name())
		}
		for i := 1; i < len(links); i++ {
			a, b := links[i-1], links[i]
			if a.From > b.From || (a.From == b.From && a.To >= b.To) {
				t.Errorf("%s: links not strictly sorted at %d", net.Name(), i)
				break
			}
		}
		// Every link's reverse must also exist (full duplex).
		set := map[Link]bool{}
		for _, l := range links {
			set[l] = true
		}
		for _, l := range links {
			if !set[l.Reverse()] {
				t.Errorf("%s: missing reverse of %v", net.Name(), l)
			}
		}
	}
}

func TestHypercubeBisection(t *testing.T) {
	// An n-cube's bisection has 2^{n−1} cables = 2^n directed links.
	h := NewHypercube(4)
	if got := BisectionWidth(h); got != 16 {
		t.Errorf("BisectionWidth = %d, want 16", got)
	}
}
