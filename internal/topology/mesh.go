package topology

import (
	"fmt"
	"strings"
)

// Mesh is an n-dimensional mesh with k_0 × k_1 × … × k_{n−1} nodes.
// Nodes X and Y are neighbors iff their coordinates agree in every
// dimension except one, where they differ by exactly 1 (paper §3).
type Mesh struct {
	dims    []int
	strides []int
	coords  []int32 // coordTable(dims): hot-path coordinate lookups
	name    string
}

// NewMesh constructs an n-dimensional mesh. Each radix must be >= 2.
func NewMesh(dims ...int) *Mesh {
	validateDims("mesh", dims)
	d := make([]int, len(dims))
	copy(d, dims)
	return &Mesh{dims: d, strides: strides(d), coords: coordTable(d), name: "mesh-" + dimString(d)}
}

// NewMesh2D is a convenience constructor for the k×k 2-D meshes used
// throughout the paper's examples.
func NewMesh2D(k int) *Mesh { return NewMesh(k, k) }

func (m *Mesh) Name() string  { return m.name }
func (m *Mesh) Dims() []int   { return m.dims }
func (m *Mesh) NumNodes() int { return prod(m.dims) }

// Degree is 2n for an n-dimensional mesh (paper §3); boundary nodes
// have fewer incident links but Degree reports the maximum.
func (m *Mesh) Degree() int { return 2 * len(m.dims) }

// Diameter is Σ(k_i − 1): the corner-to-corner Manhattan distance.
func (m *Mesh) Diameter() int {
	d := 0
	for _, k := range m.dims {
		d += k - 1
	}
	return d
}

func (m *Mesh) IndexOf(c Coord) NodeID  { return indexOf(m.dims, c) }
func (m *Mesh) CoordOf(id NodeID) Coord { return coordOf(m.dims, id) }

// CoordInto writes id's coordinate into dst without allocating.
func (m *Mesh) CoordInto(id NodeID, dst Coord) { tableCoordInto(m.coords, len(m.dims), id, dst) }

func (m *Mesh) Neighbors(id NodeID) []NodeID {
	c := m.CoordOf(id)
	out := make([]NodeID, 0, 2*len(m.dims))
	for dim := 0; dim < len(m.dims); dim++ {
		if c[dim] > 0 {
			c[dim]--
			out = append(out, m.IndexOf(c))
			c[dim]++
		}
		if c[dim] < m.dims[dim]-1 {
			c[dim]++
			out = append(out, m.IndexOf(c))
			c[dim]--
		}
	}
	return out
}

func (m *Mesh) IsNeighbor(a, b NodeID) bool {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return ca.Manhattan(cb) == 1
}

func (m *Mesh) MinDistance(a, b NodeID) int {
	return m.CoordOf(a).Manhattan(m.CoordOf(b))
}

func (m *Mesh) Wraparound() bool { return false }

// Step returns the neighbor of id offset by ±1 along dim, or None if
// that would leave the mesh. It is pure stride arithmetic — no
// coordinate materialization — because routers call it once per
// candidate per hop.
func (m *Mesh) Step(id NodeID, dim, dir int) NodeID {
	if dir != 1 && dir != -1 {
		panic(fmt.Sprintf("topology: Step direction must be ±1, got %d", dir))
	}
	s := m.strides[dim]
	v := int(m.coords[int(id)*len(m.dims)+dim])
	v += dir
	if v < 0 || v >= m.dims[dim] {
		return None
	}
	return id + NodeID(dir*s)
}

func dimString(dims []int) string {
	parts := make([]string, len(dims))
	for i, k := range dims {
		parts[i] = fmt.Sprintf("%d", k)
	}
	return strings.Join(parts, "x")
}
