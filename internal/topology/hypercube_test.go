package topology

import (
	"math/bits"
	"testing"
)

func TestHypercubeBasicProperties(t *testing.T) {
	// Paper Figure 1(c): 3-cube. Degree and diameter are both n.
	h := NewHypercube(3)
	if got := h.NumNodes(); got != 8 {
		t.Errorf("NumNodes = %d, want 8", got)
	}
	if got := h.Degree(); got != 3 {
		t.Errorf("Degree = %d, want 3", got)
	}
	if got := h.Diameter(); got != 3 {
		t.Errorf("Diameter = %d, want 3", got)
	}
	if h.Wraparound() {
		t.Error("hypercube must not report wraparound")
	}
}

func TestHypercubeCoordIsBitVector(t *testing.T) {
	h := NewHypercube(3)
	if c := h.CoordOf(0b110); !c.Equal(Coord{1, 1, 0}) {
		t.Errorf("CoordOf(6) = %v, want (1,1,0)", c)
	}
	if id := h.IndexOf(Coord{1, 0, 1}); id != 0b101 {
		t.Errorf("IndexOf(1,0,1) = %d, want 5", id)
	}
}

func TestHypercubeRoundTrip(t *testing.T) {
	h := NewHypercube(6)
	for id := 0; id < h.NumNodes(); id++ {
		if back := h.IndexOf(h.CoordOf(NodeID(id))); back != NodeID(id) {
			t.Fatalf("round trip failed for %d", id)
		}
	}
}

func TestHypercubeNeighborsAreSingleBitFlips(t *testing.T) {
	h := NewHypercube(4)
	for id := 0; id < h.NumNodes(); id++ {
		nbs := h.Neighbors(NodeID(id))
		if len(nbs) != 4 {
			t.Fatalf("node %d has %d neighbors, want 4", id, len(nbs))
		}
		for _, nb := range nbs {
			if bits.OnesCount(uint(NodeID(id)^nb)) != 1 {
				t.Errorf("neighbors %d and %d differ in more than one bit", id, nb)
			}
		}
	}
}

func TestHypercubeMinDistanceIsHamming(t *testing.T) {
	h := NewHypercube(4)
	for src := 0; src < h.NumNodes(); src++ {
		dist := BFSDistances(h, NodeID(src), nil)
		for dst := 0; dst < h.NumNodes(); dst++ {
			want := bits.OnesCount(uint(src ^ dst))
			if dist[dst] != want {
				t.Fatalf("BFS(%d,%d) = %d, want Hamming %d", src, dst, dist[dst], want)
			}
			if got := h.MinDistance(NodeID(src), NodeID(dst)); got != want {
				t.Fatalf("MinDistance(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
}

func TestHypercubeStepFlipsBit(t *testing.T) {
	h := NewHypercube(3)
	// Dimension 0 is the most significant bit.
	if got := h.Step(0b000, 0, 1); got != 0b100 {
		t.Errorf("Step(000, dim0) = %03b, want 100", got)
	}
	if got := h.Step(0b111, 2, -1); got != 0b110 {
		t.Errorf("Step(111, dim2) = %03b, want 110", got)
	}
}

func TestHypercubeXorIsDistance(t *testing.T) {
	// Paper §5: in the hypercube the distance vector is the XOR of the
	// two addresses; S = X XOR V.
	h := NewHypercube(3)
	src := h.CoordOf(0b110)
	dst := h.CoordOf(0b000)
	v := dst.Xor(src)
	if !v.Equal(Coord{1, 1, 0}) {
		t.Errorf("Xor = %v, want (1,1,0)", v)
	}
	if !dst.Xor(v).Equal(src) {
		t.Errorf("dst XOR v = %v, want src %v", dst.Xor(v), src)
	}
}

func TestHypercubeInvalidConstruction(t *testing.T) {
	for _, n := range []int{0, -1, 23} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHypercube(%d) did not panic", n)
				}
			}()
			NewHypercube(n)
		}()
	}
}
