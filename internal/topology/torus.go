package topology

import "fmt"

// Torus is a k-ary n-cube: an n-dimensional mesh with wraparound
// channels, so X and Y are neighbors iff they agree in every dimension
// except one where x_i = (y_i ± 1) mod k_i (paper §3).
type Torus struct {
	dims    []int
	strides []int
	coords  []int32 // coordTable(dims): hot-path coordinate lookups
	name    string
}

// NewTorus constructs a torus with the given per-dimension radixes.
// Radixes must be >= 2 (for k=2 the wraparound link coincides with the
// mesh link and is collapsed to a single channel).
func NewTorus(dims ...int) *Torus {
	validateDims("torus", dims)
	d := make([]int, len(dims))
	copy(d, dims)
	return &Torus{dims: d, strides: strides(d), coords: coordTable(d), name: "torus-" + dimString(d)}
}

// NewTorus2D builds the k-ary 2-cube of the paper's Figure 1(b).
func NewTorus2D(k int) *Torus { return NewTorus(k, k) }

func (t *Torus) Name() string  { return t.name }
func (t *Torus) Dims() []int   { return t.dims }
func (t *Torus) NumNodes() int { return prod(t.dims) }

// Degree is 2n, as for the mesh; every node is interior thanks to the
// wraparound channels.
func (t *Torus) Degree() int { return 2 * len(t.dims) }

// Diameter is Σ⌊k_i/2⌋ (paper §3 gives k/2 per even dimension).
func (t *Torus) Diameter() int {
	d := 0
	for _, k := range t.dims {
		d += k / 2
	}
	return d
}

func (t *Torus) IndexOf(c Coord) NodeID  { return indexOf(t.dims, c) }
func (t *Torus) CoordOf(id NodeID) Coord { return coordOf(t.dims, id) }

// CoordInto writes id's coordinate into dst without allocating.
func (t *Torus) CoordInto(id NodeID, dst Coord) { tableCoordInto(t.coords, len(t.dims), id, dst) }

func (t *Torus) Neighbors(id NodeID) []NodeID {
	c := t.CoordOf(id)
	out := make([]NodeID, 0, 2*len(t.dims))
	for dim := 0; dim < len(t.dims); dim++ {
		k := t.dims[dim]
		orig := c[dim]
		down := (orig - 1 + k) % k
		up := (orig + 1) % k
		c[dim] = down
		out = append(out, t.IndexOf(c))
		if up != down { // k == 2 collapses both directions onto one link
			c[dim] = up
			out = append(out, t.IndexOf(c))
		}
		c[dim] = orig
	}
	return out
}

func (t *Torus) IsNeighbor(a, b NodeID) bool {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	diffDim := -1
	for i := range ca {
		if ca[i] != cb[i] {
			if diffDim != -1 {
				return false
			}
			diffDim = i
		}
	}
	if diffDim == -1 {
		return false
	}
	k := t.dims[diffDim]
	d := ((ca[diffDim]-cb[diffDim])%k + k) % k
	return d == 1 || d == k-1
}

func (t *Torus) MinDistance(a, b NodeID) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	d := 0
	for i := range ca {
		k := t.dims[i]
		fwd := ((cb[i]-ca[i])%k + k) % k
		if k-fwd < fwd {
			d += k - fwd
		} else {
			d += fwd
		}
	}
	return d
}

func (t *Torus) Wraparound() bool { return true }

// Step returns the neighbor of id offset by ±1 (mod k) along dim.
// On a torus every step succeeds. Pure stride arithmetic, no
// coordinate materialization: routers call it once per candidate per hop.
func (t *Torus) Step(id NodeID, dim, dir int) NodeID {
	if dir != 1 && dir != -1 {
		panic(fmt.Sprintf("topology: Step direction must be ±1, got %d", dir))
	}
	s := t.strides[dim]
	k := t.dims[dim]
	v := int(t.coords[int(id)*len(t.dims)+dim])
	nv := v + dir // v is in [0,k), dir is ±1: a single wrap check suffices
	if nv < 0 {
		nv += k
	} else if nv >= k {
		nv -= k
	}
	return id + NodeID((nv-v)*s)
}
