package loadgen

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// SparseScenario parameterizes a destination-scan workload: a handful
// of genuinely attacked victims receiving real marked traffic, buried
// in a scan that touches a huge number of distinct destination ids
// exactly once. It is the adversarial shape for per-victim state — a
// daemon that materializes detectors per destination seen would build
// one for every scanned id — and the proving ground for the sketch
// admission gate, which must keep exact state bounded by the attacked
// set without losing identification on it.
type SparseScenario struct {
	Net     topology.Network  // required
	Victims []topology.NodeID // attacked victims (default: 8 spread over the fabric)

	// PerVictim is how many marked records each attacked victim
	// receives (default 64) from Sources distinct zombies (default 4).
	PerVictim int
	Sources   int

	// ScanIDs is the number of distinct destination ids scanned, 0
	// inclusive (default 1<<20). Ids beyond the fabric are validation
	// rejects; in-fabric ids exercise the admission gate.
	ScanIDs int

	Seed uint64
}

// SparseResult is the generated workload plus ground truth.
type SparseResult struct {
	// Prelude carries the attacked victims' marked records, interleaved
	// round-robin across victims — every MF is the true displacement a
	// marked packet from its zombie would accumulate.
	Prelude []wire.Record
	// Scan holds one record per scanned destination id, skipping the
	// attacked victims (their traffic is the prelude).
	Scan []wire.Record

	Victims []topology.NodeID
	// Truth maps each attacked victim to its per-source record counts.
	Truth map[topology.NodeID]map[topology.NodeID]int64

	TopoID uint32
	// InFabricScan counts scan records whose destination is a real node
	// (the rest fail victim validation at submit).
	InFabricScan int
}

// GenerateSparse synthesizes the scenario. Records are built directly
// from the marking scheme's codec — no simulator run — so million-id
// scans are cheap and the prelude MFs are exactly what an intact DDPM
// walk would deliver.
func GenerateSparse(s SparseScenario) (*SparseResult, error) {
	if s.Net == nil {
		return nil, fmt.Errorf("loadgen: sparse scenario needs a network")
	}
	scheme, err := marking.NewDDPM(s.Net)
	if err != nil {
		return nil, err
	}
	nodes := s.Net.NumNodes()
	if len(s.Victims) == 0 {
		for i := 0; i < 8; i++ {
			s.Victims = append(s.Victims, topology.NodeID(i*nodes/8))
		}
	}
	if s.PerVictim <= 0 {
		s.PerVictim = 64
	}
	if s.Sources <= 0 {
		s.Sources = 4
	}
	if s.ScanIDs <= 0 {
		s.ScanIDs = 1 << 20
	}

	attacked := make(map[topology.NodeID]bool, len(s.Victims))
	for _, v := range s.Victims {
		if int(v) >= nodes || v < 0 {
			return nil, fmt.Errorf("loadgen: victim %d outside %s", v, s.Net.Name())
		}
		attacked[v] = true
	}

	res := &SparseResult{
		Victims: s.Victims,
		Truth:   make(map[topology.NodeID]map[topology.NodeID]int64, len(s.Victims)),
		TopoID:  wire.TopoID(s.Net.Name()),
	}
	stream := rng.NewStream(s.Seed + 1)

	// Per-victim zombie sets and their encoded MFs.
	dims := s.Net.Dims()
	mfs := make([][]uint16, len(s.Victims))
	for i, v := range s.Victims {
		res.Truth[v] = make(map[topology.NodeID]int64, s.Sources)
		seen := map[topology.NodeID]bool{v: true}
		for len(mfs[i]) < s.Sources {
			src := topology.NodeID(stream.Intn(nodes))
			if seen[src] {
				continue
			}
			seen[src] = true
			sc, dc := s.Net.CoordOf(src), s.Net.CoordOf(v)
			vec := make(topology.Vector, len(sc))
			for j := range vec {
				vec[j] = dc[j] - sc[j]
				if dims[j] == 2 {
					// Binary dimension (hypercube): the walk accumulates
					// mod 2 — the codec wants the XOR displacement.
					vec[j] = ((vec[j] % 2) + 2) % 2
				}
			}
			mf, err := scheme.Codec().Encode(vec)
			if err != nil {
				return nil, err
			}
			mfs[i] = append(mfs[i], mf)
			res.Truth[v][src] = int64(s.PerVictim / s.Sources)
			if rem := s.PerVictim % s.Sources; len(mfs[i]) <= rem {
				res.Truth[v][src]++
			}
		}
	}
	// Interleave victims round-robin so admission thresholds are crossed
	// under realistic mixing, not one victim at a time.
	res.Prelude = make([]wire.Record, 0, len(s.Victims)*s.PerVictim)
	for k := 0; k < s.PerVictim; k++ {
		for i, v := range s.Victims {
			res.Prelude = append(res.Prelude, wire.Record{
				T: eventq.Time(len(res.Prelude)), Topo: res.TopoID, Victim: v,
				MF: mfs[i][k%len(mfs[i])], Src: packet.Addr(uint32(k)), Proto: packet.ProtoTCPSYN,
			})
		}
	}

	// The scan: every destination id once. The MF is junk — these
	// records must die before decode, in validation or the sketch.
	res.Scan = make([]wire.Record, 0, s.ScanIDs-len(s.Victims))
	t := eventq.Time(len(res.Prelude))
	for id := 0; id < s.ScanIDs; id++ {
		v := topology.NodeID(id)
		if attacked[v] {
			continue
		}
		if id < nodes {
			res.InFabricScan++
		}
		res.Scan = append(res.Scan, wire.Record{
			T: t, Topo: res.TopoID, Victim: v,
			MF: uint16(id), Src: packet.Addr(uint32(id)), Proto: packet.ProtoUDP,
		})
		t++
	}
	return res, nil
}
