package loadgen

import (
	"reflect"
	"testing"

	"repro/internal/marking"
	"repro/internal/topology"
	"repro/internal/traceback"
)

// TestGenerateSparseDeterministicAndDecodable: same seed, same stream;
// the prelude MFs decode offline to exactly the ground-truth tallies;
// the scan covers every non-attacked id once with the in-fabric count
// right.
func TestGenerateSparseDeterministicAndDecodable(t *testing.T) {
	net := topology.NewHypercube(10) // 1024 nodes, keeps the test fast
	sc := SparseScenario{Net: net, PerVictim: 10, Sources: 3, ScanIDs: 2048, Seed: 42}
	a, err := GenerateSparse(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSparse(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}

	if len(a.Victims) != 8 || len(a.Prelude) != 8*10 {
		t.Fatalf("prelude shape: %d victims, %d records", len(a.Victims), len(a.Prelude))
	}
	if want := 1024 - 8; a.InFabricScan != want {
		t.Fatalf("in-fabric scan = %d, want %d", a.InFabricScan, want)
	}
	if want := 2048 - 8; len(a.Scan) != want {
		t.Fatalf("scan records = %d, want %d", len(a.Scan), want)
	}
	seen := map[topology.NodeID]bool{}
	for _, rec := range a.Scan {
		if seen[rec.Victim] {
			t.Fatalf("scan id %d repeated", rec.Victim)
		}
		seen[rec.Victim] = true
		if a.Truth[rec.Victim] != nil {
			t.Fatalf("scan touched attacked victim %d", rec.Victim)
		}
	}

	scheme, err := marking.NewDDPM(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Victims {
		ident := traceback.NewDDPMIdentifier(scheme, v)
		n := 0
		for _, rec := range a.Prelude {
			if rec.Victim == v {
				ident.ObserveMF(rec.MF)
				n++
			}
		}
		if n != 10 {
			t.Fatalf("victim %d got %d prelude records, want 10", v, n)
		}
		if ident.Undecodable() != 0 {
			t.Fatalf("victim %d: %d prelude MFs undecodable", v, ident.Undecodable())
		}
		got := map[topology.NodeID]int64{}
		ident.EachSource(func(src topology.NodeID, count int64) { got[src] = count })
		if !reflect.DeepEqual(got, a.Truth[v]) {
			t.Fatalf("victim %d tallies %v, truth %v", v, got, a.Truth[v])
		}
	}
}
