package loadgen

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestGenerateDeterministicAndGrounded(t *testing.T) {
	s := Scenario{Topo: core.Torus2D(4), Zombies: 2, Seed: 7, Warmup: 500, Attack: 1000}
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) || !reflect.DeepEqual(a.Zombies, b.Zombies) {
		t.Fatal("same seed produced different scenarios")
	}

	if a.Victim != topology.NodeID(15) {
		t.Errorf("default victim = %d, want 15", a.Victim)
	}
	if len(a.Zombies) != 2 {
		t.Fatalf("zombies = %v, want 2 distinct", a.Zombies)
	}
	for i, z := range a.Zombies {
		if z == a.Victim {
			t.Errorf("zombie %d is the victim", z)
		}
		if i > 0 && a.Zombies[i-1] >= z {
			t.Errorf("zombies not sorted/unique: %v", a.Zombies)
		}
	}
	if a.AttackRecords == 0 {
		t.Error("no records delivered during the attack window")
	}
	// Every record belongs to the victim's stream; SYN traffic exists.
	syn := 0
	for _, r := range a.Records {
		if r.Victim != a.Victim || r.Topo != a.TopoID {
			t.Fatalf("record addressed elsewhere: %+v", r)
		}
		if r.Proto == packet.ProtoTCPSYN {
			syn++
		}
	}
	if syn == 0 {
		t.Error("flood produced no SYN records")
	}
}

func TestGenerateRejectsBadVictim(t *testing.T) {
	_, err := Generate(Scenario{Topo: core.Torus2D(4), Victim: 99, Warmup: 10, Attack: 10})
	if err == nil {
		t.Fatal("victim outside the fabric accepted")
	}
}
