// Package loadgen turns a closed-loop simulated DDoS scenario into an
// open-loop record stream for ddpmd: it runs a seeded SYN flood (plus
// legitimate background traffic) through the cycle-accurate simulator
// and captures every packet delivered to the victim as a wire.Record —
// exactly what the victim's NIC exporter would emit — together with
// the scenario's ground truth for end-to-end verification.
package loadgen

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Scenario parameterizes one generated attack. Zero values take the
// defaults noted per field.
type Scenario struct {
	Topo    core.TopoSpec   // required
	Victim  topology.NodeID // default: highest-numbered node
	Zombies int             // default 3
	Seed    uint64          // deterministic scenario seed

	AttackGap  eventq.Time // CBR gap per zombie (default 2 ticks)
	Background float64     // per-node background rate (default 0.002 pkts/tick)
	Warmup     eventq.Time // quiet ticks before the flood (default 3000)
	Attack     eventq.Time // flood duration (default 6000)
}

// Result is the generated stream plus ground truth.
type Result struct {
	Records  []wire.Record // victim NIC observations in delivery order
	Zombies  []topology.NodeID
	Victim   topology.NodeID
	TopoName string
	TopoID   uint32

	// AttackRecords counts records delivered during the flood window
	// (diagnostics; includes background that arrived alongside).
	AttackRecords int
}

// Generate runs the scenario to completion and captures the victim's
// delivery stream.
func Generate(s Scenario) (*Result, error) {
	if s.Zombies <= 0 {
		s.Zombies = 3
	}
	if s.AttackGap <= 0 {
		s.AttackGap = 2
	}
	if s.Background <= 0 {
		s.Background = 0.002
	}
	if s.Warmup <= 0 {
		s.Warmup = 3000
	}
	if s.Attack <= 0 {
		s.Attack = 6000
	}
	cl, err := core.Build(core.Config{Topo: s.Topo, Scheme: "ddpm", Seed: s.Seed, QueueCap: 512})
	if err != nil {
		return nil, err
	}
	victim := s.Victim
	if victim <= 0 {
		victim = topology.NodeID(cl.Net.NumNodes() - 1)
	}
	if int(victim) >= cl.Net.NumNodes() {
		return nil, fmt.Errorf("loadgen: victim %d outside %s", victim, cl.Net.Name())
	}

	res := &Result{Victim: victim, TopoName: cl.Net.Name(), TopoID: wire.TopoID(cl.Net.Name())}
	cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		if pk.DstNode != victim {
			return
		}
		res.Records = append(res.Records, wire.Record{
			T: now, Topo: res.TopoID, Victim: victim,
			MF: pk.Hdr.ID, Src: pk.Hdr.Src, Proto: pk.Hdr.Proto,
		})
		if now >= s.Warmup {
			res.AttackRecords++
		}
	})

	stop := s.Warmup + s.Attack
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: s.Background,
		Start: 0, Stop: stop, R: cl.Rng.Stream("loadgen-bg"),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		return nil, err
	}

	zstream := cl.Rng.Stream("loadgen-zombies")
	zset := map[topology.NodeID]bool{}
	for len(zset) < s.Zombies {
		z := topology.NodeID(zstream.Intn(cl.Net.NumNodes()))
		if z != victim {
			zset[z] = true
		}
	}
	for z := range zset {
		res.Zombies = append(res.Zombies, z)
	}
	// Launch zombies in sorted node order: map iteration order would
	// leak into event tie-breaking and break scenario determinism.
	sortNodes(res.Zombies)
	var zs []attack.Zombie
	for _, z := range res.Zombies {
		zs = append(zs, attack.Zombie{
			Node: z, Victim: victim, Proto: packet.ProtoTCPSYN,
			Arrival: attack.CBR{Interval: s.AttackGap},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: cl.Rng.Stream(fmt.Sprintf("loadgen-spoof-%d", z))},
		})
	}
	flood := &attack.Flood{
		Zombies: zs, Start: s.Warmup, Stop: stop,
		RandomID: cl.Rng.Stream("loadgen-ids"),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		return nil, err
	}
	cl.Sim.RunAll(1 << 40)
	if len(res.Records) == 0 {
		return nil, fmt.Errorf("loadgen: scenario delivered nothing to victim %d", victim)
	}
	return res, nil
}

// sortNodes is an insertion sort — zombie sets are tiny and this
// avoids an import for one call.
func sortNodes(ns []topology.NodeID) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Stream hands the result's records to send in delivery order, in
// batches of at most batchSize (default 1024). Send errors from a
// resilient exporter are advisory shed notices, so Stream keeps
// delivering the remaining batches either way — every record is
// offered exactly once — and returns the collected errors.
func (r *Result) Stream(send func([]wire.Record) error, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 1024
	}
	var errs []error
	for i := 0; i < len(r.Records); i += batchSize {
		end := min(i+batchSize, len(r.Records))
		if err := send(r.Records[i:end]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
