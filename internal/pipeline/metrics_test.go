package pipeline

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/topology"
	"repro/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestPromEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestMetricsGolden pins the full /metrics exposition — series order,
// names, labels, escaping — against a golden file. Latency sampling is
// disabled so every value is deterministic (the histograms time with
// the real clock); the histogram series have their own structural test
// below. Refresh with: go test ./internal/pipeline -run Golden -update
func TestMetricsGolden(t *testing.T) {
	net := topology.NewMesh2D(4)
	var clock atomic.Int64
	clock.Store(1_000_000_000)
	p, err := New(Config{
		Net: net, Shards: 2,
		LatencySampleEvery: -1,
		Now:                func() int64 { return clock.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: 1, MF: 0})
	submitWait(t, p, wire.Record{T: 2, Topo: p.TopoID(), Victim: 2, MF: 0})
	submitWait(t, p, wire.Record{T: 3, Topo: p.TopoID(), Victim: 2, MF: 0x7F7F}) // undecodable
	p.Submit(wire.Record{T: 4, Topo: 12345, Victim: 1})                          // topo mismatch
	p.Submit(wire.Record{T: 5, Topo: p.TopoID(), Victim: 99})                    // bad victim
	p.Blocklist().BlockUntil(3, clock.Load()+int64(time.Hour))
	p.Close() // drain and flush shard counters

	var buf bytes.Buffer
	p.WritePrometheus(&buf, 3*time.Second)

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestMetricsStageLatencySeries checks the histogram exposition
// structurally: every stage present as histogram + summary, cumulative
// non-decreasing buckets ending in a +Inf that equals _count, and
// quantile series for p50/p95/p99.
func TestMetricsStageLatencySeries(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 2, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		submitWait(t, p, wire.Record{T: eventq.Time(i), Topo: p.TopoID(), Victim: topology.NodeID(i % 16), MF: 0})
	}
	p.Close()
	var buf bytes.Buffer
	p.WritePrometheus(&buf, time.Second)
	body := buf.String()

	for _, stage := range StageNames {
		histPrefix := fmt.Sprintf(`ddpmd_stage_latency_seconds_bucket{stage="%s",le="`, stage)
		var cum, inf int64 = -1, -1
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, histPrefix) {
				continue
			}
			parts := strings.Fields(line)
			v, err := strconv.ParseInt(parts[len(parts)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < cum {
				t.Fatalf("bucket counts decreased at %q", line)
			}
			cum = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		}
		if inf < 0 {
			t.Fatalf("stage %s missing +Inf bucket:\n%s", stage, body)
		}
		countLine := fmt.Sprintf(`ddpmd_stage_latency_seconds_count{stage="%s"} %d`, stage, inf)
		if !strings.Contains(body, countLine) {
			t.Errorf("stage %s: _count disagrees with +Inf (%d)", stage, inf)
		}
		if inf == 0 {
			t.Errorf("stage %s recorded no samples with sampling on every record", stage)
		}
		for _, q := range []string{"0.5", "0.95", "0.99"} {
			s := fmt.Sprintf(`ddpmd_stage_latency_summary_seconds{stage="%s",quantile="%s"}`, stage, q)
			if !strings.Contains(body, s) {
				t.Errorf("missing summary series %s", s)
			}
		}
	}
}
