package pipeline

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// syncBuffer is a locked bytes.Buffer: the SIGQUIT dump goroutine
// writes while the test reads, and the race detector watches both.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTracesEndpointFiltersAndErrors(t *testing.T) {
	d, err := Start(ServerConfig{
		Pipeline: Config{Net: topology.NewMesh2D(4), Shards: 1, TraceSampleN: 1},
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	fr := d.Pipeline().Recorder()
	commit := func(id uint64, victim int64, out Outcome) {
		tr := Trace{
			ID: id, Start: 1000, Victim: victim, Source: 3, Shard: 0, Outcome: out,
			Wire: 10, Ingest: 20, Identify: 30, Detect: 40, Block: 50,
		}
		fr.Commit(&tr)
	}
	commit(0xabc, 5, OutcomeIdentified)
	commit(0xdef, 6, OutcomeBlock)

	get := func(path string) (int, []TraceJSON) {
		t.Helper()
		code, body := httpGet(t, d, path)
		if code != http.StatusOK {
			return code, nil
		}
		var out []TraceJSON
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
		return code, out
	}

	if _, out := get("/debug/traces"); len(out) != 2 || out[0].ID != "0000000000000def" {
		t.Fatalf("unfiltered: %+v", out)
	}
	if _, out := get("/debug/traces?outcome=block"); len(out) != 1 || out[0].Outcome != "block" {
		t.Fatalf("outcome filter: %+v", out)
	}
	if _, out := get("/debug/traces?victim=5"); len(out) != 1 || out[0].Victim != 5 {
		t.Fatalf("victim filter: %+v", out)
	}
	if _, out := get("/debug/traces?id=abc"); len(out) != 1 || out[0].ID != "0000000000000abc" {
		t.Fatalf("id filter: %+v", out)
	}
	if _, out := get("/debug/traces?limit=1"); len(out) != 1 {
		t.Fatalf("limit filter: %+v", out)
	}
	if _, out := get("/debug/traces?victim=99"); len(out) != 0 {
		t.Fatalf("non-matching victim returned traces: %+v", out)
	}
	// TotalNS excludes the cross-clock wire span.
	if _, out := get("/debug/traces?id=abc"); out[0].TotalNS != 20+30+40+50 {
		t.Fatalf("TotalNS = %d, want %d", out[0].TotalNS, 20+30+40+50)
	}

	for _, bad := range []string{
		"/debug/traces?victim=abc",
		"/debug/traces?source=x",
		"/debug/traces?outcome=nope",
		"/debug/traces?id=zz",
		"/debug/traces?limit=-1",
	} {
		if code, _ := httpGet(t, d, bad); code != http.StatusBadRequest {
			t.Errorf("GET %s: code %d, want 400", bad, code)
		}
	}
	resp, err := http.Post("http://"+d.HTTPAddr().String()+"/debug/traces", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: code %d, want 405", resp.StatusCode)
	}
}

func TestTracesEndpointWhenTracingDisabled(t *testing.T) {
	d, err := Start(ServerConfig{
		Pipeline: Config{Net: topology.NewMesh2D(4), Shards: 1, TraceBuffer: -1},
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if code, body := httpGet(t, d, "/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("disabled tracing: code %d body %q, want 404", code, body)
	}
	// The SIGQUIT dump still brackets its (empty) answer with markers.
	var buf bytes.Buffer
	if err := d.DumpTraces(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "=== ddpmd trace dump: 0 traces ===\n=== end trace dump ===\n" {
		t.Fatalf("disabled dump = %q", got)
	}
}

// TestSIGQUITDumpAndTracesUnderConcurrentIngest is the -race half of
// the admin-plane contract: dumps triggered by a real SIGQUIT and
// /debug/traces scrapes must both be safe while shard workers are
// committing traces at full speed.
func TestSIGQUITDumpAndTracesUnderConcurrentIngest(t *testing.T) {
	net := topology.NewMesh2D(4)
	d, err := Start(ServerConfig{
		Pipeline: Config{
			Net: net, Shards: 2, QueueLen: 1 << 12,
			TraceBuffer: 1 << 12, TraceSampleN: 1, // retain every trace
			LatencySampleEvery: 4, // exemplar stamping races too
		},
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	var dump syncBuffer
	stop := d.WatchDumpSignal(&dump, syscall.SIGQUIT)
	defer stop()

	const writers, perWriter = 4, 2000
	mf := mkMF(t, net, 9, 5)
	p := d.Pipeline()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p.SubmitTraced(wire.TracedRecord{
					Record: wire.Record{Topo: p.TopoID(), Victim: 5, MF: mf},
					Ctx: wire.TraceContext{
						ID:   wire.SplitMix64(uint64(w*perWriter + i + 1)),
						Sent: time.Now().UnixNano(),
					},
				})
			}
		}(w)
	}

	// Hammer the readers while the writers run: JSON scrapes and real
	// SIGQUITs against our own process.
	for i := 0; i < 20; i++ {
		code, body := httpGet(t, d, "/debug/traces?limit=25")
		if code != http.StatusOK {
			t.Fatalf("GET /debug/traces: code %d body %q", code, body)
		}
		var out []TraceJSON
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("mid-ingest scrape is not JSON: %v", err)
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	// Every submitted record is traced and must get exactly one ending:
	// processed, shed, or rejected — the recorder observes them all.
	deadline := time.Now().Add(10 * time.Second)
	for p.Recorder().Observed() < writers*perWriter {
		if time.Now().After(deadline) {
			t.Fatalf("recorder observed %d of %d traces", p.Recorder().Observed(), writers*perWriter)
		}
		time.Sleep(time.Millisecond)
	}

	// One more SIGQUIT now that ingest is quiet, then wait for its dump
	// (earlier coalesced signals may still be draining).
	footers := func() int { return strings.Count(dump.String(), "=== end trace dump ===") }
	before := footers()
	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	for footers() <= before {
		if time.Now().After(deadline) {
			t.Fatal("final SIGQUIT never produced a dump")
		}
		time.Sleep(time.Millisecond)
	}

	// The accumulated stream must be well-formed: matching markers, and
	// every non-marker line a valid trace with a known outcome.
	text := dump.String()
	headers := strings.Count(text, "=== ddpmd trace dump:")
	if headers == 0 || headers < footers() {
		t.Fatalf("dump markers unbalanced: %d headers, %d footers", headers, footers())
	}
	traces := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "=== ") {
			continue
		}
		var tr TraceJSON
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("bad dump line %q: %v", line, err)
		}
		if _, ok := OutcomeFromString(tr.Outcome); !ok {
			t.Fatalf("dump line carries unknown outcome %q", tr.Outcome)
		}
		traces++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Fatal("no traces in any dump despite retain-everything sampling")
	}

	// stop() detaches the handler: a later SIGQUIT must not write.
	stop()
	len0 := len(dump.String())
	time.Sleep(10 * time.Millisecond)
	if got := len(dump.String()); got != len0 {
		t.Fatalf("dump grew after stop(): %d -> %d bytes", len0, got)
	}
}
