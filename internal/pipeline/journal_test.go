package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/topology"
	"repro/internal/wire"
)

// decodeEvents parses a JSONL journal body.
func decodeEvents(t *testing.T, data []byte) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalWritesJSONLAndCloseFlushes(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, 16)
	if !j.Emit(Event{T: 1, Type: EventAlarm, Victim: 7, Source: -1, Detail: "cusum"}) {
		t.Fatal("emit shed with an empty queue")
	}
	if !j.Emit(Event{T: 2, Type: EventBlock, Victim: 7, Source: 3, Count: 101, Until: 99,
		Top: []SourceCount{{Node: 3, Count: 101}}}) {
		t.Fatal("emit shed with an empty queue")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 2 {
		t.Fatalf("journal holds %d events, want 2:\n%s", len(evs), buf.String())
	}
	if evs[0].Type != EventAlarm || evs[0].Victim != 7 || evs[0].Source != -1 {
		t.Errorf("alarm event = %+v", evs[0])
	}
	if evs[1].Type != EventBlock || evs[1].Source != 3 || len(evs[1].Top) != 1 || evs[1].Top[0].Count != 101 {
		t.Errorf("block event = %+v", evs[1])
	}
	if j.Written() != 2 || j.Dropped() != 0 {
		t.Errorf("written=%d dropped=%d, want 2 and 0", j.Written(), j.Dropped())
	}
	// Close again is a no-op; Emit after Close is counted, not a panic.
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if j.Emit(Event{Type: EventAlarm}) {
		t.Error("emit after close reported success")
	}
	if j.Dropped() != 1 {
		t.Errorf("post-close dropped = %d, want 1", j.Dropped())
	}
}

// gateWriter blocks every Write until released — it wedges the journal's
// writer goroutine so the bounded queue visibly sheds.
type gateWriter struct {
	gate     chan struct{}
	released atomic.Bool
	buf      bytes.Buffer
}

func (g *gateWriter) Write(p []byte) (int, error) {
	if !g.released.Load() {
		<-g.gate
	}
	return g.buf.Write(p)
}

func TestJournalBoundedQueueDropsInsteadOfBlocking(t *testing.T) {
	g := &gateWriter{gate: make(chan struct{})}
	j := NewJournal(g, 1)
	// Big events defeat the bufio buffer quickly, so the write loop ends
	// up blocked in g.Write while the depth-1 channel fills. Every Emit
	// must return immediately either way — that's the contract.
	pad := strings.Repeat("x", 4096)
	const total = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			j.Emit(Event{T: int64(i), Type: EventResync, Victim: -1, Source: -1, Detail: pad})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a wedged journal writer")
	}
	g.released.Store(true)
	close(g.gate)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if j.Dropped() == 0 {
		t.Error("no events shed despite a wedged writer and depth-1 queue")
	}
	if j.Written()+j.Dropped() != total {
		t.Errorf("written %d + dropped %d != emitted %d", j.Written(), j.Dropped(), total)
	}
	if got := uint64(len(decodeEvents(t, g.buf.Bytes()))); got != j.Written() {
		t.Errorf("sink holds %d events, counter says %d", got, j.Written())
	}
}

func TestOpenJournalOwnsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{T: 1, Type: EventBlockExpired, Victim: -1, Source: 4, Until: 5})
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, data)
	if len(evs) != 1 || evs[0].Type != EventBlockExpired || evs[0].Source != 4 {
		t.Fatalf("journal file = %+v", evs)
	}
}

// TestJournalAuditTrailMatchesPipelineState drives a deterministic
// flood on a fake clock and checks the journal tells the same story as
// the pipeline: one alarm for the latched victim, block events exactly
// matching the blocklist, and an expiry once the TTL lapses.
func TestJournalAuditTrailMatchesPipelineState(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, 1<<12)
	net := topology.NewTorus2D(4)
	victim := topology.NodeID(15)
	zombie := topology.NodeID(5)

	var clock atomic.Int64
	p, err := New(Config{
		Net: net, Shards: 1, QueueLen: 8192,
		CUSUMWindow: 100, CUSUMSlack: 2, CUSUMThreshold: 20,
		EntropyWindow:  -1,
		BlockThreshold: 50, BlockTTL: time.Second,
		Now:     func() int64 { return clock.Load() },
		Journal: j, JournalTopK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	zmf := mkMF(t, net, zombie, victim)
	lmf := mkMF(t, net, topology.NodeID(9), victim)
	// Quiet baseline windows, then a 1-record/tick flood from the zombie.
	now := eventq.Time(0)
	for ; now < 500; now += 25 {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: lmf})
	}
	for ; now < 2500; now++ {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: zmf})
	}
	waitProcessed(t, p)
	if !p.AlarmLatched(victim) {
		t.Fatal("flood never latched the alarm")
	}
	// TTL lapse: Snapshot prunes and journals the expiry.
	clock.Add(2 * time.Second.Nanoseconds())
	if n := p.Snapshot().ActiveBlocks; n != 0 {
		t.Fatalf("active blocks after TTL = %d, want 0", n)
	}
	p.Close()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	if j.Dropped() != 0 {
		t.Fatalf("journal shed %d events with an oversized queue", j.Dropped())
	}

	var alarms, blocks, expiries []Event
	for _, ev := range decodeEvents(t, buf.Bytes()) {
		switch ev.Type {
		case EventAlarm:
			alarms = append(alarms, ev)
		case EventBlock:
			blocks = append(blocks, ev)
		case EventBlockExpired:
			expiries = append(expiries, ev)
		}
	}
	if len(alarms) != 1 || alarms[0].Victim != int64(victim) || alarms[0].Detail != "cusum" {
		t.Errorf("alarm events = %+v, want one cusum alarm for victim %d", alarms, victim)
	}
	if len(blocks) != 1 || blocks[0].Source != int64(zombie) || blocks[0].Victim != int64(victim) {
		t.Fatalf("block events = %+v, want one for source %d", blocks, zombie)
	}
	if blocks[0].Count <= 50 || blocks[0].Until == 0 {
		t.Errorf("block event evidence missing: %+v", blocks[0])
	}
	if len(blocks[0].Top) == 0 || blocks[0].Top[0].Node != int64(zombie) {
		t.Errorf("block top-k = %+v, want %d first", blocks[0].Top, zombie)
	}
	if len(expiries) != 1 || expiries[0].Source != int64(zombie) {
		t.Errorf("expiry events = %+v, want one for source %d", expiries, zombie)
	}
}
