package pipeline

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

func startDaemon(t *testing.T, cfg ServerConfig) *Daemon {
	t.Helper()
	if cfg.Pipeline.Net == nil {
		cfg.Pipeline.Net = topology.NewMesh2D(4)
	}
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Shutdown(context.Background()) })
	return d
}

func waitIngested(t *testing.T, d *Daemon, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for d.Pipeline().C.Ingested.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d", d.Pipeline().C.Ingested.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func daemonRecords(d *Daemon, n int) []wire.Record {
	recs := make([]wire.Record, n)
	for i := range recs {
		recs[i] = wire.Record{T: 1, Topo: d.Pipeline().TopoID(), Victim: topology.NodeID(i % 16)}
	}
	return recs
}

// TestPlainStreamSurvivesMidStreamCorruption is the acceptance test for
// server-side resync: garbage in the middle of a legacy TCP stream used
// to kill the connection and everything after it.
func TestPlainStreamSurvivesMidStreamCorruption(t *testing.T) {
	d := startDaemon(t, ServerConfig{TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", d.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	recs := daemonRecords(d, 8)
	var b []byte
	b = wire.AppendFrame(b, recs[:4])
	b = append(b, 0xDE, 0xAD, 0xBE, 0xEF, 0x42) // mid-stream garbage, no 0xD0
	b = wire.AppendFrame(b, recs[4:])
	if _, err := conn.Write(b); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, d, 8)
	if d.DecodeErrors() == 0 {
		t.Error("resync skips not counted as decode errors")
	}
	if _, body := httpGet(t, d, "/metrics"); !strings.Contains(body, "ddpmd_resync_skipped_bytes_total 5") {
		t.Errorf("metrics missing skipped-bytes counter:\n%s", body)
	}
}

// TestSessionIngestDeduplicatesRetransmits drives the session protocol
// by hand: a retransmitted sealed frame (the client's view after a lost
// ack) must advance nothing, and the ack must repeat the count.
func TestSessionIngestDeduplicatesRetransmits(t *testing.T) {
	d := startDaemon(t, ServerConfig{TCPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", d.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := wire.NewReader(conn)
	readAck := func(want uint64) {
		t.Helper()
		for {
			ftype, payload, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("reading ack: %v", err)
			}
			if ftype != wire.TypeAck {
				continue
			}
			count, err := wire.ParseAck(payload)
			if err != nil {
				t.Fatal(err)
			}
			if count != want {
				t.Fatalf("ack %d, want %d", count, want)
			}
			return
		}
	}

	recs := daemonRecords(d, 20)
	if _, err := conn.Write(wire.AppendHello(nil, 0xBEEF, 0)); err != nil {
		t.Fatal(err)
	}
	readAck(0)
	if _, err := conn.Write(wire.AppendSealed(nil, 0, recs[:10])); err != nil {
		t.Fatal(err)
	}
	readAck(10)
	// Retransmit the same batch — a client that never saw the ack.
	if _, err := conn.Write(wire.AppendSealed(nil, 0, recs[:10])); err != nil {
		t.Fatal(err)
	}
	readAck(10)
	// Overlapping batch: first half already accepted, second half new.
	if _, err := conn.Write(wire.AppendSealed(nil, 5, recs[5:20])); err != nil {
		t.Fatal(err)
	}
	readAck(20)

	waitIngested(t, d, 20)
	if got := d.Pipeline().C.Ingested.Load(); got != 20 {
		t.Errorf("ingested %d records, want 20 (dedup failed)", got)
	}
	if got := d.sessionRecs.Load(); got != 20 {
		t.Errorf("session records %d, want 20", got)
	}
	if _, body := httpGet(t, d, "/metrics"); !strings.Contains(body, "ddpmd_sessions_total 1") {
		t.Errorf("metrics missing session counter:\n%s", body)
	}
}

// TestSessionHelloFastForwardsRestartedServer: a fresh daemon greeted
// with a non-zero base must ack it rather than demanding history it
// never saw.
func TestSessionHelloFastForwardsRestartedServer(t *testing.T) {
	d := startDaemon(t, ServerConfig{TCPAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", d.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil, 0xBEEF, 500)); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(conn)
	ftype, payload, err := r.ReadFrame()
	if err != nil || ftype != wire.TypeAck {
		t.Fatalf("ack read: type=%d err=%v", ftype, err)
	}
	count, err := wire.ParseAck(payload)
	if err != nil || count != 500 {
		t.Fatalf("ack %d err=%v, want 500", count, err)
	}
}

// TestIdleTimeoutShedsSlowPeer: a peer that sends half a header and
// stalls must be cut and counted, not hold a connection slot forever.
func TestIdleTimeoutShedsSlowPeer(t *testing.T) {
	d := startDaemon(t, ServerConfig{TCPAddr: "127.0.0.1:0", IdleTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", d.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xD0, 0x5E, 0x01}); err != nil { // half a header, then silence
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.idleTimeouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slowloris peer never shed")
		}
		time.Sleep(time.Millisecond)
	}
	// The server really closed the conn: our read sees EOF/reset.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still open after idle timeout")
	}
}

// TestUDPDatagramWithMultipleFrames: every frame packed into one
// datagram counts; trailing garbage is rejected without voiding the
// frames before it.
func TestUDPDatagramWithMultipleFrames(t *testing.T) {
	d := startDaemon(t, ServerConfig{UDPAddr: "127.0.0.1:0"})
	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	recs := daemonRecords(d, 6)
	var b []byte
	b = wire.AppendFrame(b, recs[:2])
	b = wire.AppendFrame(b, recs[2:5])
	b = wire.AppendFrame(b, recs[5:])
	if _, err := conn.Write(b); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, d, 6)

	// Valid frame then garbage in the same datagram: frame counts,
	// garbage is one decode error.
	errsBefore := d.DecodeErrors()
	b = wire.AppendFrame(nil, recs[:2])
	b = append(b, "trailing junk"...)
	if _, err := conn.Write(b); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, d, 8)
	deadline := time.Now().Add(10 * time.Second)
	for d.DecodeErrors() == errsBefore {
		if time.Now().After(deadline) {
			t.Fatal("trailing datagram garbage not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdminPlaneFailureSurfaces is the regression test for the silently
// discarded http.Serve error: when the admin listener dies under the
// daemon, the error must reach Err and the Errors channel instead of
// vanishing.
func TestAdminPlaneFailureSurfaces(t *testing.T) {
	d := startDaemon(t, ServerConfig{HTTPAddr: "127.0.0.1:0"})
	if err := d.Err(); err != nil {
		t.Fatalf("daemon unhealthy at start: %v", err)
	}
	d.httpLn.Close() // the admin plane dies out from under the daemon
	select {
	case err := <-d.Errors():
		if err == nil {
			t.Fatal("nil error delivered")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("admin serve failure never surfaced")
	}
	if d.Err() == nil {
		t.Error("Err() nil after admin plane failure")
	}
}

// TestHealthzReportsFailure: a daemon with a recorded fatal error must
// fail readiness even though the handler itself still answers.
func TestHealthzReportsFailure(t *testing.T) {
	d := startDaemon(t, ServerConfig{HTTPAddr: "127.0.0.1:0"})
	if code, _ := httpGet(t, d, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while healthy: %d", code)
	}
	d.fail(errTest)
	if code, body := httpGet(t, d, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "failed") {
		t.Fatalf("healthz after failure: %d %q", code, body)
	}
}

var errTest = net.ErrClosed
