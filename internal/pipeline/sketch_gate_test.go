package pipeline

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestSketchGateAdmissionExactness: below-threshold destinations stay
// sketch-only; the destination that crosses the admission threshold
// materializes exact state and replays its buffered evidence, so its
// identification tallies equal a run with no gate at all.
func TestSketchGateAdmissionExactness(t *testing.T) {
	net := topology.NewTorus2D(4)
	p, err := New(Config{Net: net, Shards: 1, SketchAdmit: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hot := topology.NodeID(15)
	s1, s2 := topology.NodeID(5), topology.NodeID(9)
	mf1 := mkMF(t, net, s1, hot)
	mf2 := mkMF(t, net, s2, hot)

	// Four records for the hot victim: 1-3 buffer sketch-side, the 4th
	// crosses the threshold and replays them.
	for i, mf := range []uint16{mf1, mf2, mf1, mf2} {
		submitWait(t, p, wire.Record{T: eventq.Time(i), Topo: p.TopoID(), Victim: hot, MF: mf})
	}
	// Background noise: two cold victims, two records each — never
	// enough to admit.
	for _, cold := range []topology.NodeID{3, 7} {
		cmf := mkMF(t, net, s1, cold)
		submitWait(t, p, wire.Record{T: 10, Topo: p.TopoID(), Victim: cold, MF: cmf})
		submitWait(t, p, wire.Record{T: 11, Topo: p.TopoID(), Victim: cold, MF: cmf})
	}
	// The hot victim keeps receiving on the exact path post-admission.
	for i := 0; i < 6; i++ {
		mf := mf1
		if i%2 == 1 {
			mf = mf2
		}
		submitWait(t, p, wire.Record{T: eventq.Time(20 + i), Topo: p.TopoID(), Victim: hot, MF: mf})
	}
	waitProcessed(t, p)

	if got := p.C.SketchSuppressed.Load(); got != 7 {
		t.Errorf("suppressed = %d, want 7 (3 hot pre-admission + 2x2 cold)", got)
	}
	if got := p.C.SketchReplayed.Load(); got != 3 {
		t.Errorf("replayed = %d, want 3", got)
	}
	if got := p.C.VictimsAdmitted.Load(); got != 1 {
		t.Errorf("victims admitted = %d, want 1", got)
	}
	// Identification lost nothing to the gate: every hot record —
	// replayed or direct — is tallied, exactly as an ungated run would.
	if got := p.C.Identified.Load(); got != 10 {
		t.Errorf("identified = %d, want 10", got)
	}
	if vs := p.Victims(); len(vs) != 1 || vs[0] != hot {
		t.Fatalf("Victims() = %v, want [%d] (cold victims must stay sketch-only)", vs, hot)
	}
	snap, ok := p.ExportVictim(hot)
	if !ok {
		t.Fatal("hot victim has no exact state")
	}
	want := map[int64]int64{int64(s1): 5, int64(s2): 5}
	if len(snap.Sources) != 2 {
		t.Fatalf("sources = %+v, want tallies %v", snap.Sources, want)
	}
	for _, sc := range snap.Sources {
		if want[sc.Node] != sc.Count {
			t.Errorf("source %d tally = %d, want %d", sc.Node, sc.Count, want[sc.Node])
		}
	}
	if got := p.Snapshot().VictimStates; got != 1 {
		t.Errorf("VictimStates = %d, want 1", got)
	}
}

// TestSketchGateDisabled: a negative SketchAdmit turns the gate off —
// every destination materializes on first sight, nothing is suppressed.
func TestSketchGateDisabled(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 1, SketchAdmit: -1})
	if err != nil {
		t.Fatal(err)
	}
	submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: 3, MF: 0})
	p.Close()
	if got := p.C.SketchSuppressed.Load(); got != 0 {
		t.Errorf("suppressed = %d with the gate disabled", got)
	}
	if vs := p.Victims(); len(vs) != 1 {
		t.Errorf("Victims() = %v, want one entry", vs)
	}
}

// TestVictimTTLExpiryAndRematerialization: an idle victim's exact state
// is swept back to sketch-only — final snapshot to the journal and the
// expiry hook, blocklist entries intact — and renewed traffic rebuilds
// it through the admission gate without losing blocking.
func TestVictimTTLExpiryAndRematerialization(t *testing.T) {
	net := topology.NewTorus2D(4)
	victim := topology.NodeID(15)
	zombie := topology.NodeID(5)

	var buf bytes.Buffer
	j := NewJournal(&buf, 0)
	var clock atomic.Int64
	p, err := New(Config{
		Net: net, Shards: 2, QueueLen: 8192,
		CUSUMWindow: 100, CUSUMSlack: 2, CUSUMThreshold: 20,
		EntropyWindow:  -1,
		BlockThreshold: 50, BlockTTL: -1, // negative: blocks never lapse
		VictimTTL: time.Minute,
		Journal:   j,
		Now:       func() int64 { return clock.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var expired []VictimSnapshot
	p.SetVictimExpiredHook(func(snap VictimSnapshot) { expired = append(expired, snap) })

	zmf := mkMF(t, net, zombie, victim)
	lmf := mkMF(t, net, topology.NodeID(9), victim)
	// Quiet baseline windows, then a flood (same shape as the CUSUM
	// auto-block test).
	now := eventq.Time(0)
	for ; now < 500; now += 25 {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: lmf})
	}
	for ; now < 2500; now++ {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: zmf})
	}
	waitProcessed(t, p)
	if !p.Alarmed(victim) || !p.Blocklist().BlockedAt(zombie, clock.Load()) {
		t.Fatal("flood did not alarm and block")
	}
	if got := p.Snapshot().VictimStates; got != 1 {
		t.Fatalf("VictimStates = %d, want 1", got)
	}
	// The block carries the victim it protects (journal/gossip evidence).
	if ents := p.Blocklist().Snapshot(); len(ents) != 1 || ents[0].Victim != victim {
		t.Fatalf("blocklist = %+v, want one entry for victim %d", ents, victim)
	}

	// Idle past the TTL: one synchronous sweep retires the victim.
	clock.Add(2 * time.Minute.Nanoseconds())
	p.SweepVictims()
	if got := p.C.VictimsExpired.Load(); got != 1 {
		t.Fatalf("victims expired = %d, want 1", got)
	}
	if len(expired) != 1 {
		t.Fatalf("expiry hook fired %d times, want 1", len(expired))
	}
	if snap := expired[0]; !snap.Expired || snap.Victim != victim ||
		snap.Identified() != 2020 || !snap.Alarmed {
		t.Fatalf("expiry snapshot mangled: %+v", snap)
	}
	if _, ok := p.ExportVictim(victim); ok {
		t.Fatal("exact state survived the sweep")
	}
	if got := p.Snapshot().VictimStates; got != 0 {
		t.Fatalf("VictimStates after sweep = %d, want 0", got)
	}
	// Expiry drops the detectors, never the verdict: the zombie stays
	// blocked (BlockTTL < 0 means permanent — the satellite-1 semantics).
	if !p.Blocklist().BlockedAt(zombie, clock.Load()+365*24*time.Hour.Nanoseconds()) {
		t.Fatal("permanent block lapsed after victim expiry")
	}

	// Renewed traffic re-materializes through the gate (default admit-
	// on-first); identification restarts while blocking holds.
	hitsBefore := p.C.BlockedHits.Load()
	for end := now + 10; now < end; now++ {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: zmf})
	}
	waitProcessed(t, p)
	snap, ok := p.ExportVictim(victim)
	if !ok {
		t.Fatal("victim never re-materialized")
	}
	if snap.Identified() != 10 {
		t.Fatalf("re-materialized tally = %d, want a fresh 10", snap.Identified())
	}
	if got := p.C.VictimsAdmitted.Load(); got != 2 {
		t.Errorf("victims admitted = %d, want 2 (initial + re-admission)", got)
	}
	if p.C.BlockedHits.Load() <= hitsBefore {
		t.Error("renewed zombie traffic not dropped as blocked hits")
	}

	// The journal audit trail has the full arc: alarm, block, expiry.
	p.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var sawExpired bool
	for _, ev := range decodeEvents(t, buf.Bytes()) {
		if ev.Type != EventVictimExpired {
			continue
		}
		sawExpired = true
		if ev.Victim != int64(victim) || ev.Count != 2020 {
			t.Fatalf("victim_expired event mangled: %+v", ev)
		}
	}
	if !sawExpired {
		t.Fatal("no victim_expired event journaled")
	}
}

// TestSchemeUnbuildableCachedAtNew: a fabric past DDPM's 16-bit MF
// reach (a 256x256 torus needs 18) still builds a pipeline — records
// are counted, not fatal, and the construction failure is cached at New
// rather than retried per batch.
func TestSchemeUnbuildableCachedAtNew(t *testing.T) {
	net := topology.NewTorus2D(256)
	p, err := New(Config{Net: net, Shards: 1})
	if err != nil {
		t.Fatalf("New must succeed on an unbuildable-scheme fabric: %v", err)
	}
	for i := 0; i < 5; i++ {
		submitWait(t, p, wire.Record{T: eventq.Time(i), Topo: p.TopoID(), Victim: 100, MF: uint16(i)})
	}
	p.Close()
	if got := p.C.SchemeUnbuildable.Load(); got != 5 {
		t.Errorf("scheme unbuildable = %d, want 5", got)
	}
	if got := p.C.Identified.Load() + p.C.Undecodable.Load(); got != 0 {
		t.Errorf("identified+undecodable = %d, want 0", got)
	}
	if got := p.C.Processed.Load(); got != 5 {
		t.Errorf("processed = %d, want 5", got)
	}
	if vs := p.Victims(); len(vs) != 0 {
		t.Errorf("Victims() = %v, want none", vs)
	}
}

// TestBlockTTLPermanentNegative: Config.BlockTTL adopts the blocklist
// convention — negative means permanent, zero means the 60s default.
func TestBlockTTLPermanentNegative(t *testing.T) {
	cfg := Config{Net: topology.NewMesh2D(4), BlockTTL: -1}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.BlockTTL >= 0 {
		t.Fatalf("negative BlockTTL rewritten to %v", cfg.BlockTTL)
	}
	cfg = Config{Net: topology.NewMesh2D(4)}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.BlockTTL != time.Minute {
		t.Fatalf("zero BlockTTL default = %v, want 1m", cfg.BlockTTL)
	}
	// filter-level convention the pipeline maps onto.
	if filter.Permanent != 0 {
		t.Fatalf("filter.Permanent = %d", filter.Permanent)
	}
}
