package pipeline

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// TestDetachVictim: detaching rides the shard queue, so every record
// submitted before the detach is tallied into the snapshot, the exact
// state is gone afterwards, and the counters account the transfer.
func TestDetachVictim(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const victim, src = topology.NodeID(5), topology.NodeID(9)
	mf := mkMF(t, net, src, victim)
	const n = 25
	for i := 0; i < n; i++ {
		if !p.Submit(wire.Record{Topo: p.TopoID(), Victim: victim, MF: mf}) {
			t.Fatal("submit rejected")
		}
	}

	// Detach immediately after the submits, without waiting for the
	// worker: queue ordering must deliver all n records to the snapshot.
	got := make(chan VictimSnapshot, 1)
	if !p.DetachVictim(victim, func(snap VictimSnapshot, ok bool) {
		if !ok {
			t.Error("detach reported no state for a victim with queued records")
		}
		got <- snap
	}) {
		t.Fatal("DetachVictim rejected a valid victim")
	}

	var snap VictimSnapshot
	select {
	case snap = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("detach callback never ran")
	}
	if snap.Victim != victim {
		t.Fatalf("snapshot victim %d, want %d", snap.Victim, victim)
	}
	if id := snap.Identified(); id != n {
		t.Fatalf("snapshot identified %d, want %d (queued records must be tallied first)", id, n)
	}
	if len(snap.Sources) != 1 || snap.Sources[0].Node != int64(src) {
		t.Fatalf("snapshot sources %+v, want all from %d", snap.Sources, src)
	}
	if _, ok := p.ExportVictim(victim); ok {
		t.Fatal("exact state survived the detach")
	}
	if got := p.C.VictimsDetached.Load(); got != 1 {
		t.Fatalf("VictimsDetached = %d, want 1", got)
	}

	// Detaching a victim with no state still runs the callback (ok
	// false) so callers can sequence on the queue.
	okCh := make(chan bool, 1)
	if !p.DetachVictim(victim, func(_ VictimSnapshot, ok bool) { okCh <- ok }) {
		t.Fatal("second DetachVictim rejected")
	}
	select {
	case ok := <-okCh:
		if ok {
			t.Fatal("detach of an absent victim reported state")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no-state detach callback never ran")
	}
	if got := p.C.VictimsDetached.Load(); got != 1 {
		t.Fatalf("VictimsDetached = %d after no-op detach, want 1", got)
	}

	// Validation: out-of-range victims and nil callbacks are rejected.
	if p.DetachVictim(topology.NodeID(net.NumNodes()), func(VictimSnapshot, bool) {}) {
		t.Fatal("out-of-range victim accepted")
	}
	if p.DetachVictim(victim, nil) {
		t.Fatal("nil callback accepted")
	}

	// A detached victim re-materializes from scratch on later records.
	if !p.Submit(wire.Record{Topo: p.TopoID(), Victim: victim, MF: mf}) {
		t.Fatal("post-detach submit rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, ok := p.ExportVictim(victim); ok && snap.Identified() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never re-materialized after detach")
		}
		time.Sleep(time.Millisecond)
	}
}
