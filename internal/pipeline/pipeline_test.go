package pipeline

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/topology"
	"repro/internal/wire"
)

// mkMF encodes the MF an intact DDPM walk from src to victim
// accumulates: the displacement vector D − S, packed with the codec
// DDPM picks for net.
func mkMF(t *testing.T, net topology.Network, src, victim topology.NodeID) uint16 {
	t.Helper()
	scheme, err := marking.NewDDPM(net)
	if err != nil {
		t.Fatal(err)
	}
	sc, dc := net.CoordOf(src), net.CoordOf(victim)
	v := make(topology.Vector, len(sc))
	for i := range v {
		v[i] = dc[i] - sc[i]
	}
	mf, err := scheme.Codec().Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

func TestSubmitValidation(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Submit(wire.Record{Topo: 12345, Victim: 0}) {
		t.Error("foreign topo id accepted")
	}
	if p.Submit(wire.Record{Topo: p.TopoID(), Victim: 99}) {
		t.Error("out-of-range victim accepted")
	}
	if p.Submit(wire.Record{Topo: p.TopoID(), Victim: -2}) {
		t.Error("negative victim accepted")
	}
	if !p.Submit(wire.Record{Topo: p.TopoID(), Victim: 5, MF: 0}) {
		t.Error("valid record rejected")
	}
	if got := p.C.TopoMismatch.Load(); got != 1 {
		t.Errorf("topo mismatches = %d, want 1", got)
	}
	if got := p.C.BadVictim.Load(); got != 2 {
		t.Errorf("bad victims = %d, want 2", got)
	}
	if got := p.C.Ingested.Load(); got != 4 {
		t.Errorf("ingested = %d, want 4", got)
	}
}

func TestBackpressureDropsInsteadOfBlocking(t *testing.T) {
	net := topology.NewMesh2D(4)
	gate := make(chan struct{})
	var released atomic.Bool
	p, err := New(Config{
		Net: net, Shards: 1, QueueLen: 4,
		Now: func() int64 {
			if !released.Load() {
				<-gate // stall the worker inside process()
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := wire.Record{Topo: p.TopoID(), Victim: 3}
	// One record enters process() and stalls on the clock; QueueLen
	// more fill the queue. Wait until the worker has picked one up.
	p.Submit(rec)
	deadline := time.Now().Add(5 * time.Second)
	for p.C.Processed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first record")
		}
		time.Sleep(time.Millisecond)
	}
	accepted := 0
	for i := 0; i < 4; i++ {
		if p.Submit(rec) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("queue accepted %d records, want 4", accepted)
	}
	// Queue is now full: further submits must shed, not block.
	done := make(chan bool)
	go func() { done <- p.Submit(rec) }()
	select {
	case ok := <-done:
		if ok {
			t.Error("submit to a full queue reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit blocked on a full shard queue")
	}
	if got := p.C.Dropped.Load(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	released.Store(true)
	close(gate)
	p.Close()
	if got := p.C.Processed.Load(); got != 5 {
		t.Errorf("processed = %d after drain, want 5", got)
	}
	// Submit after Close is rejected and counted apart from load shed:
	// Dropped stays a pure backpressure signal.
	if p.Submit(rec) {
		t.Error("submit after Close reported success")
	}
	if got := p.C.RejectedClosed.Load(); got != 1 {
		t.Errorf("rejected-closed = %d, want 1", got)
	}
	if got := p.C.Dropped.Load(); got != 1 {
		t.Errorf("dropped = %d after post-Close submit, want still 1", got)
	}
}

// submitWait submits and fails the test on shed — these tests size
// queues so nothing legitimate is dropped.
func submitWait(t *testing.T, p *Pipeline, rec wire.Record) {
	t.Helper()
	if !p.Submit(rec) {
		t.Fatalf("record shed unexpectedly: %+v", rec)
	}
}

func TestAutoBlockWithTTLDecay(t *testing.T) {
	net := topology.NewTorus2D(4)
	victim := topology.NodeID(15)
	zombie := topology.NodeID(5)
	legit := topology.NodeID(9)

	var clock atomic.Int64
	p, err := New(Config{
		Net: net, Shards: 2, QueueLen: 8192,
		CUSUMWindow: 100, CUSUMSlack: 2, CUSUMThreshold: 20,
		EntropyWindow:  -1, // isolate CUSUM for determinism
		BlockThreshold: 50, BlockTTL: time.Second,
		Now: func() int64 { return clock.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	zmf := mkMF(t, net, zombie, victim)
	lmf := mkMF(t, net, legit, victim)

	// Quiet baseline windows: a trickle from the legitimate peer.
	now := eventq.Time(0)
	for ; now < 500; now += 25 {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: lmf})
	}
	// Flood: 1 record/tick from the zombie.
	for ; now < 2500; now++ {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: zmf})
	}
	waitProcessed(t, p)

	if !p.Alarmed(victim) {
		t.Fatal("CUSUM never alarmed on the flood")
	}
	if p.C.Alarms.Load() != 1 {
		t.Errorf("alarms = %d, want 1", p.C.Alarms.Load())
	}
	if !p.Blocklist().BlockedAt(zombie, clock.Load()) {
		t.Fatal("zombie not auto-blocked")
	}
	if p.Blocklist().BlockedAt(legit, clock.Load()) {
		t.Error("legitimate peer blocked (tally below threshold)")
	}
	if p.C.BlockedHits.Load() == 0 {
		t.Error("no records were dropped as blocked — block landed after the stream?")
	}
	// Identification kept tallying behind the block: the daemon's
	// answer matches what an offline identifier sees.
	if got := p.SourcesAbove(victim, 50); len(got) != 1 || got[0] != zombie {
		t.Fatalf("SourcesAbove = %v, want [%d]", got, zombie)
	}
	if top := p.TopSources(victim, 1); len(top) != 1 || top[0] != zombie {
		t.Fatalf("TopSources = %v, want [%d]", top, zombie)
	}

	// TTL decay: advance the clock past the TTL; the block lapses with
	// no reaper involved, and Snapshot prunes it from ActiveBlocks.
	if snap := p.Snapshot(); snap.ActiveBlocks != 1 {
		t.Fatalf("active blocks = %d, want 1", snap.ActiveBlocks)
	}
	clock.Add(2 * time.Second.Nanoseconds())
	if p.Blocklist().BlockedAt(zombie, clock.Load()) {
		t.Fatal("block survived past its TTL")
	}
	if snap := p.Snapshot(); snap.ActiveBlocks != 0 {
		t.Fatalf("active blocks after TTL = %d, want 0", snap.ActiveBlocks)
	}
	// With the detector still alarmed, fresh flood traffic re-blocks.
	before := p.C.Blocks.Load()
	for end := now + 10; now < end; now++ {
		submitWait(t, p, wire.Record{T: now, Topo: p.TopoID(), Victim: victim, MF: zmf})
	}
	waitProcessed(t, p)
	if p.C.Blocks.Load() <= before {
		t.Error("lapsed block never re-established under continued flood")
	}
	if !p.Blocklist().BlockedAt(zombie, clock.Load()) {
		t.Error("zombie unblocked despite continued flood")
	}
}

func TestUndecodableRecordsAreCountedNotFatal(t *testing.T) {
	// On a mesh, an MF pointing off the fabric decodes to no node.
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 0x7F7F decodes to a displacement far outside a 4x4 mesh.
	submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: 0, MF: 0x7F7F})
	submitWait(t, p, wire.Record{T: 2, Topo: p.TopoID(), Victim: 0, MF: mkMF(t, net, 5, 0)})
	p.Close()
	if got := p.C.Undecodable.Load(); got != 1 {
		t.Errorf("undecodable = %d, want 1", got)
	}
	if got := p.C.Identified.Load(); got != 1 {
		t.Errorf("identified = %d, want 1", got)
	}
}

// waitProcessed blocks until every ingested-and-queued record has been
// consumed (queues empty is not enough: the last record may still be
// in process()).
func waitProcessed(t *testing.T, p *Pipeline) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		queued := p.C.Ingested.Load() - p.C.Dropped.Load() - p.C.RejectedClosed.Load() -
			p.C.TopoMismatch.Load() - p.C.BadVictim.Load()
		if p.C.Processed.Load() == queued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline stuck: processed %d of %d", p.C.Processed.Load(), queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestVictimsSortedAcrossShards(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Victims land in different shards (id % 3) in scrambled order; the
	// listing must come back sorted by node id regardless.
	for _, v := range []topology.NodeID{14, 3, 9, 0, 7} {
		submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: v, MF: 0})
	}
	p.Close()
	got := p.Victims()
	want := []topology.NodeID{0, 3, 7, 9, 14}
	if len(got) != len(want) {
		t.Fatalf("Victims() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Victims() = %v, want %v (unsorted at %d)", got, want, i)
		}
	}
}

func TestAdminQueryClamps(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := topology.NodeID(0)
	submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: victim, MF: mkMF(t, net, 5, victim)})
	p.Close()

	top := func(k int) int { return len(p.TopSources(victim, k)) }
	above := func(th int64) int { return len(p.SourcesAbove(victim, th)) }
	cases := []struct {
		name string
		got  int
		want int
	}{
		// Non-positive k and negative thresholds are admin-plane inputs
		// (?k=, CLI flags); they must clamp to empty, never panic or
		// select the whole universe.
		{"TopSources k=0", top(0), 0},
		{"TopSources k=-3", top(-3), 0},
		{"TopSources k=1", top(1), 1},
		{"SourcesAbove threshold=-1", above(-1), 0},
		{"SourcesAbove threshold=0", above(0), 1},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: %d sources, want %d", c.name, c.got, c.want)
		}
	}
	// Unknown victims stay empty under every input.
	if p.TopSources(99, 5) != nil || p.SourcesAbove(99, 0) != nil {
		t.Error("unknown victim returned sources")
	}
	if p.AlarmLatched(99) {
		t.Error("unknown victim reports a latched alarm")
	}
}

func TestSnapshotDerivedAcceptedAndShardCounters(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	submitWait(t, p, wire.Record{T: 1, Topo: p.TopoID(), Victim: 1, MF: 0})
	submitWait(t, p, wire.Record{T: 2, Topo: p.TopoID(), Victim: 2, MF: 0})
	submitWait(t, p, wire.Record{T: 3, Topo: p.TopoID(), Victim: 2, MF: 0x7F7F}) // undecodable
	p.Submit(wire.Record{T: 4, Topo: 12345, Victim: 1})                          // topo mismatch
	p.Submit(wire.Record{T: 5, Topo: p.TopoID(), Victim: 99})                    // bad victim
	p.Close()
	p.Submit(wire.Record{T: 6, Topo: p.TopoID(), Victim: 1}) // rejected: closed

	s := p.Snapshot()
	if s.Ingested != 6 || s.Accepted != 3 {
		t.Errorf("ingested=%d accepted=%d, want 6 and 3", s.Ingested, s.Accepted)
	}
	if s.TopoMismatch != 1 || s.BadVictim != 1 || s.RejectedClosed != 1 {
		t.Errorf("rejections = %+v, want one of each kind", s)
	}
	if len(s.ShardProcessed) != 2 || len(s.ShardIdentified) != 2 || len(s.ShardDropped) != 2 {
		t.Fatalf("per-shard slices sized %d/%d/%d, want 2 each",
			len(s.ShardProcessed), len(s.ShardIdentified), len(s.ShardDropped))
	}
	// Victim 1 -> shard 1, victim 2 (twice) -> shard 0; workers flushed
	// at exit so the published counters are exact.
	if s.ShardProcessed[0] != 2 || s.ShardProcessed[1] != 1 {
		t.Errorf("ShardProcessed = %v, want [2 1]", s.ShardProcessed)
	}
	if s.ShardIdentified[0] != 1 || s.ShardIdentified[1] != 1 {
		t.Errorf("ShardIdentified = %v, want [1 1]", s.ShardIdentified)
	}
	var sum uint64
	for _, v := range s.ShardProcessed {
		sum += v
	}
	if sum != s.Processed {
		t.Errorf("shard processed sum %d != global %d", sum, s.Processed)
	}
}
