package pipeline

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// TestBatchBackpressureShedsWholeSubBatch pins the batch-granularity
// shed contract: when a shard queue is full, SubmitSlab drops that
// shard's entire sub-batch and counts every record of it, and the
// counters still balance (ingested = accepted + dropped + rejected).
func TestBatchBackpressureShedsWholeSubBatch(t *testing.T) {
	net := topology.NewMesh2D(4)
	gate := make(chan struct{})
	var released atomic.Bool
	p, err := New(Config{
		Net: net, Shards: 1, QueueLen: 1,
		Now: func() int64 {
			if !released.Load() {
				<-gate // stall the worker inside its victim group
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := wire.Record{Topo: p.TopoID(), Victim: 3}

	// One batch enters the worker and stalls on the clock; a second
	// fills the depth-1 queue.
	if got := p.Submit(rec); !got {
		t.Fatal("first submit rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.C.Processed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first batch")
		}
		time.Sleep(time.Millisecond)
	}
	s := p.GetSlab()
	for i := 0; i < 3; i++ {
		s.Append(rec)
	}
	if got := p.SubmitSlab(s); got != 3 {
		t.Fatalf("queue-filling batch accepted %d records, want 3", got)
	}

	// Queue full: the whole 5-record sub-batch must shed, per-record
	// counted, without blocking.
	s = p.GetSlab()
	for i := 0; i < 5; i++ {
		s.Append(rec)
	}
	done := make(chan int)
	go func() { done <- p.SubmitSlab(s) }()
	select {
	case got := <-done:
		if got != 0 {
			t.Errorf("submit to a full queue accepted %d records", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SubmitSlab blocked on a full shard queue")
	}
	if got := p.C.Dropped.Load(); got != 5 {
		t.Errorf("dropped = %d, want 5 (whole sub-batch)", got)
	}

	released.Store(true)
	close(gate)
	p.Close()
	// Snapshot only after the gate opens: it consults the test clock too.
	snap := p.Snapshot()
	if snap.ShardDropped[0] != 5 {
		t.Errorf("shard dropped = %d, want 5", snap.ShardDropped[0])
	}
	if snap.Ingested != snap.Accepted+snap.Dropped {
		t.Errorf("counters unbalanced: ingested %d != accepted %d + dropped %d",
			snap.Ingested, snap.Accepted, snap.Dropped)
	}
	if got := p.C.Processed.Load(); got != 4 {
		t.Errorf("processed = %d after drain, want 4", got)
	}
	if got := p.SlabsOutstanding(); got != 0 {
		t.Errorf("slabs outstanding after drain = %d, want 0", got)
	}
}

// TestSubmitSlabValidationTail checks that Partition's invalid tail is
// counted per record under the right rejection counters and that only
// valid records are accepted.
func TestSubmitSlabValidationTail(t *testing.T) {
	net := topology.NewMesh2D(4)
	p, err := New(Config{Net: net, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := p.GetSlab()
	s.Append(wire.Record{Topo: p.TopoID(), Victim: 1, MF: 7})
	s.Append(wire.Record{Topo: p.TopoID() + 1, Victim: 1}) // wrong fabric
	s.Append(wire.Record{Topo: p.TopoID(), Victim: 99})    // victim out of range
	s.Append(wire.Record{Topo: p.TopoID(), Victim: 2, MF: 9})
	if got := p.SubmitSlab(s); got != 2 {
		t.Fatalf("accepted %d records, want 2", got)
	}
	p.Close()
	if got := p.C.TopoMismatch.Load(); got != 1 {
		t.Errorf("topo mismatch = %d, want 1", got)
	}
	if got := p.C.BadVictim.Load(); got != 1 {
		t.Errorf("bad victim = %d, want 1", got)
	}
	if got := p.C.Processed.Load(); got != 2 {
		t.Errorf("processed = %d, want 2", got)
	}
	if got := p.SlabsOutstanding(); got != 0 {
		t.Errorf("slabs outstanding = %d, want 0", got)
	}
}

// TestSlabLifecycleAcrossPipeline drives many multi-victim slabs —
// some accepted, some shed, some after Close — and asserts every slab
// returned to the pool: the drain-time leak check the pool's
// Outstanding counter exists for.
func TestSlabLifecycleAcrossPipeline(t *testing.T) {
	net := topology.NewMesh2D(8)
	p, err := New(Config{Net: net, Shards: 4, QueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 200; iter++ {
		s := p.GetSlab()
		for i := 0; i < 100; i++ {
			s.Append(wire.Record{
				Topo: p.TopoID(), Victim: topology.NodeID((iter + i) % net.NumNodes()),
				MF: uint16(i),
			})
		}
		p.SubmitSlab(s) // sheds freely against the tiny queues
	}
	p.Close()
	// Post-close submits must release their slabs too.
	s := p.GetSlab()
	s.Append(wire.Record{Topo: p.TopoID(), Victim: 1})
	if got := p.SubmitSlab(s); got != 0 {
		t.Errorf("post-close submit accepted %d records", got)
	}
	if got := p.C.RejectedClosed.Load(); got != 1 {
		t.Errorf("rejected-closed = %d, want 1", got)
	}
	if got := p.SlabsOutstanding(); got != 0 {
		t.Fatalf("slabs outstanding after drain = %d, want 0 (leak)", got)
	}
	snap := p.Snapshot()
	if snap.Processed != snap.Accepted {
		t.Errorf("processed %d != accepted %d after drain", snap.Processed, snap.Accepted)
	}
}
