package pipeline

// Cluster hook: the seam between the single-instance daemon and the
// internal/cluster scale-out tier, kept as an interface so the
// pipeline package never imports cluster (which imports pipeline).
// When ServerConfig.NewCluster is set, Start builds the node right
// after the pipeline and routes every ingest slab through it; the node
// decides per record whether this instance owns the victim (submit
// locally) or a peer does (re-export over a forwarding session).
//
// Victim-state handoff rides the same shard queues as records:
// SeedVictim enqueues a replica snapshot to the owning shard, so the
// merge happens on the worker goroutine that owns the victim map —
// single-writer discipline is preserved and a seed enqueued before a
// record batch is applied before it.

import (
	"io"

	"repro/internal/topology"
	"repro/internal/wire"
)

// ClusterNode is what the daemon needs from a cluster tier.
type ClusterNode interface {
	// Route takes ownership of a filled slab (the SubmitSlab contract):
	// records owned locally are submitted to the pipeline, foreign ones
	// are queued for forwarding. Returns how many records were accepted
	// locally or queued for a peer.
	Route(s *wire.Slab) int

	// NoteForwardedIn accounts records that arrived on a forwarding
	// session from the named origin instance (post-dedup).
	NoteForwardedIn(origin uint64, accepted int)

	// HandleGossip processes one anti-entropy request body and returns
	// the response body (both inner gossip payloads, already unframed).
	HandleGossip(req []byte) ([]byte, error)

	// HandleHandback absorbs one victim-state handback body (the inner
	// payload of a TypeHandback frame, already unframed) and returns
	// the ack value the daemon writes back to the shipper.
	HandleHandback(body []byte) (uint64, error)

	// StatusJSON is the /cluster admin document.
	StatusJSON() any

	// WriteMetrics appends the node's Prometheus series to /metrics.
	WriteMetrics(w io.Writer)

	// Close stops gossip and flushes the forwarding queues.
	Close()
}

// VictimSnapshot is one victim's replicable identification state: the
// per-source tallies plus the alarm latch, everything a successor
// needs so blocking thresholds continue rather than restart. Detector
// windows are deliberately not carried — they are sliding-window state
// over recent arrivals, and the alarm latch is what gates blocking.
//
// Expired marks the final snapshot of a victim the TTL sweep retired:
// gossiped as a tombstone so replicas on other instances drop their
// copy instead of re-seeding a detector the owner deliberately let go.
type VictimSnapshot struct {
	Victim      topology.NodeID
	Alarmed     bool
	Expired     bool
	Undecodable int64
	Sources     []SourceCount
}

// Identified sums the snapshot's per-source tallies.
func (vs *VictimSnapshot) Identified() int64 {
	var n int64
	for _, sc := range vs.Sources {
		n += sc.Count
	}
	return n
}

// NumNodes reports the configured fabric's node count (victim and
// source ids are dense below it) — the cluster tier's validity bound.
func (p *Pipeline) NumNodes() int { return p.cfg.Net.NumNodes() }

// ExportVictim snapshots one victim's replicable state; ok is false
// when the pipeline holds no state for it.
func (p *Pipeline) ExportVictim(v topology.NodeID) (snap VictimSnapshot, ok bool) {
	st := p.state(v)
	if st == nil {
		return VictimSnapshot{}, false
	}
	return snapshotState(v, st), true
}

// snapshotState copies one victim's replicable state. The caller must
// not hold the identifier lock.
func snapshotState(v topology.NodeID, st *victimState) VictimSnapshot {
	snap := VictimSnapshot{Victim: v, Alarmed: st.alarmed.Load()}
	id := st.ident.Lock()
	snap.Undecodable = id.Undecodable()
	id.EachSource(func(src topology.NodeID, count int64) {
		snap.Sources = append(snap.Sources, SourceCount{Node: int64(src), Count: count})
	})
	st.ident.Unlock()
	return snap
}

// SeedVictim merges a replica snapshot into the owning shard's victim
// state, creating it if absent. The merge is additive, which is exact
// when ownership transfers are exclusive: the replica covers records
// the dead owner processed, the live state covers records processed
// here after takeover, and the two sets are disjoint. The seed travels
// through the shard queue, so it orders before any record batch
// submitted after it. Returns false when the pipeline is closed or the
// victim is out of range.
func (p *Pipeline) SeedVictim(snap VictimSnapshot) bool {
	if snap.Victim < 0 || int(snap.Victim) >= p.cfg.Net.NumNodes() {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.shards[int(snap.Victim)%len(p.shards)].ch <- batch{seed: &snap}
	return true
}

// DetachVictim removes one victim's exact state from the pipeline and
// hands its final snapshot to fn — the ownership-transfer primitive a
// cluster node uses when a membership change moves a victim to another
// instance. Like SeedVictim it rides the owning shard's queue, so every
// record submitted before the detach is tallied into the snapshot and
// the single-writer discipline holds; fn runs on the shard worker with
// no pipeline locks held (keep it non-blocking). fn's second argument
// is false when the pipeline held no state for the victim (fn still
// runs, so callers can sequence against the queue either way). Returns
// false when the pipeline is closed or the victim is out of range.
func (p *Pipeline) DetachVictim(v topology.NodeID, fn func(VictimSnapshot, bool)) bool {
	if v < 0 || int(v) >= p.cfg.Net.NumNodes() || fn == nil {
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.shards[int(v)%len(p.shards)].ch <- batch{detach: &detachReq{victim: v, fn: fn}}
	return true
}

// applyDetach runs on the shard worker goroutine (see run).
func (p *Pipeline) applyDetach(s *shard, req *detachReq) {
	st := s.victims[req.victim]
	if st == nil {
		req.fn(VictimSnapshot{Victim: req.victim}, false)
		return
	}
	snap := snapshotState(req.victim, st)
	s.mu.Lock()
	delete(s.victims, req.victim)
	s.mu.Unlock()
	p.C.VictimsDetached.Add(1)
	req.fn(snap, true)
}

// applySeed runs on the shard worker goroutine (see run).
func (p *Pipeline) applySeed(s *shard, snap *VictimSnapshot) {
	st := s.victims[snap.Victim]
	if st == nil {
		if p.schemeErr != nil {
			return // unbuildable scheme; nothing to seed into
		}
		// Seeds bypass the admission gate: a replica handed over on
		// takeover is evidence the victim was already hot on its owner.
		st = p.materialize(s, snap.Victim)
	}
	id := st.ident.Lock()
	for _, sc := range snap.Sources {
		id.AddTally(topology.NodeID(sc.Node), sc.Count)
	}
	id.AddUndecodable(snap.Undecodable)
	st.ident.Unlock()
	if snap.Alarmed {
		// Inherit the latch without counting a fresh alarm: the dead
		// owner already counted (and journaled) this attack.
		st.alarmed.Store(true)
	}
}
