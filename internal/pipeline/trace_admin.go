package pipeline

// Admin-plane surface of the flight recorder: the /debug/traces JSON
// endpoint, the SIGQUIT dump, and the shared JSON shape `ddpmd trace`
// renders as timelines.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
)

// TraceJSON is the wire shape of one retained trace on /debug/traces
// and in SIGQUIT dumps. The id is hex (a uint64 would lose precision in
// JSON consumers that parse numbers as float64); span durations are
// nanoseconds with -1 meaning the record never reached that stage.
type TraceJSON struct {
	ID      string `json:"id"`
	Outcome string `json:"outcome"`
	Victim  int64  `json:"victim"`
	Source  int64  `json:"source"`
	Shard   int32  `json:"shard"`
	StartNS int64  `json:"start_unix_nano"`
	SentNS  int64  `json:"sent_unix_nano,omitempty"`
	Origin  string `json:"origin,omitempty"` // forwarding member id (hex) when the record crossed a hop

	WireNS     int64 `json:"wire_ns"`
	ForwardNS  int64 `json:"forward_ns"`
	IngestNS   int64 `json:"ingest_ns"`
	IdentifyNS int64 `json:"identify_ns"`
	DetectNS   int64 `json:"detect_ns"`
	BlockNS    int64 `json:"block_ns"`
	TotalNS    int64 `json:"total_ns"`
}

// ToJSON converts a recorder trace to its admin-plane shape.
func (t *Trace) ToJSON() TraceJSON {
	j := TraceJSON{
		ID:      fmt.Sprintf("%016x", t.ID),
		Outcome: t.Outcome.String(),
		Victim:  t.Victim,
		Source:  t.Source,
		Shard:   t.Shard,
		StartNS: t.Start,
		SentNS:  t.Sent,

		WireNS:     t.Wire,
		ForwardNS:  t.Forward,
		IngestNS:   t.Ingest,
		IdentifyNS: t.Identify,
		DetectNS:   t.Detect,
		BlockNS:    t.Block,
		TotalNS:    t.Total(),
	}
	if t.Origin != 0 {
		j.Origin = fmt.Sprintf("%x", t.Origin)
	}
	return j
}

// parseTraceFilter builds a recorder filter from /debug/traces query
// parameters: victim, source (node ids; -1 matches stream-level
// events), outcome (a name from the outcome set), id (16-hex-digit
// trace id) and limit.
func parseTraceFilter(q map[string][]string) (TraceFilter, error) {
	f := AllTraces()
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if v := get("victim"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("bad victim %q", v)
		}
		f.Victim = n
	}
	if v := get("source"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("bad source %q", v)
		}
		f.Source = n
	}
	if v := get("outcome"); v != "" {
		o, ok := OutcomeFromString(v)
		if !ok {
			return f, fmt.Errorf("unknown outcome %q", v)
		}
		f.Outcome, f.HasOut = o, true
	}
	if v := get("id"); v != "" {
		id, err := strconv.ParseUint(v, 16, 64)
		if err != nil {
			return f, fmt.Errorf("bad trace id %q", v)
		}
		f.ID = id
	}
	if v := get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad limit %q", v)
		}
		f.Limit = n
	}
	return f, nil
}

// handleTraces serves retained traces as a JSON array, newest first.
// Filters: ?victim=N ?source=N ?outcome=block ?id=hex ?limit=N.
func (d *Daemon) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fr := d.p.Recorder()
	if fr == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	f, err := parseTraceFilter(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	traces := fr.Snapshot(f)
	out := make([]TraceJSON, 0, len(traces))
	for i := range traces {
		out = append(out, traces[i].ToJSON())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// DumpTraces writes every retained trace to w as JSON lines, newest
// first, bracketed by marker lines so a dump is findable in a shared
// stderr stream. The no-recorder and empty cases still write the
// markers: a dump that says "0 traces" answers the operator's question.
func (d *Daemon) DumpTraces(w io.Writer) error {
	fr := d.p.Recorder()
	var traces []Trace
	if fr != nil {
		traces = fr.Snapshot(AllTraces())
	}
	if _, err := fmt.Fprintf(w, "=== ddpmd trace dump: %d traces ===\n", len(traces)); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for i := range traces {
		if err := enc.Encode(traces[i].ToJSON()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "=== end trace dump ===")
	return err
}

// WatchDumpSignal dumps the flight recorder to w whenever one of sigs
// arrives (ddpmd wires SIGQUIT) and returns a stop function. Installing
// a handler replaces Go's default die-with-stacks SIGQUIT behavior —
// deliberate: a live daemon answering SIGQUIT with traces instead of
// dying is the point.
func (d *Daemon) WatchDumpSignal(w io.Writer, sigs ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if err := d.DumpTraces(w); err != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
