package pipeline

// Fleet aggregation plane: the /cluster/traces endpoint fans a trace
// query out to every alive member's admin plane and merges the per-node
// spans into one timeline — the server side of `ddpmd fleet trace`.
// The pipeline stays cluster-agnostic: the member list comes from the
// daemon's ClusterNode via the optional fleetLister interface, and each
// member is queried over plain HTTP against the admin address gossip
// revealed for it.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// FleetMember is one known cluster member as the fleet plane sees it:
// ingest address, member id, liveness, and the admin-plane HTTP address
// learned from gossip ("" until the member has advertised one).
type FleetMember struct {
	Addr      string `json:"addr"`
	ID        uint64 `json:"id"`
	Self      bool   `json:"self,omitempty"`
	Alive     bool   `json:"alive"`
	AdminAddr string `json:"admin_addr,omitempty"`
}

// fleetLister is the optional ClusterNode extension the fleet plane
// needs: the member roster with admin addresses. Asserted at request
// time so non-cluster daemons and older cluster tiers degrade to 404.
type fleetLister interface {
	FleetMembers() []FleetMember
}

// FleetSpan is one member's half of a cross-node timeline: a retained
// trace tagged with the node that holds it.
type FleetSpan struct {
	Node     string `json:"node"`      // ingest address of the member holding the span
	MemberID string `json:"member_id"` // hex member id
	TraceJSON
}

// FleetTrace is the merged /cluster/traces document: every span any
// alive member retained under the queried id, ordered by start time,
// plus the end-to-end detection latency when the timeline ends in a
// block and the exporter send stamp survived the hops.
type FleetTrace struct {
	ID                 string      `json:"id"`
	Spans              []FleetSpan `json:"spans"`
	Errors             []string    `json:"errors,omitempty"` // members that could not be queried
	DetectionLatencyNS int64       `json:"detection_latency_ns,omitempty"`
}

// fleetQueryTimeout bounds each member query: a wedged peer delays the
// merged answer by at most this, and its absence is reported in Errors
// rather than failing the whole document.
const fleetQueryTimeout = 2 * time.Second

// handleFleetTraces serves GET /cluster/traces?id=hex: local spans from
// this node's recorder plus, in parallel, every alive peer's
// /debug/traces answer for the same id, merged into one FleetTrace.
func (d *Daemon) handleFleetTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if d.cluster == nil {
		http.Error(w, "no cluster tier", http.StatusNotFound)
		return
	}
	lister, ok := d.cluster.(fleetLister)
	if !ok {
		http.Error(w, "cluster tier has no fleet roster", http.StatusNotFound)
		return
	}
	fr := d.p.Recorder()
	if fr == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	idHex := r.URL.Query().Get("id")
	if idHex == "" {
		http.Error(w, "missing ?id=", http.StatusBadRequest)
		return
	}
	id, err := strconv.ParseUint(idHex, 16, 64)
	if err != nil || id == 0 {
		http.Error(w, fmt.Sprintf("bad trace id %q", idHex), http.StatusBadRequest)
		return
	}

	out := FleetTrace{ID: fmt.Sprintf("%016x", id)}
	members := lister.FleetMembers()
	var selfAddr, selfID string
	for _, m := range members {
		if m.Self {
			selfAddr, selfID = m.Addr, fmt.Sprintf("%x", m.ID)
		}
	}
	for _, t := range fr.Snapshot(TraceFilter{ID: id, Victim: MatchAny, Source: MatchAny}) {
		out.Spans = append(out.Spans, FleetSpan{Node: selfAddr, MemberID: selfID, TraceJSON: t.ToJSON()})
	}

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	client := &http.Client{Timeout: fleetQueryTimeout}
	for _, m := range members {
		if m.Self || !m.Alive {
			continue
		}
		if m.AdminAddr == "" {
			mu.Lock()
			out.Errors = append(out.Errors, fmt.Sprintf("%s: admin address not yet gossiped", m.Addr))
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(m FleetMember) {
			defer wg.Done()
			spans, err := queryMemberTraces(client, m.AdminAddr, idHex)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				out.Errors = append(out.Errors, fmt.Sprintf("%s: %v", m.Addr, err))
				return
			}
			mid := fmt.Sprintf("%x", m.ID)
			for _, s := range spans {
				out.Spans = append(out.Spans, FleetSpan{Node: m.Addr, MemberID: mid, TraceJSON: s})
			}
		}(m)
	}
	wg.Wait()

	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].StartNS < out.Spans[j].StartNS })
	sort.Strings(out.Errors)
	// End-to-end detection latency: exporter send to the block decision,
	// read off the span that consulted the blocklist (BlockNS >= 0) and
	// still carries the original send stamp across the hops.
	for i := len(out.Spans) - 1; i >= 0; i-- {
		s := &out.Spans[i]
		if s.Outcome == OutcomeBlock.String() && s.SentNS > 0 {
			out.DetectionLatencyNS = s.StartNS + s.TotalNS - s.SentNS
			break
		}
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// queryMemberTraces fetches one member's retained spans for a trace id
// from its admin plane.
func queryMemberTraces(client *http.Client, adminAddr, idHex string) ([]TraceJSON, error) {
	resp, err := client.Get("http://" + adminAddr + "/debug/traces?id=" + idHex)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var spans []TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
