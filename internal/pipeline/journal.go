package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Journal event types. One JSONL line per event; the schema is the
// Event struct below (DESIGN.md §9.2).
const (
	EventAlarm         = "alarm_raised"   // a victim's detector fired
	EventBlock         = "source_blocked" // auto-block insertion, with top-k evidence
	EventBlockExpired  = "block_expired"  // a TTL block aged out
	EventVictimExpired = "victim_expired" // an idle victim's exact state was swept back to sketch-only
	EventResync        = "stream_resync"  // lenient stream skipped to the next magic
	EventSessionLoss   = "session_loss"   // a strict exporter session conn was dropped

	// Cluster-op events (DESIGN.md §14): fleet state transitions leave
	// audit lines with the ring version + member set in Detail.
	EventRingChange     = "ring_change"        // ownership ring rebuilt for a new alive set
	EventGossipRound    = "gossip_round"       // periodic anti-entropy summary (sampled, not per-round)
	EventVictimDetached = "victim_detached"    // a departing victim's exact state was detached for handback
	EventHandbackShip   = "handback_shipped"   // cumulative snapshot shipped to the new owner
	EventHandbackRecv   = "handback_received"  // snapshot received and seeded from an interim owner
	EventTakeover       = "takeover_seeded"    // stored replica seeded on owner takeover
	EventGateAdmit      = "forward_gate_admit" // fwGate opened the forward path for a victim
	EventTraceDowngrade = "trace_downgraded"   // a forward peer did not echo the trace flag; contexts shed
)

// SourceCount pairs an identified source with its tally — the per-
// victim evidence attached to block events and /victims reports.
type SourceCount struct {
	Node  int64 `json:"node"`
	Count int64 `json:"count"`
}

// Event is one attack-audit journal line. Victim and Source are -1
// when the event has none (stream-level events); Until follows the
// blocklist convention (0 = permanent).
type Event struct {
	T      int64         `json:"t_unix_nano"`
	Type   string        `json:"type"`
	Victim int64         `json:"victim"`
	Source int64         `json:"source"`
	Count  int64         `json:"count,omitempty"`           // identification tally at block time
	Until  int64         `json:"until_unix_nano,omitempty"` // block expiry
	Top    []SourceCount `json:"top_sources,omitempty"`     // evidence at block time
	Stream uint64        `json:"stream,omitempty"`          // exporter stream id
	Detail string        `json:"detail,omitempty"`
}

// Journal is a bounded, asynchronous, drop-counting JSONL writer for
// attack-audit events. Emit never blocks the hot path: events are
// handed to a background writer over a bounded channel, and when that
// queue is full the event is counted dropped instead of stalling a
// shard worker — the same shed-don't-stall policy as the ingest queues
// (an audit log that can wedge the detector under flood would be its
// own DoS amplifier).
//
// Close flushes everything queued and, for journals opened with
// OpenJournal, closes the underlying file; the daemon calls it on the
// SIGTERM drain path after the pipeline has emptied its queues.
type Journal struct {
	mu     sync.RWMutex // guards closed vs. Emit's channel send
	closed bool
	ch     chan Event
	done   chan struct{}

	bw     *bufio.Writer
	closer io.Closer // nil unless the journal owns the sink

	written   atomic.Uint64
	dropped   atomic.Uint64
	writeErrs atomic.Uint64
}

// NewJournal starts a journal writing JSONL to w with the given queue
// depth (default 1024 for depth <= 0). The caller keeps ownership of w
// but must not write to it until Close returns.
func NewJournal(w io.Writer, depth int) *Journal {
	if depth <= 0 {
		depth = 1024
	}
	j := &Journal{
		ch:   make(chan Event, depth),
		done: make(chan struct{}),
		bw:   bufio.NewWriter(w),
	}
	go j.writeLoop()
	return j
}

// OpenJournal creates (or truncates) a journal file at path. The
// journal owns the file and closes it in Close.
func OpenJournal(path string, depth int) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	j := NewJournal(f, depth)
	j.closer = f
	return j, nil
}

func (j *Journal) writeLoop() {
	defer close(j.done)
	enc := json.NewEncoder(j.bw)
	for ev := range j.ch {
		if err := enc.Encode(ev); err != nil {
			j.writeErrs.Add(1)
			continue
		}
		j.written.Add(1)
	}
	if err := j.bw.Flush(); err != nil {
		j.writeErrs.Add(1)
	}
}

// Emit queues one event without blocking. It reports false when the
// event was dropped — queue full or journal closed — with the loss
// visible in Dropped.
func (j *Journal) Emit(ev Event) bool {
	j.mu.RLock()
	defer j.mu.RUnlock()
	if j.closed {
		j.dropped.Add(1)
		return false
	}
	select {
	case j.ch <- ev:
		return true
	default:
		j.dropped.Add(1)
		return false
	}
}

// Written and Dropped report how many events reached the sink and how
// many were shed; WriteErrors how many encodes or the final flush
// failed.
func (j *Journal) Written() uint64     { return j.written.Load() }
func (j *Journal) Dropped() uint64     { return j.dropped.Load() }
func (j *Journal) WriteErrors() uint64 { return j.writeErrs.Load() }

// Close drains the queue, flushes the buffered writer and closes the
// file when the journal owns one. Safe to call more than once; Emit
// after Close counts the event dropped.
func (j *Journal) Close() error {
	j.mu.Lock()
	already := j.closed
	j.closed = true
	if !already {
		close(j.ch)
	}
	j.mu.Unlock()
	<-j.done
	var err error
	if j.writeErrs.Load() > 0 {
		err = fmt.Errorf("pipeline: journal: %d events failed to encode or flush", j.writeErrs.Load())
	}
	if j.closer != nil {
		cerr := j.closer.Close()
		j.closer = nil
		if err == nil {
			err = cerr
		}
	}
	return err
}
