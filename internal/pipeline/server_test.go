package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

func httpGet(t *testing.T, d *Daemon, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", d.HTTPAddr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestGracefulShutdownDrainsWithoutLossAndHealthzFlips(t *testing.T) {
	topo := topology.NewMesh2D(4)
	gate := make(chan struct{})
	var released atomic.Bool
	d, err := Start(ServerConfig{
		Pipeline: Config{
			Net: topo, Shards: 1, QueueLen: 4096,
			Now: func() int64 {
				if !released.Load() {
					<-gate // hold the worker so records stay queued
				}
				return 0
			},
		},
		TCPAddr:    "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		DrainGrace: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	if code, body := httpGet(t, d, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before shutdown: %d %q", code, body)
	}

	// Stream records and close the conn so the handler finishes.
	conn, err := net.Dial("tcp", d.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	const N = 500
	recs := make([]wire.Record, N)
	topoID := d.Pipeline().TopoID()
	for i := range recs {
		recs[i] = wire.Record{T: 1, Topo: topoID, Victim: topology.NodeID(i % 16), MF: 0}
	}
	w := wire.NewWriter(conn)
	if err := w.WriteRecords(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Wait until every record is ingested (queued, worker stalled).
	deadline := time.Now().Add(10 * time.Second)
	for d.Pipeline().C.Ingested.Load() < N {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d records ingested", d.Pipeline().C.Ingested.Load(), N)
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM path: Shutdown must flip /healthz to draining while the
	// queue empties, and lose nothing.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- d.Shutdown(context.Background()) }()

	for {
		code, body := httpGet(t, d, "/healthz")
		if code == http.StatusServiceUnavailable && strings.Contains(body, "draining") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to draining")
		}
		time.Sleep(time.Millisecond)
	}
	if !d.Draining() {
		t.Error("Draining() false during drain")
	}

	released.Store(true)
	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	c := &d.Pipeline().C
	if c.Dropped.Load() != 0 {
		t.Errorf("%d records dropped during drain", c.Dropped.Load())
	}
	if got := c.Processed.Load(); got != N {
		t.Errorf("processed %d of %d queued records — drain lost data", got, N)
	}
}

func TestDaemonUDPIngestAndDecodeErrors(t *testing.T) {
	topo := topology.NewMesh2D(4)
	d, err := Start(ServerConfig{
		Pipeline: Config{Net: topo, Shards: 2},
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	recs := []wire.Record{
		{T: 1, Topo: d.Pipeline().TopoID(), Victim: 3, MF: 0},
		{T: 2, Topo: d.Pipeline().TopoID(), Victim: 7, MF: 0},
	}
	if _, err := conn.Write(wire.AppendFrame(nil, recs)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("definitely not a frame")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Pipeline().C.Ingested.Load() < 2 || d.DecodeErrors() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("udp ingest stuck: ingested=%d decodeErrs=%d",
				d.Pipeline().C.Ingested.Load(), d.DecodeErrors())
		}
		time.Sleep(time.Millisecond)
	}
	if _, body := httpGet(t, d, "/metrics"); !strings.Contains(body, "ddpmd_decode_errors_total 1") {
		t.Errorf("metrics missing decode error counter:\n%s", body)
	}
}

func TestBlocklistAdminEndpoint(t *testing.T) {
	topo := topology.NewMesh2D(4)
	var clock atomic.Int64
	d, err := Start(ServerConfig{
		Pipeline: Config{Net: topo, Now: func() int64 { return clock.Load() }},
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	post := func(body string) int {
		resp, err := http.Post(fmt.Sprintf("http://%s/blocklist", d.HTTPAddr()), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"node":5,"ttl_ms":1000}`); code != http.StatusNoContent {
		t.Fatalf("block POST: %d", code)
	}
	if code := post(`{"node":3}`); code != http.StatusNoContent {
		t.Fatalf("permanent block POST: %d", code)
	}
	if code := post(`{"node":99}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node POST: %d, want 400", code)
	}
	_, body := httpGet(t, d, "/blocklist")
	if !strings.Contains(body, `"node":3`) || !strings.Contains(body, `"node":5`) {
		t.Fatalf("blocklist GET missing entries: %s", body)
	}
	if !d.Pipeline().Blocklist().BlockedAt(5, clock.Load()) {
		t.Error("TTL block not in force")
	}
	// TTL lapse via the fake clock: entry disappears from GET.
	clock.Add((2 * time.Second).Nanoseconds())
	_, body = httpGet(t, d, "/blocklist")
	if strings.Contains(body, `"node":5`) {
		t.Errorf("lapsed TTL entry still listed: %s", body)
	}
	if !strings.Contains(body, `"node":3`) {
		t.Errorf("permanent entry vanished: %s", body)
	}
	// Unblock.
	if code := post(`{"node":3,"unblock":true}`); code != http.StatusNoContent {
		t.Fatalf("unblock POST: %d", code)
	}
	if d.Pipeline().Blocklist().Len() != 0 {
		t.Error("unblock left entries behind")
	}
}

func TestVictimsEndpointAndPprofGate(t *testing.T) {
	topo := topology.NewMesh2D(4)
	d, err := Start(ServerConfig{
		Pipeline:    Config{Net: topo, Shards: 2},
		HTTPAddr:    "127.0.0.1:0",
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	p := d.Pipeline()
	for _, v := range []topology.NodeID{9, 2} {
		if !p.Submit(wire.Record{T: 1, Topo: p.TopoID(), Victim: v, MF: 0}) {
			t.Fatal("submit shed")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.C.Processed.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("records never processed")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := httpGet(t, d, "/victims?k=2")
	if code != http.StatusOK {
		t.Fatalf("GET /victims: %d %s", code, body)
	}
	var reports []VictimReport
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatalf("bad /victims JSON %q: %v", body, err)
	}
	if len(reports) != 2 || reports[0].Node != 2 || reports[1].Node != 9 {
		t.Fatalf("reports = %+v, want nodes [2 9] sorted", reports)
	}
	// MF 0 identifies src == victim: one tallied top source each.
	if len(reports[0].TopSources) != 1 || reports[0].TopSources[0].Node != 2 {
		t.Errorf("victim 2 top sources = %+v", reports[0].TopSources)
	}
	if reports[0].Alarmed || reports[0].Identified != 1 {
		t.Errorf("victim 2 report = %+v", reports[0])
	}

	if code, body := httpGet(t, d, "/victims?k=junk"); code != http.StatusBadRequest {
		t.Errorf("bad k: %d %s, want 400", code, body)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/victims", d.HTTPAddr()), "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /victims: %d, want 405", resp.StatusCode)
	}
	if code, _ := httpGet(t, d, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof enabled but /debug/pprof/cmdline = %d", code)
	}

	// pprof stays off unless asked: a second daemon without the opt-in.
	d2, err := Start(ServerConfig{Pipeline: Config{Net: topo}, HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown(context.Background())
	if code, _ := httpGet(t, d2, "/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof reachable without opt-in: %d", code)
	}
}

func TestShutdownFlushesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	j, err := OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.NewMesh2D(4)
	d, err := Start(ServerConfig{
		Pipeline: Config{Net: topo, Journal: j},
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{T: 1, Type: EventResync, Victim: -1, Source: -1, Detail: "test"})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Shutdown closed the journal: the event is on disk and late emits shed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"stream_resync"`) {
		t.Errorf("journal file missing flushed event: %q", data)
	}
	if j.Emit(Event{Type: EventResync}) {
		t.Error("emit after daemon shutdown reported success")
	}
}
