package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/topology"
	"repro/internal/wire"
)

// ServerConfig wires a Pipeline to the outside world.
type ServerConfig struct {
	Pipeline Config

	// TCPAddr accepts length-prefixed wire frames over stream
	// connections; UDPAddr accepts one frame per datagram; HTTPAddr is
	// the admin plane (/healthz, /metrics, /blocklist). Empty
	// disables that listener; ":0" picks an ephemeral port.
	TCPAddr  string
	UDPAddr  string
	HTTPAddr string

	// DrainGrace bounds how long Shutdown lets live TCP streams keep
	// delivering already-sent frames before cutting them (default
	// 250ms).
	DrainGrace time.Duration
}

// Daemon is the running ddpmd service: ingest listeners feeding a
// Pipeline plus the HTTP admin plane.
type Daemon struct {
	cfg   ServerConfig
	p     *Pipeline
	start time.Time

	tcpLn   net.Listener
	udpConn net.PacketConn
	httpLn  net.Listener
	httpSrv *http.Server

	draining    atomic.Bool
	decodeErrs  atomic.Uint64
	connsMu     sync.Mutex
	conns       map[net.Conn]struct{}
	ingestersWG sync.WaitGroup
}

// Start builds the pipeline, binds every configured listener and
// begins serving. On error nothing is left running.
func Start(cfg ServerConfig) (*Daemon, error) {
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	p, err := New(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, p: p, start: time.Now(), conns: make(map[net.Conn]struct{})}
	fail := func(err error) (*Daemon, error) {
		d.closeListeners()
		p.Close()
		return nil, err
	}
	if cfg.TCPAddr != "" {
		if d.tcpLn, err = net.Listen("tcp", cfg.TCPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: tcp listen: %w", err))
		}
		d.ingestersWG.Add(1)
		go d.acceptLoop()
	}
	if cfg.UDPAddr != "" {
		if d.udpConn, err = net.ListenPacket("udp", cfg.UDPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: udp listen: %w", err))
		}
		d.ingestersWG.Add(1)
		go d.udpLoop()
	}
	if cfg.HTTPAddr != "" {
		if d.httpLn, err = net.Listen("tcp", cfg.HTTPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: http listen: %w", err))
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", d.handleHealthz)
		mux.HandleFunc("/metrics", d.handleMetrics)
		mux.HandleFunc("/blocklist", d.handleBlocklist)
		d.httpSrv = &http.Server{Handler: mux}
		go d.httpSrv.Serve(d.httpLn)
	}
	return d, nil
}

// Pipeline exposes the underlying pipeline (tests, embedding).
func (d *Daemon) Pipeline() *Pipeline { return d.p }

// DecodeErrors reports wire-level decode failures across listeners.
func (d *Daemon) DecodeErrors() uint64 { return d.decodeErrs.Load() }

// Draining reports whether Shutdown has begun.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// TCPAddr, UDPAddr and HTTPAddr return the bound addresses (nil when
// that listener is disabled) — needed when configured with ":0".
func (d *Daemon) TCPAddr() net.Addr {
	if d.tcpLn == nil {
		return nil
	}
	return d.tcpLn.Addr()
}

func (d *Daemon) UDPAddr() net.Addr {
	if d.udpConn == nil {
		return nil
	}
	return d.udpConn.LocalAddr()
}

func (d *Daemon) HTTPAddr() net.Addr {
	if d.httpLn == nil {
		return nil
	}
	return d.httpLn.Addr()
}

// Shutdown drains and stops: flip /healthz to draining, stop
// accepting, give live TCP streams DrainGrace to deliver already-sent
// frames, drain every shard queue, then stop the admin plane. Queued
// records are never discarded.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.draining.Store(true)
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.udpConn != nil {
		d.udpConn.SetReadDeadline(time.Now()) // unblock the udp loop
	}
	deadline := time.Now().Add(d.cfg.DrainGrace)
	d.connsMu.Lock()
	for c := range d.conns {
		c.SetReadDeadline(deadline)
	}
	d.connsMu.Unlock()
	d.ingestersWG.Wait()
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	d.p.Close() // drain shard queues
	if d.httpSrv != nil {
		return d.httpSrv.Shutdown(ctx)
	}
	return nil
}

func (d *Daemon) closeListeners() {
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	if d.httpLn != nil {
		d.httpLn.Close()
	}
}

func (d *Daemon) acceptLoop() {
	defer d.ingestersWG.Done()
	for {
		conn, err := d.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		d.connsMu.Lock()
		d.conns[conn] = struct{}{}
		d.connsMu.Unlock()
		d.ingestersWG.Add(1)
		go d.serveConn(conn)
	}
}

func (d *Daemon) serveConn(conn net.Conn) {
	defer d.ingestersWG.Done()
	defer func() {
		conn.Close()
		d.connsMu.Lock()
		delete(d.conns, conn)
		d.connsMu.Unlock()
	}()
	if d.draining.Load() {
		// Accepted in the race with Shutdown: honor the drain deadline.
		conn.SetReadDeadline(time.Now().Add(d.cfg.DrainGrace))
	}
	r := wire.NewReader(conn)
	for {
		rec, err := r.Next()
		if err != nil {
			if errors.Is(err, wire.ErrBadFrame) {
				// Stream position unknown after a framing error; the
				// only safe move is dropping the connection.
				d.decodeErrs.Add(1)
			}
			return
		}
		d.p.Submit(rec)
	}
}

func (d *Daemon) udpLoop() {
	defer d.ingestersWG.Done()
	buf := make([]byte, 1<<16)
	for {
		n, _, err := d.udpConn.ReadFrom(buf)
		if err != nil {
			return // closed or drain deadline
		}
		recs, _, err := wire.ParseFrame(buf[:n])
		if err != nil {
			d.decodeErrs.Add(1)
			continue
		}
		for _, rec := range recs {
			d.p.Submit(rec)
		}
	}
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if d.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.p.WritePrometheus(w, time.Since(d.start))
	fmt.Fprintf(w, "# HELP ddpmd_decode_errors_total wire frames rejected at the listeners\n"+
		"# TYPE ddpmd_decode_errors_total counter\nddpmd_decode_errors_total %d\n", d.decodeErrs.Load())
	draining := 0
	if d.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP ddpmd_draining whether shutdown drain has begun\n"+
		"# TYPE ddpmd_draining gauge\nddpmd_draining %d\n", draining)
}

// blocklistEntry is the admin-plane JSON shape of one block.
type blocklistEntry struct {
	Node          int64 `json:"node"`
	UntilUnixNano int64 `json:"until_unix_nano"` // 0 = permanent
	TTLMillis     int64 `json:"ttl_ms,omitempty"`
}

// blocklistOp is the POST body: block (default) or unblock a node,
// with an optional TTL.
type blocklistOp struct {
	Node    int64 `json:"node"`
	TTLMs   int64 `json:"ttl_ms"`
	Unblock bool  `json:"unblock"`
}

func (d *Daemon) handleBlocklist(w http.ResponseWriter, r *http.Request) {
	bl := d.p.Blocklist()
	switch r.Method {
	case http.MethodGet:
		now := d.p.cfg.Now()
		bl.Expire(now)
		entries := bl.Snapshot()
		out := make([]blocklistEntry, 0, len(entries))
		for _, e := range entries {
			be := blocklistEntry{Node: int64(e.Node), UntilUnixNano: e.Until}
			if e.Until != filter.Permanent {
				be.TTLMillis = (e.Until - now) / int64(time.Millisecond)
			}
			out = append(out, be)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	case http.MethodPost:
		var op blocklistOp
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if op.Node < 0 || int(op.Node) >= d.p.cfg.Net.NumNodes() {
			http.Error(w, fmt.Sprintf("node %d outside %s", op.Node, d.p.cfg.Net.Name()), http.StatusBadRequest)
			return
		}
		n := topology.NodeID(op.Node)
		switch {
		case op.Unblock:
			bl.Unblock(n)
		case op.TTLMs > 0:
			bl.BlockUntil(n, d.p.cfg.Now()+op.TTLMs*int64(time.Millisecond))
		default:
			bl.Block(n)
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
