package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/topology"
	"repro/internal/wire"
)

// ServerConfig wires a Pipeline to the outside world.
type ServerConfig struct {
	Pipeline Config

	// TCPAddr accepts length-prefixed wire frames over stream
	// connections; UDPAddr accepts frames packed into datagrams;
	// HTTPAddr is the admin plane (/healthz, /metrics, /blocklist).
	// Empty disables that listener; ":0" picks an ephemeral port.
	TCPAddr  string
	UDPAddr  string
	HTTPAddr string

	// DrainGrace bounds how long Shutdown lets live TCP streams keep
	// delivering already-sent frames before cutting them (default
	// 250ms).
	DrainGrace time.Duration

	// IdleTimeout sheds TCP peers that go this long without completing
	// a frame (slowloris protection) and bounds ack writes. Default 2
	// minutes; negative disables.
	IdleTimeout time.Duration

	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// admin plane. Opt-in: profiling endpoints expose heap contents,
	// so they stay off unless the operator asks.
	EnablePprof bool

	// NewCluster, when set, builds the cluster tier right after the
	// pipeline; every ingest slab is then routed through it (owned
	// records processed here, foreign ones forwarded to their owner),
	// forwarding sessions are accepted, gossip is answered, and
	// /cluster plus the cluster metrics appear on the admin plane. Nil
	// keeps the single-instance hot path: ingest submits straight to
	// the pipeline with no ownership check.
	NewCluster func(*Pipeline) (ClusterNode, error)
}

// session is the server half of a wire exporter session: the cumulative
// count of records accepted for one stream id. The mutex serializes
// ingest across connections claiming the same stream (a reconnecting
// client may briefly race its own dying conn), which is what makes
// dedup-by-seq exact.
type session struct {
	mu    sync.Mutex
	count uint64
}

// Daemon is the running ddpmd service: ingest listeners feeding a
// Pipeline plus the HTTP admin plane.
type Daemon struct {
	cfg     ServerConfig
	p       *Pipeline
	cluster ClusterNode // nil when cluster mode is off
	start   time.Time

	tcpLn   net.Listener
	udpConn net.PacketConn
	httpLn  net.Listener
	httpSrv *http.Server

	draining atomic.Bool
	drainAt  atomic.Int64 // drain deadline, unix nanos; 0 = not draining

	decodeErrs    atomic.Uint64
	resyncSkipped atomic.Uint64
	connsAccepted atomic.Uint64
	idleTimeouts  atomic.Uint64
	sessionCount  atomic.Uint64
	sessionRecs   atomic.Uint64

	connsMu     sync.Mutex
	conns       map[net.Conn]struct{}
	sessMu      sync.Mutex
	sessions    map[uint64]*session
	ingestersWG sync.WaitGroup

	errCh  chan error
	failMu sync.Mutex
	failed error
}

// Start builds the pipeline, binds every configured listener and
// begins serving. On error nothing is left running.
func Start(cfg ServerConfig) (*Daemon, error) {
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	p, err := New(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg: cfg, p: p, start: time.Now(),
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[uint64]*session),
		errCh:    make(chan error, 1),
	}
	fail := func(err error) (*Daemon, error) {
		d.closeListeners()
		if d.cluster != nil {
			d.cluster.Close()
		}
		p.Close()
		return nil, err
	}
	if cfg.NewCluster != nil {
		if d.cluster, err = cfg.NewCluster(p); err != nil {
			return fail(fmt.Errorf("pipeline: cluster: %w", err))
		}
	}
	if cfg.TCPAddr != "" {
		if d.tcpLn, err = net.Listen("tcp", cfg.TCPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: tcp listen: %w", err))
		}
		d.ingestersWG.Add(1)
		go d.acceptLoop()
	}
	if cfg.UDPAddr != "" {
		if d.udpConn, err = net.ListenPacket("udp", cfg.UDPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: udp listen: %w", err))
		}
		d.ingestersWG.Add(1)
		go d.udpLoop()
	}
	if cfg.HTTPAddr != "" {
		if d.httpLn, err = net.Listen("tcp", cfg.HTTPAddr); err != nil {
			return fail(fmt.Errorf("pipeline: http listen: %w", err))
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", d.handleHealthz)
		mux.HandleFunc("/metrics", d.handleMetrics)
		mux.HandleFunc("/blocklist", d.handleBlocklist)
		mux.HandleFunc("/victims", d.handleVictims)
		mux.HandleFunc("/cluster", d.handleCluster)
		mux.HandleFunc("/cluster/traces", d.handleFleetTraces)
		mux.HandleFunc("/debug/traces", d.handleTraces)
		if cfg.EnablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		d.httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := d.httpSrv.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.fail(fmt.Errorf("pipeline: admin serve: %w", err))
			}
		}()
		// Tell the cluster tier where the admin plane landed so it can
		// gossip the address; peers use it for fleet trace fan-out.
		if c, ok := d.cluster.(interface{ SetAdminAddr(string) }); ok {
			c.SetAdminAddr(d.httpLn.Addr().String())
		}
	}
	return d, nil
}

// fail records the daemon's first fatal background error and signals
// Errors(). Later errors are dropped: the first one is the cause.
func (d *Daemon) fail(err error) {
	d.failMu.Lock()
	if d.failed == nil {
		d.failed = err
	}
	d.failMu.Unlock()
	select {
	case d.errCh <- err:
	default:
	}
}

// Err reports the daemon's first fatal background error (nil while
// healthy). A failed daemon also reports unready on /healthz.
func (d *Daemon) Err() error {
	d.failMu.Lock()
	defer d.failMu.Unlock()
	return d.failed
}

// Errors delivers fatal background errors — e.g. the admin plane dying
// under the daemon — so a supervisor can exit instead of serving
// blindly with no metrics endpoint.
func (d *Daemon) Errors() <-chan error { return d.errCh }

// Pipeline exposes the underlying pipeline (tests, embedding).
func (d *Daemon) Pipeline() *Pipeline { return d.p }

// Cluster exposes the cluster tier (nil when cluster mode is off).
func (d *Daemon) Cluster() ClusterNode { return d.cluster }

// submit is the ingest sink: cluster mode routes by victim ownership,
// single-instance mode submits straight to the pipeline. Consumes the
// slab reference either way.
func (d *Daemon) submit(s *wire.Slab) {
	if d.cluster != nil {
		d.cluster.Route(s)
		return
	}
	d.p.SubmitSlab(s)
}

// DecodeErrors reports wire-level decode failures across listeners:
// rejected datagrams, per-frame failures that killed a strict stream,
// and each resync skip on a lenient stream.
func (d *Daemon) DecodeErrors() uint64 { return d.decodeErrs.Load() }

// Draining reports whether Shutdown has begun.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// TCPAddr, UDPAddr and HTTPAddr return the bound addresses (nil when
// that listener is disabled) — needed when configured with ":0".
func (d *Daemon) TCPAddr() net.Addr {
	if d.tcpLn == nil {
		return nil
	}
	return d.tcpLn.Addr()
}

func (d *Daemon) UDPAddr() net.Addr {
	if d.udpConn == nil {
		return nil
	}
	return d.udpConn.LocalAddr()
}

func (d *Daemon) HTTPAddr() net.Addr {
	if d.httpLn == nil {
		return nil
	}
	return d.httpLn.Addr()
}

// Shutdown drains and stops: flip /healthz to draining, stop
// accepting, give live TCP streams DrainGrace to deliver already-sent
// frames, drain every shard queue, then stop the admin plane. Queued
// records are never discarded.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.draining.Store(true)
	deadline := time.Now().Add(d.cfg.DrainGrace)
	d.drainAt.Store(deadline.UnixNano())
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.udpConn != nil {
		d.udpConn.SetReadDeadline(time.Now()) // unblock the udp loop
	}
	d.connsMu.Lock()
	for c := range d.conns {
		c.SetReadDeadline(deadline)
	}
	d.connsMu.Unlock()
	d.ingestersWG.Wait()
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	if d.cluster != nil {
		// After ingest stops and before the pipeline closes: the node
		// flushes its forward queues (which submit nothing locally) and
		// stops gossiping.
		d.cluster.Close()
	}
	d.p.Close() // drain shard queues
	var jerr error
	if j := d.p.Journal(); j != nil {
		// Flush after the drain so every event from queued records is
		// on disk before the process exits.
		jerr = j.Close()
	}
	if d.httpSrv != nil {
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	return jerr
}

func (d *Daemon) closeListeners() {
	if d.tcpLn != nil {
		d.tcpLn.Close()
	}
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	if d.httpLn != nil {
		d.httpLn.Close()
	}
}

func (d *Daemon) acceptLoop() {
	defer d.ingestersWG.Done()
	for {
		conn, err := d.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		d.connsAccepted.Add(1)
		d.connsMu.Lock()
		d.conns[conn] = struct{}{}
		d.connsMu.Unlock()
		d.ingestersWG.Add(1)
		go d.serveConn(conn)
	}
}

// armDeadline sets the idle read deadline, always ending at or before
// the drain deadline once Shutdown has begun. Re-checking drainAt after
// the idle arm closes the race where Shutdown stamps every conn and
// this conn then extends itself past the grace window.
func (d *Daemon) armDeadline(conn net.Conn) {
	if t := d.cfg.IdleTimeout; t > 0 {
		conn.SetReadDeadline(time.Now().Add(t))
	}
	if at := d.drainAt.Load(); at != 0 {
		conn.SetReadDeadline(time.Unix(0, at))
	}
}

// journalStream emits a stream-level audit event (resync, session
// loss) when a journal is configured.
func (d *Daemon) journalStream(evType string, stream uint64, detail string) {
	if j := d.p.Journal(); j != nil {
		j.Emit(Event{T: d.p.cfg.Now(), Type: evType, Victim: -1, Source: -1, Stream: stream, Detail: detail})
	}
}

// noteReadErr classifies a stream read failure into the counters.
func (d *Daemon) noteReadErr(err error) {
	if errors.Is(err, wire.ErrBadFrame) {
		d.decodeErrs.Add(1)
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() && !d.draining.Load() {
		d.idleTimeouts.Add(1)
	}
}

// serveConn dispatches a TCP stream on its first frame: a hello starts
// a strict acked session (the exporter client); anything else is a
// legacy plain stream served leniently with resync.
func (d *Daemon) serveConn(conn net.Conn) {
	defer d.ingestersWG.Done()
	defer func() {
		conn.Close()
		d.connsMu.Lock()
		delete(d.conns, conn)
		d.connsMu.Unlock()
	}()
	if d.draining.Load() {
		// Accepted in the race with Shutdown: honor the drain deadline.
		conn.SetReadDeadline(time.Unix(0, d.drainAt.Load()))
	}
	r := wire.NewReader(conn)
	d.armDeadline(conn)
	ftype, payload, err := r.ReadFrame()
	if err != nil {
		d.noteReadErr(err)
		return
	}
	if ftype == wire.TypeHello {
		d.serveSession(conn, r, payload)
		return
	}
	if ftype == wire.TypeGossip {
		d.serveGossip(conn, r, payload)
		return
	}
	if ftype == wire.TypeHandback {
		d.serveHandback(conn, r, payload)
		return
	}
	d.servePlain(conn, r, ftype, payload)
}

// serveHandback absorbs cluster victim-state handbacks: each
// TypeHandback frame is applied through the cluster tier and answered
// with a TypeAck, repeated until the shipper hangs up. The ack is what
// lets the shipper drop its copy, so it is only written after
// HandleHandback returns. Without a cluster tier the frame is a
// protocol violation.
func (d *Daemon) serveHandback(conn net.Conn, r *wire.Reader, payload []byte) {
	if d.cluster == nil {
		d.decodeErrs.Add(1)
		return
	}
	var scratch []byte
	for {
		body, err := wire.ParseHandback(payload)
		if err != nil {
			d.decodeErrs.Add(1)
			return
		}
		ack, err := d.cluster.HandleHandback(body)
		if err != nil {
			d.decodeErrs.Add(1)
			return
		}
		if !d.writeAck(conn, &scratch, ack, 0) {
			return
		}
		d.armDeadline(conn)
		var ftype uint8
		if ftype, payload, err = r.ReadFrame(); err != nil {
			d.noteReadErr(err)
			return
		}
		if ftype != wire.TypeHandback {
			d.decodeErrs.Add(1)
			return
		}
	}
}

// serveGossip answers cluster anti-entropy rounds: one TypeGossip
// request in, one TypeGossip response out, repeated until the peer
// hangs up. Without a cluster tier the frame is a protocol violation.
func (d *Daemon) serveGossip(conn net.Conn, r *wire.Reader, payload []byte) {
	if d.cluster == nil {
		d.decodeErrs.Add(1)
		return
	}
	var scratch []byte
	for {
		body, err := wire.ParseGossip(payload)
		if err != nil {
			d.decodeErrs.Add(1)
			return
		}
		resp, err := d.cluster.HandleGossip(body)
		if err != nil {
			d.decodeErrs.Add(1)
			return
		}
		if t := d.cfg.IdleTimeout; t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		scratch = wire.AppendGossip(scratch[:0], resp)
		if _, err := conn.Write(scratch); err != nil {
			return
		}
		d.armDeadline(conn)
		var ftype uint8
		if ftype, payload, err = r.ReadFrame(); err != nil {
			d.noteReadErr(err)
			return
		}
		if ftype != wire.TypeGossip {
			d.decodeErrs.Add(1)
			return
		}
	}
}

// servePlain consumes a legacy stream with resync enabled: a framing
// error skips forward to the next magic (counted per skip in
// DecodeErrors, per byte in the skipped-bytes counter) instead of
// killing the connection. There are no acks, so leniency beats
// strictness — dropping the conn would lose everything in flight.
//
// Each frame decodes into one pooled slab submitted whole, so the
// pipeline sees the frame as a single batch.
func (d *Daemon) servePlain(conn net.Conn, r *wire.Reader, ftype uint8, payload []byte) {
	r.EnableResync()
	var lastResyncs, lastSkipped uint64
	for {
		var s *wire.Slab
		var derr error
		switch ftype {
		case wire.TypeRecords:
			s = d.p.GetSlab()
			derr = s.AppendRecordsPayload(payload)
		case wire.TypeTracedRecords:
			s = d.p.GetSlab()
			derr = s.AppendTracedPayload(payload)
		case wire.TypeSealed:
			// Sealed frames outside a session still carry records; the
			// CRC makes them safe to tally without acks.
			s = d.p.GetSlab()
			_, derr = s.AppendSealedPayload(payload)
		case wire.TypeTracedSealed:
			s = d.p.GetSlab()
			_, derr = s.AppendTracedSealedPayload(payload)
		default:
			// Hello handled by the dispatcher; stray acks are noise.
		}
		if s != nil {
			if derr != nil {
				d.decodeErrs.Add(1)
				s.Release()
			} else {
				d.submit(s)
			}
		}
		d.armDeadline(conn)
		var err error
		ftype, payload, err = r.ReadFrame()
		if rs := r.Resyncs(); rs != lastResyncs {
			d.decodeErrs.Add(rs - lastResyncs)
			lastResyncs = rs
		}
		if sk := r.SkippedBytes(); sk != lastSkipped {
			d.journalStream(EventResync,
				0, fmt.Sprintf("%s: skipped %d bytes to next magic", conn.RemoteAddr(), sk-lastSkipped))
			d.resyncSkipped.Add(sk - lastSkipped)
			d.traceResync(0)
			lastSkipped = sk
		}
		if err != nil {
			d.noteReadErr(err)
			return
		}
	}
}

// traceResync retains a synthetic stream-level trace for a resync skip,
// so the flight recorder shows framing damage alongside record traces.
func (d *Daemon) traceResync(stream uint64) {
	if fr := d.p.Recorder(); fr != nil {
		fr.CommitEvent(OutcomeResync, d.p.cfg.Now(), stream)
	}
}

// serveSession speaks the exporter session protocol: ack the hello at
// the stream's cumulative count, then for each sealed frame skip the
// already-accepted prefix, submit the rest, advance the count and ack.
// The reader stays strict — any framing damage drops the connection and
// the client resends from the last acked count, which is exactly what
// keeps accepted records counted once.
func (d *Daemon) serveSession(conn net.Conn, r *wire.Reader, helloPayload []byte) {
	streamID, base, flags, err := wire.ParseHelloFlags(helloPayload)
	if err != nil {
		d.decodeErrs.Add(1)
		return
	}
	// Echo back the extensions this server honors: the trace flag, plus
	// the forward flag when a cluster tier is running. A client whose
	// trace flag is not echoed falls back to plain sealed frames; a
	// forwarding client with an unechoed flag fails the connection
	// (forwarded records must never be silently flattened into plain
	// ingest on a non-cluster daemon — they would be re-routed and loop).
	flagMask := uint32(wire.HelloFlagTrace)
	if d.cluster != nil {
		flagMask |= wire.HelloFlagForward
	}
	ackFlags := flags & flagMask
	sess := d.session(streamID)
	var scratch []byte
	if !d.ackHello(conn, sess, base, &scratch, ackFlags) {
		return
	}
	// submitSlab dedups one sealed batch against the session count and
	// feeds the unseen suffix to the pipeline as a single slab; shared
	// by the plain, traced and forwarded sealed paths. Consumes the slab
	// reference. The session count advances by the full batch regardless
	// of what the pipeline sheds downstream — delivery is what the ack
	// attests. direct bypasses cluster routing: forwarded-in records are
	// always processed locally (the sender already resolved ownership),
	// which is what makes forwarding loop-free.
	submitSlab := func(seq uint64, s *wire.Slab, direct bool) (count, fresh uint64, ok bool) {
		sess.mu.Lock()
		if seq > sess.count {
			sess.mu.Unlock()
			s.Release()
			d.decodeErrs.Add(1)
			// Gap before the accepted count: protocol violation.
			d.journalStream(EventSessionLoss, streamID, "sequence gap")
			return 0, 0, false
		}
		n := uint64(s.Len())
		if skip := sess.count - seq; skip < n {
			s.DropFront(int(skip))
			fresh = n - skip
			d.sessionRecs.Add(fresh)
			sess.count = seq + n
			if direct {
				d.p.SubmitSlab(s)
			} else {
				d.submit(s)
			}
		} else {
			s.Release() // entire batch already accepted: pure retransmit
		}
		c := sess.count
		sess.mu.Unlock()
		return c, fresh, true
	}
	for {
		d.armDeadline(conn)
		ftype, payload, err := r.ReadFrame()
		if err != nil {
			d.noteReadErr(err)
			return
		}
		switch ftype {
		case wire.TypeSealed:
			s := d.p.GetSlab()
			seq, err := s.AppendSealedPayload(payload)
			if err != nil {
				s.Release()
				d.decodeErrs.Add(1)
				// Strict: the client resends from the acked count.
				d.journalStream(EventSessionLoss, streamID, "sealed frame rejected")
				return
			}
			c, _, ok := submitSlab(seq, s, false)
			if !ok || !d.writeAck(conn, &scratch, c, ackFlags) {
				return
			}
		case wire.TypeTracedSealed:
			s := d.p.GetSlab()
			seq, err := s.AppendTracedSealedPayload(payload)
			if err != nil {
				s.Release()
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "traced sealed frame rejected")
				return
			}
			c, _, ok := submitSlab(seq, s, false)
			if !ok || !d.writeAck(conn, &scratch, c, ackFlags) {
				return
			}
		case wire.TypeForwarded:
			if d.cluster == nil {
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "forwarded frame without cluster tier")
				return
			}
			s := d.p.GetSlab()
			origin, seq, err := s.AppendForwardedPayload(payload)
			if err != nil {
				s.Release()
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "forwarded frame rejected")
				return
			}
			c, fresh, ok := submitSlab(seq, s, true)
			if !ok {
				return
			}
			d.cluster.NoteForwardedIn(origin, int(fresh))
			if !d.writeAck(conn, &scratch, c, ackFlags) {
				return
			}
		case wire.TypeTracedForwarded:
			if d.cluster == nil {
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "forwarded frame without cluster tier")
				return
			}
			s := d.p.GetSlab()
			origin, seq, err := s.AppendTracedForwardedPayload(payload)
			if err != nil {
				s.Release()
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "traced forwarded frame rejected")
				return
			}
			c, fresh, ok := submitSlab(seq, s, true)
			if !ok {
				return
			}
			d.cluster.NoteForwardedIn(origin, int(fresh))
			if !d.writeAck(conn, &scratch, c, ackFlags) {
				return
			}
		case wire.TypeHello:
			// A re-hello on a live conn re-synchronizes the client.
			_, b, f, err := wire.ParseHelloFlags(payload)
			if err != nil {
				d.decodeErrs.Add(1)
				d.journalStream(EventSessionLoss, streamID, "re-hello rejected")
				return
			}
			ackFlags = f & flagMask
			if !d.ackHello(conn, sess, b, &scratch, ackFlags) {
				return
			}
		default:
			d.decodeErrs.Add(1)
			// Plain frames on a session conn: protocol violation.
			d.journalStream(EventSessionLoss, streamID, "non-session frame")
			return
		}
	}
}

// ackHello fast-forwards the session to the client's base (a restarted
// daemon trusts the exporter's delivered count rather than re-ingesting
// history it never saw) and acks the result.
func (d *Daemon) ackHello(conn net.Conn, sess *session, base uint64, scratch *[]byte, flags uint32) bool {
	sess.mu.Lock()
	if base > sess.count {
		sess.count = base
	}
	c := sess.count
	sess.mu.Unlock()
	return d.writeAck(conn, scratch, c, flags)
}

func (d *Daemon) writeAck(conn net.Conn, scratch *[]byte, count uint64, flags uint32) bool {
	if t := d.cfg.IdleTimeout; t > 0 {
		conn.SetWriteDeadline(time.Now().Add(t))
	}
	*scratch = wire.AppendAckFlags((*scratch)[:0], count, flags)
	_, err := conn.Write(*scratch)
	return err == nil
}

// session finds or creates the state for a stream id.
func (d *Daemon) session(id uint64) *session {
	d.sessMu.Lock()
	defer d.sessMu.Unlock()
	s := d.sessions[id]
	if s == nil {
		s = &session{}
		d.sessions[id] = s
		d.sessionCount.Add(1)
	}
	return s
}

func (d *Daemon) udpLoop() {
	defer d.ingestersWG.Done()
	buf := make([]byte, 1<<16)
	for {
		n, _, err := d.udpConn.ReadFrom(buf)
		if err != nil {
			return // closed or drain deadline
		}
		// A datagram may pack several frames back to back; consume them
		// all rather than silently discarding everything after the first.
		// Each frame becomes one slab batch.
		rest := buf[:n]
		for len(rest) > 0 {
			s := d.p.GetSlab()
			consumed, err := s.AppendDatagramFrame(rest)
			if err != nil {
				s.Release()
				// Position unknown inside the datagram: reject the rest.
				d.decodeErrs.Add(1)
				break
			}
			d.submit(s)
			rest = rest[consumed:]
		}
	}
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := d.Err(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "failed: %v\n", err)
		return
	}
	if d.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.p.WritePrometheus(w, time.Since(d.start))
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("ddpmd_decode_errors_total", "wire frames rejected or skipped at the listeners", d.decodeErrs.Load())
	counter("ddpmd_resync_skipped_bytes_total", "bytes discarded scanning for the next frame magic", d.resyncSkipped.Load())
	counter("ddpmd_conns_accepted_total", "TCP ingest connections accepted", d.connsAccepted.Load())
	counter("ddpmd_conn_idle_timeouts_total", "TCP ingest connections shed for idling", d.idleTimeouts.Load())
	counter("ddpmd_sessions_total", "distinct exporter stream ids seen", d.sessionCount.Load())
	counter("ddpmd_session_records_total", "records accepted through acked sessions (deduplicated)", d.sessionRecs.Load())
	d.connsMu.Lock()
	active := len(d.conns)
	d.connsMu.Unlock()
	fmt.Fprintf(w, "# HELP ddpmd_conns_active TCP ingest connections currently open\n"+
		"# TYPE ddpmd_conns_active gauge\nddpmd_conns_active %d\n", active)
	draining := 0
	if d.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP ddpmd_draining whether shutdown drain has begun\n"+
		"# TYPE ddpmd_draining gauge\nddpmd_draining %d\n", draining)
	if d.cluster != nil {
		d.cluster.WriteMetrics(w)
	}
}

// handleCluster reports the cluster tier's status document (ring
// version, members, forwarding/gossip counters). 404 when the daemon
// runs single-instance.
func (d *Daemon) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if d.cluster == nil {
		http.Error(w, "cluster mode off", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.cluster.StatusJSON())
}

// handleVictims reports per-victim pipeline state as JSON, sorted by
// node id: alarm latch, identified/undecodable record counts, and the
// top identified sources with tallies (?k=N, default 5, clamped to
// empty evidence for non-positive N).
func (d *Daemon) handleVictims(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k := 5
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad k %q", q), http.StatusBadRequest)
			return
		}
		k = v
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.p.VictimReports(k))
}

// blocklistEntry is the admin-plane JSON shape of one block.
type blocklistEntry struct {
	Node          int64 `json:"node"`
	UntilUnixNano int64 `json:"until_unix_nano"` // 0 = permanent
	TTLMillis     int64 `json:"ttl_ms,omitempty"`
}

// blocklistOp is the POST body: block (default) or unblock a node,
// with an optional TTL.
type blocklistOp struct {
	Node    int64 `json:"node"`
	TTLMs   int64 `json:"ttl_ms"`
	Unblock bool  `json:"unblock"`
}

func (d *Daemon) handleBlocklist(w http.ResponseWriter, r *http.Request) {
	bl := d.p.Blocklist()
	switch r.Method {
	case http.MethodGet:
		now := d.p.cfg.Now()
		bl.Expire(now)
		entries := bl.Snapshot()
		out := make([]blocklistEntry, 0, len(entries))
		for _, e := range entries {
			be := blocklistEntry{Node: int64(e.Node), UntilUnixNano: e.Until}
			if e.Until != filter.Permanent {
				be.TTLMillis = (e.Until - now) / int64(time.Millisecond)
			}
			out = append(out, be)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	case http.MethodPost:
		var op blocklistOp
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if op.Node < 0 || int(op.Node) >= d.p.cfg.Net.NumNodes() {
			http.Error(w, fmt.Sprintf("node %d outside %s", op.Node, d.p.cfg.Net.Name()), http.StatusBadRequest)
			return
		}
		n := topology.NodeID(op.Node)
		switch {
		case op.Unblock:
			bl.Unblock(n)
		case op.TTLMs > 0:
			bl.BlockUntil(n, d.p.cfg.Now()+op.TTLMs*int64(time.Millisecond))
		default:
			bl.Block(n)
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
