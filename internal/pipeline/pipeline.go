// Package pipeline is the online heart of ddpmd: a sharded streaming
// implementation of the paper's detect → identify → block loop over
// wire.Records instead of in-simulator packets. Records move in
// batches end to end: frames decode into pooled wire.Slabs, one
// counting sort partitions each slab by victim shard (grouped by
// victim within a shard), and every shard receives its sub-batch as a
// single channel element. Workers then run identification and
// detection per victim group — one identifier lock and one detector
// lock per (victim, batch) instead of per record. Each victim gets a
// DDPM identifier (single-packet source identification, the paper's
// §5), CUSUM + entropy detectors, and auto-blocking into a TTL'd
// blocklist.
//
// Backpressure is explicit and batch-granular: a full shard queue
// sheds that shard's whole sub-batch and counts every record in it,
// never blocking the ingest path — a traceback service that stalls
// its NIC under flood would be its own DoS amplifier.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/wire"
)

// Config parameterizes a Pipeline. Zero values take the defaults
// noted per field.
type Config struct {
	// Net is the fabric the marking fields were accumulated in
	// (required): identification is just S = D − V, but the decode
	// needs the topology's dimensions and wrap rule.
	Net topology.Network

	Shards   int // worker/queue pairs (default 4)
	QueueLen int // sub-batches buffered per shard (default 1024); one element is one slab view, up to wire.SlabCap records

	// Detection: per-victim CUSUM on record arrival ticks plus a
	// source-entropy detector (random spoofing inflates entropy).
	CUSUMWindow    eventq.Time // default 500 ticks
	CUSUMSlack     float64     // default 4
	CUSUMThreshold float64     // default 40
	EntropyWindow  eventq.Time // default 500 ticks; < 0 disables
	EntropyDelta   float64     // default 1.5 bits

	// Response: once a victim's detector has alarmed, sources
	// identified more than BlockThreshold times are blocked for
	// BlockTTL. Zero takes the default; a negative TTL makes
	// auto-blocks permanent (filter.Permanent), matching the filter
	// package's convention.
	BlockThreshold int64         // default 100
	BlockTTL       time.Duration // default 60s; negative = permanent

	// Sketch admission gate: before a destination earns exact per-victim
	// state (DDPM identifier + detectors), it must look hot in a
	// per-shard count-min sketch + space-saving heavy-hitter table.
	// Destinations below the threshold are tallied sketch-only (a few
	// bytes each) and counted in SketchSuppressed; crossing it
	// materializes the victimState lazily and replays the slot's
	// buffered records through the exact path, so admission loses no
	// identification evidence from the moment the destination started
	// being tracked.
	SketchAdmit        int // records to materialize a victim (default 1 = admit on first record, the legacy behavior; negative disables the gate)
	SketchWidth        int // count-min row width per shard, rounded up to pow2 (default 32768)
	SketchDepth        int // count-min rows (default 4)
	SketchHeavyHitters int // space-saving slots and victim-state cap per shard (default 512)
	SketchDecayEvery   int // halve the sketches every N gated records per shard (default 1<<20)

	// VictimTTL sweeps victims idle this long back to sketch-only
	// state: their exact state is dropped (a final VictimSnapshot goes
	// to the victim-expired hook and the journal), while blocklist
	// entries and past journal events survive. Renewed traffic
	// re-materializes through the admission gate. 0 disables sweeping.
	VictimTTL time.Duration

	// Now supplies the blocklist timebase in unix nanoseconds;
	// defaults to time.Now().UnixNano(). Tests inject a fake clock.
	Now func() int64

	// LatencySampleEvery records per-stage latencies for one in every
	// N ingest units, rounded up to a power of two (default 64; 1
	// times every unit; negative disables the histograms). A unit is
	// one submitted slab on the ingest stage and one sub-batch on the
	// shard stages — with single-record Submit that degenerates to one
	// in every N records. Sampled batches report the per-record
	// amortized stage cost, so the histograms stay comparable across
	// batch sizes. The sampled stages are ingest→enqueue,
	// decode/identify, detect and block, exposed on /metrics as
	// histogram + p50/p95/p99 series.
	LatencySampleEvery int

	// RateWindow is the span of the sliding-window ingest-rate gauge
	// (default 60s). Each /metrics scrape contributes one sample.
	RateWindow time.Duration

	// Journal, when non-nil, receives attack-audit events: alarms,
	// auto-blocks (with top-k evidence), block expiries and stream
	// incidents. The pipeline never closes it; the owner flushes it
	// with Journal.Close after Close (the daemon does this on the
	// SIGTERM drain path).
	Journal *Journal

	// JournalTopK is how many top identified sources a source-blocked
	// event carries as evidence (default 5).
	JournalTopK int

	// TraceBuffer is the flight-recorder capacity in traces (default
	// 4096; negative disables per-record tracing — SubmitTraced then
	// degrades to Submit). Records without a trace context cost one
	// branch regardless, so the recorder can stay on in production.
	TraceBuffer int

	// TraceSampleN is the tail-sampling rate for boring traces: 1 in N
	// traces that end in plain identified/undecodable are retained
	// (default 64; 1 retains all). Interesting outcomes — alarm, block,
	// blocked-source hit, drop, rejection, resync — are always retained.
	TraceSampleN int

	// TraceSlowThreshold forces retention of any trace with a single
	// span above it, whatever its outcome (default 1ms; negative
	// disables the slow gate).
	TraceSlowThreshold time.Duration
}

func (c *Config) applyDefaults() error {
	if c.Net == nil {
		return fmt.Errorf("pipeline: Config.Net is required")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.CUSUMWindow <= 0 {
		c.CUSUMWindow = 500
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = 4
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = 40
	}
	if c.EntropyWindow == 0 {
		c.EntropyWindow = 500
	}
	if c.EntropyDelta <= 0 {
		c.EntropyDelta = 1.5
	}
	if c.BlockThreshold <= 0 {
		c.BlockThreshold = 100
	}
	if c.BlockTTL == 0 {
		c.BlockTTL = time.Minute
	}
	if c.SketchAdmit == 0 {
		c.SketchAdmit = 1
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = 1 << 15
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	if c.SketchHeavyHitters <= 0 {
		c.SketchHeavyHitters = 512
	}
	if c.SketchDecayEvery <= 0 {
		c.SketchDecayEvery = 1 << 20
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	if c.LatencySampleEvery == 0 {
		c.LatencySampleEvery = 64
	}
	if c.RateWindow <= 0 {
		c.RateWindow = time.Minute
	}
	if c.JournalTopK <= 0 {
		c.JournalTopK = 5
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 4096
	}
	if c.TraceSampleN <= 0 {
		c.TraceSampleN = 64
	}
	if c.TraceSlowThreshold == 0 {
		c.TraceSlowThreshold = time.Millisecond
	}
	return nil
}

// Pipeline stages instrumented with latency histograms.
const (
	stageIngest   = iota // Submit entry → shard-queue enqueue
	stageIdentify        // victim-state lookup + MF decode/identify
	stageDetect          // CUSUM/entropy update + alarm latch
	stageBlock           // blocklist consult + auto-block insertion
	numStages
)

// StageNames are the exposition labels, in stage order.
var StageNames = [numStages]string{"ingest", "identify", "detect", "block"}

// Latency histograms live in the log2-nanosecond domain: recording
// log2(ns) into stats.AtomicHistogram's fixed-width bins yields
// exponential buckets (×√2 per bin) while reusing the existing bin and
// percentile math; the exposition exponentiates the edges back to
// seconds. The range spans 1ns..2^30ns (~1.07s).
const (
	latLo   = 0
	latHi   = 30
	latBins = 60
)

// Detection latency — exporter send stamp to the block decision —
// crosses hosts and possibly a forward hop, so its range runs wider
// than the stage histograms: 2^10ns (~1µs) to 2^40ns (~18min).
const (
	detLatLo   = 10
	detLatHi   = 40
	detLatBins = 60
)

// stageLat is one stage's telemetry: the sharded histogram plus an
// exact nanosecond sum for the Prometheus _sum series (the histogram's
// own mean would be a bin-midpoint approximation).
type stageLat struct {
	hist  *stats.AtomicHistogram
	sumNS atomic.Int64
}

func (l *stageLat) observe(hint uint64, d time.Duration) {
	l.sumNS.Add(d.Nanoseconds())
	l.hist.Observe(hint, stats.Log2NS(d.Nanoseconds()))
}

// Counters is the pipeline's atomic metric block. Every field is a
// monotone total; read them consistently with the Snapshot method
// (which adds the non-monotone gauges: queue depths, active blocks).
type Counters struct {
	Ingested       atomic.Uint64 // records offered to Submit
	Dropped        atomic.Uint64 // backpressure: shard queue full
	RejectedClosed atomic.Uint64 // Submit after Close — a lifecycle bug upstream, not load shed
	TopoMismatch   atomic.Uint64 // record's TopoID != the pipeline's
	BadVictim      atomic.Uint64 // victim outside the topology
	Processed      atomic.Uint64 // records a shard worker consumed
	Identified     atomic.Uint64 // MF decoded to an in-topology source
	Undecodable    atomic.Uint64 // MF decode rejects
	BlockedHits    atomic.Uint64 // records from an actively blocked source
	Alarms         atomic.Uint64 // victims whose detector fired (first fire each)
	Blocks         atomic.Uint64 // auto-block insertions

	SketchSuppressed  atomic.Uint64 // records tallied sketch-only, below the admission threshold
	SketchReplayed    atomic.Uint64 // buffered records replayed through the exact path on admission
	SketchDeferred    atomic.Uint64 // admissions deferred at the per-shard victim-state cap
	VictimsAdmitted   atomic.Uint64 // victim states materialized through the gate
	VictimsExpired    atomic.Uint64 // victim states swept back to sketch-only by VictimTTL
	VictimsDetached   atomic.Uint64 // victim states handed off to a new cluster owner
	SchemeUnbuildable atomic.Uint64 // records for a fabric the marking scheme cannot cover
}

// Snapshot is a plain-value copy of the counters plus derived state.
// Accepted (records that passed validation and were enqueued) is
// derived: ingested minus every rejection counter, so the hot path
// pays no extra atomic for it.
type Snapshot struct {
	Ingested, Accepted, Dropped, RejectedClosed uint64
	TopoMismatch, BadVictim                     uint64
	Processed, Identified, Undecodable          uint64
	BlockedHits, Alarms, Blocks                 uint64
	SketchSuppressed, SketchReplayed            uint64
	SketchDeferred, VictimsAdmitted             uint64
	VictimsExpired, VictimsDetached             uint64
	SketchDecays, SchemeUnbuildable             uint64
	QueueDepths                                 []int
	ActiveBlocks                                int
	VictimStates                                int
	SketchHeavySlots                            int64

	// Per-shard views of the worker counters, indexed by shard.
	ShardProcessed    []uint64
	ShardIdentified   []uint64
	ShardDropped      []uint64
	ShardGatedVictims []int64
}

// victimState is everything the pipeline keeps per victim node. It is
// created lazily on the victim's first record and lives in exactly one
// shard, so the detectors are fed single-threaded; the Synchronized/
// Sync wrappers exist for the admin plane reading alongside.
type victimState struct {
	ident   *traceback.SyncDDPMIdentifier
	cusum   detect.Detector
	entropy detect.Detector
	alarmed atomic.Bool   // latch: worker sets once, admin plane reads
	scratch packet.Packet // reused to feed packet-shaped detectors

	// lastSeen is the cfg.Now() instant of the victim's latest record
	// (or its creation), read by the TTL sweep. Atomic because the
	// admin plane reports it while the worker updates it.
	lastSeen atomic.Int64

	// Batch views of the detectors: LockInner hands the worker the
	// unsynchronized detector under a held lock, so a victim group of N
	// records costs one acquisition, not N.
	cusumL   detect.InnerLocker
	entropyL detect.InnerLocker
}

// job is the traced slow path's per-record unit: the record plus its
// trace context and the Submit-entry wall clock (unix nanos, 0 when
// neither traced nor latency-sampled). Untraced records never become
// jobs — they stay in the slab and take the grouped fast path.
type job struct {
	rec wire.Record
	tc  wire.TraceContext
	t0  int64
}

// batch is one shard-queue element: a [start, end) view into a
// partitioned slab (records contiguous and victim-grouped) plus the
// Submit-entry wall clock. The receiving worker owns one slab
// reference and releases it when done. A batch with seed set instead
// carries a cluster victim-state replica to merge (see SeedVictim);
// one with detach set asks the worker to snapshot-and-remove a victim's
// state (see DetachVictim); one with sweep set asks the worker to run a
// VictimTTL sweep over its shard (done, when non-nil, receives one ack
// per sweep — the deterministic handle SweepVictims uses); all three
// carry a nil slab.
type batch struct {
	slab       *wire.Slab
	start, end int32
	t0         int64
	seed       *VictimSnapshot
	detach     *detachReq
	sweep      bool
	done       chan<- struct{}
}

// detachReq asks a shard worker to hand a victim's exact state out of
// the pipeline: snapshot it, delete it, and pass the snapshot to fn.
type detachReq struct {
	victim topology.NodeID
	fn     func(VictimSnapshot, bool)
}

type shard struct {
	ch      chan batch
	mu      sync.Mutex // guards victims map shape (worker writes, admin reads)
	victims map[topology.NodeID]*victimState

	// srcs is the fast path's per-group identification scratch: the
	// identified source per record, or a negative sentinel.
	srcs []int32

	// Admission gate (nil when SketchAdmit < 0): destinations must look
	// hot in the count-min sketch + space-saving table before they earn
	// a victimState. Owned by the worker goroutine — no locks. gateN is
	// the windowed-decay clock (gated records since the last Halve);
	// lastSweep is the in-band TTL-sweep clock in cfg.Now() nanos.
	cm        *sketch.CountMin
	hh        *sketch.SpaceSaving[wire.Record]
	gateN     uint64
	lastSweep int64

	// Sketch occupancy, published for the admin plane: decays counts
	// windowed Halve passes, gated mirrors hh.Len() (the worker owns hh,
	// so concurrent readers get the mirror, not the structure).
	decays atomic.Uint64
	gated  atomic.Int64

	// Per-shard worker counters behind the shard="N" metric labels.
	// seen and batches are worker-local latency-sampling clocks (seen
	// ticks per record on the traced slow path, batches per sub-batch
	// on the fast path); the pend fields batch counts between flushes
	// so the hot path pays two atomic adds per flushEvery records (or
	// per queue drain) instead of per record. The atomics are what the
	// admin plane reads.
	seen           uint64
	batches        uint64
	pendProcessed  uint64
	pendIdentified uint64
	processed      atomic.Uint64
	identified     atomic.Uint64
	dropped        atomic.Uint64

	// tr is the worker-local trace under construction, reused across
	// records so the untraced hot path never zeroes a Trace (Commit
	// copies it into the ring, keeping reuse safe).
	tr Trace
}

// flushEvery bounds how stale a shard's published counters may be
// while its queue stays non-empty; an idle queue flushes immediately.
const flushEvery = 64

// flush publishes the worker-local pending counts. Called only from
// the shard's worker goroutine.
func (s *shard) flush() {
	if s.pendProcessed > 0 {
		s.processed.Add(s.pendProcessed)
		s.pendProcessed = 0
	}
	if s.pendIdentified > 0 {
		s.identified.Add(s.pendIdentified)
		s.pendIdentified = 0
	}
}

// Pipeline is the running sharded service. Build with New, feed with
// Submit (any goroutine), stop with Close (drains queues).
type Pipeline struct {
	cfg    Config
	topoID uint32
	shards []*shard
	bl     *filter.Blocklist
	pool   *wire.SlabPool

	// scheme is the DDPM marking scheme, built once at New. When the
	// fabric is unbuildable (more nodes than the 16-bit MF can cover)
	// schemeErr caches the failure so the hot path never retries
	// construction — records for such fabrics count SchemeUnbuildable.
	scheme    *marking.DDPM
	schemeErr error

	// victimExpired, when set, receives the final snapshot of every
	// victim the TTL sweep retires (called on the shard worker with no
	// pipeline locks held) — the cluster tier's expiry feed.
	victimExpired atomic.Pointer[func(VictimSnapshot)]
	sweepIval     int64         // in-band sweep cadence in cfg.Now() nanos (0 = off)
	sweepQuit     chan struct{} // stops the real-time sweep ticker

	C Counters

	lat        [numStages]stageLat
	detLat     stageLat // send-to-block detection latency (traced records only)
	sampleOn   bool
	sampleMask uint64        // pow2-1: sample when count&mask == 0
	submitSeq  atomic.Uint64 // ingest-stage sampling clock, one tick per submitted slab
	rateWin    *stats.RateWindow
	fr         *FlightRecorder // nil when tracing disabled

	mu     sync.RWMutex // serializes Submit against Close
	closed bool
	wg     sync.WaitGroup
}

// New builds and starts the pipeline's shard workers.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		topoID:  wire.TopoID(cfg.Net.Name()),
		bl:      filter.NewTTLBlocklist(),
		pool:    wire.NewSlabPool(cfg.Shards*4 + 8),
		rateWin: stats.NewRateWindow(cfg.RateWindow),
	}
	p.scheme, p.schemeErr = marking.NewDDPM(cfg.Net)
	if cfg.LatencySampleEvery > 0 {
		p.sampleOn = true
		every := uint64(1)
		for every < uint64(cfg.LatencySampleEvery) {
			every <<= 1
		}
		p.sampleMask = every - 1
		for i := range p.lat {
			p.lat[i].hist = stats.NewAtomicHistogram(latLo, latHi, latBins, cfg.Shards)
		}
	}
	if cfg.TraceBuffer > 0 {
		p.fr = NewFlightRecorder(cfg.TraceBuffer, cfg.TraceSampleN, cfg.TraceSlowThreshold)
		p.detLat.hist = stats.NewAtomicHistogram(detLatLo, detLatHi, detLatBins, cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			ch:      make(chan batch, cfg.QueueLen),
			victims: make(map[topology.NodeID]*victimState),
		}
		if cfg.SketchAdmit > 0 && p.schemeErr == nil {
			s.cm = sketch.NewCountMin(cfg.SketchWidth, cfg.SketchDepth)
			s.hh = sketch.NewSpaceSaving[wire.Record](cfg.SketchHeavyHitters, cfg.SketchAdmit)
		}
		p.shards = append(p.shards, s)
		p.wg.Add(1)
		go p.run(s, i)
	}
	if cfg.VictimTTL > 0 {
		p.sweepIval = cfg.VictimTTL.Nanoseconds()
		p.sweepQuit = make(chan struct{})
		p.wg.Add(1)
		go p.sweepLoop()
	}
	return p, nil
}

// TopoID returns the wire topology id this pipeline accepts.
func (p *Pipeline) TopoID() uint32 { return p.topoID }

// Blocklist exposes the shared TTL blocklist (concurrent-use-safe) for
// the admin plane.
func (p *Pipeline) Blocklist() *filter.Blocklist { return p.bl }

// Journal returns the configured attack-audit journal (nil when
// disabled). The pipeline emits to it but never closes it.
func (p *Pipeline) Journal() *Journal { return p.cfg.Journal }

// Recorder returns the flight recorder (nil when tracing is disabled).
func (p *Pipeline) Recorder() *FlightRecorder { return p.fr }

// GetSlab returns an empty pooled slab for decoding frames into. Hand
// it to SubmitSlab when filled — SubmitSlab consumes the caller's
// reference, so Get → fill → SubmitSlab is a complete lifecycle.
func (p *Pipeline) GetSlab() *wire.Slab { return p.pool.Get() }

// SlabsOutstanding reports pooled slabs handed out and not yet fully
// released — zero once every submitter has returned and the shard
// queues have drained (the leak check).
func (p *Pipeline) SlabsOutstanding() int64 { return p.pool.Outstanding() }

// Submit offers one record to the pipeline without blocking. It
// reports false when the record was not queued — validation failure or
// backpressure — with the reason visible in the counters.
func (p *Pipeline) Submit(rec wire.Record) bool {
	s := p.pool.Get()
	s.Append(rec)
	return p.SubmitSlab(s) == 1
}

// SubmitTraced is Submit for records carrying a wire trace context. A
// zero context (ID 0) behaves exactly like Submit; a nonzero one has
// its journey recorded into the flight recorder, including the
// rejection paths (every trace gets an ending, even "the queue was
// full").
func (p *Pipeline) SubmitTraced(tr wire.TracedRecord) bool {
	s := p.pool.Get()
	if tr.Ctx.ID != 0 {
		s.AppendTraced(tr)
	} else {
		s.Append(tr.Record) // keep the untraced single-record path on the slab fast path
	}
	return p.SubmitSlab(s) == 1
}

// SubmitSlab offers a filled slab to the pipeline without blocking and
// returns how many of its records were enqueued. The slab is
// partitioned in place by victim shard; each shard's contiguous
// sub-batch is submitted as one queue element. A full shard queue
// sheds that whole sub-batch (each record counted in Dropped and the
// shard's counter) — batch-granularity backpressure. Validation
// failures (topology mismatch, victim out of range) are counted per
// record as before.
//
// SubmitSlab consumes the caller's slab reference: after the call the
// caller must not touch the slab.
func (p *Pipeline) SubmitSlab(s *wire.Slab) (accepted int) {
	n := len(s.Recs)
	if n == 0 {
		s.Release()
		return 0
	}
	end := p.C.Ingested.Add(uint64(n))
	first := end - uint64(n)
	traced := s.Ctxs != nil && p.fr != nil
	// Sample one submit in every period: the unit is the slab, not the
	// record, so batch ingest keeps the same sampling overhead as
	// single-record Submit instead of multiplying it by the batch size.
	sampled := p.sampleOn && (p.submitSeq.Add(1)-1)&p.sampleMask == 0
	var t0 time.Time
	if sampled || traced {
		t0 = time.Now()
	}
	groups, valid := s.Partition(p.topoID, p.cfg.Net.NumNodes(), len(p.shards))
	for i := valid; i < n; i++ {
		rec := s.Recs[i]
		if rec.Topo != p.topoID {
			p.C.TopoMismatch.Add(1)
		} else {
			p.C.BadVictim.Add(1)
		}
		if traced && s.Ctxs[i].ID != 0 {
			p.traceIngestFail(true, &wire.TracedRecord{Record: rec, Ctx: s.Ctxs[i]}, t0, OutcomeRejected)
		}
	}
	p.mu.RLock()
	if p.closed {
		// Not backpressure: the caller outlived the pipeline. Count it
		// apart from Dropped so load shed stays a clean signal.
		p.mu.RUnlock()
		p.C.RejectedClosed.Add(uint64(valid))
		if traced {
			for i := 0; i < valid; i++ {
				if s.Ctxs[i].ID != 0 {
					p.traceIngestFail(true, &wire.TracedRecord{Record: s.Recs[i], Ctx: s.Ctxs[i]}, t0, OutcomeRejected)
				}
			}
		}
		s.Release()
		return 0
	}
	var t0ns int64
	if sampled || traced {
		t0ns = t0.UnixNano()
	}
	for _, g := range groups {
		sh := p.shards[g.Shard]
		s.Retain() // the worker's reference; dropped again on shed
		select {
		case sh.ch <- batch{slab: s, start: int32(g.Start), end: int32(g.End), t0: t0ns}:
			accepted += g.End - g.Start
		default:
			s.Release()
			cnt := uint64(g.End - g.Start)
			p.C.Dropped.Add(cnt) // bounded queue full: shed the sub-batch, don't stall ingest
			sh.dropped.Add(cnt)
			if traced {
				for i := g.Start; i < g.End; i++ {
					if s.Ctxs[i].ID != 0 {
						p.traceIngestFail(true, &wire.TracedRecord{Record: s.Recs[i], Ctx: s.Ctxs[i]}, t0, OutcomeDrop)
					}
				}
			}
		}
	}
	p.mu.RUnlock()
	if sampled {
		// One amortized observation per sampled batch: the whole submit
		// (partition + every enqueue) divided across its records.
		p.lat[stageIngest].observe(first, time.Since(t0)/time.Duration(n))
	}
	s.Release()
	return accepted
}

// traceIngestFail commits a trace for a record that never reached a
// shard worker: validation rejection or queue-full shed. Only the Wire
// span is known; everything downstream is SpanMissing.
func (p *Pipeline) traceIngestFail(traced bool, tr *wire.TracedRecord, t0 time.Time, out Outcome) {
	if !traced {
		return
	}
	t := Trace{
		ID: tr.Ctx.ID, Sent: tr.Ctx.Sent, Start: t0.UnixNano(),
		Victim: int64(tr.Victim), Source: -1, Shard: -1, Outcome: out,
		Wire: SpanMissing, Forward: SpanMissing, Ingest: SpanMissing,
		Identify: SpanMissing, Detect: SpanMissing, Block: SpanMissing,
	}
	if tr.Ctx.Routed > 0 {
		if tr.Ctx.Sent > 0 {
			t.Wire = tr.Ctx.Routed - tr.Ctx.Sent
		}
		t.Forward = t.Start - tr.Ctx.Routed
		t.Origin = tr.Ctx.Origin
	} else if tr.Ctx.Sent > 0 {
		t.Wire = t.Start - tr.Ctx.Sent
	}
	p.commitTrace(&t)
}

// observeDetection records one send-to-block detection latency sample.
// Unlike the stage histograms it is unsampled — blocks are rare and
// each one's latency is the paper's headline quantity.
func (p *Pipeline) observeDetection(hint uint64, ns int64) {
	if p.detLat.hist == nil || ns <= 0 {
		return
	}
	p.detLat.sumNS.Add(ns)
	p.detLat.hist.Observe(hint, stats.Log2NS(ns))
}

// DetectionLatency returns the send-to-block histogram and exact
// nanosecond sum (nil histogram when tracing is disabled).
func (p *Pipeline) DetectionLatency() (*stats.Histogram, int64) {
	if p.detLat.hist == nil {
		return nil, 0
	}
	return p.detLat.hist.Snapshot(), p.detLat.sumNS.Load()
}

// commitTrace offers a completed trace to the flight recorder and, if
// tail sampling retained it, stamps its id as the exemplar of every
// stage-histogram bin its spans fall in. Stamping only retained traces
// keeps exemplars resolvable: an id read off /metrics can always be
// looked up in /debug/traces (until the ring evicts it).
func (p *Pipeline) commitTrace(t *Trace) {
	if !p.fr.Commit(t) || !p.sampleOn {
		return
	}
	for stage, ns := range [numStages]int64{t.Ingest, t.Identify, t.Detect, t.Block} {
		if ns >= 0 {
			p.lat[stage].hist.SetExemplar(stats.Log2NS(ns), t.ID)
		}
	}
}

// Close stops accepting records, drains every shard queue and waits
// for the workers — the SIGTERM path. Safe to call more than once.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if p.sweepQuit != nil {
			close(p.sweepQuit)
		}
		for _, s := range p.shards {
			close(s.ch)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pipeline) run(s *shard, si int) {
	defer p.wg.Done()
	for b := range s.ch {
		if b.sweep {
			p.sweepShard(s)
			if b.done != nil {
				b.done <- struct{}{}
			}
			continue
		}
		if b.seed != nil {
			p.applySeed(s, b.seed)
			continue
		}
		if b.detach != nil {
			p.applyDetach(s, b.detach)
			continue
		}
		p.processBatch(s, si, b)
		b.slab.Release()
		if s.pendProcessed >= flushEvery || len(s.ch) == 0 {
			s.flush()
		}
		if p.sweepIval > 0 {
			// In-band sweep: keeps TTL expiry moving on the configured
			// timebase even when the real-time ticker and the fake clock
			// disagree (tests) or the queue is never idle.
			if now := p.cfg.Now(); now-s.lastSweep >= p.sweepIval {
				s.lastSweep = now
				p.sweepShard(s)
			}
		}
	}
	s.flush()
}

// processBatch consumes one sub-batch view. Traced slabs take the
// per-record slow path (exact span semantics per trace); untraced
// slabs — the hot path — run grouped per victim.
func (p *Pipeline) processBatch(s *shard, si int, b batch) {
	slab := b.slab
	if slab.Ctxs != nil {
		for i := b.start; i < b.end; i++ {
			p.process(s, si, job{rec: slab.Recs[i], tc: slab.Ctxs[i], t0: b.t0})
		}
		return
	}
	p.processFast(s, si, slab.Recs[b.start:b.end])
}

// srcBlocked marks a record whose identified source was already
// blocked at observation time (dropped before the detectors, like the
// in-fabric filter would).
const srcBlocked = int32(-2)

// fastCtx accumulates one batch's worth of tallies and sampled stage
// timings across its victim groups — including groups replayed through
// the admission gate — flushed to the atomic counters once per batch.
type fastCtx struct {
	sampled bool
	tMark   time.Time

	durIdent, durDetect, durBlock time.Duration

	identified, undecodable, blockedHits uint64
	alarms, blocks                       uint64
	suppressed, deferred, replayed       uint64
	admitted, unbuildable                uint64
}

// flush publishes the accumulated tallies. The worker-local pending
// counters piggyback on the shard's existing flush cadence.
func (fc *fastCtx) flush(p *Pipeline, s *shard) {
	if fc.identified > 0 {
		p.C.Identified.Add(fc.identified)
		s.pendIdentified += fc.identified
	}
	if fc.undecodable > 0 {
		p.C.Undecodable.Add(fc.undecodable)
	}
	if fc.blockedHits > 0 {
		p.C.BlockedHits.Add(fc.blockedHits)
	}
	if fc.alarms > 0 {
		p.C.Alarms.Add(fc.alarms)
	}
	if fc.blocks > 0 {
		p.C.Blocks.Add(fc.blocks)
	}
	if fc.suppressed > 0 {
		p.C.SketchSuppressed.Add(fc.suppressed)
	}
	if fc.deferred > 0 {
		p.C.SketchDeferred.Add(fc.deferred)
	}
	if fc.replayed > 0 {
		p.C.SketchReplayed.Add(fc.replayed)
	}
	if fc.admitted > 0 {
		p.C.VictimsAdmitted.Add(fc.admitted)
	}
	if fc.unbuildable > 0 {
		p.C.SchemeUnbuildable.Add(fc.unbuildable)
	}
}

// processFast is the untraced batch path: records are already grouped
// by victim, so each group runs three passes — identify under one
// identifier lock, detect under one detector lock, block under the
// identifier lock again — and counters/latency histograms are written
// once per batch instead of once per record. Groups for destinations
// without exact state first clear the sketch admission gate (see
// gateRecord); the rest of the group from the crossing record on takes
// the exact path.
//
// Batch granularity shifts two per-record behaviors by design: a block
// inserted while processing a group takes effect from the next group
// (records already identified in this group were prefiltered against
// the blocklist as of the group's start), and the block pass may block
// a source based on any record of the group once the victim's alarm
// latch is set, not only records after the alarming one. Both keep the
// end state — who is blocked, who alarmed — identical for steady
// streams; see DESIGN.md §11.
func (p *Pipeline) processFast(s *shard, si int, recs []wire.Record) {
	n := len(recs)
	p.C.Processed.Add(uint64(n))
	s.pendProcessed += uint64(n)
	fc := fastCtx{sampled: p.sampleOn && s.batches&p.sampleMask == 0}
	s.batches++
	s.seen += uint64(n)
	if fc.sampled {
		fc.tMark = time.Now()
	}
	for gi := 0; gi < n; {
		v := recs[gi].Victim
		ge := gi + 1
		for ge < n && recs[ge].Victim == v {
			ge++
		}
		group := recs[gi:ge]
		gi = ge
		st := s.victims[v]
		if st == nil {
			if p.schemeErr != nil {
				// Unbuildable scheme for this fabric, cached at New: count
				// and move on instead of retrying construction per batch.
				fc.unbuildable += uint64(len(group))
				continue
			}
			if s.cm != nil {
				// Admission gate: feed records through the sketch one at a
				// time until one materializes the victim; the crossing
				// record onward takes the exact path below.
				k := 0
				for k < len(group) {
					if st = p.gateRecord(s, v, group[k], &fc); st != nil {
						break
					}
					k++
				}
				if st == nil {
					continue // the whole group stayed sketch-only
				}
				group = group[k:]
			} else {
				st = p.materialize(s, v)
			}
		}
		p.processGroup(s, st, v, group, &fc)
	}
	fc.flush(p, s)
	if fc.sampled {
		// One amortized observation per stage per sampled batch.
		nn := time.Duration(n)
		p.lat[stageIdentify].observe(uint64(si), fc.durIdent/nn)
		p.lat[stageDetect].observe(uint64(si), fc.durDetect/nn)
		p.lat[stageBlock].observe(uint64(si), fc.durBlock/nn)
	}
}

// gateRecord runs one record of a destination without exact state
// through the admission gate. It returns nil when the record stays
// sketch-only (tallied, maybe buffered, suppressed), or the freshly
// materialized victimState when this record crossed the admission
// threshold — after replaying the slot's earlier buffered records
// through the exact path, so admission loses no identification
// evidence from the moment the destination started being tracked. The
// crossing record itself is not replayed; the caller processes it (and
// the rest of its group) normally.
func (p *Pipeline) gateRecord(s *shard, v topology.NodeID, rec wire.Record, fc *fastCtx) *victimState {
	key := uint64(v)
	est := s.cm.Add(key)
	if s.gateN++; s.gateN >= uint64(p.cfg.SketchDecayEvery) {
		// Windowed decay: halving both structures ages historical mass
		// out, so admission tracks current rates, not lifetime totals.
		s.gateN = 0
		s.cm.Halve()
		s.hh.Halve()
		s.decays.Add(1)
	}
	slot := s.hh.Touch(key, est, rec)
	s.gated.Store(int64(s.hh.Len()))
	if slot == nil || int(slot.Guaranteed()) < p.cfg.SketchAdmit {
		fc.suppressed++
		return nil
	}
	if len(s.victims) >= p.cfg.SketchHeavyHitters {
		// At the per-shard victim-state cap: keep tallying sketch-side
		// until the TTL sweep frees a slot.
		fc.deferred++
		return nil
	}
	st := p.materialize(s, v)
	fc.admitted++
	// Replay what was buffered while the victim was sketch-only. The
	// buffer's last element is this crossing record unless the buffer
	// filled during a deferral — the caller processes the crossing
	// record either way, so only replay the elements before it.
	buf := slot.Buf
	if n := len(buf); n > 0 && buf[n-1] == rec {
		buf = buf[:n-1]
	}
	if len(buf) > 0 {
		fc.replayed += uint64(len(buf))
		p.processGroup(s, st, v, buf, fc)
	}
	s.hh.Remove(key)
	s.gated.Store(int64(s.hh.Len()))
	return st
}

// materialize creates and registers a victim's exact state. The caller
// must have checked p.schemeErr.
func (p *Pipeline) materialize(s *shard, v topology.NodeID) *victimState {
	st := p.newVictimState(v)
	s.mu.Lock()
	s.victims[v] = st
	s.mu.Unlock()
	return st
}

// processGroup runs one victim group through the three exact passes —
// identify, detect, block — accumulating tallies and sampled stage
// timings into fc. Called from processFast per partitioned group and
// from gateRecord for admission replays.
func (p *Pipeline) processGroup(s *shard, st *victimState, v topology.NodeID, group []wire.Record, fc *fastCtx) {
	now := p.cfg.Now()
	st.lastSeen.Store(now)
	if need := len(group); cap(s.srcs) < need {
		if need < wire.SlabCap {
			need = wire.SlabCap
		}
		s.srcs = make([]int32, 0, need)
	}

	// Pass A: identify the whole group under one identifier lock,
	// then prefilter already-blocked sources (skipped entirely while
	// the blocklist is empty — the steady state).
	srcs := s.srcs[:len(group)]
	id := st.ident.Lock()
	for k := range group {
		if src, ok := id.ObserveMF(group[k].MF); ok {
			srcs[k] = int32(src)
			fc.identified++
		} else {
			srcs[k] = -1
			fc.undecodable++
		}
	}
	st.ident.Unlock()
	if !p.bl.Empty() {
		for k := range srcs {
			if srcs[k] >= 0 && p.bl.BlockedAt(topology.NodeID(srcs[k]), now) {
				srcs[k] = srcBlocked
				fc.blockedHits++
			}
		}
	}
	if fc.sampled {
		t := time.Now()
		fc.durIdent += t.Sub(fc.tMark)
		fc.tMark = t
	}

	// Pass B: feed both detectors under one lock each. Blocked
	// records skip the detectors (dropped upstream of the victim);
	// undecodable ones still count toward its arrival process.
	cu := st.cusumL.LockInner()
	en := st.entropyL.LockInner()
	pk := &st.scratch
	newAlarm := st.alarmed.Load()
	var cuA, enA bool
	for k := range group {
		if srcs[k] == srcBlocked {
			continue
		}
		pk.Hdr.Src = group[k].Src
		pk.Hdr.Proto = group[k].Proto
		cu.Observe(group[k].T, pk)
		en.Observe(group[k].T, pk)
		if !newAlarm && (cu.Alarmed() || en.Alarmed()) {
			newAlarm = true
			cuA, enA = cu.Alarmed(), en.Alarmed()
		}
	}
	st.entropyL.UnlockInner()
	st.cusumL.UnlockInner()
	if newAlarm && !st.alarmed.Load() {
		st.alarmed.Store(true)
		fc.alarms++
		p.journalAlarmDetail(now, v, cuA, enA)
	}
	if fc.sampled {
		t := time.Now()
		fc.durDetect += t.Sub(fc.tMark)
		fc.tMark = t
	}

	// Pass C: once the victim's alarm latch is set, block every
	// group source over threshold that isn't blocked already.
	if st.alarmed.Load() {
		id := st.ident.Lock()
		for k := range srcs {
			if srcs[k] < 0 {
				continue
			}
			src := topology.NodeID(srcs[k])
			if cnt := id.Count(src); cnt > p.cfg.BlockThreshold && !p.bl.BlockedAt(src, now) {
				until := filter.Permanent
				if p.cfg.BlockTTL > 0 {
					until = now + p.cfg.BlockTTL.Nanoseconds()
				}
				p.bl.BlockUntilFor(src, until, v)
				fc.blocks++
				p.journalBlockInner(now, v, src, cnt, until, id)
			}
		}
		st.ident.Unlock()
	}
	if fc.sampled {
		t := time.Now()
		fc.durBlock += t.Sub(fc.tMark)
		fc.tMark = t
	}
}

// process is the traced slow path: one record, full span accounting.
func (p *Pipeline) process(s *shard, si int, j job) {
	rec := j.rec
	p.C.Processed.Add(1)
	s.pendProcessed++
	sampled := p.sampleOn && s.seen&p.sampleMask == 0
	s.seen++
	traced := j.tc.ID != 0 && p.fr != nil
	timed := sampled || traced
	var t0, t1, t2 time.Time
	if timed {
		t0 = time.Now()
	}
	tr := &s.tr
	if traced {
		*tr = Trace{
			ID: j.tc.ID, Sent: j.tc.Sent, Start: j.t0,
			Victim: int64(rec.Victim), Source: -1, Shard: int32(si),
			Wire: SpanMissing, Forward: SpanMissing, Ingest: SpanMissing,
			Identify: SpanMissing, Detect: SpanMissing, Block: SpanMissing,
		}
		if j.tc.Routed > 0 {
			// The record crossed a cluster forward hop: Wire ends at the
			// origin's route decision, Forward covers route → forward
			// queue → wire → this node's Submit entry.
			if j.tc.Sent > 0 {
				tr.Wire = j.tc.Routed - j.tc.Sent
			}
			if j.t0 > 0 {
				tr.Forward = j.t0 - j.tc.Routed
			}
			tr.Origin = j.tc.Origin
		} else if j.tc.Sent > 0 && j.t0 > 0 {
			tr.Wire = j.t0 - j.tc.Sent
		}
		if j.t0 > 0 {
			// Submit entry → worker dequeue: validation plus queue wait.
			tr.Ingest = t0.UnixNano() - j.t0
		}
	}
	st := s.victims[rec.Victim]
	if st == nil {
		if p.schemeErr != nil {
			// Unbuildable scheme for this fabric, cached at New: count and
			// return rather than wedging the worker.
			p.C.SchemeUnbuildable.Add(1)
			if traced {
				tr.Outcome = OutcomeUndecodable
				p.commitTrace(tr)
			}
			return
		}
		if s.cm != nil {
			// Traced records clear the same admission gate as the fast
			// path (any replay it triggers runs grouped, untraced).
			var fc fastCtx
			st = p.gateRecord(s, rec.Victim, rec, &fc)
			fc.flush(p, s)
			if st == nil {
				if timed {
					d := time.Since(t0)
					if sampled {
						p.lat[stageIdentify].observe(uint64(si), d)
					}
					if traced {
						tr.Identify = d.Nanoseconds()
						tr.Outcome = OutcomeSuppressed
						p.commitTrace(tr)
					}
				}
				return
			}
			// This record crossed the threshold; it continues on the
			// exact path like any other.
		} else {
			st = p.materialize(s, rec.Victim)
		}
	}

	src, ok := st.ident.ObserveMF(rec.MF)
	if !ok {
		p.C.Undecodable.Add(1)
	} else {
		p.C.Identified.Add(1)
		s.pendIdentified++
		if traced {
			tr.Source = int64(src)
		}
	}
	if timed {
		t1 = time.Now()
		if sampled {
			p.lat[stageIdentify].observe(uint64(si), t1.Sub(t0))
		}
		if traced {
			tr.Identify = t1.Sub(t0).Nanoseconds()
		}
	}

	now := p.cfg.Now()
	st.lastSeen.Store(now)
	if ok && p.bl.BlockedAt(src, now) {
		// Already-blocked traffic is dropped before the victim's
		// detectors — exactly what the in-fabric filter would do.
		p.C.BlockedHits.Add(1)
		if timed {
			d := time.Since(t1)
			if sampled {
				p.lat[stageBlock].observe(uint64(si), d)
			}
			if traced {
				tr.Block = d.Nanoseconds()
				tr.Outcome = OutcomeBlockedHit
				p.commitTrace(tr)
			}
		}
		return
	}

	st.scratch.Hdr.Src = rec.Src
	st.scratch.Hdr.Proto = rec.Proto
	st.cusum.Observe(rec.T, &st.scratch)
	st.entropy.Observe(rec.T, &st.scratch)
	alarmedNow := false
	if !st.alarmed.Load() && (st.cusum.Alarmed() || st.entropy.Alarmed()) {
		st.alarmed.Store(true)
		p.C.Alarms.Add(1)
		alarmedNow = true
		p.journalAlarm(now, rec.Victim, st)
	}
	if timed {
		t2 = time.Now()
		if sampled {
			p.lat[stageDetect].observe(uint64(si), t2.Sub(t1))
		}
		if traced {
			tr.Detect = t2.Sub(t1).Nanoseconds()
		}
	}
	blockedNow := false
	if st.alarmed.Load() && ok {
		if cnt := st.ident.Count(src); cnt > p.cfg.BlockThreshold {
			until := filter.Permanent
			if p.cfg.BlockTTL > 0 {
				until = now + p.cfg.BlockTTL.Nanoseconds()
			}
			p.bl.BlockUntilFor(src, until, rec.Victim)
			p.C.Blocks.Add(1)
			blockedNow = true
			p.journalBlock(now, rec.Victim, src, cnt, until, st)
			if traced && j.tc.Sent > 0 {
				// True send-to-block latency: the exporter's original send
				// stamp survives forwarding, so this holds across owner
				// changes and cluster hops.
				p.observeDetection(uint64(si), now-j.tc.Sent)
			}
		}
	}
	if timed {
		d := time.Since(t2)
		if sampled {
			p.lat[stageBlock].observe(uint64(si), d)
		}
		if traced {
			tr.Block = d.Nanoseconds()
			switch {
			case blockedNow:
				tr.Outcome = OutcomeBlock
			case alarmedNow:
				tr.Outcome = OutcomeAlarm
			case !ok:
				tr.Outcome = OutcomeUndecodable
			default:
				tr.Outcome = OutcomeIdentified
			}
			p.commitTrace(tr)
		}
	}
}

// journalAlarm records a victim's first detector firing (traced path).
func (p *Pipeline) journalAlarm(now int64, victim topology.NodeID, st *victimState) {
	p.journalAlarmDetail(now, victim, st.cusum.Alarmed(), st.entropy.Alarmed())
}

// journalAlarmDetail is journalAlarm from captured alarm states — the
// batch path reads the detectors while it holds their locks and emits
// after release.
func (p *Pipeline) journalAlarmDetail(now int64, victim topology.NodeID, cuAlarmed, enAlarmed bool) {
	if p.cfg.Journal == nil {
		return
	}
	detail := "cusum"
	switch {
	case cuAlarmed && enAlarmed:
		detail = "cusum+entropy"
	case enAlarmed:
		detail = "entropy"
	}
	p.cfg.Journal.Emit(Event{
		T: now, Type: EventAlarm,
		Victim: int64(victim), Source: -1,
		Detail: detail,
	})
}

// journalBlock records an auto-block with the victim's top-k
// identified sources at block time as evidence (traced path — takes
// the identifier lock itself).
func (p *Pipeline) journalBlock(now int64, victim, src topology.NodeID, cnt, until int64, st *victimState) {
	if p.cfg.Journal == nil {
		return
	}
	p.journalBlockInner(now, victim, src, cnt, until, st.ident.Lock())
	st.ident.Unlock()
}

// journalBlockInner is journalBlock against an already-locked inner
// identifier — the batch path calls it from inside its block pass,
// where re-locking the sync wrapper would deadlock.
func (p *Pipeline) journalBlockInner(now int64, victim, src topology.NodeID, cnt, until int64, id *traceback.DDPMIdentifier) {
	if p.cfg.Journal == nil {
		return
	}
	top := make([]SourceCount, 0, p.cfg.JournalTopK)
	for _, n := range id.TopSources(p.cfg.JournalTopK) {
		top = append(top, SourceCount{Node: int64(n), Count: id.Count(n)})
	}
	p.cfg.Journal.Emit(Event{
		T: now, Type: EventBlock,
		Victim: int64(victim), Source: int64(src),
		Count: cnt, Until: until, Top: top,
	})
}

// expireBlocks prunes lapsed blocklist entries, journaling each as a
// block-expired event.
func (p *Pipeline) expireBlocks(now int64) {
	if p.cfg.Journal == nil {
		p.bl.Expire(now)
		return
	}
	for _, e := range p.bl.ExpireEntries(now) {
		p.cfg.Journal.Emit(Event{
			T: now, Type: EventBlockExpired,
			Victim: int64(e.Victim), Source: int64(e.Node), Until: e.Until,
		})
	}
}

// newVictimState builds a victim's exact state from the scheme cached
// at New. The caller must have checked p.schemeErr.
func (p *Pipeline) newVictimState(victim topology.NodeID) *victimState {
	st := &victimState{
		ident: traceback.NewSyncDDPMIdentifier(p.scheme, victim),
		cusum: detect.Synchronized(detect.NewCUSUM(p.cfg.CUSUMWindow, p.cfg.CUSUMSlack, p.cfg.CUSUMThreshold)),
	}
	if p.cfg.EntropyWindow > 0 {
		st.entropy = detect.Synchronized(detect.NewEntropyDetector(p.cfg.EntropyWindow, p.cfg.EntropyDelta))
	} else {
		st.entropy = nopDetector{}
	}
	st.cusumL = st.cusum.(detect.InnerLocker)
	st.entropyL = st.entropy.(detect.InnerLocker)
	st.lastSeen.Store(p.cfg.Now())
	return st
}

// sweepShard retires every victim on the shard idle past VictimTTL:
// its exact state is dropped after a final snapshot goes to the
// journal and the victim-expired hook, while blocklist entries and
// past journal events survive. Renewed traffic re-materializes the
// victim through the admission gate. Runs on the shard worker — the
// single writer of the victim map — with no pipeline locks held when
// the hook fires.
func (p *Pipeline) sweepShard(s *shard) {
	ttl := p.cfg.VictimTTL.Nanoseconds()
	if ttl <= 0 {
		return
	}
	now := p.cfg.Now()
	var snaps []VictimSnapshot
	for v, st := range s.victims {
		if now-st.lastSeen.Load() < ttl {
			continue
		}
		snap := snapshotState(v, st)
		snap.Expired = true
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return
	}
	s.mu.Lock()
	for i := range snaps {
		delete(s.victims, snaps[i].Victim)
	}
	s.mu.Unlock()
	p.C.VictimsExpired.Add(uint64(len(snaps)))
	hook := p.victimExpired.Load()
	for i := range snaps {
		snap := &snaps[i]
		if p.cfg.Journal != nil {
			p.cfg.Journal.Emit(Event{
				T: now, Type: EventVictimExpired,
				Victim: int64(snap.Victim), Source: -1,
				Count: snap.Identified(),
			})
		}
		if hook != nil {
			(*hook)(*snap)
		}
	}
}

// sweepLoop ticks TTL sweeps on real time. Enqueues are non-blocking:
// a shard whose queue is full is processing batches, and the in-band
// check in run will sweep it anyway.
func (p *Pipeline) sweepLoop() {
	defer p.wg.Done()
	iv := p.cfg.VictimTTL / 2
	if iv < time.Second {
		iv = time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-p.sweepQuit:
			return
		case <-t.C:
			p.mu.RLock()
			if !p.closed {
				for _, s := range p.shards {
					select {
					case s.ch <- batch{sweep: true}:
					default:
					}
				}
			}
			p.mu.RUnlock()
		}
	}
}

// SweepVictims synchronously runs one TTL sweep on every shard,
// returning once each worker has processed it — the deterministic
// entry point for fake-clock tests and admin tooling. No-op when
// VictimTTL is disabled or the pipeline is closed.
func (p *Pipeline) SweepVictims() {
	if p.cfg.VictimTTL <= 0 {
		return
	}
	done := make(chan struct{}, len(p.shards))
	sent := 0
	p.mu.RLock()
	if !p.closed {
		for _, s := range p.shards {
			s.ch <- batch{sweep: true, done: done}
			sent++
		}
	}
	p.mu.RUnlock()
	for i := 0; i < sent; i++ {
		<-done
	}
}

// SetVictimExpiredHook registers fn to receive the final snapshot
// (Expired set) of every victim the TTL sweep retires. It is called
// from the shard worker goroutine with no pipeline locks held; keep it
// non-blocking. Set it once before traffic; nil clears it.
func (p *Pipeline) SetVictimExpiredHook(fn func(VictimSnapshot)) {
	if fn == nil {
		p.victimExpired.Store(nil)
		return
	}
	p.victimExpired.Store(&fn)
}

// state looks a victim's state up across shards (admin plane).
func (p *Pipeline) state(victim topology.NodeID) *victimState {
	if len(p.shards) == 0 || victim < 0 {
		return nil
	}
	s := p.shards[int(victim)%len(p.shards)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.victims[victim]
}

// Alarmed reports whether the victim's detectors have fired.
func (p *Pipeline) Alarmed(victim topology.NodeID) bool {
	st := p.state(victim)
	return st != nil && (st.cusum.Alarmed() || st.entropy.Alarmed())
}

// AlarmLatched reports whether the victim's alarm latch has ever set —
// the stable "this victim came under attack" bit that journal alarm
// events and /victims report, immune to a detector de-alarming as its
// window slides on.
func (p *Pipeline) AlarmLatched(victim topology.NodeID) bool {
	st := p.state(victim)
	return st != nil && st.alarmed.Load()
}

// TopSources returns the victim's k most frequently identified
// sources (empty before the victim's first record). Non-positive k is
// an admin-plane input; it clamps to an empty result rather than
// panicking downstream.
func (p *Pipeline) TopSources(victim topology.NodeID, k int) []topology.NodeID {
	if k <= 0 {
		return nil
	}
	st := p.state(victim)
	if st == nil {
		return nil
	}
	return st.ident.TopSources(k)
}

// SourcesAbove returns the victim's sources identified more than
// threshold times. A negative threshold is an admin-plane input that
// would otherwise select every source ever seen; it clamps to empty.
func (p *Pipeline) SourcesAbove(victim topology.NodeID, threshold int64) []topology.NodeID {
	if threshold < 0 {
		return nil
	}
	st := p.state(victim)
	if st == nil {
		return nil
	}
	return st.ident.SourcesAbove(threshold)
}

// Victims lists every victim node the pipeline has state for, sorted
// by node id so admin output is deterministic.
func (p *Pipeline) Victims() []topology.NodeID {
	var out []topology.NodeID
	for _, s := range p.shards {
		s.mu.Lock()
		for v := range s.victims {
			out = append(out, v)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VictimReport is the admin-plane view of one victim's state (the
// /victims endpoint and `ddpmd status`).
type VictimReport struct {
	Node        int64         `json:"node"`
	Alarmed     bool          `json:"alarmed"` // the latch, not the live detector
	Identified  int64         `json:"identified"`
	Undecodable int64         `json:"undecodable"`
	LastSeen    int64         `json:"last_seen_unix_nano"` // cfg.Now() of the latest record
	TopSources  []SourceCount `json:"top_sources"`
}

// VictimReports builds per-victim reports with up to k top sources
// each, sorted by node id. k <= 0 yields reports with no top-source
// evidence.
func (p *Pipeline) VictimReports(k int) []VictimReport {
	victims := p.Victims()
	out := make([]VictimReport, 0, len(victims))
	for _, v := range victims {
		st := p.state(v)
		if st == nil { // raced a concurrent reset; skip
			continue
		}
		r := VictimReport{
			Node:        int64(v),
			Alarmed:     st.alarmed.Load(),
			Identified:  st.ident.Observed(),
			Undecodable: st.ident.Undecodable(),
			LastSeen:    st.lastSeen.Load(),
		}
		if k > 0 {
			r.TopSources = make([]SourceCount, 0, k)
			for _, n := range st.ident.TopSources(k) {
				r.TopSources = append(r.TopSources, SourceCount{Node: int64(n), Count: st.ident.Count(n)})
			}
		}
		out = append(out, r)
	}
	return out
}

// Snapshot copies the counters and derived gauges. It also prunes
// lapsed blocklist entries (journaling each expiry) so ActiveBlocks
// reflects live blocks only.
func (p *Pipeline) Snapshot() Snapshot {
	p.expireBlocks(p.cfg.Now())
	snap := Snapshot{
		Dropped:           p.C.Dropped.Load(),
		RejectedClosed:    p.C.RejectedClosed.Load(),
		TopoMismatch:      p.C.TopoMismatch.Load(),
		BadVictim:         p.C.BadVictim.Load(),
		Processed:         p.C.Processed.Load(),
		Identified:        p.C.Identified.Load(),
		Undecodable:       p.C.Undecodable.Load(),
		BlockedHits:       p.C.BlockedHits.Load(),
		Alarms:            p.C.Alarms.Load(),
		Blocks:            p.C.Blocks.Load(),
		SketchSuppressed:  p.C.SketchSuppressed.Load(),
		SketchReplayed:    p.C.SketchReplayed.Load(),
		SketchDeferred:    p.C.SketchDeferred.Load(),
		VictimsAdmitted:   p.C.VictimsAdmitted.Load(),
		VictimsExpired:    p.C.VictimsExpired.Load(),
		VictimsDetached:   p.C.VictimsDetached.Load(),
		SchemeUnbuildable: p.C.SchemeUnbuildable.Load(),
		ActiveBlocks:      p.bl.Len(),
	}
	// Accepted is derived rather than counted: every rejection path
	// already has a counter, so accepted = ingested − rejections.
	// Loading Ingested after the rejection counters keeps the subtrahend
	// a prefix of it under concurrent submits (no uint64 wraparound); a
	// racing scrape may transiently overcount Accepted by in-flight
	// submissions, which monotone-counter consumers tolerate.
	snap.Ingested = p.C.Ingested.Load()
	snap.Accepted = snap.Ingested - snap.TopoMismatch - snap.BadVictim - snap.RejectedClosed - snap.Dropped
	for _, s := range p.shards {
		snap.QueueDepths = append(snap.QueueDepths, len(s.ch))
		snap.ShardProcessed = append(snap.ShardProcessed, s.processed.Load())
		snap.ShardIdentified = append(snap.ShardIdentified, s.identified.Load())
		snap.ShardDropped = append(snap.ShardDropped, s.dropped.Load())
		gated := s.gated.Load()
		snap.ShardGatedVictims = append(snap.ShardGatedVictims, gated)
		snap.SketchHeavySlots += gated
		snap.SketchDecays += s.decays.Load()
		s.mu.Lock()
		snap.VictimStates += len(s.victims)
		s.mu.Unlock()
	}
	return snap
}

// StageLatency returns a merged snapshot of one stage's histogram in
// the log2-nanosecond domain plus the exact nanosecond sum, or nil
// when latency recording is disabled. Stage indexes follow StageNames.
func (p *Pipeline) StageLatency(stage int) (h *stats.Histogram, sumNS int64) {
	if !p.sampleOn || stage < 0 || stage >= numStages {
		return nil, 0
	}
	return p.lat[stage].hist.Snapshot(), p.lat[stage].sumNS.Load()
}

// StageExemplars returns the nonzero exemplar trace ids currently
// stamped on one stage's histogram bins, or nil when latency recording
// is disabled. Every id resolves in the flight recorder until the ring
// evicts its trace. Stage indexes follow StageNames.
func (p *Pipeline) StageExemplars(stage int) []uint64 {
	if !p.sampleOn || stage < 0 || stage >= numStages {
		return nil
	}
	return p.lat[stage].hist.ExemplarIDs()
}

// nopDetector disables a detector slot.
type nopDetector struct{}

func (nopDetector) Name() string                        { return "nop" }
func (nopDetector) Observe(eventq.Time, *packet.Packet) {}
func (nopDetector) Alarmed() bool                       { return false }
func (nopDetector) AlarmedAt() (t eventq.Time)          { return t }

func (n nopDetector) LockInner() detect.Detector { return n }
func (nopDetector) UnlockInner()                 {}
