// Package pipeline is the online heart of ddpmd: a sharded streaming
// implementation of the paper's detect → identify → block loop over
// wire.Records instead of in-simulator packets. Records are sharded by
// victim node across a bounded worker pool; each victim gets a DDPM
// identifier (single-packet source identification, the paper's §5),
// CUSUM + entropy detectors, and auto-blocking into a TTL'd blocklist.
//
// Backpressure is explicit: a full shard queue drops the record and
// counts it, never blocking the ingest path — a traceback service that
// stalls its NIC under flood would be its own DoS amplifier.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/wire"
)

// Config parameterizes a Pipeline. Zero values take the defaults
// noted per field.
type Config struct {
	// Net is the fabric the marking fields were accumulated in
	// (required): identification is just S = D − V, but the decode
	// needs the topology's dimensions and wrap rule.
	Net topology.Network

	Shards   int // worker/queue pairs (default 4)
	QueueLen int // records buffered per shard (default 1024)

	// Detection: per-victim CUSUM on record arrival ticks plus a
	// source-entropy detector (random spoofing inflates entropy).
	CUSUMWindow    eventq.Time // default 500 ticks
	CUSUMSlack     float64     // default 4
	CUSUMThreshold float64     // default 40
	EntropyWindow  eventq.Time // default 500 ticks; < 0 disables
	EntropyDelta   float64     // default 1.5 bits

	// Response: once a victim's detector has alarmed, sources
	// identified more than BlockThreshold times are blocked for
	// BlockTTL (0 = permanent).
	BlockThreshold int64         // default 100
	BlockTTL       time.Duration // default 60s

	// Now supplies the blocklist timebase in unix nanoseconds;
	// defaults to time.Now().UnixNano(). Tests inject a fake clock.
	Now func() int64
}

func (c *Config) applyDefaults() error {
	if c.Net == nil {
		return fmt.Errorf("pipeline: Config.Net is required")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.CUSUMWindow <= 0 {
		c.CUSUMWindow = 500
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = 4
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = 40
	}
	if c.EntropyWindow == 0 {
		c.EntropyWindow = 500
	}
	if c.EntropyDelta <= 0 {
		c.EntropyDelta = 1.5
	}
	if c.BlockThreshold <= 0 {
		c.BlockThreshold = 100
	}
	if c.BlockTTL == 0 {
		c.BlockTTL = time.Minute
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return nil
}

// Counters is the pipeline's atomic metric block. Every field is a
// monotone total; read them consistently with the Snapshot method
// (which adds the non-monotone gauges: queue depths, active blocks).
type Counters struct {
	Ingested       atomic.Uint64 // records offered to Submit
	Dropped        atomic.Uint64 // backpressure: shard queue full
	RejectedClosed atomic.Uint64 // Submit after Close — a lifecycle bug upstream, not load shed
	TopoMismatch   atomic.Uint64 // record's TopoID != the pipeline's
	BadVictim      atomic.Uint64 // victim outside the topology
	Processed      atomic.Uint64 // records a shard worker consumed
	Identified     atomic.Uint64 // MF decoded to an in-topology source
	Undecodable    atomic.Uint64 // MF decode rejects
	BlockedHits    atomic.Uint64 // records from an actively blocked source
	Alarms         atomic.Uint64 // victims whose detector fired (first fire each)
	Blocks         atomic.Uint64 // auto-block insertions
}

// Snapshot is a plain-value copy of the counters plus derived state.
type Snapshot struct {
	Ingested, Dropped, RejectedClosed, TopoMismatch, BadVictim uint64
	Processed, Identified, Undecodable                         uint64
	BlockedHits, Alarms, Blocks                                uint64
	QueueDepths                                                []int
	ActiveBlocks                                               int
}

// victimState is everything the pipeline keeps per victim node. It is
// created lazily on the victim's first record and lives in exactly one
// shard, so the detectors are fed single-threaded; the Synchronized/
// Sync wrappers exist for the admin plane reading alongside.
type victimState struct {
	ident   *traceback.SyncDDPMIdentifier
	cusum   detect.Detector
	entropy detect.Detector
	alarmed bool          // worker-local latch: count each victim's alarm once
	scratch packet.Packet // reused to feed packet-shaped detectors
}

type shard struct {
	ch      chan wire.Record
	mu      sync.Mutex // guards victims map shape (worker writes, admin reads)
	victims map[topology.NodeID]*victimState
}

// Pipeline is the running sharded service. Build with New, feed with
// Submit (any goroutine), stop with Close (drains queues).
type Pipeline struct {
	cfg    Config
	topoID uint32
	shards []*shard
	bl     *filter.Blocklist

	C Counters

	mu     sync.RWMutex // serializes Submit against Close
	closed bool
	wg     sync.WaitGroup
}

// New builds and starts the pipeline's shard workers.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:    cfg,
		topoID: wire.TopoID(cfg.Net.Name()),
		bl:     filter.NewTTLBlocklist(),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			ch:      make(chan wire.Record, cfg.QueueLen),
			victims: make(map[topology.NodeID]*victimState),
		}
		p.shards = append(p.shards, s)
		p.wg.Add(1)
		go p.run(s)
	}
	return p, nil
}

// TopoID returns the wire topology id this pipeline accepts.
func (p *Pipeline) TopoID() uint32 { return p.topoID }

// Blocklist exposes the shared TTL blocklist (concurrent-use-safe) for
// the admin plane.
func (p *Pipeline) Blocklist() *filter.Blocklist { return p.bl }

// Submit offers one record to the pipeline without blocking. It
// reports false when the record was not queued — validation failure or
// backpressure — with the reason visible in the counters.
func (p *Pipeline) Submit(rec wire.Record) bool {
	p.C.Ingested.Add(1)
	if rec.Topo != p.topoID {
		p.C.TopoMismatch.Add(1)
		return false
	}
	if rec.Victim < 0 || int(rec.Victim) >= p.cfg.Net.NumNodes() {
		p.C.BadVictim.Add(1)
		return false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		// Not backpressure: the caller outlived the pipeline. Count it
		// apart from Dropped so load shed stays a clean signal.
		p.C.RejectedClosed.Add(1)
		return false
	}
	s := p.shards[int(rec.Victim)%len(p.shards)]
	select {
	case s.ch <- rec:
		return true
	default:
		p.C.Dropped.Add(1) // bounded queue full: shed, don't stall ingest
		return false
	}
}

// Close stops accepting records, drains every shard queue and waits
// for the workers — the SIGTERM path. Safe to call more than once.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, s := range p.shards {
			close(s.ch)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pipeline) run(s *shard) {
	defer p.wg.Done()
	for rec := range s.ch {
		p.process(s, rec)
	}
}

func (p *Pipeline) process(s *shard, rec wire.Record) {
	p.C.Processed.Add(1)
	st := s.victims[rec.Victim]
	if st == nil {
		var err error
		if st, err = p.newVictimState(rec.Victim); err != nil {
			// Unbuildable scheme for this fabric: count as undecodable
			// rather than wedging the worker.
			p.C.Undecodable.Add(1)
			return
		}
		s.mu.Lock()
		s.victims[rec.Victim] = st
		s.mu.Unlock()
	}

	src, ok := st.ident.ObserveMF(rec.MF)
	if !ok {
		p.C.Undecodable.Add(1)
	} else {
		p.C.Identified.Add(1)
	}

	now := p.cfg.Now()
	if ok && p.bl.BlockedAt(src, now) {
		// Already-blocked traffic is dropped before the victim's
		// detectors — exactly what the in-fabric filter would do.
		p.C.BlockedHits.Add(1)
		return
	}

	st.scratch.Hdr.Src = rec.Src
	st.scratch.Hdr.Proto = rec.Proto
	st.cusum.Observe(rec.T, &st.scratch)
	st.entropy.Observe(rec.T, &st.scratch)
	if !st.alarmed && (st.cusum.Alarmed() || st.entropy.Alarmed()) {
		st.alarmed = true
		p.C.Alarms.Add(1)
	}
	if st.alarmed && ok && st.ident.Count(src) > p.cfg.BlockThreshold {
		until := filter.Permanent
		if p.cfg.BlockTTL > 0 {
			until = now + p.cfg.BlockTTL.Nanoseconds()
		}
		p.bl.BlockUntil(src, until)
		p.C.Blocks.Add(1)
	}
}

func (p *Pipeline) newVictimState(victim topology.NodeID) (*victimState, error) {
	scheme, err := marking.NewDDPM(p.cfg.Net)
	if err != nil {
		return nil, err
	}
	st := &victimState{
		ident: traceback.NewSyncDDPMIdentifier(scheme, victim),
		cusum: detect.Synchronized(detect.NewCUSUM(p.cfg.CUSUMWindow, p.cfg.CUSUMSlack, p.cfg.CUSUMThreshold)),
	}
	if p.cfg.EntropyWindow > 0 {
		st.entropy = detect.Synchronized(detect.NewEntropyDetector(p.cfg.EntropyWindow, p.cfg.EntropyDelta))
	} else {
		st.entropy = nopDetector{}
	}
	return st, nil
}

// state looks a victim's state up across shards (admin plane).
func (p *Pipeline) state(victim topology.NodeID) *victimState {
	if len(p.shards) == 0 || victim < 0 {
		return nil
	}
	s := p.shards[int(victim)%len(p.shards)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.victims[victim]
}

// Alarmed reports whether the victim's detectors have fired.
func (p *Pipeline) Alarmed(victim topology.NodeID) bool {
	st := p.state(victim)
	return st != nil && (st.cusum.Alarmed() || st.entropy.Alarmed())
}

// TopSources returns the victim's k most frequently identified
// sources (empty before the victim's first record).
func (p *Pipeline) TopSources(victim topology.NodeID, k int) []topology.NodeID {
	st := p.state(victim)
	if st == nil {
		return nil
	}
	return st.ident.TopSources(k)
}

// SourcesAbove returns the victim's sources identified more than
// threshold times.
func (p *Pipeline) SourcesAbove(victim topology.NodeID, threshold int64) []topology.NodeID {
	st := p.state(victim)
	if st == nil {
		return nil
	}
	return st.ident.SourcesAbove(threshold)
}

// Victims lists every victim node the pipeline has state for.
func (p *Pipeline) Victims() []topology.NodeID {
	var out []topology.NodeID
	for _, s := range p.shards {
		s.mu.Lock()
		for v := range s.victims {
			out = append(out, v)
		}
		s.mu.Unlock()
	}
	return out
}

// Snapshot copies the counters and derived gauges. It also prunes
// lapsed blocklist entries so ActiveBlocks reflects live blocks only.
func (p *Pipeline) Snapshot() Snapshot {
	p.bl.Expire(p.cfg.Now())
	snap := Snapshot{
		Ingested:       p.C.Ingested.Load(),
		Dropped:        p.C.Dropped.Load(),
		RejectedClosed: p.C.RejectedClosed.Load(),
		TopoMismatch:   p.C.TopoMismatch.Load(),
		BadVictim:      p.C.BadVictim.Load(),
		Processed:      p.C.Processed.Load(),
		Identified:     p.C.Identified.Load(),
		Undecodable:    p.C.Undecodable.Load(),
		BlockedHits:    p.C.BlockedHits.Load(),
		Alarms:         p.C.Alarms.Load(),
		Blocks:         p.C.Blocks.Load(),
		ActiveBlocks:   p.bl.Len(),
	}
	for _, s := range p.shards {
		snap.QueueDepths = append(snap.QueueDepths, len(s.ch))
	}
	return snap
}

// nopDetector disables a detector slot.
type nopDetector struct{}

func (nopDetector) Name() string                        { return "nop" }
func (nopDetector) Observe(eventq.Time, *packet.Packet) {}
func (nopDetector) Alarmed() bool                       { return false }
func (nopDetector) AlarmedAt() (t eventq.Time)          { return t }
