package pipeline_test

// The chaos acceptance test for fault-tolerant ingest: a seeded flood
// is streamed into a live daemon through a network that flips bits,
// splits writes, stalls, refuses dials and cuts connections mid-frame —
// and the daemon must still end up with exactly the records the
// exporter client reports as delivered: no silent loss, no double
// counting. Identification over what arrived must match the offline
// identifier over the same (ground truth minus acknowledged-lost)
// record multiset.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/loadgen"
	"repro/internal/marking"
	"repro/internal/pipeline"
	"repro/internal/topology"
	"repro/internal/traceback"
	"repro/internal/wire"
)

func TestChaosIngestLosesNothingSilently(t *testing.T) {
	const blockThreshold = 100

	// 1. Seeded ground truth: the same flood scenario the clean e2e
	// test uses.
	res, err := loadgen.Generate(loadgen.Scenario{
		Topo: core.Torus2D(8), Zombies: 3, Seed: 42,
		AttackGap: 2, Background: 0.002, Warmup: 3000, Attack: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackRecords < 1000 {
		t.Fatalf("weak scenario: %d attack records", res.AttackRecords)
	}

	// 2. A live daemon with queues big enough that backpressure cannot
	// shed — any discrepancy is then the ingest path's fault alone. The
	// attack audit journal rides along: at the end it must tell exactly
	// the same story as the pipeline's own state.
	journalPath := filepath.Join(t.TempDir(), "audit.jsonl")
	t.Logf("attack audit journal: %s", journalPath)
	j, err := pipeline.OpenJournal(journalPath, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pipeline.Start(pipeline.ServerConfig{
		Pipeline: pipeline.Config{
			Net: topology.NewTorus2D(8), Shards: 4, QueueLen: 1 << 15,
			BlockThreshold: blockThreshold, BlockTTL: time.Hour,
			Journal: j,
			// Tracing tuned so tail sampling is the only retention path:
			// boring traces effectively never sampled, nothing "slow", a
			// ring too big to evict. Whatever the recorder holds at the
			// end got there because its outcome was interesting.
			LatencySampleEvery: 4,
			TraceBuffer:        1 << 15,
			TraceSampleN:       1 << 30,
			TraceSlowThreshold: time.Hour,
		},
		TCPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	// 3. Every fault at once, deterministically scheduled: bit flips
	// (caught by the sealed CRC), writes shredded into tiny chunks,
	// stalls, dial refusals, and a mid-stream cut roughly every 16 KiB.
	faults := faultnet.Config{
		Seed:          7,
		FlipPerByte:   0.0005,
		CutAfter:      16 << 10,
		Truncate:      true,
		MaxWriteChunk: 500,
		StallEvery:    8 << 10,
		Stall:         time.Millisecond,
		FailDial:      0.2,
		ReadFaults:    true, // acks get corrupted too
	}
	addr := d.TCPAddr().String()
	var lost []wire.Record
	c, err := wire.NewClient(wire.ClientConfig{
		Dial: faults.WrapDial(func() (net.Conn, error) { return net.Dial("tcp", addr) }),
		Seed: 13,
		// 150 traced records (40 B each) is the same wire footprint as
		// the pre-trace 256-record frames (24 B each), so per-frame
		// corruption odds — exponential in frame bytes under FlipPerByte
		// — stay at the level this fault schedule was tuned for.
		MaxBatch:    150,
		MaxAttempts: 8,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		AckTimeout:  5 * time.Second,
		OnLost:      func(r wire.Record) { lost = append(lost, r) },
		Trace:       true, // stamp every record with a trace context
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// 4. Stream the whole scenario. Send errors are advisory (counted
	// shed), never fatal.
	res.Stream(c.Send, 200)
	c.Close()
	t.Logf("sent %d delivered %d lost %d reconnects %d resent %d",
		c.Sent(), c.Delivered(), c.Lost(), c.Reconnects(), c.Resent())

	// 5. The exactly-once invariant. After Close the client's buffer is
	// empty, so sent = delivered + lost with every loss announced via
	// OnLost; the daemon must process precisely the delivered records.
	if c.Sent() != uint64(len(res.Records)) {
		t.Fatalf("client sent %d of %d records", c.Sent(), len(res.Records))
	}
	if c.Delivered()+c.Lost() != c.Sent() {
		t.Fatalf("counters leak: delivered %d + lost %d != sent %d", c.Delivered(), c.Lost(), c.Sent())
	}
	if uint64(len(lost)) != c.Lost() {
		t.Fatalf("OnLost saw %d records, counter says %d", len(lost), c.Lost())
	}
	p := d.Pipeline()
	deadline := time.Now().Add(30 * time.Second)
	for p.C.Processed.Load() < c.Delivered() {
		if time.Now().After(deadline) {
			t.Fatalf("daemon processed %d, client delivered %d", p.C.Processed.Load(), c.Delivered())
		}
		time.Sleep(time.Millisecond)
	}
	// Give any stray duplicate a moment to land, then require equality.
	time.Sleep(50 * time.Millisecond)
	if got := p.C.Processed.Load(); got != c.Delivered() {
		t.Fatalf("daemon processed %d records, client delivered %d — double counting", got, c.Delivered())
	}
	if p.C.Dropped.Load() != 0 || p.C.RejectedClosed.Load() != 0 {
		t.Fatalf("pipeline shed records (dropped=%d rejectedClosed=%d); invariant void",
			p.C.Dropped.Load(), p.C.RejectedClosed.Load())
	}

	// 6. The chaos actually engaged: connections were cut and re-dialed,
	// frames were resent.
	if c.Reconnects() == 0 {
		t.Error("no reconnects — the fault schedule never cut a connection")
	}
	if c.Resent() == 0 {
		t.Error("no resent records — cuts never landed mid-stream")
	}

	// 7. Identification over what arrived equals the offline answer over
	// ground truth minus exactly the acknowledged-lost multiset.
	remaining := make(map[wire.Record]int, len(lost))
	for _, r := range lost {
		remaining[r]++
	}
	scheme, err := marking.NewDDPM(topology.NewTorus2D(8))
	if err != nil {
		t.Fatal(err)
	}
	offline := traceback.NewDDPMIdentifier(scheme, res.Victim)
	delivered := 0
	for _, rec := range res.Records {
		if remaining[rec] > 0 {
			remaining[rec]--
			continue
		}
		offline.ObserveMF(rec.MF)
		delivered++
	}
	if uint64(delivered) != c.Delivered() {
		t.Fatalf("lost-record bookkeeping broken: %d delivered by subtraction, client says %d",
			delivered, c.Delivered())
	}
	want := offline.SourcesAbove(blockThreshold)
	got := p.SourcesAbove(res.Victim, blockThreshold)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("online identification %v != offline-over-delivered %v", got, want)
	}
	if !reflect.DeepEqual(want, res.Zombies) {
		t.Logf("note: loss changed the identified set vs ground truth %v -> %v", res.Zombies, want)
	}

	// 8. Per-record tracing: the blocked attack must be explicable after
	// the fact. Block-outcome traces are retrievable over the admin
	// plane with the full exporter-send → ingest → identify → detect →
	// block timeline, and the stage-latency histogram exemplars resolve
	// back to retained traces — /metrics is a working index into
	// /debug/traces.
	fr := p.Recorder()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/traces?outcome=block", d.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	var blockJSON []pipeline.TraceJSON
	err = json.NewDecoder(resp.Body).Decode(&blockJSON)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	if len(blockJSON) == 0 {
		t.Fatal("no block-outcome traces on /debug/traces after a blocking chaos run")
	}
	blocked := map[int64]bool{}
	for _, e := range p.Blocklist().Snapshot() {
		blocked[int64(e.Node)] = true
	}
	for _, bt := range blockJSON {
		id, err := strconv.ParseUint(bt.ID, 16, 64)
		if err != nil || id == 0 {
			t.Fatalf("trace id %q is not hex", bt.ID)
		}
		if bt.SentNS <= 0 {
			t.Fatalf("block trace lost its exporter send stamp: %+v", bt)
		}
		if bt.WireNS < 0 || bt.IngestNS < 0 || bt.IdentifyNS < 0 || bt.DetectNS < 0 || bt.BlockNS < 0 {
			t.Fatalf("block trace has unreached spans: %+v", bt)
		}
		if bt.Victim != int64(res.Victim) {
			t.Errorf("block trace victim %d, want %d", bt.Victim, res.Victim)
		}
		if !blocked[bt.Source] {
			t.Errorf("block trace source %d is not in the blocklist", bt.Source)
		}
		if _, ok := fr.Find(id); !ok {
			t.Errorf("trace %s served over HTTP but not findable in the recorder", bt.ID)
		}
	}
	// Detect-stage bins can only be stamped by full-journey traces, and
	// with boring sampling off those are exactly the alarm/block traces.
	// Every exemplar on /metrics must still resolve, and at least one
	// must lead to a block trace: the debugging loop the feature exists
	// for — histogram bin → trace id → timeline of the record that
	// triggered the block.
	exemplarOutcomes := map[pipeline.Outcome]int{}
	for stage, name := range pipeline.StageNames {
		for _, id := range p.StageExemplars(stage) {
			et, ok := fr.Find(id)
			if !ok {
				t.Errorf("stage %s exemplar %016x does not resolve to a retained trace", name, id)
				continue
			}
			exemplarOutcomes[et.Outcome]++
			if name == "detect" && et.Outcome != pipeline.OutcomeAlarm && et.Outcome != pipeline.OutcomeBlock {
				t.Errorf("detect exemplar %016x has outcome %v; only alarm/block traces reach detect with retention on", id, et.Outcome)
			}
		}
	}
	if exemplarOutcomes[pipeline.OutcomeBlock] == 0 {
		t.Errorf("no histogram exemplar resolves to a block trace (exemplar outcomes: %v)", exemplarOutcomes)
	}

	// 9. The audit journal agrees with the pipeline's final state.
	// Capture that state, then shut the daemon down — Shutdown drains
	// and flushes the journal to disk.
	blockedNodes := map[int64]bool{}
	for _, e := range p.Blocklist().Snapshot() {
		blockedNodes[int64(e.Node)] = true
	}
	alarmedVictims := map[int64]bool{}
	for _, v := range p.Victims() {
		if p.AlarmLatched(v) {
			alarmedVictims[int64(v)] = true
		}
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if dropped := j.Dropped(); dropped != 0 {
		t.Fatalf("journal shed %d events; the audit trail is incomplete", dropped)
	}
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	journalBlocks := map[int64]bool{}
	journalAlarms := map[int64]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var ev pipeline.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case pipeline.EventBlock:
			if journalBlocks[ev.Source] {
				t.Errorf("source %d block-journaled twice", ev.Source)
			}
			journalBlocks[ev.Source] = true
			if len(ev.Top) == 0 || ev.Count <= blockThreshold {
				t.Errorf("block event missing evidence: %+v", ev)
			}
		case pipeline.EventAlarm:
			if journalAlarms[ev.Victim] {
				t.Errorf("victim %d alarm-journaled twice", ev.Victim)
			}
			journalAlarms[ev.Victim] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(journalBlocks, blockedNodes) {
		t.Errorf("journal block events %v != blocklist %v", keysOf(journalBlocks), keysOf(blockedNodes))
	}
	if !reflect.DeepEqual(journalAlarms, alarmedVictims) {
		t.Errorf("journal alarm events %v != latched victims %v", keysOf(journalAlarms), keysOf(alarmedVictims))
	}
	if len(journalBlocks) == 0 || len(journalAlarms) == 0 {
		t.Error("chaos run raised no audited alarms/blocks — scenario too weak to exercise the journal")
	}
}

func keysOf(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
