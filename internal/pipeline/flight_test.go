package pipeline

import (
	"testing"
	"time"
)

// mkBoring builds a fast identified trace — the kind tail sampling is
// allowed to throw away.
func mkBoring(id uint64) Trace {
	return Trace{
		ID: id, Start: 1000, Victim: 5, Source: 7, Shard: 0,
		Outcome: OutcomeIdentified,
		Wire:    100, Ingest: 200, Identify: 300, Detect: 400, Block: 500,
	}
}

func TestFlightRecorderDisabledIsNil(t *testing.T) {
	if r := NewFlightRecorder(0, 64, 0); r != nil {
		t.Fatalf("size 0 should disable the recorder, got %+v", r)
	}
	if r := NewFlightRecorder(-1, 64, 0); r != nil {
		t.Fatal("negative size should disable the recorder")
	}
}

func TestTailSamplingAlwaysRetainsInterestingOutcomes(t *testing.T) {
	// sampleN enormous: retention below can only come from the
	// outcome-based "interesting" rule.
	r := NewFlightRecorder(64, 1<<30, time.Hour)
	interesting := []Outcome{
		OutcomeBlockedHit, OutcomeAlarm, OutcomeBlock,
		OutcomeDrop, OutcomeRejected, OutcomeResync,
	}
	for _, out := range interesting {
		tr := mkBoring(uint64(out) + 1)
		tr.Outcome = out
		if !r.Commit(&tr) {
			t.Errorf("outcome %v not retained", out)
		}
	}
	if got := r.Retained(); got != uint64(len(interesting)) {
		t.Fatalf("retained %d, want %d", got, len(interesting))
	}
	if got := r.Sampled(); got != 0 {
		t.Fatalf("sampler retained %d traces; outcome rule should have caught them all", got)
	}
	// Every one is still in the (large enough) ring.
	for _, out := range interesting {
		if _, ok := r.Find(uint64(out) + 1); !ok {
			t.Errorf("retained trace for outcome %v not findable", out)
		}
	}
}

func TestTailSamplingKeepsOneInNBoring(t *testing.T) {
	const n = 8
	r := NewFlightRecorder(64, n, time.Hour)
	kept := 0
	for i := 1; i <= 3*n; i++ {
		tr := mkBoring(uint64(i))
		if r.Commit(&tr) {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of %d boring traces, want exactly 1 in %d", kept, 3*n, n)
	}
	if got := r.Sampled(); got != 3 {
		t.Fatalf("Sampled() = %d, want 3", got)
	}
	if got := r.Observed(); got != 3*n {
		t.Fatalf("Observed() = %d, want %d", got, 3*n)
	}
}

func TestTailSamplingRetainsSlowSpans(t *testing.T) {
	slow := 10 * time.Millisecond
	r := NewFlightRecorder(64, 1<<30, slow)

	at := mkBoring(1) // all spans well under the threshold
	if r.Commit(&at) {
		t.Fatal("fast boring trace retained despite 1-in-2^30 sampling")
	}
	over := mkBoring(2)
	over.Detect = slow.Nanoseconds() + 1
	if !r.Commit(&over) {
		t.Fatal("trace with a span over the threshold not retained")
	}
	exact := mkBoring(3)
	exact.Detect = slow.Nanoseconds() // boundary: not strictly over
	if r.Commit(&exact) {
		t.Fatal("span exactly at the threshold should not count as slow")
	}

	// Threshold <= 0 disables the slow rule entirely.
	r2 := NewFlightRecorder(64, 1<<30, 0)
	huge := mkBoring(4)
	huge.Identify = int64(time.Hour)
	if r2.Commit(&huge) {
		t.Fatal("slow rule fired with a zero threshold")
	}
}

func TestRingEvictionAndSnapshotOrder(t *testing.T) {
	r := NewFlightRecorder(4, 1, time.Hour) // sampleN 1: keep everything
	for i := 1; i <= 6; i++ {
		tr := mkBoring(uint64(i))
		if !r.Commit(&tr) {
			t.Fatalf("sampleN 1 must retain every trace (i=%d)", i)
		}
	}
	if got := r.Evicted(); got != 2 {
		t.Fatalf("Evicted() = %d, want 2", got)
	}
	got := r.Snapshot(AllTraces())
	want := []uint64{6, 5, 4, 3} // newest first, oldest two evicted
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d traces, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, got[i].ID, id)
		}
	}
	if _, ok := r.Find(1); ok {
		t.Error("evicted trace still findable")
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := NewFlightRecorder(16, 1, time.Hour)
	commit := func(id uint64, victim, source int64, out Outcome) {
		tr := mkBoring(id)
		tr.Victim, tr.Source, tr.Outcome = victim, source, out
		r.Commit(&tr)
	}
	commit(1, 5, 7, OutcomeIdentified)
	commit(2, 5, 7, OutcomeBlock)
	commit(3, 9, -1, OutcomeUndecodable)
	commit(4, -1, -1, OutcomeResync) // stream-level event

	ids := func(f TraceFilter) []uint64 {
		var out []uint64
		for _, tr := range r.Snapshot(f) {
			out = append(out, tr.ID)
		}
		return out
	}
	eq := func(got, want []uint64) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := ids(AllTraces()); !eq(got, []uint64{4, 3, 2, 1}) {
		t.Errorf("AllTraces = %v", got)
	}
	f := AllTraces()
	f.Victim = 5
	if got := ids(f); !eq(got, []uint64{2, 1}) {
		t.Errorf("victim=5: %v", got)
	}
	// -1 is a real victim value (stream-level events), not a wildcard.
	f = AllTraces()
	f.Victim = -1
	if got := ids(f); !eq(got, []uint64{4}) {
		t.Errorf("victim=-1: %v", got)
	}
	f = AllTraces()
	f.Source = 7
	if got := ids(f); !eq(got, []uint64{2, 1}) {
		t.Errorf("source=7: %v", got)
	}
	f = AllTraces()
	f.Outcome, f.HasOut = OutcomeBlock, true
	if got := ids(f); !eq(got, []uint64{2}) {
		t.Errorf("outcome=block: %v", got)
	}
	f = AllTraces()
	f.ID = 3
	if got := ids(f); !eq(got, []uint64{3}) {
		t.Errorf("id=3: %v", got)
	}
	f = AllTraces()
	f.Limit = 2
	if got := ids(f); !eq(got, []uint64{4, 3}) {
		t.Errorf("limit=2: %v", got)
	}
	if tr, ok := r.Find(2); !ok || tr.Outcome != OutcomeBlock {
		t.Errorf("Find(2) = %+v, %v", tr, ok)
	}
	if _, ok := r.Find(99); ok {
		t.Error("Find(99) matched nothing committed")
	}
}

func TestCommitEventSyntheticIDs(t *testing.T) {
	r := NewFlightRecorder(16, 1<<30, time.Hour)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		id := r.CommitEvent(OutcomeResync, 12345, 42)
		if id&(1<<63) == 0 {
			t.Fatalf("synthetic id %016x missing the top bit", id)
		}
		if seen[id] {
			t.Fatalf("synthetic id %016x repeated", id)
		}
		seen[id] = true
		tr, ok := r.Find(id)
		if !ok {
			t.Fatalf("stream event %016x not retained", id)
		}
		if tr.Outcome != OutcomeResync || tr.Victim != -1 || tr.Shard != -1 {
			t.Fatalf("stream event trace malformed: %+v", tr)
		}
		if tr.Wire != SpanMissing || tr.Block != SpanMissing {
			t.Fatalf("stream event should have no spans: %+v", tr)
		}
	}
}

func TestOutcomeStringRoundTrip(t *testing.T) {
	for o := Outcome(0); o < numOutcomes; o++ {
		got, ok := OutcomeFromString(o.String())
		if !ok || got != o {
			t.Errorf("outcome %d -> %q -> %v, %v", o, o.String(), got, ok)
		}
	}
	if _, ok := OutcomeFromString("nope"); ok {
		t.Error("unknown outcome name resolved")
	}
	if s := Outcome(200).String(); s != "outcome(200)" {
		t.Errorf("out-of-range outcome renders %q", s)
	}
}
