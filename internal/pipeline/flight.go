package pipeline

// The flight recorder: per-record span timelines for wire records that
// carried a trace context, kept in a fixed-size in-memory ring with
// tail-based sampling. Aggregate histograms (PR 4) say how long stages
// take; the recorder says what happened to one specific record between
// exporter send and block decision. Retention is decided at the *end*
// of a record's journey (tail sampling): traces that end in an alarm,
// a block, a blocked-source hit, a drop, a rejection or a stream
// resync are always retained, as is anything with a stage slower than
// the configured threshold; boring traces (identified or undecodable,
// fast) are sampled 1-in-N so the ring still carries baseline context.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Outcome classifies how a traced record's journey ended.
type Outcome uint8

const (
	OutcomeIdentified  Outcome = iota // decoded to a source, nothing notable
	OutcomeUndecodable                // MF decode rejected
	OutcomeBlockedHit                 // source already blocked; dropped pre-detector
	OutcomeAlarm                      // this record latched the victim's alarm
	OutcomeBlock                      // this record pushed its source over the auto-block threshold
	OutcomeDrop                       // shed at Submit: shard queue full
	OutcomeRejected                   // failed validation (topo mismatch, bad victim, closed)
	OutcomeResync                     // synthetic stream-level event: reader skipped to next magic
	OutcomeSuppressed                 // tallied sketch-only, below the admission threshold
	OutcomeForwarded                  // origin-side record of a traced record relayed to its owner
	OutcomeRingChange                 // synthetic cluster event: ownership ring rebuilt
	OutcomeGossip                     // synthetic cluster event: anti-entropy round
	OutcomeHandback                   // synthetic cluster event: victim detach / handback ship / seed
	OutcomeTakeover                   // synthetic cluster event: replica seeded on owner takeover
	OutcomeGateAdmit                  // synthetic cluster event: fwGate admitted a victim for forwarding
	numOutcomes
)

// outcomeNames are the JSON/admin-plane labels, in Outcome order.
var outcomeNames = [numOutcomes]string{
	"identified", "undecodable", "blocked_hit", "alarm", "block",
	"drop", "rejected", "resync", "suppressed",
	"forwarded", "ring_change", "gossip", "handback", "takeover", "gate_admit",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// OutcomeFromString resolves an admin-plane filter string; ok is false
// for unknown names.
func OutcomeFromString(s string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == s {
			return Outcome(i), true
		}
	}
	return 0, false
}

// SpanMissing marks a span the record never reached (e.g. detect on a
// blocked-source hit, everything past ingest on a drop).
const SpanMissing int64 = -1

// Trace is one record's completed span timeline. It is a flat value
// type — committing one into the ring is a struct copy, no allocation.
//
// Span semantics (all nanoseconds):
//
//	Wire     exporter Send stamp → first daemon's Submit entry (or, for
//	         a forwarded record, → the origin's route decision):
//	         wall-clock delta across hosts; skew-prone, still invaluable
//	Forward  origin's route decision → owner's Submit entry (route →
//	         forward queue → wire → remote ingest); SpanMissing unless
//	         the record crossed a cluster forward hop
//	Ingest   Submit entry → shard worker dequeue (validation + queue wait)
//	Identify victim-state lookup + MF decode
//	Detect   CUSUM/entropy update + alarm latch
//	Block    blocklist consult (+ insertion and journaling on a block)
type Trace struct {
	ID      uint64
	Sent    int64 // exporter send time, unix nanos (0 = unknown)
	Start   int64 // Submit entry, unix nanos
	Victim  int64 // -1 for stream-level events
	Source  int64 // identified source; -1 when unknown/undecodable
	Shard   int32
	Outcome Outcome
	Origin  uint64 // forwarding member id for records that crossed a hop (0 = none)

	Wire, Forward, Ingest, Identify, Detect, Block int64 // spans; SpanMissing = not reached
}

// Total sums the daemon-side spans (Wire excluded: it crosses clocks).
func (t *Trace) Total() int64 {
	var sum int64
	for _, d := range [...]int64{t.Ingest, t.Identify, t.Detect, t.Block} {
		if d > 0 {
			sum += d
		}
	}
	return sum
}

// Interesting reports whether tail sampling must retain the trace
// regardless of the boring 1-in-N counter: any outcome beyond the
// ordinary identified/undecodable/suppressed triple, or any span over
// slowNS.
func (t *Trace) Interesting(slowNS int64) bool {
	if t.Outcome != OutcomeIdentified && t.Outcome != OutcomeUndecodable && t.Outcome != OutcomeSuppressed {
		return true
	}
	if slowNS <= 0 {
		return false
	}
	for _, d := range [...]int64{t.Wire, t.Forward, t.Ingest, t.Identify, t.Detect, t.Block} {
		if d > slowNS {
			return true
		}
	}
	return false
}

// FlightRecorder is the fixed-size ring of retained traces plus the
// tail-sampling policy and its accounting. Commit is called from shard
// workers and the ingest path; readers (the /debug/traces endpoint,
// SIGQUIT dumps, tests) snapshot under the same mutex. The mutex is
// uncontended in steady state: boring traces mostly return before
// touching it.
type FlightRecorder struct {
	sampleN uint64 // retain 1 in N boring traces (1 = all)
	slowNS  int64  // any span above this is always retained

	observed atomic.Uint64 // completed traces offered to Commit
	retained atomic.Uint64 // traces written into the ring
	sampled  atomic.Uint64 // boring traces retained by the 1-in-N sampler
	evicted  atomic.Uint64 // ring overwrites of a previously retained trace
	boring   atomic.Uint64 // boring-trace counter driving the sampler

	synthSeq atomic.Uint64 // synthetic ids for stream-level events

	mu   sync.Mutex
	ring []Trace
	next int
	full bool
}

// NewFlightRecorder builds a recorder holding up to size traces,
// retaining 1 in sampleN boring traces and everything with a span over
// slow. size <= 0 returns nil — the disabled recorder; every method is
// nil-safe on the hot path via the callers' nil checks.
func NewFlightRecorder(size, sampleN int, slow time.Duration) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	if sampleN <= 0 {
		sampleN = 64
	}
	return &FlightRecorder{
		sampleN: uint64(sampleN),
		slowNS:  slow.Nanoseconds(),
		ring:    make([]Trace, size),
	}
}

// SampleN and SlowThresholdNS expose the policy for the admin plane.
func (r *FlightRecorder) SampleN() uint64        { return r.sampleN }
func (r *FlightRecorder) SlowThresholdNS() int64 { return r.slowNS }
func (r *FlightRecorder) Cap() int               { return len(r.ring) }

// Counters for /metrics.
func (r *FlightRecorder) Observed() uint64 { return r.observed.Load() }
func (r *FlightRecorder) Retained() uint64 { return r.retained.Load() }
func (r *FlightRecorder) Sampled() uint64  { return r.sampled.Load() }
func (r *FlightRecorder) Evicted() uint64  { return r.evicted.Load() }

// Commit offers one completed trace and reports whether tail sampling
// retained it. The caller's trace value is copied; no reference is
// kept.
func (r *FlightRecorder) Commit(t *Trace) bool {
	r.observed.Add(1)
	if !t.Interesting(r.slowNS) {
		if r.boring.Add(1)%r.sampleN != 0 {
			return false
		}
		r.sampled.Add(1)
	}
	r.retained.Add(1)
	r.mu.Lock()
	if r.full {
		r.evicted.Add(1)
	}
	r.ring[r.next] = *t
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	return true
}

// CommitEvent retains a synthetic stream-level trace (resync, session
// loss surfaced as traces) and returns its generated id. Synthetic ids
// always carry the top bit — a reading hint, not a namespace: exporter
// ids are uniform 64-bit SplitMix64 values, so uniqueness across both
// kinds is probabilistic either way.
func (r *FlightRecorder) CommitEvent(outcome Outcome, now int64, stream uint64) uint64 {
	id := wire.SplitMix64(r.synthSeq.Add(1)^stream) | 1<<63
	r.CommitEventWithID(id, outcome, now, -1)
	return id
}

// CommitEventWithID retains a synthetic event under a caller-supplied
// id — the cluster-op path, where the same operation committed on two
// nodes (a handback's ship and its seed, say) must share one id so the
// fleet trace fan-out stitches both halves into a single timeline.
// victim is -1 for operations without one.
func (r *FlightRecorder) CommitEventWithID(id uint64, outcome Outcome, now int64, victim int64) {
	t := Trace{
		ID: id, Start: now, Victim: victim, Source: -1, Shard: -1,
		Outcome: outcome,
		Wire:    SpanMissing, Forward: SpanMissing, Ingest: SpanMissing,
		Identify: SpanMissing, Detect: SpanMissing, Block: SpanMissing,
	}
	r.Commit(&t)
}

// MintEventID generates a synthetic-event id without committing — the
// handback shipper mints the op id first so it can ride the wire to
// the receiver before either side commits.
func (r *FlightRecorder) MintEventID(stream uint64) uint64 {
	return wire.SplitMix64(r.synthSeq.Add(1)^stream) | 1<<63
}

// TraceFilter selects traces for Snapshot. Start from AllTraces() and
// narrow; Victim/Source use MatchAny (-2) as the wildcard because -1
// is a real value (stream-level events).
type TraceFilter struct {
	Victim  int64 // MatchAny = any
	Source  int64 // MatchAny = any
	Outcome Outcome
	HasOut  bool   // filter by Outcome
	ID      uint64 // nonzero: exact trace id
	Limit   int    // max traces returned, newest first (0 = all)
}

// MatchAny is the wildcard for TraceFilter.Victim / Source.
const MatchAny int64 = -2

// AllTraces is the match-everything filter.
func AllTraces() TraceFilter { return TraceFilter{Victim: MatchAny, Source: MatchAny} }

// Snapshot returns retained traces matching f, newest first.
func (r *FlightRecorder) Snapshot(f TraceFilter) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	total := n
	if r.full {
		total = len(r.ring)
	}
	out := make([]Trace, 0, min(total, max(f.Limit, 16)))
	for i := 0; i < total; i++ {
		// Walk newest → oldest.
		idx := n - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		t := &r.ring[idx]
		if f.ID != 0 && t.ID != f.ID {
			continue
		}
		if f.Victim != MatchAny && f.Victim != t.Victim {
			continue
		}
		if f.Source != MatchAny && f.Source != t.Source {
			continue
		}
		if f.HasOut && f.Outcome != t.Outcome {
			continue
		}
		out = append(out, *t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Find returns the retained trace with the given id, if any.
func (r *FlightRecorder) Find(id uint64) (Trace, bool) {
	ts := r.Snapshot(TraceFilter{ID: id, Victim: MatchAny, Source: MatchAny, Limit: 1})
	if len(ts) == 0 {
		return Trace{}, false
	}
	return ts[0], true
}
