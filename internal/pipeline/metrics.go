package pipeline

import (
	"fmt"
	"io"
	"time"
)

// WritePrometheus renders the pipeline state in Prometheus text
// exposition format (counters, per-shard queue-depth gauges, and an
// ingest-rate gauge over the daemon's lifetime). uptime is how long
// the pipeline has been serving.
func (p *Pipeline) WritePrometheus(w io.Writer, uptime time.Duration) {
	s := p.Snapshot()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("ddpmd_ingested_total", "records offered to the pipeline", s.Ingested)
	counter("ddpmd_dropped_total", "records shed by shard-queue backpressure", s.Dropped)
	counter("ddpmd_rejected_closed_total", "records submitted after pipeline close", s.RejectedClosed)
	counter("ddpmd_topo_mismatch_total", "records rejected for a foreign topology id", s.TopoMismatch)
	counter("ddpmd_bad_victim_total", "records rejected for an out-of-range victim node", s.BadVictim)
	counter("ddpmd_processed_total", "records consumed by shard workers", s.Processed)
	counter("ddpmd_identified_total", "records whose MF decoded to an in-topology source", s.Identified)
	counter("ddpmd_undecodable_total", "records whose MF decode was rejected", s.Undecodable)
	counter("ddpmd_blocked_hits_total", "records dropped because their source was blocked", s.BlockedHits)
	counter("ddpmd_alarms_total", "victims whose detectors have fired", s.Alarms)
	counter("ddpmd_blocks_total", "auto-block insertions into the TTL blocklist", s.Blocks)

	gauge("ddpmd_active_blocks", "blocklist entries currently in force", float64(s.ActiveBlocks))
	secs := uptime.Seconds()
	gauge("ddpmd_uptime_seconds", "time since the pipeline started", secs)
	rate := 0.0
	if secs > 0 {
		rate = float64(s.Ingested) / secs
	}
	gauge("ddpmd_ingest_rate", "lifetime mean ingest rate in records/sec", rate)

	fmt.Fprintf(w, "# HELP ddpmd_shard_queue_depth records waiting per shard\n# TYPE ddpmd_shard_queue_depth gauge\n")
	for i, d := range s.QueueDepths {
		fmt.Fprintf(w, "ddpmd_shard_queue_depth{shard=\"%d\"} %d\n", i, d)
	}
}
