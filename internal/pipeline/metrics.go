package pipeline

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/stats"
)

// promEscape escapes a string for use as a Prometheus label value:
// backslash, double quote and newline per the text exposition format.
func promEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders the pipeline state in Prometheus text
// exposition format: counters, per-shard labeled counters and queue
// gauges, the sliding-window ingest rate, per-stage latency histograms
// with p50/p95/p99 summaries, and journal health when a journal is
// configured. uptime is how long the pipeline has been serving. Series
// are emitted in a fixed order so the exposition is golden-testable.
func (p *Pipeline) WritePrometheus(w io.Writer, uptime time.Duration) {
	s := p.Snapshot()
	now := p.cfg.Now()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("ddpmd_ingested_total", "records offered to the pipeline", s.Ingested)
	counter("ddpmd_accepted_total", "records that passed validation and were enqueued", s.Accepted)
	counter("ddpmd_dropped_total", "records shed by shard-queue backpressure", s.Dropped)
	counter("ddpmd_rejected_closed_total", "records submitted after pipeline close", s.RejectedClosed)
	counter("ddpmd_topo_mismatch_total", "records rejected for a foreign topology id", s.TopoMismatch)
	counter("ddpmd_bad_victim_total", "records rejected for an out-of-range victim node", s.BadVictim)
	counter("ddpmd_processed_total", "records consumed by shard workers", s.Processed)
	counter("ddpmd_identified_total", "records whose MF decoded to an in-topology source", s.Identified)
	counter("ddpmd_undecodable_total", "records whose MF decode was rejected", s.Undecodable)
	counter("ddpmd_blocked_hits_total", "records dropped because their source was blocked", s.BlockedHits)
	counter("ddpmd_alarms_total", "victims whose detectors have fired", s.Alarms)
	counter("ddpmd_blocks_total", "auto-block insertions into the TTL blocklist", s.Blocks)
	counter("ddpmd_sketch_suppressed_total", "records tallied sketch-only below the admission threshold", s.SketchSuppressed)
	counter("ddpmd_sketch_replayed_total", "buffered records replayed through the exact path on admission", s.SketchReplayed)
	counter("ddpmd_sketch_deferred_total", "admissions deferred at the per-shard victim-state cap", s.SketchDeferred)
	counter("ddpmd_victims_admitted_total", "victim states materialized through the admission gate", s.VictimsAdmitted)
	counter("ddpmd_victims_expired_total", "idle victim states swept back to sketch-only", s.VictimsExpired)
	counter("ddpmd_victims_detached_total", "victim states handed off to a new cluster owner", s.VictimsDetached)
	counter("ddpmd_sketch_decays_total", "windowed halvings of the admission sketches", s.SketchDecays)
	counter("ddpmd_scheme_unbuildable_total", "records dropped because the marking scheme cannot cover the fabric", s.SchemeUnbuildable)

	gauge("ddpmd_active_blocks", "blocklist entries currently in force", float64(s.ActiveBlocks))
	gauge("ddpmd_victim_states", "victims with exact per-victim state materialized", float64(s.VictimStates))
	gauge("ddpmd_sketch_heavy_slots", "destinations tracked in the space-saving tables below admission", float64(s.SketchHeavySlots))
	secs := uptime.Seconds()
	gauge("ddpmd_uptime_seconds", "time since the pipeline started", secs)

	// The rate gauge keeps its historic name but is no longer a
	// lifetime mean: each scrape samples the accepted counter and the
	// gauge reports the slope over the sliding window. Before the window
	// has two samples the slope is undefined and the gauge reports 0 —
	// never a lifetime-mean spike or NaN on a cold daemon's first scrape.
	p.rateWin.Observe(now, s.Accepted)
	rate, _ := p.rateWin.Rate()
	gauge("ddpmd_ingest_rate",
		fmt.Sprintf("accepted (post-validation) records/sec over a sliding %gs window", p.cfg.RateWindow.Seconds()),
		rate)

	fmt.Fprintf(w, "# HELP ddpmd_topology_info fabric this pipeline identifies sources in\n"+
		"# TYPE ddpmd_topology_info gauge\nddpmd_topology_info{topology=\"%s\",topo_id=\"%#08x\"} 1\n",
		promEscape(p.cfg.Net.Name()), p.topoID)

	shardSeries := func(name, typ, help string, vals func(i int) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i := range p.shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", name, i, vals(i))
		}
	}
	shardSeries("ddpmd_shard_queue_depth", "gauge", "record sub-batches waiting per shard",
		func(i int) string { return fmt.Sprintf("%d", s.QueueDepths[i]) })
	shardSeries("ddpmd_shard_processed_total", "counter", "records consumed per shard worker",
		func(i int) string { return fmt.Sprintf("%d", s.ShardProcessed[i]) })
	shardSeries("ddpmd_shard_identified_total", "counter", "records identified per shard worker",
		func(i int) string { return fmt.Sprintf("%d", s.ShardIdentified[i]) })
	shardSeries("ddpmd_shard_dropped_total", "counter", "records shed per shard by backpressure",
		func(i int) string { return fmt.Sprintf("%d", s.ShardDropped[i]) })
	shardSeries("ddpmd_shard_gated_victims", "gauge", "sketch-gated destinations tracked per shard",
		func(i int) string { return fmt.Sprintf("%d", s.ShardGatedVictims[i]) })

	p.writeLatency(w)
	p.writeDetectionLatency(w)

	if fr := p.fr; fr != nil {
		counter("ddpmd_trace_observed_total", "completed traces offered to the flight recorder", fr.Observed())
		counter("ddpmd_trace_retained_total", "traces tail sampling kept in the flight recorder", fr.Retained())
		counter("ddpmd_trace_sampled_total", "boring traces retained by the 1-in-N sampler", fr.Sampled())
		counter("ddpmd_trace_evicted_total", "retained traces overwritten by the bounded ring", fr.Evicted())
	}

	if j := p.cfg.Journal; j != nil {
		counter("ddpmd_journal_written_total", "attack-audit events flushed to the journal", j.Written())
		counter("ddpmd_journal_dropped_total", "attack-audit events shed by the bounded journal queue", j.Dropped())
	}
}

// writeDetectionLatency emits the send-to-block latency histogram: the
// wall-clock delta between a traced record's exporter send stamp and
// the block decision it pushed over the threshold, unsampled, observed
// on whichever node owned the victim at block time (the send stamp
// rides the forward lane, so the series stays correct across owner
// changes). Absent when tracing is disabled.
func (p *Pipeline) writeDetectionLatency(w io.Writer) {
	if p.detLat.hist == nil {
		return
	}
	h := p.detLat.hist.Snapshot()
	const name = "ddpmd_detection_latency_seconds"
	fmt.Fprintf(w, "# HELP %s exporter send to block decision, across cluster hops\n# TYPE %s histogram\n", name, name)
	bins := h.Bins()
	under, _ := h.OutOfRange()
	cum := under
	for i, c := range bins {
		cum += c
		le := math.Exp2(p.detLat.hist.BinUpperBound(i)) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=\"%.9g\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	fmt.Fprintf(w, "%s_sum %.9g\n", name, float64(p.detLat.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}

// writeLatency emits the per-stage latency histograms. Buckets live in
// the log2-ns domain internally; the exposition exponentiates the bin
// edges back to seconds, folds underflow into the first bucket, and
// adds a summary series with interpolated p50/p95/p99.
func (p *Pipeline) writeLatency(w io.Writer) {
	if !p.sampleOn {
		return
	}
	var snaps [numStages]*stats.Histogram
	for stage := range snaps {
		snaps[stage] = p.lat[stage].hist.Snapshot()
	}
	const histName = "ddpmd_stage_latency_seconds"
	fmt.Fprintf(w, "# HELP %s sampled per-stage processing latency (1 in %d records)\n# TYPE %s histogram\n",
		histName, p.sampleMask+1, histName)
	for stage := 0; stage < numStages; stage++ {
		h := snaps[stage]
		label := StageNames[stage]
		bins := h.Bins()
		under, _ := h.OutOfRange()
		cum := under // sub-range observations belong in every finite bucket
		for i, c := range bins {
			cum += c
			le := math.Exp2(p.lat[stage].hist.BinUpperBound(i)) / 1e9
			fmt.Fprintf(w, "%s_bucket{stage=\"%s\",le=\"%.9g\"} %d", histName, label, le, cum)
			// OpenMetrics-style exemplar: the last retained trace whose
			// span landed in this bucket, so a slow bucket links straight
			// to one concrete /debug/traces entry.
			if id, x := p.lat[stage].hist.Exemplar(i); id != 0 {
				fmt.Fprintf(w, " # {trace_id=\"%016x\"} %.9g", id, math.Exp2(x)/1e9)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s_bucket{stage=\"%s\",le=\"+Inf\"} %d\n", histName, label, h.N())
		fmt.Fprintf(w, "%s_sum{stage=\"%s\"} %.9g\n", histName, label, float64(p.lat[stage].sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{stage=\"%s\"} %d\n", histName, label, h.N())
	}

	const sumName = "ddpmd_stage_latency_summary_seconds"
	fmt.Fprintf(w, "# HELP %s interpolated latency quantiles per stage\n# TYPE %s summary\n", sumName, sumName)
	for stage := 0; stage < numStages; stage++ {
		h := snaps[stage]
		label := StageNames[stage]
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			v := 0.0
			if h.N() > 0 {
				v = math.Exp2(h.Percentile(q*100)) / 1e9
			}
			fmt.Fprintf(w, "%s{stage=\"%s\",quantile=\"%g\"} %.9g\n", sumName, label, q, v)
		}
		fmt.Fprintf(w, "%s_sum{stage=\"%s\"} %.9g\n", sumName, label, float64(p.lat[stage].sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{stage=\"%s\"} %d\n", sumName, label, h.N())
	}
}
