package results

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestCSVBasic(t *testing.T) {
	var sb strings.Builder
	c, err := NewCSV(&sb, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Row("x", 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Row("y", int64(-7), false); err != nil {
		t.Fatal(err)
	}
	want := "a,b,c\nx,1,2.5\ny,-7,false\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
	if c.Rows() != 2 {
		t.Errorf("Rows = %d", c.Rows())
	}
	if got := c.Columns(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Columns = %v", got)
	}
}

func TestCSVEscaping(t *testing.T) {
	var sb strings.Builder
	c, _ := NewCSV(&sb, "v")
	if err := c.Row(`with,comma and "quote"` + "\nnewline"); err != nil {
		t.Fatal(err)
	}
	want := "v\n\"with,comma and \"\"quote\"\"\nnewline\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q", sb.String())
	}
}

func TestCSVValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewCSV(&sb); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := NewCSV(&sb, "a", "a"); err == nil {
		t.Error("duplicate columns accepted")
	}
	c, _ := NewCSV(&sb, "a", "b")
	if err := c.Row(1); err == nil {
		t.Error("short row accepted")
	}
}

func TestCSVStringer(t *testing.T) {
	var sb strings.Builder
	c, _ := NewCSV(&sb, "reason")
	if err := c.Row(netsim.DropTTL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ttl-expired") {
		t.Errorf("stringer not rendered: %q", sb.String())
	}
}

func TestJSONLBasic(t *testing.T) {
	var sb strings.Builder
	j, err := NewJSONL(&sb, "name", "n", "ok")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Row("run1", 42, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Row("run2", 0, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if obj["name"] != "run1" || obj["n"] != float64(42) || obj["ok"] != true {
		t.Errorf("obj = %v", obj)
	}
	// Declared key order preserved verbatim.
	if !strings.HasPrefix(lines[0], `{"name":`) {
		t.Errorf("key order not fixed: %q", lines[0])
	}
}

func TestJSONLValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewJSONL(&sb); err == nil {
		t.Error("zero keys accepted")
	}
	j, _ := NewJSONL(&sb, "a")
	if err := j.Row(1, 2); err == nil {
		t.Error("long row accepted")
	}
}

func TestJSONLStringer(t *testing.T) {
	var sb strings.Builder
	j, _ := NewJSONL(&sb, "reason")
	if err := j.Row(netsim.DropQueueFull); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"queue-full"`) {
		t.Errorf("stringer not rendered: %q", sb.String())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, errSink
	}
	return len(p), nil
}

var errSink = errors.New("sink failed")

func TestCSVStickyFailure(t *testing.T) {
	fw := &failWriter{}
	c, err := NewCSV(fw, "a") // header write succeeds
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Row(1); err == nil {
		t.Fatal("write to failing sink succeeded")
	}
	// Subsequent rows fail fast without touching the sink.
	n := fw.n
	if err := c.Row(2); err == nil {
		t.Fatal("sticky failure not reported")
	}
	if fw.n != n {
		t.Error("failed CSV kept writing to the sink")
	}
	if c.Rows() != 0 {
		t.Errorf("Rows = %d after failures", c.Rows())
	}
}
