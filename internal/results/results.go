// Package results provides the small, dependency-free result sinks the
// experiment harness writes through: an escaping CSV writer with a
// fixed header discipline and a JSONL (one-object-per-line) writer, so
// sweeps can be piped straight into plotting tools. Everything is
// deterministic: column order is fixed at construction, map iteration
// never leaks into output.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV writes rows under a fixed header. It escapes per RFC 4180
// (quotes around fields containing commas, quotes or newlines; embedded
// quotes doubled).
type CSV struct {
	w      io.Writer
	cols   []string
	wrote  int
	failed error
}

// NewCSV writes the header immediately. At least one column is
// required; column names must be unique.
func NewCSV(w io.Writer, columns ...string) (*CSV, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("results: CSV needs at least one column")
	}
	seen := map[string]bool{}
	for _, c := range columns {
		if seen[c] {
			return nil, fmt.Errorf("results: duplicate column %q", c)
		}
		seen[c] = true
	}
	c := &CSV{w: w, cols: append([]string(nil), columns...)}
	if err := c.writeRecord(c.cols); err != nil {
		return nil, err
	}
	return c, nil
}

// Columns returns the header.
func (c *CSV) Columns() []string { return append([]string(nil), c.cols...) }

// Rows returns the number of data rows written.
func (c *CSV) Rows() int { return c.wrote }

// Row writes one record; the value count must match the header.
// Supported types: string, bool, integers, floats, fmt.Stringer.
func (c *CSV) Row(values ...any) error {
	if c.failed != nil {
		return c.failed
	}
	if len(values) != len(c.cols) {
		return fmt.Errorf("results: row has %d values, header has %d", len(values), len(c.cols))
	}
	fields := make([]string, len(values))
	for i, v := range values {
		fields[i] = format(v)
	}
	if err := c.writeRecord(fields); err != nil {
		c.failed = err
		return err
	}
	c.wrote++
	return nil
}

func (c *CSV) writeRecord(fields []string) error {
	for i, f := range fields {
		fields[i] = escape(f)
	}
	_, err := io.WriteString(c.w, strings.Join(fields, ",")+"\n")
	return err
}

func escape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func format(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 6, 32)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// JSONL writes one JSON object per line. Keys are emitted in the fixed
// order given at construction (encoding/json maps would sort, but a
// fixed declared order keeps columns aligned with CSV twins).
type JSONL struct {
	w    io.Writer
	keys []string
}

// NewJSONL fixes the key order.
func NewJSONL(w io.Writer, keys ...string) (*JSONL, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("results: JSONL needs at least one key")
	}
	return &JSONL{w: w, keys: append([]string(nil), keys...)}, nil
}

// Row writes one object; values align positionally with the keys.
func (j *JSONL) Row(values ...any) error {
	if len(values) != len(j.keys) {
		return fmt.Errorf("results: row has %d values, keys have %d", len(values), len(j.keys))
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range j.keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(normalize(values[i]))
		if err != nil {
			return fmt.Errorf("results: key %q: %w", k, err)
		}
		sb.Write(kb)
		sb.WriteByte(':')
		sb.Write(vb)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(j.w, sb.String())
	return err
}

// normalize renders Stringers as their string form so node ids and
// enums serialize readably.
func normalize(v any) any {
	if s, ok := v.(fmt.Stringer); ok {
		return s.String()
	}
	return v
}
