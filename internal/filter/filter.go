// Package filter implements the response side of the pipeline: once
// sources or signatures are identified, traffic is blocked. Three
// mechanisms, matching the paper's discussion:
//
//   - Blocklist: drop traffic whose DDPM-identified source node is
//     blocked ("Once a source or a path is identified, we can protect
//     our system by blocking packets from that source", §1)
//   - SignatureFilter: drop traffic whose MF matches a learned DPM
//     signature (§2, Yaar-style)
//   - IngressFilter: the Ferguson–Senie baseline (§2 [10]): a switch
//     verifies the source address of locally injected packets against
//     the node's assigned address and drops spoofed ones — effective
//     but it costs a table lookup in every switch, the performance/
//     security trade-off of §6.2.
package filter

import (
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceback"
)

// Verdict is a filter decision.
type Verdict int

const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "accept"
}

// Blocklist drops packets whose marking-identified source node is
// blocked. It is keyed by node, not by (spoofable) header address.
type Blocklist struct {
	ddpm    *marking.DDPM
	victim  topology.NodeID
	blocked map[topology.NodeID]bool

	accepted, dropped uint64
}

// NewBlocklist builds an empty blocklist for a victim using DDPM
// identification.
func NewBlocklist(ddpm *marking.DDPM, victim topology.NodeID) *Blocklist {
	return &Blocklist{ddpm: ddpm, victim: victim, blocked: make(map[topology.NodeID]bool)}
}

// Block adds a node; BlockAll adds many (e.g. from
// traceback.DDPMIdentifier.SourcesAbove).
func (b *Blocklist) Block(n topology.NodeID) { b.blocked[n] = true }

func (b *Blocklist) BlockAll(ns []topology.NodeID) {
	for _, n := range ns {
		b.Block(n)
	}
}

// Unblock removes a node.
func (b *Blocklist) Unblock(n topology.NodeID) { delete(b.blocked, n) }

// Len returns the number of blocked nodes.
func (b *Blocklist) Len() int { return len(b.blocked) }

// Check filters one delivered packet by identifying its source from the
// MF. Unidentifiable packets are accepted (fail-open, like a real
// victim that cannot attribute them).
func (b *Blocklist) Check(pk *packet.Packet) Verdict {
	src, ok := b.ddpm.IdentifySource(b.victim, pk.Hdr.ID)
	if ok && b.blocked[src] {
		b.dropped++
		return Drop
	}
	b.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (b *Blocklist) Counts() (accepted, dropped uint64) { return b.accepted, b.dropped }

// SignatureFilter drops packets whose MF matches a learned DPM
// signature. Its false positives against innocent flows sharing a
// signature are exactly the DPM ambiguity of experiment E2.
type SignatureFilter struct {
	table *traceback.SignatureTable

	accepted, dropped uint64
}

// NewSignatureFilter wraps a signature table.
func NewSignatureFilter(table *traceback.SignatureTable) *SignatureFilter {
	return &SignatureFilter{table: table}
}

// Check filters one packet.
func (f *SignatureFilter) Check(pk *packet.Packet) Verdict {
	if f.table.Match(pk) {
		f.dropped++
		return Drop
	}
	f.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (f *SignatureFilter) Counts() (accepted, dropped uint64) { return f.accepted, f.dropped }

// IngressFilter is the switch-side spoofing block: every injected
// packet's header source must equal the injecting node's assigned
// address. It defeats spoofing outright but requires per-switch address
// state and a lookup on every injection (the §6.2 cost).
type IngressFilter struct {
	plan *packet.AddrPlan

	accepted, dropped uint64
}

// NewIngressFilter builds the filter over the cluster's address plan.
func NewIngressFilter(plan *packet.AddrPlan) *IngressFilter {
	return &IngressFilter{plan: plan}
}

// CheckInjection validates a packet as it enters the fabric at node
// src. Unlike the victim-side filters it runs before any marking.
func (f *IngressFilter) CheckInjection(src topology.NodeID, pk *packet.Packet) Verdict {
	if pk.Hdr.Src != f.plan.AddrOf(src) {
		f.dropped++
		return Drop
	}
	f.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (f *IngressFilter) Counts() (accepted, dropped uint64) { return f.accepted, f.dropped }
