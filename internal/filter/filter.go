// Package filter implements the response side of the pipeline: once
// sources or signatures are identified, traffic is blocked. Three
// mechanisms, matching the paper's discussion:
//
//   - Blocklist: drop traffic whose DDPM-identified source node is
//     blocked ("Once a source or a path is identified, we can protect
//     our system by blocking packets from that source", §1)
//   - SignatureFilter: drop traffic whose MF matches a learned DPM
//     signature (§2, Yaar-style)
//   - IngressFilter: the Ferguson–Senie baseline (§2 [10]): a switch
//     verifies the source address of locally injected packets against
//     the node's assigned address and drops spoofed ones — effective
//     but it costs a table lookup in every switch, the performance/
//     security trade-off of §6.2.
package filter

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/traceback"
)

// Verdict is a filter decision.
type Verdict int

const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	if v == Drop {
		return "drop"
	}
	return "accept"
}

// Permanent is the expiry value of a block with no TTL.
const Permanent int64 = 0

// BlockEntry is one blocklist row: a node, the caller-timebase
// instant its block lapses (Permanent for no expiry), and the victim
// whose identification evidence caused the block (topology.None when
// unknown — operator-inserted or pre-victim-tracking entries), so
// audit consumers can correlate a block's expiry with the original
// source_blocked event.
type BlockEntry struct {
	Node   topology.NodeID
	Until  int64
	Victim topology.NodeID
}

// blockVal is the map payload behind one blocked node.
type blockVal struct {
	until  int64
	victim topology.NodeID
}

// Blocklist drops packets whose marking-identified source node is
// blocked. It is keyed by node, not by (spoofable) header address.
//
// Blocks may carry an expiry so a response to a burst ages out instead
// of punishing a once-compromised node forever. Expiry instants are
// opaque int64s in whatever monotone timebase the caller uses —
// simulator ticks in closed-loop experiments, unix nanoseconds in the
// ddpmd daemon — compared only against the `now` the caller passes.
//
// All methods are safe for concurrent use: the daemon's admin plane
// mutates the list while shard workers consult it.
type Blocklist struct {
	ddpm   *marking.DDPM
	victim topology.NodeID

	mu      sync.Mutex
	blocked map[topology.NodeID]blockVal // node -> expiry + blocking victim
	size    atomic.Int64                 // len(blocked), readable without the mutex

	// Replication state (see sequence.go): every state-changing local
	// mutation is sequenced, stamped and logged; remote mutations are
	// resolved last-writer-wins by (stamp, origin).
	origin uint64
	seq    uint64
	stamp  uint64
	log    []Mutation
	tags   map[topology.NodeID]lwwTag

	accepted, dropped uint64
}

// NewBlocklist builds an empty blocklist for a victim using DDPM
// identification.
func NewBlocklist(ddpm *marking.DDPM, victim topology.NodeID) *Blocklist {
	return &Blocklist{ddpm: ddpm, victim: victim, blocked: make(map[topology.NodeID]blockVal)}
}

// NewTTLBlocklist builds a blocklist with no identification scheme for
// pipelines that attribute packets upstream and consult the list by
// node (BlockedAt); Check on it fails open.
func NewTTLBlocklist() *Blocklist {
	return &Blocklist{victim: topology.None, blocked: make(map[topology.NodeID]blockVal)}
}

// Block adds a node with no expiry; BlockAll adds many (e.g. from
// traceback.DDPMIdentifier.SourcesAbove).
func (b *Blocklist) Block(n topology.NodeID) { b.BlockUntil(n, Permanent) }

func (b *Blocklist) BlockAll(ns []topology.NodeID) {
	for _, n := range ns {
		b.Block(n)
	}
}

// BlockUntil adds a node whose block lapses at the given instant of
// the caller's timebase. A permanent block always wins over a TTL; a
// later expiry extends an earlier one.
func (b *Blocklist) BlockUntil(n topology.NodeID, until int64) {
	b.BlockUntilFor(n, until, topology.None)
}

// BlockUntilFor is BlockUntil with attribution: victim names the node
// whose identification evidence caused the block, carried on the entry
// (and through replication) so expiry audit events can reference it.
func (b *Blocklist) BlockUntilFor(n topology.NodeID, until int64, victim topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old, ok := b.blocked[n]
	if ok && (old.until == Permanent || (until != Permanent && old.until >= until)) {
		return
	}
	b.blocked[n] = blockVal{until: until, victim: victim}
	if !ok {
		b.size.Add(1)
	}
	b.record(n, until, victim, false)
}

// Empty reports, without taking the mutex, whether the list has no
// entries at all (lapsed-but-unpruned entries count as present). The
// pipeline's batch hot path uses it to skip per-record BlockedAt
// lookups entirely while no block is in force — the steady state.
func (b *Blocklist) Empty() bool { return b.size.Load() == 0 }

// Unblock removes a node.
func (b *Blocklist) Unblock(n topology.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.blocked[n]; ok {
		delete(b.blocked, n)
		b.size.Add(-1)
		b.record(n, Permanent, topology.None, true)
	}
}

// Len returns the number of blocked nodes, including entries whose
// expiry has passed but which Expire has not yet pruned.
func (b *Blocklist) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.blocked)
}

// Expire prunes every entry whose expiry is at or before now,
// returning how many lapsed.
func (b *Blocklist) Expire(now int64) int {
	return len(b.ExpireEntries(now))
}

// ExpireEntries prunes like Expire but returns the lapsed entries
// sorted by node id, so callers can audit exactly which blocks aged
// out (ddpmd journals each as a block-expired event). Returns nil when
// nothing lapsed.
func (b *Blocklist) ExpireEntries(now int64) []BlockEntry {
	b.mu.Lock()
	var lapsed []BlockEntry
	for n, v := range b.blocked {
		if v.until != Permanent && v.until <= now {
			delete(b.blocked, n)
			b.size.Add(-1)
			lapsed = append(lapsed, BlockEntry{Node: n, Until: v.until, Victim: v.victim})
		}
	}
	b.mu.Unlock()
	sort.Slice(lapsed, func(i, j int) bool { return lapsed[i].Node < lapsed[j].Node })
	return lapsed
}

// BlockedAt reports whether n is blocked at instant now. Lapsed
// entries answer false even before Expire prunes them, so TTL decay
// needs no background reaper.
func (b *Blocklist) BlockedAt(n topology.NodeID, now int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.blocked[n]
	return ok && (v.until == Permanent || v.until > now)
}

// Snapshot returns the current entries sorted by node id.
func (b *Blocklist) Snapshot() []BlockEntry {
	b.mu.Lock()
	out := make([]BlockEntry, 0, len(b.blocked))
	for n, v := range b.blocked {
		out = append(out, BlockEntry{Node: n, Until: v.until, Victim: v.victim})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Check filters one delivered packet by identifying its source from the
// MF. Unidentifiable packets are accepted (fail-open, like a real
// victim that cannot attribute them), as are all packets on a list
// built without a scheme (NewTTLBlocklist). Check has no clock, so
// entries count as blocked until Expire prunes them.
func (b *Blocklist) Check(pk *packet.Packet) Verdict {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ddpm != nil {
		src, ok := b.ddpm.IdentifySource(b.victim, pk.Hdr.ID)
		if ok {
			if _, hit := b.blocked[src]; hit {
				b.dropped++
				return Drop
			}
		}
	}
	b.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (b *Blocklist) Counts() (accepted, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.accepted, b.dropped
}

// SignatureFilter drops packets whose MF matches a learned DPM
// signature. Its false positives against innocent flows sharing a
// signature are exactly the DPM ambiguity of experiment E2.
type SignatureFilter struct {
	table *traceback.SignatureTable

	accepted, dropped uint64
}

// NewSignatureFilter wraps a signature table.
func NewSignatureFilter(table *traceback.SignatureTable) *SignatureFilter {
	return &SignatureFilter{table: table}
}

// Check filters one packet.
func (f *SignatureFilter) Check(pk *packet.Packet) Verdict {
	if f.table.Match(pk) {
		f.dropped++
		return Drop
	}
	f.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (f *SignatureFilter) Counts() (accepted, dropped uint64) { return f.accepted, f.dropped }

// IngressFilter is the switch-side spoofing block: every injected
// packet's header source must equal the injecting node's assigned
// address. It defeats spoofing outright but requires per-switch address
// state and a lookup on every injection (the §6.2 cost).
type IngressFilter struct {
	plan *packet.AddrPlan

	accepted, dropped uint64
}

// NewIngressFilter builds the filter over the cluster's address plan.
func NewIngressFilter(plan *packet.AddrPlan) *IngressFilter {
	return &IngressFilter{plan: plan}
}

// CheckInjection validates a packet as it enters the fabric at node
// src. Unlike the victim-side filters it runs before any marking.
func (f *IngressFilter) CheckInjection(src topology.NodeID, pk *packet.Packet) Verdict {
	if pk.Hdr.Src != f.plan.AddrOf(src) {
		f.dropped++
		return Drop
	}
	f.accepted++
	return Accept
}

// Counts returns accepted and dropped tallies.
func (f *IngressFilter) Counts() (accepted, dropped uint64) { return f.accepted, f.dropped }
