package filter

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traceback"
)

func markedPacket(t *testing.T, m topology.Network, d *marking.DDPM, plan *packet.AddrPlan,
	src, dst topology.NodeID) *packet.Packet {
	t.Helper()
	r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	r.Sel = routing.RandomSelector{R: rng.NewStream(17)}
	path, err := r.Walk(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 0)
	d.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
	}
	return pk
}

func TestBlocklistDropsIdentifiedSource(t *testing.T) {
	m := topology.NewMesh2D(8)
	d, _ := marking.NewDDPM(m)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	victim := m.IndexOf(topology.Coord{7, 7})
	attacker := m.IndexOf(topology.Coord{0, 2})
	innocent := m.IndexOf(topology.Coord{3, 3})

	b := NewBlocklist(d, victim)
	b.Block(attacker)
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}

	atk := markedPacket(t, m, d, plan, attacker, victim)
	atk.Spoof(plan.AddrOf(innocent)) // spoofing does not help
	if b.Check(atk) != Drop {
		t.Error("attack packet accepted despite blocklist")
	}
	good := markedPacket(t, m, d, plan, innocent, victim)
	if b.Check(good) != Accept {
		t.Error("innocent packet dropped")
	}
	acc, drop := b.Counts()
	if acc != 1 || drop != 1 {
		t.Errorf("counts = %d/%d", acc, drop)
	}

	b.Unblock(attacker)
	if b.Check(markedPacket(t, m, d, plan, attacker, victim)) != Accept {
		t.Error("unblocked source still dropped")
	}
}

func TestBlocklistFailOpenOnGarbage(t *testing.T) {
	m := topology.NewMesh2D(4)
	d, _ := marking.NewDDPM(m)
	b := NewBlocklist(d, m.IndexOf(topology.Coord{0, 0}))
	b.Block(5)
	pk := &packet.Packet{}
	codec := d.Codec().(*marking.SignedFieldCodec)
	pk.Hdr.ID, _ = codec.Encode(topology.Vector{100, 100})
	if b.Check(pk) != Accept {
		t.Error("unattributable packet dropped (should fail open)")
	}
}

func TestBlocklistBlockAllFromIdentifier(t *testing.T) {
	m := topology.NewMesh2D(8)
	d, _ := marking.NewDDPM(m)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	victim := m.IndexOf(topology.Coord{7, 0})
	z1 := m.IndexOf(topology.Coord{0, 0})
	z2 := m.IndexOf(topology.Coord{0, 7})

	ident := traceback.NewDDPMIdentifier(d, victim)
	for i := 0; i < 20; i++ {
		ident.Observe(markedPacket(t, m, d, plan, z1, victim))
		ident.Observe(markedPacket(t, m, d, plan, z2, victim))
	}
	b := NewBlocklist(d, victim)
	b.BlockAll(ident.SourcesAbove(10))
	if b.Len() != 2 {
		t.Fatalf("blocked %d nodes, want 2", b.Len())
	}
	if b.Check(markedPacket(t, m, d, plan, z1, victim)) != Drop ||
		b.Check(markedPacket(t, m, d, plan, z2, victim)) != Drop {
		t.Error("zombies not blocked")
	}
}

func TestSignatureFilter(t *testing.T) {
	tbl := traceback.NewSignatureTable()
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	atk := packet.NewPacket(plan, 0, 5, packet.ProtoTCPSYN, 0)
	atk.Hdr.ID = 0xBEEF
	tbl.Learn(atk)

	f := NewSignatureFilter(tbl)
	probe := packet.NewPacket(plan, 2, 5, packet.ProtoTCPSYN, 0)
	probe.Hdr.ID = 0xBEEF
	if f.Check(probe) != Drop {
		t.Error("matching signature accepted")
	}
	probe.Hdr.ID = 0xBEE0
	if f.Check(probe) != Accept {
		t.Error("non-matching signature dropped")
	}
	acc, drop := f.Counts()
	if acc != 1 || drop != 1 {
		t.Errorf("counts = %d/%d", acc, drop)
	}
}

func TestIngressFilterBlocksSpoofing(t *testing.T) {
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	f := NewIngressFilter(plan)

	honest := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	if f.CheckInjection(3, honest) != Accept {
		t.Error("honest packet dropped at ingress")
	}
	spoofed := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	spoofed.Spoof(plan.AddrOf(9))
	if f.CheckInjection(3, spoofed) != Drop {
		t.Error("spoofed packet passed ingress")
	}
	external := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	external.Spoof(packet.AddrFrom4(192, 0, 2, 1))
	if f.CheckInjection(3, external) != Drop {
		t.Error("bogon source passed ingress")
	}
	acc, drop := f.Counts()
	if acc != 1 || drop != 2 {
		t.Errorf("counts = %d/%d", acc, drop)
	}
}

func TestVerdictString(t *testing.T) {
	if Accept.String() != "accept" || Drop.String() != "drop" {
		t.Error("bad verdict strings")
	}
}

func TestBlocklistTTLExpiry(t *testing.T) {
	b := NewTTLBlocklist()
	b.BlockUntil(3, 100)
	b.BlockUntil(4, 200)
	b.Block(5) // permanent

	if !b.BlockedAt(3, 50) || !b.BlockedAt(4, 50) || !b.BlockedAt(5, 50) {
		t.Fatal("fresh blocks not in effect")
	}
	// Lapsed entries answer false before any Expire call.
	if b.BlockedAt(3, 100) {
		t.Error("node 3 still blocked at its expiry instant")
	}
	if !b.BlockedAt(4, 150) {
		t.Error("node 4 lapsed early")
	}
	if b.Len() != 3 {
		t.Fatalf("Len before Expire = %d, want 3", b.Len())
	}
	if lapsed := b.Expire(150); lapsed != 1 {
		t.Fatalf("Expire(150) pruned %d, want 1", lapsed)
	}
	if b.Len() != 2 {
		t.Fatalf("Len after first Expire = %d, want 2", b.Len())
	}
	if lapsed := b.Expire(1 << 40); lapsed != 1 {
		t.Fatalf("Expire(max) pruned %d, want 1 (permanent must survive)", lapsed)
	}
	if !b.BlockedAt(5, 1<<40) || b.Len() != 1 {
		t.Fatal("permanent block did not survive Expire")
	}
}

func TestBlocklistTTLUpgradeRules(t *testing.T) {
	b := NewTTLBlocklist()
	b.BlockUntil(1, 100)
	b.BlockUntil(1, 50) // shorter TTL must not shorten the block
	if !b.BlockedAt(1, 75) {
		t.Error("re-block with shorter TTL shortened the block")
	}
	b.BlockUntil(1, 200) // longer TTL extends
	if !b.BlockedAt(1, 150) {
		t.Error("re-block with longer TTL did not extend")
	}
	b.Block(1) // permanent wins
	b.BlockUntil(1, 300)
	if !b.BlockedAt(1, 1<<40) {
		t.Error("TTL re-block demoted a permanent block")
	}
	b.Unblock(1)
	if b.BlockedAt(1, 0) || b.Len() != 0 {
		t.Error("unblock did not remove the entry")
	}
}

func TestBlocklistSnapshotSorted(t *testing.T) {
	b := NewTTLBlocklist()
	b.BlockUntil(9, 10)
	b.Block(2)
	b.BlockUntil(5, 7)
	snap := b.Snapshot()
	if len(snap) != 3 || snap[0].Node != 2 || snap[1].Node != 5 || snap[2].Node != 9 {
		t.Fatalf("bad snapshot %+v", snap)
	}
	if snap[0].Until != Permanent || snap[1].Until != 7 {
		t.Fatalf("snapshot lost expiries: %+v", snap)
	}
}

func TestBlocklistConcurrentUse(t *testing.T) {
	b := NewTTLBlocklist()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			b.BlockUntil(topology.NodeID(i%17), int64(i))
			b.Expire(int64(i - 8))
		}
	}()
	for i := 0; i < 2000; i++ {
		b.BlockedAt(topology.NodeID(i%17), int64(i))
		b.Len()
		b.Snapshot()
	}
	<-done
}

func TestBlocklistExpireEntriesSortedAudit(t *testing.T) {
	b := NewTTLBlocklist()
	b.BlockUntil(9, 100)
	b.BlockUntil(2, 80)
	b.BlockUntil(5, 300)
	b.Block(7) // permanent never lapses

	lapsed := b.ExpireEntries(100)
	if len(lapsed) != 2 || lapsed[0].Node != 2 || lapsed[1].Node != 9 {
		t.Fatalf("ExpireEntries(100) = %+v, want nodes [2 9]", lapsed)
	}
	if lapsed[0].Until != 80 || lapsed[1].Until != 100 {
		t.Fatalf("lapsed entries lost expiries: %+v", lapsed)
	}
	if b.Len() != 2 {
		t.Fatalf("Len after expiry = %d, want 2", b.Len())
	}
	if got := b.ExpireEntries(100); got != nil {
		t.Fatalf("second ExpireEntries(100) = %+v, want nil", got)
	}
	if got := b.ExpireEntries(1 << 40); len(got) != 1 || got[0].Node != 5 {
		t.Fatalf("ExpireEntries(max) = %+v, want node 5 only", got)
	}
	if !b.BlockedAt(7, 1<<40) {
		t.Fatal("permanent block lapsed")
	}
}
