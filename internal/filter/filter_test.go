package filter

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traceback"
)

func markedPacket(t *testing.T, m topology.Network, d *marking.DDPM, plan *packet.AddrPlan,
	src, dst topology.NodeID) *packet.Packet {
	t.Helper()
	r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	r.Sel = routing.RandomSelector{R: rng.NewStream(17)}
	path, err := r.Walk(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 0)
	d.OnInject(pk)
	for i := 0; i+1 < len(path); i++ {
		d.OnForward(path[i], path[i+1], pk)
	}
	return pk
}

func TestBlocklistDropsIdentifiedSource(t *testing.T) {
	m := topology.NewMesh2D(8)
	d, _ := marking.NewDDPM(m)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	victim := m.IndexOf(topology.Coord{7, 7})
	attacker := m.IndexOf(topology.Coord{0, 2})
	innocent := m.IndexOf(topology.Coord{3, 3})

	b := NewBlocklist(d, victim)
	b.Block(attacker)
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}

	atk := markedPacket(t, m, d, plan, attacker, victim)
	atk.Spoof(plan.AddrOf(innocent)) // spoofing does not help
	if b.Check(atk) != Drop {
		t.Error("attack packet accepted despite blocklist")
	}
	good := markedPacket(t, m, d, plan, innocent, victim)
	if b.Check(good) != Accept {
		t.Error("innocent packet dropped")
	}
	acc, drop := b.Counts()
	if acc != 1 || drop != 1 {
		t.Errorf("counts = %d/%d", acc, drop)
	}

	b.Unblock(attacker)
	if b.Check(markedPacket(t, m, d, plan, attacker, victim)) != Accept {
		t.Error("unblocked source still dropped")
	}
}

func TestBlocklistFailOpenOnGarbage(t *testing.T) {
	m := topology.NewMesh2D(4)
	d, _ := marking.NewDDPM(m)
	b := NewBlocklist(d, m.IndexOf(topology.Coord{0, 0}))
	b.Block(5)
	pk := &packet.Packet{}
	codec := d.Codec().(*marking.SignedFieldCodec)
	pk.Hdr.ID, _ = codec.Encode(topology.Vector{100, 100})
	if b.Check(pk) != Accept {
		t.Error("unattributable packet dropped (should fail open)")
	}
}

func TestBlocklistBlockAllFromIdentifier(t *testing.T) {
	m := topology.NewMesh2D(8)
	d, _ := marking.NewDDPM(m)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	victim := m.IndexOf(topology.Coord{7, 0})
	z1 := m.IndexOf(topology.Coord{0, 0})
	z2 := m.IndexOf(topology.Coord{0, 7})

	ident := traceback.NewDDPMIdentifier(d, victim)
	for i := 0; i < 20; i++ {
		ident.Observe(markedPacket(t, m, d, plan, z1, victim))
		ident.Observe(markedPacket(t, m, d, plan, z2, victim))
	}
	b := NewBlocklist(d, victim)
	b.BlockAll(ident.SourcesAbove(10))
	if b.Len() != 2 {
		t.Fatalf("blocked %d nodes, want 2", b.Len())
	}
	if b.Check(markedPacket(t, m, d, plan, z1, victim)) != Drop ||
		b.Check(markedPacket(t, m, d, plan, z2, victim)) != Drop {
		t.Error("zombies not blocked")
	}
}

func TestSignatureFilter(t *testing.T) {
	tbl := traceback.NewSignatureTable()
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	atk := packet.NewPacket(plan, 0, 5, packet.ProtoTCPSYN, 0)
	atk.Hdr.ID = 0xBEEF
	tbl.Learn(atk)

	f := NewSignatureFilter(tbl)
	probe := packet.NewPacket(plan, 2, 5, packet.ProtoTCPSYN, 0)
	probe.Hdr.ID = 0xBEEF
	if f.Check(probe) != Drop {
		t.Error("matching signature accepted")
	}
	probe.Hdr.ID = 0xBEE0
	if f.Check(probe) != Accept {
		t.Error("non-matching signature dropped")
	}
	acc, drop := f.Counts()
	if acc != 1 || drop != 1 {
		t.Errorf("counts = %d/%d", acc, drop)
	}
}

func TestIngressFilterBlocksSpoofing(t *testing.T) {
	plan := packet.NewAddrPlan(packet.DefaultBase, 16)
	f := NewIngressFilter(plan)

	honest := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	if f.CheckInjection(3, honest) != Accept {
		t.Error("honest packet dropped at ingress")
	}
	spoofed := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	spoofed.Spoof(plan.AddrOf(9))
	if f.CheckInjection(3, spoofed) != Drop {
		t.Error("spoofed packet passed ingress")
	}
	external := packet.NewPacket(plan, 3, 7, packet.ProtoTCPSYN, 0)
	external.Spoof(packet.AddrFrom4(192, 0, 2, 1))
	if f.CheckInjection(3, external) != Drop {
		t.Error("bogon source passed ingress")
	}
	acc, drop := f.Counts()
	if acc != 1 || drop != 2 {
		t.Errorf("counts = %d/%d", acc, drop)
	}
}

func TestVerdictString(t *testing.T) {
	if Accept.String() != "accept" || Drop.String() != "drop" {
		t.Error("bad verdict strings")
	}
}
