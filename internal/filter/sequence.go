package filter

// Sequenced blocklist mutations: the replication substrate for
// clustered ddpmd. Every state-changing local mutation (auto-block,
// operator POST, unblock) is assigned a per-list monotonic sequence
// number and a Lamport stamp and appended to an in-memory log; the
// cluster layer ships log suffixes to peers with anti-entropy gossip
// and applies remote mutations through ApplyRemote, which resolves
// conflicts last-writer-wins on the (stamp, origin) pair. Because each
// remote mutation is applied at most once per list (the cluster layer
// dedups on per-origin sequence numbers) and LWW application is
// order-independent across origins, every instance's blocklist
// converges to the same snapshot once gossip quiesces.
//
// TTL expiry is deliberately NOT sequenced: expiry instants are
// absolute in the shared timebase, so every instance prunes the same
// entries at the same clock reading without exchanging a byte.

import "repro/internal/topology"

// Mutation is one logged blocklist change. Seq is the list-local
// monotonic sequence number (1-based, dense); Stamp is a Lamport stamp
// merged across the fleet by ApplyRemote, so (Stamp, origin) totally
// orders conflicting writes to the same node.
type Mutation struct {
	Seq     uint64
	Stamp   uint64
	Node    topology.NodeID
	Until   int64
	Victim  topology.NodeID // blocking victim (topology.None when unknown)
	Unblock bool
}

// lwwTag records which write currently owns a node's blocklist entry.
type lwwTag struct {
	stamp  uint64
	origin uint64
}

func (t lwwTag) before(stamp, origin uint64) bool {
	return t.stamp < stamp || (t.stamp == stamp && t.origin < origin)
}

// SetOrigin names this list's instance for LWW tie-breaking; the
// cluster layer sets it once at startup, before any traffic. Zero (the
// default) is fine for single-instance daemons, which never receive
// remote mutations.
func (b *Blocklist) SetOrigin(origin uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.origin = origin
}

// Seq returns the sequence number of the latest local mutation — the
// digest value gossip advertises for this instance's own log.
func (b *Blocklist) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// MutationsAfter appends to dst every logged local mutation with
// Seq > after, in sequence order — the anti-entropy delta for a peer
// whose digest says it has this list's log through `after`.
func (b *Blocklist) MutationsAfter(after uint64, dst []Mutation) []Mutation {
	b.mu.Lock()
	defer b.mu.Unlock()
	if after >= b.seq {
		return dst
	}
	return append(dst, b.log[after:]...)
}

// record logs one state-changing local mutation. Caller holds b.mu.
func (b *Blocklist) record(n topology.NodeID, until int64, victim topology.NodeID, unblock bool) {
	b.seq++
	b.stamp++
	b.log = append(b.log, Mutation{Seq: b.seq, Stamp: b.stamp, Node: n, Until: until, Victim: victim, Unblock: unblock})
	if b.tags == nil {
		b.tags = make(map[topology.NodeID]lwwTag)
	}
	b.tags[n] = lwwTag{stamp: b.stamp, origin: b.origin}
}

// ApplyRemote applies one gossiped mutation minted by another
// instance. Unlike the local mutators it is unconditional modulo LWW:
// whatever (stamp, origin) pair most recently wrote the node wins,
// regardless of arrival order, and no local log entry is appended (the
// cluster layer relays remote logs itself, so re-logging would loop).
// It reports whether the mutation took effect.
func (b *Blocklist) ApplyRemote(m Mutation, origin uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m.Stamp > b.stamp {
		b.stamp = m.Stamp // Lamport merge: local mutations stay ahead
	}
	if tag, ok := b.tags[m.Node]; ok && !tag.before(m.Stamp, origin) {
		return false
	}
	if b.tags == nil {
		b.tags = make(map[topology.NodeID]lwwTag)
	}
	b.tags[m.Node] = lwwTag{stamp: m.Stamp, origin: origin}
	_, present := b.blocked[m.Node]
	if m.Unblock {
		if present {
			delete(b.blocked, m.Node)
			b.size.Add(-1)
		}
		return true
	}
	b.blocked[m.Node] = blockVal{until: m.Until, victim: m.Victim}
	if !present {
		b.size.Add(1)
	}
	return true
}
