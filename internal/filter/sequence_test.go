package filter

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

func TestBlocklistMutationLog(t *testing.T) {
	b := NewTTLBlocklist()
	b.SetOrigin(1)

	b.Block(3)
	b.BlockUntil(4, 100)
	b.BlockUntil(4, 50) // earlier expiry: no state change, no log entry
	b.Unblock(3)
	b.Unblock(9) // absent: no state change, no log entry

	if got := b.Seq(); got != 3 {
		t.Fatalf("Seq = %d, want 3", got)
	}
	log := b.MutationsAfter(0, nil)
	want := []Mutation{
		{Seq: 1, Stamp: 1, Node: 3, Until: Permanent, Victim: topology.None},
		{Seq: 2, Stamp: 2, Node: 4, Until: 100, Victim: topology.None},
		{Seq: 3, Stamp: 3, Node: 3, Until: Permanent, Victim: topology.None, Unblock: true},
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %+v, want %+v", log, want)
	}
	if got := b.MutationsAfter(2, nil); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("MutationsAfter(2) = %+v", got)
	}
	if got := b.MutationsAfter(3, nil); len(got) != 0 {
		t.Fatalf("MutationsAfter(3) = %+v, want empty", got)
	}
}

func TestBlocklistExpiryNotSequenced(t *testing.T) {
	b := NewTTLBlocklist()
	b.BlockUntil(7, 10)
	seq := b.Seq()
	if n := b.Expire(11); n != 1 {
		t.Fatalf("Expire = %d, want 1", n)
	}
	if got := b.Seq(); got != seq {
		t.Fatalf("expiry bumped seq %d -> %d", seq, got)
	}
}

// TestApplyRemoteLWWConvergence replays the same pair of conflicting
// mutations in both orders and demands identical final snapshots —
// the order-independence that lets anti-entropy gossip converge.
func TestApplyRemoteLWWConvergence(t *testing.T) {
	block := Mutation{Seq: 1, Stamp: 5, Node: 3, Until: Permanent}
	unblock := Mutation{Seq: 1, Stamp: 6, Node: 3, Until: Permanent, Unblock: true}

	ab := NewTTLBlocklist()
	ab.ApplyRemote(block, 10)
	ab.ApplyRemote(unblock, 20)

	ba := NewTTLBlocklist()
	ba.ApplyRemote(unblock, 20)
	if ba.ApplyRemote(block, 10) {
		t.Fatal("stale block applied over a newer unblock")
	}

	if !reflect.DeepEqual(ab.Snapshot(), ba.Snapshot()) {
		t.Fatalf("order-dependent outcome: %+v vs %+v", ab.Snapshot(), ba.Snapshot())
	}
	if ab.Len() != 0 {
		t.Fatalf("node still blocked after newer unblock: %+v", ab.Snapshot())
	}
}

func TestApplyRemoteTieBreaksOnOrigin(t *testing.T) {
	a := Mutation{Seq: 1, Stamp: 5, Node: 3, Until: 100}
	b := Mutation{Seq: 1, Stamp: 5, Node: 3, Until: 200}

	x := NewTTLBlocklist()
	x.ApplyRemote(a, 1)
	x.ApplyRemote(b, 2)
	y := NewTTLBlocklist()
	y.ApplyRemote(b, 2)
	y.ApplyRemote(a, 1)
	if !reflect.DeepEqual(x.Snapshot(), y.Snapshot()) {
		t.Fatalf("tie broke differently: %+v vs %+v", x.Snapshot(), y.Snapshot())
	}
	if !x.BlockedAt(3, 150) {
		t.Fatal("higher-origin write (until 200) should own the entry")
	}
}

// TestApplyRemoteLamportMerge: a local mutation minted after seeing a
// remote stamp must order after it, so the local write wins fleet-wide.
func TestApplyRemoteLamportMerge(t *testing.T) {
	b := NewTTLBlocklist()
	b.SetOrigin(1)
	b.ApplyRemote(Mutation{Seq: 1, Stamp: 41, Node: 3, Until: Permanent}, 9)
	b.Unblock(3)
	log := b.MutationsAfter(0, nil)
	if len(log) != 1 || log[0].Stamp <= 41 {
		t.Fatalf("local mutation stamp %d not past remote stamp 41: %+v", log[0].Stamp, log)
	}
	// The remote origin re-applying its old block must now lose.
	if b.ApplyRemote(Mutation{Seq: 2, Stamp: 41, Node: 3, Until: Permanent}, 9) {
		t.Fatal("stale remote re-block won over the newer local unblock")
	}
	if b.Len() != 0 {
		t.Fatalf("blocklist = %+v, want empty", b.Snapshot())
	}
}

func TestApplyRemoteSizeAccounting(t *testing.T) {
	b := NewTTLBlocklist()
	b.ApplyRemote(Mutation{Seq: 1, Stamp: 1, Node: 5, Until: Permanent}, 2)
	if b.Empty() || !b.BlockedAt(5, 0) {
		t.Fatal("remote block not visible")
	}
	b.ApplyRemote(Mutation{Seq: 2, Stamp: 2, Node: 5, Until: 99}, 2)
	if got := b.Len(); got != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", got)
	}
	b.ApplyRemote(Mutation{Seq: 3, Stamp: 3, Node: 5, Unblock: true}, 2)
	if !b.Empty() {
		t.Fatal("remote unblock not visible")
	}
	var nodes []topology.NodeID
	for _, e := range b.Snapshot() {
		nodes = append(nodes, e.Node)
	}
	if len(nodes) != 0 {
		t.Fatalf("snapshot = %v, want empty", nodes)
	}
}
