package detect

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
)

func feedWindows(d Detector, startWindow int, window eventq.Time, perWindow []int) {
	for w, count := range perWindow {
		base := eventq.Time(startWindow+w) * window
		for i := 0; i < count; i++ {
			d.Observe(base+eventq.Time(i)%window, pkt(1, packet.ProtoRaw))
		}
	}
}

func TestCUSUMDetectsSustainedShift(t *testing.T) {
	d := NewCUSUM(100, 5, 30)
	// Baseline ≈ 10/window, then a sustained shift to 25/window —
	// under a 3x rate threshold but clearly anomalous cumulatively.
	quiet := []int{10, 10, 11, 9, 10, 10}
	feedWindows(d, 0, 100, quiet)
	if d.Alarmed() {
		t.Fatal("alarmed on baseline")
	}
	flood := []int{25, 25, 25, 25, 25}
	feedWindows(d, len(quiet), 100, flood)
	d.Observe(eventq.Time(len(quiet)+len(flood)+1)*100, pkt(1, packet.ProtoRaw))
	if !d.Alarmed() {
		t.Fatalf("CUSUM missed a sustained 2.5x shift (g=%v)", d.G())
	}
}

func TestCUSUMAbsorbsSingleBurst(t *testing.T) {
	d := NewCUSUM(100, 5, 100)
	quiet := []int{10, 10, 10, 10}
	feedWindows(d, 0, 100, quiet)
	// One 40-packet window, then quiet again: g rises then drains.
	feedWindows(d, 4, 100, []int{40, 10, 10, 10, 10, 10})
	d.Observe(11*100, pkt(1, packet.ProtoRaw))
	if d.Alarmed() {
		t.Errorf("CUSUM alarmed on a single burst (g=%v)", d.G())
	}
	if d.G() > 30 {
		t.Errorf("g did not drain after the burst: %v", d.G())
	}
}

func TestCUSUMBaselineNotPoisonedByAttack(t *testing.T) {
	d := NewCUSUM(100, 5, 1e9) // huge threshold: never alarms
	feedWindows(d, 0, 100, []int{10, 10, 10})
	feedWindows(d, 3, 100, []int{100, 100, 100, 100})
	// After the "attack", g must have grown roughly 4×(100−15): the
	// baseline stayed near 10 instead of chasing the flood.
	d.Observe(8*100, pkt(1, packet.ProtoRaw))
	if d.G() < 300 {
		t.Errorf("g = %v; baseline appears to have chased the attack", d.G())
	}
}

func TestCUSUMSpecValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCUSUM(0, 1, 1) },
		func() { NewCUSUM(10, 0, 1) },
		func() { NewCUSUM(10, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad CUSUM spec accepted")
				}
			}()
			f()
		}()
	}
	if NewCUSUM(10, 1, 1).Name() != "cusum" {
		t.Error("bad name")
	}
}
