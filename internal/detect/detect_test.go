package detect

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

var plan = packet.NewAddrPlan(packet.DefaultBase, 64)

// pkt builds a delivered packet whose header source is node src.
func pkt(src int, proto packet.Proto) *packet.Packet {
	p := packet.NewPacket(plan, topology.NodeID(src), 1, proto, 0)
	return p
}

func TestRateDetectorFiresOnFlood(t *testing.T) {
	d := NewRateDetector(100, 3, 10)
	// Baseline: 5 packets per 100-tick window for 5 windows.
	now := eventq.Time(0)
	for w := 0; w < 5; w++ {
		for i := 0; i < 5; i++ {
			d.Observe(now, pkt(1, packet.ProtoRaw))
			now += 20
		}
	}
	if d.Alarmed() {
		t.Fatal("alarmed on baseline traffic")
	}
	// Flood: 100 packets in one window.
	for i := 0; i < 100; i++ {
		d.Observe(now, pkt(2, packet.ProtoRaw))
		now++
	}
	// Push time forward to close the flooded window.
	d.Observe(now+200, pkt(1, packet.ProtoRaw))
	if !d.Alarmed() {
		t.Fatal("rate detector missed a 20x flood")
	}
	if d.AlarmedAt() <= 0 {
		t.Errorf("AlarmedAt = %d", d.AlarmedAt())
	}
}

func TestRateDetectorMinCountSuppressesIdleSpikes(t *testing.T) {
	d := NewRateDetector(100, 2, 50)
	// Nearly idle baseline, then a small absolute burst below MinCount.
	d.Observe(10, pkt(1, packet.ProtoRaw))
	d.Observe(150, pkt(1, packet.ProtoRaw))
	for i := 0; i < 20; i++ {
		d.Observe(220+eventq.Time(i), pkt(1, packet.ProtoRaw))
	}
	d.Observe(500, pkt(1, packet.ProtoRaw))
	if d.Alarmed() {
		t.Error("alarmed below the absolute floor")
	}
}

func TestRateDetectorSpecValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRateDetector(0, 3, 1) },
		func() { NewRateDetector(10, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad spec accepted")
				}
			}()
			f()
		}()
	}
}

func TestEntropyDetectorFiresOnRandomSpoofing(t *testing.T) {
	d := NewEntropyDetector(100, 1.5)
	now := eventq.Time(0)
	// Baseline: traffic from 3 fixed peers → entropy ≈ 1.58 bits.
	for w := 0; w < 6; w++ {
		for i := 0; i < 30; i++ {
			d.Observe(now, pkt(i%3, packet.ProtoRaw))
			now += 3
		}
		now = eventq.Time((w + 1) * 100)
	}
	if d.Alarmed() {
		t.Fatal("alarmed on baseline")
	}
	// Random spoofing across 64 sources → entropy ≈ 6 bits.
	r := rng.NewStream(5)
	for i := 0; i < 200; i++ {
		d.Observe(now, pkt(r.Intn(64), packet.ProtoTCPSYN))
		now++
	}
	d.Observe(now+300, pkt(0, packet.ProtoRaw))
	if !d.Alarmed() {
		t.Fatal("entropy detector missed random spoofing")
	}
}

func TestEntropyDetectorFiresOnCollapse(t *testing.T) {
	d := NewEntropyDetector(100, 1.5)
	now := eventq.Time(0)
	// Baseline: uniform across 32 peers (5 bits).
	r := rng.NewStream(6)
	for w := 0; w < 6; w++ {
		for i := 0; i < 60; i++ {
			d.Observe(now, pkt(r.Intn(32), packet.ProtoRaw))
		}
		now = eventq.Time((w + 1) * 100)
	}
	if d.Alarmed() {
		t.Fatal("alarmed on baseline")
	}
	// Fixed-source flood (0 bits).
	for i := 0; i < 100; i++ {
		d.Observe(now, pkt(7, packet.ProtoTCPSYN))
	}
	d.Observe(now+300, pkt(7, packet.ProtoRaw))
	if !d.Alarmed() {
		t.Fatal("entropy detector missed the collapse")
	}
}

func TestEntropyDetectorSpecValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad entropy spec accepted")
		}
	}()
	NewEntropyDetector(10, 0)
}

func TestSYNTableHalfOpenLifecycle(t *testing.T) {
	d := NewSYNTable(10, 1000)
	d.Observe(0, pkt(1, packet.ProtoTCPSYN))
	d.Observe(1, pkt(2, packet.ProtoTCPSYN))
	if d.HalfOpen() != 2 {
		t.Errorf("HalfOpen = %d", d.HalfOpen())
	}
	// Completing the handshake removes the entry.
	d.Observe(2, pkt(1, packet.ProtoTCPACK))
	if d.HalfOpen() != 1 {
		t.Errorf("HalfOpen after ACK = %d", d.HalfOpen())
	}
	// Non-TCP traffic is ignored.
	d.Observe(3, pkt(9, packet.ProtoUDP))
	if d.HalfOpen() != 1 {
		t.Error("UDP affected the SYN table")
	}
	if d.Alarmed() {
		t.Error("alarmed under capacity")
	}
}

func TestSYNTableAlarmsAtCapacity(t *testing.T) {
	d := NewSYNTable(20, 10000)
	for i := 0; i < 25; i++ {
		d.Observe(eventq.Time(i), pkt(i, packet.ProtoTCPSYN))
	}
	if !d.Alarmed() {
		t.Fatal("SYN flood not detected")
	}
	if d.Peak() < 20 {
		t.Errorf("Peak = %d", d.Peak())
	}
}

func TestSYNTableTimeoutReaping(t *testing.T) {
	d := NewSYNTable(100, 50)
	for i := 0; i < 10; i++ {
		d.Observe(eventq.Time(i), pkt(i, packet.ProtoTCPSYN))
	}
	// 200 ticks later all entries are stale.
	d.Observe(200, pkt(50, packet.ProtoTCPSYN))
	if d.HalfOpen() != 1 {
		t.Errorf("HalfOpen after timeout = %d, want 1", d.HalfOpen())
	}
}

func TestSYNTableSpecValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad SYN spec accepted")
		}
	}()
	NewSYNTable(0, 10)
}

func TestFanout(t *testing.T) {
	rate := NewRateDetector(100, 3, 5)
	syn := NewSYNTable(5, 10000)
	f := Fanout{rate, syn}
	if f.Alarmed() {
		t.Fatal("fresh fanout alarmed")
	}
	for i := 0; i < 10; i++ {
		f.Observe(eventq.Time(i), pkt(i, packet.ProtoTCPSYN))
	}
	if !f.Alarmed() {
		t.Fatal("fanout missed the SYN alarm")
	}
	if f.AlarmedAt() != syn.AlarmedAt() {
		t.Errorf("fanout AlarmedAt = %d, want %d", f.AlarmedAt(), syn.AlarmedAt())
	}
	if f.Name() == "" || rate.Name() == "" || syn.Name() == "" {
		t.Error("empty detector name")
	}
}
