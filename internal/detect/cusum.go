package detect

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/stats"
)

// CUSUM is the sequential change-point detector used for SYN-flood
// detection in the literature (Wang–Zhang–Shin style): per window of
// traffic it accumulates g ← max(0, g + x − (μ̂ + Slack)), where μ̂ is
// an EWMA baseline of the windowed count learned during quiet periods,
// and alarms when g exceeds Threshold. Compared to a plain rate
// threshold it reacts to *sustained* small shifts (low-and-slow floods)
// while absorbing single bursty windows.
type CUSUM struct {
	alarm
	Window    eventq.Time
	Slack     float64 // tolerated per-window excess over the baseline
	Threshold float64 // cumulative excess that triggers the alarm

	base     *stats.EWMA
	g        float64
	winStart eventq.Time
	winCount int64
	trained  int
}

// NewCUSUM builds the detector; all parameters must be positive.
func NewCUSUM(window eventq.Time, slack, threshold float64) *CUSUM {
	if window <= 0 || slack <= 0 || threshold <= 0 {
		panic(fmt.Sprintf("detect: bad CUSUM spec window=%d slack=%v threshold=%v", window, slack, threshold))
	}
	return &CUSUM{Window: window, Slack: slack, Threshold: threshold, base: stats.NewEWMA(0.3)}
}

func (d *CUSUM) Name() string { return "cusum" }

// G exposes the current cumulative statistic (diagnostics).
func (d *CUSUM) G() float64 { return d.g }

func (d *CUSUM) Observe(now eventq.Time, _ *packet.Packet) {
	for now-d.winStart >= d.Window {
		d.closeWindow()
	}
	d.winCount++
}

func (d *CUSUM) closeWindow() {
	x := float64(d.winCount)
	d.winCount = 0
	d.winStart += d.Window
	if d.trained < 2 {
		// Train the baseline on the first quiet windows.
		d.base.Update(x)
		d.trained++
		return
	}
	d.g += x - (d.base.Value() + d.Slack)
	if d.g < 0 {
		d.g = 0
	}
	if d.g > d.Threshold {
		d.raise(d.winStart)
		return
	}
	// Only quiet windows update the baseline, so the attack itself
	// cannot drag μ̂ upward and mask itself.
	if x <= d.base.Value()+d.Slack {
		d.base.Update(x)
	}
}
