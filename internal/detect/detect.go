// Package detect provides the DDoS detection substrate the paper
// assumes exists (§6.1: "we assumed there exists an efficient DDoS
// detection method in cluster interconnects"). Three victim-NIC
// detectors are implemented so end-to-end experiments can run the whole
// detect → identify → block pipeline:
//
//   - RateDetector: windowed packet-rate threshold with EWMA baseline
//   - EntropyDetector: source-address entropy anomaly (random spoofing
//     inflates entropy, fixed spoofing collapses it)
//   - SYNTable: half-open connection counting for SYN floods, the
//     paper's §1 example ("as many TCP half-open connections as the
//     victim host is limited to receive")
//
// Detectors see only header fields, never simulator ground truth.
package detect

import (
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/packet"
	"repro/internal/stats"
)

// Detector consumes the victim's delivered packets and raises an alarm.
type Detector interface {
	Name() string
	// Observe processes one delivered packet.
	Observe(now eventq.Time, pk *packet.Packet)
	// Alarmed reports whether the detector has fired; AlarmedAt returns
	// the time of the first alarm (valid only when Alarmed).
	Alarmed() bool
	AlarmedAt() eventq.Time
}

type alarm struct {
	fired bool
	at    eventq.Time
}

func (a *alarm) raise(now eventq.Time) {
	if !a.fired {
		a.fired = true
		a.at = now
	}
}

func (a *alarm) Alarmed() bool          { return a.fired }
func (a *alarm) AlarmedAt() eventq.Time { return a.at }

// RateDetector alarms when a window's packet count exceeds Factor times
// the EWMA baseline of previous windows (and an absolute floor, so an
// idle victim does not alarm on its first busy window).
type RateDetector struct {
	alarm
	Window   eventq.Time
	Factor   float64
	MinCount int64

	base      *stats.EWMA
	winStart  eventq.Time
	winCount  int64
	windowsOK int
}

// NewRateDetector builds a detector; window must be positive.
func NewRateDetector(window eventq.Time, factor float64, minCount int64) *RateDetector {
	if window <= 0 || factor <= 1 {
		panic(fmt.Sprintf("detect: bad rate detector spec window=%d factor=%v", window, factor))
	}
	return &RateDetector{Window: window, Factor: factor, MinCount: minCount, base: stats.NewEWMA(0.3)}
}

func (d *RateDetector) Name() string { return "rate" }

func (d *RateDetector) Observe(now eventq.Time, _ *packet.Packet) {
	for now-d.winStart >= d.Window {
		d.closeWindow()
	}
	d.winCount++
}

func (d *RateDetector) closeWindow() {
	count := d.winCount
	d.winCount = 0
	d.winStart += d.Window
	if d.windowsOK >= 1 && float64(count) > d.Factor*d.base.Value() && count >= d.MinCount {
		d.raise(d.winStart)
		return
	}
	d.base.Update(float64(count))
	d.windowsOK++
}

// EntropyDetector alarms when the windowed source-address entropy
// deviates from its EWMA baseline by more than Delta bits in either
// direction.
type EntropyDetector struct {
	alarm
	Window eventq.Time
	Delta  float64

	base      *stats.EWMA
	winStart  eventq.Time
	counter   *stats.Counter[packet.Addr]
	windowsOK int
}

// NewEntropyDetector builds the detector.
func NewEntropyDetector(window eventq.Time, delta float64) *EntropyDetector {
	if window <= 0 || delta <= 0 {
		panic(fmt.Sprintf("detect: bad entropy detector spec window=%d delta=%v", window, delta))
	}
	return &EntropyDetector{
		Window:  window,
		Delta:   delta,
		base:    stats.NewEWMA(0.3),
		counter: stats.NewCounter[packet.Addr](),
	}
}

func (d *EntropyDetector) Name() string { return "entropy" }

func (d *EntropyDetector) Observe(now eventq.Time, pk *packet.Packet) {
	for now-d.winStart >= d.Window {
		d.closeWindow()
	}
	d.counter.Add(pk.Hdr.Src)
}

func (d *EntropyDetector) closeWindow() {
	h := d.counter.Entropy()
	n := d.counter.Total()
	d.counter.Reset()
	d.winStart += d.Window
	if n == 0 {
		return // empty window: keep the baseline
	}
	if d.windowsOK >= 2 && math.Abs(h-d.base.Value()) > d.Delta {
		d.raise(d.winStart)
		return
	}
	d.base.Update(h)
	d.windowsOK++
}

// SYNTable tracks half-open TCP connections per the paper's SYN-flood
// description: a SYN from address A opens an entry; a later non-SYN
// segment from A completes (removes) it; exceeding Capacity alarms.
// Entries also age out after Timeout ticks, modeling the victim OS
// reaping stale half-opens.
type SYNTable struct {
	alarm
	Capacity int
	Timeout  eventq.Time

	halfOpen map[packet.Addr]eventq.Time
	peak     int
}

// NewSYNTable builds the table.
func NewSYNTable(capacity int, timeout eventq.Time) *SYNTable {
	if capacity <= 0 || timeout <= 0 {
		panic(fmt.Sprintf("detect: bad SYN table spec cap=%d timeout=%d", capacity, timeout))
	}
	return &SYNTable{Capacity: capacity, Timeout: timeout, halfOpen: make(map[packet.Addr]eventq.Time)}
}

func (d *SYNTable) Name() string { return "syn-table" }

func (d *SYNTable) Observe(now eventq.Time, pk *packet.Packet) {
	// Reap stale half-opens first.
	for a, t0 := range d.halfOpen {
		if now-t0 > d.Timeout {
			delete(d.halfOpen, a)
		}
	}
	switch pk.Hdr.Proto {
	case packet.ProtoTCPSYN:
		d.halfOpen[pk.Hdr.Src] = now
		if len(d.halfOpen) > d.peak {
			d.peak = len(d.halfOpen)
		}
		if len(d.halfOpen) >= d.Capacity {
			d.raise(now)
		}
	case packet.ProtoTCPACK:
		delete(d.halfOpen, pk.Hdr.Src)
	}
}

// HalfOpen returns the current number of half-open entries; Peak the
// maximum ever reached.
func (d *SYNTable) HalfOpen() int { return len(d.halfOpen) }
func (d *SYNTable) Peak() int     { return d.peak }

// Fanout combines several detectors behind one Observe call; it alarms
// when any member alarms.
type Fanout []Detector

func (f Fanout) Name() string { return "fanout" }

func (f Fanout) Observe(now eventq.Time, pk *packet.Packet) {
	for _, d := range f {
		d.Observe(now, pk)
	}
}

func (f Fanout) Alarmed() bool {
	for _, d := range f {
		if d.Alarmed() {
			return true
		}
	}
	return false
}

func (f Fanout) AlarmedAt() eventq.Time {
	var first eventq.Time
	found := false
	for _, d := range f {
		if d.Alarmed() && (!found || d.AlarmedAt() < first) {
			first = d.AlarmedAt()
			found = true
		}
	}
	return first
}
