package detect

import (
	"sync"
	"testing"

	"repro/internal/eventq"
	"repro/internal/packet"
)

func TestSynchronizedDetectorConcurrentObserveAndPoll(t *testing.T) {
	d := Synchronized(NewCUSUM(100, 2, 50))
	if d.Name() != "cusum" {
		t.Fatalf("wrapper changed the name to %q", d.Name())
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pk := &packet.Packet{}
		// Quiet baseline windows, then a sustained flood.
		for now := eventq.Time(0); now < 1000; now += 10 {
			d.Observe(now, pk)
		}
		for now := eventq.Time(1000); now < 20000; now++ {
			d.Observe(now, pk)
		}
	}()
	for i := 0; i < 1000; i++ {
		d.Alarmed()
		d.AlarmedAt()
	}
	wg.Wait()
	if !d.Alarmed() {
		t.Fatal("sustained flood never alarmed through the wrapper")
	}
	inner, ok := d.(interface{ Unwrap() Detector })
	if !ok {
		t.Fatal("wrapper does not expose Unwrap")
	}
	if _, ok := inner.Unwrap().(*CUSUM); !ok {
		t.Fatal("Unwrap lost the concrete type")
	}
}
