package detect

import (
	"sync"

	"repro/internal/eventq"
	"repro/internal/packet"
)

// Synchronized wraps a detector with a mutex so one goroutine can feed
// it while another (a metrics scraper, an admin plane) polls its alarm
// state. Closed-loop simulations don't need it — the event loop is
// single-threaded — but the ddpmd daemon's shard workers and HTTP
// handlers do.
func Synchronized(d Detector) Detector { return &syncDetector{inner: d} }

type syncDetector struct {
	mu    sync.Mutex
	inner Detector
}

func (s *syncDetector) Name() string { return s.inner.Name() }

func (s *syncDetector) Observe(now eventq.Time, pk *packet.Packet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Observe(now, pk)
}

func (s *syncDetector) Alarmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Alarmed()
}

func (s *syncDetector) AlarmedAt() eventq.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.AlarmedAt()
}

// Unwrap exposes the inner detector for scheme-specific inspection
// (e.g. CUSUM.G()); callers touching it concurrently are on their own.
func (s *syncDetector) Unwrap() Detector { return s.inner }

// InnerLocker is implemented by synchronized detectors that can hand a
// batch consumer their inner detector under a held lock, so feeding N
// records costs one lock acquisition instead of N.
type InnerLocker interface {
	// LockInner acquires the detector's lock and returns the inner
	// unsynchronized detector. The caller must call UnlockInner when
	// done and must not retain the inner pointer past it.
	LockInner() Detector
	UnlockInner()
}

func (s *syncDetector) LockInner() Detector {
	s.mu.Lock()
	return s.inner
}

func (s *syncDetector) UnlockInner() { s.mu.Unlock() }
