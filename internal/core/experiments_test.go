package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func testStream() *rng.Stream { return rng.NewStream(12345) }

func TestE1AnalyticFormula(t *testing.T) {
	// ln(8)/(0.1 · 0.9^7) ≈ 43.5
	got := E1Analytic(0.1, 8)
	want := math.Log(8) / (0.1 * math.Pow(0.9, 7))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("E1Analytic = %v, want %v", got, want)
	}
}

func TestRunE1MatchesAnalyticShape(t *testing.T) {
	// Convergence cost must grow with d and roughly track the bound
	// (within a small constant factor — the bound is loose).
	short, err := RunE1(0.1, 4, 40, 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunE1(0.1, 16, 40, 2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if long.MeanPkts <= short.MeanPkts {
		t.Errorf("packets(d=16)=%v <= packets(d=4)=%v", long.MeanPkts, short.MeanPkts)
	}
	for _, row := range []E1Row{short, long} {
		if row.MeanPkts < float64(row.D) {
			t.Errorf("d=%d: mean %v below information floor d", row.D, row.MeanPkts)
		}
		if row.MeanPkts > 10*row.Analytic+100 {
			t.Errorf("d=%d: mean %v far above analytic %v", row.D, row.MeanPkts, row.Analytic)
		}
	}
}

func TestRunE1Validation(t *testing.T) {
	if _, err := RunE1(0.1, 1, 5, 1, 100); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestRunE2DeterministicVsAdaptive(t *testing.T) {
	det, err := RunE2(Mesh2D(8), "xy", 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if det.SigsPerFlowMean != 1 {
		t.Errorf("deterministic sigs/flow = %v, want 1", det.SigsPerFlowMean)
	}
	if det.SrcsPerSigMean <= 1 {
		t.Errorf("deterministic srcs/sig = %v: expected some ambiguity", det.SrcsPerSigMean)
	}

	ad, err := RunE2(Mesh2D(8), "minimal-adaptive", 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ad.SigsPerFlowMean < 2*det.SigsPerFlowMean {
		t.Errorf("adaptive sigs/flow = %v, deterministic = %v: expected shattering",
			ad.SigsPerFlowMean, det.SigsPerFlowMean)
	}
	if det.FlowsMeasured != 63 || ad.FlowsMeasured != 63 {
		t.Errorf("flows = %d/%d", det.FlowsMeasured, ad.FlowsMeasured)
	}
}

func TestRunE3PerfectAccuracy(t *testing.T) {
	cases := []struct {
		spec    TopoSpec
		routing string
	}{
		{Mesh2D(8), "xy"},
		{Mesh2D(8), "west-first"},
		{Mesh2D(8), "fully-adaptive"},
		{Torus2D(8), "dor"},
		{Torus2D(8), "minimal-adaptive"},
		{Cube(6), "dor"},
		{Cube(6), "minimal-adaptive"},
		{Mesh(16, 16, 32), "minimal-adaptive"},
	}
	for _, tc := range cases {
		row, err := RunE3(tc.spec, tc.routing, 300, 5)
		if err != nil {
			t.Fatalf("%v/%s: %v", tc.spec, tc.routing, err)
		}
		if row.Accuracy() != 1.0 {
			t.Errorf("%v/%s: accuracy %.4f (correct %d/%d, undecoded %d)",
				tc.spec, tc.routing, row.Accuracy(), row.Correct, row.Trials, row.Undecoded)
		}
	}
}

func TestRunE5EndToEnd(t *testing.T) {
	row, err := RunE5(E5Config{
		Topo:        Torus2D(8),
		Zombies:     4,
		Seed:        9,
		AttackGap:   4,
		Background:  0.002,
		WarmupTicks: 2000,
		AttackTicks: 3000,
		AfterTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Detected {
		t.Error("flood not detected")
	}
	if row.Detected && row.DetectedAt < 2000 {
		t.Errorf("detected at %d, before the attack started", row.DetectedAt)
	}
	if !row.IdentifiedAll {
		t.Error("not all zombies identified")
	}
	if row.FalsePositives != 0 {
		t.Errorf("%d innocent nodes blocked", row.FalsePositives)
	}
	if row.BlockedFraction < 0.99 {
		t.Errorf("blocked fraction = %v, want ~1 (DDPM attributes every packet)", row.BlockedFraction)
	}
	if row.AttackPkts == 0 {
		t.Error("no attack packets launched")
	}
}
