package core

import (
	"fmt"
	"runtime"
	"sync"
)

// RunParallel fans n independent jobs across a bounded worker pool and
// returns their results in input order. Experiment cells are
// embarrassingly parallel (each builds its own cluster, RNG streams and
// event queue — nothing is shared), so sweeps scale with cores; the
// simulator itself stays single-threaded by design.
//
// workers ≤ 0 uses GOMAXPROCS. The first job error cancels nothing —
// all jobs run to completion (they are cheap and side-effect free) —
// but only the lowest-index error is returned, keeping failures
// deterministic regardless of scheduling.
func RunParallel[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative job count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
