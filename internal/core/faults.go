package core

import (
	"fmt"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------
// E6 — fault tolerance: Figure 2 made quantitative. Fail a random
// fraction of cables and measure, per routing algorithm, how many flows
// still deliver — and confirm DDPM identification stays exact on every
// delivered packet (misroutes around faults included).
// ---------------------------------------------------------------------

// E6Row is one (failure fraction, routing) measurement.
type E6Row struct {
	Topo         string
	Routing      string
	FailFraction float64
	FailedCables int
	Flows        int
	Delivered    int
	DDPMCorrect  int // of the delivered flows
}

// DeliveryRate returns delivered/flows.
func (r E6Row) DeliveryRate() float64 {
	if r.Flows == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Flows)
}

// RunE6 fails failFraction of the cables (both directions), routes
// `flows` random (src,dst) pairs, and scores delivery + identification.
// The misroute budget gives adaptive algorithms room to detour.
func RunE6(spec TopoSpec, routingName string, failFraction float64, flows int, seed uint64) (E6Row, error) {
	if failFraction < 0 || failFraction >= 1 {
		return E6Row{}, fmt.Errorf("core: failure fraction %v outside [0,1)", failFraction)
	}
	net, err := BuildTopology(spec)
	if err != nil {
		return E6Row{}, err
	}
	alg, err := BuildRouting(routingName, net)
	if err != nil {
		return E6Row{}, err
	}
	d, err := marking.NewDDPM(net)
	if err != nil {
		return E6Row{}, err
	}
	src := rng.NewSource(seed)
	r := routing.NewRouter(net, alg)
	r.Sel = routing.RandomSelector{R: src.Stream("sel")}
	r.MisrouteBudget = 2 * len(net.Dims())

	// Fail cables (undirected) uniformly.
	row := E6Row{Topo: net.Name(), Routing: routingName, FailFraction: failFraction}
	failStream := src.Stream("fail")
	for _, l := range topology.Links(net) {
		if l.From < l.To && failStream.Float64() < failFraction {
			r.State.FailBoth(l.From, l.To)
			row.FailedCables++
		}
	}

	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	pairStream := src.Stream("pairs")
	for row.Flows < flows {
		a := topology.NodeID(pairStream.Intn(net.NumNodes()))
		b := topology.NodeID(pairStream.Intn(net.NumNodes()))
		if a == b {
			continue
		}
		row.Flows++
		path, err := r.Walk(a, b, 0)
		if err != nil {
			continue // stranded by failures: not delivered
		}
		row.Delivered++
		pk := packet.NewPacket(plan, a, b, packet.ProtoTCPSYN, 0)
		pk.Hdr.ID = uint16(pairStream.Intn(1 << 16))
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		if got, ok := d.IdentifySource(b, pk.Hdr.ID); ok && got == a {
			row.DDPMCorrect++
		}
	}
	return row, nil
}
