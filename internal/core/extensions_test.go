package core

import "testing"

func TestRunX1PerfectAccuracy(t *testing.T) {
	for _, cfg := range [][2]int{{2, 4}, {4, 3}, {4, 6}} {
		row, err := RunX1(cfg[0], cfg[1], 200, 3)
		if err != nil {
			t.Fatalf("k=%d n=%d: %v", cfg[0], cfg[1], err)
		}
		if row.Correct != row.Trials {
			t.Errorf("%s: %d/%d identified", row.Tree, row.Correct, row.Trials)
		}
		if row.Bits > 16 {
			t.Errorf("%s: %d bits", row.Tree, row.Bits)
		}
	}
	if _, err := RunX1(2, 13, 10, 1); err == nil {
		t.Error("over-wide fat tree accepted")
	}
}

func TestRunX2CoverageShape(t *testing.T) {
	full, err := RunX2(4, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if full.DeterministicCov != 1.0 {
		t.Errorf("unbudgeted cover = %.3f, want 1.0", full.DeterministicCov)
	}
	small, err := RunX2(4, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if small.Monitors != 1 {
		t.Errorf("budget 1 used %d monitors", small.Monitors)
	}
	if small.DeterministicCov >= full.DeterministicCov {
		t.Errorf("1 monitor covered %.3f >= full %.3f", small.DeterministicCov, full.DeterministicCov)
	}
	if small.AdaptiveCov <= 0 || small.AdaptiveCov > 1 {
		t.Errorf("adaptive coverage %.3f out of range", small.AdaptiveCov)
	}
}

func TestFatTreeScalabilityRows(t *testing.T) {
	rows := FatTreeScalabilityRows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r == "" {
			t.Error("empty row")
		}
	}
}
