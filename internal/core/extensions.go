package core

import (
	"fmt"

	"repro/internal/fattree"
	"repro/internal/packet"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------
// X1 — fat-tree port stamping (§6.3 future work): accuracy and the
// Table 3 analog for indirect networks.
// ---------------------------------------------------------------------

// X1Row reports one fat-tree configuration.
type X1Row struct {
	Tree    string
	Leaves  int
	Bits    int
	Trials  int
	Correct int
}

// RunX1 routes trials random flows with fully adaptive (random) up-port
// selection and hostile MF preloads, then checks port-stamping
// identification.
func RunX1(k, n, trials int, seed uint64) (X1Row, error) {
	tr, err := fattree.New(k, n)
	if err != nil {
		return X1Row{}, err
	}
	st, err := fattree.NewStamper(tr)
	if err != nil {
		return X1Row{}, err
	}
	r := rng.NewStream(seed)
	choose := fattree.RandomUp(rng.NewStream(seed + 1))
	row := X1Row{Tree: tr.Name(), Leaves: tr.NumLeaves(), Bits: st.Bits()}
	for row.Trials < trials {
		src := fattree.LeafID(r.Intn(tr.NumLeaves()))
		dst := fattree.LeafID(r.Intn(tr.NumLeaves()))
		hops, err := tr.Route(src, dst, tr.NCALevel(src, dst), choose)
		if err != nil {
			return row, err
		}
		pk := &packet.Packet{}
		pk.Hdr.ID = uint16(r.Intn(1 << 16))
		st.Apply(pk, hops)
		row.Trials++
		if got, ok := st.Identify(dst, pk.Hdr.ID); ok && got == src {
			row.Correct++
		}
	}
	return row, nil
}

// ---------------------------------------------------------------------
// X2 — trusted-switch placement (§6.1 future work): greedy monitor
// covers under deterministic routing and their degradation under
// adaptive routing.
// ---------------------------------------------------------------------

// X2Row reports one placement configuration.
type X2Row struct {
	Topo             string
	Pairs            int
	Monitors         int
	DeterministicCov float64 // fraction of pairs covered (XY paths)
	AdaptiveCov      float64 // sampled fraction under minimal adaptive
}

// RunX2 computes the greedy cover for all-pairs XY traffic on a k×k
// mesh, optionally truncated to budget monitors, then measures its
// probabilistic coverage under adaptive routing.
func RunX2(k, budget, adaptiveTrials int, seed uint64) (X2Row, error) {
	m := topology.NewMesh2D(k)
	pairs := placement.AllPairs(m)
	det := routing.NewRouter(m, routing.NewXY(m))
	cov, err := placement.BuildCoverage(det, pairs)
	if err != nil {
		return X2Row{}, err
	}
	monitors, _ := cov.Greedy(budget)
	row := X2Row{
		Topo:     m.Name(),
		Pairs:    len(pairs),
		Monitors: len(monitors),
	}
	row.DeterministicCov = float64(cov.Covered(monitors)) / float64(len(pairs))

	ad := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	ad.Sel = routing.RandomSelector{R: rng.NewStream(seed)}
	frac, err := placement.AdaptiveCoverage(ad, pairs, monitors, adaptiveTrials)
	if err != nil {
		return X2Row{}, err
	}
	row.AdaptiveCov = frac
	return row, nil
}

// FatTreeScalabilityRows returns the fat-tree analog of Table 3: for
// each arity, the deepest tree whose stamp fits the 16-bit MF.
func FatTreeScalabilityRows() []string {
	var out []string
	for _, k := range []int{2, 4, 8, 16} {
		n, leaves := fattree.MaxLeavesIn16Bits(k)
		out = append(out, fmt.Sprintf("%d-ary fat tree: max n=%d (%d leaves)", k, n, leaves))
	}
	return out
}
