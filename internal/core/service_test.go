package core

import "testing"

func TestRunE7ThreePhaseStory(t *testing.T) {
	rows, err := RunE7(E7Config{
		Topo: Mesh2D(6), Zombies: 2, TableCap: 16,
		AttackGap: 2, Clients: 40, Seed: 3, WindowTicks: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("phases = %d", len(rows))
	}
	clean, attacked, blocked := rows[0], rows[1], rows[2]

	if clean.CompletionRate() != 1.0 {
		t.Errorf("clean completion = %.3f, want 1.0", clean.CompletionRate())
	}
	if clean.Refused != 0 || clean.Backscatter != 0 {
		t.Errorf("clean phase refused=%d backscatter=%d", clean.Refused, clean.Backscatter)
	}

	if attacked.CompletionRate() >= 0.9 {
		t.Errorf("attack completion = %.3f: no denial observed", attacked.CompletionRate())
	}
	if attacked.Refused == 0 {
		t.Error("attack never exhausted the table")
	}
	if attacked.Backscatter == 0 {
		t.Error("no backscatter under random spoofing")
	}

	if blocked.CompletionRate() != 1.0 {
		t.Errorf("blocked completion = %.3f, want full recovery", blocked.CompletionRate())
	}
	if blocked.Blocked == 0 {
		t.Error("blocklist never fired in the blocked phase")
	}
	if blocked.CompletionRate() <= attacked.CompletionRate() {
		t.Error("blocking did not improve completion")
	}
}
