package core

import (
	"testing"

	"repro/internal/topology"
)

func TestRunX4DDPMDamageConfinedToCrossingFlows(t *testing.T) {
	bad := topology.NodeID(27) // interior of the 8x8 mesh
	row, err := RunX4(Mesh2D(8), "ddpm", bad, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if row.ThroughBad == 0 {
		t.Fatal("no flows crossed the bad switch; bad test placement")
	}
	// Containment: flows that never met the liar identify perfectly.
	if row.MisattributedClean != 0 {
		t.Errorf("%d clean flows misattributed — DDPM corruption leaked", row.MisattributedClean)
	}
	// Flows through the liar are corrupted (the 0xA5A5 XOR shifts the
	// vector): essentially all of them misattribute.
	if row.Misattributed < row.ThroughBad/2 {
		t.Errorf("only %d/%d crossing flows corrupted; the lie is too weak to measure",
			row.Misattributed, row.ThroughBad)
	}
	if row.Misattributed > row.ThroughBad {
		t.Errorf("misattributed %d exceeds crossing flows %d", row.Misattributed, row.ThroughBad)
	}
}

func TestRunX4IngressStampOnlySourceSwitchMatters(t *testing.T) {
	// Ingress stamping writes the MF once, at the source switch; a
	// lying TRANSIT switch that rewrites it corrupts every flow it
	// carries — same blast radius shape as DDPM here — but a lying
	// SOURCE switch forges arbitrary origins for its own flows, which
	// DDPM cannot fully prevent either. The measurable contrast: under
	// ingress stamping a corrupted MF often still decodes to a VALID
	// innocent node (silent framing), while DDPM's corrupted vectors
	// frequently decode off-mesh and are caught. Count the silent
	// misattributions.
	bad := topology.NodeID(27)
	ddpm, err := RunX4(Mesh2D(8), "ddpm", bad, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	stamp, err := RunX4(Mesh2D(8), "ingress-stamp", bad, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	if stamp.MisattributedClean != 0 {
		t.Errorf("%d clean flows misattributed under ingress stamp", stamp.MisattributedClean)
	}
	// Both schemes corrupt the crossing flows; the rows exist to be
	// reported side by side by the harness.
	if ddpm.Flows != stamp.Flows {
		t.Errorf("flow counts diverged: %d vs %d", ddpm.Flows, stamp.Flows)
	}
}
