// Package core wires the substrates into runnable clusters and
// implements the paper's experiments (the per-experiment index in
// DESIGN.md §3). It is the engine behind the public clusterid facade,
// the cmd/ tools and the benchmark harness.
package core

import (
	"fmt"
	"strings"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TopoSpec names a topology: Kind is "mesh", "torus" or "hypercube";
// Dims carries the radixes (for a hypercube, a single entry holding the
// dimension count).
type TopoSpec struct {
	Kind string
	Dims []int
}

// String renders the spec, e.g. "mesh-8x8".
func (t TopoSpec) String() string {
	parts := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return t.Kind + "-" + strings.Join(parts, "x")
}

// Mesh2D, Torus2D and Cube are spec constructors for the common cases.
func Mesh2D(k int) TopoSpec     { return TopoSpec{Kind: "mesh", Dims: []int{k, k}} }
func Torus2D(k int) TopoSpec    { return TopoSpec{Kind: "torus", Dims: []int{k, k}} }
func Cube(n int) TopoSpec       { return TopoSpec{Kind: "hypercube", Dims: []int{n}} }
func Mesh(dims ...int) TopoSpec { return TopoSpec{Kind: "mesh", Dims: dims} }

// BuildTopology materializes a spec.
func BuildTopology(spec TopoSpec) (topology.Network, error) {
	switch spec.Kind {
	case "mesh":
		if len(spec.Dims) == 0 {
			return nil, fmt.Errorf("core: mesh needs dims")
		}
		return topology.NewMesh(spec.Dims...), nil
	case "torus":
		if len(spec.Dims) == 0 {
			return nil, fmt.Errorf("core: torus needs dims")
		}
		return topology.NewTorus(spec.Dims...), nil
	case "hypercube":
		if len(spec.Dims) != 1 {
			return nil, fmt.Errorf("core: hypercube needs exactly one dim (the cube dimension)")
		}
		return topology.NewHypercube(spec.Dims[0]), nil
	default:
		return nil, fmt.Errorf("core: unknown topology kind %q", spec.Kind)
	}
}

// RoutingNames lists the supported routing algorithm names.
func RoutingNames() []string {
	return []string{"xy", "dor", "west-first", "north-last", "negative-first", "minimal-adaptive", "fully-adaptive"}
}

// BuildRouting materializes a named algorithm for a network.
func BuildRouting(name string, net topology.Network) (alg routing.Algorithm, err error) {
	defer func() {
		// Turn-model constructors panic on unsupported topologies; turn
		// that into a configuration error for CLI users.
		if r := recover(); r != nil {
			alg, err = nil, fmt.Errorf("core: routing %q on %s: %v", name, net.Name(), r)
		}
	}()
	switch name {
	case "xy":
		return routing.NewXY(net), nil
	case "dor", "ecube":
		return routing.NewDimensionOrder(net), nil
	case "west-first":
		return routing.NewWestFirst(net), nil
	case "north-last":
		return routing.NewNorthLast(net), nil
	case "negative-first":
		return routing.NewNegativeFirst(net), nil
	case "minimal-adaptive":
		return routing.NewMinimalAdaptive(net), nil
	case "fully-adaptive":
		return routing.NewFullyAdaptiveMisroute(net), nil
	default:
		return nil, fmt.Errorf("core: unknown routing %q (have %v)", name, RoutingNames())
	}
}

// SchemeNames lists the supported marking scheme names.
func SchemeNames() []string {
	return []string{"none", "ddpm", "simple-ppm", "xor-ppm", "bitdiff-ppm", "wide-ppm", "fragment-ppm", "ams", "dpm", "ingress-stamp"}
}

// BuildScheme materializes a named marking scheme. markProb is the PPM
// sampling probability (ignored by deterministic schemes).
func BuildScheme(name string, net topology.Network, markProb float64, r *rng.Stream) (marking.Scheme, error) {
	switch name {
	case "none", "":
		return marking.Nop{}, nil
	case "ddpm":
		return marking.NewDDPM(net)
	case "simple-ppm":
		return marking.NewSimplePPM(net, markProb, r)
	case "xor-ppm":
		return marking.NewXORPPM(net, markProb, r)
	case "bitdiff-ppm":
		return marking.NewBitDiffPPM(net, markProb, r)
	case "wide-ppm":
		return marking.NewWidePPM(markProb, r)
	case "fragment-ppm":
		return marking.NewFragmentPPM(markProb, r)
	case "ams":
		return marking.NewAMS(markProb, 0, r)
	case "dpm":
		return marking.NewDPM(), nil
	case "ingress-stamp":
		return marking.NewIngressStamp(net)
	default:
		return nil, fmt.Errorf("core: unknown scheme %q (have %v)", name, SchemeNames())
	}
}

// Config assembles a full cluster simulation.
type Config struct {
	Topo     TopoSpec
	Routing  string  // name from RoutingNames; default minimal-adaptive
	Selector string  // "first", "random", "congestion"; default congestion
	Scheme   string  // name from SchemeNames; default ddpm
	MarkProb float64 // PPM sampling probability; default 0.04 (Savage's choice)

	MisrouteBudget int
	QueueCap       int
	LinkLatency    eventq.Time
	SwitchDelay    eventq.Time

	Seed uint64

	// WrapScheme, when set, wraps the built marking scheme before the
	// simulator is wired — the hook observability layers (e.g.
	// internal/trace) use to ride along without changing behavior.
	WrapScheme func(marking.Scheme) marking.Scheme
}

// Cluster is a fully wired simulation: fabric, router, scheme, address
// plan and the event-driven network.
type Cluster struct {
	Cfg    Config
	Net    topology.Network
	Router *routing.Router
	Scheme marking.Scheme
	Plan   *packet.AddrPlan
	Sim    *netsim.Network
	Rng    *rng.Source
}

// Build materializes a Config.
func Build(cfg Config) (*Cluster, error) {
	if cfg.Routing == "" {
		cfg.Routing = "minimal-adaptive"
	}
	if cfg.Selector == "" {
		cfg.Selector = "congestion"
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "ddpm"
	}
	if cfg.MarkProb == 0 {
		cfg.MarkProb = 0.04
	}
	src := rng.NewSource(cfg.Seed)
	net, err := BuildTopology(cfg.Topo)
	if err != nil {
		return nil, err
	}
	alg, err := BuildRouting(cfg.Routing, net)
	if err != nil {
		return nil, err
	}
	router := routing.NewRouter(net, alg)
	router.MisrouteBudget = cfg.MisrouteBudget
	switch cfg.Selector {
	case "first":
		router.Sel = routing.FirstSelector{}
	case "random":
		router.Sel = routing.RandomSelector{R: src.Stream("selector")}
	case "congestion":
		router.Sel = routing.CongestionSelector{R: src.Stream("selector")}
	default:
		return nil, fmt.Errorf("core: unknown selector %q", cfg.Selector)
	}
	scheme, err := BuildScheme(cfg.Scheme, net, cfg.MarkProb, src.Stream("marking"))
	if err != nil {
		return nil, err
	}
	if cfg.WrapScheme != nil {
		scheme = cfg.WrapScheme(scheme)
		if scheme == nil {
			return nil, fmt.Errorf("core: WrapScheme returned nil")
		}
	}
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	sim, err := netsim.New(netsim.Config{
		Net: net, Router: router, Scheme: scheme, Plan: plan,
		LinkLatency: cfg.LinkLatency, QueueCap: cfg.QueueCap, SwitchDelay: cfg.SwitchDelay,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{
		Cfg: cfg, Net: net, Router: router, Scheme: scheme,
		Plan: plan, Sim: sim, Rng: src,
	}, nil
}

// DDPM returns the cluster's scheme as a DDPM instance, unwrapping any
// observability layers, or an error if another scheme is configured.
func (c *Cluster) DDPM() (*marking.DDPM, error) {
	s := c.Scheme
	for {
		if d, ok := s.(*marking.DDPM); ok {
			return d, nil
		}
		u, ok := s.(interface{ Unwrap() marking.Scheme })
		if !ok {
			return nil, fmt.Errorf("core: cluster scheme is %s, not ddpm", c.Scheme.Name())
		}
		s = u.Unwrap()
	}
}
