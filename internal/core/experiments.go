package core

import (
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/detect"
	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traceback"
)

// ---------------------------------------------------------------------
// E1 — PPM convergence: expected packets to reconstruct a path of
// length d versus the analytic bound ln(d)/(p(1−p)^{d−1}) (§4.2).
// ---------------------------------------------------------------------

// E1Row is one (p, d) cell of the convergence experiment.
type E1Row struct {
	P        float64
	D        int
	Trials   int
	MeanPkts float64
	CI95     float64
	Analytic float64 // ln(d)/(p(1−p)^{d−1})
}

// E1Analytic evaluates the paper's §4.2 bound.
func E1Analytic(p float64, d int) float64 {
	return math.Log(float64(d)) / (p * math.Pow(1-p, float64(d-1)))
}

// RunE1 measures, over trials independent runs, how many packets the
// victim must receive before the idealized (wide) PPM reconstructor
// pins the single attacker at hop distance d on a straight mesh path
// under deterministic routing — the best case for PPM; adaptive routing
// only makes it worse.
func RunE1(p float64, d, trials int, seed uint64, maxPkts int) (E1Row, error) {
	if d < 2 {
		return E1Row{}, fmt.Errorf("core: E1 needs d >= 2")
	}
	m := topology.NewMesh(1<<1, d+1) // a 2×(d+1) strip: straight row path
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{0, d})
	rsrc := rng.NewSource(seed)
	var acc stats.Running
	for trial := 0; trial < trials; trial++ {
		scheme, err := marking.NewWidePPM(p, rsrc.Stream(fmt.Sprintf("mark%d", trial)))
		if err != nil {
			return E1Row{}, err
		}
		r := routing.NewRouter(m, routing.NewXY(m))
		rec := traceback.ForWidePPM(scheme)
		rec.Adjacency = m.IsNeighbor
		plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
		path, err := r.Walk(src, dst, 0)
		if err != nil {
			return E1Row{}, err
		}
		pkts := 0
		// Checking convergence after every packet is O(pkts²) on long
		// paths; back off the check interval as the run grows, then
		// binary-refine is unnecessary — resolution of ~1% suffices.
		checkAt := d
		for ; pkts < maxPkts; pkts++ {
			pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 0)
			scheme.OnInject(pk)
			for i := 0; i+1 < len(path); i++ {
				scheme.OnForward(path[i], path[i+1], pk)
			}
			rec.Observe(pk)
			if pkts+1 >= checkAt {
				if srcs := rec.Sources(); len(srcs) == 1 && srcs[0] == src {
					break
				}
				checkAt += 1 + pkts/64
			}
		}
		acc.Add(float64(pkts + 1))
	}
	return E1Row{
		P: p, D: d, Trials: trials,
		MeanPkts: acc.Mean(), CI95: acc.CI95(),
		Analytic: E1Analytic(p, d),
	}, nil
}

// ---------------------------------------------------------------------
// E2 — DPM ambiguity (§4.3): signatures per flow under deterministic vs
// adaptive routing, sources per signature (collision ambiguity), and
// information loss past 16 hops.
// ---------------------------------------------------------------------

// E2Row summarizes DPM behavior on one configuration.
type E2Row struct {
	Topo            string
	Routing         string
	Diameter        int
	FlowsMeasured   int
	SigsPerFlowMean float64 // distinct signatures one flow generates
	SrcsPerSigMean  float64 // distinct sources colliding on one signature
	MaxSrcsPerSig   int
}

// RunE2 sends pktsPerFlow packets from every node to one victim and
// measures signature stability and collision ambiguity.
func RunE2(spec TopoSpec, routingName string, pktsPerFlow int, seed uint64) (E2Row, error) {
	net, err := BuildTopology(spec)
	if err != nil {
		return E2Row{}, err
	}
	alg, err := BuildRouting(routingName, net)
	if err != nil {
		return E2Row{}, err
	}
	src := rng.NewSource(seed)
	r := routing.NewRouter(net, alg)
	r.Sel = routing.RandomSelector{R: src.Stream("sel")}
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	dpm := marking.NewDPM()
	victim := topology.NodeID(net.NumNodes() - 1)

	sigsBySource := make(map[topology.NodeID]map[uint16]bool)
	sourcesBySig := make(map[uint16]map[topology.NodeID]bool)
	flows := 0
	for s := 0; s < net.NumNodes(); s++ {
		if topology.NodeID(s) == victim {
			continue
		}
		flows++
		for k := 0; k < pktsPerFlow; k++ {
			path, err := r.Walk(topology.NodeID(s), victim, 0)
			if err != nil {
				return E2Row{}, err
			}
			pk := packet.NewPacket(plan, topology.NodeID(s), victim, packet.ProtoTCPSYN, 0)
			for i := 0; i+1 < len(path); i++ {
				dpm.OnForward(path[i], path[i+1], pk)
				pk.Hdr.TTL--
			}
			sig := dpm.Signature(pk.Hdr.ID)
			if sigsBySource[topology.NodeID(s)] == nil {
				sigsBySource[topology.NodeID(s)] = make(map[uint16]bool)
			}
			sigsBySource[topology.NodeID(s)][sig] = true
			if sourcesBySig[sig] == nil {
				sourcesBySig[sig] = make(map[topology.NodeID]bool)
			}
			sourcesBySig[sig][topology.NodeID(s)] = true
		}
	}
	// Integer sums keep the means exact and independent of map
	// iteration order (bit-identical reruns).
	sigSum := 0
	for _, sigs := range sigsBySource {
		sigSum += len(sigs)
	}
	srcSum, maxSrcs := 0, 0
	for _, srcs := range sourcesBySig {
		srcSum += len(srcs)
		if len(srcs) > maxSrcs {
			maxSrcs = len(srcs)
		}
	}
	row := E2Row{
		Topo: net.Name(), Routing: routingName, Diameter: net.Diameter(),
		FlowsMeasured: flows,
		MaxSrcsPerSig: maxSrcs,
	}
	if len(sigsBySource) > 0 {
		row.SigsPerFlowMean = float64(sigSum) / float64(len(sigsBySource))
	}
	if len(sourcesBySig) > 0 {
		row.SrcsPerSigMean = float64(srcSum) / float64(len(sourcesBySig))
	}
	return row, nil
}

// ---------------------------------------------------------------------
// E3 — DDPM single-packet identification accuracy across topologies and
// routing algorithms (§5's central claim).
// ---------------------------------------------------------------------

// E3Row is one configuration's accuracy measurement.
type E3Row struct {
	Topo      string
	Routing   string
	Trials    int
	Correct   int
	Undecoded int
}

// Accuracy returns the fraction of trials correctly identified.
func (r E3Row) Accuracy() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// RunE3 routes trials random (src, dst) packets — every header spoofed
// and the MF preloaded with garbage — and checks DDPM identification.
func RunE3(spec TopoSpec, routingName string, trials int, seed uint64) (E3Row, error) {
	net, err := BuildTopology(spec)
	if err != nil {
		return E3Row{}, err
	}
	alg, err := BuildRouting(routingName, net)
	if err != nil {
		return E3Row{}, err
	}
	d, err := marking.NewDDPM(net)
	if err != nil {
		return E3Row{}, err
	}
	src := rng.NewSource(seed)
	r := routing.NewRouter(net, alg)
	r.Sel = routing.RandomSelector{R: src.Stream("sel")}
	r.MisrouteBudget = 3
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	stream := src.Stream("pairs")
	row := E3Row{Topo: net.Name(), Routing: routingName}
	for row.Trials < trials {
		a := topology.NodeID(stream.Intn(net.NumNodes()))
		b := topology.NodeID(stream.Intn(net.NumNodes()))
		if a == b {
			continue
		}
		path, err := r.Walk(a, b, 0)
		if err != nil {
			return row, fmt.Errorf("core: E3 walk: %w", err)
		}
		pk := packet.NewPacket(plan, a, b, packet.ProtoTCPSYN, 0)
		pk.Spoof(plan.AddrOf(topology.NodeID(stream.Intn(net.NumNodes()))))
		pk.Hdr.ID = uint16(stream.Intn(1 << 16))
		d.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			d.OnForward(path[i], path[i+1], pk)
		}
		row.Trials++
		got, ok := d.IdentifySource(b, pk.Hdr.ID)
		switch {
		case !ok:
			row.Undecoded++
		case got == a:
			row.Correct++
		}
	}
	return row, nil
}

// ---------------------------------------------------------------------
// E5 — end-to-end DDoS story: zombies SYN-flood a victim through
// background traffic; measure detection latency, identification, and
// residual attack traffic after blocking.
// ---------------------------------------------------------------------

// E5Row summarizes one end-to-end run.
type E5Row struct {
	Zombies         int
	AttackPkts      uint64
	DetectedAt      eventq.Time
	Detected        bool
	IdentifiedAll   bool
	FalsePositives  int
	BlockedFraction float64 // attack packets dropped after blocking
}

// E5Config parameterizes the end-to-end experiment.
type E5Config struct {
	Topo        TopoSpec
	Routing     string
	Zombies     int
	Seed        uint64
	AttackGap   eventq.Time // CBR gap per zombie
	Background  float64     // per-node injection rate
	WarmupTicks eventq.Time
	AttackTicks eventq.Time
	AfterTicks  eventq.Time // post-identification window to measure blocking
}

// RunE5 executes the full pipeline with DDPM:
//
//	phase 1 (warmup): background only; detectors learn a baseline.
//	phase 2 (attack): zombies flood; detection alarm recorded; the
//	  victim's DDPM identifier tallies sources.
//	phase 3 (blocked): victim blocklists the identified sources and the
//	  attack continues; residual accepted attack traffic is measured.
func RunE5(cfg E5Config) (E5Row, error) {
	if cfg.Routing == "" {
		cfg.Routing = "minimal-adaptive"
	}
	cl, err := Build(Config{
		Topo: cfg.Topo, Routing: cfg.Routing, Selector: "congestion",
		Scheme: "ddpm", Seed: cfg.Seed, QueueCap: 256,
	})
	if err != nil {
		return E5Row{}, err
	}
	d, _ := cl.DDPM()
	victim := topology.NodeID(cl.Net.NumNodes() - 1)

	// Zombies: the farthest nodes from the victim, deterministically.
	zstream := cl.Rng.Stream("zombies")
	zombieSet := map[topology.NodeID]bool{}
	for len(zombieSet) < cfg.Zombies {
		z := topology.NodeID(zstream.Intn(cl.Net.NumNodes()))
		if z != victim {
			zombieSet[z] = true
		}
	}
	var zombies []attack.Zombie
	for z := range zombieSet {
		zombies = append(zombies, attack.Zombie{
			Node: z, Victim: victim, Proto: packet.ProtoTCPSYN,
			Arrival: attack.CBR{Interval: cfg.AttackGap},
			Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: cl.Rng.Stream(fmt.Sprintf("spoof%d", z))},
		})
	}

	attackStart := cfg.WarmupTicks
	attackEnd := attackStart + cfg.AttackTicks + cfg.AfterTicks
	flood := &attack.Flood{
		Zombies: zombies, Start: attackStart, Stop: attackEnd,
		RandomID: cl.Rng.Stream("ids"),
	}
	if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
		return E5Row{}, err
	}
	bg := &attack.Background{
		Pattern: attack.Uniform, InjectionRate: cfg.Background,
		Start: 0, Stop: attackEnd, R: cl.Rng.Stream("bg"),
	}
	if err := bg.Launch(cl.Sim, cl.Net, cl.Plan); err != nil {
		return E5Row{}, err
	}

	det := NewVictimDetectors(cfg.WarmupTicks)
	ident := traceback.NewDDPMIdentifier(d, victim)

	row := E5Row{Zombies: cfg.Zombies, AttackPkts: flood.Launched()}
	blockAt := attackStart + cfg.AttackTicks
	var blocked map[topology.NodeID]bool
	var attackSeen, attackAfterBlock, attackDroppedByBlock uint64

	cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		if pk.DstNode != victim {
			return
		}
		det.Observe(now, pk)
		src, ok := ident.Observe(pk)
		if pk.SrcNode != victim && pk.Hdr.Proto == packet.ProtoTCPSYN && zombieSet[pk.SrcNode] {
			attackSeen++
		}
		if blocked != nil && ok && zombieSet[pk.SrcNode] {
			attackAfterBlock++
			if blocked[src] {
				attackDroppedByBlock++
			}
		}
	})

	// Phase 1+2: run to the blocking point, then compute the blocklist.
	cl.Sim.Run(blockAt)
	if det.Alarmed() {
		row.Detected = true
		row.DetectedAt = det.AlarmedAt()
	}
	blocked = map[topology.NodeID]bool{}
	// Threshold: anything with more identified packets than 4x the
	// per-node background expectation is blocked.
	threshold := int64(4 * cfg.Background * float64(cfg.WarmupTicks+cfg.AttackTicks))
	if threshold < 4 {
		threshold = 4
	}
	for _, s := range ident.SourcesAbove(threshold) {
		blocked[s] = true
	}
	row.IdentifiedAll = true
	for z := range zombieSet {
		if !blocked[z] {
			row.IdentifiedAll = false
		}
	}
	for b := range blocked {
		if !zombieSet[b] {
			row.FalsePositives++
		}
	}

	// Phase 3: attack continues; measure blocking effectiveness.
	cl.Sim.RunAll(200_000_000)
	if attackAfterBlock > 0 {
		row.BlockedFraction = float64(attackDroppedByBlock) / float64(attackAfterBlock)
	}
	return row, nil
}

// VictimDetectors bundles the three detectors with scales derived from
// the warmup window.
type VictimDetectors struct {
	fan detect.Fanout
}

// NewVictimDetectors builds a rate + entropy + SYN-table bundle tuned
// to a warmup window.
func NewVictimDetectors(warmup eventq.Time) *VictimDetectors {
	w := warmup / 4
	if w < 10 {
		w = 10
	}
	return &VictimDetectors{fan: detect.Fanout{
		detect.NewRateDetector(w, 3, 20),
		detect.NewEntropyDetector(w, 2),
		detect.NewSYNTable(128, 4*w),
	}}
}

// Observe forwards to the bundle; Alarmed/AlarmedAt report the first
// alarm.
func (v *VictimDetectors) Observe(now eventq.Time, pk *packet.Packet) { v.fan.Observe(now, pk) }
func (v *VictimDetectors) Alarmed() bool                              { return v.fan.Alarmed() }
func (v *VictimDetectors) AlarmedAt() eventq.Time                     { return v.fan.AlarmedAt() }
