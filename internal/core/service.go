package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/victim"
)

// ---------------------------------------------------------------------
// E7 — service-level denial and recovery: a TCP-like server with a
// bounded half-open table under a spoofed SYN flood. Measures the
// fraction of legitimate handshakes that complete (a) with no attack,
// (b) under attack, (c) under attack with DDPM-identified sources
// blocked at the server's front door — plus the backscatter the
// spoofing sprays across innocent nodes.
// ---------------------------------------------------------------------

// E7Row is one phase's outcome.
type E7Row struct {
	Phase       string // "clean", "attack", "blocked"
	Attempts    uint64
	Established uint64
	Refused     uint64
	Blocked     uint64
	Backscatter uint64
}

// CompletionRate returns established/attempts.
func (r E7Row) CompletionRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Established) / float64(r.Attempts)
}

// E7Config parameterizes the experiment.
type E7Config struct {
	Topo        TopoSpec
	Zombies     int
	TableCap    int
	AttackGap   eventq.Time
	Clients     int
	Seed        uint64
	WindowTicks eventq.Time
}

// RunE7 executes the three phases with identical seeds and client
// schedules, differing only in the flood and the blocklist.
func RunE7(cfg E7Config) ([]E7Row, error) {
	if cfg.TableCap <= 0 {
		cfg.TableCap = 16
	}
	if cfg.AttackGap <= 0 {
		cfg.AttackGap = 2
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 50
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 4000
	}

	runPhase := func(phase string) (E7Row, error) {
		cl, err := Build(Config{Topo: cfg.Topo, Scheme: "ddpm", Seed: cfg.Seed, QueueCap: 512})
		if err != nil {
			return E7Row{}, err
		}
		d, _ := cl.DDPM()
		svcNode := topology.NodeID(cl.Net.NumNodes() - 1)
		svc, err := victim.NewService(cl.Sim, cl.Plan, svcNode, cfg.TableCap, cfg.WindowTicks/2)
		if err != nil {
			return E7Row{}, err
		}
		clients := victim.NewClients(cl.Sim, cl.Plan, svcNode)
		cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
			svc.HandleDeliver(now, pk)
			clients.HandleDeliver(now, pk)
		})

		// Zombies: deterministic set from the seed.
		zstream := cl.Rng.Stream("zombies")
		zset := map[topology.NodeID]bool{}
		for len(zset) < cfg.Zombies {
			z := topology.NodeID(zstream.Intn(cl.Net.NumNodes()))
			if z != svcNode {
				zset[z] = true
			}
		}
		if phase == "blocked" {
			bl := filter.NewBlocklist(d, svcNode)
			for z := range zset {
				bl.Block(z)
			}
			svc.Blocklist = bl
		}
		if phase != "clean" {
			var zs []attack.Zombie
			for z := range zset {
				zs = append(zs, attack.Zombie{
					Node: z, Victim: svcNode, Proto: packet.ProtoTCPSYN,
					Arrival: attack.CBR{Interval: cfg.AttackGap},
					Spoof:   attack.RandomSpoof{Plan: cl.Plan, R: cl.Rng.Stream(fmt.Sprintf("spoof%d", z))},
				})
			}
			flood := &attack.Flood{Zombies: zs, Start: 0, Stop: cfg.WindowTicks,
				RandomID: cl.Rng.Stream("ids")}
			if err := flood.Launch(cl.Sim, cl.Plan); err != nil {
				return E7Row{}, err
			}
		}

		// Identical client schedule across phases.
		cstream := cl.Rng.Stream("clients")
		gap := cfg.WindowTicks / eventq.Time(cfg.Clients+1)
		if gap < 1 {
			gap = 1
		}
		for i := 0; i < cfg.Clients; i++ {
			node := topology.NodeID(cstream.Intn(cl.Net.NumNodes()))
			if node == svcNode || zset[node] {
				continue
			}
			clients.Connect(eventq.Time(i+1)*gap, node)
		}
		cl.Sim.RunAll(2_000_000_000)
		return E7Row{
			Phase:       phase,
			Attempts:    clients.Attempts,
			Established: svc.Established,
			Refused:     svc.Refused,
			Blocked:     svc.Blocked,
			Backscatter: clients.Backscatter,
		}, nil
	}

	var out []E7Row
	for _, phase := range []string{"clean", "attack", "blocked"} {
		row, err := runPhase(phase)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
