package core

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/eventq"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

// The whole experiment harness is seeded: identical seeds must yield
// bit-identical outcomes across runs, or regression comparisons and
// golden numbers in EXPERIMENTS.md are meaningless. These tests pin the
// property on the most stateful paths.

func TestE5Deterministic(t *testing.T) {
	cfg := E5Config{
		Topo: Torus2D(8), Zombies: 3, Seed: 99,
		AttackGap: 4, Background: 0.002,
		WarmupTicks: 1000, AttackTicks: 1500, AfterTicks: 1000,
	}
	a, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("E5 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestE2Deterministic(t *testing.T) {
	a, err := RunE2(Mesh2D(8), "minimal-adaptive", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunE2(Mesh2D(8), "minimal-adaptive", 10, 5)
	if a != b {
		t.Errorf("E2 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestE6Deterministic(t *testing.T) {
	a, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if a != b {
		t.Errorf("E6 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

// runSeededTrace builds a fresh seeded cluster, drives a mixed workload
// of pooled (AcquirePacket) and heap packets through adaptive routing
// with DDPM, and returns the fabric stats plus a byte trace capturing
// every delivery's (Seq, marking field, claimed source, delivery time).
// Byte-level comparison of two such traces pins the engine's event
// ordering, sequence assignment and packet-pool reset behavior at once.
func runSeededTrace(t *testing.T, seed uint64) (netsim.Stats, []byte) {
	t.Helper()
	cl, err := Build(Config{
		Topo: Torus2D(8), Routing: "fully-adaptive", Selector: "congestion",
		Scheme: "ddpm", MisrouteBudget: 2, QueueCap: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	rec := func(v uint64) { binary.Write(&trace, binary.LittleEndian, v) }
	cl.Sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		rec(pk.Seq)
		rec(uint64(pk.Hdr.ID))
		rec(uint64(pk.Hdr.Src))
		rec(uint64(now))
	})
	cl.Sim.OnDrop(func(now eventq.Time, pk *packet.Packet, reason netsim.DropReason) {
		rec(^pk.Seq)
		rec(uint64(reason))
	})
	r := cl.Rng.Stream("traffic")
	n := cl.Net.NumNodes()
	for i := 0; i < 600; i++ {
		src := topology.NodeID(r.Intn(n))
		dst := topology.NodeID(r.Intn(n))
		if i%2 == 0 {
			dst = 0 // hotspot: force congestion, drops and misrouting
		}
		var pk *packet.Packet
		if i%3 == 0 {
			pk = packet.NewPacket(cl.Plan, src, dst, packet.ProtoUDP, 0)
		} else {
			pk = cl.Sim.AcquirePacket(src, dst, packet.ProtoUDP, 0)
		}
		if i%5 == 0 {
			pk.Spoof(packet.Addr(r.Uint64()))
		}
		cl.Sim.InjectAt(eventq.Time(i/32), pk)
	}
	cl.Sim.RunAll(10_000_000)
	return cl.Sim.Stats(), trace.Bytes()
}

func TestEngineStatsAndMarkingTraceBitIdentical(t *testing.T) {
	// Two runs of the same seeded experiment on the rewritten engine
	// must agree byte-for-byte: identical Stats (delivered, dropped by
	// reason, hops, misroutes, latency sums) and an identical delivery
	// trace of (Seq, DDPM marking field, header source, time). This
	// guards the freelist/pool machinery — a nextSeq or packet-reset bug
	// shows up here before anything else.
	sa, ta := runSeededTrace(t, 42)
	sb, tb := runSeededTrace(t, 42)
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("stats differ between identical runs:\n  %+v\n  %+v", sa, sb)
	}
	if !bytes.Equal(ta, tb) {
		t.Errorf("delivery/marking traces differ between identical runs (len %d vs %d)", len(ta), len(tb))
	}
	if sa.Delivered == 0 || sa.DroppedTotal() == 0 {
		t.Errorf("workload too gentle to pin determinism: %+v", sa)
	}
	// And a different seed must actually change the trace.
	_, tc := runSeededTrace(t, 43)
	if bytes.Equal(ta, tc) {
		t.Error("different seeds produced identical traces")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 14)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds produced identical E6 rows — seeding is not wired through")
	}
}
