package core

import "testing"

// The whole experiment harness is seeded: identical seeds must yield
// bit-identical outcomes across runs, or regression comparisons and
// golden numbers in EXPERIMENTS.md are meaningless. These tests pin the
// property on the most stateful paths.

func TestE5Deterministic(t *testing.T) {
	cfg := E5Config{
		Topo: Torus2D(8), Zombies: 3, Seed: 99,
		AttackGap: 4, Background: 0.002,
		WarmupTicks: 1000, AttackTicks: 1500, AfterTicks: 1000,
	}
	a, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("E5 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestE2Deterministic(t *testing.T) {
	a, err := RunE2(Mesh2D(8), "minimal-adaptive", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunE2(Mesh2D(8), "minimal-adaptive", 10, 5)
	if a != b {
		t.Errorf("E2 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestE6Deterministic(t *testing.T) {
	a, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if a != b {
		t.Errorf("E6 not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE6(Mesh2D(8), "fully-adaptive", 0.1, 200, 14)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds produced identical E6 rows — seeding is not wired through")
	}
}
