package core

import (
	"fmt"
	"io"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------
// Tables 1–3 (scalability): rows match the paper's tables, reporting
// the paper's formula/claim next to this implementation's exact layout.
// ---------------------------------------------------------------------

// TableRow is one topology-family row of a scalability table.
type TableRow struct {
	Topology   string
	Formula    string
	PaperMaxN  int // paper-claimed max (n of n×n, or cube dimension)
	PaperNodes int
	ExactMaxN  int // computed from this package's exact layouts
	ExactNodes int
	Agree      bool
}

// ScalabilityTable regenerates Table 1, 2 or 3.
func ScalabilityTable(table int) ([]TableRow, error) {
	var kind marking.SchemeKind
	var meshFormula, cubeFormula string
	switch table {
	case 1:
		kind = marking.KindSimplePPM
		meshFormula = "2·log n² + log 2n"
		cubeFormula = "2n + log(n+1)"
	case 2:
		kind = marking.KindBitDiffPPM
		meshFormula = "log n² + log log n² + log 2n"
		cubeFormula = "n + log n + log(n+1)"
	case 3:
		kind = marking.KindDDPM
		meshFormula = "2·(log n + 1)  [two signed fields]"
		cubeFormula = "n  [XOR word]"
	default:
		return nil, fmt.Errorf("core: no table %d (have 1, 2, 3)", table)
	}
	pm, pmNodes := marking.PaperMaxMesh(kind)
	em, emNodes := marking.MaxMesh(kind)
	pc, pcNodes := marking.PaperMaxCube(kind)
	ec, ecNodes := marking.MaxCube(kind)
	return []TableRow{
		{
			Topology: "n×n mesh, torus", Formula: meshFormula,
			PaperMaxN: pm, PaperNodes: pmNodes,
			ExactMaxN: em, ExactNodes: emNodes,
			Agree: pm == em,
		},
		{
			Topology: "n-cube hypercube", Formula: cubeFormula,
			PaperMaxN: pc, PaperNodes: pcNodes,
			ExactMaxN: ec, ExactNodes: ecNodes,
			Agree: pc == ec,
		},
	}, nil
}

// WriteTable renders a scalability table in the paper's layout.
func WriteTable(w io.Writer, table int) error {
	rows, err := ScalabilityTable(table)
	if err != nil {
		return err
	}
	name := map[int]string{1: "Simple PPM", 2: "Simple Bit Difference PPM", 3: "DDPM"}[table]
	fmt.Fprintf(w, "Table %d. Scalability of %s\n", table, name)
	fmt.Fprintf(w, "%-20s %-36s %-22s %-22s %s\n",
		"Topology", "Required Field", "Paper Max Cluster", "Exact Max Cluster", "Agree")
	for _, r := range rows {
		paper := fmt.Sprintf("%d (%d nodes)", r.PaperMaxN, r.PaperNodes)
		exact := fmt.Sprintf("%d (%d nodes)", r.ExactMaxN, r.ExactNodes)
		agree := "yes"
		if !r.Agree {
			agree = "NO (see EXPERIMENTS.md)"
		}
		fmt.Fprintf(w, "%-20s %-36s %-22s %-22s %s\n", r.Topology, r.Formula, paper, exact, agree)
	}
	if table == 3 {
		widths, nodes := marking.Mesh3DDDPMSplit()
		fmt.Fprintf(w, "3-D mesh/torus split %v -> 16x16x32 = %d nodes\n", widths, nodes)
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 2 — routing deliverability under link failures.
// ---------------------------------------------------------------------

// Figure2Cell is one (scenario, algorithm) outcome.
type Figure2Cell struct {
	Scenario  string // "a", "b", "c"
	Algorithm string
	S1OK      bool
	S2OK      bool
}

// Figure2 reproduces the deliverability matrix of the paper's Figure 2:
// 4×4 mesh, S1=(2,0), S2=(0,0), D=(1,2), three failure scenarios, three
// algorithms. Expected shape: XY delivers only in (a); west-first in
// (a) and (b); fully adaptive in all three.
func Figure2(seed uint64) ([]Figure2Cell, error) {
	m := topology.NewMesh2D(4)
	s1 := m.IndexOf(topology.Coord{2, 0})
	s2 := m.IndexOf(topology.Coord{0, 0})
	d := m.IndexOf(topology.Coord{1, 2})

	failB := func(st *routing.LinkState) {
		st.FailBoth(s1, m.IndexOf(topology.Coord{2, 1}))
		st.FailBoth(s2, m.IndexOf(topology.Coord{0, 1}))
	}
	failC := func(st *routing.LinkState) {
		for _, nb := range []topology.Coord{{0, 2}, {2, 2}, {1, 1}} {
			st.FailBoth(m.IndexOf(nb), d)
		}
	}
	scenarios := []struct {
		name string
		fail func(*routing.LinkState)
	}{
		{"a", func(*routing.LinkState) {}},
		{"b", failB},
		{"c", failC},
	}
	algs := []string{"xy", "west-first", "fully-adaptive"}

	var out []Figure2Cell
	rsrc := rng.NewSource(seed)
	for _, sc := range scenarios {
		for _, algName := range algs {
			alg, err := BuildRouting(algName, m)
			if err != nil {
				return nil, err
			}
			r := routing.NewRouter(m, alg)
			r.Sel = routing.RandomSelector{R: rsrc.Stream(sc.name + algName)}
			r.MisrouteBudget = 6
			sc.fail(r.State)
			out = append(out, Figure2Cell{
				Scenario:  sc.name,
				Algorithm: algName,
				S1OK:      r.Deliverable(s1, d, 300),
				S2OK:      r.Deliverable(s2, d, 300),
			})
		}
	}
	return out, nil
}

// WriteFigure2 renders the matrix.
func WriteFigure2(w io.Writer, seed uint64) error {
	cells, err := Figure2(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2. Routing algorithms on a 4x4 mesh: S1=(2,0), S2=(0,0), D=(1,2)")
	fmt.Fprintln(w, "  (a) no failures  (b) east links out of S1/S2 failed  (c) only (1,3)->D live")
	fmt.Fprintf(w, "%-10s %-16s %-8s %-8s\n", "Scenario", "Algorithm", "S1->D", "S2->D")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-16s %-8v %-8v\n", c.Scenario, c.Algorithm, c.S1OK, c.S2OK)
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 3 — marking-field traces along the paper's example routes.
// ---------------------------------------------------------------------

// Figure3bTrace replays the §5 adaptive route (1,1)→(2,3) on the 4×4
// mesh and returns the DDPM vector after each hop plus the identified
// source.
func Figure3bTrace() (vectors []topology.Vector, identified topology.Coord, err error) {
	m := topology.NewMesh2D(4)
	d, err := marking.NewDDPM(m)
	if err != nil {
		return nil, nil, err
	}
	coords := []topology.Coord{
		{1, 1}, {2, 1}, {3, 1}, {3, 0}, {2, 0}, {2, 1}, {2, 2}, {2, 3},
	}
	pk := &packet.Packet{}
	d.OnInject(pk)
	for i := 0; i+1 < len(coords); i++ {
		d.OnForward(m.IndexOf(coords[i]), m.IndexOf(coords[i+1]), pk)
		vectors = append(vectors, topology.Vector(d.Codec().Decode(pk.Hdr.ID)))
	}
	srcID, ok := d.IdentifySource(m.IndexOf(coords[len(coords)-1]), pk.Hdr.ID)
	if !ok {
		return vectors, nil, fmt.Errorf("core: figure 3b identification failed")
	}
	return vectors, m.CoordOf(srcID), nil
}

// Figure3cTrace replays the §5 hypercube route (1,1,0)→(0,0,0).
func Figure3cTrace() (vectors []topology.Vector, identified topology.Coord, err error) {
	h := topology.NewHypercube(3)
	d, err := marking.NewDDPM(h)
	if err != nil {
		return nil, nil, err
	}
	coords := []topology.Coord{
		{1, 1, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}, {1, 0, 1}, {1, 0, 0}, {0, 0, 0},
	}
	pk := &packet.Packet{}
	d.OnInject(pk)
	for i := 0; i+1 < len(coords); i++ {
		d.OnForward(h.IndexOf(coords[i]), h.IndexOf(coords[i+1]), pk)
		vectors = append(vectors, topology.Vector(d.Codec().Decode(pk.Hdr.ID)))
	}
	srcID, ok := d.IdentifySource(h.IndexOf(coords[len(coords)-1]), pk.Hdr.ID)
	if !ok {
		return vectors, nil, fmt.Errorf("core: figure 3c identification failed")
	}
	return vectors, h.CoordOf(srcID), nil
}

// Figure3aTrace replays the simple-PPM example: for each mark position
// along the path 0001→0011→0010→0110→1110 it reports the sample the
// victim decodes, as (startLabel, endLabel, dist) strings.
func Figure3aTrace() ([]string, error) {
	m := topology.NewMesh2D(4)
	lab, err := marking.NewLabeler(m)
	if err != nil {
		return nil, err
	}
	coords := []topology.Coord{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}
	path := make([]topology.NodeID, len(coords))
	for i, c := range coords {
		path[i] = m.IndexOf(c)
	}
	scheme, err := marking.NewSimplePPM(m, 0.5, rng.NewSource(1).Stream("x"))
	if err != nil {
		return nil, err
	}
	marker, _ := marking.NewSimplePPM(m, 1.0, rng.NewSource(2).Stream("m"))
	passer, _ := marking.NewSimplePPM(m, 1e-12, rng.NewSource(3).Stream("p"))
	var out []string
	for mark := 0; mark+1 < len(path); mark++ {
		pk := &packet.Packet{}
		for i := 0; i+1 < len(path); i++ {
			if i == mark {
				marker.OnForward(path[i], path[i+1], pk)
			} else {
				passer.OnForward(path[i], path[i+1], pk)
			}
		}
		es, ok := scheme.DecodeMF(pk.Hdr.ID)
		if !ok {
			return nil, fmt.Errorf("core: figure 3a sample %d undecodable", mark)
		}
		if es.Dist == 0 {
			out = append(out, fmt.Sprintf("(%04b, ----, %d)", lab.Label(es.Start), es.Dist))
		} else {
			out = append(out, fmt.Sprintf("(%04b, %04b, %d)", lab.Label(es.Start), lab.Label(es.End), es.Dist))
		}
	}
	return out, nil
}
