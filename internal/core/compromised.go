package core

import (
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ---------------------------------------------------------------------
// X4 — compromised switch blast radius (§4.1 assumption, stress-tested):
// with one lying switch in the fabric, what fraction of flows does each
// scheme misattribute, and is the damage confined to flows that cross
// the bad switch?
// ---------------------------------------------------------------------

// X4Row is one (scheme, bad-switch placement) measurement.
type X4Row struct {
	Scheme        string
	Flows         int
	ThroughBad    int // flows whose route crossed the bad switch
	Misattributed int // flows identified as a wrong (or no) source
	// MisattributedClean counts misattributions among flows that never
	// touched the bad switch — containment means this stays zero.
	MisattributedClean int
}

// RunX4 measures DDPM vs ingress-stamp with a lying switch at badNode
// on a mesh under adaptive routing.
func RunX4(spec TopoSpec, schemeName string, badNode topology.NodeID, flows int, seed uint64) (X4Row, error) {
	net, err := BuildTopology(spec)
	if err != nil {
		return X4Row{}, err
	}
	src := rng.NewSource(seed)
	honest, err := BuildScheme(schemeName, net, 0.04, src.Stream("mark"))
	if err != nil {
		return X4Row{}, err
	}
	scheme := marking.NewCompromised(honest, badNode, nil)
	r := routing.NewRouter(net, routing.NewMinimalAdaptive(net))
	r.Sel = routing.RandomSelector{R: src.Stream("sel")}
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())

	identify := func(dst topology.NodeID, pk *packet.Packet) (topology.NodeID, bool) {
		switch h := honest.(type) {
		case *marking.DDPM:
			return h.IdentifySource(dst, pk.Hdr.ID)
		case *marking.IngressStamp:
			return h.IdentifySource(pk.Hdr.ID)
		default:
			return topology.None, false
		}
	}

	row := X4Row{Scheme: schemeName}
	pairStream := src.Stream("pairs")
	for row.Flows < flows {
		a := topology.NodeID(pairStream.Intn(net.NumNodes()))
		b := topology.NodeID(pairStream.Intn(net.NumNodes()))
		if a == b || b == badNode {
			continue
		}
		path, err := r.Walk(a, b, 0)
		if err != nil {
			return row, err
		}
		row.Flows++
		crossed := false
		// The bad switch corrupts when it FORWARDS (or injects); the
		// destination switch only ejects, so crossing as the final node
		// does not corrupt.
		for _, n := range path[:len(path)-1] {
			if n == badNode {
				crossed = true
			}
		}
		if crossed {
			row.ThroughBad++
		}
		pk := packet.NewPacket(plan, a, b, packet.ProtoTCPSYN, 0)
		scheme.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			scheme.OnForward(path[i], path[i+1], pk)
		}
		got, ok := identify(b, pk)
		if !ok || got != a {
			row.Misattributed++
			if !crossed {
				row.MisattributedClean++
			}
		}
	}
	return row, nil
}
