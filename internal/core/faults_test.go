package core

import "testing"

func TestRunE6HealthyFabricDeliversEverything(t *testing.T) {
	for _, r := range []string{"xy", "minimal-adaptive", "fully-adaptive"} {
		row, err := RunE6(Mesh2D(8), r, 0, 300, 1)
		if err != nil {
			t.Fatal(err)
		}
		if row.DeliveryRate() != 1.0 {
			t.Errorf("%s: delivery %.3f on healthy fabric", r, row.DeliveryRate())
		}
		if row.DDPMCorrect != row.Delivered {
			t.Errorf("%s: DDPM correct %d/%d", r, row.DDPMCorrect, row.Delivered)
		}
		if row.FailedCables != 0 {
			t.Errorf("failed cables = %d at f=0", row.FailedCables)
		}
	}
}

func TestRunE6AdaptivityOrdersDeliveryRates(t *testing.T) {
	// Figure 2's message, quantified: under the same failures,
	// fully adaptive ≥ partially adaptive (west-first) ≥ deterministic.
	const f = 0.08
	xy, err := RunE6(Mesh2D(8), "xy", f, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := RunE6(Mesh2D(8), "west-first", f, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := RunE6(Mesh2D(8), "fully-adaptive", f, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(fa.DeliveryRate() >= wf.DeliveryRate() && wf.DeliveryRate() >= xy.DeliveryRate()) {
		t.Errorf("delivery order violated: xy=%.3f wf=%.3f fa=%.3f",
			xy.DeliveryRate(), wf.DeliveryRate(), fa.DeliveryRate())
	}
	if fa.DeliveryRate() <= xy.DeliveryRate() {
		t.Errorf("adaptivity bought nothing: xy=%.3f fa=%.3f", xy.DeliveryRate(), fa.DeliveryRate())
	}
	// DDPM stays exact on everything that arrives, detours included.
	for _, row := range []E6Row{xy, wf, fa} {
		if row.DDPMCorrect != row.Delivered {
			t.Errorf("%s: DDPM correct %d of %d delivered", row.Routing, row.DDPMCorrect, row.Delivered)
		}
	}
}

func TestRunE6Validation(t *testing.T) {
	if _, err := RunE6(Mesh2D(4), "xy", -0.1, 10, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := RunE6(Mesh2D(4), "xy", 1.0, 10, 1); err == nil {
		t.Error("fraction 1.0 accepted")
	}
	if _, err := RunE6(Mesh2D(4), "bogus", 0.1, 10, 1); err == nil {
		t.Error("bogus routing accepted")
	}
}
