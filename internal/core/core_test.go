package core

import (
	"strings"
	"testing"
)

func TestBuildTopologySpecs(t *testing.T) {
	cases := []struct {
		spec  TopoSpec
		nodes int
	}{
		{Mesh2D(4), 16},
		{Torus2D(8), 64},
		{Cube(5), 32},
		{Mesh(4, 3, 2), 24},
	}
	for _, tc := range cases {
		net, err := BuildTopology(tc.spec)
		if err != nil {
			t.Fatalf("%v: %v", tc.spec, err)
		}
		if net.NumNodes() != tc.nodes {
			t.Errorf("%v: %d nodes, want %d", tc.spec, net.NumNodes(), tc.nodes)
		}
	}
	bad := []TopoSpec{
		{Kind: "mesh"},
		{Kind: "torus"},
		{Kind: "hypercube", Dims: []int{3, 3}},
		{Kind: "ring", Dims: []int{8}},
	}
	for _, spec := range bad {
		if _, err := BuildTopology(spec); err == nil {
			t.Errorf("spec %v accepted", spec)
		}
	}
	if Mesh2D(8).String() != "mesh-8x8" {
		t.Errorf("String = %q", Mesh2D(8).String())
	}
}

func TestBuildRoutingAllNames(t *testing.T) {
	net, _ := BuildTopology(Mesh2D(4))
	for _, name := range RoutingNames() {
		alg, err := BuildRouting(name, net)
		if err != nil {
			t.Errorf("routing %q: %v", name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("routing %q has empty name", name)
		}
	}
	if _, err := BuildRouting("bogus", net); err == nil {
		t.Error("unknown routing accepted")
	}
	// Turn models on incompatible topologies must return errors, not
	// panic.
	cube, _ := BuildTopology(Cube(3))
	if _, err := BuildRouting("west-first", cube); err == nil {
		t.Error("west-first on hypercube accepted")
	}
}

func TestBuildSchemeAllNames(t *testing.T) {
	net, _ := BuildTopology(Mesh2D(8))
	src := testStream()
	for _, name := range SchemeNames() {
		s, err := BuildScheme(name, net, 0.1, src)
		if err != nil {
			t.Errorf("scheme %q: %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("scheme %q nil", name)
		}
	}
	if _, err := BuildScheme("bogus", net, 0.1, src); err == nil {
		t.Error("unknown scheme accepted")
	}
	// Scalability limits surface as errors.
	big, _ := BuildTopology(Mesh2D(256))
	if _, err := BuildScheme("ddpm", big, 0, src); err == nil {
		t.Error("DDPM on 256x256 accepted")
	}
}

func TestBuildClusterDefaults(t *testing.T) {
	cl, err := Build(Config{Topo: Mesh2D(8), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Scheme.Name() != "ddpm" {
		t.Errorf("default scheme = %q", cl.Scheme.Name())
	}
	if cl.Router.Alg.Name() != "minimal-adaptive" {
		t.Errorf("default routing = %q", cl.Router.Alg.Name())
	}
	if _, err := cl.DDPM(); err != nil {
		t.Errorf("DDPM accessor: %v", err)
	}
	cl2, _ := Build(Config{Topo: Mesh2D(8), Scheme: "dpm", Seed: 1})
	if _, err := cl2.DDPM(); err == nil {
		t.Error("DDPM accessor on dpm cluster succeeded")
	}
}

func TestBuildClusterBadConfigs(t *testing.T) {
	bad := []Config{
		{Topo: TopoSpec{Kind: "nope", Dims: []int{4}}},
		{Topo: Mesh2D(4), Routing: "nope"},
		{Topo: Mesh2D(4), Selector: "nope"},
		{Topo: Mesh2D(4), Scheme: "nope"},
		{Topo: Cube(3), Routing: "west-first"},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScalabilityTables(t *testing.T) {
	for _, table := range []int{1, 2, 3} {
		rows, err := ScalabilityTable(table)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("table %d has %d rows", table, len(rows))
		}
		var sb strings.Builder
		if err := WriteTable(&sb, table); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "Table") {
			t.Error("table output missing header")
		}
	}
	// Table 1 and 3 agree with the paper; Table 2's mesh row does not.
	r1, _ := ScalabilityTable(1)
	if !r1[0].Agree || !r1[1].Agree {
		t.Error("table 1 should agree with the paper")
	}
	r2, _ := ScalabilityTable(2)
	if r2[0].Agree {
		t.Error("table 2 mesh row unexpectedly agrees (paper is inconsistent)")
	}
	if !r2[1].Agree {
		t.Error("table 2 hypercube row should agree")
	}
	r3, _ := ScalabilityTable(3)
	if !r3[0].Agree || !r3[1].Agree {
		t.Error("table 3 should agree with the paper")
	}
	if _, err := ScalabilityTable(4); err == nil {
		t.Error("table 4 accepted")
	}
}

func TestFigure2Matrix(t *testing.T) {
	cells, err := Figure2(7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]bool{ // scenario -> algorithm -> deliverable
		"a": {"xy": true, "west-first": true, "fully-adaptive": true},
		"b": {"xy": false, "west-first": true, "fully-adaptive": true},
		"c": {"xy": false, "west-first": false, "fully-adaptive": true},
	}
	for _, c := range cells {
		w := want[c.Scenario][c.Algorithm]
		if c.S1OK != w || c.S2OK != w {
			t.Errorf("scenario %s / %s: S1=%v S2=%v, want %v",
				c.Scenario, c.Algorithm, c.S1OK, c.S2OK, w)
		}
	}
	var sb strings.Builder
	if err := WriteFigure2(&sb, 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") {
		t.Error("figure output missing header")
	}
}

func TestFigure3Traces(t *testing.T) {
	vecs, src, err := Figure3bTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 7 || !vecs[6].Equal([]int{1, 2}) {
		t.Errorf("3b vectors = %v", vecs)
	}
	if !src.Equal([]int{1, 1}) {
		t.Errorf("3b identified %v, want (1,1)", src)
	}

	vecs, src, err = Figure3cTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 6 || !vecs[5].Equal([]int{1, 1, 0}) {
		t.Errorf("3c vectors = %v", vecs)
	}
	if !src.Equal([]int{1, 1, 0}) {
		t.Errorf("3c identified %v, want (1,1,0)", src)
	}

	samples, err := Figure3aTrace()
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := []string{
		"(0001, 0011, 3)",
		"(0011, 0010, 2)",
		"(0010, 0110, 1)",
		"(0110, ----, 0)",
	}
	if len(samples) != len(wantSamples) {
		t.Fatalf("3a samples = %v", samples)
	}
	for i, w := range wantSamples {
		if samples[i] != w {
			t.Errorf("3a sample %d = %q, want %q", i, samples[i], w)
		}
	}
}
