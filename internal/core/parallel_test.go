package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunParallelOrderPreserved(t *testing.T) {
	got, err := RunParallel(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunParallelUsesConcurrency(t *testing.T) {
	var cur, peak int64
	gate := make(chan struct{})
	_, err := RunParallel(8, 4, func(i int) (int, error) {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		if i == 0 {
			// Block until at least one other worker has raised the
			// peak, proving overlap.
			<-gate
		}
		if atomic.LoadInt64(&peak) >= 2 {
			select {
			case gate <- struct{}{}:
			default:
			}
		}
		atomic.AddInt64(&cur, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak)
	}
}

func TestRunParallelFirstErrorDeterministic(t *testing.T) {
	e3 := errors.New("job 3")
	e7 := errors.New("job 7")
	for trial := 0; trial < 20; trial++ {
		_, err := RunParallel(10, 5, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, e3
			case 7:
				return 0, e7
			}
			return i, nil
		})
		if !errors.Is(err, e3) {
			t.Fatalf("trial %d: err = %v, want the lowest-index error", trial, err)
		}
	}
}

func TestRunParallelEdgeCases(t *testing.T) {
	if _, err := RunParallel(-1, 2, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n accepted")
	}
	got, err := RunParallel(0, 2, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("empty run: %v %v", got, err)
	}
	// workers <= 0 defaults sanely.
	got, err = RunParallel(3, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Errorf("default workers: %v %v", got, err)
	}
	// workers > n must clamp, not spawn idle goroutines or deadlock.
	got, err = RunParallel(2, 64, func(i int) (int, error) { return i + 10, nil })
	if err != nil || len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("workers > n: %v %v", got, err)
	}
}

func TestRunParallelBoundaryErrors(t *testing.T) {
	// An error in the very first or very last job must surface, and when
	// both fail the lowest index wins — the boundary cases of the
	// deterministic-error contract.
	e0 := errors.New("job 0")
	eN := errors.New("job n-1")
	const n = 16
	_, err := RunParallel(n, 4, func(i int) (int, error) {
		if i == 0 {
			return 0, e0
		}
		return i, nil
	})
	if !errors.Is(err, e0) {
		t.Errorf("error in job 0: got %v", err)
	}
	_, err = RunParallel(n, 4, func(i int) (int, error) {
		if i == n-1 {
			return 0, eN
		}
		return i, nil
	})
	if !errors.Is(err, eN) {
		t.Errorf("error in job n-1: got %v", err)
	}
	_, err = RunParallel(n, 4, func(i int) (int, error) {
		switch i {
		case 0:
			return 0, e0
		case n - 1:
			return 0, eN
		}
		return i, nil
	})
	if !errors.Is(err, e0) {
		t.Errorf("both boundaries fail: got %v, want lowest index", err)
	}
}

func TestRunParallelE3SweepMatchesSequential(t *testing.T) {
	// The real use: a parallel E3 sweep must produce exactly the rows a
	// sequential loop does (independent seeds, no shared state).
	specs := []TopoSpec{Mesh2D(4), Mesh2D(8), Torus2D(4), Cube(4)}
	par, err := RunParallel(len(specs), 4, func(i int) (E3Row, error) {
		return RunE3(specs[i], "minimal-adaptive", 50, uint64(i)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		seq, err := RunE3(spec, "minimal-adaptive", 50, uint64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] != seq {
			t.Errorf("spec %v: parallel %+v != sequential %+v", spec, par[i], seq)
		}
	}
}
