package victim

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/marking"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traceback"
)

type rig struct {
	net     topology.Network
	sim     *netsim.Network
	plan    *packet.AddrPlan
	svc     *Service
	clients *Clients
	ddpm    *marking.DDPM
}

func newRig(t *testing.T, capacity int) *rig {
	t.Helper()
	m := topology.NewMesh2D(6)
	d, err := marking.NewDDPM(m)
	if err != nil {
		t.Fatal(err)
	}
	r := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	r.Sel = routing.RandomSelector{R: rng.NewStream(1)}
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	sim, err := netsim.New(netsim.Config{Net: m, Router: r, Scheme: d, Plan: plan, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	svcNode := m.IndexOf(topology.Coord{5, 5})
	svc, err := NewService(sim, plan, svcNode, capacity, 2000)
	if err != nil {
		t.Fatal(err)
	}
	clients := NewClients(sim, plan, svcNode)
	sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		svc.HandleDeliver(now, pk)
		clients.HandleDeliver(now, pk)
	})
	return &rig{net: m, sim: sim, plan: plan, svc: svc, clients: clients, ddpm: d}
}

func TestHandshakeCompletesWithoutAttack(t *testing.T) {
	rg := newRig(t, 64)
	// Distinct client nodes: the reduced TCP model has no ports, so two
	// concurrent attempts from one node share a half-open entry.
	const N = 30
	for i := 0; i < N; i++ {
		node := topology.NodeID(i)
		if node == rg.svc.Node {
			continue
		}
		rg.clients.Connect(eventq.Time(i*20), node)
	}
	rg.sim.RunAll(100_000_000)
	if rg.svc.Established != rg.clients.Attempts {
		t.Errorf("established %d/%d without attack", rg.svc.Established, rg.clients.Attempts)
	}
	if rg.svc.Refused != 0 || rg.clients.Backscatter != 0 {
		t.Errorf("refused %d, backscatter %d on clean run", rg.svc.Refused, rg.clients.Backscatter)
	}
	if rg.svc.HalfOpen() != 0 {
		t.Errorf("half-open table not drained: %d", rg.svc.HalfOpen())
	}
}

func TestSYNFloodDeniesServiceAndBackscatters(t *testing.T) {
	rg := newRig(t, 16) // small table: the flood pins it
	// Zombie floods with random spoofed sources.
	flood := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: topology.NodeID(0), Victim: rg.svc.Node,
			Arrival: attack.CBR{Interval: 2},
			Spoof:   attack.RandomSpoof{Plan: rg.plan, R: rng.NewStream(3)},
		}},
		Start: 0, Stop: 4000,
		RandomID: rng.NewStream(4),
	}
	if err := flood.Launch(rg.sim, rg.plan); err != nil {
		t.Fatal(err)
	}
	// Legit clients try during the flood.
	r := rng.NewStream(5)
	const N = 60
	for i := 0; i < N; i++ {
		node := topology.NodeID(1 + r.Intn(rg.net.NumNodes()-2))
		rg.clients.Connect(eventq.Time(500+i*50), node)
	}
	rg.sim.RunAll(500_000_000)

	if rg.svc.Refused == 0 {
		t.Error("flood never exhausted the half-open table")
	}
	if rg.svc.Established >= N {
		t.Errorf("all %d legit handshakes completed during the flood — no denial observed", N)
	}
	if rg.clients.Backscatter == 0 {
		t.Error("random spoofing produced no backscatter SYN-ACKs")
	}
}

func TestBlockingRestoresService(t *testing.T) {
	// The full paper story at service level: flood, identify with DDPM,
	// block at the service's front door, and the completion rate for
	// legitimate clients recovers.
	runPhase := func(withBlock bool) (established uint64, attempts int) {
		rg := newRig(t, 16)
		zombie := topology.NodeID(0)
		if withBlock {
			bl := filter.NewBlocklist(rg.ddpm, rg.svc.Node)
			bl.Block(zombie) // identified in the measurement phase below
			rg.svc.Blocklist = bl
		}
		flood := &attack.Flood{
			Zombies: []attack.Zombie{{
				Node: zombie, Victim: rg.svc.Node,
				Arrival: attack.CBR{Interval: 2},
				Spoof:   attack.RandomSpoof{Plan: rg.plan, R: rng.NewStream(6)},
			}},
			Start: 0, Stop: 4000,
			RandomID: rng.NewStream(7),
		}
		if err := flood.Launch(rg.sim, rg.plan); err != nil {
			t.Fatal(err)
		}
		r := rng.NewStream(8)
		const N = 60
		for i := 0; i < N; i++ {
			node := topology.NodeID(1 + r.Intn(rg.net.NumNodes()-2))
			rg.clients.Connect(eventq.Time(500+i*50), node)
		}
		rg.sim.RunAll(500_000_000)
		return rg.svc.Established, N
	}

	before, n := runPhase(false)
	after, _ := runPhase(true)
	if after != uint64(n) {
		t.Errorf("with blocking: %d/%d handshakes completed", after, n)
	}
	if before >= after {
		t.Errorf("blocking did not improve service: %d -> %d", before, after)
	}
}

func TestDDPMIdentifiesFloodAtServiceLevel(t *testing.T) {
	rg := newRig(t, 16)
	zombie := topology.NodeID(7)
	ident := traceback.NewDDPMIdentifier(rg.ddpm, rg.svc.Node)
	rg.sim.OnDeliver(func(now eventq.Time, pk *packet.Packet) {
		if pk.DstNode == rg.svc.Node {
			ident.Observe(pk)
		}
		rg.svc.HandleDeliver(now, pk)
		rg.clients.HandleDeliver(now, pk)
	})
	flood := &attack.Flood{
		Zombies: []attack.Zombie{{
			Node: zombie, Victim: rg.svc.Node,
			Arrival: attack.CBR{Interval: 3},
			Spoof:   attack.RandomSpoof{Plan: rg.plan, R: rng.NewStream(9)},
		}},
		Start: 0, Stop: 3000,
		RandomID: rng.NewStream(10),
	}
	if err := flood.Launch(rg.sim, rg.plan); err != nil {
		t.Fatal(err)
	}
	rg.sim.RunAll(500_000_000)
	srcs := ident.SourcesAbove(100)
	if len(srcs) != 1 || srcs[0] != zombie {
		t.Errorf("identified %v, want [%d]", srcs, zombie)
	}
}

func TestServiceValidation(t *testing.T) {
	rg := newRig(t, 4)
	if _, err := NewService(rg.sim, rg.plan, 0, 0, 10); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewService(rg.sim, rg.plan, 0, 4, 0); err == nil {
		t.Error("zero timeout accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("self-connect accepted")
		}
	}()
	rg.clients.Connect(0, rg.svc.Node)
}
