// Package victim models the service under attack at connection-level
// fidelity: a TCP-like server with a bounded half-open table that
// answers SYNs with SYN-ACKs (sent to the — possibly spoofed — header
// source, producing real backscatter), benign clients that complete the
// three-way handshake, and the service-denial metric the paper's §1
// scenario is ultimately about: what fraction of legitimate connection
// attempts still succeed during the flood, and how much of that
// recovers once DDPM-identified sources are blocked.
package victim

import (
	"fmt"

	"repro/internal/eventq"
	"repro/internal/filter"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Service is the attacked server: it owns a bounded half-open table
// (the SYN flood's target resource) and replies through the fabric.
type Service struct {
	Node     topology.NodeID
	Capacity int
	Timeout  eventq.Time

	sim  *netsim.Network
	plan *packet.AddrPlan

	// Blocklist, when set, is consulted before the SYN occupies table
	// space — the identify-then-block payoff.
	Blocklist *filter.Blocklist

	halfOpen map[packet.Addr]eventq.Time

	// Counters.
	SynSeen     uint64
	Refused     uint64 // SYNs dropped because the table was full
	Blocked     uint64 // SYNs dropped by the blocklist
	Established uint64 // handshakes completed
}

// NewService attaches a server to a node.
func NewService(sim *netsim.Network, plan *packet.AddrPlan, node topology.NodeID,
	capacity int, timeout eventq.Time) (*Service, error) {
	if capacity <= 0 || timeout <= 0 {
		return nil, fmt.Errorf("victim: bad service spec capacity=%d timeout=%d", capacity, timeout)
	}
	return &Service{
		Node: node, Capacity: capacity, Timeout: timeout,
		sim: sim, plan: plan,
		halfOpen: make(map[packet.Addr]eventq.Time),
	}, nil
}

// HalfOpen returns the current table occupancy.
func (s *Service) HalfOpen() int { return len(s.halfOpen) }

// HandleDeliver processes one packet delivered to the service's node.
// Call it from the simulator's delivery fan-out.
func (s *Service) HandleDeliver(now eventq.Time, pk *packet.Packet) {
	if pk.DstNode != s.Node {
		return
	}
	// Reap stale half-opens.
	for a, t0 := range s.halfOpen {
		if now-t0 > s.Timeout {
			delete(s.halfOpen, a)
		}
	}
	switch pk.Hdr.Proto {
	case packet.ProtoTCPSYN:
		s.SynSeen++
		if s.Blocklist != nil && s.Blocklist.Check(pk) == filter.Drop {
			s.Blocked++
			return
		}
		if len(s.halfOpen) >= s.Capacity {
			s.Refused++
			return
		}
		s.halfOpen[pk.Hdr.Src] = now
		// SYN-ACK goes to whatever the header claims — spoofed sources
		// turn this into backscatter at innocent nodes.
		if claimed, ok := s.plan.NodeOf(pk.Hdr.Src); ok && claimed != s.Node {
			reply := packet.NewPacket(s.plan, s.Node, claimed, packet.ProtoTCPACK, 0)
			reply.PayloadLen = synAckMarker
			reply.Hdr.Length = packet.HeaderLen + synAckMarker
			s.sim.Inject(reply)
		}
	case packet.ProtoTCPACK:
		if _, open := s.halfOpen[pk.Hdr.Src]; open && pk.PayloadLen != synAckMarker {
			delete(s.halfOpen, pk.Hdr.Src)
			s.Established++
		}
	}
}

// synAckMarker distinguishes the server's SYN-ACK from a client's final
// ACK (both ride ProtoTCPACK in this reduced TCP model).
const synAckMarker = 1

// Clients drives benign connection attempts: each client sends a SYN
// and, upon receiving the SYN-ACK, immediately ACKs to complete the
// handshake.
type Clients struct {
	sim     *netsim.Network
	plan    *packet.AddrPlan
	service topology.NodeID

	Attempts    uint64
	SynAcksSeen uint64

	// Backscatter counts SYN-ACKs arriving at nodes that never opened a
	// connection — the spoofed-source fallout.
	Backscatter uint64

	pending map[topology.NodeID]int // node -> outstanding attempts
}

// NewClients builds the benign population targeting one service.
func NewClients(sim *netsim.Network, plan *packet.AddrPlan, service topology.NodeID) *Clients {
	return &Clients{sim: sim, plan: plan, service: service, pending: make(map[topology.NodeID]int)}
}

// Connect schedules one legitimate connection attempt from node at time
// at.
func (c *Clients) Connect(at eventq.Time, node topology.NodeID) {
	if node == c.service {
		panic("victim: service cannot connect to itself")
	}
	c.Attempts++
	c.pending[node]++
	syn := packet.NewPacket(c.plan, node, c.service, packet.ProtoTCPSYN, 0)
	c.sim.InjectAt(at, syn)
}

// HandleDeliver processes SYN-ACKs arriving at client nodes. Call it
// from the simulator's delivery fan-out.
func (c *Clients) HandleDeliver(_ eventq.Time, pk *packet.Packet) {
	if pk.Hdr.Proto != packet.ProtoTCPACK || pk.PayloadLen != synAckMarker {
		return
	}
	if pk.DstNode == c.service {
		return
	}
	if c.pending[pk.DstNode] > 0 {
		c.pending[pk.DstNode]--
		c.SynAcksSeen++
		ack := packet.NewPacket(c.plan, pk.DstNode, c.service, packet.ProtoTCPACK, 0)
		c.sim.Inject(ack)
	} else {
		c.Backscatter++
	}
}
