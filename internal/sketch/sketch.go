// Package sketch provides the probabilistic pre-identification stage
// of the pipeline: a conservative-update count-min sketch plus a
// space-saving heavy-hitter table over destination ids. Together they
// answer "is this destination hot enough to deserve exact per-victim
// state?" in O(1) per record with a few MB total, in the spirit of
// in-network volumetric victim identification — the cheap discovery
// pass that gates the paper's expensive exact identification (§5).
//
// Both structures are single-writer: the pipeline gives each shard
// worker its own instances, so no operation here takes a lock.
package sketch

// mix64 is the SplitMix64 finalizer — the per-row hash for CountMin.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CountMin is a conservative-update count-min sketch over uint64 keys.
// Width rounds up to a power of two so row indexing is a mask, and
// conservative update (only raise cells below the new estimate) keeps
// the overestimate bias minimal for skewed streams.
type CountMin struct {
	mask  uint64
	depth int
	rows  []uint32 // depth rows of width cells, flattened
}

// NewCountMin builds a sketch with the given row width (rounded up to
// a power of two, minimum 16) and depth (minimum 1).
func NewCountMin(width, depth int) *CountMin {
	w := uint64(16)
	for int(w) < width {
		w <<= 1
	}
	if depth < 1 {
		depth = 1
	}
	return &CountMin{mask: w - 1, depth: depth, rows: make([]uint32, w*uint64(depth))}
}

// Add counts one occurrence of key with conservative update and
// returns the new estimate (the minimum cell across rows). Saturates
// at MaxUint32 instead of wrapping.
func (c *CountMin) Add(key uint64) uint32 {
	h := mix64(key)
	w := c.mask + 1
	est := ^uint32(0)
	for r := 0; r < c.depth; r++ {
		i := uint64(r)*w + (h & c.mask)
		if v := c.rows[i]; v < est {
			est = v
		}
		h = mix64(h + uint64(r) + 1)
	}
	if est != ^uint32(0) {
		est++
	}
	h = mix64(key)
	for r := 0; r < c.depth; r++ {
		i := uint64(r)*w + (h & c.mask)
		if c.rows[i] < est {
			c.rows[i] = est
		}
		h = mix64(h + uint64(r) + 1)
	}
	return est
}

// Estimate returns the count estimate for key without mutating.
func (c *CountMin) Estimate(key uint64) uint32 {
	h := mix64(key)
	w := c.mask + 1
	est := ^uint32(0)
	for r := 0; r < c.depth; r++ {
		i := uint64(r)*w + (h & c.mask)
		if v := c.rows[i]; v < est {
			est = v
		}
		h = mix64(h + uint64(r) + 1)
	}
	return est
}

// Halve ages every cell by half — the windowed decay the pipeline runs
// every SketchDecayEvery records, so stale scans stop looking hot.
func (c *CountMin) Halve() {
	for i := range c.rows {
		c.rows[i] >>= 1
	}
}

// Bytes reports the sketch's memory footprint.
func (c *CountMin) Bytes() int { return len(c.rows) * 4 }

// Slot is one tracked heavy-hitter candidate. Count follows the
// space-saving rule (inherits the evicted minimum plus its own hits);
// Errs is the inherited part, so Count-Errs is exact since insertion.
// Buf holds the replay payloads appended while the key was tracked,
// capped at the table's bufCap — the pipeline replays them through the
// exact path on admission so no pre-admission record is lost.
type Slot[P any] struct {
	Key   uint64
	Count uint32
	Errs  uint32
	Buf   []P
}

// Guaranteed is the lower bound on the key's true count since the slot
// was (re)inserted — the admission test the pipeline applies.
func (s *Slot[P]) Guaranteed() uint32 { return s.Count - s.Errs }

// SpaceSaving tracks the top-K candidate keys of a stream with the
// space-saving algorithm, each slot carrying a bounded replay buffer.
// Eviction is additionally gated on the caller-provided count-min
// estimate: a key only displaces the minimum slot when the sketch says
// it is genuinely hotter, which stops one-shot scan keys from churning
// the table (classic space-saving would rotate every slot under a
// 1M-distinct-destination sweep).
type SpaceSaving[P any] struct {
	slots  []Slot[P]
	idx    map[uint64]int
	bufCap int

	// minHint is a monotone-safe lower bound on the minimum slot count
	// once the table is full: the true minimum never drops below it
	// (counts only grow between rescans), so estimates at or below it
	// reject in O(1) without scanning.
	minHint uint32
}

// NewSpaceSaving builds a table with the given slot capacity (minimum
// 1) and per-slot replay-buffer capacity (0 disables buffering).
func NewSpaceSaving[P any](capacity, bufCap int) *SpaceSaving[P] {
	if capacity < 1 {
		capacity = 1
	}
	if bufCap < 0 {
		bufCap = 0
	}
	return &SpaceSaving[P]{
		slots:  make([]Slot[P], 0, capacity),
		idx:    make(map[uint64]int, capacity),
		bufCap: bufCap,
	}
}

// Len returns the number of tracked keys.
func (t *SpaceSaving[P]) Len() int { return len(t.slots) }

// Touch counts one occurrence of key, appending item to its replay
// buffer while tracked (and under the buffer cap). est is the caller's
// count-min estimate for the key, consulted only when a full table
// would need an eviction. Returns the key's slot, or nil when the key
// is not tracked (table full and the estimate no hotter than the
// current minimum).
func (t *SpaceSaving[P]) Touch(key uint64, est uint32, item P) *Slot[P] {
	if i, ok := t.idx[key]; ok {
		s := &t.slots[i]
		s.Count++
		if len(s.Buf) < t.bufCap {
			s.Buf = append(s.Buf, item)
		}
		return s
	}
	if len(t.slots) < cap(t.slots) {
		t.slots = append(t.slots, Slot[P]{Key: key, Count: 1})
		i := len(t.slots) - 1
		t.idx[key] = i
		s := &t.slots[i]
		if t.bufCap > 0 {
			if s.Buf == nil {
				s.Buf = make([]P, 0, t.bufCap)
			}
			s.Buf = append(s.Buf, item)
		}
		return s
	}
	if est <= t.minHint {
		return nil // certainly no hotter than the coldest slot
	}
	mi := 0
	for i := 1; i < len(t.slots); i++ {
		if t.slots[i].Count < t.slots[mi].Count {
			mi = i
		}
	}
	min := t.slots[mi].Count
	t.minHint = min
	if est <= min {
		return nil
	}
	// Space-saving eviction: the newcomer inherits the minimum count as
	// its error bound and starts a fresh replay buffer.
	s := &t.slots[mi]
	delete(t.idx, s.Key)
	t.idx[key] = mi
	s.Key = key
	s.Errs = min
	s.Count = min + 1
	s.Buf = s.Buf[:0]
	if t.bufCap > 0 {
		s.Buf = append(s.Buf, item)
	}
	return s
}

// Get returns the slot tracking key, or nil.
func (t *SpaceSaving[P]) Get(key uint64) *Slot[P] {
	if i, ok := t.idx[key]; ok {
		return &t.slots[i]
	}
	return nil
}

// Remove frees key's slot (the pipeline calls it on admission, when
// the key graduates to exact state). The freed slot's replay buffer is
// kept for reuse. Reports whether the key was tracked.
func (t *SpaceSaving[P]) Remove(key uint64) bool {
	i, ok := t.idx[key]
	if !ok {
		return false
	}
	delete(t.idx, key)
	last := len(t.slots) - 1
	freed := t.slots[i].Buf[:0]
	if i != last {
		t.slots[i] = t.slots[last]
		t.idx[t.slots[i].Key] = i
		t.slots[last].Buf = freed
	} else {
		t.slots[i].Buf = freed
	}
	t.slots[last].Key = 0
	t.slots[last].Count = 0
	t.slots[last].Errs = 0
	t.slots = t.slots[:last]
	t.minHint = 0 // the table is no longer full; hint re-derives on next scan
	return true
}

// Halve ages every slot by half, dropping slots that reach zero —
// run alongside CountMin.Halve so the two stay comparable.
func (t *SpaceSaving[P]) Halve() {
	for i := 0; i < len(t.slots); {
		s := &t.slots[i]
		s.Count >>= 1
		s.Errs >>= 1
		if s.Count == 0 {
			t.Remove(s.Key)
			continue // Remove swapped a new slot into i
		}
		i++
	}
	t.minHint >>= 1
}
