package sketch

import "testing"

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(1<<10, 4)
	truth := map[uint64]uint32{}
	// Skewed stream: a few hot keys over a wide cold tail.
	for i := 0; i < 20000; i++ {
		key := uint64(i % 997)
		if i%3 == 0 {
			key = uint64(i % 7) // hot subset
		}
		cm.Add(key)
		truth[key]++
	}
	for key, want := range truth {
		if got := cm.Estimate(key); got < want {
			t.Fatalf("key %d: estimate %d < true count %d", key, got, want)
		}
	}
	if got := cm.Estimate(1 << 40); got > 64 {
		t.Fatalf("never-seen key estimated at %d", got)
	}
}

func TestCountMinHalve(t *testing.T) {
	cm := NewCountMin(64, 2)
	for i := 0; i < 100; i++ {
		cm.Add(42)
	}
	before := cm.Estimate(42)
	cm.Halve()
	if got := cm.Estimate(42); got != before/2 {
		t.Fatalf("after Halve: estimate %d, want %d", got, before/2)
	}
}

func TestCountMinWidthRounding(t *testing.T) {
	cm := NewCountMin(1000, 3)
	if cm.mask+1 != 1024 {
		t.Fatalf("width %d, want 1024", cm.mask+1)
	}
	if cm.Bytes() != 1024*3*4 {
		t.Fatalf("Bytes %d", cm.Bytes())
	}
}

func TestSpaceSavingTracksHeavyHitters(t *testing.T) {
	cm := NewCountMin(1<<12, 4)
	ss := NewSpaceSaving[int](8, 4)
	// 4 heavy keys (1000 each) interleaved with 10k one-shot keys.
	heavy := []uint64{100, 200, 300, 400}
	hi, cold := 0, uint64(1_000_000)
	for i := 0; i < 4000+10000; i++ {
		var key uint64
		if i%14 < 4 {
			key = heavy[hi%4]
			hi++
		} else {
			key = cold
			cold++
		}
		ss.Touch(key, cm.Add(key), i)
	}
	for _, h := range heavy {
		s := ss.Get(h)
		if s == nil {
			t.Fatalf("heavy key %d not tracked", h)
		}
		if g := s.Guaranteed(); g < 900 {
			t.Fatalf("heavy key %d: guaranteed %d, want ~1000", h, g)
		}
		if len(s.Buf) != 4 {
			t.Fatalf("heavy key %d: buffer %d items, cap 4", h, len(s.Buf))
		}
	}
}

func TestSpaceSavingScanDoesNotChurn(t *testing.T) {
	// A sweep of distinct keys over a full table must not evict
	// established slots: every newcomer's estimate equals the minimum,
	// never exceeds it.
	cm := NewCountMin(1<<14, 4)
	ss := NewSpaceSaving[int](4, 0)
	for k := uint64(0); k < 4; k++ {
		for i := 0; i < 10; i++ {
			ss.Touch(k, cm.Add(k), 0)
		}
	}
	for k := uint64(1000); k < 6000; k++ {
		if s := ss.Touch(k, cm.Add(k), 0); s != nil {
			t.Fatalf("one-shot key %d evicted an established slot", k)
		}
	}
	for k := uint64(0); k < 4; k++ {
		if ss.Get(k) == nil {
			t.Fatalf("established key %d lost to the scan", k)
		}
	}
}

func TestSpaceSavingEvictionInheritsError(t *testing.T) {
	cm := NewCountMin(1<<12, 4)
	ss := NewSpaceSaving[int](2, 8)
	for i := 0; i < 5; i++ {
		ss.Touch(1, cm.Add(1), i)
	}
	for i := 0; i < 3; i++ {
		ss.Touch(2, cm.Add(2), i)
	}
	// Key 3 overtakes key 2 (count 3) once its estimate exceeds it.
	var s *Slot[int]
	for i := 0; i < 4; i++ {
		s = ss.Touch(3, cm.Add(3), i)
	}
	if s == nil {
		t.Fatal("key 3 never evicted the minimum slot")
	}
	if s.Key != 3 || s.Errs != 3 || s.Count != 4 {
		t.Fatalf("evicted slot = %+v, want Key 3 Errs 3 Count 4", *s)
	}
	if s.Guaranteed() != 1 {
		t.Fatalf("Guaranteed %d, want 1 (only the crossing touch is certain)", s.Guaranteed())
	}
	if len(s.Buf) != 1 {
		t.Fatalf("replay buffer %d items after eviction, want 1 (fresh)", len(s.Buf))
	}
	if ss.Get(2) != nil {
		t.Fatal("evicted key 2 still tracked")
	}
}

func TestSpaceSavingRemove(t *testing.T) {
	cm := NewCountMin(1<<10, 2)
	ss := NewSpaceSaving[int](4, 2)
	for k := uint64(1); k <= 4; k++ {
		ss.Touch(k, cm.Add(k), int(k))
	}
	if !ss.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if ss.Remove(2) {
		t.Fatal("double Remove(2) = true")
	}
	if ss.Len() != 3 {
		t.Fatalf("Len %d, want 3", ss.Len())
	}
	for _, k := range []uint64{1, 3, 4} {
		if ss.Get(k) == nil {
			t.Fatalf("key %d lost after unrelated Remove", k)
		}
	}
	// The freed capacity is reusable.
	if s := ss.Touch(9, 1, 9); s == nil || s.Key != 9 {
		t.Fatal("freed slot not reusable")
	}
}

func TestSpaceSavingHalveDropsCold(t *testing.T) {
	cm := NewCountMin(1<<10, 2)
	ss := NewSpaceSaving[int](4, 0)
	for i := 0; i < 8; i++ {
		ss.Touch(1, cm.Add(1), 0)
	}
	ss.Touch(2, cm.Add(2), 0) // count 1 → halves to 0
	ss.Halve()
	if ss.Get(2) != nil {
		t.Fatal("cold key survived Halve")
	}
	s := ss.Get(1)
	if s == nil || s.Count != 4 {
		t.Fatalf("hot key after Halve = %+v, want Count 4", s)
	}
}
