// Package routing implements the routing algorithms of the paper's §3
// and Figure 2 for direct networks: deterministic dimension-order
// routing (XY in 2-D meshes, e-cube in hypercubes), the turn-model
// partially adaptive algorithms (west-first, north-last,
// negative-first), and fully adaptive routing — minimal, and
// non-minimal with a misroute budget for livelock avoidance (the paper
// notes adaptive routers need "livelock avoidance (or, recovery)
// schemes").
//
// An Algorithm is a memoryless routing function: given the current and
// destination nodes it returns the permissible next hops, split into
// productive (minimal) and non-productive (legal misroutes) tiers. A
// Router combines an algorithm with a link-state view (failures,
// congestion), a selection policy among candidates, and the misroute
// budget.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Adaptivity classifies an algorithm per the paper's taxonomy.
type Adaptivity int

const (
	Deterministic Adaptivity = iota
	PartiallyAdaptive
	FullyAdaptive
)

func (a Adaptivity) String() string {
	switch a {
	case Deterministic:
		return "deterministic"
	case PartiallyAdaptive:
		return "partially-adaptive"
	case FullyAdaptive:
		return "fully-adaptive"
	default:
		return fmt.Sprintf("adaptivity(%d)", int(a))
	}
}

// Algorithm is a memoryless routing function over a fixed network.
// Implementations must be deterministic: all nondeterminism lives in
// the Router's selection policy.
type Algorithm interface {
	Name() string
	Adaptivity() Adaptivity

	// Candidates returns permissible next hops from cur toward dst.
	// productive hops reduce the remaining distance; nonproductive hops
	// are legal under the algorithm's turn rules but do not (used only
	// for fault tolerance / congestion escape, charged against the
	// router's misroute budget). cur must differ from dst.
	Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID)
}

// CandidateAppender is the allocation-free fast path of Algorithm:
// implementations append candidates into the caller-provided buffers
// (reused across hops by the Router) instead of allocating fresh
// slices. Algorithms that keep per-call scratch for this are not safe
// for concurrent use — consistent with the simulator's one-Router-per-
// goroutine design.
type CandidateAppender interface {
	// AppendCandidates appends the permissible next hops to prod and
	// nonprod (passed with length 0) and returns the extended slices,
	// with the same semantics as Candidates.
	AppendCandidates(cur, dst topology.NodeID, prod, nonprod []topology.NodeID) (productive, nonproductive []topology.NodeID)
}

// LinkState is the router's dynamic view of the fabric: failed links
// and a congestion oracle (wired to output-queue depths by the network
// simulator).
type LinkState struct {
	failed map[topology.Link]bool

	// Congestion returns a load figure for the link (higher = more
	// congested). Nil means uncongested everywhere.
	Congestion func(topology.Link) int
}

// NewLinkState returns a state with no failures and no congestion.
func NewLinkState() *LinkState {
	return &LinkState{failed: make(map[topology.Link]bool)}
}

// Fail marks the directed link from→to as failed.
func (s *LinkState) Fail(from, to topology.NodeID) {
	s.failed[topology.Link{From: from, To: to}] = true
}

// FailBoth marks both directions of the cable between a and b failed.
func (s *LinkState) FailBoth(a, b topology.NodeID) {
	s.Fail(a, b)
	s.Fail(b, a)
}

// Repair clears a directed failure.
func (s *LinkState) Repair(from, to topology.NodeID) {
	delete(s.failed, topology.Link{From: from, To: to})
}

// Failed reports whether the directed link is down.
func (s *LinkState) Failed(from, to topology.NodeID) bool {
	return s.failed[topology.Link{From: from, To: to}]
}

// NumFailed returns the count of failed directed links.
func (s *LinkState) NumFailed() int { return len(s.failed) }

// load returns the congestion figure for a link.
func (s *LinkState) load(from, to topology.NodeID) int {
	if s.Congestion == nil {
		return 0
	}
	return s.Congestion(topology.Link{From: from, To: to})
}
