package routing

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func BenchmarkXYNextHop(b *testing.B) {
	m := topology.NewMesh2D(32)
	r := NewRouter(m, NewXY(m))
	n := m.NumNodes()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % n)
		dst := topology.NodeID((i*17 + 3) % n)
		if src == dst {
			continue
		}
		if _, err := r.NextHop(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalAdaptiveNextHop(b *testing.B) {
	m := topology.NewMesh2D(32)
	r := NewRouter(m, NewMinimalAdaptive(m))
	r.Sel = RandomSelector{R: rng.NewStream(1)}
	n := m.NumNodes()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % n)
		dst := topology.NodeID((i*17 + 3) % n)
		if src == dst {
			continue
		}
		if _, err := r.NextHop(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkAcrossDiameter(b *testing.B) {
	m := topology.NewMesh2D(32)
	r := NewRouter(m, NewMinimalAdaptive(m))
	r.Sel = RandomSelector{R: rng.NewStream(2)}
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{31, 31})
	for i := 0; i < b.N; i++ {
		if _, err := r.Walk(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWestFirstCandidates(b *testing.B) {
	m := topology.NewMesh2D(32)
	alg := NewWestFirst(m)
	n := m.NumNodes()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(i % n)
		dst := topology.NodeID((i*29 + 7) % n)
		if src == dst {
			continue
		}
		alg.Candidates(src, dst)
	}
}

func BenchmarkCongestionSelector(b *testing.B) {
	m := topology.NewMesh2D(8)
	r := NewRouter(m, NewMinimalAdaptive(m))
	r.Sel = CongestionSelector{R: rng.NewStream(3)}
	r.State.Congestion = func(l topology.Link) int { return int(l.To) % 5 }
	src := m.IndexOf(topology.Coord{0, 0})
	dst := m.IndexOf(topology.Coord{7, 7})
	for i := 0; i < b.N; i++ {
		if _, err := r.NextHop(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}
