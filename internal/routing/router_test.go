package routing

import (
	"errors"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestNextHopAtDestinationErrors(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	if _, err := r.NextHop(3, 3, 0); err == nil {
		t.Error("NextHop at destination did not error")
	}
}

func TestNextHopNoRoute(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	// XY from (0,0) to (0,1) with the east link down has no legal hop.
	r.State.Fail(id(m, 0, 0), id(m, 0, 1))
	_, err := r.NextHop(id(m, 0, 0), id(m, 0, 1), 0)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestMisrouteBudgetCharged(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewFullyAdaptiveMisroute(m))
	r.MisrouteBudget = 1
	// Fail the only productive link for (0,0)->(0,1).
	r.State.Fail(id(m, 0, 0), id(m, 0, 1))
	hop, err := r.NextHop(id(m, 0, 0), id(m, 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hop.Misroute {
		t.Error("escape hop not flagged as misroute")
	}
	// With the budget spent, the same situation strands.
	if _, err := r.NextHop(id(m, 0, 0), id(m, 0, 1), 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("budget-exhausted err = %v, want ErrNoRoute", err)
	}
}

func TestWalkLivelockGuard(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	if _, err := r.Walk(id(m, 0, 0), id(m, 3, 3), 2); err == nil {
		t.Error("Walk with tiny maxHops did not error")
	}
}

func TestWalkTrivial(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	p, err := r.Walk(5, 5, 0)
	if err != nil || len(p) != 1 || p[0] != 5 {
		t.Errorf("self walk = %v, %v", p, err)
	}
}

func TestCongestionSelectorPrefersLightLinks(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewMinimalAdaptive(m))
	heavy := topology.Link{From: id(m, 0, 0), To: id(m, 0, 1)}
	r.State.Congestion = func(l topology.Link) int {
		if l == heavy {
			return 10
		}
		return 0
	}
	r.Sel = CongestionSelector{R: rng.NewStream(1)}
	// From (0,0) to (1,1): both east and south are productive; east is
	// congested, so south must always win.
	for i := 0; i < 20; i++ {
		hop, err := r.NextHop(id(m, 0, 0), id(m, 1, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		if hop.Next != id(m, 1, 0) {
			t.Fatalf("congestion selector chose loaded link to %v", m.CoordOf(hop.Next))
		}
	}
}

func TestCongestionSelectorTieBreaksAcrossCandidates(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewMinimalAdaptive(m))
	r.Sel = CongestionSelector{R: rng.NewStream(7)}
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 100; i++ {
		hop, err := r.NextHop(id(m, 0, 0), id(m, 1, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[hop.Next] = true
	}
	if len(seen) != 2 {
		t.Errorf("tie-break explored %d candidates, want 2", len(seen))
	}
}

func TestSelectorNames(t *testing.T) {
	if (FirstSelector{}).Name() == "" || (RandomSelector{}).Name() == "" || (CongestionSelector{}).Name() == "" {
		t.Error("selector with empty name")
	}
}

func TestLinkStateRepair(t *testing.T) {
	s := NewLinkState()
	s.FailBoth(1, 2)
	if !s.Failed(1, 2) || !s.Failed(2, 1) {
		t.Error("FailBoth did not fail both directions")
	}
	if s.NumFailed() != 2 {
		t.Errorf("NumFailed = %d", s.NumFailed())
	}
	s.Repair(1, 2)
	if s.Failed(1, 2) {
		t.Error("Repair did not clear")
	}
	if !s.Failed(2, 1) {
		t.Error("Repair cleared the wrong direction")
	}
}

func TestDeliverableTrialsFloor(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	if !r.Deliverable(0, 5, 0) {
		t.Error("Deliverable with trials=0 should still attempt once")
	}
}

func TestFullyAdaptiveWalkWithMisroutesStillArrives(t *testing.T) {
	// Random-selection fully adaptive with a misroute budget must
	// deliver on a healthy network, possibly non-minimally.
	m := topology.NewMesh2D(5)
	r := NewRouter(m, NewFullyAdaptiveMisroute(m))
	r.Sel = RandomSelector{R: rng.NewStream(11)}
	r.MisrouteBudget = 3
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(trial % m.NumNodes())
		dst := topology.NodeID((trial*11 + 3) % m.NumNodes())
		if src == dst {
			continue
		}
		p, err := r.Walk(src, dst, 0)
		if err != nil {
			t.Fatalf("fully adaptive stranded %d->%d: %v", src, dst, err)
		}
		min := m.MinDistance(src, dst)
		if hops := len(p) - 1; hops < min || hops > min+2*r.MisrouteBudget {
			t.Fatalf("hop count %d outside [%d,%d]", hops, min, min+2*r.MisrouteBudget)
		}
	}
}
