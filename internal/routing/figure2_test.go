package routing

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Figure2Scenario reproduces the paper's Figure 2 on a 4×4 mesh:
// S1=(2,0), S2=(0,0), D=(1,2).
//
//	(a) no failures: XY routes both flows.
//	(b) the east links out of S1 and S2 fail: XY strands, west-first
//	    routes around via north/south.
//	(c) every link into D except the one from its east neighbor fails:
//	    west-first strands (it would need an illegal late west turn),
//	    fully adaptive routing with misrouting delivers.
type figure2 struct {
	m         *topology.Mesh
	s1, s2, d topology.NodeID
}

func newFigure2() figure2 {
	m := topology.NewMesh2D(4)
	return figure2{
		m:  m,
		s1: m.IndexOf(topology.Coord{2, 0}),
		s2: m.IndexOf(topology.Coord{0, 0}),
		d:  m.IndexOf(topology.Coord{1, 2}),
	}
}

// failB fails the eastward links out of both sources (the "two small
// blocks on the right side of sources").
func (f figure2) failB(state *LinkState) {
	state.FailBoth(f.s1, f.m.IndexOf(topology.Coord{2, 1}))
	state.FailBoth(f.s2, f.m.IndexOf(topology.Coord{0, 1}))
}

// failC leaves (1,3)→D as the only live link into D, so every delivery
// must end with a westward turn at D's east neighbor.
func (f figure2) failC(state *LinkState) {
	for _, nb := range []topology.Coord{{0, 2}, {2, 2}, {1, 1}} {
		state.FailBoth(f.m.IndexOf(nb), f.d)
	}
}

func TestFigure2aXYDelivers(t *testing.T) {
	f := newFigure2()
	r := NewRouter(f.m, NewXY(f.m))
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if !r.Deliverable(src, f.d, 1) {
			t.Errorf("XY failed to deliver from %v with no failures", f.m.CoordOf(src))
		}
	}
}

func TestFigure2bXYStrandsWestFirstDelivers(t *testing.T) {
	f := newFigure2()

	xy := NewRouter(f.m, NewXY(f.m))
	f.failB(xy.State)
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if xy.Deliverable(src, f.d, 1) {
			t.Errorf("XY delivered from %v despite failed east link", f.m.CoordOf(src))
		}
	}

	wf := NewRouter(f.m, NewWestFirst(f.m))
	wf.Sel = RandomSelector{R: rng.NewStream(2)}
	wf.MisrouteBudget = 4
	f.failB(wf.State)
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if !wf.Deliverable(src, f.d, 20) {
			t.Errorf("west-first failed to deliver from %v in scenario (b)", f.m.CoordOf(src))
		}
	}
}

func TestFigure2bWestFirstRoutesAroundViaRowMove(t *testing.T) {
	// The delivered path's first hop must be a row move (north for S1,
	// south for S2), as the paper narrates.
	f := newFigure2()
	wf := NewRouter(f.m, NewWestFirst(f.m))
	wf.Sel = RandomSelector{R: rng.NewStream(3)}
	f.failB(wf.State)
	path, err := wf.Walk(f.s2, f.d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != f.m.IndexOf(topology.Coord{1, 0}) {
		t.Errorf("S2 first hop %v, want south to (1,0)", f.m.CoordOf(path[1]))
	}
	path, err = wf.Walk(f.s1, f.d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != f.m.IndexOf(topology.Coord{1, 0}) {
		t.Errorf("S1 first hop %v, want north to (1,0)", f.m.CoordOf(path[1]))
	}
}

func TestFigure2cWestFirstStrandsFullyAdaptiveDelivers(t *testing.T) {
	f := newFigure2()

	wf := NewRouter(f.m, NewWestFirst(f.m))
	wf.Sel = RandomSelector{R: rng.NewStream(4)}
	wf.MisrouteBudget = 8
	f.failC(wf.State)
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if wf.Deliverable(src, f.d, 50) {
			t.Errorf("west-first delivered from %v despite requiring a late west turn", f.m.CoordOf(src))
		}
	}

	xy := NewRouter(f.m, NewXY(f.m))
	f.failC(xy.State)
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if xy.Deliverable(src, f.d, 1) {
			t.Errorf("XY delivered from %v in scenario (c)", f.m.CoordOf(src))
		}
	}

	fa := NewRouter(f.m, NewFullyAdaptiveMisroute(f.m))
	fa.Sel = RandomSelector{R: rng.NewStream(5)}
	fa.MisrouteBudget = 6
	f.failC(fa.State)
	for _, src := range []topology.NodeID{f.s1, f.s2} {
		if !fa.Deliverable(src, f.d, 200) {
			t.Errorf("fully adaptive failed to deliver from %v in scenario (c)", f.m.CoordOf(src))
		}
	}
}

func TestFigure2cDeliveredPathEntersFromEast(t *testing.T) {
	f := newFigure2()
	fa := NewRouter(f.m, NewFullyAdaptiveMisroute(f.m))
	fa.Sel = RandomSelector{R: rng.NewStream(6)}
	fa.MisrouteBudget = 6
	f.failC(fa.State)
	east := f.m.IndexOf(topology.Coord{1, 3})
	found := false
	for trial := 0; trial < 300 && !found; trial++ {
		path, err := fa.Walk(f.s1, f.d, 0)
		if err != nil {
			continue
		}
		if path[len(path)-2] != east {
			t.Fatalf("delivered path entered D from %v, only east neighbor is live",
				f.m.CoordOf(path[len(path)-2]))
		}
		found = true
	}
	if !found {
		t.Fatal("no delivered path found in 300 trials")
	}
}
