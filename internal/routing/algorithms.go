package routing

import (
	"fmt"

	"repro/internal/topology"
)

// DimensionOrder is deterministic dimension-order routing: resolve the
// lowest-index unresolved dimension completely before touching the
// next. On a 2-D mesh this is the paper's XY routing ("forwards packets
// along rows first and then along columns later. Just one turn is
// allowed"); on a hypercube it is e-cube routing. It offers exactly one
// path per (src, dst) pair, which is why classic marking schemes assume
// it — and why adaptive fabrics break them.
type DimensionOrder struct {
	net   topology.Network
	order []int // dimension resolution order
	name  string
	dimScratch
}

// dimScratch holds the reusable coordinate and move buffers behind the
// algorithms' AppendCandidates fast paths. One instance per algorithm
// value; makes the algorithm single-goroutine, as the simulator already
// is.
type dimScratch struct {
	cc, dc topology.Coord
	moves  []topology.DimDir
}

func newDimScratch(net topology.Network) dimScratch {
	n := len(net.Dims())
	return dimScratch{cc: make(topology.Coord, n), dc: make(topology.Coord, n)}
}

// NewDimensionOrder builds DOR resolving dimensions in ascending index
// order, for any topology.
func NewDimensionOrder(net topology.Network) *DimensionOrder {
	order := make([]int, len(net.Dims()))
	for i := range order {
		order[i] = i
	}
	return &DimensionOrder{net: net, order: order, name: "dor", dimScratch: newDimScratch(net)}
}

// NewXY builds the paper's XY routing on a 2-D network: packets move
// along the row (resolving the column coordinate, dimension 1) first,
// then along the column (dimension 0) — "just one turn is allowed".
func NewXY(net topology.Network) *DimensionOrder {
	if len(net.Dims()) != 2 {
		panic(fmt.Sprintf("routing: XY requires a 2-D network, got %s", net.Name()))
	}
	return &DimensionOrder{net: net, order: []int{1, 0}, name: "xy", dimScratch: newDimScratch(net)}
}

func (d *DimensionOrder) Name() string           { return d.name }
func (d *DimensionOrder) Adaptivity() Adaptivity { return Deterministic }

func (d *DimensionOrder) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	return d.AppendCandidates(cur, dst, nil, nil)
}

// AppendCandidates resolves the first unresolved dimension in d.order;
// the move list is degree-bounded, so the dimension match is a scan
// rather than a map.
func (d *DimensionOrder) AppendCandidates(cur, dst topology.NodeID, prod, nonprod []topology.NodeID) (productive, nonproductive []topology.NodeID) {
	d.moves = topology.AppendMinimalDims(d.net, cur, dst, d.moves[:0], d.cc, d.dc)
	for _, dim := range d.order {
		for _, mv := range d.moves {
			if mv.Dim != dim {
				continue
			}
			next := d.net.Step(cur, mv.Dim, mv.Dir)
			if next == topology.None {
				return prod, nonprod
			}
			return append(prod, next), nonprod
		}
	}
	return prod, nonprod
}

// MinimalAdaptive is fully adaptive minimal routing: every productive
// dimension move is permissible at every hop, so the packet can slide
// around congestion and failures inside its minimal quadrant. It works
// on every topology.
type MinimalAdaptive struct {
	net topology.Network
	dimScratch
}

// NewMinimalAdaptive builds the algorithm for any topology.
func NewMinimalAdaptive(net topology.Network) *MinimalAdaptive {
	return &MinimalAdaptive{net: net, dimScratch: newDimScratch(net)}
}

func (m *MinimalAdaptive) Name() string           { return "minimal-adaptive" }
func (m *MinimalAdaptive) Adaptivity() Adaptivity { return FullyAdaptive }

func (m *MinimalAdaptive) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	return m.AppendCandidates(cur, dst, nil, nil)
}

// AppendCandidates reuses the scratch coordinates AppendMinimalDims
// filled, so the torus half-ring check needs no further lookups.
func (m *MinimalAdaptive) AppendCandidates(cur, dst topology.NodeID, prod, nonprod []topology.NodeID) (productive, nonproductive []topology.NodeID) {
	m.moves = topology.AppendMinimalDims(m.net, cur, dst, m.moves[:0], m.cc, m.dc)
	wrap := m.net.Wraparound()
	dims := m.net.Dims()
	for _, mv := range m.moves {
		if next := m.net.Step(cur, mv.Dim, mv.Dir); next != topology.None {
			prod = append(prod, next)
		}
		// On a torus, a dimension at exactly half the ring is minimal
		// both ways; expose the second direction too.
		if wrap {
			k := dims[mv.Dim]
			fwd := ((m.dc[mv.Dim]-m.cc[mv.Dim])%k + k) % k
			if fwd*2 == k {
				if next := m.net.Step(cur, mv.Dim, -mv.Dir); next != topology.None {
					prod = append(prod, next)
				}
			}
		}
	}
	return prod, nonprod
}

// FullyAdaptiveMisroute extends MinimalAdaptive with legal misrouting:
// every neighbor is permissible, with non-minimal hops charged against
// the Router's misroute budget (livelock avoidance by bounded
// misrouting). This is the paper's Figure 2(c) "fully adaptive routing
// does not have such restrictions" algorithm.
type FullyAdaptiveMisroute struct {
	net   topology.Network
	min   *MinimalAdaptive
	ports *topology.PortTable
}

// NewFullyAdaptiveMisroute builds the algorithm for any topology.
func NewFullyAdaptiveMisroute(net topology.Network) *FullyAdaptiveMisroute {
	return &FullyAdaptiveMisroute{
		net:   net,
		min:   NewMinimalAdaptive(net),
		ports: topology.NewPortTable(net),
	}
}

func (f *FullyAdaptiveMisroute) Name() string           { return "fully-adaptive" }
func (f *FullyAdaptiveMisroute) Adaptivity() Adaptivity { return FullyAdaptive }

func (f *FullyAdaptiveMisroute) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	return f.AppendCandidates(cur, dst, nil, nil)
}

// AppendCandidates marks every non-productive neighbor as a legal
// misroute. The productive set is degree-bounded, so membership is a
// scan over it — no map, no allocation — and the port table supplies
// the neighbor list without the Neighbors copy.
func (f *FullyAdaptiveMisroute) AppendCandidates(cur, dst topology.NodeID, prod, nonprod []topology.NodeID) (productive, nonproductive []topology.NodeID) {
	prod, _ = f.min.AppendCandidates(cur, dst, prod, nil)
	for _, nb := range f.ports.Ports(cur) {
		inProd := false
		for _, p := range prod {
			if p == nb {
				inProd = true
				break
			}
		}
		if !inProd {
			nonprod = append(nonprod, nb)
		}
	}
	return prod, nonprod
}

// mesh2D asserts the algorithm's topology requirement and caches the
// geometry for the 2-D turn-model algorithms. Directions follow the
// paper's Figure 2 compass: dimension 0 is the row (north = −1,
// south = +1), dimension 1 is the column (west = −1, east = +1).
type mesh2D struct {
	m *topology.Mesh
}

func newMesh2D(kind string, net topology.Network) mesh2D {
	m, ok := net.(*topology.Mesh)
	if !ok || len(m.Dims()) != 2 {
		panic(fmt.Sprintf("routing: %s requires a 2-D mesh, got %s", kind, net.Name()))
	}
	return mesh2D{m: m}
}

func (g mesh2D) step(cur topology.NodeID, dim, dir int) topology.NodeID {
	return g.m.Step(cur, dim, dir)
}

// WestFirst is the Glass–Ni turn-model algorithm of Figure 2(b):
// a packet makes all its westward hops first; afterwards it may route
// adaptively east, north and south, including non-minimal north/south
// misroutes around faults — but it may never turn (back) into west, and
// it never overshoots east of the destination column (an east overshoot
// would require a later illegal west turn).
type WestFirst struct {
	g mesh2D
}

// NewWestFirst builds the algorithm; it panics unless net is a 2-D mesh.
func NewWestFirst(net topology.Network) *WestFirst {
	return &WestFirst{g: newMesh2D("west-first", net)}
}

func (w *WestFirst) Name() string           { return "west-first" }
func (w *WestFirst) Adaptivity() Adaptivity { return PartiallyAdaptive }

func (w *WestFirst) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	cc, dc := w.g.m.CoordOf(cur), w.g.m.CoordOf(dst)
	if dc[1] < cc[1] {
		// Westward displacement outstanding: west is the only legal
		// move, with no adaptive escape (turning into west later is the
		// turn the model removes, so a failed west link strands the
		// packet — exactly the Figure 2(c) failure mode).
		if next := w.g.step(cur, 1, -1); next != topology.None {
			productive = append(productive, next)
		}
		return productive, nil
	}
	// East/north/south phase: productive moves first.
	if dc[1] > cc[1] {
		if next := w.g.step(cur, 1, 1); next != topology.None {
			productive = append(productive, next)
		}
	}
	if dc[0] < cc[0] {
		if next := w.g.step(cur, 0, -1); next != topology.None {
			productive = append(productive, next)
		}
	}
	if dc[0] > cc[0] {
		if next := w.g.step(cur, 0, 1); next != topology.None {
			productive = append(productive, next)
		}
	}
	// Non-minimal escapes: north/south misroutes are legal (the packet
	// can still correct with a later south/north leg — turns into north
	// and south are permitted). East misrouting past the destination
	// column is illegal (it would force a west turn), and west is never
	// an escape.
	if dc[0] <= cc[0] { // south not productive here, so it is a misroute
		if next := w.g.step(cur, 0, 1); next != topology.None {
			nonproductive = append(nonproductive, next)
		}
	}
	if dc[0] >= cc[0] { // north misroute
		if next := w.g.step(cur, 0, -1); next != topology.None {
			nonproductive = append(nonproductive, next)
		}
	}
	return productive, nonproductive
}

// NorthLast is the complementary turn model: a packet may route
// adaptively among east, west and south, but once it turns north it
// must continue north to the destination — so northward moves are
// legal only when north is the sole remaining direction.
type NorthLast struct {
	g mesh2D
}

// NewNorthLast builds the algorithm; it panics unless net is a 2-D mesh.
func NewNorthLast(net topology.Network) *NorthLast {
	return &NorthLast{g: newMesh2D("north-last", net)}
}

func (n *NorthLast) Name() string           { return "north-last" }
func (n *NorthLast) Adaptivity() Adaptivity { return PartiallyAdaptive }

func (n *NorthLast) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	cc, dc := n.g.m.CoordOf(cur), n.g.m.CoordOf(dst)
	needNorth := dc[0] < cc[0]
	colAligned := dc[1] == cc[1]
	if needNorth && colAligned {
		// Only north remains; the final, non-adaptive leg.
		if next := n.g.step(cur, 0, -1); next != topology.None {
			productive = append(productive, next)
		}
		return productive, nil
	}
	if dc[1] > cc[1] {
		if next := n.g.step(cur, 1, 1); next != topology.None {
			productive = append(productive, next)
		}
	}
	if dc[1] < cc[1] {
		if next := n.g.step(cur, 1, -1); next != topology.None {
			productive = append(productive, next)
		}
	}
	if dc[0] > cc[0] {
		if next := n.g.step(cur, 0, 1); next != topology.None {
			productive = append(productive, next)
		}
	}
	// South misroute is always legal (a later north leg fixes it);
	// east/west misroutes are legal while the column is unresolved.
	if dc[0] <= cc[0] {
		if next := n.g.step(cur, 0, 1); next != topology.None {
			nonproductive = append(nonproductive, next)
		}
	}
	if !colAligned {
		if dc[1] <= cc[1] {
			if next := n.g.step(cur, 1, 1); next != topology.None {
				nonproductive = append(nonproductive, next)
			}
		}
		if dc[1] >= cc[1] {
			if next := n.g.step(cur, 1, -1); next != topology.None {
				nonproductive = append(nonproductive, next)
			}
		}
	}
	return productive, nonproductive
}

// NegativeFirst routes all negative-direction hops (any dimension)
// before any positive-direction hop, on an n-dimensional mesh. During
// the negative phase it is adaptive across every dimension that still
// needs a negative move, and may even misroute in other negative
// directions; during the positive phase only productive positive moves
// are legal (a positive overshoot would need an illegal return to
// negative).
type NegativeFirst struct {
	m *topology.Mesh
}

// NewNegativeFirst builds the algorithm; it panics unless net is a mesh.
func NewNegativeFirst(net topology.Network) *NegativeFirst {
	m, ok := net.(*topology.Mesh)
	if !ok {
		panic(fmt.Sprintf("routing: negative-first requires a mesh, got %s", net.Name()))
	}
	return &NegativeFirst{m: m}
}

func (n *NegativeFirst) Name() string           { return "negative-first" }
func (n *NegativeFirst) Adaptivity() Adaptivity { return PartiallyAdaptive }

func (n *NegativeFirst) Candidates(cur, dst topology.NodeID) (productive, nonproductive []topology.NodeID) {
	cc, dc := n.m.CoordOf(cur), n.m.CoordOf(dst)
	negPhase := false
	for i := range cc {
		if dc[i] < cc[i] {
			negPhase = true
			break
		}
	}
	if negPhase {
		for i := range cc {
			next := n.m.Step(cur, i, -1)
			if next == topology.None {
				continue
			}
			if dc[i] < cc[i] {
				productive = append(productive, next)
			} else {
				nonproductive = append(nonproductive, next)
			}
		}
		return productive, nonproductive
	}
	for i := range cc {
		if dc[i] > cc[i] {
			if next := n.m.Step(cur, i, 1); next != topology.None {
				productive = append(productive, next)
			}
		}
	}
	return productive, nil
}
