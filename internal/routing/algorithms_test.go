package routing

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func mesh4() *topology.Mesh { return topology.NewMesh2D(4) }

func id(m topology.Topology, r, c int) topology.NodeID {
	return m.IndexOf(topology.Coord{r, c})
}

func TestXYFollowsRowThenColumn(t *testing.T) {
	// Paper Figure 2(a): packets from S1=(2,0) reach D=(1,2) by moving
	// along the row and then along the column — one turn.
	m := mesh4()
	r := NewRouter(m, NewXY(m))
	path, err := r.Walk(id(m, 2, 0), id(m, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.NodeID{id(m, 2, 0), id(m, 2, 1), id(m, 2, 2), id(m, 1, 2)}
	if !equalPath(path, want) {
		t.Errorf("XY path %v, want %v", coords(m, path), coords(m, want))
	}
	// S2=(0,0): along row 0, then down column 2.
	path, err = r.Walk(id(m, 0, 0), id(m, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	want = []topology.NodeID{id(m, 0, 0), id(m, 0, 1), id(m, 0, 2), id(m, 1, 2)}
	if !equalPath(path, want) {
		t.Errorf("XY path %v, want %v", coords(m, path), coords(m, want))
	}
}

func TestDORResolvesDimZeroFirst(t *testing.T) {
	m := mesh4()
	r := NewRouter(m, NewDimensionOrder(m))
	path, err := r.Walk(id(m, 2, 0), id(m, 0, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Plain DOR resolves dimension 0 (the row) first.
	if path[1] != id(m, 1, 0) {
		t.Errorf("DOR first hop %v, want (1,0)", m.CoordOf(path[1]))
	}
}

func TestDORDeterministicAndMinimalEverywhere(t *testing.T) {
	nets := []topology.Network{
		topology.NewMesh2D(4), topology.NewMesh(3, 4, 3),
		topology.NewTorus2D(5), topology.NewTorus(4, 6),
		topology.NewHypercube(4),
	}
	for _, net := range nets {
		r := NewRouter(net, NewDimensionOrder(net))
		for src := 0; src < net.NumNodes(); src++ {
			for dst := 0; dst < net.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				p1, err := r.Walk(topology.NodeID(src), topology.NodeID(dst), 0)
				if err != nil {
					t.Fatalf("%s: DOR failed %d->%d: %v", net.Name(), src, dst, err)
				}
				if len(p1)-1 != net.MinDistance(topology.NodeID(src), topology.NodeID(dst)) {
					t.Fatalf("%s: DOR path %d->%d not minimal: %d hops", net.Name(), src, dst, len(p1)-1)
				}
				p2, _ := r.Walk(topology.NodeID(src), topology.NodeID(dst), 0)
				if !equalPath(p1, p2) {
					t.Fatalf("%s: DOR not deterministic for %d->%d", net.Name(), src, dst)
				}
			}
		}
	}
}

func TestMinimalAdaptivePathsAreMinimal(t *testing.T) {
	nets := []topology.Network{
		topology.NewMesh2D(5), topology.NewTorus2D(6), topology.NewHypercube(5),
	}
	for _, net := range nets {
		r := NewRouter(net, NewMinimalAdaptive(net))
		r.Sel = RandomSelector{R: rng.NewStream(1)}
		for trial := 0; trial < 500; trial++ {
			src := topology.NodeID(trial % net.NumNodes())
			dst := topology.NodeID((trial * 7) % net.NumNodes())
			if src == dst {
				continue
			}
			p, err := r.Walk(src, dst, 0)
			if err != nil {
				t.Fatalf("%s: %v", net.Name(), err)
			}
			if len(p)-1 != net.MinDistance(src, dst) {
				t.Fatalf("%s: adaptive minimal path %d->%d has %d hops, want %d",
					net.Name(), src, dst, len(p)-1, net.MinDistance(src, dst))
			}
		}
	}
}

func TestMinimalAdaptiveTakesMultiplePaths(t *testing.T) {
	// The defining property for the paper: the same (src,dst) pair uses
	// different routes on different packets.
	m := mesh4()
	r := NewRouter(m, NewMinimalAdaptive(m))
	r.Sel = RandomSelector{R: rng.NewStream(99)}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		p, err := r.Walk(id(m, 0, 0), id(m, 3, 3), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[pathKey(p)] = true
	}
	if len(seen) < 5 {
		t.Errorf("adaptive routing produced only %d distinct paths for 200 packets", len(seen))
	}
}

func TestTorusMinimalAdaptiveHalfRingBothWays(t *testing.T) {
	// At exactly k/2 both directions are minimal; the adaptive router
	// must expose both.
	tr := topology.NewTorus2D(4)
	alg := NewMinimalAdaptive(tr)
	prod, _ := alg.Candidates(tr.IndexOf(topology.Coord{0, 0}), tr.IndexOf(topology.Coord{0, 2}))
	if len(prod) != 2 {
		t.Fatalf("half-ring candidates = %d, want 2", len(prod))
	}
}

func TestWestFirstWestPhaseIsDeterministic(t *testing.T) {
	m := mesh4()
	alg := NewWestFirst(m)
	prod, nonprod := alg.Candidates(id(m, 1, 3), id(m, 2, 0))
	if len(prod) != 1 || prod[0] != id(m, 1, 2) {
		t.Errorf("west-phase candidates = %v", coords(m, prod))
	}
	if len(nonprod) != 0 {
		t.Errorf("west phase must not offer escapes, got %v", coords(m, nonprod))
	}
}

func TestWestFirstAdaptiveEastPhase(t *testing.T) {
	m := mesh4()
	alg := NewWestFirst(m)
	// From (2,0) to (1,2): east and north are both productive.
	prod, _ := alg.Candidates(id(m, 2, 0), id(m, 1, 2))
	if len(prod) != 2 {
		t.Fatalf("east-phase productive = %v, want 2 candidates", coords(m, prod))
	}
	hasE, hasN := false, false
	for _, c := range prod {
		if c == id(m, 2, 1) {
			hasE = true
		}
		if c == id(m, 1, 0) {
			hasN = true
		}
	}
	if !hasE || !hasN {
		t.Errorf("east-phase candidates = %v, want east and north", coords(m, prod))
	}
}

func TestWestFirstNeverTurnsWestLate(t *testing.T) {
	// No candidate may ever decrease the column unless the packet still
	// needs west at that point from the start (memoryless rule: dst
	// strictly west).
	m := mesh4()
	alg := NewWestFirst(m)
	for src := 0; src < m.NumNodes(); src++ {
		for dst := 0; dst < m.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			sc, dc := m.CoordOf(topology.NodeID(src)), m.CoordOf(topology.NodeID(dst))
			prod, nonprod := alg.Candidates(topology.NodeID(src), topology.NodeID(dst))
			for _, c := range append(append([]topology.NodeID{}, prod...), nonprod...) {
				cc := m.CoordOf(c)
				if cc[1] < sc[1] && dc[1] >= sc[1] {
					t.Fatalf("west-first offered west move %v->%v with dst %v",
						sc, cc, dc)
				}
				if cc[1] > sc[1] && cc[1] > dc[1] {
					t.Fatalf("west-first overshot east: %v->%v with dst %v", sc, cc, dc)
				}
			}
		}
	}
}

func TestNorthLastFinalLegOnly(t *testing.T) {
	m := mesh4()
	alg := NewNorthLast(m)
	// Column aligned, dst north: only north.
	prod, nonprod := alg.Candidates(id(m, 3, 2), id(m, 0, 2))
	if len(prod) != 1 || prod[0] != id(m, 2, 2) {
		t.Errorf("north-only leg candidates = %v", coords(m, prod))
	}
	if len(nonprod) != 0 {
		t.Errorf("north leg must be non-adaptive, got escapes %v", coords(m, nonprod))
	}
	// Column not aligned: north must not be offered even if productive.
	prod, nonprod = alg.Candidates(id(m, 3, 0), id(m, 0, 2))
	for _, c := range append(append([]topology.NodeID{}, prod...), nonprod...) {
		if m.CoordOf(c)[0] < 3 {
			t.Errorf("north-last offered early north move to %v", m.CoordOf(c))
		}
	}
}

func TestNegativeFirstPhases(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	alg := NewNegativeFirst(m)
	// Mixed displacement: only negative moves allowed first.
	src := m.IndexOf(topology.Coord{2, 1, 3})
	dst := m.IndexOf(topology.Coord{0, 3, 1})
	prod, nonprod := alg.Candidates(src, dst)
	for _, c := range append(append([]topology.NodeID{}, prod...), nonprod...) {
		cc, sc := m.CoordOf(c), m.CoordOf(src)
		for i := range cc {
			if cc[i] > sc[i] {
				t.Fatalf("negative phase offered positive move %v->%v", sc, cc)
			}
		}
	}
	if len(prod) != 2 { // dims 0 and 2 need negative moves
		t.Errorf("negative productive = %v, want 2", coords(m, prod))
	}
	// Positive-only displacement: positive productive moves, no escapes.
	src2 := m.IndexOf(topology.Coord{0, 1, 0})
	dst2 := m.IndexOf(topology.Coord{2, 3, 0})
	prod, nonprod = alg.Candidates(src2, dst2)
	if len(prod) != 2 || len(nonprod) != 0 {
		t.Errorf("positive phase = %v / %v", coords(m, prod), coords(m, nonprod))
	}
}

func TestNegativeFirstDelivers(t *testing.T) {
	m := topology.NewMesh2D(5)
	r := NewRouter(m, NewNegativeFirst(m))
	r.Sel = RandomSelector{R: rng.NewStream(5)}
	for src := 0; src < m.NumNodes(); src++ {
		for dst := 0; dst < m.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			p, err := r.Walk(topology.NodeID(src), topology.NodeID(dst), 0)
			if err != nil {
				t.Fatalf("negative-first stranded %d->%d: %v", src, dst, err)
			}
			if len(p)-1 != m.MinDistance(topology.NodeID(src), topology.NodeID(dst)) {
				t.Fatalf("negative-first path not minimal for %d->%d", src, dst)
			}
		}
	}
}

func TestTurnModelConstructorsRequireMesh(t *testing.T) {
	h := topology.NewHypercube(3)
	tr := topology.NewTorus2D(4)
	m3 := topology.NewMesh(3, 3, 3)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("west-first on hypercube", func() { NewWestFirst(h) })
	expectPanic("west-first on 3-D mesh", func() { NewWestFirst(m3) })
	expectPanic("north-last on torus", func() { NewNorthLast(tr) })
	expectPanic("negative-first on torus", func() { NewNegativeFirst(tr) })
	expectPanic("xy on 3-D mesh", func() { NewXY(m3) })
}

func TestAdaptivityLabels(t *testing.T) {
	m := mesh4()
	cases := []struct {
		alg  Algorithm
		want Adaptivity
	}{
		{NewXY(m), Deterministic},
		{NewWestFirst(m), PartiallyAdaptive},
		{NewNorthLast(m), PartiallyAdaptive},
		{NewNegativeFirst(m), PartiallyAdaptive},
		{NewMinimalAdaptive(m), FullyAdaptive},
		{NewFullyAdaptiveMisroute(m), FullyAdaptive},
	}
	for _, tc := range cases {
		if tc.alg.Adaptivity() != tc.want {
			t.Errorf("%s adaptivity = %v, want %v", tc.alg.Name(), tc.alg.Adaptivity(), tc.want)
		}
	}
	for _, a := range []Adaptivity{Deterministic, PartiallyAdaptive, FullyAdaptive, Adaptivity(9)} {
		if a.String() == "" {
			t.Error("empty Adaptivity string")
		}
	}
}

func equalPath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(p []topology.NodeID) string {
	k := ""
	for _, n := range p {
		k += string(rune(n)) + ","
	}
	return k
}

func coords(m topology.Topology, ids []topology.NodeID) []topology.Coord {
	out := make([]topology.Coord, len(ids))
	for i, id := range ids {
		out[i] = m.CoordOf(id)
	}
	return out
}
