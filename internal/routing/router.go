package routing

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Selector picks one next hop among the usable candidates. Candidates
// are always non-empty when Select is called.
type Selector interface {
	Name() string
	Select(state *LinkState, cur topology.NodeID, cands []topology.NodeID) topology.NodeID
}

// FirstSelector always picks the first candidate: combined with a
// deterministic algorithm it yields fully deterministic paths.
type FirstSelector struct{}

func (FirstSelector) Name() string { return "first" }

func (FirstSelector) Select(_ *LinkState, _ topology.NodeID, cands []topology.NodeID) topology.NodeID {
	return cands[0]
}

// RandomSelector picks uniformly at random — the paper's "packets can
// move through different paths" adaptivity in its purest form.
type RandomSelector struct {
	R *rng.Stream
}

func (RandomSelector) Name() string { return "random" }

func (s RandomSelector) Select(_ *LinkState, _ topology.NodeID, cands []topology.NodeID) topology.NodeID {
	return cands[s.R.Intn(len(cands))]
}

// CongestionSelector picks the least-loaded output link, breaking ties
// randomly; this is how an adaptive fabric actually exploits its
// flexibility under load. Selection runs twice over the (degree-bounded)
// candidate list instead of materializing the tie set, so the per-hop
// path stays allocation-free; the congestion oracle is pure within one
// selection, so both passes see the same loads.
type CongestionSelector struct {
	R *rng.Stream
}

func (CongestionSelector) Name() string { return "least-congested" }

func (s CongestionSelector) Select(state *LinkState, cur topology.NodeID, cands []topology.NodeID) topology.NodeID {
	bestLoad := int(^uint(0) >> 1)
	ties := 0
	first := cands[0]
	for _, c := range cands {
		l := state.load(cur, c)
		switch {
		case l < bestLoad:
			bestLoad = l
			ties = 1
			first = c
		case l == bestLoad:
			ties++
		}
	}
	if ties == 1 || s.R == nil {
		return first
	}
	// Same RNG draw as indexing into the materialized tie list: Intn
	// over the tie count, then return the pick-th least-loaded candidate.
	pick := s.R.Intn(ties)
	for _, c := range cands {
		if state.load(cur, c) == bestLoad {
			if pick == 0 {
				return c
			}
			pick--
		}
	}
	return first // unreachable: pick < ties
}

// Router resolves next hops for packets: it applies the algorithm,
// filters failed links, prefers productive hops, and charges
// non-productive hops against a per-packet misroute budget so adaptive
// routing cannot livelock.
type Router struct {
	Net   topology.Network
	Alg   Algorithm
	Sel   Selector
	State *LinkState

	// MisrouteBudget bounds the number of non-productive hops one
	// packet may take (0 disables misrouting entirely).
	MisrouteBudget int

	// prodBuf/nonBuf are reusable candidate buffers for algorithms that
	// implement CandidateAppender; after warm-up NextHop never
	// allocates. They make the Router single-use per goroutine, which
	// the simulator already requires.
	prodBuf, nonBuf []topology.NodeID
}

// NewRouter wires a router with sensible defaults: no failures, first
// selection, no misrouting.
func NewRouter(net topology.Network, alg Algorithm) *Router {
	return &Router{Net: net, Alg: alg, Sel: FirstSelector{}, State: NewLinkState()}
}

// ErrNoRoute is returned when no usable candidate exists (all legal
// next hops failed, or the algorithm's turn rules strand the packet —
// the Figure 2 outcomes for XY and west-first under failures).
var ErrNoRoute = errors.New("routing: no usable next hop")

// Hop is one routing decision.
type Hop struct {
	Next     topology.NodeID
	Misroute bool // true when the hop was non-productive
}

// NextHop picks the next hop from cur toward dst. misroutesUsed is the
// number of misroutes the packet has already taken. When the algorithm
// implements CandidateAppender the candidates land in the Router's
// reusable buffers and the steady-state path performs no allocation.
func (r *Router) NextHop(cur, dst topology.NodeID, misroutesUsed int) (Hop, error) {
	if cur == dst {
		return Hop{}, fmt.Errorf("routing: NextHop called at destination %d", dst)
	}
	var productive, nonproductive []topology.NodeID
	if app, ok := r.Alg.(CandidateAppender); ok {
		productive, nonproductive = app.AppendCandidates(cur, dst, r.prodBuf[:0], r.nonBuf[:0])
		r.prodBuf, r.nonBuf = productive[:0], nonproductive[:0]
	} else {
		productive, nonproductive = r.Alg.Candidates(cur, dst)
	}
	usable := filterFailed(r.State, cur, productive)
	if len(usable) > 0 {
		return Hop{Next: r.Sel.Select(r.State, cur, usable)}, nil
	}
	if misroutesUsed < r.MisrouteBudget {
		escape := filterFailed(r.State, cur, nonproductive)
		if len(escape) > 0 {
			return Hop{Next: r.Sel.Select(r.State, cur, escape), Misroute: true}, nil
		}
	}
	return Hop{}, ErrNoRoute
}

func filterFailed(state *LinkState, cur topology.NodeID, cands []topology.NodeID) []topology.NodeID {
	if state.NumFailed() == 0 {
		return cands
	}
	out := make([]topology.NodeID, 0, len(cands))
	for _, c := range cands {
		if !state.Failed(cur, c) {
			out = append(out, c)
		}
	}
	return out
}

// Walk routes a virtual packet from src to dst hop by hop, returning
// the node sequence including both endpoints. It fails with ErrNoRoute
// if the packet strands, or with an error if it exceeds maxHops
// (livelock guard). Walk performs no timing simulation; the network
// simulator does its own per-hop scheduling and calls NextHop itself.
func (r *Router) Walk(src, dst topology.NodeID, maxHops int) ([]topology.NodeID, error) {
	if maxHops <= 0 {
		maxHops = 4*r.Net.Diameter() + 4*r.MisrouteBudget + 8
	}
	path := []topology.NodeID{src}
	cur := src
	misroutes := 0
	for cur != dst {
		if len(path) > maxHops {
			return path, fmt.Errorf("routing: walk from %d to %d exceeded %d hops (livelock?)", src, dst, maxHops)
		}
		hop, err := r.NextHop(cur, dst, misroutes)
		if err != nil {
			return path, fmt.Errorf("stranded at %d after %d hops: %w", cur, len(path)-1, err)
		}
		if hop.Misroute {
			misroutes++
		}
		cur = hop.Next
		path = append(path, cur)
	}
	return path, nil
}

// Deliverable reports whether a packet from src can reach dst under
// this router, by attempting trials walks (1 suffices for deterministic
// selectors). Used to regenerate the Figure 2 deliverability matrix.
func (r *Router) Deliverable(src, dst topology.NodeID, trials int) bool {
	if trials < 1 {
		trials = 1
	}
	for i := 0; i < trials; i++ {
		if _, err := r.Walk(src, dst, 0); err == nil {
			return true
		}
	}
	return false
}
