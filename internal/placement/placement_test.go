package placement

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func xyRouter(m *topology.Mesh) *routing.Router {
	return routing.NewRouter(m, routing.NewXY(m))
}

func TestAllPairsCount(t *testing.T) {
	m := topology.NewMesh2D(4)
	pairs := AllPairs(m)
	if len(pairs) != 16*15 {
		t.Errorf("pairs = %d, want 240", len(pairs))
	}
	vp := VictimPairs(m, 5)
	if len(vp) != 15 {
		t.Errorf("victim pairs = %d, want 15", len(vp))
	}
	for _, p := range vp {
		if p.Dst != 5 || p.Src == 5 {
			t.Fatalf("bad victim pair %+v", p)
		}
	}
}

func TestGreedyFullCoverageXY(t *testing.T) {
	m := topology.NewMesh2D(4)
	cov, err := BuildCoverage(xyRouter(m), AllPairs(m))
	if err != nil {
		t.Fatal(err)
	}
	monitors, curve := cov.Greedy(0)
	if got := cov.Covered(monitors); got != cov.NumPairs() {
		t.Fatalf("greedy covered %d/%d", got, cov.NumPairs())
	}
	if len(monitors) == 0 || len(monitors) > 8 {
		t.Errorf("greedy used %d monitors on a 4x4 mesh; expected a small set", len(monitors))
	}
	// Coverage curve is strictly increasing and ends at the universe.
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("coverage curve not increasing: %v", curve)
		}
	}
	if curve[len(curve)-1] != cov.NumPairs() {
		t.Errorf("final coverage %d != %d", curve[len(curve)-1], cov.NumPairs())
	}
}

func TestGreedyVictimOnlyNeedsOneMonitor(t *testing.T) {
	// Every flow to one victim passes the victim's own switch: greedy
	// must find a single-monitor cover.
	m := topology.NewMesh2D(8)
	victim := m.IndexOf(topology.Coord{3, 4})
	cov, err := BuildCoverage(xyRouter(m), VictimPairs(m, victim))
	if err != nil {
		t.Fatal(err)
	}
	monitors, _ := cov.Greedy(0)
	if len(monitors) != 1 || monitors[0] != victim {
		t.Errorf("monitors = %v, want just the victim switch", monitors)
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	m := topology.NewMesh2D(4)
	cov, _ := BuildCoverage(xyRouter(m), AllPairs(m))
	monitors, curve := cov.Greedy(2)
	if len(monitors) != 2 || len(curve) != 2 {
		t.Fatalf("budget ignored: %d monitors", len(monitors))
	}
	if cov.Covered(monitors) == cov.NumPairs() {
		t.Log("2 monitors happened to cover everything (unexpected but legal)")
	}
}

func TestCoveredEndpointsAlwaysSee(t *testing.T) {
	m := topology.NewMesh2D(4)
	cov, _ := BuildCoverage(xyRouter(m), AllPairs(m))
	// Monitoring every node trivially covers everything.
	var all []topology.NodeID
	for i := 0; i < m.NumNodes(); i++ {
		all = append(all, topology.NodeID(i))
	}
	if cov.Covered(all) != cov.NumPairs() {
		t.Error("full monitor set did not cover all pairs")
	}
	if cov.Covered(nil) != 0 {
		t.Error("empty monitor set covered pairs")
	}
}

func TestAdaptiveCoverageDegradesDeterministicCover(t *testing.T) {
	// A cover computed for XY paths loses guarantee under adaptive
	// routing, but monitoring endpoints still catches everything; a
	// mid-mesh-only cover must observe strictly less than 100% of
	// adaptive flows.
	m := topology.NewMesh2D(8)
	cov, err := BuildCoverage(xyRouter(m), AllPairs(m))
	if err != nil {
		t.Fatal(err)
	}
	monitors, _ := cov.Greedy(0)

	ad := routing.NewRouter(m, routing.NewMinimalAdaptive(m))
	ad.Sel = routing.RandomSelector{R: rng.NewStream(3)}
	frac, err := AdaptiveCoverage(ad, AllPairs(m), monitors, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.5 {
		t.Errorf("adaptive coverage %.3f suspiciously low for an XY cover", frac)
	}

	// A single central monitor cannot watch everything under adaptive
	// routing.
	center := []topology.NodeID{m.IndexOf(topology.Coord{4, 4})}
	fracC, err := AdaptiveCoverage(ad, AllPairs(m), center, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fracC >= frac {
		t.Errorf("single central monitor (%.3f) outperformed greedy cover (%.3f)", fracC, frac)
	}
	if fracC >= 0.99 {
		t.Errorf("single monitor coverage %.3f; expected clear gaps", fracC)
	}
}

func TestSortNodes(t *testing.T) {
	got := SortNodes([]topology.NodeID{5, 1, 3})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("SortNodes = %v", got)
	}
}

func TestBuildCoveragePropagatesRoutingErrors(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := xyRouter(m)
	r.State.Fail(m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 1}))
	_, err := BuildCoverage(r, []Pair{{Src: m.IndexOf(topology.Coord{0, 0}), Dst: m.IndexOf(topology.Coord{0, 3})}})
	if err == nil {
		t.Error("stranded pair did not error")
	}
}
