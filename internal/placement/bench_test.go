package placement

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func BenchmarkBuildCoverageAllPairs(b *testing.B) {
	m := topology.NewMesh2D(8)
	r := routing.NewRouter(m, routing.NewXY(m))
	pairs := AllPairs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCoverage(r, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyCover(b *testing.B) {
	m := topology.NewMesh2D(8)
	r := routing.NewRouter(m, routing.NewXY(m))
	cov, err := BuildCoverage(r, AllPairs(m))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitors, _ := cov.Greedy(0)
		if cov.Covered(monitors) != cov.NumPairs() {
			b.Fatal("incomplete cover")
		}
	}
}
