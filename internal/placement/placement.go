// Package placement implements the paper's §6.1 future-work direction:
// "one can consider to find a minimal set of trusted switches for
// detection and identification". Cluster traffic does not aggregate at
// chokepoints the way Internet traffic does, so detector placement is a
// covering problem: choose few switches such that every flow crosses at
// least one of them.
//
// For deterministic routing the flow's path is unique, and the problem
// is classic set cover over (source, destination) pairs; the package
// provides the standard greedy ln(n)-approximation. For adaptive
// routing a flow may take many paths, so coverage is probabilistic; the
// package estimates, by path sampling, the fraction of flows a monitor
// set observes.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Pair is one traffic flow endpoint pair.
type Pair struct {
	Src, Dst topology.NodeID
}

// AllPairs enumerates every ordered pair of distinct nodes.
func AllPairs(net topology.Network) []Pair {
	n := net.NumNodes()
	out := make([]Pair, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				out = append(out, Pair{Src: topology.NodeID(s), Dst: topology.NodeID(d)})
			}
		}
	}
	return out
}

// VictimPairs enumerates flows toward one destination (the common case:
// protect a service node).
func VictimPairs(net topology.Network, victim topology.NodeID) []Pair {
	out := make([]Pair, 0, net.NumNodes()-1)
	for s := 0; s < net.NumNodes(); s++ {
		if topology.NodeID(s) != victim {
			out = append(out, Pair{Src: topology.NodeID(s), Dst: victim})
		}
	}
	return out
}

// Coverage maps each pair to the set of switches its deterministic
// route visits (endpoints included: the source and destination switches
// always see the flow).
type Coverage struct {
	pairs   []Pair
	onPath  []map[topology.NodeID]bool
	numNode int
}

// BuildCoverage walks every pair's route under the (deterministic)
// router. An error from routing propagates.
func BuildCoverage(r *routing.Router, pairs []Pair) (*Coverage, error) {
	c := &Coverage{pairs: pairs, numNode: r.Net.NumNodes()}
	for _, p := range pairs {
		path, err := r.Walk(p.Src, p.Dst, 0)
		if err != nil {
			return nil, fmt.Errorf("placement: pair %d->%d: %w", p.Src, p.Dst, err)
		}
		set := make(map[topology.NodeID]bool, len(path))
		for _, n := range path {
			set[n] = true
		}
		c.onPath = append(c.onPath, set)
	}
	return c, nil
}

// NumPairs returns the universe size.
func (c *Coverage) NumPairs() int { return len(c.pairs) }

// Covered counts pairs observed by at least one monitor in the set.
func (c *Coverage) Covered(monitors []topology.NodeID) int {
	mset := make(map[topology.NodeID]bool, len(monitors))
	for _, m := range monitors {
		mset[m] = true
	}
	covered := 0
	for _, set := range c.onPath {
		for m := range mset {
			if set[m] {
				covered++
				break
			}
		}
	}
	return covered
}

// Greedy runs the classical greedy set-cover: repeatedly pick the
// switch covering the most still-uncovered pairs, until full coverage
// or maxMonitors (0 = unlimited). Ties break toward the lowest node id
// for determinism. It returns the chosen monitors in pick order and the
// cumulative coverage after each pick.
func (c *Coverage) Greedy(maxMonitors int) (monitors []topology.NodeID, coverage []int) {
	uncovered := make(map[int]bool, len(c.pairs))
	for i := range c.pairs {
		uncovered[i] = true
	}
	// Invert: switch -> pair indexes it covers.
	bySwitch := make([][]int, c.numNode)
	for i, set := range c.onPath {
		for n := range set {
			bySwitch[n] = append(bySwitch[n], i)
		}
	}
	total := 0
	for len(uncovered) > 0 {
		if maxMonitors > 0 && len(monitors) >= maxMonitors {
			break
		}
		best, bestGain := topology.NodeID(-1), 0
		for n := 0; n < c.numNode; n++ {
			gain := 0
			for _, i := range bySwitch[n] {
				if uncovered[i] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = topology.NodeID(n), gain
			}
		}
		if bestGain == 0 {
			break
		}
		monitors = append(monitors, best)
		for _, i := range bySwitch[best] {
			delete(uncovered, i)
		}
		total += bestGain
		coverage = append(coverage, total)
	}
	return monitors, coverage
}

// AdaptiveCoverage estimates, over trials sampled walks per pair, the
// fraction of flows whose sampled path crossed a monitor — the
// probabilistic guarantee a deterministic cover degrades to once
// routing is adaptive.
func AdaptiveCoverage(r *routing.Router, pairs []Pair, monitors []topology.NodeID, trials int) (float64, error) {
	if trials < 1 {
		trials = 1
	}
	mset := make(map[topology.NodeID]bool, len(monitors))
	for _, m := range monitors {
		mset[m] = true
	}
	hit, total := 0, 0
	for _, p := range pairs {
		for k := 0; k < trials; k++ {
			path, err := r.Walk(p.Src, p.Dst, 0)
			if err != nil {
				return 0, fmt.Errorf("placement: pair %d->%d: %w", p.Src, p.Dst, err)
			}
			total++
			for _, n := range path {
				if mset[n] {
					hit++
					break
				}
			}
		}
	}
	return float64(hit) / float64(total), nil
}

// SortNodes returns a sorted copy (for stable reporting).
func SortNodes(ns []topology.NodeID) []topology.NodeID {
	out := append([]topology.NodeID(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
