package irregular

import (
	"testing"

	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// stampNet adapts Graph to the minimal surface IngressStamp needs.
type stampNet struct{ g *Graph }

func (s stampNet) NumNodes() int { return s.g.NumNodes() }

func TestRandomGraphConnectedAndDeterministic(t *testing.T) {
	g1, err := NewRandom(40, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewRandom(40, 20, 7)
	for v := 0; v < g1.NumNodes(); v++ {
		n1, n2 := g1.Neighbors(topology.NodeID(v)), g2.Neighbors(topology.NodeID(v))
		if len(n1) != len(n2) {
			t.Fatal("graph generation not deterministic")
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("graph generation not deterministic")
			}
		}
	}
	// Connected: every node has a BFS level.
	for v := 0; v < g1.NumNodes(); v++ {
		if g1.Level(topology.NodeID(v)) < 0 {
			t.Fatalf("node %d unreachable from root", v)
		}
	}
	if g1.Level(g1.Root()) != 0 {
		t.Error("root level != 0")
	}
}

func TestRandomGraphValidation(t *testing.T) {
	if _, err := NewRandom(1, 0, 1); err == nil {
		t.Error("1-switch graph accepted")
	}
	if _, err := NewRandom(1<<17, 0, 1); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestUpDownRoutesAllPairs(t *testing.T) {
	g, err := NewRandom(32, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.NumNodes(); src++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			path, err := g.Route(topology.NodeID(src), topology.NodeID(dst), nil)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			if path[0] != topology.NodeID(src) || path[len(path)-1] != topology.NodeID(dst) {
				t.Fatalf("%d->%d: bad endpoints %v", src, dst, path)
			}
		}
	}
}

func TestUpDownNeverTurnsDownThenUp(t *testing.T) {
	g, _ := NewRandom(48, 30, 5)
	r := rng.NewStream(6)
	chooser := func(opts []topology.NodeID) topology.NodeID {
		return opts[r.Intn(len(opts))]
	}
	for trial := 0; trial < 2000; trial++ {
		src := topology.NodeID(r.Intn(g.NumNodes()))
		dst := topology.NodeID(r.Intn(g.NumNodes()))
		path, err := g.Route(src, dst, chooser)
		if err != nil {
			t.Fatal(err)
		}
		wentDown := false
		for i := 0; i+1 < len(path); i++ {
			up := g.isUp(path[i], path[i+1])
			if up && wentDown {
				t.Fatalf("illegal down->up turn on path %v", path)
			}
			if !up {
				wentDown = true
			}
		}
	}
}

func TestUpDownAdaptivityProducesMultiplePaths(t *testing.T) {
	g, _ := NewRandom(48, 40, 9)
	r := rng.NewStream(10)
	chooser := func(opts []topology.NodeID) topology.NodeID {
		return opts[r.Intn(len(opts))]
	}
	distinct := map[string]bool{}
	src, dst := topology.NodeID(1), topology.NodeID(40)
	for i := 0; i < 200; i++ {
		path, err := g.Route(src, dst, chooser)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, v := range path {
			key += string(rune(v)) + ","
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Skip("this seed's graph has a unique shortest legal path; adaptivity untestable here")
	}
}

func TestIngressStampOnIrregularFabric(t *testing.T) {
	// The §6.3 punchline for irregular networks: coordinate-difference
	// marking has nothing to difference, but the ingress stamp rides
	// any up*/down* route to the victim intact — single-packet source
	// identification on an unstructured fabric.
	g, _ := NewRandom(60, 35, 11)
	stamp, err := marking.NewIngressStamp(stampNet{g: g})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewStream(12)
	chooser := func(opts []topology.NodeID) topology.NodeID {
		return opts[r.Intn(len(opts))]
	}
	for trial := 0; trial < 1000; trial++ {
		src := topology.NodeID(r.Intn(g.NumNodes()))
		dst := topology.NodeID(r.Intn(g.NumNodes()))
		path, err := g.Route(src, dst, chooser)
		if err != nil {
			t.Fatal(err)
		}
		pk := &packet.Packet{SrcNode: src, DstNode: dst}
		pk.Hdr.ID = uint16(r.Intn(1 << 16)) // hostile preload
		stamp.OnInject(pk)
		for i := 0; i+1 < len(path); i++ {
			stamp.OnForward(path[i], path[i+1], pk)
		}
		got, ok := stamp.IdentifySource(pk.Hdr.ID)
		if !ok || got != src {
			t.Fatalf("identified %d, want %d", got, src)
		}
	}
}

func TestRouteShortestAmongLegal(t *testing.T) {
	// The chosen path length always equals the legal BFS distance; it
	// may exceed the raw graph distance (the price of deadlock freedom).
	g, _ := NewRandom(32, 10, 13)
	for src := 0; src < g.NumNodes(); src++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			p1, err := g.Route(topology.NodeID(src), topology.NodeID(dst), nil)
			if err != nil {
				t.Fatal(err)
			}
			p2, _ := g.Route(topology.NodeID(src), topology.NodeID(dst), nil)
			if len(p1) != len(p2) {
				t.Fatalf("route length nondeterministic for %d->%d", src, dst)
			}
		}
	}
}
