// Package irregular covers the last §6.3 future-work case: "hybrid
// networks and irregular networks do not have a universal regularity
// and it may need a completely different approach". It models an
// irregular switch fabric (a random connected multigraph, the shape
// switch-based clusters grow into as they are expanded ad hoc), routes
// with the classic Autonet up*/down* algorithm — the standard
// deadlock-free scheme for irregular topologies — and demonstrates
// that with no coordinate system to difference, source identification
// falls back to ingress stamping (marking.IngressStamp), which works
// because up*/down* still delivers the stamp untouched.
package irregular

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Graph is an irregular switch fabric. Every switch hosts one compute
// node (the paper's node = switch + computer pairing). Edges are
// undirected cables; up*/down* orients them by BFS level from a root.
type Graph struct {
	n   int
	adj [][]topology.NodeID
	// level[v] is the BFS depth from the root; the "up" end of an edge
	// is the endpoint with the smaller (level, id) pair.
	level []int
	root  topology.NodeID
}

// NewRandom builds a connected irregular graph of n switches: a random
// spanning tree plus extra random cables. Deterministic per seed.
func NewRandom(n, extraEdges int, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("irregular: need at least 2 switches")
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("irregular: %d switches exceeds the 65536 limit", n)
	}
	r := rng.NewStream(seed)
	g := &Graph{n: n, adj: make([][]topology.NodeID, n)}
	edge := map[[2]topology.NodeID]bool{}
	addEdge := func(a, b topology.NodeID) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		k := [2]topology.NodeID{a, b}
		if edge[k] {
			return false
		}
		edge[k] = true
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
		return true
	}
	// Random spanning tree: attach each node to a random earlier node.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(topology.NodeID(perm[i]), topology.NodeID(perm[r.Intn(i)]))
	}
	for added := 0; added < extraEdges; {
		if addEdge(topology.NodeID(r.Intn(n)), topology.NodeID(r.Intn(n))) {
			added++
		}
	}
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i] < g.adj[v][j] })
	}
	g.orient()
	return g, nil
}

// orient picks the highest-degree switch as root (the Autonet
// heuristic) and BFS-levels the graph.
func (g *Graph) orient() {
	root := topology.NodeID(0)
	for v := 1; v < g.n; v++ {
		if len(g.adj[v]) > len(g.adj[root]) {
			root = topology.NodeID(v)
		}
	}
	g.root = root
	g.level = make([]int, g.n)
	for i := range g.level {
		g.level[i] = -1
	}
	g.level[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[v] {
			if g.level[nb] == -1 {
				g.level[nb] = g.level[v] + 1
				queue = append(queue, nb)
			}
		}
	}
}

// NumNodes returns the switch count; Root the up*/down* root; Level the
// BFS depth of a switch.
func (g *Graph) NumNodes() int               { return g.n }
func (g *Graph) Root() topology.NodeID       { return g.root }
func (g *Graph) Level(v topology.NodeID) int { return g.level[v] }

// Neighbors returns the adjacent switches.
func (g *Graph) Neighbors(v topology.NodeID) []topology.NodeID {
	return append([]topology.NodeID(nil), g.adj[v]...)
}

// isUp reports whether traversing from a to b is an "up" move: toward
// the root in (level, id) order — the Autonet edge orientation.
func (g *Graph) isUp(a, b topology.NodeID) bool {
	if g.level[b] != g.level[a] {
		return g.level[b] < g.level[a]
	}
	return b < a // same level: lower id is the up end
}

// Route computes a shortest legal up*/down* path from src to dst: zero
// or more up moves followed by zero or more down moves (a down→up turn
// is the forbidden transition that guarantees deadlock freedom). The
// path includes both endpoints. chooser breaks ties among equal-length
// legal next hops; nil picks the lowest id.
func (g *Graph) Route(src, dst topology.NodeID, chooser func(options []topology.NodeID) topology.NodeID) ([]topology.NodeID, error) {
	if src == dst {
		return []topology.NodeID{src}, nil
	}
	rem := g.remaining(dst)
	const inf = 1 << 30
	cur, phase := src, 0
	if rem[0][cur] >= inf {
		return nil, fmt.Errorf("irregular: no up*/down* path %d -> %d", src, dst)
	}
	path := []topology.NodeID{src}
	for cur != dst {
		// The adaptivity of up*/down*: take any legal next hop whose
		// remaining distance decreases, resolved by chooser.
		d := rem[phase][cur]
		var options []topology.NodeID
		nextPhase := map[topology.NodeID]int{}
		for _, nb := range g.adj[cur] {
			up := g.isUp(cur, nb)
			if up && phase == 1 {
				continue
			}
			np := phase
			if !up {
				np = 1
			}
			if rem[np][nb] == d-1 {
				options = append(options, nb)
				nextPhase[nb] = np
			}
		}
		if len(options) == 0 {
			return nil, fmt.Errorf("irregular: stranded at %d (internal routing bug)", cur)
		}
		pick := options[0]
		if chooser != nil {
			pick = chooser(options)
		}
		phase = nextPhase[pick]
		cur = pick
		path = append(path, cur)
	}
	return path, nil
}

// remaining computes, by backward BFS over the phased state graph, the
// legal distance from every (phase, node) state to dst. Predecessor
// rule: an up move u→v keeps phase 0; a down move u→v lands in phase 1
// from either phase.
func (g *Graph) remaining(dst topology.NodeID) [2][]int {
	const inf = 1 << 30
	var rem [2][]int
	for p := 0; p < 2; p++ {
		rem[p] = make([]int, g.n)
		for i := range rem[p] {
			rem[p][i] = inf
		}
	}
	type state struct {
		v     topology.NodeID
		phase int
	}
	rem[0][dst], rem[1][dst] = 0, 0
	queue := []state{{v: dst, phase: 0}, {v: dst, phase: 1}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[s.v] {
			// Moves u → s.v that land in phase s.phase.
			up := g.isUp(u, s.v)
			var preds []int
			if up {
				if s.phase == 0 {
					preds = []int{0} // up keeps phase 0
				}
			} else if s.phase == 1 {
				preds = []int{0, 1} // down lands in phase 1 from either
			}
			for _, pp := range preds {
				if rem[pp][u] > rem[s.phase][s.v]+1 {
					rem[pp][u] = rem[s.phase][s.v] + 1
					queue = append(queue, state{v: u, phase: pp})
				}
			}
		}
	}
	return rem
}
