package netsim

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestEjectionHookSealsDeliveredPackets(t *testing.T) {
	m := topology.NewMesh2D(4)
	d, _ := marking.NewDDPM(m)
	seal, err := marking.NewSeal(d, []byte("0123456789abcdef0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Scheme: seal, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	verified := 0
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) {
		if seal.Verify(pk) {
			verified++
		}
		if got, ok := d.IdentifySource(pk.DstNode, pk.Hdr.ID); !ok || got != pk.SrcNode {
			t.Error("DDPM through seal misidentified")
		}
	})
	for i := 0; i < 20; i++ {
		n.InjectAt(eventq.Time(i), packet.NewPacket(plan, topology.NodeID(i%15), 15, packet.ProtoTCPSYN, 0))
	}
	n.RunAll(1_000_000)
	if verified != 20 {
		t.Errorf("verified %d/20 delivered packets", verified)
	}
	if seal.Sealed() != 20 {
		t.Errorf("Sealed = %d", seal.Sealed())
	}
}
