package netsim

import (
	"testing"

	"repro/internal/eventq"
	"repro/internal/marking"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/topology"
)

func buildNet(t *testing.T, net topology.Network, alg routing.Algorithm, scheme marking.Scheme) *Network {
	t.Helper()
	r := routing.NewRouter(net, alg)
	r.Sel = routing.RandomSelector{R: rng.NewStream(42)}
	plan := packet.NewAddrPlan(packet.DefaultBase, net.NumNodes())
	n, err := New(Config{Net: net, Router: r, Scheme: scheme, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDeliverySingleHop(t *testing.T) {
	m := topology.NewMesh2D(4)
	n := buildNet(t, m, routing.NewXY(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	var delivered *packet.Packet
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) { delivered = pk })
	pk := packet.NewPacket(plan, 0, 1, packet.ProtoUDP, 64)
	n.Inject(pk)
	n.RunAll(1000)
	if delivered == nil {
		t.Fatal("packet not delivered")
	}
	if delivered.Hops != 1 {
		t.Errorf("Hops = %d, want 1", delivered.Hops)
	}
	st := n.Stats()
	if st.Injected != 1 || st.Delivered != 1 || st.DroppedTotal() != 0 {
		t.Errorf("stats = %+v", st)
	}
	// 1 service tick + 1 link latency tick.
	if st.AvgLatency() != 2 {
		t.Errorf("latency = %v, want 2", st.AvgLatency())
	}
}

func TestDeliveryToSelf(t *testing.T) {
	m := topology.NewMesh2D(4)
	n := buildNet(t, m, routing.NewXY(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	count := 0
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) { count++ })
	n.Inject(packet.NewPacket(plan, 3, 3, packet.ProtoUDP, 0))
	n.RunAll(100)
	if count != 1 {
		t.Errorf("self-delivery count = %d", count)
	}
}

func TestHopCountMatchesDistance(t *testing.T) {
	m := topology.NewMesh2D(8)
	n := buildNet(t, m, routing.NewMinimalAdaptive(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	var got int
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) { got = pk.Hops })
	src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{7, 7})
	n.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	n.RunAll(10000)
	if got != m.MinDistance(src, dst) {
		t.Errorf("hops = %d, want %d", got, m.MinDistance(src, dst))
	}
}

func TestTTLExpiry(t *testing.T) {
	m := topology.NewMesh2D(8)
	n := buildNet(t, m, routing.NewXY(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	var reason DropReason
	n.OnDrop(func(_ eventq.Time, _ *packet.Packet, r DropReason) { reason = r })
	pk := packet.NewPacket(plan, m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{7, 7}), packet.ProtoUDP, 0)
	pk.Hdr.TTL = 3 // path needs 14 hops
	n.Inject(pk)
	n.RunAll(10000)
	if reason != DropTTL {
		t.Errorf("drop reason = %v, want ttl-expired", reason)
	}
	if n.Stats().Delivered != 0 {
		t.Error("expired packet delivered")
	}
}

func TestNoRouteDrop(t *testing.T) {
	m := topology.NewMesh2D(4)
	n := buildNet(t, m, routing.NewXY(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	// Fail XY's only way out of (0,0) toward (0,3).
	n.cfg.Router.State.Fail(m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 1}))
	var reason DropReason
	n.OnDrop(func(_ eventq.Time, _ *packet.Packet, r DropReason) { reason = r })
	n.Inject(packet.NewPacket(plan, m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 3}), packet.ProtoUDP, 0))
	n.RunAll(1000)
	if reason != DropNoRoute {
		t.Errorf("drop reason = %v, want no-route", reason)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	n.OnDrop(func(_ eventq.Time, _ *packet.Packet, reason DropReason) {
		if reason == DropQueueFull {
			drops++
		}
	})
	// Slam 50 packets into the same first link at t=0; capacity 2 and
	// unit service rate must shed most of them.
	src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 3})
	for i := 0; i < 50; i++ {
		n.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	}
	n.RunAll(100000)
	if drops == 0 {
		t.Error("no queue-full drops despite 50-packet burst into cap-2 queue")
	}
	st := n.Stats()
	if st.Delivered+st.DroppedTotal() != 50 {
		t.Errorf("conservation violated: %d delivered + %d dropped != 50",
			st.Delivered, st.DroppedTotal())
	}
}

func TestPacketConservationUnderLoad(t *testing.T) {
	m := topology.NewTorus2D(4)
	n := buildNet(t, m, routing.NewMinimalAdaptive(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	r := rng.NewStream(7)
	const N = 500
	for i := 0; i < N; i++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		dst := topology.NodeID(r.Intn(m.NumNodes()))
		n.InjectAt(eventq.Time(r.Intn(100)), packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	}
	n.RunAll(1e6)
	st := n.Stats()
	if st.Injected != N {
		t.Errorf("Injected = %d", st.Injected)
	}
	if st.Delivered+st.DroppedTotal() != N {
		t.Errorf("conservation: %d + %d != %d", st.Delivered, st.DroppedTotal(), N)
	}
	if st.Delivered < N*9/10 {
		t.Errorf("only %d/%d delivered on a healthy lightly-loaded torus", st.Delivered, N)
	}
}

func TestMarkingHookOrderAndDDPMDelivery(t *testing.T) {
	// End-to-end: DDPM through the event-driven fabric identifies the
	// source of every delivered packet even with spoofed headers.
	m := topology.NewMesh2D(8)
	d, err := marking.NewDDPM(m)
	if err != nil {
		t.Fatal(err)
	}
	n := buildNet(t, m, routing.NewMinimalAdaptive(m), d)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	type result struct {
		claimed topology.NodeID
		actual  topology.NodeID
	}
	var results []result
	n.OnDeliver(func(_ eventq.Time, pk *packet.Packet) {
		id, ok := d.IdentifySource(pk.DstNode, pk.Hdr.ID)
		if !ok {
			t.Error("undecodable MF at victim")
			return
		}
		results = append(results, result{claimed: id, actual: pk.SrcNode})
	})
	r := rng.NewStream(13)
	for i := 0; i < 300; i++ {
		src := topology.NodeID(r.Intn(m.NumNodes()))
		dst := topology.NodeID(r.Intn(m.NumNodes()))
		pk := packet.NewPacket(plan, src, dst, packet.ProtoTCPSYN, 40)
		pk.Spoof(plan.AddrOf(topology.NodeID(r.Intn(m.NumNodes())))) // spoof at will
		pk.Hdr.ID = uint16(r.Intn(65536))                            // preload garbage
		n.InjectAt(eventq.Time(r.Intn(50)), pk)
	}
	n.RunAll(1e6)
	if len(results) < 250 {
		t.Fatalf("only %d delivered", len(results))
	}
	for _, res := range results {
		if res.claimed != res.actual {
			t.Fatalf("DDPM misidentified: claimed %d, actual %d", res.claimed, res.actual)
		}
	}
}

func TestCongestionOracleSeesQueues(t *testing.T) {
	m := topology.NewMesh2D(4)
	n := buildNet(t, m, routing.NewXY(m), nil)
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 3})
	for i := 0; i < 10; i++ {
		n.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	}
	// Step one event (the first injection processes and enqueues).
	// After all injections process, the out queue must be visible to
	// the oracle.
	n.Run(1)
	load := n.cfg.Router.State.Congestion(topology.Link{
		From: src, To: m.IndexOf(topology.Coord{0, 1}),
	})
	if load == 0 {
		t.Error("congestion oracle reports empty queue after burst")
	}
	n.RunAll(100000)
}

func TestConfigValidation(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	if _, err := New(Config{Router: r, Plan: plan}); err == nil {
		t.Error("missing Net accepted")
	}
	if _, err := New(Config{Net: m, Plan: plan}); err == nil {
		t.Error("missing Router accepted")
	}
	if _, err := New(Config{Net: m, Router: r}); err == nil {
		t.Error("missing Plan accepted")
	}
	if _, err := New(Config{Net: m, Router: r, Plan: plan, SwitchDelay: -1}); err == nil {
		t.Error("negative SwitchDelay accepted")
	}
	wrongPlan := packet.NewAddrPlan(packet.DefaultBase, 4)
	if _, err := New(Config{Net: m, Router: r, Plan: wrongPlan}); err == nil {
		t.Error("plan/network size mismatch accepted")
	}
}

func TestInjectAtInvalidNodePanics(t *testing.T) {
	m := topology.NewMesh2D(4)
	n := buildNet(t, m, routing.NewXY(m), nil)
	defer func() {
		if recover() == nil {
			t.Error("invalid source node accepted")
		}
	}()
	n.Inject(&packet.Packet{SrcNode: 999, DstNode: 0})
}

func TestSwitchDelayAddsLatency(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, _ := New(Config{Net: m, Router: r, Plan: plan, SwitchDelay: 5})
	n.Inject(packet.NewPacket(plan, 0, 1, packet.ProtoUDP, 0))
	n.RunAll(1000)
	// 1 service + 5 switch delay + 1 link latency.
	if got := n.Stats().AvgLatency(); got != 7 {
		t.Errorf("latency = %v, want 7", got)
	}
}

func TestDropReasonStrings(t *testing.T) {
	for _, d := range []DropReason{DropNone, DropNoRoute, DropTTL, DropQueueFull, DropReason(9)} {
		if d.String() == "" {
			t.Error("empty DropReason string")
		}
	}
}

func TestAdaptiveSpreadsLoadAcrossPaths(t *testing.T) {
	// Congestion-aware adaptive routing should deliver a same-pair
	// burst faster than single-path XY because it uses both minimal
	// directions.
	run := func(alg func(topology.Network) routing.Algorithm, sel routing.Selector) eventq.Time {
		m := topology.NewMesh2D(4)
		r := routing.NewRouter(m, alg(m))
		r.Sel = sel
		plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
		n, _ := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 1000})
		src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{3, 3})
		for i := 0; i < 60; i++ {
			n.Inject(packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
		}
		var last eventq.Time
		n.OnDeliver(func(now eventq.Time, _ *packet.Packet) { last = now })
		n.RunAll(1e6)
		if n.Stats().Delivered != 60 {
			t.Fatalf("delivered %d/60", n.Stats().Delivered)
		}
		return last
	}
	xyDone := run(func(n topology.Network) routing.Algorithm { return routing.NewXY(n) }, routing.FirstSelector{})
	adDone := run(func(n topology.Network) routing.Algorithm { return routing.NewMinimalAdaptive(n) },
		routing.CongestionSelector{R: rng.NewStream(3)})
	if adDone >= xyDone {
		t.Errorf("adaptive finished at %d, XY at %d; adaptive should be faster", adDone, xyDone)
	}
}
