package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestLatencyHistogramFills(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	h := stats.NewHistogram(0, 200, 40)
	n.SetLatencyHistogram(h)
	src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{3, 3})
	for i := 0; i < 50; i++ {
		n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	}
	n.RunAll(1_000_000)
	if h.N() != 50 {
		t.Fatalf("histogram saw %d deliveries", h.N())
	}
	// Same-pair burst through one XY path: the 50th packet queues
	// behind 49 others, so P90 must exceed P10 by a wide margin.
	if h.Percentile(90) <= h.Percentile(10) {
		t.Errorf("P90 %.1f <= P10 %.1f under queueing", h.Percentile(90), h.Percentile(10))
	}
	if h.Mean() < float64(m.MinDistance(src, dst)) {
		t.Errorf("mean latency %.1f below hop floor", h.Mean())
	}
}

func TestLinkLoadAndHottestLinks(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Plan: plan, QueueCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := m.IndexOf(topology.Coord{0, 0}), m.IndexOf(topology.Coord{0, 3})
	for i := 0; i < 30; i++ {
		n.InjectAt(0, packet.NewPacket(plan, src, dst, packet.ProtoUDP, 0))
	}
	n.RunAll(1_000_000)
	// XY drives every packet down the same three row links.
	first := topology.Link{From: src, To: m.IndexOf(topology.Coord{0, 1})}
	if got := n.LinkLoad(first); got != 30 {
		t.Errorf("LinkLoad(first hop) = %d, want 30", got)
	}
	hot := n.HottestLinks(3)
	if len(hot) != 3 {
		t.Fatalf("HottestLinks = %v", hot)
	}
	for _, l := range hot {
		if n.LinkLoad(l) != 30 {
			t.Errorf("hot link %v load = %d, want 30", l, n.LinkLoad(l))
		}
	}
	// Unused links report zero and never appear.
	cold := topology.Link{From: m.IndexOf(topology.Coord{3, 3}), To: m.IndexOf(topology.Coord{3, 2})}
	if n.LinkLoad(cold) != 0 {
		t.Error("cold link has load")
	}
	all := n.HottestLinks(1000)
	if len(all) != 3 {
		t.Errorf("loaded links = %d, want 3", len(all))
	}
}

func TestHottestLinksNegativeKClampsToEmpty(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	n.InjectAt(0, packet.NewPacket(plan, 0, 5, packet.ProtoUDP, 0))
	n.RunAll(1_000_000)
	for _, k := range []int{-1, -1000} {
		if got := n.HottestLinks(k); len(got) != 0 {
			t.Errorf("HottestLinks(%d) = %v, want empty", k, got)
		}
	}
	if got := n.HottestLinks(0); len(got) != 0 {
		t.Errorf("HottestLinks(0) = %v, want empty", got)
	}
}

func TestAcquirePacketRecyclesThroughPool(t *testing.T) {
	m := topology.NewMesh2D(4)
	r := routing.NewRouter(m, routing.NewXY(m))
	plan := packet.NewAddrPlan(packet.DefaultBase, m.NumNodes())
	n, err := New(Config{Net: m, Router: r, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	// First generation: remember the pointers the pool hands out.
	seen := map[*packet.Packet]bool{}
	for i := 0; i < 8; i++ {
		pk := n.AcquirePacket(0, 15, packet.ProtoUDP, 0)
		if !pk.Recycle {
			t.Fatal("AcquirePacket did not flag Recycle")
		}
		seen[pk] = true
		n.InjectAt(0, pk)
	}
	n.RunAll(1_000_000)
	// Second generation must reuse the recycled packets, reset clean.
	reused := 0
	for i := 0; i < 8; i++ {
		pk := n.AcquirePacket(3, 12, packet.ProtoTCPSYN, 64)
		if seen[pk] {
			reused++
		}
		if pk.Hops != 0 || pk.MisroutesUsed != 0 || pk.Hdr.TTL != packet.DefaultTTL ||
			pk.SrcNode != 3 || pk.DstNode != 12 || pk.Spoofed {
			t.Fatalf("recycled packet not reset: %+v", pk)
		}
		n.InjectAt(n.Now(), pk)
	}
	if reused == 0 {
		t.Error("no packets were reused from the pool")
	}
	n.RunAll(1_000_000)
	s := n.Stats()
	if s.Injected != 16 || s.Delivered != 16 {
		t.Errorf("injected %d delivered %d, want 16/16", s.Injected, s.Delivered)
	}
}
